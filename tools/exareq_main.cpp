// The `exareq` driver binary; all logic lives in the testable cli library.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return exareq::cli::run_cli(args, std::cout, std::cerr);
}
