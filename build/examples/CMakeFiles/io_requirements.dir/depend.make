# Empty dependencies file for io_requirements.
# This may be replaced when dependencies are built.
