file(REMOVE_RECURSE
  "CMakeFiles/io_requirements.dir/io_requirements.cpp.o"
  "CMakeFiles/io_requirements.dir/io_requirements.cpp.o.d"
  "io_requirements"
  "io_requirements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_requirements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
