file(REMOVE_RECURSE
  "CMakeFiles/codesign_upgrade.dir/codesign_upgrade.cpp.o"
  "CMakeFiles/codesign_upgrade.dir/codesign_upgrade.cpp.o.d"
  "codesign_upgrade"
  "codesign_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesign_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
