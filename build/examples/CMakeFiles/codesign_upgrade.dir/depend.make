# Empty dependencies file for codesign_upgrade.
# This may be replaced when dependencies are built.
