# Empty compiler generated dependencies file for locality_mmm.
# This may be replaced when dependencies are built.
