file(REMOVE_RECURSE
  "CMakeFiles/locality_mmm.dir/locality_mmm.cpp.o"
  "CMakeFiles/locality_mmm.dir/locality_mmm.cpp.o.d"
  "locality_mmm"
  "locality_mmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality_mmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
