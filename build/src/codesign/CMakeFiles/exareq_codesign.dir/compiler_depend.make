# Empty compiler generated dependencies file for exareq_codesign.
# This may be replaced when dependencies are built.
