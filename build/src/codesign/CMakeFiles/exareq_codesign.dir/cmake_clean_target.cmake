file(REMOVE_RECURSE
  "libexareq_codesign.a"
)
