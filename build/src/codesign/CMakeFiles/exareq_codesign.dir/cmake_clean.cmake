file(REMOVE_RECURSE
  "CMakeFiles/exareq_codesign.dir/requirements.cpp.o"
  "CMakeFiles/exareq_codesign.dir/requirements.cpp.o.d"
  "CMakeFiles/exareq_codesign.dir/sharing.cpp.o"
  "CMakeFiles/exareq_codesign.dir/sharing.cpp.o.d"
  "CMakeFiles/exareq_codesign.dir/strawman.cpp.o"
  "CMakeFiles/exareq_codesign.dir/strawman.cpp.o.d"
  "CMakeFiles/exareq_codesign.dir/upgrade.cpp.o"
  "CMakeFiles/exareq_codesign.dir/upgrade.cpp.o.d"
  "libexareq_codesign.a"
  "libexareq_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exareq_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
