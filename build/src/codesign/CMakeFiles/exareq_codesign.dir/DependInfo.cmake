
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codesign/requirements.cpp" "src/codesign/CMakeFiles/exareq_codesign.dir/requirements.cpp.o" "gcc" "src/codesign/CMakeFiles/exareq_codesign.dir/requirements.cpp.o.d"
  "/root/repo/src/codesign/sharing.cpp" "src/codesign/CMakeFiles/exareq_codesign.dir/sharing.cpp.o" "gcc" "src/codesign/CMakeFiles/exareq_codesign.dir/sharing.cpp.o.d"
  "/root/repo/src/codesign/strawman.cpp" "src/codesign/CMakeFiles/exareq_codesign.dir/strawman.cpp.o" "gcc" "src/codesign/CMakeFiles/exareq_codesign.dir/strawman.cpp.o.d"
  "/root/repo/src/codesign/upgrade.cpp" "src/codesign/CMakeFiles/exareq_codesign.dir/upgrade.cpp.o" "gcc" "src/codesign/CMakeFiles/exareq_codesign.dir/upgrade.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/exareq_model.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/exareq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
