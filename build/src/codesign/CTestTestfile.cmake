# CMake generated Testfile for 
# Source directory: /root/repo/src/codesign
# Build directory: /root/repo/build/src/codesign
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
