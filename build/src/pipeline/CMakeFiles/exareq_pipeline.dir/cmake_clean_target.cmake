file(REMOVE_RECURSE
  "libexareq_pipeline.a"
)
