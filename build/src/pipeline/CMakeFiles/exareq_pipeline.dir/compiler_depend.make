# Empty compiler generated dependencies file for exareq_pipeline.
# This may be replaced when dependencies are built.
