file(REMOVE_RECURSE
  "CMakeFiles/exareq_pipeline.dir/campaign.cpp.o"
  "CMakeFiles/exareq_pipeline.dir/campaign.cpp.o.d"
  "CMakeFiles/exareq_pipeline.dir/codesign_bridge.cpp.o"
  "CMakeFiles/exareq_pipeline.dir/codesign_bridge.cpp.o.d"
  "CMakeFiles/exareq_pipeline.dir/measure.cpp.o"
  "CMakeFiles/exareq_pipeline.dir/measure.cpp.o.d"
  "CMakeFiles/exareq_pipeline.dir/report.cpp.o"
  "CMakeFiles/exareq_pipeline.dir/report.cpp.o.d"
  "libexareq_pipeline.a"
  "libexareq_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exareq_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
