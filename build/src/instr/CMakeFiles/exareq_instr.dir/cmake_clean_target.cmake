file(REMOVE_RECURSE
  "libexareq_instr.a"
)
