# Empty compiler generated dependencies file for exareq_instr.
# This may be replaced when dependencies are built.
