file(REMOVE_RECURSE
  "CMakeFiles/exareq_instr.dir/memory.cpp.o"
  "CMakeFiles/exareq_instr.dir/memory.cpp.o.d"
  "CMakeFiles/exareq_instr.dir/region.cpp.o"
  "CMakeFiles/exareq_instr.dir/region.cpp.o.d"
  "libexareq_instr.a"
  "libexareq_instr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exareq_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
