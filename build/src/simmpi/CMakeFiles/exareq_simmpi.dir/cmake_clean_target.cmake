file(REMOVE_RECURSE
  "libexareq_simmpi.a"
)
