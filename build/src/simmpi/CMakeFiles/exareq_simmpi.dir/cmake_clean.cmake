file(REMOVE_RECURSE
  "CMakeFiles/exareq_simmpi.dir/comm.cpp.o"
  "CMakeFiles/exareq_simmpi.dir/comm.cpp.o.d"
  "CMakeFiles/exareq_simmpi.dir/mailbox.cpp.o"
  "CMakeFiles/exareq_simmpi.dir/mailbox.cpp.o.d"
  "CMakeFiles/exareq_simmpi.dir/runtime.cpp.o"
  "CMakeFiles/exareq_simmpi.dir/runtime.cpp.o.d"
  "CMakeFiles/exareq_simmpi.dir/stats.cpp.o"
  "CMakeFiles/exareq_simmpi.dir/stats.cpp.o.d"
  "libexareq_simmpi.a"
  "libexareq_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exareq_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
