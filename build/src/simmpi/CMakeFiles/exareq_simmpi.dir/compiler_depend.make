# Empty compiler generated dependencies file for exareq_simmpi.
# This may be replaced when dependencies are built.
