# Empty dependencies file for exareq_support.
# This may be replaced when dependencies are built.
