file(REMOVE_RECURSE
  "libexareq_support.a"
)
