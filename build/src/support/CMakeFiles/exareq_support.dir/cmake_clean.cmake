file(REMOVE_RECURSE
  "CMakeFiles/exareq_support.dir/csv.cpp.o"
  "CMakeFiles/exareq_support.dir/csv.cpp.o.d"
  "CMakeFiles/exareq_support.dir/format.cpp.o"
  "CMakeFiles/exareq_support.dir/format.cpp.o.d"
  "CMakeFiles/exareq_support.dir/histogram.cpp.o"
  "CMakeFiles/exareq_support.dir/histogram.cpp.o.d"
  "CMakeFiles/exareq_support.dir/rng.cpp.o"
  "CMakeFiles/exareq_support.dir/rng.cpp.o.d"
  "CMakeFiles/exareq_support.dir/stats.cpp.o"
  "CMakeFiles/exareq_support.dir/stats.cpp.o.d"
  "CMakeFiles/exareq_support.dir/table.cpp.o"
  "CMakeFiles/exareq_support.dir/table.cpp.o.d"
  "libexareq_support.a"
  "libexareq_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exareq_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
