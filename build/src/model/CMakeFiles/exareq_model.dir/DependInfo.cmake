
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/basis.cpp" "src/model/CMakeFiles/exareq_model.dir/basis.cpp.o" "gcc" "src/model/CMakeFiles/exareq_model.dir/basis.cpp.o.d"
  "/root/repo/src/model/fitter.cpp" "src/model/CMakeFiles/exareq_model.dir/fitter.cpp.o" "gcc" "src/model/CMakeFiles/exareq_model.dir/fitter.cpp.o.d"
  "/root/repo/src/model/inversion.cpp" "src/model/CMakeFiles/exareq_model.dir/inversion.cpp.o" "gcc" "src/model/CMakeFiles/exareq_model.dir/inversion.cpp.o.d"
  "/root/repo/src/model/linalg.cpp" "src/model/CMakeFiles/exareq_model.dir/linalg.cpp.o" "gcc" "src/model/CMakeFiles/exareq_model.dir/linalg.cpp.o.d"
  "/root/repo/src/model/measurement.cpp" "src/model/CMakeFiles/exareq_model.dir/measurement.cpp.o" "gcc" "src/model/CMakeFiles/exareq_model.dir/measurement.cpp.o.d"
  "/root/repo/src/model/model.cpp" "src/model/CMakeFiles/exareq_model.dir/model.cpp.o" "gcc" "src/model/CMakeFiles/exareq_model.dir/model.cpp.o.d"
  "/root/repo/src/model/modelgen.cpp" "src/model/CMakeFiles/exareq_model.dir/modelgen.cpp.o" "gcc" "src/model/CMakeFiles/exareq_model.dir/modelgen.cpp.o.d"
  "/root/repo/src/model/multiparam.cpp" "src/model/CMakeFiles/exareq_model.dir/multiparam.cpp.o" "gcc" "src/model/CMakeFiles/exareq_model.dir/multiparam.cpp.o.d"
  "/root/repo/src/model/search_space.cpp" "src/model/CMakeFiles/exareq_model.dir/search_space.cpp.o" "gcc" "src/model/CMakeFiles/exareq_model.dir/search_space.cpp.o.d"
  "/root/repo/src/model/serialize.cpp" "src/model/CMakeFiles/exareq_model.dir/serialize.cpp.o" "gcc" "src/model/CMakeFiles/exareq_model.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/exareq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
