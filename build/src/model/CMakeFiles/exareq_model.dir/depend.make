# Empty dependencies file for exareq_model.
# This may be replaced when dependencies are built.
