file(REMOVE_RECURSE
  "CMakeFiles/exareq_model.dir/basis.cpp.o"
  "CMakeFiles/exareq_model.dir/basis.cpp.o.d"
  "CMakeFiles/exareq_model.dir/fitter.cpp.o"
  "CMakeFiles/exareq_model.dir/fitter.cpp.o.d"
  "CMakeFiles/exareq_model.dir/inversion.cpp.o"
  "CMakeFiles/exareq_model.dir/inversion.cpp.o.d"
  "CMakeFiles/exareq_model.dir/linalg.cpp.o"
  "CMakeFiles/exareq_model.dir/linalg.cpp.o.d"
  "CMakeFiles/exareq_model.dir/measurement.cpp.o"
  "CMakeFiles/exareq_model.dir/measurement.cpp.o.d"
  "CMakeFiles/exareq_model.dir/model.cpp.o"
  "CMakeFiles/exareq_model.dir/model.cpp.o.d"
  "CMakeFiles/exareq_model.dir/modelgen.cpp.o"
  "CMakeFiles/exareq_model.dir/modelgen.cpp.o.d"
  "CMakeFiles/exareq_model.dir/multiparam.cpp.o"
  "CMakeFiles/exareq_model.dir/multiparam.cpp.o.d"
  "CMakeFiles/exareq_model.dir/search_space.cpp.o"
  "CMakeFiles/exareq_model.dir/search_space.cpp.o.d"
  "CMakeFiles/exareq_model.dir/serialize.cpp.o"
  "CMakeFiles/exareq_model.dir/serialize.cpp.o.d"
  "libexareq_model.a"
  "libexareq_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exareq_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
