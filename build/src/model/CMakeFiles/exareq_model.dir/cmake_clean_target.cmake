file(REMOVE_RECURSE
  "libexareq_model.a"
)
