file(REMOVE_RECURSE
  "libexareq_cli.a"
)
