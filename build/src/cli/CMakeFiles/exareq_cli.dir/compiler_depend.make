# Empty compiler generated dependencies file for exareq_cli.
# This may be replaced when dependencies are built.
