file(REMOVE_RECURSE
  "CMakeFiles/exareq_cli.dir/cli.cpp.o"
  "CMakeFiles/exareq_cli.dir/cli.cpp.o.d"
  "libexareq_cli.a"
  "libexareq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exareq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
