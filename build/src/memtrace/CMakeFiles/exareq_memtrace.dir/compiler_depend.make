# Empty compiler generated dependencies file for exareq_memtrace.
# This may be replaced when dependencies are built.
