file(REMOVE_RECURSE
  "libexareq_memtrace.a"
)
