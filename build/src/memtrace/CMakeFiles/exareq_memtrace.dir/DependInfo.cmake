
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memtrace/cache_model.cpp" "src/memtrace/CMakeFiles/exareq_memtrace.dir/cache_model.cpp.o" "gcc" "src/memtrace/CMakeFiles/exareq_memtrace.dir/cache_model.cpp.o.d"
  "/root/repo/src/memtrace/cache_sim.cpp" "src/memtrace/CMakeFiles/exareq_memtrace.dir/cache_sim.cpp.o" "gcc" "src/memtrace/CMakeFiles/exareq_memtrace.dir/cache_sim.cpp.o.d"
  "/root/repo/src/memtrace/distance.cpp" "src/memtrace/CMakeFiles/exareq_memtrace.dir/distance.cpp.o" "gcc" "src/memtrace/CMakeFiles/exareq_memtrace.dir/distance.cpp.o.d"
  "/root/repo/src/memtrace/fenwick.cpp" "src/memtrace/CMakeFiles/exareq_memtrace.dir/fenwick.cpp.o" "gcc" "src/memtrace/CMakeFiles/exareq_memtrace.dir/fenwick.cpp.o.d"
  "/root/repo/src/memtrace/locality.cpp" "src/memtrace/CMakeFiles/exareq_memtrace.dir/locality.cpp.o" "gcc" "src/memtrace/CMakeFiles/exareq_memtrace.dir/locality.cpp.o.d"
  "/root/repo/src/memtrace/mmm.cpp" "src/memtrace/CMakeFiles/exareq_memtrace.dir/mmm.cpp.o" "gcc" "src/memtrace/CMakeFiles/exareq_memtrace.dir/mmm.cpp.o.d"
  "/root/repo/src/memtrace/sampling.cpp" "src/memtrace/CMakeFiles/exareq_memtrace.dir/sampling.cpp.o" "gcc" "src/memtrace/CMakeFiles/exareq_memtrace.dir/sampling.cpp.o.d"
  "/root/repo/src/memtrace/trace.cpp" "src/memtrace/CMakeFiles/exareq_memtrace.dir/trace.cpp.o" "gcc" "src/memtrace/CMakeFiles/exareq_memtrace.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/exareq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
