file(REMOVE_RECURSE
  "CMakeFiles/exareq_memtrace.dir/cache_model.cpp.o"
  "CMakeFiles/exareq_memtrace.dir/cache_model.cpp.o.d"
  "CMakeFiles/exareq_memtrace.dir/cache_sim.cpp.o"
  "CMakeFiles/exareq_memtrace.dir/cache_sim.cpp.o.d"
  "CMakeFiles/exareq_memtrace.dir/distance.cpp.o"
  "CMakeFiles/exareq_memtrace.dir/distance.cpp.o.d"
  "CMakeFiles/exareq_memtrace.dir/fenwick.cpp.o"
  "CMakeFiles/exareq_memtrace.dir/fenwick.cpp.o.d"
  "CMakeFiles/exareq_memtrace.dir/locality.cpp.o"
  "CMakeFiles/exareq_memtrace.dir/locality.cpp.o.d"
  "CMakeFiles/exareq_memtrace.dir/mmm.cpp.o"
  "CMakeFiles/exareq_memtrace.dir/mmm.cpp.o.d"
  "CMakeFiles/exareq_memtrace.dir/sampling.cpp.o"
  "CMakeFiles/exareq_memtrace.dir/sampling.cpp.o.d"
  "CMakeFiles/exareq_memtrace.dir/trace.cpp.o"
  "CMakeFiles/exareq_memtrace.dir/trace.cpp.o.d"
  "libexareq_memtrace.a"
  "libexareq_memtrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exareq_memtrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
