file(REMOVE_RECURSE
  "CMakeFiles/exareq_apps.dir/icofoam.cpp.o"
  "CMakeFiles/exareq_apps.dir/icofoam.cpp.o.d"
  "CMakeFiles/exareq_apps.dir/kernel_util.cpp.o"
  "CMakeFiles/exareq_apps.dir/kernel_util.cpp.o.d"
  "CMakeFiles/exareq_apps.dir/kripke.cpp.o"
  "CMakeFiles/exareq_apps.dir/kripke.cpp.o.d"
  "CMakeFiles/exareq_apps.dir/lulesh.cpp.o"
  "CMakeFiles/exareq_apps.dir/lulesh.cpp.o.d"
  "CMakeFiles/exareq_apps.dir/milc.cpp.o"
  "CMakeFiles/exareq_apps.dir/milc.cpp.o.d"
  "CMakeFiles/exareq_apps.dir/registry.cpp.o"
  "CMakeFiles/exareq_apps.dir/registry.cpp.o.d"
  "CMakeFiles/exareq_apps.dir/relearn.cpp.o"
  "CMakeFiles/exareq_apps.dir/relearn.cpp.o.d"
  "libexareq_apps.a"
  "libexareq_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exareq_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
