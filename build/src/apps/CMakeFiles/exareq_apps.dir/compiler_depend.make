# Empty compiler generated dependencies file for exareq_apps.
# This may be replaced when dependencies are built.
