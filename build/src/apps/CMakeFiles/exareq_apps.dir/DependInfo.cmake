
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/icofoam.cpp" "src/apps/CMakeFiles/exareq_apps.dir/icofoam.cpp.o" "gcc" "src/apps/CMakeFiles/exareq_apps.dir/icofoam.cpp.o.d"
  "/root/repo/src/apps/kernel_util.cpp" "src/apps/CMakeFiles/exareq_apps.dir/kernel_util.cpp.o" "gcc" "src/apps/CMakeFiles/exareq_apps.dir/kernel_util.cpp.o.d"
  "/root/repo/src/apps/kripke.cpp" "src/apps/CMakeFiles/exareq_apps.dir/kripke.cpp.o" "gcc" "src/apps/CMakeFiles/exareq_apps.dir/kripke.cpp.o.d"
  "/root/repo/src/apps/lulesh.cpp" "src/apps/CMakeFiles/exareq_apps.dir/lulesh.cpp.o" "gcc" "src/apps/CMakeFiles/exareq_apps.dir/lulesh.cpp.o.d"
  "/root/repo/src/apps/milc.cpp" "src/apps/CMakeFiles/exareq_apps.dir/milc.cpp.o" "gcc" "src/apps/CMakeFiles/exareq_apps.dir/milc.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/exareq_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/exareq_apps.dir/registry.cpp.o.d"
  "/root/repo/src/apps/relearn.cpp" "src/apps/CMakeFiles/exareq_apps.dir/relearn.cpp.o" "gcc" "src/apps/CMakeFiles/exareq_apps.dir/relearn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/exareq_support.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/exareq_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/instr/CMakeFiles/exareq_instr.dir/DependInfo.cmake"
  "/root/repo/build/src/memtrace/CMakeFiles/exareq_memtrace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
