file(REMOVE_RECURSE
  "libexareq_apps.a"
)
