# Empty compiler generated dependencies file for table2_requirement_models.
# This may be replaced when dependencies are built.
