# Empty compiler generated dependencies file for listing12_mmm_locality.
# This may be replaced when dependencies are built.
