file(REMOVE_RECURSE
  "CMakeFiles/listing12_mmm_locality.dir/listing12_mmm_locality.cpp.o"
  "CMakeFiles/listing12_mmm_locality.dir/listing12_mmm_locality.cpp.o.d"
  "listing12_mmm_locality"
  "listing12_mmm_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/listing12_mmm_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
