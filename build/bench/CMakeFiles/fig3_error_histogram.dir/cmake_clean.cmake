file(REMOVE_RECURSE
  "CMakeFiles/fig3_error_histogram.dir/fig3_error_histogram.cpp.o"
  "CMakeFiles/fig3_error_histogram.dir/fig3_error_histogram.cpp.o.d"
  "fig3_error_histogram"
  "fig3_error_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_error_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
