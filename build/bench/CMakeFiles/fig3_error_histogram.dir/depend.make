# Empty dependencies file for fig3_error_histogram.
# This may be replaced when dependencies are built.
