file(REMOVE_RECURSE
  "CMakeFiles/ablation_baseline_sensitivity.dir/ablation_baseline_sensitivity.cpp.o"
  "CMakeFiles/ablation_baseline_sensitivity.dir/ablation_baseline_sensitivity.cpp.o.d"
  "ablation_baseline_sensitivity"
  "ablation_baseline_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_baseline_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
