# Empty compiler generated dependencies file for table5_upgrade_comparison.
# This may be replaced when dependencies are built.
