file(REMOVE_RECURSE
  "CMakeFiles/table5_upgrade_comparison.dir/table5_upgrade_comparison.cpp.o"
  "CMakeFiles/table5_upgrade_comparison.dir/table5_upgrade_comparison.cpp.o.d"
  "table5_upgrade_comparison"
  "table5_upgrade_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_upgrade_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
