file(REMOVE_RECURSE
  "CMakeFiles/exareq_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/exareq_bench_common.dir/bench_common.cpp.o.d"
  "libexareq_bench_common.a"
  "libexareq_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exareq_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
