# Empty dependencies file for exareq_bench_common.
# This may be replaced when dependencies are built.
