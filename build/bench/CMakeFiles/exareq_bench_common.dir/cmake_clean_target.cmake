file(REMOVE_RECURSE
  "libexareq_bench_common.a"
)
