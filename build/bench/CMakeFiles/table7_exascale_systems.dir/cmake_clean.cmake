file(REMOVE_RECURSE
  "CMakeFiles/table7_exascale_systems.dir/table7_exascale_systems.cpp.o"
  "CMakeFiles/table7_exascale_systems.dir/table7_exascale_systems.cpp.o.d"
  "table7_exascale_systems"
  "table7_exascale_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_exascale_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
