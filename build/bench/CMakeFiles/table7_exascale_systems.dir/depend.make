# Empty dependencies file for table7_exascale_systems.
# This may be replaced when dependencies are built.
