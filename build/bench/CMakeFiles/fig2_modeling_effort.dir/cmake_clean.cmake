file(REMOVE_RECURSE
  "CMakeFiles/fig2_modeling_effort.dir/fig2_modeling_effort.cpp.o"
  "CMakeFiles/fig2_modeling_effort.dir/fig2_modeling_effort.cpp.o.d"
  "fig2_modeling_effort"
  "fig2_modeling_effort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_modeling_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
