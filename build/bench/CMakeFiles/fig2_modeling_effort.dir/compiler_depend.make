# Empty compiler generated dependencies file for fig2_modeling_effort.
# This may be replaced when dependencies are built.
