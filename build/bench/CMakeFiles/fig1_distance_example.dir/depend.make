# Empty dependencies file for fig1_distance_example.
# This may be replaced when dependencies are built.
