file(REMOVE_RECURSE
  "CMakeFiles/bench_model_engine.dir/bench_model_engine.cpp.o"
  "CMakeFiles/bench_model_engine.dir/bench_model_engine.cpp.o.d"
  "bench_model_engine"
  "bench_model_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
