file(REMOVE_RECURSE
  "CMakeFiles/table4_lulesh_walkthrough.dir/table4_lulesh_walkthrough.cpp.o"
  "CMakeFiles/table4_lulesh_walkthrough.dir/table4_lulesh_walkthrough.cpp.o.d"
  "table4_lulesh_walkthrough"
  "table4_lulesh_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_lulesh_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
