# Empty compiler generated dependencies file for table4_lulesh_walkthrough.
# This may be replaced when dependencies are built.
