file(REMOVE_RECURSE
  "CMakeFiles/bench_stack_distance.dir/bench_stack_distance.cpp.o"
  "CMakeFiles/bench_stack_distance.dir/bench_stack_distance.cpp.o.d"
  "bench_stack_distance"
  "bench_stack_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stack_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
