# Empty compiler generated dependencies file for bench_stack_distance.
# This may be replaced when dependencies are built.
