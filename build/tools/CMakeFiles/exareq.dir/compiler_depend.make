# Empty compiler generated dependencies file for exareq.
# This may be replaced when dependencies are built.
