file(REMOVE_RECURSE
  "CMakeFiles/exareq.dir/exareq_main.cpp.o"
  "CMakeFiles/exareq.dir/exareq_main.cpp.o.d"
  "exareq"
  "exareq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exareq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
