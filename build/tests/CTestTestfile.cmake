# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_memtrace[1]_include.cmake")
include("/root/repo/build/tests/test_simmpi[1]_include.cmake")
include("/root/repo/build/tests/test_instr[1]_include.cmake")
include("/root/repo/build/tests/test_codesign[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
add_test(test_pipeline "/root/repo/build/tests/test_pipeline")
set_tests_properties(test_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;77;add_test;/root/repo/tests/CMakeLists.txt;0;")
