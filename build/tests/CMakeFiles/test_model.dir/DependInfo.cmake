
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/model/basis_test.cpp" "tests/CMakeFiles/test_model.dir/model/basis_test.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/basis_test.cpp.o.d"
  "/root/repo/tests/model/fitter_test.cpp" "tests/CMakeFiles/test_model.dir/model/fitter_test.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/fitter_test.cpp.o.d"
  "/root/repo/tests/model/inversion_test.cpp" "tests/CMakeFiles/test_model.dir/model/inversion_test.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/inversion_test.cpp.o.d"
  "/root/repo/tests/model/linalg_test.cpp" "tests/CMakeFiles/test_model.dir/model/linalg_test.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/linalg_test.cpp.o.d"
  "/root/repo/tests/model/measurement_test.cpp" "tests/CMakeFiles/test_model.dir/model/measurement_test.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/measurement_test.cpp.o.d"
  "/root/repo/tests/model/model_test.cpp" "tests/CMakeFiles/test_model.dir/model/model_test.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/model_test.cpp.o.d"
  "/root/repo/tests/model/multiparam_test.cpp" "tests/CMakeFiles/test_model.dir/model/multiparam_test.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/multiparam_test.cpp.o.d"
  "/root/repo/tests/model/planted_recovery_test.cpp" "tests/CMakeFiles/test_model.dir/model/planted_recovery_test.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/planted_recovery_test.cpp.o.d"
  "/root/repo/tests/model/search_space_test.cpp" "tests/CMakeFiles/test_model.dir/model/search_space_test.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/search_space_test.cpp.o.d"
  "/root/repo/tests/model/serialize_test.cpp" "tests/CMakeFiles/test_model.dir/model/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/serialize_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/exareq_model.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/exareq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
