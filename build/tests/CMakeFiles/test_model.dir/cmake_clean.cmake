file(REMOVE_RECURSE
  "CMakeFiles/test_model.dir/model/basis_test.cpp.o"
  "CMakeFiles/test_model.dir/model/basis_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/fitter_test.cpp.o"
  "CMakeFiles/test_model.dir/model/fitter_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/inversion_test.cpp.o"
  "CMakeFiles/test_model.dir/model/inversion_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/linalg_test.cpp.o"
  "CMakeFiles/test_model.dir/model/linalg_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/measurement_test.cpp.o"
  "CMakeFiles/test_model.dir/model/measurement_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/model_test.cpp.o"
  "CMakeFiles/test_model.dir/model/model_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/multiparam_test.cpp.o"
  "CMakeFiles/test_model.dir/model/multiparam_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/planted_recovery_test.cpp.o"
  "CMakeFiles/test_model.dir/model/planted_recovery_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/search_space_test.cpp.o"
  "CMakeFiles/test_model.dir/model/search_space_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/serialize_test.cpp.o"
  "CMakeFiles/test_model.dir/model/serialize_test.cpp.o.d"
  "test_model"
  "test_model.pdb"
  "test_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
