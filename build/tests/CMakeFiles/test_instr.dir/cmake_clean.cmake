file(REMOVE_RECURSE
  "CMakeFiles/test_instr.dir/instr/memory_test.cpp.o"
  "CMakeFiles/test_instr.dir/instr/memory_test.cpp.o.d"
  "CMakeFiles/test_instr.dir/instr/process_test.cpp.o"
  "CMakeFiles/test_instr.dir/instr/process_test.cpp.o.d"
  "CMakeFiles/test_instr.dir/instr/region_test.cpp.o"
  "CMakeFiles/test_instr.dir/instr/region_test.cpp.o.d"
  "test_instr"
  "test_instr.pdb"
  "test_instr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
