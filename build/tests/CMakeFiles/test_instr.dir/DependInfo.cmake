
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/instr/memory_test.cpp" "tests/CMakeFiles/test_instr.dir/instr/memory_test.cpp.o" "gcc" "tests/CMakeFiles/test_instr.dir/instr/memory_test.cpp.o.d"
  "/root/repo/tests/instr/process_test.cpp" "tests/CMakeFiles/test_instr.dir/instr/process_test.cpp.o" "gcc" "tests/CMakeFiles/test_instr.dir/instr/process_test.cpp.o.d"
  "/root/repo/tests/instr/region_test.cpp" "tests/CMakeFiles/test_instr.dir/instr/region_test.cpp.o" "gcc" "tests/CMakeFiles/test_instr.dir/instr/region_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/instr/CMakeFiles/exareq_instr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/exareq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
