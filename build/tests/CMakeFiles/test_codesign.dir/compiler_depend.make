# Empty compiler generated dependencies file for test_codesign.
# This may be replaced when dependencies are built.
