file(REMOVE_RECURSE
  "CMakeFiles/test_codesign.dir/codesign/requirements_test.cpp.o"
  "CMakeFiles/test_codesign.dir/codesign/requirements_test.cpp.o.d"
  "CMakeFiles/test_codesign.dir/codesign/sharing_test.cpp.o"
  "CMakeFiles/test_codesign.dir/codesign/sharing_test.cpp.o.d"
  "CMakeFiles/test_codesign.dir/codesign/strawman_test.cpp.o"
  "CMakeFiles/test_codesign.dir/codesign/strawman_test.cpp.o.d"
  "CMakeFiles/test_codesign.dir/codesign/upgrade_test.cpp.o"
  "CMakeFiles/test_codesign.dir/codesign/upgrade_test.cpp.o.d"
  "test_codesign"
  "test_codesign.pdb"
  "test_codesign[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
