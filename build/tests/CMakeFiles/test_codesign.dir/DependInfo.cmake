
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/codesign/requirements_test.cpp" "tests/CMakeFiles/test_codesign.dir/codesign/requirements_test.cpp.o" "gcc" "tests/CMakeFiles/test_codesign.dir/codesign/requirements_test.cpp.o.d"
  "/root/repo/tests/codesign/sharing_test.cpp" "tests/CMakeFiles/test_codesign.dir/codesign/sharing_test.cpp.o" "gcc" "tests/CMakeFiles/test_codesign.dir/codesign/sharing_test.cpp.o.d"
  "/root/repo/tests/codesign/strawman_test.cpp" "tests/CMakeFiles/test_codesign.dir/codesign/strawman_test.cpp.o" "gcc" "tests/CMakeFiles/test_codesign.dir/codesign/strawman_test.cpp.o.d"
  "/root/repo/tests/codesign/upgrade_test.cpp" "tests/CMakeFiles/test_codesign.dir/codesign/upgrade_test.cpp.o" "gcc" "tests/CMakeFiles/test_codesign.dir/codesign/upgrade_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codesign/CMakeFiles/exareq_codesign.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/exareq_model.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/exareq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
