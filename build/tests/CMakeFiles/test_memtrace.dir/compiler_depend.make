# Empty compiler generated dependencies file for test_memtrace.
# This may be replaced when dependencies are built.
