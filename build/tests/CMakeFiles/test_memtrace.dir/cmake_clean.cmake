file(REMOVE_RECURSE
  "CMakeFiles/test_memtrace.dir/memtrace/cache_model_test.cpp.o"
  "CMakeFiles/test_memtrace.dir/memtrace/cache_model_test.cpp.o.d"
  "CMakeFiles/test_memtrace.dir/memtrace/cache_sim_test.cpp.o"
  "CMakeFiles/test_memtrace.dir/memtrace/cache_sim_test.cpp.o.d"
  "CMakeFiles/test_memtrace.dir/memtrace/distance_test.cpp.o"
  "CMakeFiles/test_memtrace.dir/memtrace/distance_test.cpp.o.d"
  "CMakeFiles/test_memtrace.dir/memtrace/fenwick_test.cpp.o"
  "CMakeFiles/test_memtrace.dir/memtrace/fenwick_test.cpp.o.d"
  "CMakeFiles/test_memtrace.dir/memtrace/locality_test.cpp.o"
  "CMakeFiles/test_memtrace.dir/memtrace/locality_test.cpp.o.d"
  "CMakeFiles/test_memtrace.dir/memtrace/mmm_test.cpp.o"
  "CMakeFiles/test_memtrace.dir/memtrace/mmm_test.cpp.o.d"
  "CMakeFiles/test_memtrace.dir/memtrace/sampling_test.cpp.o"
  "CMakeFiles/test_memtrace.dir/memtrace/sampling_test.cpp.o.d"
  "CMakeFiles/test_memtrace.dir/memtrace/trace_test.cpp.o"
  "CMakeFiles/test_memtrace.dir/memtrace/trace_test.cpp.o.d"
  "test_memtrace"
  "test_memtrace.pdb"
  "test_memtrace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memtrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
