
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/memtrace/cache_model_test.cpp" "tests/CMakeFiles/test_memtrace.dir/memtrace/cache_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_memtrace.dir/memtrace/cache_model_test.cpp.o.d"
  "/root/repo/tests/memtrace/cache_sim_test.cpp" "tests/CMakeFiles/test_memtrace.dir/memtrace/cache_sim_test.cpp.o" "gcc" "tests/CMakeFiles/test_memtrace.dir/memtrace/cache_sim_test.cpp.o.d"
  "/root/repo/tests/memtrace/distance_test.cpp" "tests/CMakeFiles/test_memtrace.dir/memtrace/distance_test.cpp.o" "gcc" "tests/CMakeFiles/test_memtrace.dir/memtrace/distance_test.cpp.o.d"
  "/root/repo/tests/memtrace/fenwick_test.cpp" "tests/CMakeFiles/test_memtrace.dir/memtrace/fenwick_test.cpp.o" "gcc" "tests/CMakeFiles/test_memtrace.dir/memtrace/fenwick_test.cpp.o.d"
  "/root/repo/tests/memtrace/locality_test.cpp" "tests/CMakeFiles/test_memtrace.dir/memtrace/locality_test.cpp.o" "gcc" "tests/CMakeFiles/test_memtrace.dir/memtrace/locality_test.cpp.o.d"
  "/root/repo/tests/memtrace/mmm_test.cpp" "tests/CMakeFiles/test_memtrace.dir/memtrace/mmm_test.cpp.o" "gcc" "tests/CMakeFiles/test_memtrace.dir/memtrace/mmm_test.cpp.o.d"
  "/root/repo/tests/memtrace/sampling_test.cpp" "tests/CMakeFiles/test_memtrace.dir/memtrace/sampling_test.cpp.o" "gcc" "tests/CMakeFiles/test_memtrace.dir/memtrace/sampling_test.cpp.o.d"
  "/root/repo/tests/memtrace/trace_test.cpp" "tests/CMakeFiles/test_memtrace.dir/memtrace/trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_memtrace.dir/memtrace/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memtrace/CMakeFiles/exareq_memtrace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/exareq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
