file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline.dir/pipeline/campaign_test.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/campaign_test.cpp.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/integration_test.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/integration_test.cpp.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/report_test.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/report_test.cpp.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/robustness_test.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/robustness_test.cpp.o.d"
  "test_pipeline"
  "test_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
