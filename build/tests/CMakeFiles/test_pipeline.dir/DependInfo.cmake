
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pipeline/campaign_test.cpp" "tests/CMakeFiles/test_pipeline.dir/pipeline/campaign_test.cpp.o" "gcc" "tests/CMakeFiles/test_pipeline.dir/pipeline/campaign_test.cpp.o.d"
  "/root/repo/tests/pipeline/integration_test.cpp" "tests/CMakeFiles/test_pipeline.dir/pipeline/integration_test.cpp.o" "gcc" "tests/CMakeFiles/test_pipeline.dir/pipeline/integration_test.cpp.o.d"
  "/root/repo/tests/pipeline/report_test.cpp" "tests/CMakeFiles/test_pipeline.dir/pipeline/report_test.cpp.o" "gcc" "tests/CMakeFiles/test_pipeline.dir/pipeline/report_test.cpp.o.d"
  "/root/repo/tests/pipeline/robustness_test.cpp" "tests/CMakeFiles/test_pipeline.dir/pipeline/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/test_pipeline.dir/pipeline/robustness_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/exareq_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/exareq_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/codesign/CMakeFiles/exareq_codesign.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/exareq_model.dir/DependInfo.cmake"
  "/root/repo/build/src/memtrace/CMakeFiles/exareq_memtrace.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/exareq_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/instr/CMakeFiles/exareq_instr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/exareq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
