#include "bench_common.hpp"

#include <cstdio>
#include <map>

namespace exareq::bench {

const AppModels& app_models(apps::AppId id) {
  static std::map<apps::AppId, AppModels> cache;
  auto it = cache.find(id);
  if (it == cache.end()) {
    std::fprintf(stderr, "[measuring %s ...]\n", apps::app_name(id).c_str());
    AppModels entry;
    entry.data = pipeline::run_campaign(apps::application(id));
    entry.models = pipeline::model_requirements(entry.data);
    entry.requirements = pipeline::to_requirements(entry.models);
    it = cache.emplace(id, std::move(entry)).first;
  }
  return it->second;
}

void print_banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n\n");
}

}  // namespace exareq::bench
