// Measurement-campaign benchmark: wall time and peak RSS of the full grid
// per application at several campaign thread counts, plus a streamed-vs-
// materialized comparison of the locality path (wall time, analyzer bytes,
// and the weighted median, which must be identical). Also sweeps the
// crash-safety path (cold vs checkpointed vs zero-remaining-resume wall
// time, CSV identity) and the compressed trace encoding against a trace of
// at least --compress-target accesses. Prints scaling tables and writes
// BENCH_campaign.json for trend tracking.
//
//   bench_campaign [--processes L] [--sizes L] [--threads-list L]
//                  [--locality-size N] [--compress-target N]
//                  [--out FILE] [--trace FILE]
//
// Note: campaign speedup is bounded by the machine's core count (each grid
// point already spawns p simulated-rank threads), so expect flat scaling on
// a single-core runner — the CSV-identity check still exercises the
// concurrent path.
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <optional>

#include "apps/application.hpp"
#include "cli/cli.hpp"
#include "memtrace/compressed_trace.hpp"
#include "memtrace/locality.hpp"
#include "obs/trace.hpp"
#include "pipeline/campaign.hpp"
#include "support/error.hpp"
#include "support/format.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace exareq;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Process high-water RSS in kilobytes (monotone over the process life).
long peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

struct CampaignRun {
  std::size_t threads = 0;
  double seconds = 0.0;
  long peak_rss_kb = 0;
};

struct LocalityRun {
  double seconds = 0.0;
  std::size_t bytes = 0;
  double weighted_median = 0.0;
  std::size_t trace_length = 0;
};

struct CheckpointSweep {
  double cold_seconds = 0.0;        ///< no checkpointing at all
  double checkpoint_seconds = 0.0;  ///< fresh run, appending every point
  double resume_seconds = 0.0;      ///< resume with zero remaining points
  bool csv_identical = true;        ///< all three CSVs byte-identical

  double checkpoint_overhead() const {
    return cold_seconds > 0.0
               ? (checkpoint_seconds - cold_seconds) / cold_seconds
               : 0.0;
  }
  double resume_overhead() const {
    return cold_seconds > 0.0 ? resume_seconds / cold_seconds : 0.0;
  }
};

struct CompressionSweep {
  std::int64_t problem_size = 0;  ///< n grown until one pass stops growing
  std::size_t passes = 1;         ///< trace passes replayed to hit the target
  std::size_t trace_length = 0;
  std::size_t materialized_bytes = 0;  ///< AccessTrace (16 B per access)
  std::size_t streamed_bytes = 0;      ///< LocalityAnalyzer working memory
  std::size_t compressed_bytes = 0;    ///< delta+varint encoded stream
  std::size_t serialized_bytes = 0;    ///< full container with group table
  bool median_identical = true;        ///< analysis unchanged through codec
};

struct AppResult {
  std::string name;
  std::vector<CampaignRun> campaigns;
  bool csv_identical = true;
  LocalityRun streamed;
  LocalityRun materialized;
  CheckpointSweep checkpoint;
  CompressionSweep compression;
};

CheckpointSweep bench_checkpoint(const apps::Application& app,
                                 const pipeline::CampaignConfig& base) {
  CheckpointSweep sweep;
  pipeline::CampaignConfig config = base;
  config.threads = 1;

  auto timed_csv = [&](double& seconds) {
    const auto start = std::chrono::steady_clock::now();
    const pipeline::CampaignData data = pipeline::run_campaign(app, config);
    seconds = seconds_since(start);
    return data.to_csv().to_string();
  };

  const std::string cold = timed_csv(sweep.cold_seconds);

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("bench_campaign_ckpt_" + app.name()))
          .string();
  std::filesystem::remove_all(dir);
  config.checkpoint.directory = dir;
  const std::string checkpointed = timed_csv(sweep.checkpoint_seconds);

  config.checkpoint.resume = true;
  const std::string resumed = timed_csv(sweep.resume_seconds);
  std::filesystem::remove_all(dir);

  sweep.csv_identical = checkpointed == cold && resumed == cold;
  return sweep;
}

CompressionSweep bench_compression(const apps::Application& app,
                                   std::int64_t locality_size,
                                   std::int64_t compress_target) {
  // The proxies bound their locality working sets regardless of n, so one
  // pass tops out well short of a production-scale trace. Grow n until a
  // single pass stops getting longer, then replay whole passes (sinks dedup
  // group re-registration) until the stream reaches the target length.
  CompressionSweep sweep;
  std::int64_t n = locality_size;
  std::size_t pass_length = 0;
  {
    memtrace::CompressedTrace probe;
    app.trace_locality(n, probe);
    pass_length = probe.size();
  }
  for (int attempt = 0; attempt < 16; ++attempt) {
    if (static_cast<std::int64_t>(pass_length) >= compress_target) break;
    memtrace::CompressedTrace probe;
    app.trace_locality(n * 2, probe);
    if (probe.size() <= pass_length) break;
    n *= 2;
    pass_length = probe.size();
  }
  exareq::require(pass_length > 0,
                  "bench_campaign: app produced an empty locality trace");
  sweep.passes = static_cast<std::size_t>(std::max<std::int64_t>(
      1, (compress_target + static_cast<std::int64_t>(pass_length) - 1) /
             static_cast<std::int64_t>(pass_length)));

  memtrace::CompressedTrace compressed;
  for (std::size_t pass = 0; pass < sweep.passes; ++pass) {
    app.trace_locality(n, compressed);
  }
  sweep.problem_size = n;
  sweep.trace_length = compressed.size();
  sweep.compressed_bytes = compressed.compressed_bytes();
  sweep.serialized_bytes = compressed.serialize().size();
  sweep.materialized_bytes = compressed.size() * sizeof(memtrace::Access);

  const memtrace::LocalityConfig config = pipeline::LocalityOptions{}.config;
  memtrace::LocalityAnalyzer direct(config);
  for (std::size_t pass = 0; pass < sweep.passes; ++pass) {
    app.trace_locality(n, direct);
  }
  const double total = static_cast<double>(direct.recorded());
  sweep.streamed_bytes = direct.memory_bytes();

  memtrace::LocalityAnalyzer via_codec(config);
  compressed.replay(via_codec);
  sweep.median_identical =
      direct.finish(total).weighted_median_stack_distance ==
      via_codec.finish(total).weighted_median_stack_distance;
  return sweep;
}

AppResult bench_app(apps::AppId id, const pipeline::CampaignConfig& base,
                    const std::vector<std::int64_t>& threads_list,
                    std::int64_t locality_size,
                    std::int64_t compress_target) {
  const apps::Application& app = apps::application(id);
  AppResult result;
  result.name = app.name();

  std::string reference_csv;
  for (const std::int64_t threads : threads_list) {
    pipeline::CampaignConfig config = base;
    config.threads = static_cast<std::size_t>(threads);
    const auto start = std::chrono::steady_clock::now();
    const pipeline::CampaignData data = pipeline::run_campaign(app, config);
    CampaignRun run;
    run.threads = config.threads;
    run.seconds = seconds_since(start);
    run.peak_rss_kb = peak_rss_kb();
    result.campaigns.push_back(run);
    const std::string csv = data.to_csv().to_string();
    if (reference_csv.empty()) {
      reference_csv = csv;
    } else if (csv != reference_csv) {
      result.csv_identical = false;
    }
  }

  const memtrace::LocalityConfig config = pipeline::LocalityOptions{}.config;
  {
    const auto start = std::chrono::steady_clock::now();
    memtrace::LocalityAnalyzer analyzer(config);
    app.trace_locality(locality_size, analyzer);
    const memtrace::LocalityReport report =
        analyzer.finish(static_cast<double>(analyzer.recorded()));
    result.streamed.seconds = seconds_since(start);
    result.streamed.bytes = analyzer.memory_bytes();
    result.streamed.weighted_median = report.weighted_median_stack_distance;
    result.streamed.trace_length = report.trace_length;
  }
  {
    const auto start = std::chrono::steady_clock::now();
    const memtrace::AccessTrace trace = app.locality_trace(locality_size);
    memtrace::LocalityAnalyzer analyzer(config);
    trace.replay(analyzer);
    const memtrace::LocalityReport report =
        analyzer.finish(static_cast<double>(trace.size()));
    result.materialized.seconds = seconds_since(start);
    result.materialized.bytes = trace.memory_bytes() + analyzer.memory_bytes();
    result.materialized.weighted_median =
        report.weighted_median_stack_distance;
    result.materialized.trace_length = report.trace_length;
  }
  result.checkpoint = bench_checkpoint(app, base);
  result.compression = bench_compression(app, locality_size, compress_target);
  return result;
}

std::string flag_value(const std::vector<std::string>& args,
                       const std::string& name, const std::string& fallback) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == "--" + name) return args[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  pipeline::CampaignConfig base;
  base.process_counts.clear();
  for (const std::int64_t p :
       cli::parse_int_list(flag_value(args, "processes", "2,4,8,16"))) {
    base.process_counts.push_back(static_cast<int>(p));
  }
  base.problem_sizes = cli::parse_int_list(
      flag_value(args, "sizes", "32,64,128,256"));
  const std::vector<std::int64_t> threads_list =
      cli::parse_int_list(flag_value(args, "threads-list", "1,2,4,8"));
  const std::int64_t locality_size =
      std::stoll(flag_value(args, "locality-size", "4096"));
  const std::int64_t compress_target =
      std::stoll(flag_value(args, "compress-target", "1000000"));
  const std::string out_path = flag_value(args, "out", "BENCH_campaign.json");
  const std::string trace_path = flag_value(args, "trace", "");
  std::optional<obs::TraceGuard> trace;
  if (!trace_path.empty()) trace.emplace(trace_path);

  std::cout << "campaign benchmark: " << base.process_counts.size() << " x "
            << base.problem_sizes.size() << " grid, hardware threads = "
            << ThreadPool::hardware_threads() << "\n";

  std::vector<AppResult> results;
  for (const apps::AppId id : apps::all_app_ids()) {
    results.push_back(
        bench_app(id, base, threads_list, locality_size, compress_target));
    const AppResult& r = results.back();

    TextTable table({"Threads", "Seconds", "Speedup", "Peak RSS [MB]"});
    table.set_alignment(
        {Align::kRight, Align::kRight, Align::kRight, Align::kRight});
    for (const CampaignRun& run : r.campaigns) {
      table.add_row({std::to_string(run.threads),
                     format_fixed(run.seconds, 3),
                     format_fixed(r.campaigns.front().seconds / run.seconds, 2)
                         + "x",
                     format_fixed(static_cast<double>(run.peak_rss_kb) / 1024.0,
                                  1)});
    }
    std::cout << '\n' << r.name
              << (r.csv_identical ? " (CSV identical across thread counts)"
                                  : " (CSV MISMATCH!)")
              << '\n'
              << table.render();
    std::cout << "locality n = " << locality_size << ": streamed "
              << format_fixed(r.streamed.seconds, 3) << " s / "
              << r.streamed.bytes << " B, materialized "
              << format_fixed(r.materialized.seconds, 3) << " s / "
              << r.materialized.bytes << " B, weighted median "
              << format_compact(r.streamed.weighted_median)
              << (r.streamed.weighted_median == r.materialized.weighted_median
                      ? " (equal)"
                      : " (MISMATCH!)")
              << '\n';
    std::cout << "checkpoint: cold "
              << format_fixed(r.checkpoint.cold_seconds, 3) << " s, with log "
              << format_fixed(r.checkpoint.checkpoint_seconds, 3)
              << " s (overhead "
              << format_fixed(100.0 * r.checkpoint.checkpoint_overhead(), 1)
              << "%), zero-remaining resume "
              << format_fixed(r.checkpoint.resume_seconds, 3) << " s ("
              << format_fixed(100.0 * r.checkpoint.resume_overhead(), 1)
              << "% of cold)"
              << (r.checkpoint.csv_identical ? "" : " (CSV MISMATCH!)")
              << '\n';
    std::cout << "compression at n = " << r.compression.problem_size << " x "
              << r.compression.passes << " passes ("
              << r.compression.trace_length << " accesses): materialized "
              << r.compression.materialized_bytes << " B, streamed analyzer "
              << r.compression.streamed_bytes << " B, compressed "
              << r.compression.compressed_bytes << " B ("
              << format_fixed(static_cast<double>(r.compression.streamed_bytes) /
                                  static_cast<double>(
                                      r.compression.compressed_bytes),
                              1)
              << "x vs streamed)"
              << (r.compression.median_identical ? "" : " (MEDIAN MISMATCH!)")
              << '\n';
    exareq::require(r.csv_identical,
                    "bench_campaign: CSV differs across thread counts");
    exareq::require(
        r.streamed.weighted_median == r.materialized.weighted_median,
        "bench_campaign: streamed and materialized medians differ");
    exareq::require(r.checkpoint.csv_identical,
                    "bench_campaign: checkpointed/resumed CSV differs from "
                    "the cold run");
    exareq::require(r.compression.median_identical,
                    "bench_campaign: locality analysis changed through the "
                    "compressed codec");
  }

  std::ostringstream json;
  json << "{\n  \"benchmark\": \"campaign\",\n"
       << "  \"hardware_threads\": " << ThreadPool::hardware_threads() << ",\n"
       << "  \"grid\": {\"process_counts\": " << base.process_counts.size()
       << ", \"problem_sizes\": " << base.problem_sizes.size() << "},\n"
       << "  \"locality_size\": " << locality_size << ",\n"
       << "  \"apps\": [\n";
  for (std::size_t a = 0; a < results.size(); ++a) {
    const AppResult& r = results[a];
    json << "    {\"app\": \"" << r.name << "\", \"csv_identical\": "
         << (r.csv_identical ? "true" : "false") << ",\n"
         << "     \"campaign\": [";
    for (std::size_t i = 0; i < r.campaigns.size(); ++i) {
      const CampaignRun& run = r.campaigns[i];
      json << (i ? ", " : "") << "{\"threads\": " << run.threads
           << ", \"seconds\": " << run.seconds
           << ", \"peak_rss_kb\": " << run.peak_rss_kb << '}';
    }
    json << "],\n"
         << "     \"locality\": {\"trace_length\": "
         << r.streamed.trace_length
         << ", \"weighted_median\": " << r.streamed.weighted_median
         << ",\n       \"streamed\": {\"seconds\": " << r.streamed.seconds
         << ", \"bytes\": " << r.streamed.bytes
         << "},\n       \"materialized\": {\"seconds\": "
         << r.materialized.seconds
         << ", \"bytes\": " << r.materialized.bytes << "}},\n"
         << "     \"checkpoint\": {\"cold_seconds\": "
         << r.checkpoint.cold_seconds
         << ", \"checkpoint_seconds\": " << r.checkpoint.checkpoint_seconds
         << ", \"resume_seconds\": " << r.checkpoint.resume_seconds
         << ",\n       \"checkpoint_overhead\": "
         << r.checkpoint.checkpoint_overhead()
         << ", \"resume_overhead\": " << r.checkpoint.resume_overhead()
         << ", \"csv_identical\": "
         << (r.checkpoint.csv_identical ? "true" : "false") << "},\n"
         << "     \"compression\": {\"problem_size\": "
         << r.compression.problem_size
         << ", \"passes\": " << r.compression.passes
         << ", \"trace_length\": " << r.compression.trace_length
         << ",\n       \"materialized_bytes\": "
         << r.compression.materialized_bytes
         << ", \"streamed_bytes\": " << r.compression.streamed_bytes
         << ", \"compressed_bytes\": " << r.compression.compressed_bytes
         << ",\n       \"serialized_bytes\": " << r.compression.serialized_bytes
         << ", \"median_identical\": "
         << (r.compression.median_identical ? "true" : "false") << "}}"
         << (a + 1 < results.size() ? "," : "") << '\n';
  }
  json << "  ]\n}\n";
  std::ofstream(out_path) << json.str();
  std::cout << "\nwrote " << out_path << '\n';
  if (trace.has_value()) {
    trace->finish();
    std::cout << "wrote " << trace->spans_written() << " trace spans to "
              << trace->path() << '\n';
  }
  return 0;
}
