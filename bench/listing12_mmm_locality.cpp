// Listings 1-2 / Sec. II-D reproduction: locality analysis of the naive and
// blocked matrix-matrix multiplications. The naive kernel's stack distances
// grow with the matrix size (SD(A) ~ 2n, SD(B) ~ n^2 + 2n - 1) while the
// blocked kernel's stay constant (SD(A) ~ 2b + 1, SD(B) ~ 2b^2 + b,
// SD(C) = 2) — the empirical demonstration that the method detects whether
// an implementation is locality-preserving, plus a model fit of SD(B) over
// the matrix size.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "memtrace/cache_model.hpp"
#include "memtrace/cache_sim.hpp"
#include "memtrace/locality.hpp"
#include "memtrace/mmm.hpp"
#include "model/fitter.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

namespace {

using namespace exareq;

constexpr std::size_t kBlock = 4;

memtrace::LocalityReport analyze(const memtrace::AccessTrace& trace) {
  memtrace::LocalityConfig config;
  config.sampler = memtrace::SamplerConfig::exact();
  config.min_samples = 16;
  return memtrace::analyze_locality(trace, config,
                                    static_cast<double>(trace.size()));
}

int run() {
  bench::print_banner("Naive vs. blocked matrix-multiply locality",
                      "Listings 1-2 and the Sec. II-D analysis");

  const std::vector<std::size_t> sizes = {8, 12, 16, 24, 32, 40, 48};

  TextTable table({"n", "naive SD(A)", "naive SD(B)", "naive SD(C)",
                   "blocked SD(A)", "blocked SD(B)", "blocked SD(C)"});
  model::MeasurementSet naive_b({"n"});
  model::MeasurementSet naive_a({"n"});
  for (const std::size_t n : sizes) {
    const auto a = memtrace::make_matrix(n, 1.0f);
    const auto b = memtrace::make_matrix(n, 2.0f);
    const auto naive = memtrace::traced_mmm_naive(a, b, n);
    const auto blocked = memtrace::traced_mmm_blocked(a, b, n, kBlock);
    const auto naive_report = analyze(naive.trace);
    const auto blocked_report = analyze(blocked.trace);

    const auto cell = [](const memtrace::GroupLocality& g) {
      return g.samples == 0 ? std::string("never reused")
                            : format_compact(g.median_stack_distance);
    };
    table.add_row({std::to_string(n),
                   cell(naive_report.groups[naive.group_a]),
                   cell(naive_report.groups[naive.group_b]),
                   cell(naive_report.groups[naive.group_c]),
                   cell(blocked_report.groups[blocked.group_a]),
                   cell(blocked_report.groups[blocked.group_b]),
                   cell(blocked_report.groups[blocked.group_c])});
    naive_a.add({static_cast<double>(n)},
                naive_report.groups[naive.group_a].median_stack_distance);
    naive_b.add({static_cast<double>(n)},
                naive_report.groups[naive.group_b].median_stack_distance);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper's closed forms: naive SD(A) = 2n - 1-ish, naive SD(B) =\n"
              "n^2 + 2n - 1, C never reused; blocked distances depend only on\n"
              "the block size b = %zu (SD(C) = 2).\n\n", kBlock);

  // Model the naive kernel's SD growth as the paper's method would.
  const auto fit_a = model::fit_single_parameter(naive_a);
  const auto fit_b = model::fit_single_parameter(naive_b);
  std::printf("Fitted naive-kernel locality models (Extra-P substitute):\n");
  std::printf("  SD(A)(n) = %s\n", fit_a.model.to_string().c_str());
  std::printf("  SD(B)(n) = %s\n", fit_b.model.to_string().c_str());
  std::printf(
      "\nThe stack distance of B grows quadratically: as n grows, accesses\n"
      "to B are the first to fall out of any cache — change the algorithm\n"
      "(blocking), not the hardware (Sec. II-D conclusion).\n\n");

  // Quantify Sec. II-D's cache narrative: predicted LRU miss ratios from
  // the stack-distance distribution (exact for full associativity,
  // Mattson), validated against an executed set-associative simulation.
  std::printf(
      "Predicted LRU miss ratios vs simulated 8-way cache (n = 32, b = %zu):\n",
      kBlock);
  const std::size_t n = 32;
  const auto a32 = memtrace::make_matrix(n, 1.0f);
  const auto b32 = memtrace::make_matrix(n, 2.0f);
  const auto naive32 = memtrace::traced_mmm_naive(a32, b32, n);
  const auto blocked32 = memtrace::traced_mmm_blocked(a32, b32, n, kBlock);
  memtrace::LocalityConfig exact;
  exact.sampler = memtrace::SamplerConfig::exact();
  const std::uint64_t capacities[] = {64, 256, 1024, 4096};
  const auto naive_pred =
      memtrace::predict_miss_ratios(naive32.trace, exact, capacities);
  const auto blocked_pred =
      memtrace::predict_miss_ratios(blocked32.trace, exact, capacities);

  TextTable cache_table({"Capacity [locations]", "naive predicted",
                         "naive simulated (8-way)", "blocked predicted",
                         "blocked simulated (8-way)"});
  for (std::size_t c = 0; c < std::size(capacities); ++c) {
    const memtrace::CacheConfig assoc{capacities[c] / 8, 8, 1};
    const auto naive_sim = memtrace::simulate_cache(naive32.trace, assoc);
    const auto blocked_sim = memtrace::simulate_cache(blocked32.trace, assoc);
    cache_table.add_row({std::to_string(capacities[c]),
                         format_fixed(naive_pred.total_miss_ratio[c], 3),
                         format_fixed(naive_sim.miss_ratio(), 3),
                         format_fixed(blocked_pred.total_miss_ratio[c], 3),
                         format_fixed(blocked_sim.miss_ratio(), 3)});
  }
  std::printf("%s\n", cache_table.render().c_str());
  std::printf(
      "The naive kernel needs ~n^2 = 1024 locations before B starts hitting;\n"
      "the blocked kernel is already near its floor at 64 — and the\n"
      "hardware-free prediction tracks the executed 8-way cache closely.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
