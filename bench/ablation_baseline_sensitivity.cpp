// Ablation: sensitivity of the upgrade-study ratios (Table V) to the
// baseline system the study assumes. The paper notes that upgrade ratios
// are baseline-independent only when the requirement models factor into
// single-parameter functions ("this will not be generally true as it
// depends on the specific relative upgrade"); this harness quantifies the
// effect by sweeping the baseline process count across three orders of
// magnitude.
#include <cstdio>
#include <optional>
#include <string>

#include "bench_common.hpp"
#include "codesign/upgrade.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

namespace {

using namespace exareq;

int run() {
  bench::print_banner(
      "Ablation: baseline sensitivity of the upgrade ratios",
      "Sec. III-A's caveat on relative upgrades (supporting Table V)");

  const auto upgrade = codesign::paper_upgrades()[0];  // double the racks
  TextTable table({"App", "Ratio", "base p = 2^12", "base p = 2^16",
                   "base p = 2^20"});
  table.set_alignment({Align::kLeft, Align::kLeft, Align::kRight,
                       Align::kRight, Align::kRight});

  for (apps::AppId id : apps::all_app_ids()) {
    const auto& req = bench::app_models(id).requirements;
    std::vector<std::string> compute{req.name, "Computation"};
    std::vector<std::string> memory{"", "Memory access"};
    for (const double base_p : {4096.0, 65536.0, 1048576.0}) {
      const codesign::SystemSkeleton base{base_p, 1ull << 31};
      try {
        const auto outcome =
            codesign::evaluate_upgrade(req, base, upgrade).outcome;
        compute.push_back(format_fixed(outcome.computation_ratio, 2));
        memory.push_back(format_fixed(outcome.memory_access_ratio, 2));
      } catch (const Error&) {
        compute.push_back("n/a");
        memory.push_back("n/a");
      }
    }
    table.add_row(std::move(compute));
    table.add_row(std::move(memory));
    table.add_separator();
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Applications whose models factor into f(n) * g(p) (Kripke, LULESH)\n"
      "show near-constant ratios; additive mixtures (MILC's p^1.5 term)\n"
      "drift with the baseline — exactly the caveat the paper raises.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
