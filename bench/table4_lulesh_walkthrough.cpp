// Table IV reproduction: the step-by-step workflow for determining LULESH's
// requirements after doubling the number of racks (upgrade A), printed in
// the same five steps as the paper.
#include <cstdio>

#include "bench_common.hpp"
#include "codesign/upgrade.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

namespace {

using namespace exareq;

int run() {
  bench::print_banner(
      "Workflow: LULESH requirements after doubling the racks (upgrade A)",
      "Table IV (Sec. III-A)");

  const auto& lulesh = bench::app_models(apps::AppId::kLulesh);
  const codesign::AppRequirements& req = lulesh.requirements;

  std::printf("Step I   Requirement models (fitted from measurements):\n");
  std::printf("  #FLOP               %s\n", req.flops.to_string_rounded().c_str());
  std::printf("  #Bytes sent & recv  %s\n",
              req.comm_bytes.to_string_rounded().c_str());
  std::printf("  #Loads & stores     %s\n",
              req.loads_stores.to_string_rounded().c_str());
  std::printf("  #Bytes used         %s\n",
              req.footprint.to_string_rounded().c_str());

  const codesign::SystemSkeleton base{1048576.0, 1ull << 31};  // 2^20, 2 GiB
  const codesign::UpgradeScenario upgrade = codesign::paper_upgrades()[0];
  const auto walk = codesign::evaluate_upgrade(req, base, upgrade);

  std::printf("\nStep II  New system configuration (%s):\n",
              upgrade.label.c_str());
  TextTable config({"Configuration parameter", "Old", "New"});
  config.add_row({"Process count", format_compact(base.processes),
                  format_compact(walk.upgraded.skeleton.processes)});
  config.add_row({"Memory per process", format_bytes(base.memory_per_process),
                  format_bytes(walk.upgraded.skeleton.memory_per_process)});
  std::printf("%s", config.render().c_str());

  std::printf("\nStep III Memory footprint requirement per process:\n");
  std::printf("  old: %s   new: %s (both fill the available memory)\n",
              format_bytes(walk.footprint_old).c_str(),
              format_bytes(walk.footprint_new).c_str());

  std::printf("\nStep IV  Problem size that fills the memory:\n");
  TextTable sizes({"Metric", "Old", "New", "Ratio"});
  sizes.add_row({"Problem size per process",
                 format_compact(walk.baseline.problem_size_per_process),
                 format_compact(walk.upgraded.problem_size_per_process),
                 format_fixed(walk.outcome.problem_size_ratio, 2)});
  sizes.add_row({"Overall problem size",
                 format_compact(walk.baseline.overall_problem_size),
                 format_compact(walk.upgraded.overall_problem_size),
                 format_fixed(walk.outcome.overall_problem_ratio, 2)});
  std::printf("%s", sizes.render().c_str());

  std::printf("\nStep V   New per-process requirements (ratios new/old):\n");
  TextTable ratios({"Metric", "Ratio", "Paper"});
  ratios.add_row({"#FLOP", format_fixed(walk.outcome.computation_ratio, 2),
                  "~1.2"});
  ratios.add_row({"#Bytes sent & recv",
                  format_fixed(walk.outcome.communication_ratio, 2), "~1.2"});
  ratios.add_row({"#Loads & stores",
                  format_fixed(walk.outcome.memory_access_ratio, 2), "~1"});
  std::printf("%s\n", ratios.render().c_str());
  std::printf(
      "Conclusion (paper): computation and communication increase by ~20%%\n"
      "when the racks double, so LULESH can solve a problem twice as large\n"
      "with only a small performance degradation.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
