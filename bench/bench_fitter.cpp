// Model-fitter benchmark: cold full-grid `exareq model` on the five paper
// applications, batched engine (one retained QR per hypothesis generation,
// rank-one LOOCV downdates) vs the scalar per-fold refit loop it replaced.
// Each campaign is measured once; model_requirements then runs cold in both
// engine modes. Prints per-app tables and writes BENCH_fitter.json with
// wall time, CV-solve and downdate counters, candidates/sec, the
// batched-over-scalar speedup, and the solve-count reduction.
//
//   bench_fitter [--apps kripke,lulesh,...] [--processes L] [--sizes L]
//                [--threads N] [--repeat N] [--out FILE]
//
// The scalar mode (batched_cv = false) is bit-for-bit the pre-batching
// fitter, so its column doubles as the regression baseline without needing
// an old binary.
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/application.hpp"
#include "cli/cli.hpp"
#include "pipeline/campaign.hpp"
#include "support/error.hpp"
#include "support/format.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace exareq;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct ModeResult {
  double seconds = 0.0;  ///< best (min) over repeats — cold engines each run
  model::EngineStats stats;
  double cv_sum = 0.0;  ///< sum of per-metric CV scores, for cross-checking
};

struct AppResult {
  std::string name;
  double campaign_seconds = 0.0;
  ModeResult scalar;
  ModeResult batched;
};

double candidates_per_second(const ModeResult& mode) {
  if (mode.seconds <= 0.0) return 0.0;
  return static_cast<double>(mode.stats.hypotheses_scored) / mode.seconds;
}

ModeResult run_mode(const pipeline::CampaignData& data, bool batched_cv,
                    std::size_t threads, std::int64_t repeat) {
  ModeResult result;
  for (std::int64_t r = 0; r < repeat; ++r) {
    model::GeneratorOptions options;
    options.fit.batched_cv = batched_cv;
    options.fit.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    const pipeline::RequirementModels models =
        pipeline::model_requirements(data, options);
    const double seconds = seconds_since(start);
    if (r == 0 || seconds < result.seconds) result.seconds = seconds;
    if (r == 0) {
      result.stats = models.engine_stats();
      for (const pipeline::Metric metric : pipeline::all_metrics()) {
        result.cv_sum += models.result(metric).quality.cv_score;
      }
    }
  }
  return result;
}

AppResult bench_app(apps::AppId id, const pipeline::CampaignConfig& config,
                    std::size_t fit_threads, std::int64_t repeat) {
  const apps::Application& app = apps::application(id);
  AppResult result;
  result.name = app.name();

  const auto start = std::chrono::steady_clock::now();
  const pipeline::CampaignData data = pipeline::run_campaign(app, config);
  result.campaign_seconds = seconds_since(start);

  result.scalar = run_mode(data, /*batched_cv=*/false, fit_threads, repeat);
  result.batched = run_mode(data, /*batched_cv=*/true, fit_threads, repeat);

  // Both engines must agree on fit quality; a drift here means the batched
  // CV diverged from the per-fold refits beyond numerics.
  const double tolerance = 1e-6 * std::max(1.0, std::fabs(result.scalar.cv_sum));
  exareq::require(
      std::fabs(result.batched.cv_sum - result.scalar.cv_sum) <= tolerance,
      "bench_fitter: batched and scalar CV totals diverge on " + result.name);
  return result;
}

std::string flag_value(const std::vector<std::string>& args,
                       const std::string& name, const std::string& fallback) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == "--" + name) return args[i + 1];
  }
  return fallback;
}

std::string lowercase(std::string text) {
  for (char& c : text) c = static_cast<char>(std::tolower(c));
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  pipeline::CampaignConfig config;  // paper default: 5 x 5 full grid
  config.process_counts.clear();
  for (const std::int64_t p :
       cli::parse_int_list(flag_value(args, "processes", "4,8,16,32,64"))) {
    config.process_counts.push_back(static_cast<int>(p));
  }
  config.problem_sizes =
      cli::parse_int_list(flag_value(args, "sizes", "64,128,256,512,1024"));
  const std::size_t fit_threads = static_cast<std::size_t>(
      std::stoll(flag_value(args, "threads", "0")));
  const std::int64_t repeat = std::stoll(flag_value(args, "repeat", "3"));
  const std::string out_path = flag_value(args, "out", "BENCH_fitter.json");
  const std::string apps_filter = lowercase(flag_value(args, "apps", ""));

  std::cout << "fitter benchmark: " << config.process_counts.size() << " x "
            << config.problem_sizes.size() << " grid, fit threads = "
            << (fit_threads == 0 ? ThreadPool::hardware_threads() : fit_threads)
            << ", repeat = " << repeat << "\n";

  std::vector<AppResult> results;
  for (const apps::AppId id : apps::all_app_ids()) {
    const std::string name = lowercase(apps::application(id).name());
    if (!apps_filter.empty() &&
        apps_filter.find(name) == std::string::npos) {
      continue;
    }
    results.push_back(bench_app(id, config, fit_threads, repeat));
    const AppResult& r = results.back();

    TextTable table({"Engine", "Seconds", "Hypotheses", "CV solves",
                     "Extensions", "Downdates", "Cand/s"});
    table.set_alignment({Align::kLeft, Align::kRight, Align::kRight,
                         Align::kRight, Align::kRight, Align::kRight,
                         Align::kRight});
    const auto add = [&](const std::string& label, const ModeResult& mode) {
      table.add_row({label, format_fixed(mode.seconds, 3),
                     format_count(mode.stats.hypotheses_scored),
                     format_count(mode.stats.cv_solves),
                     format_count(mode.stats.qr_extensions),
                     format_count(mode.stats.downdates),
                     format_count(static_cast<std::size_t>(
                         candidates_per_second(mode)))});
    };
    add("scalar", r.scalar);
    add("batched", r.batched);
    std::cout << '\n' << r.name << " (campaign "
              << format_fixed(r.campaign_seconds, 3) << " s)\n"
              << table.render()
              << "speedup " << format_fixed(r.scalar.seconds /
                                            r.batched.seconds, 2)
              << "x, solve reduction "
              << format_fixed(static_cast<double>(r.scalar.stats.cv_solves) /
                              static_cast<double>(std::max<std::size_t>(
                                  r.batched.stats.cv_solves, 1)), 1)
              << "x\n";
  }
  exareq::require(!results.empty(), "bench_fitter: no app matched --apps");

  double scalar_total = 0.0;
  double batched_total = 0.0;
  std::size_t scalar_solves = 0;
  std::size_t batched_solves = 0;
  for (const AppResult& r : results) {
    scalar_total += r.scalar.seconds;
    batched_total += r.batched.seconds;
    scalar_solves += r.scalar.stats.cv_solves;
    batched_solves += r.batched.stats.cv_solves;
  }
  const double speedup = scalar_total / batched_total;
  const double solve_reduction = static_cast<double>(scalar_solves) /
                                 static_cast<double>(
                                     std::max<std::size_t>(batched_solves, 1));
  std::cout << "\ntotal: scalar " << format_fixed(scalar_total, 3)
            << " s, batched " << format_fixed(batched_total, 3)
            << " s, speedup " << format_fixed(speedup, 2)
            << "x, solve reduction " << format_fixed(solve_reduction, 1)
            << "x\n";

  std::ostringstream json;
  json << "{\n  \"benchmark\": \"fitter\",\n"
       << "  \"hardware_threads\": " << ThreadPool::hardware_threads() << ",\n"
       << "  \"grid\": {\"process_counts\": " << config.process_counts.size()
       << ", \"problem_sizes\": " << config.problem_sizes.size() << "},\n"
       << "  \"repeat\": " << repeat << ",\n  \"apps\": [\n";
  for (std::size_t a = 0; a < results.size(); ++a) {
    const AppResult& r = results[a];
    const auto mode_json = [&](const ModeResult& mode) {
      std::ostringstream os;
      os << "{\"seconds\": " << mode.seconds
         << ", \"hypotheses\": " << mode.stats.hypotheses_scored
         << ", \"cv_solves\": " << mode.stats.cv_solves
         << ", \"qr_extensions\": " << mode.stats.qr_extensions
         << ", \"downdates\": " << mode.stats.downdates
         << ", \"candidates_per_sec\": " << candidates_per_second(mode) << '}';
      return os.str();
    };
    json << "    {\"app\": \"" << r.name << "\",\n"
         << "     \"campaign_seconds\": " << r.campaign_seconds << ",\n"
         << "     \"scalar\": " << mode_json(r.scalar) << ",\n"
         << "     \"batched\": " << mode_json(r.batched) << ",\n"
         << "     \"speedup\": " << r.scalar.seconds / r.batched.seconds
         << "}" << (a + 1 < results.size() ? "," : "") << '\n';
  }
  json << "  ],\n  \"total\": {\"scalar_seconds\": " << scalar_total
       << ", \"batched_seconds\": " << batched_total
       << ", \"speedup\": " << speedup
       << ", \"solve_reduction\": " << solve_reduction << "}\n}\n";
  std::ofstream(out_path) << json.str();
  std::cout << "wrote " << out_path << '\n';
  return 0;
}
