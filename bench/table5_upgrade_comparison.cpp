// Table V reproduction: how problem size and per-process requirements of
// all five applications change under the three system upgrades of
// Table III, against the linear baseline expectation.
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "codesign/upgrade.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

namespace {

using namespace exareq;

std::string cell(const std::optional<double>& value) {
  return value.has_value() ? format_fixed(*value, 1) : "n/a";
}

int run() {
  bench::print_banner("System upgrade comparison",
                      "Tables III and V (Sec. III-A)");

  // 2^16 sockets with 2 GiB each: large enough for asymptotic behaviour,
  // small enough that even icoFoam's replicated p*log(p) metadata fits.
  const codesign::SystemSkeleton base{65536.0, 1ull << 31};
  const auto upgrades = codesign::paper_upgrades();
  const auto ids = apps::all_app_ids();

  TextTable table({"Ratios", "Kripke", "LULESH", "MILC", "Relearn", "icoFoam",
                   "Baseline"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight});

  for (const auto& upgrade : upgrades) {
    table.add_section("System upgrade " + upgrade.label);
    std::vector<std::optional<codesign::UpgradeOutcome>> outcomes;
    for (apps::AppId id : ids) {
      const auto& req = bench::app_models(id).requirements;
      try {
        outcomes.push_back(
            codesign::evaluate_upgrade(req, base, upgrade).outcome);
      } catch (const Error&) {
        outcomes.push_back(std::nullopt);
      }
    }
    const auto expectation = codesign::baseline_expectation(upgrade);

    const auto row = [&](const std::string& label, auto member,
                         double baseline_value) {
      std::vector<std::string> cells{label};
      for (const auto& outcome : outcomes) {
        cells.push_back(
            outcome.has_value()
                ? cell(std::optional<double>((*outcome).*member))
                : "n/a");
      }
      cells.push_back(format_fixed(baseline_value, 1));
      table.add_row(std::move(cells));
    };
    row("Problem size per process", &codesign::UpgradeOutcome::problem_size_ratio,
        expectation.problem_size_ratio);
    row("Overall problem size", &codesign::UpgradeOutcome::overall_problem_ratio,
        expectation.overall_problem_ratio);
    row("Computation", &codesign::UpgradeOutcome::computation_ratio,
        expectation.computation_ratio);
    row("Communication", &codesign::UpgradeOutcome::communication_ratio,
        expectation.communication_ratio);
    row("Memory access", &codesign::UpgradeOutcome::memory_access_ratio,
        expectation.memory_access_ratio);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper conclusions to compare against (Sec. III-A): Kripke profits\n"
      "equally from doubling memory or sockets; LULESH draws the biggest\n"
      "advantage from doubling the racks; MILC and Relearn profit most from\n"
      "doubling the memory; icoFoam would benefit only from doubling the\n"
      "memory. No upgrade is best for every application.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
