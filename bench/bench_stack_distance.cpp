// Performance benchmarks of the locality substrate: the Fenwick-based
// Olken stack-distance algorithm versus the quadratic reference (the
// ablation justifying the tree), Fenwick primitive costs, and the cost of
// a full burst-sampled locality analysis.
#include <benchmark/benchmark.h>

#include "memtrace/distance.hpp"
#include "memtrace/locality.hpp"
#include "memtrace/mmm.hpp"
#include "support/rng.hpp"

namespace {

using namespace exareq::memtrace;

AccessTrace random_trace(std::size_t length, std::size_t footprint,
                         std::uint64_t seed) {
  exareq::Rng rng(seed);
  AccessTrace trace;
  const GroupId g = trace.register_group("g");
  trace.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    trace.record(static_cast<std::uint64_t>(
                     rng.uniform_int(0, static_cast<std::int64_t>(footprint) - 1)),
                 g);
  }
  return trace;
}

void BM_OlkenDistances(benchmark::State& state) {
  const auto trace =
      random_trace(static_cast<std::size_t>(state.range(0)), 4096, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_distances(trace));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_OlkenDistances)->Range(1 << 10, 1 << 18);

void BM_ReferenceDistances(benchmark::State& state) {
  const auto trace =
      random_trace(static_cast<std::size_t>(state.range(0)), 4096, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_distances_reference(trace));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_ReferenceDistances)->Range(1 << 10, 1 << 13);

void BM_FenwickSetClear(benchmark::State& state) {
  FenwickTree tree(1 << 16);
  std::size_t position = 0;
  for (auto _ : state) {
    tree.set(position);
    tree.clear(position);
    position = (position + 7919) % (1 << 16);
  }
}
BENCHMARK(BM_FenwickSetClear);

void BM_FenwickRangeCount(benchmark::State& state) {
  FenwickTree tree(1 << 16);
  for (std::size_t i = 0; i < (1 << 16); i += 3) tree.set(i);
  std::size_t lo = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.range_count(lo, lo + 1024));
    lo = (lo + 4099) % ((1 << 16) - 1024);
  }
}
BENCHMARK(BM_FenwickRangeCount);

void BM_LocalityAnalysis(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = make_matrix(n, 1.0f);
  const auto b = make_matrix(n, 2.0f);
  const auto result = traced_mmm_naive(a, b, n);
  LocalityConfig config;
  config.sampler = state.range(1) == 0 ? SamplerConfig::exact()
                                       : SamplerConfig{64, 512, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_locality(
        result.trace, config, static_cast<double>(result.trace.size())));
  }
  state.counters["trace_length"] = static_cast<double>(result.trace.size());
}
BENCHMARK(BM_LocalityAnalysis)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({32, 0})
    ->Args({32, 1});

}  // namespace

BENCHMARK_MAIN();
