// Table II reproduction: per-process requirement models of the five
// applications, generated from measurements on the simulated substrate by
// the Extra-P-substitute model generator. Coefficients are rounded to the
// nearest power of ten, exactly as the paper presents them.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

namespace {

using namespace exareq;

int run() {
  bench::print_banner("Per-process requirement models",
                      "Table II (Sec. III)");

  TextTable table({"App", "Metric", "Model (coefficients rounded)",
                   "CV error"});
  table.set_alignment({Align::kLeft, Align::kLeft, Align::kLeft, Align::kRight});
  for (apps::AppId id : apps::all_app_ids()) {
    const auto& artifacts = bench::app_models(id);
    const std::string app = artifacts.models.app_name;
    bool first = true;
    for (pipeline::Metric metric : pipeline::all_metrics()) {
      if (metric == pipeline::Metric::kBytesSentReceived &&
          !artifacts.models.comm_channels.empty()) {
        // Communication is reported per call path, as in the paper.
        for (const auto& channel : artifacts.models.comm_channels) {
          table.add_row({first ? app : "",
                         "#Bytes sent & recv [" + channel.name + "]",
                         channel.fit.model.to_string_rounded(),
                         format_sci(channel.fit.quality.cv_score, 1)});
          first = false;
        }
        continue;
      }
      const auto& fit = artifacts.models.result(metric);
      table.add_row({first ? app : "", pipeline::metric_label(metric),
                     fit.model.to_string_rounded(),
                     format_sci(fit.quality.cv_score, 1)});
      first = false;
    }
    table.add_separator();
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Coefficients are substrate-specific (our proxies execute less work\n"
      "per element than the originals); the paper itself rounds to powers\n"
      "of ten. The growth *shapes* are the reproduction target — compare\n"
      "with paper Table II. Full-precision models:\n\n");
  for (apps::AppId id : apps::all_app_ids()) {
    const auto& artifacts = bench::app_models(id);
    std::printf("%s:\n", artifacts.models.app_name.c_str());
    for (pipeline::Metric metric : pipeline::all_metrics()) {
      if (metric == pipeline::Metric::kBytesSentReceived) continue;
      std::printf("  %-24s %s\n", pipeline::metric_label(metric).c_str(),
                  artifacts.models.result(metric).model.to_string().c_str());
    }
    for (const auto& channel : artifacts.models.comm_channels) {
      std::printf("  comm[%-18s] %s\n", channel.name.c_str(),
                  channel.fit.model.to_string().c_str());
    }
  }
  return 0;
}

}  // namespace

int main() { return run(); }
