// Figure 1 reproduction: the difference between reuse distance and stack
// distance on a small example trace over three memory locations a, b, c.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "memtrace/distance.hpp"
#include "support/table.hpp"

namespace {

using namespace exareq;

int run() {
  bench::print_banner("Reuse distance vs. stack distance",
                      "Fig. 1 (Sec. II-A)");

  // Access sequence in the spirit of the paper's figure: locations a, b, c
  // with duplicated intermediate accesses so RD and SD diverge.
  const std::vector<std::pair<char, std::uint64_t>> sequence = {
      {'a', 0xA}, {'b', 0xB}, {'b', 0xB}, {'c', 0xC},
      {'a', 0xA}, {'c', 0xC}, {'b', 0xB}, {'a', 0xA},
  };

  memtrace::AccessTrace trace;
  const auto group = trace.register_group("example");
  for (const auto& [label, address] : sequence) trace.record(address, group);
  const auto distances = memtrace::compute_distances(trace);

  TextTable table({"#", "Location", "Reuse distance (RD)",
                   "Stack distance (SD)"});
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    const auto& d = distances[i];
    table.add_row({std::to_string(i + 1), std::string(1, sequence[i].first),
                   d.cold ? "-" : std::to_string(d.reuse_distance),
                   d.cold ? "-" : std::to_string(d.stack_distance)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "RD counts every access between two accesses to the same location;\n"
      "SD counts only accesses to *unique* locations. Access #5 (a) has\n"
      "RD = 3 (b, b, c in between) but SD = 2 (only b and c are unique).\n");
  return 0;
}

}  // namespace

int main() { return run(); }
