// Performance and ablation benchmarks of the model-generation engine
// (Eq. 1/2 fitting). The ablations quantify the design choices DESIGN.md
// calls out: beam width (escaping near-degenerate shapes), search-space
// size, and the leave-one-out cross-validation cost.
#include <benchmark/benchmark.h>

#include <cmath>

#include "model/fitter.hpp"
#include "model/multiparam.hpp"
#include "support/rng.hpp"

namespace {

using namespace exareq::model;

MeasurementSet single_param_data(std::size_t points, double noise,
                                 std::uint64_t seed) {
  exareq::Rng rng(seed);
  MeasurementSet data({"p"});
  double x = 4.0;
  for (std::size_t i = 0; i < points; ++i) {
    const double value = 1e4 * x * std::log2(x) + 500.0 * x;
    data.add({x}, value * (1.0 + noise * rng.normal()));
    x *= 2.0;
  }
  return data;
}

MeasurementSet two_param_grid() {
  MeasurementSet data({"p", "n"});
  for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) {
    for (double n : {64.0, 128.0, 256.0, 512.0, 1024.0}) {
      data.add2(p, n, 1e5 * n * std::log2(n) * std::pow(p, 0.25) * std::log2(p));
    }
  }
  return data;
}

void BM_SingleParameterFit(benchmark::State& state) {
  const auto data =
      single_param_data(static_cast<std::size_t>(state.range(0)), 0.0, 7);
  for (auto _ : state) {
    auto result = fit_single_parameter(data);
    benchmark::DoNotOptimize(result);
  }
  state.counters["points"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SingleParameterFit)->Arg(5)->Arg(7)->Arg(9);

void BM_MultiParameterFit(benchmark::State& state) {
  const auto data = two_param_grid();
  for (auto _ : state) {
    auto result = fit_multi_parameter(data);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MultiParameterFit);

// Engine scaling: the same multi-parameter fit at 1..8 threads. The
// counters expose what the memoizing engine saves — cv_solves is the work
// actually done, hypotheses the work requested; identical models come out
// at every thread count.
void BM_MultiParameterFitThreads(benchmark::State& state) {
  const auto data = two_param_grid();
  MultiParamOptions options;
  options.fit.threads = static_cast<std::size_t>(state.range(0));
  EngineStats stats;
  for (auto _ : state) {
    auto result = fit_multi_parameter(data, options);
    stats = result.stats;
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(stats.threads);
  state.counters["hypotheses"] = static_cast<double>(stats.hypotheses_scored);
  state.counters["cv_solves"] = static_cast<double>(stats.cv_solves);
  state.counters["cache_hit_rate"] = stats.cache_hit_rate();
}
BENCHMARK(BM_MultiParameterFitThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Single-parameter engine scaling on a denser axis (9 points, mild noise
// keeps the search from terminating early).
void BM_SingleParameterFitThreads(benchmark::State& state) {
  const auto data = single_param_data(9, 0.002, 21);
  FitOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto result =
        fit_single_parameter(data, SearchSpace::paper_default(), options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SingleParameterFitThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_CrossValidationScore(benchmark::State& state) {
  const auto data =
      single_param_data(static_cast<std::size_t>(state.range(0)), 0.0, 7);
  Term nlogn;
  nlogn.coefficient = 1.0;
  nlogn.factors = {pmnf_factor(0, 1.0, 1.0)};
  Term linear;
  linear.coefficient = 1.0;
  linear.factors = {pmnf_factor(0, 1.0, 0.0)};
  const std::vector<Term> basis{nlogn, linear};
  for (auto _ : state) {
    benchmark::DoNotOptimize(cross_validation_score(data, basis));
  }
}
BENCHMARK(BM_CrossValidationScore)->Arg(5)->Arg(9)->Arg(15);

// Ablation: beam width. Width 1 is the pure greedy of a naive
// implementation; wider beams escape near-degenerate first picks. The
// cv_score counter shows the quality effect, the timing the cost.
void BM_BeamWidthAblation(benchmark::State& state) {
  const auto data = single_param_data(7, 0.002, 21);
  FitOptions options;
  options.beam_width = static_cast<std::size_t>(state.range(0));
  double score = 0.0;
  for (auto _ : state) {
    const auto result =
        fit_single_parameter(data, SearchSpace::paper_default(), options);
    score = result.quality.cv_score;
    benchmark::DoNotOptimize(result);
  }
  state.counters["cv_score"] = score;
}
BENCHMARK(BM_BeamWidthAblation)->Arg(1)->Arg(2)->Arg(4)->Arg(6);

// Ablation: search-space size (coarse vs the paper's full grid).
void BM_SearchSpaceAblation(benchmark::State& state) {
  const auto data = single_param_data(7, 0.0, 5);
  const SearchSpace space =
      state.range(0) == 0 ? SearchSpace::coarse() : SearchSpace::paper_default();
  double score = 0.0;
  for (auto _ : state) {
    const auto result = fit_single_parameter(data, space);
    score = result.quality.cv_score;
    benchmark::DoNotOptimize(result);
  }
  state.counters["cv_score"] = score;
  state.counters["factors"] = static_cast<double>(space.factor_count());
}
BENCHMARK(BM_SearchSpaceAblation)->Arg(0)->Arg(1);

// Ablation: refinement/stability machinery versus raw term count.
void BM_MaxTermsAblation(benchmark::State& state) {
  const auto data = two_param_grid();
  MultiParamOptions options;
  options.fit.max_terms = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto result = fit_multi_parameter(data, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MaxTermsAblation)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
