// Tables VI and VII reproduction: the three exascale straw-man systems, the
// maximum overall problem each application can solve on each, and the
// lower-bound wall time for a common benchmark problem — plus the paper's
// Sec. III-B what-if of rewriting LULESH's multiplicative p-n coupling as
// an additive one.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "codesign/strawman.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

namespace {

using namespace exareq;

int run() {
  bench::print_banner("Exascale straw-man system comparison",
                      "Tables VI and VII (Sec. III-B)");

  const auto systems = codesign::paper_strawmen();

  TextTable spec({"Metric", "Massively parallel", "Vector", "Hybrid"});
  spec.add_row({"Nodes", format_sci(systems[0].nodes, 0),
                format_sci(systems[1].nodes, 0), format_sci(systems[2].nodes, 0)});
  spec.add_row({"Processors", format_sci(systems[0].processors, 0),
                format_sci(systems[1].processors, 0),
                format_sci(systems[2].processors, 0)});
  spec.add_row({"Processors per node",
                format_sci(systems[0].processors_per_node, 0),
                format_sci(systems[1].processors_per_node, 0),
                format_sci(systems[2].processors_per_node, 0)});
  spec.add_row({"Memory per processor [B]",
                format_sci(systems[0].memory_per_processor, 0),
                format_sci(systems[1].memory_per_processor, 0),
                format_sci(systems[2].memory_per_processor, 0)});
  spec.add_row({"Flop/s per processor",
                format_sci(systems[0].flops_per_processor, 0),
                format_sci(systems[1].flops_per_processor, 0),
                format_sci(systems[2].flops_per_processor, 0)});
  std::printf("Table VI — straw-man systems (1 exaflop/s, 10 PB total):\n%s\n",
              spec.render().c_str());

  TextTable results({"App", "Metric", "Massively parallel", "Vector", "Hybrid"});
  results.set_alignment({Align::kLeft, Align::kLeft, Align::kRight,
                         Align::kRight, Align::kRight});
  for (apps::AppId id : apps::all_app_ids()) {
    const auto& req = bench::app_models(id).requirements;

    std::vector<std::string> problem{req.name, "Max overall problem size"};
    std::vector<std::string> time{"", "Min wall time, benchmark [s]"};
    bool any_feasible = false;
    for (const auto& system : systems) {
      const auto outcome = codesign::evaluate_strawman(req, system);
      if (!outcome.feasible) {
        problem.push_back("does not fit");
        time.push_back("-");
        continue;
      }
      any_feasible = true;
      problem.push_back(format_sci(outcome.max_overall_problem, 1));
      time.push_back("");  // filled below once the benchmark size is known
    }
    if (any_feasible) {
      const double benchmark = codesign::common_benchmark_problem(req, systems);
      for (std::size_t s = 0; s < systems.size(); ++s) {
        const auto seconds =
            codesign::wall_time_lower_bound(req, systems[s], benchmark);
        time[s + 2] = seconds.has_value() ? format_sci(*seconds, 1) : "-";
      }
    }
    results.add_row(std::move(problem));
    results.add_row(std::move(time));
    results.add_separator();
  }
  std::printf("Table VII — per-application outcomes:\n%s\n",
              results.render().c_str());
  std::printf(
      "Paper conclusions to compare against: icoFoam cannot fully utilize\n"
      "any system (its footprint grows with p even at minimal n); Kripke\n"
      "and MILC perform alike everywhere; LULESH solves the largest problem\n"
      "on the massively parallel system but runs the benchmark fastest on\n"
      "the vector system; Relearn strongly prefers the vector system.\n\n");

  // Sec. III-B optimization what-if.
  codesign::AppRequirements lulesh =
      bench::app_models(apps::AppId::kLulesh).requirements;
  const double benchmark = codesign::common_benchmark_problem(lulesh, systems);
  std::printf("LULESH additive-model optimization (Sec. III-B):\n");
  TextTable what_if({"System", "Wall time, current model [s]",
                     "Wall time, additive variant [s]"});
  codesign::AppRequirements optimized = lulesh;
  optimized.flops = codesign::make_additive(optimized.flops);
  for (const auto& system : systems) {
    const auto original =
        codesign::wall_time_lower_bound(lulesh, system, benchmark);
    const auto additive =
        codesign::wall_time_lower_bound(optimized, system, benchmark);
    what_if.add_row({system.name,
                     original.has_value() ? format_sci(*original, 1) : "-",
                     additive.has_value() ? format_sci(*additive, 1) : "-"});
  }
  std::printf("%s\n", what_if.render().c_str());
  std::printf(
      "Making the effects of p and n additive instead of multiplicative\n"
      "improves the time to solution by orders of magnitude on every system\n"
      "(the paper reports ~3 orders of magnitude).\n\n");

  // Refined rate-based bound — the extension the paper sketches at the end
  // of Sec. III-B ("take other requirements such as communication into
  // account ... as long as the system designer can specify the rates").
  // Per-processor rates scaled with processor strength: bytes-to-flop
  // ratios of 0.001 for the network and 0.5 for memory.
  std::printf(
      "Refined per-requirement bound (network B:F = 0.001, memory B:F = 0.5):\n");
  TextTable refined({"App", "System", "Compute [s]", "Network [s]",
                     "Memory [s]", "Bound [s]", "Bottleneck"});
  refined.set_alignment({Align::kLeft, Align::kLeft, Align::kRight,
                         Align::kRight, Align::kRight, Align::kRight,
                         Align::kLeft});
  for (apps::AppId id : apps::all_app_ids()) {
    const auto& req = bench::app_models(id).requirements;
    bool printed_app = false;
    double benchmark2 = 0.0;
    try {
      benchmark2 = codesign::common_benchmark_problem(req, systems);
    } catch (const Error&) {
      continue;  // icoFoam: no feasible system
    }
    for (const auto& system : systems) {
      codesign::SatisfactionRates rates;
      rates.flops_per_second = system.flops_per_processor;
      rates.network_bytes_per_second = system.flops_per_processor * 0.001;
      rates.memory_bytes_per_second = system.flops_per_processor * 0.5;
      const auto bound =
          codesign::refined_wall_time_bound(req, system, rates, benchmark2);
      if (!bound.has_value()) continue;
      refined.add_row({printed_app ? "" : req.name, system.name,
                       format_sci(bound->compute_seconds, 1),
                       format_sci(bound->network_seconds, 1),
                       format_sci(bound->memory_seconds, 1),
                       format_sci(bound->bound_seconds, 1),
                       bound->bottleneck});
      printed_app = true;
    }
    refined.add_separator();
  }
  std::printf("%s\n", refined.render().c_str());
  std::printf(
      "With realistic rates the memory system, not the FPU, bounds most of\n"
      "these applications — the bytes-to-flop balance discussion the paper's\n"
      "introduction motivates.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
