// Figure 3 reproduction: every measurement used for model generation,
// classified by the relative error of its fitted model. The paper reports
// 88% of points below 5% error and most of the rest below 20%.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "support/histogram.hpp"

namespace {

using namespace exareq;

int run() {
  bench::print_banner(
      "Measurements classified by relative error of the generated models",
      "Fig. 3 (Sec. III)");

  std::vector<double> errors;
  for (apps::AppId id : apps::all_app_ids()) {
    const auto app_errors =
        pipeline::all_relative_errors(bench::app_models(id).models);
    errors.insert(errors.end(), app_errors.begin(), app_errors.end());
  }
  const auto bins = classify_relative_errors(errors);
  std::printf("%s\n", render_histogram(bins).c_str());

  std::size_t below5 = 0;
  std::size_t below20 = 0;
  for (double e : errors) {
    if (e < 0.05) ++below5;
    if (e < 0.20) ++below20;
  }
  std::printf(
      "%zu measurement points across all models; %.1f%% below 5%% relative\n"
      "error (paper: 88%%), %.1f%% below 20%% (paper: 96%%).\n",
      errors.size(),
      100.0 * static_cast<double>(below5) / static_cast<double>(errors.size()),
      100.0 * static_cast<double>(below20) /
          static_cast<double>(errors.size()));
  return 0;
}

}  // namespace

int main() { return run(); }
