// Shared helpers for the table/figure reproduction harnesses.
#pragma once

#include <string>

#include "codesign/requirements.hpp"
#include "pipeline/campaign.hpp"
#include "pipeline/codesign_bridge.hpp"

namespace exareq::bench {

/// Campaign + fitted models + co-design bundle for one application, cached
/// per process so harnesses that need several views do the measurement
/// work once.
struct AppModels {
  pipeline::CampaignData data{"", {}};
  pipeline::RequirementModels models;
  codesign::AppRequirements requirements;
};

/// Runs (or returns the cached) default campaign for `id`.
const AppModels& app_models(apps::AppId id);

/// Prints a one-line banner with the experiment name and its paper source.
void print_banner(const std::string& title, const std::string& paper_ref);

}  // namespace exareq::bench
