// Figure 2 reproduction: the modeling effort of architecture-specific
// performance models (one model per application-architecture pair) versus
// application-centric requirements models (one per application).
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "support/table.hpp"

namespace {

using namespace exareq;

int run() {
  bench::print_banner(
      "Modeling effort: architecture-specific vs. requirements models",
      "Fig. 2 (Sec. II-A)");

  const std::size_t applications = apps::all_app_ids().size();
  TextTable table({"#Architectures", "Architecture-specific models",
                   "Requirements models (ours)"});
  for (const std::size_t architectures : {1, 2, 3, 5, 10}) {
    table.add_row({std::to_string(architectures),
                   std::to_string(applications * architectures),
                   std::to_string(applications)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "With %zu target applications, architecture-specific modeling effort\n"
      "grows with the product of applications and architectures, while a\n"
      "requirements model is created once per application (paper Fig. 2).\n",
      applications);
  return 0;
}

}  // namespace

int main() { return run(); }
