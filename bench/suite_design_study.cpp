// Suite-v2 design study: map all nine proxy applications onto the paper's
// three straw-man systems plus the two accelerator straw-men, and rank the
// candidates by the refined per-requirement bound — now including the file
// I/O channel, so checkpoint-style apps can come out I/O-bound instead of
// memory-bound (the distinction the suite-v2 channels exist to expose).
//
//   suite_design_study [--processes L] [--sizes L] [--threads N]
//                      [--io-bandwidth B]
//
// --io-bandwidth is the aggregate parallel-file-system bandwidth in bytes
// per second, shared by all processors (default 1e12, a ~1 TB/s burst
// buffer); 0 drops I/O from the bound.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cli/cli.hpp"
#include "codesign/strawman.hpp"
#include "support/error.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

namespace {

using namespace exareq;

std::string flag_value(const std::vector<std::string>& args,
                       const std::string& name, const std::string& fallback) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == "--" + name) return args[i + 1];
  }
  return fallback;
}

int run(const std::vector<std::string>& args) {
  bench::print_banner("Workload-suite design study (nine apps)",
                      "Sec. III-B extended: accelerator straw-men + I/O");

  pipeline::CampaignConfig config;
  config.process_counts.clear();
  for (const std::int64_t p :
       cli::parse_int_list(flag_value(args, "processes", "4,8,16,32,64"))) {
    config.process_counts.push_back(static_cast<int>(p));
  }
  config.problem_sizes =
      cli::parse_int_list(flag_value(args, "sizes", "64,128,256,512,1024"));
  config.threads = static_cast<std::size_t>(
      std::stoull(flag_value(args, "threads", "0")));
  const double io_bandwidth =
      std::stod(flag_value(args, "io-bandwidth", "1e12"));

  std::vector<codesign::StrawmanSystem> systems = codesign::paper_strawmen();
  for (auto& system : codesign::accelerator_strawmen()) {
    systems.push_back(std::move(system));
  }

  TextTable spec({"System", "Processors", "Memory/proc [B]", "Flop/s/proc",
                  "Total flop/s"});
  spec.set_alignment({Align::kLeft, Align::kRight, Align::kRight,
                      Align::kRight, Align::kRight});
  for (const auto& system : systems) {
    spec.add_row({system.name, format_sci(system.processors, 0),
                  format_sci(system.memory_per_processor, 0),
                  format_sci(system.flops_per_processor, 0),
                  format_sci(system.total_flops(), 0)});
  }
  std::printf("Candidate systems (paper Table VI + accelerator straw-men):\n%s\n",
              spec.render().c_str());

  // Fit the whole suite once on the requested grid (the shared app_models
  // cache uses the default grid; this bench owns its grid so CI can shrink
  // it).
  std::vector<codesign::AppRequirements> suite;
  for (apps::AppId id : apps::all_app_ids()) {
    std::fprintf(stderr, "[measuring %s ...]\n", apps::app_name(id).c_str());
    const pipeline::CampaignData data =
        pipeline::run_campaign(apps::application(id), config);
    suite.push_back(
        pipeline::to_requirements(pipeline::model_requirements(data)));
  }

  TextTable fills({"App", "System", "Fits?", "Max overall problem"});
  fills.set_alignment(
      {Align::kLeft, Align::kLeft, Align::kLeft, Align::kRight});
  for (const auto& req : suite) {
    bool first = true;
    for (const auto& system : systems) {
      const auto outcome = codesign::evaluate_strawman(req, system);
      fills.add_row({first ? req.name : "", system.name,
                     outcome.feasible ? "yes" : "no",
                     outcome.feasible
                         ? format_sci(outcome.max_overall_problem, 1)
                         : "-"});
      first = false;
    }
    fills.add_separator();
  }
  std::printf("Memory fill (Table VII upper rows, all systems):\n%s\n",
              fills.render().c_str());

  std::printf(
      "Refined per-requirement bound (network B:F = 0.001, memory B:F = 0.5,\n"
      "aggregate file system %s B/s shared by all processors):\n",
      format_sci(io_bandwidth, 0).c_str());
  TextTable refined({"App", "System", "Compute [s]", "Network [s]",
                     "Memory [s]", "I/O [s]", "Bound [s]", "Bottleneck"});
  refined.set_alignment({Align::kLeft, Align::kLeft, Align::kRight,
                         Align::kRight, Align::kRight, Align::kRight,
                         Align::kRight, Align::kLeft});
  std::vector<std::string> io_bound_apps;
  for (const auto& req : suite) {
    double benchmark = 0.0;
    try {
      benchmark = codesign::common_benchmark_problem(req, systems);
    } catch (const Error&) {
      continue;  // fits none of the systems (icoFoam on small grids)
    }
    bool printed_app = false;
    bool io_bound_somewhere = false;
    for (const auto& system : systems) {
      const codesign::SatisfactionRates rates =
          codesign::derived_rates(system, io_bandwidth);
      const auto bound =
          codesign::refined_wall_time_bound(req, system, rates, benchmark);
      if (!bound.has_value()) continue;
      refined.add_row({printed_app ? "" : req.name, system.name,
                       format_sci(bound->compute_seconds, 1),
                       format_sci(bound->network_seconds, 1),
                       format_sci(bound->memory_seconds, 1),
                       format_sci(bound->io_seconds, 1),
                       format_sci(bound->bound_seconds, 1),
                       bound->bottleneck});
      printed_app = true;
      io_bound_somewhere |= bound->bottleneck == "file I/O";
    }
    refined.add_separator();
    if (io_bound_somewhere) io_bound_apps.push_back(req.name);
  }
  std::printf("%s\n", refined.render().c_str());

  if (io_bound_apps.empty()) {
    std::printf(
        "No application is file-I/O bound under these rates — raise the\n"
        "problem size or lower --io-bandwidth to expose the channel.\n");
  } else {
    std::printf("File-I/O-bound on at least one system:");
    for (const std::string& name : io_bound_apps) {
      std::printf(" %s", name.c_str());
    }
    std::printf(
        "\nCompute and memory rates scale with the processor count; the\n"
        "shared file system does not. That asymmetry is invisible to the\n"
        "paper's original five metrics and is exactly what the io_bytes\n"
        "channel adds to the co-design study.\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return run(args);
}
