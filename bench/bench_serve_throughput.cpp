// Throughput benchmark for the serve subsystem: a preloaded registry
// answering a mixed eval/invert/upgrade workload at 1-8 worker threads.
// Prints a scaling table and writes BENCH_serve.json (req/s, cache hit
// rate, p99 latency) for trend tracking.
//
//   bench_serve_throughput [--trace FILE]
//
// --trace records the request/cache/compute spans of every run into one
// Chrome trace_event file. Tracing adds per-span overhead, so traced runs
// are not comparable to untraced trend numbers.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <future>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "model/search_space.hpp"
#include "obs/trace.hpp"
#include "online/service.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

namespace {

using namespace exareq;

/// Deterministic mixed workload: mostly cheap evals over a reusable set of
/// points (so the result cache sees repeats, as a real service would), plus
/// footprint inversions and full upgrade-scenario sweeps.
std::vector<std::string> make_workload(const std::string& app,
                                       std::size_t requests) {
  std::vector<std::string> lines;
  lines.reserve(requests);
  const char* metrics[] = {"footprint", "flops", "comm_bytes", "loads_stores"};
  for (std::size_t i = 0; i < requests; ++i) {
    switch (i % 10) {
      case 8: {  // 10 % inversions over 16 distinct skeletons
        const std::size_t v = i / 10 % 16;
        lines.push_back("invert " + app + ' ' +
                        std::to_string(1024 << (v % 4)) + ' ' +
                        std::to_string((1 + v / 4) * 1000000000ULL));
        break;
      }
      case 9: {  // 10 % upgrade sweeps over 8 distinct bases
        const std::size_t v = i / 10 % 8;
        lines.push_back("upgrade " + app + ' ' +
                        std::to_string(2048 << (v % 4)) + ' ' +
                        std::to_string((1 + v / 4) * 2000000000ULL));
        break;
      }
      default: {  // 80 % evals over 64 distinct (metric, p, n) points
        const std::size_t v = i * 7 % 64;
        lines.push_back(std::string("eval ") + app + ' ' + metrics[v % 4] +
                        ' ' + std::to_string(16 << (v / 4 % 4)) + ' ' +
                        std::to_string(256 << (v / 16)));
        break;
      }
    }
  }
  return lines;
}

struct RunResult {
  std::size_t workers;
  double seconds;
  double requests_per_second;
  double cache_hit_rate;
  double p50_latency_us;
  double p99_latency_us;
};

/// Ingest-while-querying smoke: how much does a concurrent ingest stream —
/// including the refits it triggers on the online worker — degrade query
/// latency? One batch carries five distinct (p, n) rows synthesized from
/// the app's own models, so every refit fits a well-posed 5-point-per-
/// parameter dataset.
struct IngestSmoke {
  double baseline_p50_us = 0.0;
  double ingest_p50_us = 0.0;
  double impact_pct = 0.0;
  std::uint64_t batches = 0;
  std::uint64_t refits = 0;
};

std::string make_ingest_batch(const codesign::AppRequirements& app) {
  std::string line = "ingest " + app.name +
                     " p,n,bytes_used,flops,loads_stores,"
                     "bytes_sent_received,stack_distance";
  for (int k = 1; k <= 5; ++k) {
    const double p = static_cast<double>(1 << k);
    const double n = static_cast<double>(1 << (5 + k));
    line += ';' + format_compact(p) + ',' + format_compact(n) + ',' +
            std::to_string(app.footprint.evaluate2(p, n)) + ',' +
            std::to_string(app.flops.evaluate2(p, n)) + ',' +
            std::to_string(app.loads_stores.evaluate2(p, n)) + ',' +
            std::to_string(app.comm_bytes.evaluate2(p, n)) + ',' +
            std::to_string(app.stack_distance.evaluate1(n));
  }
  return line;
}

IngestSmoke run_ingest_smoke(const codesign::AppRequirements& app,
                             const std::vector<std::string>& workload,
                             double baseline_p50_us) {
  serve::ModelRegistry registry;
  registry.insert(app);

  online::OnlineServiceOptions online_options;
  online_options.policy.refit_rows = 5;  // every batch triggers a refit
  online_options.refit.generator.space = model::SearchSpace::coarse();
  online_options.refit.generator.top_factors_per_parameter = 2;
  online::OnlineService service(registry, online_options);

  serve::ServerOptions server_options;
  server_options.workers = 4;
  server_options.queue_capacity = workload.size();
  server_options.cache_capacity = 4096;
  server_options.online = service.hooks();
  serve::Server server(registry, server_options);

  // The ingester streams batches on its own thread (server.handle, so the
  // query latency histogram stays dominated by queries) until the query
  // workload has drained.
  std::atomic<bool> querying{true};
  std::uint64_t batches = 0;
  std::thread ingester([&] {
    const std::string batch = make_ingest_batch(app);
    while (querying.load(std::memory_order_acquire)) {
      (void)server.handle(batch);
      ++batches;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::future<std::string>> responses;
  responses.reserve(workload.size());
  for (const std::string& line : workload) {
    responses.push_back(server.submit(line));
  }
  for (auto& response : responses) (void)response.get();
  querying.store(false, std::memory_order_release);
  ingester.join();
  service.drain();

  IngestSmoke smoke;
  smoke.baseline_p50_us = baseline_p50_us;
  smoke.ingest_p50_us = server.metrics().p50_latency_us;
  smoke.impact_pct = baseline_p50_us > 0.0
                         ? 100.0 * (smoke.ingest_p50_us - baseline_p50_us) /
                               baseline_p50_us
                         : 0.0;
  smoke.batches = batches;
  smoke.refits = service.stats().refits;
  service.stop();
  return smoke;
}

RunResult run_one(serve::ModelRegistry& registry,
                  const std::vector<std::string>& workload,
                  std::size_t workers) {
  // A fresh server per worker count: cold cache, so hit rates compare.
  serve::Server server(registry,
                       {.workers = workers,
                        .queue_capacity = workload.size(),
                        .cache_capacity = 4096});
  std::vector<std::future<std::string>> responses;
  responses.reserve(workload.size());
  const auto started = std::chrono::steady_clock::now();
  for (const std::string& line : workload) {
    responses.push_back(server.submit(line));
  }
  std::size_t errors = 0;
  for (auto& response : responses) {
    if (response.get().rfind("ok", 0) != 0) ++errors;
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;
  if (errors > 0) {
    std::cerr << "warning: " << errors << " error responses\n";
  }
  const serve::MetricsSnapshot snapshot = server.metrics();
  return {workers, elapsed.count(),
          static_cast<double>(workload.size()) / elapsed.count(),
          snapshot.cache_hit_rate(), snapshot.p50_latency_us,
          snapshot.p99_latency_us};
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner("Serve throughput: mixed query workload vs. workers",
                      "serving subsystem (beyond the paper)");

  std::optional<obs::TraceGuard> trace;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--trace") trace.emplace(argv[i + 1]);
  }

  const codesign::AppRequirements& app =
      bench::app_models(apps::AppId::kLulesh).requirements;
  serve::ModelRegistry registry;
  registry.insert(app);

  constexpr std::size_t kRequests = 20000;
  const std::vector<std::string> workload =
      make_workload(app.name, kRequests);

  std::vector<RunResult> results;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    results.push_back(run_one(registry, workload, workers));
  }

  TextTable table({"Workers", "Req/s", "Speedup", "Hit rate", "p99 [us]"});
  table.set_alignment({Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight});
  for (const RunResult& r : results) {
    table.add_row({std::to_string(r.workers),
                   format_compact(r.requests_per_second),
                   format_fixed(r.requests_per_second /
                                    results.front().requests_per_second,
                                2) +
                       "x",
                   format_fixed(100.0 * r.cache_hit_rate, 1) + " %",
                   format_compact(r.p99_latency_us)});
  }
  std::cout << '\n' << table.render() << '\n';

  // The acceptance bar: a live ingest stream (one refit per 5-row batch)
  // must not move the 4-worker query p50 by more than ~10%.
  double baseline_p50_us = 0.0;
  for (const RunResult& r : results) {
    if (r.workers == 4) baseline_p50_us = r.p50_latency_us;
  }
  const IngestSmoke smoke = run_ingest_smoke(app, workload, baseline_p50_us);
  std::cout << "\ningest-while-querying smoke (4 workers): baseline p50 "
            << format_compact(smoke.baseline_p50_us) << " us, with ingest "
            << format_compact(smoke.ingest_p50_us) << " us ("
            << format_fixed(smoke.impact_pct, 1) << " % impact, "
            << smoke.batches << " batches, " << smoke.refits << " refits)\n";

  std::ostringstream json;
  json << "{\n  \"benchmark\": \"serve_throughput\",\n"
       << "  \"app\": \"" << app.name << "\",\n"
       << "  \"requests\": " << kRequests << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    json << "    {\"workers\": " << r.workers << ", \"seconds\": " << r.seconds
         << ", \"requests_per_second\": " << r.requests_per_second
         << ", \"cache_hit_rate\": " << r.cache_hit_rate
         << ", \"p50_latency_us\": " << r.p50_latency_us
         << ", \"p99_latency_us\": " << r.p99_latency_us << '}'
         << (i + 1 < results.size() ? "," : "") << '\n';
  }
  json << "  ],\n  \"ingest_smoke\": {\"baseline_p50_us\": "
       << smoke.baseline_p50_us << ", \"ingest_p50_us\": "
       << smoke.ingest_p50_us << ", \"impact_pct\": " << smoke.impact_pct
       << ", \"batches\": " << smoke.batches << ", \"refits\": "
       << smoke.refits << "}\n}\n";
  std::ofstream("BENCH_serve.json") << json.str();
  std::cout << "\nwrote BENCH_serve.json\n";
  if (trace.has_value()) {
    trace->finish();
    std::cout << "wrote " << trace->spans_written() << " trace spans to "
              << trace->path() << '\n';
  }
  return 0;
}
