// Throughput benchmark for the serve subsystem: a preloaded registry
// answering a mixed eval/invert/upgrade workload at 1-8 worker threads,
// plus the sharded tier — aggregate QPS vs shard count at a fixed
// per-shard cache budget, and batched-binary frame amortization over a
// Unix socket. Prints scaling tables and writes BENCH_serve.json.
//
//   bench_serve_throughput [--trace FILE] [--out FILE] [--smoke]
//
// --smoke runs a reduced sharded + batching sweep and exits nonzero when
// 2 shards fail to beat 1 shard on QPS or batched frames fail to beat
// single-request frames — the CI regression gate.
//
// --trace records the request/cache/compute spans of every run into one
// Chrome trace_event file. Tracing adds per-span overhead, so traced runs
// are not comparable to untraced trend numbers.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <future>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "model/search_space.hpp"
#include "obs/trace.hpp"
#include "online/service.hpp"
#include "serve/frontend.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/sharded_server.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

namespace {

using namespace exareq;

/// Deterministic mixed workload: mostly cheap evals over a reusable set of
/// points (so the result cache sees repeats, as a real service would), plus
/// footprint inversions and full upgrade-scenario sweeps.
std::vector<std::string> make_workload(const std::string& app,
                                       std::size_t requests) {
  std::vector<std::string> lines;
  lines.reserve(requests);
  const char* metrics[] = {"footprint", "flops", "comm_bytes", "loads_stores"};
  for (std::size_t i = 0; i < requests; ++i) {
    switch (i % 10) {
      case 8: {  // 10 % inversions over 16 distinct skeletons
        const std::size_t v = i / 10 % 16;
        lines.push_back("invert " + app + ' ' +
                        std::to_string(1024 << (v % 4)) + ' ' +
                        std::to_string((1 + v / 4) * 1000000000ULL));
        break;
      }
      case 9: {  // 10 % upgrade sweeps over 8 distinct bases
        const std::size_t v = i / 10 % 8;
        lines.push_back("upgrade " + app + ' ' +
                        std::to_string(2048 << (v % 4)) + ' ' +
                        std::to_string((1 + v / 4) * 2000000000ULL));
        break;
      }
      default: {  // 80 % evals over 64 distinct (metric, p, n) points
        const std::size_t v = i * 7 % 64;
        lines.push_back(std::string("eval ") + app + ' ' + metrics[v % 4] +
                        ' ' + std::to_string(16 << (v / 4 % 4)) + ' ' +
                        std::to_string(256 << (v / 16)));
        break;
      }
    }
  }
  return lines;
}

struct RunResult {
  std::size_t workers;
  double seconds;
  double requests_per_second;
  double cache_hit_rate;
  double p50_latency_us;
  double p99_latency_us;
};

/// Ingest-while-querying smoke: how much does a concurrent ingest stream —
/// including the refits it triggers on the online worker — degrade query
/// latency? One batch carries five distinct (p, n) rows synthesized from
/// the app's own models, so every refit fits a well-posed 5-point-per-
/// parameter dataset.
struct IngestSmoke {
  double baseline_p50_us = 0.0;
  double ingest_p50_us = 0.0;
  double impact_pct = 0.0;
  std::uint64_t batches = 0;
  std::uint64_t refits = 0;
};

std::string make_ingest_batch(const codesign::AppRequirements& app) {
  std::string line = "ingest " + app.name +
                     " p,n,bytes_used,flops,loads_stores,"
                     "bytes_sent_received,stack_distance";
  for (int k = 1; k <= 5; ++k) {
    const double p = static_cast<double>(1 << k);
    const double n = static_cast<double>(1 << (5 + k));
    line += ';' + format_compact(p) + ',' + format_compact(n) + ',' +
            std::to_string(app.footprint.evaluate2(p, n)) + ',' +
            std::to_string(app.flops.evaluate2(p, n)) + ',' +
            std::to_string(app.loads_stores.evaluate2(p, n)) + ',' +
            std::to_string(app.comm_bytes.evaluate2(p, n)) + ',' +
            std::to_string(app.stack_distance.evaluate1(n));
  }
  return line;
}

IngestSmoke run_ingest_smoke(const codesign::AppRequirements& app,
                             const std::vector<std::string>& workload,
                             double baseline_p50_us) {
  serve::ModelRegistry registry;
  registry.insert(app);

  online::OnlineServiceOptions online_options;
  online_options.policy.refit_rows = 5;  // every batch triggers a refit
  online_options.refit.generator.space = model::SearchSpace::coarse();
  online_options.refit.generator.top_factors_per_parameter = 2;
  online::OnlineService service(registry, online_options);

  serve::ServerOptions server_options;
  server_options.workers = 4;
  server_options.queue_capacity = workload.size();
  server_options.cache_capacity = 4096;
  server_options.online = service.hooks();
  serve::Server server(registry, server_options);

  // The ingester streams batches on its own thread (server.handle, so the
  // query latency histogram stays dominated by queries) until the query
  // workload has drained.
  std::atomic<bool> querying{true};
  std::uint64_t batches = 0;
  std::thread ingester([&] {
    const std::string batch = make_ingest_batch(app);
    while (querying.load(std::memory_order_acquire)) {
      (void)server.handle(batch);
      ++batches;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::future<std::string>> responses;
  responses.reserve(workload.size());
  for (const std::string& line : workload) {
    responses.push_back(server.submit(line));
  }
  for (auto& response : responses) (void)response.get();
  querying.store(false, std::memory_order_release);
  ingester.join();
  service.drain();

  IngestSmoke smoke;
  smoke.baseline_p50_us = baseline_p50_us;
  smoke.ingest_p50_us = server.metrics().p50_latency_us;
  smoke.impact_pct = baseline_p50_us > 0.0
                         ? 100.0 * (smoke.ingest_p50_us - baseline_p50_us) /
                               baseline_p50_us
                         : 0.0;
  smoke.batches = batches;
  smoke.refits = service.stats().refits;
  service.stop();
  return smoke;
}

// ---------------------------------------------------------------------------
// Sharded tier: aggregate QPS vs shard count at a fixed PER-SHARD cache
// budget. Each shard owns its own result cache, so adding shards grows the
// aggregate cache capacity with the fleet — the scaling a sharded
// deployment buys even when shards share cores. The workload is a uniform
// random stream over a working set 4x one shard's cache, all expensive
// verbs (invert/upgrade), so the miss cost dominates and the measured
// speedup is the cache-locality win.

struct ShardedRun {
  std::size_t shards;
  double seconds;
  double requests_per_second;
  double cache_hit_rate;  ///< over the timed window only
};

struct ShardedSweepConfig {
  std::vector<std::size_t> shard_counts;
  std::size_t per_shard_cache;
  std::size_t working_set;  ///< distinct expensive requests
  std::size_t stream_length;
  std::size_t batch_size;
  std::size_t client_threads;
};

/// 16 names hash-spread across shards; each is the fitted base app under a
/// different registry key (a single app would land on one shard).
std::vector<codesign::AppRequirements> make_shard_apps(
    const codesign::AppRequirements& base, std::size_t count) {
  std::vector<codesign::AppRequirements> apps;
  apps.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    codesign::AppRequirements clone = base;
    clone.name = "shardapp" + std::to_string(i);
    apps.push_back(std::move(clone));
  }
  return apps;
}

std::vector<serve::Request> make_expensive_working_set(
    const std::vector<codesign::AppRequirements>& apps, std::size_t size) {
  std::vector<serve::Request> set;
  set.reserve(size);
  for (std::size_t v = 0; v < size; ++v) {
    serve::Request request;
    request.app = apps[v % apps.size()].name;
    if (v % 2 == 0) {
      request.kind = serve::RequestKind::kInvert;
      request.processes = static_cast<double>(1024 + 64 * v);
      request.memory_per_process = 1.0e9 + 7.0e6 * static_cast<double>(v);
    } else {
      request.kind = serve::RequestKind::kUpgrade;
      request.processes = static_cast<double>(2048 + 128 * v);
      request.memory_per_process = 2.0e9 + 1.1e7 * static_cast<double>(v);
    }
    set.push_back(std::move(request));
  }
  return set;
}

ShardedRun run_sharded_one(const std::vector<codesign::AppRequirements>& apps,
                           const std::vector<serve::Request>& working_set,
                           const ShardedSweepConfig& config,
                           std::size_t shards) {
  serve::ShardedServerOptions options;
  options.shards = shards;
  options.queue_capacity = config.stream_length;
  options.cache_capacity = config.per_shard_cache;
  serve::ShardedServer server(options);
  for (const auto& app : apps) server.insert(app);

  // Warmup: one pass over the working set leaves each shard's LRU holding
  // its most recent per-shard-cache entries — the steady state a long-
  // running service converges to. The timed window measures from there.
  for (std::size_t start = 0; start < working_set.size();
       start += config.batch_size) {
    const std::size_t end =
        std::min(start + config.batch_size, working_set.size());
    (void)server.submit_batch({working_set.begin() +
                                   static_cast<std::ptrdiff_t>(start),
                               working_set.begin() +
                                   static_cast<std::ptrdiff_t>(end)});
  }
  const serve::MetricsSnapshot before = server.metrics();

  // The same deterministic uniform stream for every shard count,
  // pre-bucketed into frames so the timer sees only serving work.
  std::vector<std::vector<serve::Request>> batches;
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  for (std::size_t done = 0; done < config.stream_length;
       done += config.batch_size) {
    std::vector<serve::Request> batch;
    const std::size_t count =
        std::min(config.batch_size, config.stream_length - done);
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      batch.push_back(working_set[(state >> 33) % working_set.size()]);
    }
    batches.push_back(std::move(batch));
  }

  std::atomic<std::size_t> next{0};
  const auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < config.client_threads; ++t) {
    clients.emplace_back([&] {
      for (;;) {
        const std::size_t index = next.fetch_add(1);
        if (index >= batches.size()) return;
        (void)server.submit_batch(batches[index]);
      }
    });
  }
  for (auto& client : clients) client.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;

  const serve::MetricsSnapshot after = server.metrics();
  const double hits =
      static_cast<double>(after.cache_hits - before.cache_hits);
  const double misses =
      static_cast<double>(after.cache_misses - before.cache_misses);
  return {shards, elapsed.count(),
          static_cast<double>(config.stream_length) / elapsed.count(),
          hits + misses > 0.0 ? hits / (hits + misses) : 0.0};
}

// ---------------------------------------------------------------------------
// Batching: the same request volume over one Unix-socket connection, sent
// as binary frames of 1 / 16 / 64 / 256 requests. The per-request work is
// a warm cache hit, so the sweep isolates what batching amortizes: the
// per-frame syscalls, frame decode, and shard dispatch round trip.

struct BatchingRun {
  std::size_t batch;
  double seconds;
  double requests_per_second;
};

std::vector<BatchingRun> run_batching_sweep(
    const std::vector<codesign::AppRequirements>& apps,
    const std::vector<std::size_t>& batch_sizes, std::size_t total_requests,
    std::size_t shards) {
  serve::ShardedServerOptions options;
  options.shards = shards;
  options.queue_capacity = total_requests;
  serve::ShardedServer server(options);
  for (const auto& app : apps) server.insert(app);

  serve::FrontEndOptions front_options;
  front_options.unix_path =
      "/tmp/exareq_bench_front_" + std::to_string(::getpid()) + ".sock";
  serve::FrontEnd front(server, front_options);
  front.start();

  // 64 distinct eval points, warmed once, then cycled.
  std::vector<serve::Request> points;
  const char* metrics[] = {"footprint", "flops", "comm_bytes", "loads_stores"};
  for (std::size_t v = 0; v < 64; ++v) {
    serve::Request request;
    request.kind = serve::RequestKind::kEval;
    request.app = apps[v % apps.size()].name;
    request.metric = metrics[v % 4];
    request.p = static_cast<double>(16 << (v / 16));
    request.n = static_cast<double>(256 + v);
    points.push_back(std::move(request));
  }
  (void)server.submit_batch(points);

  std::vector<BatchingRun> results;
  for (const std::size_t batch_size : batch_sizes) {
    // Pre-build every frame; the timer sees only wire + serving work.
    std::vector<std::vector<serve::Request>> frames;
    std::size_t cursor = 0;
    for (std::size_t sent = 0; sent < total_requests; sent += batch_size) {
      std::vector<serve::Request> frame;
      const std::size_t count = std::min(batch_size, total_requests - sent);
      frame.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        frame.push_back(points[cursor++ % points.size()]);
      }
      frames.push_back(std::move(frame));
    }
    serve::Client client = serve::Client::connect_unix(front_options.unix_path);
    const auto started = std::chrono::steady_clock::now();
    for (const auto& frame : frames) (void)client.query_batch(frame);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - started;
    results.push_back({batch_size, elapsed.count(),
                       static_cast<double>(total_requests) / elapsed.count()});
  }
  front.stop();
  return results;
}

RunResult run_one(serve::ModelRegistry& registry,
                  const std::vector<std::string>& workload,
                  std::size_t workers) {
  // A fresh server per worker count: cold cache, so hit rates compare.
  serve::Server server(registry,
                       {.workers = workers,
                        .queue_capacity = workload.size(),
                        .cache_capacity = 4096});
  std::vector<std::future<std::string>> responses;
  responses.reserve(workload.size());
  const auto started = std::chrono::steady_clock::now();
  for (const std::string& line : workload) {
    responses.push_back(server.submit(line));
  }
  std::size_t errors = 0;
  for (auto& response : responses) {
    if (response.get().rfind("ok", 0) != 0) ++errors;
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;
  if (errors > 0) {
    std::cerr << "warning: " << errors << " error responses\n";
  }
  const serve::MetricsSnapshot snapshot = server.metrics();
  return {workers, elapsed.count(),
          static_cast<double>(workload.size()) / elapsed.count(),
          snapshot.cache_hit_rate(), snapshot.p50_latency_us,
          snapshot.p99_latency_us};
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner("Serve throughput: workers, shards, and batching",
                      "serving subsystem (beyond the paper)");

  std::optional<obs::TraceGuard> trace;
  std::string out_path = "BENCH_serve.json";
  bool smoke_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) trace.emplace(argv[++i]);
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    else if (arg == "--smoke") smoke_mode = true;
  }

  const codesign::AppRequirements& app =
      bench::app_models(apps::AppId::kLulesh).requirements;
  const std::vector<codesign::AppRequirements> shard_apps =
      make_shard_apps(app, 16);

  constexpr std::size_t kRequests = 20000;
  std::vector<RunResult> results;
  IngestSmoke smoke;
  if (!smoke_mode) {
    serve::ModelRegistry registry;
    registry.insert(app);
    const std::vector<std::string> workload =
        make_workload(app.name, kRequests);
    for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
      results.push_back(run_one(registry, workload, workers));
    }

    TextTable table({"Workers", "Req/s", "Speedup", "Hit rate", "p99 [us]"});
    table.set_alignment({Align::kRight, Align::kRight, Align::kRight,
                         Align::kRight, Align::kRight});
    for (const RunResult& r : results) {
      table.add_row({std::to_string(r.workers),
                     format_compact(r.requests_per_second),
                     format_fixed(r.requests_per_second /
                                      results.front().requests_per_second,
                                  2) +
                         "x",
                     format_fixed(100.0 * r.cache_hit_rate, 1) + " %",
                     format_compact(r.p99_latency_us)});
    }
    std::cout << '\n' << table.render() << '\n';

    // A live ingest stream (one refit per 5-row batch) must not move the
    // 4-worker query p50 by more than ~10%.
    double baseline_p50_us = 0.0;
    for (const RunResult& r : results) {
      if (r.workers == 4) baseline_p50_us = r.p50_latency_us;
    }
    smoke = run_ingest_smoke(app, workload, baseline_p50_us);
    std::cout << "\ningest-while-querying smoke (4 workers): baseline p50 "
              << format_compact(smoke.baseline_p50_us) << " us, with ingest "
              << format_compact(smoke.ingest_p50_us) << " us ("
              << format_fixed(smoke.impact_pct, 1) << " % impact, "
              << smoke.batches << " batches, " << smoke.refits
              << " refits)\n";
  }

  // Sharded tier. Smoke keeps the same working-set : cache ratio (4x one
  // shard) so the 2-shard-beats-1 assertion tests the same mechanism the
  // full sweep measures.
  ShardedSweepConfig sharded_config;
  if (smoke_mode) {
    sharded_config = {{1, 2}, 64, 256, 4096, 64, 2};
  } else {
    sharded_config = {{1, 2, 4, 8}, 256, 1024, 16384, 64, 4};
  }
  const std::vector<serve::Request> working_set =
      make_expensive_working_set(shard_apps, sharded_config.working_set);
  std::vector<ShardedRun> sharded;
  for (const std::size_t shards : sharded_config.shard_counts) {
    sharded.push_back(
        run_sharded_one(shard_apps, working_set, sharded_config, shards));
  }

  TextTable sharded_table({"Shards", "Req/s", "Speedup", "Hit rate"});
  sharded_table.set_alignment(
      {Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  for (const ShardedRun& r : sharded) {
    sharded_table.add_row(
        {std::to_string(r.shards), format_compact(r.requests_per_second),
         format_fixed(r.requests_per_second /
                          sharded.front().requests_per_second,
                      2) +
             "x",
         format_fixed(100.0 * r.cache_hit_rate, 1) + " %"});
  }
  std::cout << "\nsharded scaling (per-shard cache "
            << sharded_config.per_shard_cache << ", working set "
            << sharded_config.working_set << ", "
            << sharded_config.client_threads << " clients, frames of "
            << sharded_config.batch_size << "):\n"
            << sharded_table.render();

  // Batching over the socket front end.
  const std::vector<std::size_t> batch_sizes =
      smoke_mode ? std::vector<std::size_t>{1, 64}
                 : std::vector<std::size_t>{1, 16, 64, 256};
  const std::size_t batch_total = smoke_mode ? 2048 : 8192;
  const std::vector<BatchingRun> batching = run_batching_sweep(
      shard_apps, batch_sizes, batch_total, smoke_mode ? 2 : 4);

  TextTable batch_table({"Batch", "Req/s", "Speedup"});
  batch_table.set_alignment({Align::kRight, Align::kRight, Align::kRight});
  for (const BatchingRun& r : batching) {
    batch_table.add_row(
        {std::to_string(r.batch), format_compact(r.requests_per_second),
         format_fixed(r.requests_per_second /
                          batching.front().requests_per_second,
                      2) +
             "x"});
  }
  std::cout << "\nbinary batching over a Unix socket (" << batch_total
            << " warm requests per run):\n"
            << batch_table.render();

  std::ostringstream json;
  json << "{\n  \"benchmark\": \"serve_throughput\",\n"
       << "  \"app\": \"" << app.name << "\",\n"
       << "  \"smoke\": " << (smoke_mode ? "true" : "false") << ",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"requests\": " << (smoke_mode ? 0 : kRequests)
       << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    json << "    {\"workers\": " << r.workers << ", \"seconds\": " << r.seconds
         << ", \"requests_per_second\": " << r.requests_per_second
         << ", \"cache_hit_rate\": " << r.cache_hit_rate
         << ", \"p50_latency_us\": " << r.p50_latency_us
         << ", \"p99_latency_us\": " << r.p99_latency_us << '}'
         << (i + 1 < results.size() ? "," : "") << '\n';
  }
  json << "  ],\n  \"sharded_scaling\": [\n";
  for (std::size_t i = 0; i < sharded.size(); ++i) {
    const ShardedRun& r = sharded[i];
    json << "    {\"shards\": " << r.shards << ", \"seconds\": " << r.seconds
         << ", \"requests_per_second\": " << r.requests_per_second
         << ", \"speedup\": "
         << r.requests_per_second / sharded.front().requests_per_second
         << ", \"cache_hit_rate\": " << r.cache_hit_rate << '}'
         << (i + 1 < sharded.size() ? "," : "") << '\n';
  }
  json << "  ],\n  \"batching\": [\n";
  for (std::size_t i = 0; i < batching.size(); ++i) {
    const BatchingRun& r = batching[i];
    json << "    {\"batch\": " << r.batch << ", \"seconds\": " << r.seconds
         << ", \"requests_per_second\": " << r.requests_per_second
         << ", \"speedup\": "
         << r.requests_per_second / batching.front().requests_per_second
         << '}' << (i + 1 < batching.size() ? "," : "") << '\n';
  }
  json << "  ]";
  if (!smoke_mode) {
    json << ",\n  \"ingest_smoke\": {\"baseline_p50_us\": "
         << smoke.baseline_p50_us << ", \"ingest_p50_us\": "
         << smoke.ingest_p50_us << ", \"impact_pct\": " << smoke.impact_pct
         << ", \"batches\": " << smoke.batches << ", \"refits\": "
         << smoke.refits << "}";
  }
  json << "\n}\n";
  std::ofstream(out_path) << json.str();
  std::cout << "\nwrote " << out_path << '\n';
  if (trace.has_value()) {
    trace->finish();
    std::cout << "wrote " << trace->spans_written() << " trace spans to "
              << trace->path() << '\n';
  }

  if (smoke_mode) {
    // CI regression gate: more shards must mean more QPS (the per-shard
    // cache budget makes this hold even on one core), and batched frames
    // must beat single-request frames.
    const double shard_speedup = sharded.back().requests_per_second /
                                 sharded.front().requests_per_second;
    const double batch_speedup = batching.back().requests_per_second /
                                 batching.front().requests_per_second;
    std::cout << "\nsmoke: " << sharded.back().shards << " shards vs 1: "
              << format_fixed(shard_speedup, 2) << "x, batch "
              << batching.back().batch << " vs 1: "
              << format_fixed(batch_speedup, 2) << "x\n";
    if (shard_speedup <= 1.0) {
      std::cerr << "FAIL: " << sharded.back().shards
                << " shards did not beat 1 shard on QPS\n";
      return 1;
    }
    if (batch_speedup <= 1.0) {
      std::cerr << "FAIL: batched frames did not beat single-request "
                   "frames on QPS\n";
      return 1;
    }
  }
  return 0;
}
