// Co-design example: measure an application on the simulated substrate,
// generate its requirement models, and compare the paper's three system
// upgrades (Table III) for it — the full workflow of paper Sec. III-A for
// one application.
//
// Usage: ./build/examples/codesign_upgrade [app]
//   app: Kripke (default), LULESH, MILC, Relearn, icoFoam
#include <cstdio>
#include <string>

#include "codesign/upgrade.hpp"
#include "pipeline/campaign.hpp"
#include "pipeline/codesign_bridge.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace exareq;

  const std::string app_name = argc > 1 ? argv[1] : "Kripke";
  const apps::Application& app =
      apps::application(apps::app_id_from_name(app_name));
  std::printf("Measuring %s (%s)...\n", app.name().c_str(),
              app.description().c_str());

  // Measurement campaign over the default 5x5 grid and model generation.
  const pipeline::CampaignData data = pipeline::run_campaign(app);
  const pipeline::RequirementModels models = pipeline::model_requirements(data);
  const codesign::AppRequirements requirements =
      pipeline::to_requirements(models);

  std::printf("\nRequirement models (n = %s):\n",
              app.problem_size_meaning().c_str());
  std::printf("  #Bytes used      %s\n",
              requirements.footprint.to_string_rounded().c_str());
  std::printf("  #FLOP            %s\n",
              requirements.flops.to_string_rounded().c_str());
  std::printf("  #Bytes sent/recv %s\n",
              requirements.comm_bytes.to_string_rounded().c_str());
  std::printf("  #Loads & stores  %s\n",
              requirements.loads_stores.to_string_rounded().c_str());

  // Baseline: a machine with 2^20 sockets and 2 GiB per process that the
  // application exactly exhausts.
  const codesign::SystemSkeleton base{1048576.0, 2.0 * 1024 * 1024 * 1024};

  TextTable table({"Upgrade", "n'/n", "Overall", "Compute", "Comm",
                   "Mem access"});
  for (const codesign::UpgradeScenario& upgrade : codesign::paper_upgrades()) {
    const auto walk = codesign::evaluate_upgrade(requirements, base, upgrade);
    table.add_row({upgrade.label,
                   format_fixed(walk.outcome.problem_size_ratio, 2),
                   format_fixed(walk.outcome.overall_problem_ratio, 2),
                   format_fixed(walk.outcome.computation_ratio, 2),
                   format_fixed(walk.outcome.communication_ratio, 2),
                   format_fixed(walk.outcome.memory_access_ratio, 2)});
  }
  std::printf("\nUpgrade comparison (ratios new/old, paper Table V style):\n%s",
              table.render().c_str());
  std::printf(
      "\nReading guide: a large 'Overall' ratio with per-process ratios near\n"
      "the problem-size ratio means the upgrade buys real capability.\n");
  return 0;
}
