// Quickstart: fit a requirement model to measurements and use it.
//
//   1. Collect measurements of a metric over a (p, n) grid.
//   2. Generate an empirical model with the Extra-P-substitute generator.
//   3. Extrapolate to exascale and invert the model for capacity planning.
//
// Build & run:  ./build/examples/quickstart
#include <cmath>
#include <cstdio>

#include "model/inversion.hpp"
#include "model/modelgen.hpp"

int main() {
  using namespace exareq;

  // Step 1: measurements. Here they come from a closed form standing in
  // for your instrumented application (bytes used per process, say).
  model::MeasurementSet bytes_used({"p", "n"});
  for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) {
    for (double n : {64.0, 128.0, 256.0, 512.0, 1024.0}) {
      const double measured = 2048.0 + 96.0 * n * std::log2(n);
      bytes_used.add2(p, n, measured);
    }
  }

  // Step 2: model generation (paper Sec. II-C). The generator searches the
  // performance model normal form and selects by cross-validation.
  const model::ModelGenerator generator;
  const model::FitResult fit = generator.generate(bytes_used);
  std::printf("fitted model : %s\n", fit.model.to_string().c_str());
  std::printf("paper style  : %s\n", fit.model.to_string_rounded().c_str());
  std::printf("LOO-CV error : %.2e\n", fit.quality.cv_score);

  // Step 3a: extrapolate far beyond the measurements.
  const double exascale_n = 1.0e9;
  std::printf("footprint at n = 1e9: %.3e bytes per process\n",
              fit.model.evaluate2(1.0e8, exascale_n));

  // Step 3b: invert — what problem size fills 2 GiB per process?
  const double coordinate[] = {1.0e8, 1.0};
  const double n_max = model::invert_model_in_parameter(
      fit.model, 1, coordinate, 2.0 * 1024.0 * 1024.0 * 1024.0);
  std::printf("2 GiB per process holds n = %.3e\n", n_max);
  return 0;
}
