// I/O requirements example — the extension the paper sketches in Sec. II-A
// ("I/O would be handled analogously to the network communication
// requirement"): a checkpointing application whose I/O volume is measured
// per process and modeled over (p, n) exactly like any other requirement.
//
// The example app writes a checkpoint of its full state every few steps and
// additionally appends a fixed-size metadata record per process step; a
// restart read happens once at startup. Expected model:
//   bytes written ~ c1 * n + c2      (state + metadata)
//   bytes read    ~ c3 * n           (restart)
#include <cstdio>
#include <memory>
#include <vector>

#include "instr/process.hpp"
#include "model/modelgen.hpp"
#include "simmpi/runtime.hpp"
#include "support/format.hpp"

namespace {

using namespace exareq;

/// One rank of the checkpointing app.
void run_rank(simmpi::Communicator& comm, instr::ProcessInstrumentation& instr,
              std::int64_t n) {
  const auto cells = static_cast<std::size_t>(n);
  instr::TrackedBuffer<double> state(cells, instr.memory());

  // Restart read: the full state once.
  instr.count_io_read(state.bytes());

  constexpr int kSteps = 12;
  constexpr int kCheckpointEvery = 4;
  for (int step = 0; step < kSteps; ++step) {
    for (std::size_t c = 0; c < cells; ++c) {
      state[c] = state[c] * 0.5 + 1.0;
    }
    instr.count_flops(cells * 2);
    instr.count_loads(cells);
    instr.count_stores(cells);
    // Per-step metadata record (fixed size).
    instr.count_io_write(256);
    if ((step + 1) % kCheckpointEvery == 0) {
      instr.count_io_write(state.bytes());
    }
  }
  // Completion marker via the runtime so the job is a real parallel run.
  const std::vector<double> done{1.0};
  (void)comm.allreduce<double>(done, simmpi::ops::Sum{});
}

}  // namespace

int main() {
  // Measurement campaign over the usual 5x5 grid; I/O is collected from
  // the per-rank instrumentation like every other Table-I metric.
  model::MeasurementSet written({"p", "n"});
  model::MeasurementSet read({"p", "n"});
  for (int p : {4, 8, 16, 32, 64}) {
    for (std::int64_t n : {64, 128, 256, 512, 1024}) {
      std::vector<std::unique_ptr<instr::ProcessInstrumentation>> contexts;
      for (int r = 0; r < p; ++r) {
        contexts.push_back(std::make_unique<instr::ProcessInstrumentation>());
      }
      simmpi::run(p, [&contexts, n](simmpi::Communicator& comm) {
        run_rank(comm, *contexts[static_cast<std::size_t>(comm.rank())], n);
      });
      double max_written = 0.0;
      double max_read = 0.0;
      for (const auto& context : contexts) {
        const auto io = context->report().io;
        max_written = std::max(max_written, static_cast<double>(io.bytes_written));
        max_read = std::max(max_read, static_cast<double>(io.bytes_read));
      }
      written.add2(static_cast<double>(p), static_cast<double>(n), max_written);
      read.add2(static_cast<double>(p), static_cast<double>(n), max_read);
    }
  }

  const model::ModelGenerator generator;
  const auto written_fit = generator.generate(written);
  const auto read_fit = generator.generate(read);
  std::printf("I/O requirement models (per process):\n");
  std::printf("  #Bytes written  %s   [%s]\n",
              written_fit.model.to_string().c_str(),
              written_fit.model.to_string_rounded().c_str());
  std::printf("  #Bytes read     %s   [%s]\n",
              read_fit.model.to_string().c_str(),
              read_fit.model.to_string_rounded().c_str());

  // Co-design use: what file-system bandwidth does a checkpoint interval
  // of 60 s require at exascale?
  const double p = 1e8;
  const double n = 1e7;
  const double bytes_per_interval = written_fit.model.evaluate2(p, n) / 3.0;
  std::printf(
      "\nAt p = 1e8, n = 1e7 each checkpoint writes %s per process;\n"
      "a 60 s checkpoint interval demands %s/s of aggregate file-system\n"
      "bandwidth — the same extrapolate-and-size workflow as Table VII,\n"
      "applied to I/O.\n",
      exareq::format_bytes(bytes_per_interval).c_str(),
      exareq::format_bytes(bytes_per_interval * p / 60.0).c_str());
  return 0;
}
