// Locality analysis example: trace your own kernel and let the
// Threadspotter substitute judge whether it is locality-preserving
// (paper Sec. II-D).
//
// Usage: ./build/examples/locality_mmm [n] [block]
#include <cstdio>
#include <cstdlib>

#include "memtrace/locality.hpp"
#include "memtrace/mmm.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace exareq;
  using namespace exareq::memtrace;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 32;
  const std::size_t block = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  if (n == 0 || block == 0 || n % block != 0) {
    std::fprintf(stderr, "usage: locality_mmm [n] [block], block must divide n\n");
    return 1;
  }

  const auto a = make_matrix(n, 1.0f);
  const auto b = make_matrix(n, 2.0f);
  const TracedMmm naive = traced_mmm_naive(a, b, n);
  const TracedMmm blocked = traced_mmm_blocked(a, b, n, block);

  // Burst-sampled analysis, exactly like the tool chain of the paper:
  // exact distances, sampled reporting, median per instruction group,
  // unreliable groups (< 100 samples) flagged.
  LocalityConfig config;
  config.sampler = SamplerConfig{64, 512, 0};
  config.min_samples = 100;

  for (const auto* kernel : {&naive, &blocked}) {
    const bool is_naive = kernel == &naive;
    const LocalityReport report = analyze_locality(
        kernel->trace, config, static_cast<double>(kernel->trace.size()));
    std::printf("\n%s matrix-matrix multiply (n = %zu%s):\n",
                is_naive ? "Naive" : "Blocked", n,
                is_naive ? "" : (", b = " + std::to_string(block)).c_str());
    TextTable table({"Group", "Samples", "Median SD", "Median RD",
                     "Est. accesses", "Reliable"});
    for (const GroupLocality& group : report.groups) {
      table.add_row({group.name, std::to_string(group.samples),
                     group.samples ? format_compact(group.median_stack_distance)
                                   : "-",
                     group.samples ? format_compact(group.median_reuse_distance)
                                   : "-",
                     format_compact(group.estimated_accesses),
                     group.reliable ? "yes" : "no"});
    }
    std::printf("%s", table.render().c_str());
  }
  std::printf(
      "\nVerdict: the naive kernel's stack distances grow with n (accesses\n"
      "to B will miss any cache once n^2 exceeds it); the blocked kernel's\n"
      "depend only on the block size — it is locality-preserving, so its\n"
      "main-memory traffic scales with the measured loads/stores.\n");
  return 0;
}
