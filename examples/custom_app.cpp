// Full-workflow example with a user-defined application: implement the
// Application interface for your own kernel, run a measurement campaign,
// generate requirement models, and check the code against the paper's
// exascale straw-man systems — everything a co-design study needs.
//
// The example application is a 1D heat-diffusion stencil: linear work and
// memory in n, halo exchange with neighbours, and a residual allreduce per
// sweep.
#include <cstdio>

#include "apps/application.hpp"
#include "apps/kernel_util.hpp"
#include "codesign/strawman.hpp"
#include "pipeline/campaign.hpp"
#include "pipeline/codesign_bridge.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

namespace {

using namespace exareq;

/// A well-behaved stencil code: every requirement linear in n, only the
/// allreduce couples to p.
class HeatStencil final : public apps::Application {
 public:
  std::string name() const override { return "HeatStencil"; }
  std::string description() const override {
    return "1D explicit heat diffusion with halo exchange";
  }
  std::string problem_size_meaning() const override {
    return "grid cells per process";
  }

  void run_rank(simmpi::Communicator& comm, instr::ProcessInstrumentation& instr,
                std::int64_t n) const override {
    const auto cells = static_cast<std::size_t>(n);
    auto init = instr.region("init");
    instr::TrackedBuffer<double> temperature(cells, instr.memory());
    instr::TrackedBuffer<double> next(cells, instr.memory());
    for (std::size_t c = 0; c < cells; ++c) {
      temperature[c] = static_cast<double>(c % 17);
    }
    instr.count_stores(cells);

    for (int sweep = 0; sweep < 8; ++sweep) {
      {
        auto stencil = instr.region("stencil");
        for (std::size_t c = 1; c + 1 < cells; ++c) {
          next[c] = 0.5 * temperature[c] +
                    0.25 * (temperature[c - 1] + temperature[c + 1]);
        }
        instr.count_flops((cells - 2) * 3);
        instr.count_loads((cells - 2) * 3);
        instr.count_stores(cells - 2);
        std::swap(temperature[0], next[0]);  // keep both buffers live
      }
      {
        auto exchange = instr.region("halo");
        simmpi::ChannelScope channel(comm, "halo");
        const double boundary[2] = {temperature[0], temperature[cells - 1]};
        temperature[0] += 1e-15 * apps::ring_halo_exchange(
                                      comm, std::span<const double>(boundary, 2),
                                      10 + sweep * 4);
        instr.count_stores(1);
      }
      {
        auto reduce = instr.region("residual");
        simmpi::ChannelScope channel(comm, "residual_allreduce");
        const std::vector<double> local{temperature[cells / 2]};
        const auto global = comm.allreduce<double>(local, simmpi::ops::Sum{});
        temperature[0] += global[0] * 1e-15;
        instr.count_stores(1);
      }
    }
  }

  void trace_locality(std::int64_t n, memtrace::TraceSink& sink) const override {
    const auto grid = sink.register_group("grid");
    const auto cells = static_cast<std::uint64_t>(std::min<std::int64_t>(n, 512));
    for (int pass = 0; pass < 40; ++pass) {
      // Sliding 3-point stencil: constant working set.
      for (std::uint64_t c = 1; c + 1 < cells; ++c) {
        sink.record(0x1000 + c - 1, grid);
        sink.record(0x1000 + c, grid);
        sink.record(0x1000 + c + 1, grid);
      }
    }
  }
};

}  // namespace

int main() {
  const HeatStencil app;
  std::printf("Measuring custom application '%s'...\n", app.name().c_str());
  const pipeline::CampaignData data = pipeline::run_campaign(app);
  const pipeline::RequirementModels models = pipeline::model_requirements(data);
  const codesign::AppRequirements req = pipeline::to_requirements(models);

  std::printf("\nRequirement models:\n");
  for (pipeline::Metric metric : pipeline::all_metrics()) {
    std::printf("  %-24s %s\n", pipeline::metric_label(metric).c_str(),
                models.result(metric).model.to_string_rounded().c_str());
  }
  for (const auto& channel : models.comm_channels) {
    std::printf("  comm[%-18s] %s\n", channel.name.c_str(),
                channel.fit.model.to_string_rounded().c_str());
  }

  std::printf("\nExascale straw-man check (paper Table VII style):\n");
  TextTable table({"System", "Fits?", "Max overall problem"});
  for (const auto& system : codesign::paper_strawmen()) {
    const auto outcome = codesign::evaluate_strawman(req, system);
    table.add_row({system.name, outcome.feasible ? "yes" : "no",
                   outcome.feasible
                       ? exareq::format_sci(outcome.max_overall_problem, 1)
                       : "-"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nA clean bill of health: all requirements scale linearly with n and\n"
      "the only p-coupling is the logarithmic allreduce — this code ports\n"
      "to any of the straw-man systems without surprises.\n");
  return 0;
}
