#include "codesign/strawman.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

namespace exareq::codesign {
namespace {

model::Model two_param(double coefficient, double p_poly, double p_log,
                       double n_poly, double n_log, double constant = 0.0) {
  model::Term term;
  term.coefficient = coefficient;
  if (p_poly != 0.0 || p_log != 0.0) {
    term.factors.push_back(model::pmnf_factor(0, p_poly, p_log));
  }
  if (n_poly != 0.0 || n_log != 0.0) {
    term.factors.push_back(model::pmnf_factor(1, n_poly, n_log));
  }
  return model::Model({"p", "n"}, constant, {term});
}

AppRequirements simple_app(model::Model footprint, model::Model flops) {
  AppRequirements app;
  app.name = "app";
  app.footprint = std::move(footprint);
  app.flops = std::move(flops);
  app.comm_bytes = two_param(1.0, 0, 0, 1, 0);
  app.loads_stores = two_param(1.0, 0, 0, 1, 0);
  app.stack_distance = model::Model::constant_model({"n"}, 2.0);
  return app;
}

TEST(StrawmanTest, PaperSystemsReachOneExaflop) {
  for (const StrawmanSystem& system : paper_strawmen()) {
    EXPECT_DOUBLE_EQ(system.total_flops(), 1e18) << system.name;
    EXPECT_DOUBLE_EQ(system.processors_per_node * system.nodes,
                     system.processors)
        << system.name;
  }
}

TEST(StrawmanTest, PaperSystemsShareTenPetabytes) {
  for (const StrawmanSystem& system : paper_strawmen()) {
    EXPECT_NEAR(system.memory_per_processor * system.processors, 1e16,
                1e10)
        << system.name;
  }
}

TEST(StrawmanTest, EvaluateFillsMemory) {
  // footprint 100 * n bytes: n = memory / 100 per process.
  const AppRequirements app = simple_app(two_param(100.0, 0, 0, 1, 0),
                                         two_param(10.0, 0, 0, 1, 0));
  const StrawmanSystem vector_system = paper_strawmen()[1];
  const StrawmanOutcome outcome = evaluate_strawman(app, vector_system);
  EXPECT_TRUE(outcome.feasible);
  EXPECT_NEAR(outcome.problem_size_per_process, 2e6, 1.0);
  EXPECT_NEAR(outcome.max_overall_problem, 2e6 * 5e7, 1e8);
}

TEST(StrawmanTest, ProcessDependentFootprintIsInfeasible) {
  // icoFoam-like: footprint has a p log p term that alone exceeds the
  // per-processor memory at exascale process counts.
  const AppRequirements app = simple_app(two_param(256.0, 1, 1, 0, 0),
                                         two_param(10.0, 0, 0, 1, 0));
  for (const StrawmanSystem& system : paper_strawmen()) {
    const StrawmanOutcome outcome = evaluate_strawman(app, system);
    EXPECT_FALSE(outcome.feasible) << system.name;
  }
}

TEST(StrawmanTest, WallTimeLowerBound) {
  // flops = 10 * n per process; overall problem N split over p processors.
  const AppRequirements app = simple_app(two_param(100.0, 0, 0, 1, 0),
                                         two_param(10.0, 0, 0, 1, 0));
  const StrawmanSystem system = paper_strawmen()[1];  // vector
  const double overall = 1e12;
  const auto time = wall_time_lower_bound(app, system, overall);
  ASSERT_TRUE(time.has_value());
  // n = 1e12 / 5e7 = 2e4; flops = 2e5 per process; rate 2e10 -> 1e-5 s.
  EXPECT_NEAR(*time, 1e-5, 1e-9);
}

TEST(StrawmanTest, WallTimeRejectsOversizedProblem) {
  const AppRequirements app = simple_app(two_param(100.0, 0, 0, 1, 0),
                                         two_param(10.0, 0, 0, 1, 0));
  const StrawmanSystem system = paper_strawmen()[0];  // 5 MB per processor
  // n = 1e18 / 2e9 = 5e8 -> footprint 5e10 bytes >> 5e6.
  EXPECT_FALSE(wall_time_lower_bound(app, system, 1e18).has_value());
}

TEST(StrawmanTest, CommonBenchmarkProblemIsSmallestMaximum) {
  const AppRequirements app = simple_app(two_param(100.0, 0, 0, 1, 0),
                                         two_param(10.0, 0, 0, 1, 0));
  const auto systems = paper_strawmen();
  double expected = std::numeric_limits<double>::infinity();
  for (const auto& system : systems) {
    expected = std::min(
        expected, system.processors * system.memory_per_processor / 100.0);
  }
  EXPECT_NEAR(common_benchmark_problem(app, systems), expected,
              expected * 1e-9);
}

TEST(StrawmanTest, CommonBenchmarkThrowsWhenNothingFits) {
  const AppRequirements app = simple_app(two_param(256.0, 1, 1, 0, 0),
                                         two_param(10.0, 0, 0, 1, 0));
  const auto systems = paper_strawmen();
  EXPECT_THROW(common_benchmark_problem(app, systems), exareq::NumericError);
}

TEST(StrawmanTest, MakeAdditiveSplitsCoupledTerms) {
  // Paper Sec. III-B example: 1e5 * n log n * p^0.25 log p becomes
  // 1e5 * n log n + p^0.25 log p.
  model::Term coupled;
  coupled.coefficient = 1e5;
  coupled.factors = {model::pmnf_factor(0, 0.25, 1.0),
                     model::pmnf_factor(1, 1.0, 1.0)};
  const model::Model original({"p", "n"}, 0.0, {coupled});
  const model::Model additive = make_additive(original);
  ASSERT_EQ(additive.terms().size(), 2u);
  const double p = 1024.0;
  const double n = 4096.0;
  const double expected =
      1e5 * n * std::log2(n) + std::pow(p, 0.25) * std::log2(p);
  EXPECT_NEAR(additive.evaluate2(p, n), expected, 1e-6 * expected);
  // The additive variant is dramatically cheaper at scale.
  EXPECT_LT(additive.evaluate2(p, n), original.evaluate2(p, n));
}

TEST(StrawmanTest, MakeAdditiveLeavesUncoupledTermsAlone) {
  const model::Model m = two_param(7.0, 0, 0, 1, 1, 3.0);  // 3 + 7 n log n
  const model::Model additive = make_additive(m);
  EXPECT_DOUBLE_EQ(additive.evaluate2(64.0, 128.0), m.evaluate2(64.0, 128.0));
}


TEST(StrawmanTest, RefinedBoundPicksTheSlowestRequirement) {
  // flops = 10 n, comm = 100 n, loads = n per process.
  const AppRequirements app = simple_app(two_param(100.0, 0, 0, 1, 0),
                                         two_param(10.0, 0, 0, 1, 0));
  const StrawmanSystem system = paper_strawmen()[1];  // vector
  SatisfactionRates rates;
  rates.flops_per_second = system.flops_per_processor;  // 2e10
  rates.network_bytes_per_second = 1e9;
  rates.memory_bytes_per_second = 1e11;
  const double overall = 1e12;  // n = 2e4 per process
  const auto bound = refined_wall_time_bound(app, system, rates, overall);
  ASSERT_TRUE(bound.has_value());
  // compute: 2e5 / 2e10 = 1e-5; network: 2e4*... comm model is n -> 2e4
  // bytes / 1e9 = 2e-5; memory: 2e4 accesses * 8 / 1e11 = 1.6e-6.
  EXPECT_NEAR(bound->compute_seconds, 1e-5, 1e-9);
  EXPECT_NEAR(bound->network_seconds, 2e-5, 1e-9);
  EXPECT_NEAR(bound->memory_seconds, 1.6e-6, 1e-10);
  EXPECT_EQ(bound->bottleneck, "communication");
  EXPECT_DOUBLE_EQ(bound->bound_seconds, bound->network_seconds);
}

TEST(StrawmanTest, RefinedBoundAtLeastFlopBound) {
  const AppRequirements app = simple_app(two_param(100.0, 0, 0, 1, 0),
                                         two_param(10.0, 0, 0, 1, 0));
  const StrawmanSystem system = paper_strawmen()[1];
  SatisfactionRates rates;
  rates.flops_per_second = system.flops_per_processor;
  rates.network_bytes_per_second = 1e12;
  rates.memory_bytes_per_second = 1e15;
  const double overall = 1e12;
  const auto refined = refined_wall_time_bound(app, system, rates, overall);
  const auto flop_only = wall_time_lower_bound(app, system, overall);
  ASSERT_TRUE(refined.has_value());
  ASSERT_TRUE(flop_only.has_value());
  EXPECT_GE(refined->bound_seconds, *flop_only * (1.0 - 1e-12));
}

TEST(StrawmanTest, RefinedBoundRespectsMemoryFeasibility) {
  const AppRequirements app = simple_app(two_param(100.0, 0, 0, 1, 0),
                                         two_param(10.0, 0, 0, 1, 0));
  const StrawmanSystem system = paper_strawmen()[0];  // 5 MB per processor
  SatisfactionRates rates{1e9, 1e9, 1e9, 8.0};
  EXPECT_FALSE(
      refined_wall_time_bound(app, system, rates, 1e18).has_value());
}

TEST(StrawmanTest, RefinedBoundValidatesRates) {
  const AppRequirements app = simple_app(two_param(100.0, 0, 0, 1, 0),
                                         two_param(10.0, 0, 0, 1, 0));
  const StrawmanSystem system = paper_strawmen()[1];
  SatisfactionRates bad{0.0, 1e9, 1e9, 8.0};
  EXPECT_THROW(refined_wall_time_bound(app, system, bad, 1e10),
               exareq::InvalidArgument);
}

TEST(StrawmanTest, SkeletonConversion) {
  const StrawmanSystem system = paper_strawmen()[2];
  const SystemSkeleton skeleton = system.skeleton();
  EXPECT_DOUBLE_EQ(skeleton.processes, 1e8);
  EXPECT_DOUBLE_EQ(skeleton.memory_per_process, 1e8);
}

}  // namespace
}  // namespace exareq::codesign
