#include "codesign/requirements.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace exareq::codesign {
namespace {

model::Model pn_model(double constant, double coefficient, double p_poly,
                      double p_log, double n_poly, double n_log) {
  model::Term term;
  term.coefficient = coefficient;
  if (p_poly != 0.0 || p_log != 0.0) {
    term.factors.push_back(model::pmnf_factor(0, p_poly, p_log));
  }
  if (n_poly != 0.0 || n_log != 0.0) {
    term.factors.push_back(model::pmnf_factor(1, n_poly, n_log));
  }
  return model::Model({"p", "n"}, constant, {term});
}

AppRequirements linear_app() {
  AppRequirements app;
  app.name = "linear";
  app.footprint = pn_model(0.0, 100.0, 0, 0, 1, 0);      // 100 * n bytes
  app.flops = pn_model(0.0, 10.0, 0, 0, 1, 0);
  app.comm_bytes = pn_model(0.0, 1.0, 0, 0, 1, 0);
  app.loads_stores = pn_model(0.0, 5.0, 0, 0, 1, 0);
  app.stack_distance = model::Model::constant_model({"n"}, 8.0);
  return app;
}

TEST(RequirementsTest, ValidateAcceptsWellFormedBundle) {
  EXPECT_NO_THROW(linear_app().validate());
}

TEST(RequirementsTest, ValidateRejectsWrongParameterOrder) {
  AppRequirements app = linear_app();
  model::Term term;
  term.coefficient = 1.0;
  term.factors = {model::pmnf_factor(0, 1.0, 0.0)};
  app.footprint = model::Model({"n", "p"}, 0.0, {term});
  EXPECT_THROW(app.validate(), exareq::InvalidArgument);
}

TEST(RequirementsTest, ValidateRejectsTwoParameterStackDistance) {
  AppRequirements app = linear_app();
  app.stack_distance = pn_model(0.0, 1.0, 0, 0, 1, 0);
  EXPECT_THROW(app.validate(), exareq::InvalidArgument);
}

TEST(RequirementsTest, FillMemoryInvertsFootprint) {
  const AppRequirements app = linear_app();
  const SystemSkeleton system{1024.0, 1e6};  // 1 MB per process
  const FilledSystem filled = fill_memory(app, system);
  EXPECT_NEAR(filled.problem_size_per_process, 1e4, 1e-3);  // 100 n == 1e6
  EXPECT_NEAR(filled.overall_problem_size, 1024.0 * 1e4, 1.0);
}

TEST(RequirementsTest, FillMemoryRespectsProcessDependentFootprint) {
  // footprint = 100 n + 1000 p: more processes leave less room for n.
  AppRequirements app = linear_app();
  model::Term n_term;
  n_term.coefficient = 100.0;
  n_term.factors = {model::pmnf_factor(1, 1.0, 0.0)};
  model::Term p_term;
  p_term.coefficient = 1000.0;
  p_term.factors = {model::pmnf_factor(0, 1.0, 0.0)};
  app.footprint = model::Model({"p", "n"}, 0.0, {n_term, p_term});

  const FilledSystem small = fill_memory(app, {10.0, 1e6});
  const FilledSystem large = fill_memory(app, {100.0, 1e6});
  EXPECT_GT(small.problem_size_per_process, large.problem_size_per_process);
  EXPECT_NEAR(small.problem_size_per_process, (1e6 - 1e4) / 100.0, 1e-3);
}

TEST(RequirementsTest, FillMemoryThrowsWhenNothingFits) {
  AppRequirements app = linear_app();
  // Footprint floor of 1 GB regardless of n.
  model::Term n_term;
  n_term.coefficient = 100.0;
  n_term.factors = {model::pmnf_factor(1, 1.0, 0.0)};
  app.footprint = model::Model({"p", "n"}, 1e9, {n_term});
  EXPECT_THROW(fill_memory(app, {8.0, 1e6}), exareq::NumericError);
}

TEST(RequirementsTest, FitsInMemoryChecksMinimumProblem) {
  AppRequirements app = linear_app();
  EXPECT_TRUE(fits_in_memory(app, {8.0, 1e6}));
  model::Term p_term;
  p_term.coefficient = 1.0;
  p_term.factors = {model::pmnf_factor(0, 1.0, 1.0)};
  app.footprint = model::Model({"p", "n"}, 0.0, {p_term});  // p log p only
  // At p = 2^20, p log2 p = 2e7 > 1e6 per-process memory.
  EXPECT_FALSE(fits_in_memory(app, {1048576.0, 1e6}));
}

TEST(RequirementsTest, FillMemoryValidatesSkeleton) {
  const AppRequirements app = linear_app();
  EXPECT_THROW(fill_memory(app, {0.0, 1e6}), exareq::InvalidArgument);
  EXPECT_THROW(fill_memory(app, {8.0, 0.0}), exareq::InvalidArgument);
}

}  // namespace
}  // namespace exareq::codesign
