#include "codesign/upgrade.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

namespace exareq::codesign {
namespace {

model::Model two_param(double coefficient, double p_poly, double p_log,
                       double n_poly, double n_log, double constant = 0.0) {
  model::Term term;
  term.coefficient = coefficient;
  if (p_poly != 0.0 || p_log != 0.0) {
    term.factors.push_back(model::pmnf_factor(0, p_poly, p_log));
  }
  if (n_poly != 0.0 || n_log != 0.0) {
    term.factors.push_back(model::pmnf_factor(1, n_poly, n_log));
  }
  return model::Model({"p", "n"}, constant, {term});
}

/// The paper's LULESH models (Table IV, coefficients omitted as the paper
/// does for relative upgrades).
AppRequirements paper_lulesh() {
  AppRequirements app;
  app.name = "LULESH";
  app.footprint = two_param(1.0, 0, 0, 1, 1);      // n log n
  app.flops = two_param(1.0, 0.25, 1, 1, 1);       // n log n * p^0.25 log p
  app.comm_bytes = two_param(1.0, 0.25, 1, 1, 0);  // n * p^0.25 log p
  app.loads_stores = two_param(1.0, 0, 1, 1, 1);   // n log n * log p
  app.stack_distance = model::Model::constant_model({"n"}, 4.0);
  return app;
}

/// Kripke per the paper: everything linear in n; loads/stores n + n*p.
AppRequirements paper_kripke() {
  AppRequirements app;
  app.name = "Kripke";
  app.footprint = two_param(1e5, 0, 0, 1, 0);
  app.flops = two_param(1e7, 0, 0, 1, 0);
  app.comm_bytes = two_param(1e4, 0, 0, 1, 0);
  model::Term linear;
  linear.coefficient = 1e8;
  linear.factors = {model::pmnf_factor(1, 1.0, 0.0)};
  model::Term coupled;
  coupled.coefficient = 1e5;
  coupled.factors = {model::pmnf_factor(0, 1.0, 0.0),
                     model::pmnf_factor(1, 1.0, 0.0)};
  app.loads_stores = model::Model({"p", "n"}, 0.0, {linear, coupled});
  app.stack_distance = model::Model::constant_model({"n"}, 16.0);
  return app;
}

/// Relearn's footprint grows with sqrt(n) (paper Table II).
AppRequirements paper_relearn() {
  AppRequirements app = paper_kripke();
  app.name = "Relearn";
  app.footprint = two_param(1e6, 0, 0, 0.5, 0);
  return app;
}

const SystemSkeleton kBase{1048576.0, 1ull << 31};  // 2^20 processes, 2 GiB

TEST(UpgradeTest, PaperUpgradesMatchTableIII) {
  const auto upgrades = paper_upgrades();
  ASSERT_EQ(upgrades.size(), 3u);
  EXPECT_DOUBLE_EQ(upgrades[0].process_factor, 2.0);
  EXPECT_DOUBLE_EQ(upgrades[0].memory_factor, 1.0);
  EXPECT_DOUBLE_EQ(upgrades[1].process_factor, 2.0);
  EXPECT_DOUBLE_EQ(upgrades[1].memory_factor, 0.5);
  EXPECT_DOUBLE_EQ(upgrades[2].process_factor, 1.0);
  EXPECT_DOUBLE_EQ(upgrades[2].memory_factor, 2.0);
}

TEST(UpgradeTest, LuleshDoubleRacksMatchesTableIV) {
  // Paper Table IV: n log n footprint -> n'/n = 1, overall = 2;
  // FLOP and comm ratios (2p)^0.25 log(2p) / (p^0.25 log p) ~ 1.2;
  // loads/stores log(2p)/log(p) ~ 1.
  const auto walk =
      evaluate_upgrade(paper_lulesh(), kBase, paper_upgrades()[0]);
  EXPECT_NEAR(walk.outcome.problem_size_ratio, 1.0, 1e-6);
  EXPECT_NEAR(walk.outcome.overall_problem_ratio, 2.0, 1e-6);
  EXPECT_NEAR(walk.outcome.computation_ratio, 1.2, 0.05);
  EXPECT_NEAR(walk.outcome.communication_ratio, 1.2, 0.05);
  EXPECT_NEAR(walk.outcome.memory_access_ratio, 1.0, 0.06);
}

TEST(UpgradeTest, WalkthroughFootprintEqualsMemoryBudget) {
  const auto walk =
      evaluate_upgrade(paper_lulesh(), kBase, paper_upgrades()[0]);
  EXPECT_NEAR(walk.footprint_old, static_cast<double>(kBase.memory_per_process),
              1.0);
  EXPECT_NEAR(walk.footprint_new, static_cast<double>(kBase.memory_per_process),
              1.0);
}

TEST(UpgradeTest, KripkeRatiosMatchTableV) {
  // Paper Table V, Kripke column: A -> (1, 2, 1, 1, 2); B -> (0.5, 1, 0.5,
  // 0.5, ~0.5...1); C -> (2, 2, 2, 2, 2). The memory-access ratio under A
  // approaches 2 because the n*p term dominates at scale.
  const AppRequirements app = paper_kripke();
  const auto upgrades = paper_upgrades();

  const auto a = evaluate_upgrade(app, kBase, upgrades[0]).outcome;
  EXPECT_NEAR(a.problem_size_ratio, 1.0, 1e-9);
  EXPECT_NEAR(a.overall_problem_ratio, 2.0, 1e-9);
  EXPECT_NEAR(a.computation_ratio, 1.0, 1e-9);
  EXPECT_NEAR(a.communication_ratio, 1.0, 1e-9);
  EXPECT_NEAR(a.memory_access_ratio, 2.0, 0.01);

  const auto b = evaluate_upgrade(app, kBase, upgrades[1]).outcome;
  EXPECT_NEAR(b.problem_size_ratio, 0.5, 1e-9);
  EXPECT_NEAR(b.overall_problem_ratio, 1.0, 1e-9);
  EXPECT_NEAR(b.computation_ratio, 0.5, 1e-9);
  EXPECT_NEAR(b.memory_access_ratio, 1.0, 0.01);  // n*p dominates: 0.5*2

  const auto c = evaluate_upgrade(app, kBase, upgrades[2]).outcome;
  EXPECT_NEAR(c.problem_size_ratio, 2.0, 1e-9);
  EXPECT_NEAR(c.computation_ratio, 2.0, 1e-9);
  EXPECT_NEAR(c.memory_access_ratio, 2.0, 0.01);
}

TEST(UpgradeTest, RelearnMemoryDoublingQuadruplesProblem) {
  // Paper Table V, Relearn under C: sqrt footprint -> n ratio 4.
  const auto walk =
      evaluate_upgrade(paper_relearn(), kBase, paper_upgrades()[2]);
  EXPECT_NEAR(walk.outcome.problem_size_ratio, 4.0, 1e-6);
  EXPECT_NEAR(walk.outcome.overall_problem_ratio, 4.0, 1e-6);
}

TEST(UpgradeTest, BaselineExpectationMatchesTableV) {
  const auto upgrades = paper_upgrades();
  const auto a = baseline_expectation(upgrades[0]);
  EXPECT_DOUBLE_EQ(a.problem_size_ratio, 1.0);
  EXPECT_DOUBLE_EQ(a.overall_problem_ratio, 2.0);
  EXPECT_DOUBLE_EQ(a.computation_ratio, 1.0);
  const auto b = baseline_expectation(upgrades[1]);
  EXPECT_DOUBLE_EQ(b.problem_size_ratio, 0.5);
  EXPECT_DOUBLE_EQ(b.overall_problem_ratio, 1.0);
  const auto c = baseline_expectation(upgrades[2]);
  EXPECT_DOUBLE_EQ(c.problem_size_ratio, 2.0);
  EXPECT_DOUBLE_EQ(c.overall_problem_ratio, 2.0);
}

TEST(UpgradeTest, InvalidFactorsRejected) {
  EXPECT_THROW(
      evaluate_upgrade(paper_lulesh(), kBase, {"bad", 0.0, 1.0}),
      exareq::InvalidArgument);
}

}  // namespace
}  // namespace exareq::codesign
