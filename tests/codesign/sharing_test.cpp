#include "codesign/sharing.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace exareq::codesign {
namespace {

model::Model linear_footprint(double bytes_per_element) {
  model::Term term;
  term.coefficient = bytes_per_element;
  term.factors = {model::pmnf_factor(1, 1.0, 0.0)};
  return model::Model({"p", "n"}, 0.0, {term});
}

AppRequirements app_with_footprint(std::string name, model::Model footprint) {
  AppRequirements app;
  app.name = std::move(name);
  app.footprint = std::move(footprint);
  model::Term linear;
  linear.coefficient = 1.0;
  linear.factors = {model::pmnf_factor(1, 1.0, 0.0)};
  app.flops = model::Model({"p", "n"}, 0.0, {linear});
  app.comm_bytes = app.flops;
  app.loads_stores = app.flops;
  app.stack_distance = model::Model::constant_model({"n"}, 1.0);
  return app;
}

const SystemSkeleton kMachine{1000.0, 1e6};

TEST(SharingTest, PairSplitsProcessesByFraction) {
  const AppRequirements light = app_with_footprint("light", linear_footprint(10.0));
  const AppRequirements heavy = app_with_footprint("heavy", linear_footprint(100.0));
  const auto outcomes = space_share_pair(light, heavy, 0.25, kMachine);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_DOUBLE_EQ(outcomes[0].partition.processes, 250.0);
  EXPECT_DOUBLE_EQ(outcomes[1].partition.processes, 750.0);
  // Each partition keeps the full per-process memory.
  EXPECT_DOUBLE_EQ(outcomes[0].partition.memory_per_process, 1e6);
  EXPECT_TRUE(outcomes[0].feasible);
  EXPECT_NEAR(outcomes[0].problem_size_per_process, 1e5, 1.0);   // 1e6 / 10
  EXPECT_NEAR(outcomes[1].problem_size_per_process, 1e4, 1.0);   // 1e6 / 100
  EXPECT_NEAR(outcomes[0].overall_problem_size, 250.0 * 1e5, 10.0);
}

TEST(SharingTest, FractionsNeedNotSumToOne) {
  const AppRequirements app = app_with_footprint("a", linear_footprint(10.0));
  const ShareRequest requests[] = {{&app, 0.5}};
  const auto outcomes = space_share(requests, kMachine);
  EXPECT_DOUBLE_EQ(outcomes[0].partition.processes, 500.0);
}

TEST(SharingTest, InfeasibleAppReportedNotThrown) {
  // Footprint with a constant floor above the memory budget.
  AppRequirements bloated = app_with_footprint("bloated", linear_footprint(1.0));
  bloated.footprint = model::Model({"p", "n"}, 1e9, {});
  const AppRequirements small = app_with_footprint("small", linear_footprint(1.0));
  const auto outcomes = space_share_pair(bloated, small, 0.5, kMachine);
  EXPECT_FALSE(outcomes[0].feasible);
  EXPECT_TRUE(outcomes[1].feasible);
}

TEST(SharingTest, TinyFractionStillGetsOneProcess) {
  const AppRequirements app = app_with_footprint("a", linear_footprint(10.0));
  const ShareRequest requests[] = {{&app, 1e-6}};
  const auto outcomes = space_share(requests, SystemSkeleton{100.0, 1e6});
  EXPECT_DOUBLE_EQ(outcomes[0].partition.processes, 1.0);
  EXPECT_TRUE(outcomes[0].feasible);
}

TEST(SharingTest, ValidatesArguments) {
  const AppRequirements app = app_with_footprint("a", linear_footprint(10.0));
  const ShareRequest over[] = {{&app, 0.7}, {&app, 0.7}};
  EXPECT_THROW(space_share(over, kMachine), exareq::InvalidArgument);
  const ShareRequest zero[] = {{&app, 0.0}};
  EXPECT_THROW(space_share(zero, kMachine), exareq::InvalidArgument);
  const ShareRequest null_app[] = {{nullptr, 0.5}};
  EXPECT_THROW(space_share(null_app, kMachine), exareq::InvalidArgument);
  EXPECT_THROW(space_share({}, kMachine), exareq::InvalidArgument);
  EXPECT_THROW(space_share_pair(app, app, 1.5, kMachine),
               exareq::InvalidArgument);
}

TEST(SharingTest, ExclusiveAccessMatchesFillMemory) {
  // A single application with fraction 1.0 reproduces the heroic-run
  // scenario the paper's studies use.
  const AppRequirements app = app_with_footprint("hero", linear_footprint(50.0));
  const ShareRequest requests[] = {{&app, 1.0}};
  const auto shared = space_share(requests, kMachine);
  const FilledSystem exclusive = fill_memory(app, kMachine);
  EXPECT_DOUBLE_EQ(shared[0].problem_size_per_process,
                   exclusive.problem_size_per_process);
  EXPECT_DOUBLE_EQ(shared[0].overall_problem_size,
                   exclusive.overall_problem_size);
}

}  // namespace
}  // namespace exareq::codesign
