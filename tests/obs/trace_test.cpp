// Tests for the obs tracing layer: span recording, disabled-mode no-op,
// the Chrome trace_event JSON export (golden structure with normalized
// timestamps, well-formedness under generated span names fed through a
// chunked JSON scanner), and TraceGuard path validation. All suites are
// named Obs* so the sanitizer CI jobs can select them with
// `ctest -R '^Obs'`.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <regex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"
#include "testkit/gen.hpp"
#include "testkit/property.hpp"

namespace exareq::obs {
namespace {

/// Minimal JSON well-formedness scanner (objects, arrays, strings with
/// escapes, numbers, literals). Feedable in chunks: the caller streams
/// bytes through `feed` and asks `done` at the end; any structural error
/// latches `failed`. Deliberately independent of the writer's code paths.
class JsonScanner {
 public:
  void feed(std::string_view chunk) {
    for (const char c : chunk) step(c);
  }

  bool done() const {
    return !failed_ && depth_ == 0 && !in_string_ && seen_value_;
  }

  bool failed() const { return failed_; }

 private:
  void step(char c) {
    if (failed_) return;
    if (in_string_) {
      if (escaped_) {
        escaped_ = false;
      } else if (c == '\\') {
        escaped_ = true;
      } else if (c == '"') {
        in_string_ = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        failed_ = true;  // raw control characters must be escaped
      }
      return;
    }
    switch (c) {
      case '"':
        in_string_ = true;
        seen_value_ = true;
        break;
      case '{':
      case '[':
        stack_.push_back(c);
        ++depth_;
        seen_value_ = true;
        break;
      case '}':
      case ']': {
        const char open = c == '}' ? '{' : '[';
        if (stack_.empty() || stack_.back() != open) {
          failed_ = true;
        } else {
          stack_.pop_back();
          --depth_;
        }
        break;
      }
      default:
        if (std::isspace(static_cast<unsigned char>(c)) != 0) break;
        const bool value_char =
            std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
            c == '+' || c == '.' || c == ',' || c == ':';
        if (!value_char) failed_ = true;
        seen_value_ = true;
    }
  }

  std::vector<char> stack_;
  int depth_ = 0;
  bool in_string_ = false;
  bool escaped_ = false;
  bool failed_ = false;
  bool seen_value_ = false;
};

bool well_formed(const std::string& json) {
  JsonScanner scanner;
  scanner.feed(json);
  return scanner.done();
}

TEST(ObsTraceTest, DisabledSpanRecordsNothing) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.stop();
  const std::size_t before = recorder.span_count();
  {
    ScopedSpan span("ignored", "test");
    EXPECT_FALSE(span.active());
    span.arg("dropped", 1.0);
  }
  EXPECT_EQ(recorder.span_count(), before);
}

TEST(ObsTraceTest, RecordsSpanWithArguments) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.start();
  {
    ScopedSpan span("fit", "model");
    EXPECT_TRUE(span.active());
    span.arg("candidates", 42.0);
    span.arg("points", 5.0);
  }
  recorder.stop();
  const std::vector<SpanEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "fit");
  EXPECT_EQ(events[0].category, "model");
  EXPECT_GE(events[0].start_us, 0);
  EXPECT_GE(events[0].duration_us, 0);
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].key, "candidates");
  EXPECT_EQ(events[0].args[0].value, 42.0);
}

TEST(ObsTraceTest, StartClearsPreviousSpans) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.start();
  { ScopedSpan span("first", "test"); }
  EXPECT_EQ(recorder.span_count(), 1u);
  recorder.start();
  EXPECT_EQ(recorder.span_count(), 0u);
  recorder.stop();
}

TEST(ObsTraceTest, ChromeJsonGoldenStructure) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.start();
  { ScopedSpan span("alpha", "catA"); }
  {
    ScopedSpan span("beta", "catB");
    span.arg("n", 64.0);
  }
  recorder.stop();

  // Timestamps, durations, and the recorder-assigned thread id vary run to
  // run; every other field is stable and must match the golden form.
  std::string json = recorder.chrome_json();
  json = std::regex_replace(json, std::regex(R"("tid":\d+)"), R"("tid":0)");
  json = std::regex_replace(json, std::regex(R"("ts":-?\d+)"), R"("ts":0)");
  json = std::regex_replace(json, std::regex(R"("dur":\d+)"), R"("dur":0)");

  const std::string golden =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"alpha\",\"cat\":\"catA\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":0,\"ts\":0,\"dur\":0},\n"
      "{\"name\":\"beta\",\"cat\":\"catB\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":0,\"ts\":0,\"dur\":0,\"args\":{\"n\":64}}\n"
      "]}\n";
  EXPECT_EQ(json, golden);
}

TEST(ObsTraceTest, EscapesSpanNamesInJson) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.start();
  { ScopedSpan span("quote\" back\\slash\nnewline\ttab", "ctrl\x01"); }
  recorder.stop();
  const std::string json = recorder.chrome_json();
  EXPECT_NE(json.find("quote\\\" back\\\\slash\\nnewline\\ttab"),
            std::string::npos);
  EXPECT_NE(json.find("ctrl\\u0001"), std::string::npos);
  EXPECT_TRUE(well_formed(json));
}

TEST(ObsTraceTest, NonFiniteArgumentsRenderAsZero) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.start();
  {
    ScopedSpan span("nonfinite", "test");
    span.arg("inf", std::numeric_limits<double>::infinity());
    span.arg("nan", std::numeric_limits<double>::quiet_NaN());
  }
  recorder.stop();
  const std::string json = recorder.chrome_json();
  EXPECT_NE(json.find("\"inf\":0"), std::string::npos);
  EXPECT_NE(json.find("\"nan\":0"), std::string::npos);
  EXPECT_TRUE(well_formed(json));
}

TEST(ObsTraceJsonPropertyTest, WellFormedUnderArbitraryNamesAndChunking) {
  // Property: whatever bytes end up in span names, categories, and argument
  // keys, the exported file must scan as well-formed JSON — including when
  // fed to the scanner in arbitrary chunk sizes, which catches errors that
  // only a specific buffer split would hide.
  struct Case {
    std::string name;
    std::string category;
    std::string key;
    std::uint64_t chunk_seed = 0;
  };
  const testkit::Gen<std::string> nasty = testkit::string_of(
      std::string("ab\"\\\n\t\r{}[]:,\x01\x1f /"), 0, 24);
  const testkit::Gen<Case> gen([nasty](Rng& rng) {
    Case c;
    c.name = nasty(rng);
    c.category = nasty(rng);
    c.key = nasty(rng);
    c.chunk_seed = rng.uniform_int(1, 1 << 30);
    return c;
  });
  const auto config = testkit::property_config(
      "chrome json well-formed under fuzz names and chunking", 150);
  const auto result = testkit::check<Case>(
      config, gen, nullptr, [](const Case& c) -> std::string {
        TraceRecorder& recorder = TraceRecorder::instance();
        recorder.start();
        {
          ScopedSpan span(c.name, c.category);
          span.arg(c.key, 1.5);
        }
        recorder.stop();
        const std::string json = recorder.chrome_json();

        JsonScanner chunked;
        Rng chunker(c.chunk_seed);
        std::size_t offset = 0;
        while (offset < json.size()) {
          const auto step =
              static_cast<std::size_t>(chunker.uniform_int(1, 16));
          const std::size_t take = std::min(step, json.size() - offset);
          chunked.feed(std::string_view(json).substr(offset, take));
          offset += take;
        }
        if (!chunked.done()) return "chunked scan rejected the export";
        if (!well_formed(json)) return "whole-buffer scan rejected the export";
        return "";
      });
  EXPECT_TRUE(result.passed()) << result.report();
}

TEST(ObsTraceTest, TraceGuardRejectsUnwritablePath) {
  try {
    TraceGuard guard("/nonexistent-dir/trace.json");
    FAIL() << "expected exareq::Error";
  } catch (const exareq::Error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent-dir/trace.json"),
              std::string::npos);
  }
  // A failed guard must not leave the recorder running.
  EXPECT_FALSE(TraceRecorder::enabled());
}

TEST(ObsTraceTest, TraceGuardWritesFileOnFinish) {
  const std::string path = ::testing::TempDir() + "obs_guard_trace.json";
  {
    TraceGuard guard(path);
    EXPECT_TRUE(TraceRecorder::enabled());
    { ScopedSpan span("guarded", "test"); }
    guard.finish();
    EXPECT_EQ(guard.spans_written(), 1u);
    guard.finish();  // idempotent
    EXPECT_EQ(guard.spans_written(), 1u);
  }
  EXPECT_FALSE(TraceRecorder::enabled());
  std::ifstream file(path);
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_NE(content.str().find("\"guarded\""), std::string::npos);
  EXPECT_TRUE(well_formed(content.str()));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace exareq::obs
