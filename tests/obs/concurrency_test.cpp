// Concurrency tests for the obs subsystem, written to run under
// ThreadSanitizer (the CI tsan job selects Obs* suites): many ThreadPool
// workers recording spans and metrics at once, spans racing with recorder
// start/stop, and snapshot/export running concurrently with recording.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/thread_pool.hpp"

namespace exareq::obs {
namespace {

TEST(ObsConcurrencyTest, ManyWorkersRecordSpansAndMetrics) {
  constexpr std::size_t kTasks = 256;
  TraceRecorder& recorder = TraceRecorder::instance();
  MetricRegistry& metrics = MetricRegistry::instance();
  metrics.reset();
  Counter& counter = metrics.counter("obs_test.concurrent_tasks");
  LatencyHistogram& histogram = metrics.histogram("obs_test.concurrent_us");

  recorder.start();
  ThreadPool pool(8);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    ScopedSpan span("worker task", "obs_test");
    span.arg("index", static_cast<double>(i));
    counter.add();
    histogram.record(static_cast<double>(i));
  });
  recorder.stop();

  EXPECT_EQ(counter.value(), kTasks);
  EXPECT_EQ(histogram.count(), kTasks);
  // Sum over 0..255 recorded exactly.
  EXPECT_EQ(histogram.sum(), 255.0 * 256.0 / 2.0);
  EXPECT_EQ(recorder.snapshot().size(), kTasks);
}

TEST(ObsConcurrencyTest, SpansRaceWithStartStopAndExport) {
  // Workers record a bounded number of spans while another thread toggles
  // the recorder and exports snapshots; nothing may crash, deadlock, or
  // race (TSan checks the latter). Span counts are unconstrained here —
  // toggling discards. The producer side is bounded so a slow exporter
  // cannot be outrun into unbounded buffer growth.
  TraceRecorder& recorder = TraceRecorder::instance();
  std::atomic<bool> workers_done{false};
  ThreadPool pool(4);
  std::thread toggler([&recorder, &workers_done] {
    while (!workers_done.load()) {
      recorder.start();
      std::this_thread::yield();
      (void)recorder.snapshot();
      (void)recorder.chrome_json();
      recorder.stop();
    }
  });
  pool.parallel_for(4, [](std::size_t) {
    for (int i = 0; i < 5000; ++i) {
      ScopedSpan span("racing", "obs_test");
      span.arg("x", 1.0);
    }
  });
  workers_done.store(true);
  toggler.join();
  recorder.stop();
  recorder.start();  // leave the global recorder empty for later suites
  recorder.stop();
}

TEST(ObsConcurrencyTest, RegistryResolutionRacesAreSafe) {
  // Resolve-or-create from many threads: all callers must end up with the
  // same instrument and no update may be lost.
  MetricRegistry& metrics = MetricRegistry::instance();
  metrics.reset();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIncrements = 1000;
  ThreadPool pool(kThreads);
  pool.parallel_for(kThreads, [&metrics](std::size_t) {
    for (std::size_t i = 0; i < kIncrements; ++i) {
      metrics.counter("obs_test.race_counter").add();
    }
  });
  EXPECT_EQ(metrics.counter("obs_test.race_counter").value(),
            kThreads * kIncrements);
}

}  // namespace
}  // namespace exareq::obs
