// Tests for the obs metric registry: counter/gauge/histogram semantics
// (including the serve-compatible power-of-two quantiles and the exact
// sum/mean extension), resolve-or-create stability, cross-kind name
// collisions, and the text/JSON renderers. Suites are named Obs* for the
// sanitizer CI filters.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

#include "support/error.hpp"

namespace exareq::obs {
namespace {

TEST(ObsMetricsTest, CounterAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(ObsMetricsTest, GaugeKeepsLastValue) {
  Gauge gauge;
  gauge.set(2.5);
  gauge.set(-1.0);
  EXPECT_EQ(gauge.value(), -1.0);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST(ObsMetricsTest, HistogramQuantilesUsePowerOfTwoBuckets) {
  // Same semantics the serve::LatencyHistogram always had: bucket b holds
  // [2^(b-1), 2^b) and quantiles report the upper bucket bound.
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.quantile_us(0.5), 0.0);
  for (int i = 0; i < 99; ++i) histogram.record(700.0);  // bucket [512,1024)
  histogram.record(100000.0);                            // bucket [65536,131072)
  EXPECT_EQ(histogram.count(), 100u);
  EXPECT_EQ(histogram.quantile_us(0.50), 1024.0);
  EXPECT_EQ(histogram.quantile_us(0.99), 1024.0);
  EXPECT_EQ(histogram.quantile_us(1.0), 131072.0);
  histogram.record(-5.0);  // clamps to bucket 0
  EXPECT_EQ(histogram.count(), 101u);
}

TEST(ObsMetricsTest, HistogramSumAndMeanAreExact) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.sum(), 0.0);
  EXPECT_EQ(histogram.mean_us(), 0.0);
  histogram.record(100.0);
  histogram.record(300.0);
  // Quantiles are bucketed, but the mean is exact over truncated samples.
  EXPECT_EQ(histogram.sum(), 400.0);
  EXPECT_EQ(histogram.mean_us(), 200.0);
  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.sum(), 0.0);
}

TEST(ObsMetricsTest, MergeFromAddsBucketsAndSum) {
  LatencyHistogram source;
  source.record(700.0);
  source.record(100000.0);
  LatencyHistogram target;
  target.record(700.0);
  target.merge_from(source);
  EXPECT_EQ(target.count(), 3u);
  EXPECT_EQ(target.sum(), 700.0 + 700.0 + 100000.0);
  EXPECT_EQ(target.quantile_us(0.5), 1024.0);
  EXPECT_EQ(target.quantile_us(1.0), 131072.0);
  // Merging leaves the source untouched.
  EXPECT_EQ(source.count(), 2u);
}

TEST(ObsMetricsTest, RegistryHandsOutStableReferences) {
  MetricRegistry& registry = MetricRegistry::instance();
  Counter& a = registry.counter("obs_test.stable");
  Counter& b = registry.counter("obs_test.stable");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = registry.gauge("obs_test.stable_gauge");
  Gauge& g2 = registry.gauge("obs_test.stable_gauge");
  EXPECT_EQ(&g1, &g2);
  LatencyHistogram& h1 = registry.histogram("obs_test.stable_hist");
  LatencyHistogram& h2 = registry.histogram("obs_test.stable_hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(ObsMetricsTest, RegistryRejectsCrossKindNameCollision) {
  MetricRegistry& registry = MetricRegistry::instance();
  registry.counter("obs_test.collision");
  EXPECT_THROW(registry.gauge("obs_test.collision"), exareq::InvalidArgument);
  EXPECT_THROW(registry.histogram("obs_test.collision"),
               exareq::InvalidArgument);
  registry.histogram("obs_test.collision_hist");
  EXPECT_THROW(registry.counter("obs_test.collision_hist"),
               exareq::InvalidArgument);
}

TEST(ObsMetricsTest, RenderTextListsSortedNameValueLines) {
  MetricRegistry& registry = MetricRegistry::instance();
  registry.reset();
  registry.counter("obs_test.render_b").add(7);
  registry.counter("obs_test.render_a").add(3);
  registry.gauge("obs_test.render_gauge").set(1.5);
  registry.histogram("obs_test.render_hist").record(700.0);
  const std::string text = registry.render_text();
  const std::size_t pos_a = text.find("obs_test.render_a 3\n");
  const std::size_t pos_b = text.find("obs_test.render_b 7\n");
  ASSERT_NE(pos_a, std::string::npos) << text;
  ASSERT_NE(pos_b, std::string::npos) << text;
  EXPECT_LT(pos_a, pos_b);  // sorted by name
  EXPECT_NE(text.find("obs_test.render_gauge 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("obs_test.render_hist count=1"), std::string::npos);
  EXPECT_NE(text.find("p99_us=1024"), std::string::npos);
}

TEST(ObsMetricsTest, RenderJsonNestsHistograms) {
  MetricRegistry& registry = MetricRegistry::instance();
  registry.reset();
  registry.counter("obs_test.json_counter").add(5);
  registry.histogram("obs_test.json_hist").record(700.0);
  const std::string json = registry.render_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"obs_test.json_counter\": 5"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"obs_test.json_hist\": {"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p50_us\":1024"), std::string::npos);
}

TEST(ObsMetricsTest, ResetZeroesValuesButKeepsRegistrations) {
  MetricRegistry& registry = MetricRegistry::instance();
  Counter& counter = registry.counter("obs_test.reset_me");
  counter.add(9);
  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(&registry.counter("obs_test.reset_me"), &counter);
}

}  // namespace
}  // namespace exareq::obs
