#include "instr/memory.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "support/error.hpp"

namespace exareq::instr {
namespace {

TEST(MemoryTrackerTest, TracksCurrentAndPeak) {
  MemoryTracker tracker;
  tracker.allocate(100);
  tracker.allocate(50);
  EXPECT_EQ(tracker.current_bytes(), 150u);
  EXPECT_EQ(tracker.peak_bytes(), 150u);
  tracker.deallocate(120);
  EXPECT_EQ(tracker.current_bytes(), 30u);
  EXPECT_EQ(tracker.peak_bytes(), 150u);  // peak sticks
  tracker.allocate(10);
  EXPECT_EQ(tracker.peak_bytes(), 150u);
}

TEST(MemoryTrackerTest, OverFreeThrows) {
  MemoryTracker tracker;
  tracker.allocate(10);
  EXPECT_THROW(tracker.deallocate(11), exareq::InvalidArgument);
}

TEST(TrackedBufferTest, RegistersExactByteCount) {
  MemoryTracker tracker;
  {
    TrackedBuffer<double> buffer(100, tracker);
    EXPECT_EQ(buffer.size(), 100u);
    EXPECT_EQ(buffer.bytes(), 800u);
    EXPECT_EQ(tracker.current_bytes(), 800u);
  }
  EXPECT_EQ(tracker.current_bytes(), 0u);
  EXPECT_EQ(tracker.peak_bytes(), 800u);
}

TEST(TrackedBufferTest, ElementsValueInitialized) {
  MemoryTracker tracker;
  TrackedBuffer<int> buffer(8, tracker);
  for (std::size_t i = 0; i < buffer.size(); ++i) EXPECT_EQ(buffer[i], 0);
}

TEST(TrackedBufferTest, IndexBoundsChecked) {
  MemoryTracker tracker;
  TrackedBuffer<int> buffer(4, tracker);
  EXPECT_THROW(buffer[4], exareq::InvalidArgument);
  const auto& const_buffer = buffer;
  EXPECT_THROW(const_buffer[4], exareq::InvalidArgument);
}

TEST(TrackedBufferTest, MoveTransfersOwnership) {
  MemoryTracker tracker;
  TrackedBuffer<int> source(10, tracker);
  source[3] = 7;
  TrackedBuffer<int> dest = std::move(source);
  EXPECT_EQ(dest[3], 7);
  EXPECT_EQ(tracker.current_bytes(), 40u);  // not double-counted
}

TEST(TrackedBufferTest, MoveAssignReleasesPreviousAllocation) {
  MemoryTracker tracker;
  TrackedBuffer<int> a(10, tracker);
  TrackedBuffer<int> b(20, tracker);
  EXPECT_EQ(tracker.current_bytes(), 120u);
  a = std::move(b);
  EXPECT_EQ(tracker.current_bytes(), 80u);  // a's old 40 bytes released
  EXPECT_EQ(a.size(), 20u);
}

TEST(TrackedBufferTest, PeakReflectsOverlappingLifetimes) {
  MemoryTracker tracker;
  {
    TrackedBuffer<char> first(1000, tracker);
    { TrackedBuffer<char> second(500, tracker); }
    { TrackedBuffer<char> third(200, tracker); }
  }
  EXPECT_EQ(tracker.peak_bytes(), 1500u);
}

TEST(TrackedBufferTest, SpanCoversAllElements) {
  MemoryTracker tracker;
  TrackedBuffer<int> buffer(5, tracker);
  EXPECT_EQ(buffer.span().size(), 5u);
  buffer.span()[2] = 42;
  EXPECT_EQ(buffer[2], 42);
}

}  // namespace
}  // namespace exareq::instr
