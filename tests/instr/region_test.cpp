#include "instr/region.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace exareq::instr {
namespace {

OpCounters ops(std::uint64_t flops, std::uint64_t loads, std::uint64_t stores) {
  OpCounters c;
  c.flops = flops;
  c.loads = loads;
  c.stores = stores;
  return c;
}

TEST(RegionProfilerTest, RootCollectsUnscopedCounters) {
  RegionProfiler profiler;
  profiler.add(ops(10, 5, 2));
  EXPECT_EQ(profiler.totals(), ops(10, 5, 2));
  const auto paths = profiler.flatten();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].path, "");
  EXPECT_EQ(paths[0].inclusive, ops(10, 5, 2));
}

TEST(RegionProfilerTest, NestedRegionsBuildPaths) {
  RegionProfiler profiler;
  profiler.enter("solve");
  profiler.add(ops(1, 0, 0));
  profiler.enter("dot");
  profiler.add(ops(2, 0, 0));
  profiler.exit();
  profiler.exit();
  const auto paths = profiler.flatten();
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[1].path, "solve");
  EXPECT_EQ(paths[1].exclusive.flops, 1u);
  EXPECT_EQ(paths[1].inclusive.flops, 3u);
  EXPECT_EQ(paths[2].path, "solve/dot");
  EXPECT_EQ(paths[2].exclusive.flops, 2u);
}

TEST(RegionProfilerTest, ReenteringRegionAccumulates) {
  RegionProfiler profiler;
  for (int i = 0; i < 3; ++i) {
    profiler.enter("step");
    profiler.add(ops(5, 0, 0));
    profiler.exit();
  }
  const auto paths = profiler.flatten();
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[1].visits, 3u);
  EXPECT_EQ(paths[1].exclusive.flops, 15u);
}

TEST(RegionProfilerTest, SiblingsAreDistinct) {
  RegionProfiler profiler;
  profiler.enter("a");
  profiler.add(ops(1, 0, 0));
  profiler.exit();
  profiler.enter("b");
  profiler.add(ops(2, 0, 0));
  profiler.exit();
  const auto paths = profiler.flatten();
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[1].path, "a");
  EXPECT_EQ(paths[2].path, "b");
  EXPECT_EQ(paths[0].inclusive.flops, 3u);
}

TEST(RegionProfilerTest, ExitWithoutEnterThrows) {
  RegionProfiler profiler;
  EXPECT_THROW(profiler.exit(), exareq::InvalidArgument);
}

TEST(RegionProfilerTest, EmptyNameRejected) {
  RegionProfiler profiler;
  EXPECT_THROW(profiler.enter(""), exareq::InvalidArgument);
}

TEST(RegionProfilerTest, DepthTracksNesting) {
  RegionProfiler profiler;
  EXPECT_EQ(profiler.depth(), 0u);
  profiler.enter("a");
  profiler.enter("b");
  EXPECT_EQ(profiler.depth(), 2u);
  profiler.exit();
  EXPECT_EQ(profiler.depth(), 1u);
}

TEST(ScopedRegionTest, ClosesOnDestruction) {
  RegionProfiler profiler;
  {
    ScopedRegion outer(profiler, "outer");
    { ScopedRegion inner(profiler, "inner"); }
    EXPECT_EQ(profiler.depth(), 1u);
  }
  EXPECT_EQ(profiler.depth(), 0u);
}

}  // namespace
}  // namespace exareq::instr
