#include "instr/process.hpp"

#include <gtest/gtest.h>

namespace exareq::instr {
namespace {

TEST(ProcessInstrumentationTest, CountsAccumulateIntoReport) {
  ProcessInstrumentation instr;
  instr.count_flops(100);
  instr.count_loads(30);
  instr.count_stores(20);
  const ProcessReport report = instr.report();
  EXPECT_EQ(report.ops.flops, 100u);
  EXPECT_EQ(report.ops.loads, 30u);
  EXPECT_EQ(report.ops.stores, 20u);
  EXPECT_EQ(report.ops.loads_stores(), 50u);
}

TEST(ProcessInstrumentationTest, FmaCountsTwoFlopsTwoLoadsOneStore) {
  ProcessInstrumentation instr;
  instr.count_fma(10);
  const ProcessReport report = instr.report();
  EXPECT_EQ(report.ops.flops, 20u);
  EXPECT_EQ(report.ops.loads, 20u);
  EXPECT_EQ(report.ops.stores, 10u);
}

TEST(ProcessInstrumentationTest, PeakBytesInReport) {
  ProcessInstrumentation instr;
  { TrackedBuffer<double> buffer(64, instr.memory()); }
  EXPECT_EQ(instr.report().peak_bytes, 512u);
}

TEST(ProcessInstrumentationTest, PendingCountersAttributedToOpenRegion) {
  ProcessInstrumentation instr;
  {
    auto region = instr.region("kernel");
    instr.count_flops(7);
  }
  instr.count_flops(3);  // outside -> root
  const auto paths = instr.regions().flatten();
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].inclusive.flops, 10u);
  EXPECT_EQ(paths[1].path, "kernel");
  // The 7 flops counted inside the region belong to it...
  EXPECT_EQ(paths[1].exclusive.flops, 7u);
  // ...and the 3 counted after it closed belong to the root exclusively.
  EXPECT_EQ(paths[0].exclusive.flops, 3u);
}

TEST(ProcessInstrumentationTest, CountersBeforeRegionGoToEnclosingScope) {
  ProcessInstrumentation instr;
  instr.count_flops(5);  // before any region: root
  {
    auto region = instr.region("r");
    instr.count_flops(1);
  }
  const auto paths = instr.regions().flatten();
  EXPECT_EQ(paths[0].exclusive.flops, 5u);
  EXPECT_EQ(paths[1].exclusive.flops, 1u);
}

TEST(ProcessInstrumentationTest, ReportIsIdempotent) {
  ProcessInstrumentation instr;
  instr.count_loads(9);
  EXPECT_EQ(instr.report().ops.loads, 9u);
  EXPECT_EQ(instr.report().ops.loads, 9u);
}

TEST(ProcessInstrumentationTest, IoCountersTrackReadsAndWrites) {
  ProcessInstrumentation instr;
  instr.count_io_read(1000);
  instr.count_io_write(300);
  instr.count_io_write(200);
  const ProcessReport report = instr.report();
  EXPECT_EQ(report.io.bytes_read, 1000u);
  EXPECT_EQ(report.io.bytes_written, 500u);
  EXPECT_EQ(report.io.bytes_total(), 1500u);
  EXPECT_EQ(instr.io().bytes_total(), 1500u);
}

TEST(ProcessInstrumentationTest, IoCountersStartAtZero) {
  ProcessInstrumentation instr;
  EXPECT_EQ(instr.report().io.bytes_total(), 0u);
}

}  // namespace
}  // namespace exareq::instr
