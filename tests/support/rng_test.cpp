#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "support/error.hpp"
#include "support/stats.hpp"

namespace exareq {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversFullRangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 9);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(17);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RngTest, UniformIntRejectsInvertedBounds) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), InvalidArgument);
}

TEST(RngTest, NormalHasApproximatelyUnitMoments) {
  Rng rng(19);
  std::vector<double> samples;
  samples.reserve(100000);
  for (int i = 0; i < 100000; ++i) samples.push_back(rng.normal());
  EXPECT_NEAR(mean(samples), 0.0, 0.02);
  EXPECT_NEAR(stddev(samples), 1.0, 0.02);
}

TEST(RngTest, ScaledNormalMoments) {
  Rng rng(23);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(rng.normal(10.0, 2.0));
  EXPECT_NEAR(mean(samples), 10.0, 0.1);
  EXPECT_NEAR(stddev(samples), 2.0, 0.05);
}

TEST(RngTest, SplitStreamsAreIndependentOfParentUsage) {
  Rng a(99);
  Rng b(99);
  // Consume different amounts from the parents before splitting.
  for (int i = 0; i < 10; ++i) a.next_u64();
  Rng child_a = a.split();
  Rng child_b = b.split();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child_a.next_u64(), child_b.next_u64());
  }
}

TEST(RngTest, SuccessiveSplitsDiffer) {
  Rng parent(5);
  Rng first = parent.split();
  Rng second = parent.split();
  EXPECT_NE(first.next_u64(), second.next_u64());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(37);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[i] = i;
  auto shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, values);
}

}  // namespace
}  // namespace exareq
