#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "support/error.hpp"

namespace exareq {
namespace {

TEST(StatsTest, MeanOfKnownValues) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(values), 2.5);
}

TEST(StatsTest, MeanRejectsEmpty) {
  EXPECT_THROW(mean({}), InvalidArgument);
}

TEST(StatsTest, VarianceAndStddev) {
  const std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(values), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(values), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(StatsTest, MedianDoesNotModifyInput) {
  const std::vector<double> values{3.0, 1.0, 2.0};
  (void)median(values);
  EXPECT_EQ(values, (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(StatsTest, QuantileEndpointsAndMidpoint) {
  const std::vector<double> values{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.25), 20.0);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> values{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.3), 3.0);
}

TEST(StatsTest, QuantileRejectsOutOfRangeQ) {
  const std::vector<double> values{1.0};
  EXPECT_THROW(quantile(values, -0.1), InvalidArgument);
  EXPECT_THROW(quantile(values, 1.1), InvalidArgument);
}

TEST(StatsTest, MedianAbsDeviation) {
  const std::vector<double> values{1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0};
  // median = 2; |x - 2| = {1,1,0,0,2,4,7}; median of that = 1.
  EXPECT_DOUBLE_EQ(median_abs_deviation(values), 1.0);
}

TEST(StatsTest, CompensatedSumBeatsNaiveAccumulation) {
  // 1 followed by many tiny values that a naive sum would drop.
  std::vector<double> values{1e16};
  for (int i = 0; i < 10000; ++i) values.push_back(1.0);
  EXPECT_DOUBLE_EQ(compensated_sum(values), 1e16 + 10000.0);
}

TEST(StatsTest, RmsOfKnownValues) {
  const std::vector<double> values{3.0, 4.0};
  EXPECT_DOUBLE_EQ(rms(values), std::sqrt(12.5));
}

TEST(StatsTest, RSquaredPerfectFit) {
  const std::vector<double> observed{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(observed, observed), 1.0);
}

TEST(StatsTest, RSquaredMeanPredictorIsZero) {
  const std::vector<double> observed{1.0, 2.0, 3.0};
  const std::vector<double> predicted{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(r_squared(observed, predicted), 0.0);
}

TEST(StatsTest, RSquaredRejectsConstantObservations) {
  const std::vector<double> observed{2.0, 2.0};
  EXPECT_THROW(r_squared(observed, observed), InvalidArgument);
}

TEST(StatsTest, SmapeZeroForExactPredictions) {
  const std::vector<double> observed{1.0, 5.0, 9.0};
  EXPECT_DOUBLE_EQ(smape(observed, observed), 0.0);
}

TEST(StatsTest, SmapeSaturatesAtTwo) {
  const std::vector<double> observed{1.0};
  const std::vector<double> predicted{0.0};
  EXPECT_DOUBLE_EQ(smape(observed, predicted), 2.0);
}

TEST(StatsTest, RelativeErrorsHandleZeros) {
  const std::vector<double> observed{0.0, 0.0, 2.0};
  const std::vector<double> predicted{0.0, 1.0, 3.0};
  const auto errors = relative_errors(observed, predicted);
  EXPECT_DOUBLE_EQ(errors[0], 0.0);
  EXPECT_TRUE(std::isinf(errors[1]));
  EXPECT_DOUBLE_EQ(errors[2], 0.5);
}

TEST(StatsTest, BinCountsPlacesValues) {
  const std::vector<double> values{0.5, 1.5, 1.5, 2.5, 3.0};
  const std::vector<double> edges{0.0, 1.0, 2.0, 3.0};
  const auto counts = bin_counts(values, edges);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);  // 2.5 and the clamped 3.0 (top edge closed)
}

TEST(StatsTest, BinCountsClampsOutOfRange) {
  const std::vector<double> values{-5.0, 10.0};
  const std::vector<double> edges{0.0, 1.0, 2.0};
  const auto counts = bin_counts(values, edges);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
}

TEST(StatsTest, BinCountsTopEdgeValueFallsInLastBin) {
  // The top edge is closed: a value exactly on it belongs to the last bin,
  // while interior edges are half-open (value on edge i opens bin i).
  const std::vector<double> edges{0.0, 1.0, 2.0};
  const auto top = bin_counts(std::vector<double>{2.0}, edges);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 1u);
  const auto interior = bin_counts(std::vector<double>{1.0}, edges);
  EXPECT_EQ(interior[0], 0u);
  EXPECT_EQ(interior[1], 1u);
  const auto bottom = bin_counts(std::vector<double>{0.0}, edges);
  EXPECT_EQ(bottom[0], 1u);
  EXPECT_EQ(bottom[1], 0u);
}

TEST(StatsTest, BinCountsClampsBelowRangeIntoFirstBin) {
  const std::vector<double> edges{10.0, 20.0, 30.0};
  const auto counts =
      bin_counts(std::vector<double>{-1e300, 9.999, 35.0}, edges);
  EXPECT_EQ(counts[0], 2u);  // both below-range values clamp to bin 0
  EXPECT_EQ(counts[1], 1u);  // above-range clamps to the last bin
}

TEST(StatsTest, BinCountsRejectsNonIncreasingEdges) {
  const std::vector<double> values{1.0};
  EXPECT_THROW(bin_counts(values, std::vector<double>{0.0, 0.0}), InvalidArgument);
}

}  // namespace
}  // namespace exareq
