#include "support/task_dag.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace exareq {
namespace {

TEST(TaskDagTest, SerialRunsInIdOrder) {
  TaskDag dag;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    dag.add([&order, i] { order.push_back(i); });
  }
  dag.run_serial();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TaskDagTest, DependRequiresBackwardEdges) {
  TaskDag dag;
  dag.add([] {});
  dag.add([] {});
  EXPECT_THROW(dag.depend(0, 1), InvalidArgument);  // forward edge
  EXPECT_THROW(dag.depend(1, 1), InvalidArgument);  // self edge
  EXPECT_THROW(dag.depend(5, 0), InvalidArgument);  // unknown id
  dag.depend(1, 0);
}

TEST(TaskDagTest, ParallelRespectsDependencies) {
  // A chain interleaved with independent tasks: every chain link checks that
  // its predecessor's value is already in place.
  TaskDag dag;
  constexpr std::size_t kLinks = 32;
  std::vector<std::size_t> chain(kLinks, 0);
  std::atomic<std::size_t> independent{0};
  std::size_t previous_id = dag.add([&chain] { chain[0] = 1; });
  for (std::size_t i = 1; i < kLinks; ++i) {
    dag.add([&independent] { independent.fetch_add(1); });
    const std::size_t id =
        dag.add([&chain, i] { chain[i] = chain[i - 1] + 1; });
    dag.depend(id, previous_id);
    previous_id = id;
  }
  ThreadPool pool(4);
  dag.run(pool);
  for (std::size_t i = 0; i < kLinks; ++i) EXPECT_EQ(chain[i], i + 1);
  EXPECT_EQ(independent.load(), kLinks - 1);
}

TEST(TaskDagTest, ParallelMatchesSerialSlots) {
  // Every task writes its own slot; parallel and serial runs must agree.
  const auto build = [](std::vector<int>& slots) {
    TaskDag dag;
    for (int i = 0; i < 40; ++i) {
      dag.add([&slots, i] { slots[static_cast<std::size_t>(i)] = i * i; });
    }
    for (std::size_t t = 8; t < 40; t += 3) dag.depend(t, t - 8);
    return dag;
  };
  std::vector<int> serial(40, -1);
  std::vector<int> parallel(40, -1);
  build(serial).run_serial();
  ThreadPool pool(8);
  build(parallel).run(pool);
  EXPECT_EQ(serial, parallel);
}

TEST(TaskDagTest, SmallestFailingTaskWins) {
  // Two independent failures: the rethrown error is the smaller task id's,
  // in both serial and parallel mode.
  const auto build = [](TaskDag& dag, std::atomic<int>& ran) {
    dag.add([&ran] { ran.fetch_add(1); });
    dag.add([] { throw NumericError("task 1 failed"); });
    dag.add([&ran] { ran.fetch_add(1); });
    dag.add([] { throw NumericError("task 3 failed"); });
    dag.add([&ran] { ran.fetch_add(1); });
  };
  {
    TaskDag dag;
    std::atomic<int> ran{0};
    build(dag, ran);
    EXPECT_THROW(
        {
          try {
            dag.run_serial();
          } catch (const NumericError& e) {
            EXPECT_STREQ(e.what(), "task 1 failed");
            throw;
          }
        },
        NumericError);
    EXPECT_EQ(ran.load(), 3);  // independent tasks still ran
  }
  {
    TaskDag dag;
    std::atomic<int> ran{0};
    build(dag, ran);
    ThreadPool pool(4);
    EXPECT_THROW(
        {
          try {
            dag.run(pool);
          } catch (const NumericError& e) {
            EXPECT_STREQ(e.what(), "task 1 failed");
            throw;
          }
        },
        NumericError);
    EXPECT_EQ(ran.load(), 3);
  }
}

TEST(TaskDagTest, FailureSkipsTransitiveDependents) {
  for (const bool parallel : {false, true}) {
    TaskDag dag;
    std::atomic<int> ran{0};
    const std::size_t failing = dag.add([] { throw NumericError("boom"); });
    const std::size_t child = dag.add([&ran] { ran.fetch_add(1); });
    dag.depend(child, failing);
    const std::size_t grandchild = dag.add([&ran] { ran.fetch_add(1); });
    dag.depend(grandchild, child);
    const std::size_t independent = dag.add([&ran] { ran.fetch_add(10); });
    (void)independent;
    if (parallel) {
      ThreadPool pool(4);
      EXPECT_THROW(dag.run(pool), NumericError);
    } else {
      EXPECT_THROW(dag.run_serial(), NumericError);
    }
    EXPECT_EQ(ran.load(), 10);  // only the independent task ran
  }
}

TEST(TaskDagTest, RunsInlineOnSingleThreadPool) {
  TaskDag dag;
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    dag.add([&order, i] { order.push_back(i); });
  }
  dag.depend(5, 0);
  dag.depend(3, 1);
  ThreadPool pool(1);
  dag.run(pool);
  // Inline execution pops the smallest ready id first -> id order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(TaskDagTest, EmptyDagIsANoop) {
  TaskDag dag;
  dag.run_serial();
  ThreadPool pool(2);
  dag.run(pool);
}

TEST(TaskDagTest, NamedTaskErrorCarriesTaskName) {
  // Regression: the rethrown error of a named task must name the task (a
  // campaign failure should say which grid point died) while preserving the
  // exareq exception type, identically in serial and parallel mode.
  for (const bool parallel : {false, true}) {
    TaskDag dag;
    dag.add("measure p=4 n=32", [] {});
    dag.add("measure p=8 n=32",
            [] { throw NumericError("injected failure"); });
    std::string message;
    try {
      if (parallel) {
        ThreadPool pool(4);
        dag.run(pool);
      } else {
        dag.run_serial();
      }
      FAIL() << "expected NumericError";
    } catch (const NumericError& e) {
      message = e.what();
    }
    EXPECT_EQ(message, "task 'measure p=8 n=32' failed: injected failure");
  }
}

TEST(TaskDagTest, NamedTaskWrapPreservesExceptionType) {
  const auto thrown_message = [](TaskDag& dag) {
    try {
      dag.run_serial();
    } catch (const std::exception& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  {
    TaskDag dag;
    dag.add("t", [] { throw InvalidArgument("bad input"); });
    EXPECT_THROW(dag.run_serial(), InvalidArgument);
  }
  {
    TaskDag dag;
    dag.add("t", [] { throw std::runtime_error("plain"); });
    EXPECT_EQ(thrown_message(dag), "task 't' failed: plain");
  }
  {
    // Unnamed tasks rethrow the original exception object untouched.
    TaskDag dag;
    dag.add([] { throw NumericError("untouched"); });
    EXPECT_EQ(thrown_message(dag), "untouched");
  }
}

TEST(TaskDagTest, SmallestFailingNamedTaskWinsInParallel) {
  // The named wrap must not break the determinism contract: serial and
  // parallel runs surface the same (smallest-id) task's error text.
  const auto run_message = [](bool parallel) {
    TaskDag dag;
    for (int i = 0; i < 8; ++i) {
      dag.add("task " + std::to_string(i), [i] {
        if (i % 3 == 1) {
          throw NumericError("failure " + std::to_string(i));
        }
      });
    }
    try {
      if (parallel) {
        ThreadPool pool(4);
        dag.run(pool);
      } else {
        dag.run_serial();
      }
    } catch (const NumericError& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  const std::string serial = run_message(false);
  EXPECT_EQ(serial, "task 'task 1' failed: failure 1");
  EXPECT_EQ(run_message(true), serial);
}

}  // namespace
}  // namespace exareq
