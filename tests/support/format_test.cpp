#include "support/format.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace exareq {
namespace {

TEST(FormatTest, RoundToPowerOfTenNearest) {
  EXPECT_DOUBLE_EQ(round_to_power_of_ten(1.0), 1.0);
  EXPECT_DOUBLE_EQ(round_to_power_of_ten(3.0), 1.0);   // log10(3) = 0.477 -> 0
  // The rounding boundary sits at sqrt(10) ~ 3.162 (nearest in log space).
  EXPECT_DOUBLE_EQ(round_to_power_of_ten(3.1e4), 1e4);
  EXPECT_DOUBLE_EQ(round_to_power_of_ten(3.2e4), 1e5);
  EXPECT_DOUBLE_EQ(round_to_power_of_ten(6.8e4), 1e5);
  EXPECT_DOUBLE_EQ(round_to_power_of_ten(0.02), 0.01);
}

TEST(FormatTest, NearestPowerOfTenExponent) {
  EXPECT_EQ(nearest_power_of_ten_exponent(9.0e6), 7);
  EXPECT_EQ(nearest_power_of_ten_exponent(1.1e6), 6);
  EXPECT_EQ(nearest_power_of_ten_exponent(1.0), 0);
}

TEST(FormatTest, PowerOfTenRejectsNonPositive) {
  EXPECT_THROW(round_to_power_of_ten(0.0), InvalidArgument);
  EXPECT_THROW(round_to_power_of_ten(-5.0), InvalidArgument);
}

TEST(FormatTest, PowerOfTenString) {
  EXPECT_EQ(power_of_ten_string(9.5e4), "10^5");
  EXPECT_EQ(power_of_ten_string(2.0e4), "10^4");
}

TEST(FormatTest, FixedFormatting) {
  EXPECT_EQ(format_fixed(1.234, 1), "1.2");
  EXPECT_EQ(format_fixed(1.25, 1), "1.2");  // round-to-even
  EXPECT_EQ(format_fixed(-3.456, 2), "-3.46");
  EXPECT_EQ(format_fixed(7.0, 0), "7");
}

TEST(FormatTest, ScientificFormatting) {
  EXPECT_EQ(format_sci(12345.0, 2), "1.23e+04");
  EXPECT_EQ(format_sci(0.00123, 1), "1.2e-03");
}

TEST(FormatTest, CompactFormatting) {
  EXPECT_EQ(format_compact(0.0), "0");
  EXPECT_EQ(format_compact(42.0), "42");
  EXPECT_EQ(format_compact(1234567.0), "1234567");
  EXPECT_EQ(format_compact(1.5), "1.5");
  EXPECT_EQ(format_compact(12345678.0), "1.23e+07");
}

TEST(FormatTest, BytesFormatting) {
  EXPECT_EQ(format_bytes(512.0), "512 B");
  EXPECT_EQ(format_bytes(1536.0), "1.5 KiB");
  EXPECT_EQ(format_bytes(1024.0 * 1024.0 * 1024.0 * 1.5), "1.5 GiB");
}

TEST(FormatTest, CountFormatting) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(12345678), "12,345,678");
}

}  // namespace
}  // namespace exareq
