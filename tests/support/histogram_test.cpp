#include "support/histogram.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace exareq {
namespace {

TEST(HistogramTest, ClassifiesPaperThresholds) {
  const std::vector<double> errors{0.005, 0.02, 0.04, 0.09, 0.15, 0.4, 0.9};
  const auto bins = classify_relative_errors(errors);
  ASSERT_EQ(bins.size(), 7u);
  for (const auto& bin : bins) {
    EXPECT_EQ(bin.count, 1u) << bin.label;
  }
}

TEST(HistogramTest, BoundaryValuesGoToUpperBin) {
  // 0.01 is not < 1%, so it belongs to the "< 2.5%" bin.
  const std::vector<double> errors{0.01};
  const auto bins = classify_relative_errors(errors);
  EXPECT_EQ(bins[0].count, 0u);
  EXPECT_EQ(bins[1].count, 1u);
}

TEST(HistogramTest, EmptyInputYieldsZeroCounts) {
  const auto bins = classify_relative_errors({});
  for (const auto& bin : bins) EXPECT_EQ(bin.count, 0u);
}

TEST(HistogramTest, RenderShowsCountsAndPercentages) {
  std::vector<HistogramBin> bins{{"small", 3}, {"large", 1}};
  const std::string rendered = render_histogram(bins, 20);
  EXPECT_NE(rendered.find("small"), std::string::npos);
  EXPECT_NE(rendered.find("75.0%"), std::string::npos);
  EXPECT_NE(rendered.find("25.0%"), std::string::npos);
  // The largest bin fills the full bar width.
  EXPECT_NE(rendered.find(std::string(20, '#')), std::string::npos);
}

TEST(HistogramTest, RenderHandlesAllZeroBins) {
  std::vector<HistogramBin> bins{{"a", 0}, {"b", 0}};
  const std::string rendered = render_histogram(bins, 10);
  EXPECT_NE(rendered.find("0 (0.0%)"), std::string::npos);
}

}  // namespace
}  // namespace exareq
