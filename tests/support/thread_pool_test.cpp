#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace exareq {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.parallel_for(8, [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, NestedCallsExecuteInline) {
  // An outer task calling parallel_for again must not deadlock on the
  // pool's single job slot: nested calls run inline on the current thread.
  ThreadPool pool(3);
  constexpr std::size_t kOuter = 6;
  constexpr std::size_t kInner = 10;
  std::vector<std::vector<int>> sums(kOuter, std::vector<int>(kInner, 0));
  pool.parallel_for(kOuter, [&](std::size_t i) {
    pool.parallel_for(kInner, [&, i](std::size_t j) {
      sums[i][j] = static_cast<int>(i * kInner + j);
    });
  });
  int total = 0;
  for (const auto& row : sums) total += std::accumulate(row.begin(), row.end(), 0);
  const int n = kOuter * kInner;
  EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST(ThreadPoolTest, PropagatesExceptionOfSmallestFailingIndex) {
  ThreadPool pool(4);
  // Several failing indices: the reported error must be deterministic —
  // the smallest index wins regardless of execution order.
  try {
    pool.parallel_for(100, [](std::size_t i) {
      if (i == 97 || i == 13 || i == 55) {
        throw std::runtime_error("task " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "task 13");
  }
}

TEST(ThreadPoolTest, PoolIsReusableAfterAnException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4, [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(16, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, SharedPoolReusesInstanceForSameSize) {
  ThreadPool& a = shared_pool(2);
  ThreadPool& b = shared_pool(2);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.thread_count(), 2u);
  std::atomic<int> count{0};
  a.parallel_for(32, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

}  // namespace
}  // namespace exareq
