#include "support/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/error.hpp"

namespace exareq {
namespace {

TEST(CsvTest, RoundTripSimpleDocument) {
  CsvDocument doc({"app", "p", "n", "value"});
  doc.add_row({"kripke", "8", "256", "123.5"});
  doc.add_row({"lulesh", "16", "512", "7e9"});
  const CsvDocument parsed = CsvDocument::parse_string(doc.to_string());
  EXPECT_EQ(parsed.header(), doc.header());
  ASSERT_EQ(parsed.rows().size(), 2u);
  EXPECT_EQ(parsed.rows()[0][0], "kripke");
  EXPECT_DOUBLE_EQ(parsed.number_at(1, 3), 7e9);
}

TEST(CsvTest, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, ParsesQuotedFieldsWithEmbeddedSeparators) {
  const std::string text = "name,model\nmilc,\"10^4 * Allreduce(p), rounded\"\n";
  const CsvDocument doc = CsvDocument::parse_string(text);
  ASSERT_EQ(doc.rows().size(), 1u);
  EXPECT_EQ(doc.rows()[0][1], "10^4 * Allreduce(p), rounded");
}

TEST(CsvTest, ParsesEmbeddedNewlinesInQuotes) {
  const std::string text = "a,b\n\"two\nlines\",x\n";
  const CsvDocument doc = CsvDocument::parse_string(text);
  ASSERT_EQ(doc.rows().size(), 1u);
  EXPECT_EQ(doc.rows()[0][0], "two\nlines");
}

TEST(CsvTest, HandlesCrLfLineEndings) {
  const std::string text = "a,b\r\n1,2\r\n";
  const CsvDocument doc = CsvDocument::parse_string(text);
  ASSERT_EQ(doc.rows().size(), 1u);
  EXPECT_EQ(doc.rows()[0][1], "2");
}

TEST(CsvTest, QuotedFieldPreservesCrLfVerbatim) {
  // Only line terminators outside quotes are normalized; a CRLF inside a
  // quoted field is data and must survive untouched.
  const std::string text = "a,b\r\n\"two\r\nlines\",x\r\n";
  const CsvDocument doc = CsvDocument::parse_string(text);
  ASSERT_EQ(doc.rows().size(), 1u);
  EXPECT_EQ(doc.rows()[0][0], "two\r\nlines");
  EXPECT_EQ(doc.rows()[0][1], "x");
}

TEST(CsvTest, ParsesFileWithoutTrailingNewline) {
  const CsvDocument doc = CsvDocument::parse_string("a,b\n1,2\n3,4");
  ASSERT_EQ(doc.rows().size(), 2u);
  EXPECT_EQ(doc.rows()[1][0], "3");
  EXPECT_EQ(doc.rows()[1][1], "4");
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_THROW(CsvDocument::parse_string("a,b\n1\n"), InvalidArgument);
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_THROW(CsvDocument::parse_string(""), InvalidArgument);
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_THROW(CsvDocument::parse_string("a,b\n\"open,2\n"), InvalidArgument);
}

TEST(CsvTest, ColumnIndexLookup) {
  CsvDocument doc({"p", "n", "flop"});
  EXPECT_EQ(doc.column_index("n"), 1u);
  EXPECT_THROW(doc.column_index("missing"), InvalidArgument);
}

TEST(CsvTest, NumberAtRejectsNonNumeric) {
  CsvDocument doc({"x"});
  doc.add_row({"not-a-number"});
  EXPECT_THROW(doc.number_at(0, 0), InvalidArgument);
}

TEST(CsvTest, RowWidthEnforced) {
  CsvDocument doc({"a", "b"});
  EXPECT_THROW(doc.add_row({"1"}), InvalidArgument);
}

// Fuzz-shaped input hardening: every malformed document must raise
// exareq::Error naming the offending row/column, never silently produce
// data (regressions for the csv fuzz driver's findings).

TEST(CsvTest, RejectsDuplicateHeaderColumns) {
  // Duplicate names would make column_index silently ambiguous.
  try {
    CsvDocument::parse_string("p,n,p\n1,2,3\n");
    FAIL() << "duplicate header accepted";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("duplicate column 'p'"), std::string::npos) << what;
    EXPECT_NE(what.find("columns 1 and 3"), std::string::npos) << what;
  }
  EXPECT_THROW(CsvDocument({"a", "a"}), InvalidArgument);
}

TEST(CsvTest, NumberAtRejectsNanAndInfSpellings) {
  // from_chars accepts "nan"/"inf"; a measurement file carrying them is
  // corrupt and must not poison downstream fits silently.
  for (const char* cell : {"nan", "NaN", "inf", "-inf", "INF", "-NAN"}) {
    CsvDocument doc({"x"});
    doc.add_row({cell});
    try {
      doc.number_at(0, 0);
      FAIL() << "accepted non-finite cell '" << cell << "'";
    } catch (const InvalidArgument& error) {
      EXPECT_NE(std::string(error.what()).find("not a finite number"),
                std::string::npos)
          << error.what();
    }
  }
}

TEST(CsvTest, NumberAtErrorNamesRowAndColumn) {
  CsvDocument doc({"p", "flops"});
  doc.add_row({"4", "1e9"});
  doc.add_row({"8", "bogus"});
  try {
    doc.number_at(1, 1);
    FAIL() << "accepted non-numeric cell";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("row 2"), std::string::npos) << what;
    EXPECT_NE(what.find("column 'flops'"), std::string::npos) << what;
  }
}

TEST(CsvTest, RaggedRowErrorNamesTheRow) {
  try {
    CsvDocument::parse_string("a,b\n1,2\n3\n");
    FAIL() << "ragged row accepted";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("ragged row 2"),
              std::string::npos)
        << error.what();
  }
}

TEST(CsvTest, UnterminatedQuoteErrorNamesTheRecord) {
  try {
    CsvDocument::parse_string("a,b\n\"open,2\n");
    FAIL() << "unterminated quote accepted";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("row 1"), std::string::npos)
        << error.what();
  }
  try {
    CsvDocument::parse_string("\"open");
    FAIL() << "unterminated header quote accepted";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("header"), std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace exareq
