#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/error.hpp"

namespace exareq {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable table({"Metric", "Value"});
  table.add_row({"FLOP", "123"});
  table.add_row({"Bytes", "45"});
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("Metric"), std::string::npos);
  EXPECT_NE(rendered.find("FLOP"), std::string::npos);
  EXPECT_NE(rendered.find("123"), std::string::npos);
  EXPECT_NE(rendered.find("45"), std::string::npos);
}

TEST(TextTableTest, RowsMustMatchHeaderWidth) {
  TextTable table({"A", "B"});
  EXPECT_THROW(table.add_row({"only one"}), InvalidArgument);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), InvalidArgument);
}

TEST(TextTableTest, AllLinesHaveEqualWidth) {
  TextTable table({"Name", "Count", "Ratio"});
  table.add_row({"short", "1", "2.0"});
  table.add_separator();
  table.add_row({"a much longer name", "123456", "0.25"});
  table.add_section("Section heading");
  std::istringstream lines(table.render());
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << "line: " << line;
  }
  EXPECT_GT(width, 0u);
}

TEST(TextTableTest, AlignmentPadsCorrectly) {
  TextTable table({"L", "R"});
  table.set_alignment({Align::kLeft, Align::kRight});
  table.add_row({"x", "1"});
  table.add_row({"longer", "12345"});
  const std::string rendered = table.render();
  // Left column: value flush left -> "| x     "; right column flush right.
  EXPECT_NE(rendered.find("| x     "), std::string::npos);
  EXPECT_NE(rendered.find("    1 |"), std::string::npos);
}

TEST(TextTableTest, SectionRowIsRendered) {
  TextTable table({"A", "B"});
  table.add_section("Upgrade A");
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("Upgrade A"), std::string::npos);
}

TEST(TextTableTest, StreamOperatorMatchesRender) {
  TextTable table({"A"});
  table.add_row({"1"});
  std::ostringstream os;
  os << table;
  EXPECT_EQ(os.str(), table.render());
}

TEST(TextTableTest, NeedsAtLeastOneColumn) {
  EXPECT_THROW(TextTable({}), InvalidArgument);
}

TEST(TextTableTest, AlignmentSizeMustMatch) {
  TextTable table({"A", "B"});
  EXPECT_THROW(table.set_alignment({Align::kLeft}), InvalidArgument);
}

}  // namespace
}  // namespace exareq
