#include "memtrace/mmm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "memtrace/locality.hpp"
#include "support/error.hpp"

namespace exareq::memtrace {
namespace {

void expect_matrices_close(const std::vector<float>& a,
                           const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], 1e-2f * std::max(1.0f, std::fabs(b[i]))) << i;
  }
}

LocalityReport analyze(const AccessTrace& trace) {
  LocalityConfig config;
  config.sampler = SamplerConfig::exact();
  config.min_samples = 100;
  return analyze_locality(trace, config, static_cast<double>(trace.size()));
}

TEST(MmmTest, NaiveComputesCorrectProduct) {
  const std::size_t n = 12;
  const auto a = make_matrix(n, 1.0f);
  const auto b = make_matrix(n, 2.0f);
  const auto result = traced_mmm_naive(a, b, n);
  expect_matrices_close(result.c, mmm_reference(a, b, n));
}

TEST(MmmTest, BlockedComputesCorrectProduct) {
  const std::size_t n = 12;
  const auto a = make_matrix(n, 1.0f);
  const auto b = make_matrix(n, 2.0f);
  const auto result = traced_mmm_blocked(a, b, n, 4);
  expect_matrices_close(result.c, mmm_reference(a, b, n));
}

TEST(MmmTest, BlockedMatchesNaiveProduct) {
  const std::size_t n = 16;
  const auto a = make_matrix(n, 0.5f);
  const auto b = make_matrix(n, 1.5f);
  const auto naive = traced_mmm_naive(a, b, n);
  const auto blocked = traced_mmm_blocked(a, b, n, 4);
  expect_matrices_close(blocked.c, naive.c);
}

TEST(MmmTest, BlockSizeMustDivideN) {
  const std::size_t n = 10;
  const auto a = make_matrix(n, 1.0f);
  const auto b = make_matrix(n, 1.0f);
  EXPECT_THROW(traced_mmm_blocked(a, b, n, 3), exareq::InvalidArgument);
}

TEST(MmmTest, NaiveTraceLengthIsExact) {
  const std::size_t n = 8;
  const auto result =
      traced_mmm_naive(make_matrix(n, 1.0f), make_matrix(n, 1.0f), n);
  // 2 reads per innermost iteration + 1 write of C per (i, j).
  EXPECT_EQ(result.trace.size(), 2 * n * n * n + n * n);
}

TEST(MmmTest, NaiveStackDistanceOfAIsAbout2N) {
  // Paper Sec. II-D: reuse and stack distance of A in the naive kernel are
  // ~2n (the next j iteration re-reads A's row after touching n B elements).
  const std::size_t n = 24;
  const auto result =
      traced_mmm_naive(make_matrix(n, 1.0f), make_matrix(n, 1.0f), n);
  const auto report = analyze(result.trace);
  const double sd_a = report.groups[result.group_a].median_stack_distance;
  EXPECT_GE(sd_a, 1.5 * static_cast<double>(n));
  EXPECT_LE(sd_a, 2.5 * static_cast<double>(n));
}

TEST(MmmTest, NaiveStackDistanceOfBIsAboutNSquared) {
  // Paper: SD(B) = n^2 + 2n - 1 in the naive kernel.
  const std::size_t n = 24;
  const auto result =
      traced_mmm_naive(make_matrix(n, 1.0f), make_matrix(n, 1.0f), n);
  const auto report = analyze(result.trace);
  const double sd_b = report.groups[result.group_b].median_stack_distance;
  const double expected = static_cast<double>(n * n + 2 * n - 1);
  EXPECT_GE(sd_b, 0.7 * expected);
  EXPECT_LE(sd_b, 1.3 * expected);
}

TEST(MmmTest, NaiveCIsNeverReused) {
  const std::size_t n = 16;
  const auto result =
      traced_mmm_naive(make_matrix(n, 1.0f), make_matrix(n, 1.0f), n);
  const auto report = analyze(result.trace);
  EXPECT_EQ(report.groups[result.group_c].samples, 0u);
}

TEST(MmmTest, BlockedStackDistancesDependOnBlockNotN) {
  // Paper: with blocking, SD(A) ~ 2b + 1, SD(B) ~ 2b^2 + b, SD(C) ~ 2;
  // crucially they are independent of the matrix size n.
  const std::size_t block = 4;
  double sd_a_small = 0.0, sd_a_large = 0.0;
  double sd_b_small = 0.0, sd_b_large = 0.0;
  double sd_c_small = 0.0, sd_c_large = 0.0;
  for (const std::size_t n : {16, 32}) {
    const auto result =
        traced_mmm_blocked(make_matrix(n, 1.0f), make_matrix(n, 1.0f), n, block);
    const auto report = analyze(result.trace);
    double& sd_a = n == 16 ? sd_a_small : sd_a_large;
    double& sd_b = n == 16 ? sd_b_small : sd_b_large;
    double& sd_c = n == 16 ? sd_c_small : sd_c_large;
    sd_a = report.groups[result.group_a].median_stack_distance;
    sd_b = report.groups[result.group_b].median_stack_distance;
    sd_c = report.groups[result.group_c].median_stack_distance;
  }
  EXPECT_DOUBLE_EQ(sd_a_small, sd_a_large);
  EXPECT_DOUBLE_EQ(sd_b_small, sd_b_large);
  EXPECT_DOUBLE_EQ(sd_c_small, sd_c_large);
  // Magnitudes match the paper's closed forms up to small constants.
  EXPECT_LE(sd_a_small, 3.0 * static_cast<double>(block));
  EXPECT_LE(sd_c_small, 4.0);
  EXPECT_GE(sd_b_small, static_cast<double>(block * block));
  EXPECT_LE(sd_b_small, 3.0 * static_cast<double>(block * block) +
                            static_cast<double>(block));
}

TEST(MmmTest, NaiveLocalityDegradesWithNButBlockedDoesNot) {
  const std::size_t block = 4;
  double naive_small = 0.0, naive_large = 0.0;
  double blocked_small = 0.0, blocked_large = 0.0;
  for (const std::size_t n : {16, 32}) {
    const auto a = make_matrix(n, 1.0f);
    const auto b = make_matrix(n, 1.0f);
    const auto naive_report = analyze(traced_mmm_naive(a, b, n).trace);
    const auto blocked_report =
        analyze(traced_mmm_blocked(a, b, n, block).trace);
    (n == 16 ? naive_small : naive_large) =
        naive_report.weighted_median_stack_distance;
    (n == 16 ? blocked_small : blocked_large) =
        blocked_report.weighted_median_stack_distance;
  }
  EXPECT_GT(naive_large, 2.0 * naive_small);  // degrades superlinearly
  EXPECT_NEAR(blocked_large, blocked_small, 0.3 * blocked_small + 1.0);
}

}  // namespace
}  // namespace exareq::memtrace
