#include "memtrace/locality.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace exareq::memtrace {
namespace {

// A trace with two groups: group "hot" cycles over 4 addresses (SD = 3),
// group "cold" streams fresh addresses (never reused).
AccessTrace hot_cold_trace(std::size_t rounds) {
  AccessTrace trace;
  const GroupId hot = trace.register_group("hot");
  const GroupId cold = trace.register_group("cold");
  std::uint64_t fresh = 0x100000;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::uint64_t a = 0; a < 4; ++a) trace.record(a, hot);
    trace.record(fresh++, cold);
  }
  return trace;
}

TEST(LocalityTest, ExactSamplingComputesMediansPerGroup) {
  const AccessTrace trace = hot_cold_trace(200);
  LocalityConfig config;
  config.sampler = SamplerConfig::exact();
  config.min_samples = 100;
  const auto report =
      analyze_locality(trace, config, static_cast<double>(trace.size()));

  ASSERT_EQ(report.groups.size(), 2u);
  const GroupLocality& hot = report.groups[0];
  EXPECT_EQ(hot.name, "hot");
  EXPECT_TRUE(hot.reliable);
  // Cycling over 4 addresses with one interleaved cold access: between two
  // accesses to the same hot address lie the 3 other hot ones plus the one
  // cold access of the round -> stack distance 4 for every hot reuse.
  EXPECT_DOUBLE_EQ(hot.median_stack_distance, 4.0);

  const GroupLocality& cold = report.groups[1];
  EXPECT_EQ(cold.samples, 0u);  // never reused -> no distances
  EXPECT_FALSE(cold.reliable);
}

TEST(LocalityTest, AccessEstimationUsesSampleShares) {
  const AccessTrace trace = hot_cold_trace(100);  // 4 hot : 1 cold per round
  LocalityConfig config;
  config.sampler = SamplerConfig::exact();
  const double papi_total = 1e9;  // externally measured loads+stores
  const auto report = analyze_locality(trace, config, papi_total);
  EXPECT_NEAR(report.groups[0].estimated_accesses, 0.8e9, 1e3);
  EXPECT_NEAR(report.groups[1].estimated_accesses, 0.2e9, 1e3);
}

TEST(LocalityTest, MinSamplesRuleMarksGroupsUnreliable) {
  const AccessTrace trace = hot_cold_trace(20);  // hot gets 80 samples < 100
  LocalityConfig config;
  config.sampler = SamplerConfig::exact();
  config.min_samples = 100;
  const auto report = analyze_locality(trace, config, 1.0);
  EXPECT_FALSE(report.groups[0].reliable);
  // With no reliable group the weighted summary collapses to zero.
  EXPECT_DOUBLE_EQ(report.weighted_median_stack_distance, 0.0);
}

TEST(LocalityTest, BurstSamplingReducesSampleCountsNotDistances) {
  const AccessTrace trace = hot_cold_trace(2000);
  LocalityConfig exact;
  exact.sampler = SamplerConfig::exact();
  LocalityConfig burst;
  burst.sampler = SamplerConfig{64, 512, 0};

  const auto exact_report = analyze_locality(trace, exact, 1.0);
  const auto burst_report = analyze_locality(trace, burst, 1.0);
  EXPECT_LT(burst_report.total_sampled, exact_report.total_sampled);
  // Distances are exact regardless of sampling; medians agree.
  EXPECT_DOUBLE_EQ(burst_report.groups[0].median_stack_distance,
                   exact_report.groups[0].median_stack_distance);
}

TEST(LocalityTest, WeightedMedianFollowsDominantGroup) {
  // Two reliable groups with different medians; the group with more
  // accesses dominates the weighted summary.
  AccessTrace trace;
  const GroupId big = trace.register_group("big");    // SD 1 (ping-pong)
  const GroupId small = trace.register_group("small");  // SD 9 (cycle of 10)
  for (int r = 0; r < 400; ++r) {
    trace.record(0x1, big);
    trace.record(0x2, big);
  }
  for (int r = 0; r < 30; ++r) {
    for (std::uint64_t a = 0; a < 10; ++a) trace.record(0x100 + a, small);
  }
  LocalityConfig config;
  config.sampler = SamplerConfig::exact();
  const auto report = analyze_locality(trace, config, 1e6);
  EXPECT_LT(report.weighted_median_stack_distance, 4.0);
  EXPECT_GT(report.weighted_median_stack_distance, 0.5);
}

TEST(LocalityTest, EmptyTraceYieldsEmptyReport) {
  AccessTrace trace;
  trace.register_group("g");
  LocalityConfig config;
  const auto report = analyze_locality(trace, config, 0.0);
  EXPECT_EQ(report.trace_length, 0u);
  EXPECT_EQ(report.total_sampled, 0u);
  EXPECT_DOUBLE_EQ(report.groups[0].estimated_accesses, 0.0);
}

TEST(LocalityTest, NegativeAccessCountRejected) {
  AccessTrace trace;
  LocalityConfig config;
  EXPECT_THROW(analyze_locality(trace, config, -1.0), exareq::InvalidArgument);
}

}  // namespace
}  // namespace exareq::memtrace
