#include "memtrace/trace.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace exareq::memtrace {
namespace {

TEST(TraceTest, RegisterGroupReturnsStableIds) {
  AccessTrace trace;
  const GroupId a = trace.register_group("A");
  const GroupId b = trace.register_group("B");
  EXPECT_NE(a, b);
  EXPECT_EQ(trace.register_group("A"), a);
  EXPECT_EQ(trace.group_count(), 2u);
  EXPECT_EQ(trace.group_name(a), "A");
  EXPECT_EQ(trace.group_name(b), "B");
}

TEST(TraceTest, GroupNameRejectsUnknownId) {
  const AccessTrace trace;
  EXPECT_THROW(trace.group_name(0), exareq::InvalidArgument);
}

TEST(TraceTest, RecordRejectsUnregisteredGroup) {
  AccessTrace trace;
  EXPECT_THROW(trace.record(0x10, 0), exareq::InvalidArgument);
}

TEST(TraceTest, RecordsAccessesInOrder) {
  AccessTrace trace;
  const GroupId g = trace.register_group("g");
  trace.record(10, g);
  trace.record(20, g);
  trace.record(10, g);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.accesses()[0].address, 10u);
  EXPECT_EQ(trace.accesses()[1].address, 20u);
  EXPECT_EQ(trace.accesses()[2].address, 10u);
}

TEST(TraceTest, DistinctAddresses) {
  AccessTrace trace;
  const GroupId g = trace.register_group("g");
  for (std::uint64_t a : {1, 2, 3, 2, 1, 4}) trace.record(a, g);
  EXPECT_EQ(trace.distinct_addresses(), 4u);
}

TEST(TraceTest, ClearEmptiesAccessesButKeepsGroups) {
  AccessTrace trace;
  const GroupId g = trace.register_group("g");
  trace.record(1, g);
  trace.clear();
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.group_count(), 1u);
}

}  // namespace
}  // namespace exareq::memtrace
