#include "memtrace/cache_sim.hpp"

#include <gtest/gtest.h>

#include "memtrace/cache_model.hpp"
#include "memtrace/mmm.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace exareq::memtrace {
namespace {

AccessTrace trace_of(const std::vector<std::uint64_t>& addresses) {
  AccessTrace trace;
  const GroupId g = trace.register_group("g");
  for (std::uint64_t a : addresses) trace.record(a, g);
  return trace;
}

TEST(CacheSimTest, HitsAfterColdMiss) {
  CacheSim cache(CacheConfig{1, 2, 1});
  EXPECT_FALSE(cache.access(0x10));  // cold
  EXPECT_TRUE(cache.access(0x10));   // hit
  EXPECT_EQ(cache.resident_lines(), 1u);
}

TEST(CacheSimTest, LruEvictionOrder) {
  CacheSim cache(CacheConfig{1, 2, 1});  // fully associative, 2 lines
  cache.access(0xA);
  cache.access(0xB);
  cache.access(0xA);   // A is now MRU
  cache.access(0xC);   // evicts B (LRU)
  EXPECT_TRUE(cache.access(0xA));
  EXPECT_FALSE(cache.access(0xB));  // was evicted
}

TEST(CacheSimTest, SetConflictsEvictDespiteFreeCapacity) {
  // Direct-mapped with 2 sets: addresses 0 and 2 collide in set 0.
  CacheSim cache(CacheConfig{2, 1, 1});
  cache.access(0);
  cache.access(2);                 // evicts 0 (same set)
  EXPECT_FALSE(cache.access(0));   // conflict miss
  EXPECT_TRUE(cache.access(1) == false);  // cold in set 1
  EXPECT_TRUE(cache.access(1));
}

TEST(CacheSimTest, LineGranularityGivesSpatialLocality) {
  CacheSim cache(CacheConfig{4, 2, 8});  // 8 locations per line
  EXPECT_FALSE(cache.access(0));  // loads line [0, 8)
  for (std::uint64_t a = 1; a < 8; ++a) {
    EXPECT_TRUE(cache.access(a)) << a;
  }
  EXPECT_FALSE(cache.access(8));  // next line
}

TEST(CacheSimTest, InvalidGeometryRejected) {
  EXPECT_THROW(CacheSim(CacheConfig{0, 1, 1}), exareq::InvalidArgument);
  EXPECT_THROW(CacheSim(CacheConfig{1, 0, 1}), exareq::InvalidArgument);
  EXPECT_THROW(CacheSim(CacheConfig{1, 1, 0}), exareq::InvalidArgument);
}

TEST(CacheSimTest, FullyAssociativeMatchesStackDistancePrediction) {
  // Mattson: for fully-associative LRU, an access misses iff its stack
  // distance >= capacity. The simulator and the analytic prediction must
  // agree exactly on any trace.
  exareq::Rng rng(99);
  std::vector<std::uint64_t> addresses;
  for (int i = 0; i < 5000; ++i) {
    addresses.push_back(static_cast<std::uint64_t>(rng.uniform_int(0, 127)));
  }
  const AccessTrace trace = trace_of(addresses);

  for (const std::uint64_t capacity : {8u, 32u, 64u, 128u}) {
    const CacheSimResult simulated =
        simulate_cache(trace, CacheConfig::fully_associative(capacity));
    LocalityConfig config;
    config.sampler = SamplerConfig::exact();
    const std::uint64_t capacities[] = {capacity};
    const MissProfile predicted = predict_miss_ratios(trace, config, capacities);
    EXPECT_DOUBLE_EQ(simulated.miss_ratio(), predicted.total_miss_ratio[0])
        << "capacity " << capacity;
  }
}

TEST(CacheSimTest, StridedConflictsPunishLowAssociativity) {
  // Four addresses that all map to set 0 of a 64-set cache (stride 64):
  // the direct-mapped cache thrashes, 4-way associativity absorbs the
  // conflicts, and fully-associative LRU only pays the cold misses. (Note
  // that "more associativity is never worse" does NOT hold for arbitrary
  // traces — the LRU inclusion property applies within one set mapping,
  // not across geometries — so the test uses an engineered conflict
  // pattern where the ordering is guaranteed.)
  std::vector<std::uint64_t> addresses;
  for (int round = 0; round < 100; ++round) {
    for (std::uint64_t a : {0u, 64u, 128u, 192u}) addresses.push_back(a);
  }
  const AccessTrace trace = trace_of(addresses);
  const auto full = simulate_cache(trace, CacheConfig::fully_associative(64));
  const auto assoc4 = simulate_cache(trace, CacheConfig{16, 4, 1});
  const auto direct = simulate_cache(trace, CacheConfig{64, 1, 1});
  EXPECT_EQ(full.misses, 4u);    // cold only
  EXPECT_EQ(assoc4.misses, 4u);  // 4 ways hold all 4 conflicting lines
  EXPECT_EQ(direct.misses, 400u);  // every access conflicts
}

TEST(CacheSimTest, BlockedMmmBeatsNaiveOnRealCacheToo) {
  // The Sec. II-D conclusion must hold on a realistic cache geometry, not
  // just the fully-associative model: 8-way, 64 lines of 8 locations.
  const std::size_t n = 24;
  const auto a = make_matrix(n, 1.0f);
  const auto b = make_matrix(n, 2.0f);
  const CacheConfig config{8, 8, 8};
  const auto naive = simulate_cache(traced_mmm_naive(a, b, n).trace, config);
  const auto blocked =
      simulate_cache(traced_mmm_blocked(a, b, n, 4).trace, config);
  EXPECT_LT(blocked.miss_ratio(), naive.miss_ratio());
}

TEST(CacheSimTest, PerGroupCountsSumToTotals) {
  const std::size_t n = 16;
  const auto a = make_matrix(n, 1.0f);
  const auto b = make_matrix(n, 2.0f);
  const auto result =
      simulate_cache(traced_mmm_naive(a, b, n).trace, CacheConfig{8, 4, 2});
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const auto& group : result.groups) {
    hits += group.hits;
    misses += group.misses;
  }
  EXPECT_EQ(hits, result.hits);
  EXPECT_EQ(misses, result.misses);
  EXPECT_EQ(hits + misses, 2 * n * n * n + n * n);
}

}  // namespace
}  // namespace exareq::memtrace
