// Delta+varint compressed traces: exact round trips against the
// materializing AccessTrace, compression on regular strides, and the
// parse-or-clean-error contract of the serialized container.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "memtrace/compressed_trace.hpp"
#include "memtrace/locality.hpp"
#include "memtrace/trace.hpp"
#include "support/error.hpp"

namespace exareq::memtrace {
namespace {

/// Records the same synthetic stream into both sink types.
template <typename Sink>
void emit_stream(Sink& sink) {
  const GroupId a = sink.register_group("A");
  const GroupId b = sink.register_group("B");
  const GroupId c = sink.register_group("C");
  for (std::uint64_t i = 0; i < 500; ++i) {
    sink.record(0x1000 + 8 * i, a);                  // unit stride
    sink.record(0x80000 + 64 * (i % 7), b);          // small working set
    if (i % 3 == 0) sink.record(0xF0000000ULL - i * 4096, c);  // descending
  }
}

void expect_same_trace(const AccessTrace& x, const AccessTrace& y) {
  ASSERT_EQ(x.group_count(), y.group_count());
  for (GroupId g = 0; g < x.group_count(); ++g) {
    EXPECT_EQ(x.group_name(g), y.group_name(g));
  }
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x.accesses()[i].address, y.accesses()[i].address) << i;
    EXPECT_EQ(x.accesses()[i].group, y.accesses()[i].group) << i;
  }
}

TEST(CompressedTraceTest, ReplayMatchesMaterializedTrace) {
  AccessTrace reference;
  CompressedTrace compressed;
  emit_stream(reference);
  emit_stream(compressed);
  EXPECT_EQ(compressed.size(), reference.size());

  AccessTrace replayed;
  compressed.replay(replayed);
  expect_same_trace(replayed, reference);
}

TEST(CompressedTraceTest, StridedStreamCompressesWell) {
  AccessTrace reference;
  CompressedTrace compressed;
  emit_stream(reference);
  emit_stream(compressed);
  // The acceptance bar for the checkpointed sweeps is >= 2x against the
  // 16-byte-per-access materialized form; regular strides do far better.
  EXPECT_LT(compressed.compressed_bytes() * 2,
            reference.size() * sizeof(Access));
}

TEST(CompressedTraceTest, LocalityAnalysisIsIdenticalThroughCompression) {
  // The production consumer: a LocalityAnalyzer fed through the compressed
  // trace must see the identical stream, hence identical statistics.
  AccessTrace reference;
  CompressedTrace compressed;
  emit_stream(reference);
  emit_stream(compressed);

  const LocalityConfig config{SamplerConfig{64, 512, 0}, 10};
  LocalityAnalyzer direct(config);
  reference.replay(direct);
  LocalityAnalyzer via_compressed(config);
  compressed.replay(via_compressed);
  const double total = static_cast<double>(reference.size());
  EXPECT_EQ(direct.finish(total).weighted_median_stack_distance,
            via_compressed.finish(total).weighted_median_stack_distance);
}

TEST(CompressedTraceTest, SerializeRoundTrip) {
  CompressedTrace original;
  emit_stream(original);
  const std::string bytes = original.serialize();
  const CompressedTrace restored = CompressedTrace::deserialize(bytes);
  EXPECT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored.group_count(), original.group_count());
  EXPECT_EQ(restored.serialize(), bytes);

  AccessTrace a;
  AccessTrace b;
  original.replay(a);
  restored.replay(b);
  expect_same_trace(a, b);
}

TEST(CompressedTraceTest, EmptyTraceRoundTrips) {
  CompressedTrace empty;
  EXPECT_TRUE(empty.empty());
  const CompressedTrace restored = CompressedTrace::deserialize(
      empty.serialize());
  EXPECT_TRUE(restored.empty());
  EXPECT_EQ(restored.group_count(), 0u);
}

TEST(CompressedTraceTest, DeserializeRejectsDamage) {
  CompressedTrace original;
  emit_stream(original);
  const std::string clean = original.serialize();
  for (std::size_t i = 0; i < clean.size(); i += 11) {
    std::string damaged = clean;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x5A);
    EXPECT_THROW(CompressedTrace::deserialize(damaged), exareq::Error)
        << "byte " << i;
  }
  EXPECT_THROW(CompressedTrace::deserialize(""), exareq::Error);
  EXPECT_THROW(CompressedTrace::deserialize(clean.substr(0, clean.size() / 2)),
               exareq::Error);
}

TEST(CompressedTraceTest, RecordRejectsUnregisteredGroup) {
  CompressedTrace trace;
  EXPECT_THROW(trace.record(0x1000, 0), exareq::InvalidArgument);
  trace.register_group("A");
  trace.record(0x1000, 0);
  EXPECT_THROW(trace.record(0x1000, 1), exareq::InvalidArgument);
  EXPECT_THROW(trace.group_name(1), exareq::InvalidArgument);
}

}  // namespace
}  // namespace exareq::memtrace
