#include "memtrace/fenwick.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace exareq::memtrace {
namespace {

TEST(FenwickTest, SetAndPrefixCount) {
  FenwickTree tree(16);
  tree.set(3);
  tree.set(7);
  tree.set(8);
  EXPECT_EQ(tree.prefix_count(2), 0u);
  EXPECT_EQ(tree.prefix_count(3), 1u);
  EXPECT_EQ(tree.prefix_count(7), 2u);
  EXPECT_EQ(tree.prefix_count(100), 3u);
  EXPECT_EQ(tree.total(), 3u);
}

TEST(FenwickTest, ClearRemovesMark) {
  FenwickTree tree(16);
  tree.set(5);
  EXPECT_TRUE(tree.is_set(5));
  tree.clear(5);
  EXPECT_FALSE(tree.is_set(5));
  EXPECT_EQ(tree.prefix_count(10), 0u);
  EXPECT_EQ(tree.total(), 0u);
}

TEST(FenwickTest, RangeCount) {
  FenwickTree tree(32);
  for (std::size_t i : {0u, 4u, 9u, 15u, 16u}) tree.set(i);
  EXPECT_EQ(tree.range_count(0, 31), 5u);
  EXPECT_EQ(tree.range_count(1, 15), 3u);
  EXPECT_EQ(tree.range_count(5, 8), 0u);
  EXPECT_EQ(tree.range_count(16, 16), 1u);
  EXPECT_EQ(tree.range_count(10, 5), 0u);  // inverted range
}

TEST(FenwickTest, GrowsBeyondInitialCapacity) {
  FenwickTree tree(4);
  tree.set(2);
  tree.set(1000);
  tree.set(100000);
  EXPECT_EQ(tree.total(), 3u);
  EXPECT_EQ(tree.prefix_count(999), 1u);
  EXPECT_EQ(tree.prefix_count(1000), 2u);
  EXPECT_EQ(tree.prefix_count(100000), 3u);
  EXPECT_TRUE(tree.is_set(2));  // survived the rebuild
}

TEST(FenwickTest, DoubleSetThrows) {
  FenwickTree tree;
  tree.set(1);
  EXPECT_THROW(tree.set(1), exareq::InvalidArgument);
}

TEST(FenwickTest, ClearUnsetThrows) {
  FenwickTree tree;
  EXPECT_THROW(tree.clear(1), exareq::InvalidArgument);
}

TEST(FenwickTest, AssignReplacesMarksAndRebuilds) {
  FenwickTree tree(8);
  tree.set(1);
  tree.set(6);
  std::vector<std::uint8_t> marks(32, 0);
  marks[0] = 1;
  marks[5] = 1;
  marks[31] = 1;
  tree.assign(std::move(marks));
  EXPECT_EQ(tree.capacity(), 32u);
  EXPECT_EQ(tree.total(), 3u);
  EXPECT_TRUE(tree.is_set(0));
  EXPECT_FALSE(tree.is_set(1));  // old marks are gone
  EXPECT_EQ(tree.prefix_count(5), 2u);
  EXPECT_EQ(tree.range_count(1, 30), 1u);
  EXPECT_EQ(tree.range_count(0, 31), 3u);
}

TEST(FenwickTest, AssignPadsTinyMarkSets) {
  FenwickTree tree;
  tree.assign({1, 0, 1});
  EXPECT_GE(tree.capacity(), 3u);
  EXPECT_EQ(tree.total(), 2u);
  EXPECT_EQ(tree.prefix_count(2), 2u);
  tree.set(10);  // padded capacity accepts positions past the mark vector
  EXPECT_EQ(tree.total(), 3u);
}

TEST(FenwickTest, GrowthRebuildMatchesIncrementalState) {
  // Dense mark sets survive a capacity-doubling rebuild: prefix counts over
  // the old range are identical before and after growing.
  FenwickTree tree(16);
  for (std::size_t i = 0; i < 16; i += 2) tree.set(i);
  std::vector<std::size_t> before;
  for (std::size_t i = 0; i < 16; ++i) before.push_back(tree.prefix_count(i));
  tree.set(4000);  // forces several doublings at once
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(tree.prefix_count(i), before[i]);
  }
  EXPECT_EQ(tree.total(), 9u);
  EXPECT_EQ(tree.range_count(16, 4000), 1u);
}

TEST(FenwickTest, MatchesNaiveCounterUnderRandomWorkload) {
  exareq::Rng rng(77);
  FenwickTree tree(64);
  std::vector<bool> reference(4096, false);
  for (int step = 0; step < 20000; ++step) {
    const auto pos = static_cast<std::size_t>(rng.uniform_int(0, 4095));
    if (reference[pos]) {
      tree.clear(pos);
      reference[pos] = false;
    } else {
      tree.set(pos);
      reference[pos] = true;
    }
    if (step % 500 == 0) {
      const auto lo = static_cast<std::size_t>(rng.uniform_int(0, 4095));
      const auto hi = static_cast<std::size_t>(rng.uniform_int(0, 4095));
      std::size_t expected = 0;
      for (std::size_t i = std::min(lo, hi); i <= std::max(lo, hi); ++i) {
        if (reference[i]) ++expected;
      }
      ASSERT_EQ(tree.range_count(std::min(lo, hi), std::max(lo, hi)), expected);
    }
  }
}

}  // namespace
}  // namespace exareq::memtrace
