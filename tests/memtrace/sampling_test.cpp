#include "memtrace/sampling.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace exareq::memtrace {
namespace {

TEST(SamplingTest, ExactConfigSamplesEverything) {
  const SamplerConfig config = SamplerConfig::exact();
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(config.sampled(i));
  }
  EXPECT_DOUBLE_EQ(config.duty_cycle(), 1.0);
}

TEST(SamplingTest, BurstBoundaries) {
  const SamplerConfig config{4, 10, 0};
  // Positions 0..3 sampled, 4..9 not, 10..13 sampled, ...
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(config.sampled(i)) << i;
  for (std::uint64_t i = 4; i < 10; ++i) EXPECT_FALSE(config.sampled(i)) << i;
  EXPECT_TRUE(config.sampled(10));
  EXPECT_TRUE(config.sampled(13));
  EXPECT_FALSE(config.sampled(14));
}

TEST(SamplingTest, OffsetDelaysFirstBurst) {
  const SamplerConfig config{2, 8, 5};
  EXPECT_FALSE(config.sampled(0));
  EXPECT_FALSE(config.sampled(4));
  EXPECT_TRUE(config.sampled(5));
  EXPECT_TRUE(config.sampled(6));
  EXPECT_FALSE(config.sampled(7));
  EXPECT_TRUE(config.sampled(13));
}

TEST(SamplingTest, InvalidConfigThrows) {
  const SamplerConfig zero_burst{0, 10, 0};
  EXPECT_THROW(zero_burst.sampled(0), exareq::InvalidArgument);
  const SamplerConfig period_smaller{8, 4, 0};
  EXPECT_THROW(period_smaller.sampled(0), exareq::InvalidArgument);
}

TEST(SamplingTest, DutyCycle) {
  const SamplerConfig config{64, 512, 0};
  EXPECT_DOUBLE_EQ(config.duty_cycle(), 0.125);
}

TEST(SamplingTest, SampledPositionsMatchPredicate) {
  const SamplerConfig config{3, 7, 2};
  const auto positions = sampled_positions(config, 50);
  std::size_t expected = 0;
  for (std::uint64_t i = 0; i < 50; ++i) {
    if (config.sampled(i)) ++expected;
  }
  EXPECT_EQ(positions.size(), expected);
  for (std::uint64_t p : positions) {
    EXPECT_TRUE(config.sampled(p));
    EXPECT_LT(p, 50u);
  }
}

TEST(SamplingTest, SampledPositionsTruncatedBurstAtEnd) {
  const SamplerConfig config{4, 10, 8};
  const auto positions = sampled_positions(config, 10);
  // Burst starts at 8 but trace ends at 10: only positions 8, 9.
  ASSERT_EQ(positions.size(), 2u);
  EXPECT_EQ(positions[0], 8u);
  EXPECT_EQ(positions[1], 9u);
}

}  // namespace
}  // namespace exareq::memtrace
