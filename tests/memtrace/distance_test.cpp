#include "memtrace/distance.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "support/rng.hpp"

namespace exareq::memtrace {
namespace {

AccessTrace trace_of(const std::vector<std::uint64_t>& addresses) {
  AccessTrace trace;
  const GroupId g = trace.register_group("g");
  for (std::uint64_t a : addresses) trace.record(a, g);
  return trace;
}

TEST(DistanceTest, FirstAccessesAreCold) {
  const auto trace = trace_of({1, 2, 3});
  const auto distances = compute_distances(trace);
  for (const auto& d : distances) EXPECT_TRUE(d.cold);
}

TEST(DistanceTest, ImmediateReuseHasZeroDistances) {
  const auto trace = trace_of({1, 1});
  const auto distances = compute_distances(trace);
  EXPECT_FALSE(distances[1].cold);
  EXPECT_EQ(distances[1].reuse_distance, 0u);
  EXPECT_EQ(distances[1].stack_distance, 0u);
}

TEST(DistanceTest, ReuseCountsAllAccessesStackCountsUnique) {
  // Paper Fig. 1 semantics: between the two accesses to `a` lie three
  // accesses (b, b, c) to two unique locations.
  const auto trace = trace_of({0xA, 0xB, 0xB, 0xC, 0xA});
  const auto distances = compute_distances(trace);
  EXPECT_FALSE(distances[4].cold);
  EXPECT_EQ(distances[4].reuse_distance, 3u);
  EXPECT_EQ(distances[4].stack_distance, 2u);
}

TEST(DistanceTest, RepeatedReuseTracksMostRecentAccess) {
  const auto trace = trace_of({1, 2, 1, 3, 4, 1});
  const auto distances = compute_distances(trace);
  // Second access to 1 (index 2): {2} in between.
  EXPECT_EQ(distances[2].reuse_distance, 1u);
  EXPECT_EQ(distances[2].stack_distance, 1u);
  // Third access to 1 (index 5): {3, 4} in between.
  EXPECT_EQ(distances[5].reuse_distance, 2u);
  EXPECT_EQ(distances[5].stack_distance, 2u);
}

TEST(DistanceTest, StackDistanceIgnoresDuplicatesOfSameAddress) {
  const auto trace = trace_of({7, 8, 8, 8, 8, 7});
  const auto distances = compute_distances(trace);
  EXPECT_EQ(distances[5].reuse_distance, 4u);
  EXPECT_EQ(distances[5].stack_distance, 1u);
}

TEST(DistanceTest, StreamingAnalyzerMatchesBatch) {
  const auto trace = trace_of({1, 2, 3, 2, 1, 3, 3, 2, 1});
  const auto batch = compute_distances(trace);
  DistanceAnalyzer analyzer;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto d = analyzer.observe(trace.accesses()[i].address);
    EXPECT_EQ(d.cold, batch[i].cold);
    EXPECT_EQ(d.reuse_distance, batch[i].reuse_distance);
    EXPECT_EQ(d.stack_distance, batch[i].stack_distance);
  }
  EXPECT_EQ(analyzer.position(), trace.size());
  EXPECT_EQ(analyzer.distinct_addresses(), 3u);
}

// ---------------------------------------------------------------------------
// Property sweep: the Fenwick-based Olken implementation must agree with the
// quadratic reference on random traces of varying footprint and length, and
// both must satisfy the structural invariants SD <= RD and
// SD < distinct addresses.
// ---------------------------------------------------------------------------

using TraceShape = std::tuple<int, int, int>;  // (#addresses, length, seed)

std::string trace_shape_name(const ::testing::TestParamInfo<TraceShape>& info) {
  return "a" + std::to_string(std::get<0>(info.param)) + "_t" +
         std::to_string(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

class DistancePropertyTest : public ::testing::TestWithParam<TraceShape> {};

TEST_P(DistancePropertyTest, OlkenMatchesReferenceAndInvariantsHold) {
  const int address_count = std::get<0>(GetParam());
  const int length = std::get<1>(GetParam());
  const int seed = std::get<2>(GetParam());

  exareq::Rng rng(static_cast<std::uint64_t>(seed));
  std::vector<std::uint64_t> addresses;
  addresses.reserve(static_cast<std::size_t>(length));
  for (int i = 0; i < length; ++i) {
    addresses.push_back(
        static_cast<std::uint64_t>(rng.uniform_int(0, address_count - 1)));
  }
  const auto trace = trace_of(addresses);

  const auto fast = compute_distances(trace);
  const auto reference = compute_distances_reference(trace);
  ASSERT_EQ(fast.size(), reference.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    ASSERT_EQ(fast[i].cold, reference[i].cold) << "at " << i;
    ASSERT_EQ(fast[i].reuse_distance, reference[i].reuse_distance) << "at " << i;
    ASSERT_EQ(fast[i].stack_distance, reference[i].stack_distance) << "at " << i;
    if (!fast[i].cold) {
      EXPECT_LE(fast[i].stack_distance, fast[i].reuse_distance);
      EXPECT_LT(fast[i].stack_distance,
                static_cast<std::uint64_t>(address_count));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTraces, DistancePropertyTest,
                         ::testing::Values(TraceShape{2, 100, 1},
                                           TraceShape{8, 500, 2},
                                           TraceShape{32, 1000, 3},
                                           TraceShape{256, 2000, 4},
                                           TraceShape{1000, 3000, 5},
                                           TraceShape{4, 2000, 6}),
                         trace_shape_name);

TEST(DistanceTest, SequentialScanHasAllColdAccesses) {
  std::vector<std::uint64_t> addresses(1000);
  for (std::size_t i = 0; i < addresses.size(); ++i) addresses[i] = i;
  const auto distances = compute_distances(trace_of(addresses));
  for (const auto& d : distances) EXPECT_TRUE(d.cold);
}

TEST(DistanceTest, CyclicScanHasFullStackDistance) {
  // Scanning k addresses cyclically: every non-cold access has SD = RD =
  // k - 1 (all other addresses touched exactly once in between).
  constexpr std::uint64_t k = 17;
  std::vector<std::uint64_t> addresses;
  for (int round = 0; round < 5; ++round) {
    for (std::uint64_t a = 0; a < k; ++a) addresses.push_back(a);
  }
  const auto distances = compute_distances(trace_of(addresses));
  for (std::size_t i = k; i < distances.size(); ++i) {
    EXPECT_FALSE(distances[i].cold);
    EXPECT_EQ(distances[i].stack_distance, k - 1);
    EXPECT_EQ(distances[i].reuse_distance, k - 1);
  }
}

}  // namespace
}  // namespace exareq::memtrace
