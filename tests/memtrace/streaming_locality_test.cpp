#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "memtrace/distance.hpp"
#include "memtrace/locality.hpp"
#include "memtrace/sampling.hpp"
#include "memtrace/trace.hpp"
#include "support/rng.hpp"

namespace exareq::memtrace {
namespace {

// Sampler configurations exercised by the property tests: exact mode, the
// production default, and two odd-phase bursts.
std::vector<SamplerConfig> sampler_configs() {
  return {SamplerConfig::exact(), SamplerConfig{64, 512, 0},
          SamplerConfig{16, 256, 8}, SamplerConfig{1, 7, 3}};
}

// A synthetic three-group trace mixing a small hot set, a strided sweep,
// and random far accesses — enough address diversity to exercise marks,
// clears, and compaction.
AccessTrace synthetic_trace(std::size_t length, std::uint64_t seed) {
  AccessTrace trace;
  const GroupId hot = trace.register_group("hot");
  const GroupId sweep = trace.register_group("sweep");
  const GroupId random = trace.register_group("random");
  exareq::Rng rng(seed);
  std::uint64_t stride = 0;
  for (std::size_t i = 0; i < length; ++i) {
    switch (rng.uniform_int(0, 3)) {
      case 0:
        trace.record(0x10 + static_cast<std::uint64_t>(rng.uniform_int(0, 7)),
                     hot);
        break;
      case 1:
        trace.record(0x1000 + (stride++ % 400), sweep);
        break;
      default:
        trace.record(
            0x100000 + static_cast<std::uint64_t>(rng.uniform_int(0, 5000)),
            random);
        break;
    }
  }
  return trace;
}

void expect_reports_equal(const LocalityReport& a, const LocalityReport& b) {
  EXPECT_EQ(a.trace_length, b.trace_length);
  EXPECT_EQ(a.total_sampled, b.total_sampled);
  EXPECT_EQ(a.weighted_median_stack_distance,
            b.weighted_median_stack_distance);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].name, b.groups[g].name);
    EXPECT_EQ(a.groups[g].samples, b.groups[g].samples);
    EXPECT_EQ(a.groups[g].sampled_accesses, b.groups[g].sampled_accesses);
    EXPECT_EQ(a.groups[g].median_stack_distance,
              b.groups[g].median_stack_distance);
    EXPECT_EQ(a.groups[g].median_reuse_distance,
              b.groups[g].median_reuse_distance);
    EXPECT_EQ(a.groups[g].stack_distance_mad, b.groups[g].stack_distance_mad);
    EXPECT_EQ(a.groups[g].estimated_accesses, b.groups[g].estimated_accesses);
    EXPECT_EQ(a.groups[g].reliable, b.groups[g].reliable);
  }
}

TEST(StreamingLocalityTest, StreamedReportEqualsMaterializedReport) {
  const AccessTrace trace = synthetic_trace(20000, 11);
  for (const SamplerConfig& sampler : sampler_configs()) {
    LocalityConfig config;
    config.sampler = sampler;
    // Streamed: feed the sink directly, no materialized trace involved.
    LocalityAnalyzer analyzer(config);
    trace.replay(analyzer);
    const LocalityReport streamed =
        analyzer.finish(static_cast<double>(trace.size()));
    const LocalityReport materialized =
        analyze_locality(trace, config, static_cast<double>(trace.size()));
    expect_reports_equal(streamed, materialized);
  }
}

TEST(StreamingLocalityTest, BurstAwareDistancesMatchReferenceAtSampledPositions) {
  const AccessTrace trace = synthetic_trace(4000, 23);
  const std::vector<AccessDistances> reference =
      compute_distances_reference(trace);
  for (const SamplerConfig& sampler : sampler_configs()) {
    DistanceAnalyzer analyzer;
    const auto accesses = trace.accesses();
    for (std::size_t i = 0; i < accesses.size(); ++i) {
      const bool sampled = sampler.sampled(i);
      const AccessDistances got = analyzer.observe(accesses[i].address, sampled);
      EXPECT_EQ(got.cold, reference[i].cold);
      if (!got.cold) {
        EXPECT_EQ(got.reuse_distance, reference[i].reuse_distance);
        if (sampled) {
          ASSERT_EQ(got.stack_distance, reference[i].stack_distance)
              << "position " << i;
        }
      }
    }
  }
}

TEST(StreamingLocalityTest, CompactionKeepsDistancesExact) {
  // A tiny initial capacity forces many compaction cycles over a stream far
  // longer than the address footprint.
  const AccessTrace trace = synthetic_trace(30000, 47);
  const std::vector<AccessDistances> olken = compute_distances(trace);
  DistanceAnalyzer analyzer(16);
  const auto accesses = trace.accesses();
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    const AccessDistances got = analyzer.observe(accesses[i].address);
    ASSERT_EQ(got.cold, olken[i].cold);
    ASSERT_EQ(got.reuse_distance, olken[i].reuse_distance);
    ASSERT_EQ(got.stack_distance, olken[i].stack_distance) << "position " << i;
  }
}

TEST(StreamingLocalityTest, DistanceStateIsIndependentOfStreamLength) {
  // A fixed 8-address footprint over ever longer streams: the distance
  // analyzer's memory (marks + last-access map) must stay flat — the stream
  // position advances but compaction keeps the mark space bounded.
  const auto run = [](std::size_t length) {
    DistanceAnalyzer analyzer(16);
    for (std::size_t i = 0; i < length; ++i) {
      analyzer.observe(0x10 + (i % 8));
    }
    return analyzer.memory_bytes();
  };
  const std::size_t short_bytes = run(10000);
  const std::size_t long_bytes = run(1000000);
  EXPECT_EQ(short_bytes, long_bytes);
}

TEST(StreamingLocalityTest, StreamingUsesFarLessMemoryThanMaterializing) {
  // Same stream, both paths: the streaming analyzer keeps distance state
  // plus gathered samples (duty cycle ~1/8), the materialized path stores
  // every access on top of that.
  LocalityConfig config;
  config.sampler = SamplerConfig{64, 512, 0};
  LocalityAnalyzer streamed(config);
  AccessTrace trace;
  const GroupId gs = streamed.register_group("g");
  const GroupId gt = trace.register_group("g");
  for (std::size_t i = 0; i < 1000000; ++i) {
    streamed.record(0x10 + (i % 8), gs);
    trace.record(0x10 + (i % 8), gt);
  }
  EXPECT_LT(streamed.memory_bytes(), trace.memory_bytes() / 4);
}

TEST(StreamingLocalityTest, ReplayReproducesGroupsAndAccesses) {
  const AccessTrace trace = synthetic_trace(500, 3);
  AccessTrace copy;
  trace.replay(copy);
  ASSERT_EQ(copy.size(), trace.size());
  ASSERT_EQ(copy.group_count(), trace.group_count());
  for (std::size_t g = 0; g < trace.group_count(); ++g) {
    EXPECT_EQ(copy.group_name(static_cast<GroupId>(g)),
              trace.group_name(static_cast<GroupId>(g)));
  }
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(copy.accesses()[i].address, trace.accesses()[i].address);
    EXPECT_EQ(copy.accesses()[i].group, trace.accesses()[i].group);
  }
}

}  // namespace
}  // namespace exareq::memtrace
