#include "memtrace/cache_model.hpp"

#include <gtest/gtest.h>

#include "memtrace/mmm.hpp"
#include "support/error.hpp"

namespace exareq::memtrace {
namespace {

LocalityConfig exact_config() {
  LocalityConfig config;
  config.sampler = SamplerConfig::exact();
  return config;
}

AccessTrace cyclic_trace(std::uint64_t footprint, int rounds) {
  AccessTrace trace;
  const GroupId g = trace.register_group("cycle");
  for (int r = 0; r < rounds; ++r) {
    for (std::uint64_t a = 0; a < footprint; ++a) trace.record(a, g);
  }
  return trace;
}

TEST(CacheModelTest, CyclicScanMissesBelowFootprintHitsAbove) {
  // Cyclic scan over 16 addresses: every non-cold access has SD = 15.
  // An LRU cache of >= 16 locations holds the working set; anything
  // smaller thrashes completely (the classic LRU cliff).
  const AccessTrace trace = cyclic_trace(16, 50);
  const std::uint64_t capacities[] = {4, 15, 16, 64};
  const MissProfile profile =
      predict_miss_ratios(trace, exact_config(), capacities);
  ASSERT_EQ(profile.total_miss_ratio.size(), 4u);
  EXPECT_NEAR(profile.total_miss_ratio[0], 1.0, 1e-12);  // 4 < 16: thrash
  EXPECT_NEAR(profile.total_miss_ratio[1], 1.0, 1e-12);  // 15 < 16: thrash
  // Capacity 16: only the 16 cold accesses miss.
  EXPECT_NEAR(profile.total_miss_ratio[2], 16.0 / 800.0, 1e-12);
  EXPECT_NEAR(profile.total_miss_ratio[3], 16.0 / 800.0, 1e-12);
}

TEST(CacheModelTest, ColdAccessesAlwaysMiss) {
  // Streaming trace: every access cold -> 100% misses at any capacity.
  AccessTrace trace;
  const GroupId g = trace.register_group("stream");
  for (std::uint64_t a = 0; a < 500; ++a) trace.record(a, g);
  const std::uint64_t capacities[] = {1, 1000000};
  const MissProfile profile =
      predict_miss_ratios(trace, exact_config(), capacities);
  EXPECT_DOUBLE_EQ(profile.total_miss_ratio[0], 1.0);
  EXPECT_DOUBLE_EQ(profile.total_miss_ratio[1], 1.0);
}

TEST(CacheModelTest, MissRatioIsMonotoneInCapacity) {
  const auto a = make_matrix(16, 1.0f);
  const auto b = make_matrix(16, 2.0f);
  const auto result = traced_mmm_naive(a, b, 16);
  const std::uint64_t capacities[] = {8, 32, 128, 512, 2048};
  const MissProfile profile =
      predict_miss_ratios(result.trace, exact_config(), capacities);
  for (std::size_t c = 1; c < profile.capacities.size(); ++c) {
    EXPECT_LE(profile.total_miss_ratio[c], profile.total_miss_ratio[c - 1]);
    for (const auto& group : profile.groups) {
      EXPECT_LE(group.miss_ratio[c], group.miss_ratio[c - 1]);
    }
  }
}

TEST(CacheModelTest, NaiveMmmBMissesBeforeA) {
  // Paper Sec. II-D: as the cache shrinks relative to the problem, B's
  // accesses miss first because SD(B) ~ n^2 >> SD(A) ~ 2n.
  const std::size_t n = 24;
  const auto a = make_matrix(n, 1.0f);
  const auto b = make_matrix(n, 2.0f);
  const auto result = traced_mmm_naive(a, b, n);
  // A capacity between 2n and n^2 holds A's working set but not B's.
  const std::uint64_t capacities[] = {4 * n};
  const MissProfile profile =
      predict_miss_ratios(result.trace, exact_config(), capacities);
  const double miss_a = profile.groups[result.group_a].miss_ratio[0];
  const double miss_b = profile.groups[result.group_b].miss_ratio[0];
  EXPECT_LT(miss_a, 0.1);
  EXPECT_GT(miss_b, 0.9);
}

TEST(CacheModelTest, BlockedMmmBeatsNaiveAtEqualCapacity) {
  // A cache of 64 locations holds the blocked working set (2b^2 + b = 36 at
  // b = 4) but not the naive one. The blocked kernel still pays the
  // inherent O(n^3 / b) tile-reload misses, so the right expectations are
  // relative: far fewer misses than naive, independent of n.
  const std::uint64_t capacities[] = {64};
  double naive_ratio[2];
  double blocked_ratio[2];
  int index = 0;
  for (const std::size_t n : {16, 32}) {
    const auto a = make_matrix(n, 1.0f);
    const auto b = make_matrix(n, 2.0f);
    const auto naive = predict_miss_ratios(traced_mmm_naive(a, b, n).trace,
                                           exact_config(), capacities);
    const auto blocked = predict_miss_ratios(
        traced_mmm_blocked(a, b, n, 4).trace, exact_config(), capacities);
    naive_ratio[index] = naive.total_miss_ratio[0];
    blocked_ratio[index] = blocked.total_miss_ratio[0];
    ++index;
  }
  EXPECT_LT(blocked_ratio[0], naive_ratio[0] / 2.0);
  EXPECT_LT(blocked_ratio[1], naive_ratio[1] / 2.0);
  // Blocked miss ratio does not grow with n (locality-preserving).
  EXPECT_NEAR(blocked_ratio[1], blocked_ratio[0], 0.05);
}

TEST(CacheModelTest, CapacityForMissRatio) {
  const AccessTrace trace = cyclic_trace(16, 50);
  const std::uint64_t capacities[] = {4, 8, 16, 32};
  const MissProfile profile =
      predict_miss_ratios(trace, exact_config(), capacities);
  EXPECT_EQ(capacity_for_miss_ratio(profile, 0.05), 16u);
  EXPECT_EQ(capacity_for_miss_ratio(profile, 0.0001), UINT64_MAX);
}

TEST(CacheModelTest, BurstSamplingApproximatesExactRatios) {
  const std::size_t n = 24;
  const auto a = make_matrix(n, 1.0f);
  const auto b = make_matrix(n, 2.0f);
  const auto result = traced_mmm_naive(a, b, n);
  const std::uint64_t capacities[] = {4 * n};
  LocalityConfig burst;
  burst.sampler = SamplerConfig{64, 512, 0};
  const MissProfile exact =
      predict_miss_ratios(result.trace, exact_config(), capacities);
  const MissProfile sampled =
      predict_miss_ratios(result.trace, burst, capacities);
  EXPECT_NEAR(sampled.total_miss_ratio[0], exact.total_miss_ratio[0], 0.05);
}

TEST(CacheModelTest, ValidatesArguments) {
  const AccessTrace trace = cyclic_trace(4, 2);
  const std::uint64_t decreasing[] = {8, 4};
  EXPECT_THROW(predict_miss_ratios(trace, exact_config(), decreasing),
               exareq::InvalidArgument);
  EXPECT_THROW(
      predict_miss_ratios(trace, exact_config(), std::span<const std::uint64_t>{}),
      exareq::InvalidArgument);
  const std::uint64_t one[] = {4};
  const MissProfile profile = predict_miss_ratios(trace, exact_config(), one);
  EXPECT_THROW(capacity_for_miss_ratio(profile, 1.5), exareq::InvalidArgument);
}

}  // namespace
}  // namespace exareq::memtrace
