#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <vector>

#include "cli/cli.hpp"
#include "codesign/requirements.hpp"
#include "obs/metrics.hpp"
#include "model/serialize.hpp"
#include "serve/socket_server.hpp"
#include "serve_test_util.hpp"
#include "support/error.hpp"

namespace exareq::serve {
namespace {

using testing::make_test_requirements;

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.rfind(prefix, 0) == 0;
}

ModelRegistry& preloaded_registry(ModelRegistry& registry) {
  registry.insert(make_test_requirements("alpha"));
  registry.insert(make_test_requirements("beta"));
  return registry;
}

TEST(ServeServerTest, AnswersAreBitIdenticalToDirectLibraryCalls) {
  ModelRegistry registry;
  preloaded_registry(registry);
  Server server(registry, {.workers = 2});

  const codesign::AppRequirements direct = make_test_requirements("alpha");
  EXPECT_EQ(server.handle("eval alpha flops 64 1024"),
            "ok eval " + render_value(direct.flops.evaluate2(64.0, 1024.0)));
  EXPECT_EQ(server.handle("eval alpha stack_distance 1 777"),
            "ok eval " + render_value(direct.stack_distance.evaluate1(777.0)));

  const codesign::FilledSystem filled =
      codesign::fill_memory(direct, {4096.0, 2.0e9});
  EXPECT_EQ(server.handle("invert alpha 4096 2e9"),
            "ok invert " + render_value(filled.problem_size_per_process) + ' ' +
                render_value(filled.overall_problem_size));
}

TEST(ServeServerTest, ConcurrentMixedWorkloadMatchesUncachedEngine) {
  ModelRegistry registry;
  preloaded_registry(registry);

  std::vector<std::string> lines;
  for (const char* app : {"alpha", "beta"}) {
    for (const char* metric :
         {"footprint", "flops", "comm_bytes", "loads_stores"}) {
      for (int p : {4, 16, 64}) {
        lines.push_back(std::string("eval ") + app + ' ' + metric + ' ' +
                        std::to_string(p) + " 512");
      }
    }
    lines.push_back(std::string("invert ") + app + " 1024 1e9");
    lines.push_back(std::string("upgrade ") + app + " 1024 1e9");
    lines.push_back(std::string("strawman ") + app);
  }
  // Duplicates exercise the cache under concurrency.
  const std::vector<std::string> first_round = lines;
  lines.insert(lines.end(), first_round.begin(), first_round.end());

  // Reference answers from an uncached engine, computed serially.
  QueryEngine reference(registry);
  std::vector<std::string> expected;
  expected.reserve(lines.size());
  for (const std::string& line : lines) {
    expected.push_back(reference.answer_line(line));
  }

  Server server(registry, {.workers = 4, .queue_capacity = 1024});
  std::vector<std::future<std::string>> responses;
  responses.reserve(lines.size());
  for (const std::string& line : lines) {
    responses.push_back(server.submit(line));
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(responses[i].get(), expected[i]) << lines[i];
  }

  const MetricsSnapshot snapshot = server.metrics();
  EXPECT_EQ(snapshot.requests, lines.size());
  EXPECT_EQ(snapshot.responses_ok, lines.size());
  EXPECT_EQ(snapshot.responses_error, 0u);
  EXPECT_EQ(snapshot.sheds, 0u);
  EXPECT_EQ(snapshot.cache_hits + snapshot.cache_misses, lines.size());
  // Each unique request misses at most once (single worker interleavings can
  // make two workers miss the same key before the first insert lands, but
  // every second copy submitted after the first resolved is bounded by it).
  EXPECT_GE(snapshot.cache_hits, 1u);
}

// Acceptance criterion: a cache hit on a repeated query skips the fit path,
// verified via the metrics counters.
TEST(ServeServerTest, RepeatedQueryHitsCacheAndSkipsFitPath) {
  std::atomic<int> fit_calls{0};
  ModelRegistry registry([&](const std::string& name) {
    fit_calls.fetch_add(1);
    return make_test_requirements(name);
  });
  Server server(registry, {.workers = 2});

  const std::string first = server.handle("eval ondemand flops 8 64");
  ASSERT_TRUE(starts_with(first, "ok eval ")) << first;
  EXPECT_EQ(fit_calls.load(), 1);
  const MetricsSnapshot after_first = server.metrics();
  EXPECT_EQ(after_first.cache_misses, 1u);
  EXPECT_EQ(after_first.fits_started, 1u);
  const std::uint64_t lookups_after_first = after_first.registry_lookups;

  // Same query, different but canonically equal spelling.
  const std::string second = server.handle("eval ONDEMAND flops 8.0 6.4e1");
  EXPECT_EQ(second, first);
  const MetricsSnapshot after_second = server.metrics();
  EXPECT_EQ(after_second.cache_hits, 1u);
  EXPECT_EQ(after_second.cache_misses, 1u);
  EXPECT_EQ(after_second.fits_started, 1u);      // no second fit
  EXPECT_EQ(fit_calls.load(), 1);                // fitter not re-entered
  EXPECT_EQ(after_second.registry_lookups,       // registry not even consulted
            lookups_after_first);
  EXPECT_GT(after_second.cache_hit_rate(), 0.0);
}

// Acceptance criterion: a full admission queue sheds load with an explicit
// error response instead of blocking.
TEST(ServeServerTest, FullQueueShedsWithExplicitError) {
  std::atomic<bool> fitting{false};
  std::promise<void> gate;
  std::shared_future<void> released = gate.get_future().share();
  ModelRegistry registry([&](const std::string& name) {
    fitting.store(true);
    released.wait();
    return make_test_requirements(name);
  });
  preloaded_registry(registry);

  Server server(registry, {.workers = 1, .queue_capacity = 2});
  // Occupy the single worker with a slow fit.
  std::future<std::string> slow = server.submit("eval gated flops 4 32");
  while (!fitting.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Fill the admission queue behind it.
  std::future<std::string> queued1 = server.submit("eval alpha flops 4 32");
  std::future<std::string> queued2 = server.submit("eval alpha flops 4 64");

  // The queue is full: further submissions must resolve immediately.
  std::future<std::string> shed = server.submit("eval alpha flops 4 128");
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);  // no blocking
  const std::string response = shed.get();
  EXPECT_TRUE(starts_with(response, "error shed")) << response;
  EXPECT_NE(response.find("queue full"), std::string::npos) << response;
  EXPECT_EQ(server.metrics().sheds, 1u);

  gate.set_value();
  EXPECT_TRUE(starts_with(slow.get(), "ok eval "));
  EXPECT_TRUE(starts_with(queued1.get(), "ok eval "));
  EXPECT_TRUE(starts_with(queued2.get(), "ok eval "));
  const MetricsSnapshot snapshot = server.metrics();
  EXPECT_EQ(snapshot.requests, 4u);
  EXPECT_EQ(snapshot.responses_ok, 3u);
}

TEST(ServeServerTest, ExpiredDeadlineDropsQueuedRequest) {
  std::atomic<bool> fitting{false};
  std::promise<void> gate;
  std::shared_future<void> released = gate.get_future().share();
  ModelRegistry registry([&](const std::string& name) {
    fitting.store(true);
    released.wait();
    return make_test_requirements(name);
  });
  preloaded_registry(registry);

  Server server(registry,
                {.workers = 1, .deadline = std::chrono::milliseconds(5)});
  std::future<std::string> slow = server.submit("eval gated flops 4 32");
  while (!fitting.load()) {
    // Slow worker start-up (e.g. under TSan) can expire the gated request's
    // own deadline before the fit begins; resubmit until the fitter engages.
    if (slow.wait_for(std::chrono::milliseconds(0)) ==
        std::future_status::ready) {
      EXPECT_TRUE(starts_with(slow.get(), "error deadline"));
      slow = server.submit("eval gated flops 4 32");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::future<std::string> stale = server.submit("eval alpha flops 4 32");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.set_value();

  // The stale request waited behind the fit, past its deadline.
  const std::string response = stale.get();
  EXPECT_TRUE(starts_with(response, "error deadline")) << response;
  EXPECT_TRUE(starts_with(slow.get(), "ok eval "));
  EXPECT_GE(server.metrics().deadline_drops, 1u);
}

TEST(ServeServerTest, MalformedLinesAreErrorsNotCrashes) {
  ModelRegistry registry;
  preloaded_registry(registry);
  Server server(registry, {.workers = 1});
  EXPECT_TRUE(starts_with(server.handle("frobnicate"), "error bad-request"));
  EXPECT_TRUE(starts_with(server.handle("eval alpha watts 4 32"),
                          "error bad-request"));
  // Unknown app, no fitter configured.
  EXPECT_TRUE(starts_with(server.handle("eval nosuch flops 4 32"),
                          "error bad-request"));
  EXPECT_EQ(server.metrics().responses_error, 3u);
}

TEST(ServeServerTest, StatusRequestAndReportExposeCounters) {
  ModelRegistry registry;
  preloaded_registry(registry);
  Server server(registry, {.workers = 2});
  EXPECT_TRUE(starts_with(server.handle("eval alpha flops 4 32"), "ok eval"));

  const std::string status = server.handle("status");
  EXPECT_TRUE(starts_with(status, "ok status ")) << status;
  EXPECT_NE(status.find("requests="), std::string::npos);
  EXPECT_NE(status.find("cache_misses=1"), std::string::npos) << status;
  EXPECT_NE(status.find("apps=2"), std::string::npos) << status;
  EXPECT_NE(status.find("mean_us="), std::string::npos) << status;

  const std::string report = server.status_report();
  for (const char* needle : {"requests", "cache", "registry", "p99 latency",
                             "mean latency", "hit rate"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
  }
  EXPECT_GT(server.metrics().mean_latency_us, 0.0);
}

TEST(ServeServerTest, StopDrainsAdmittedRequestsAndRejectsNewOnes) {
  ModelRegistry registry;
  preloaded_registry(registry);
  Server server(registry, {.workers = 2});
  std::vector<std::future<std::string>> admitted;
  for (int i = 0; i < 16; ++i) {
    admitted.push_back(
        server.submit("eval alpha flops 4 " + std::to_string(32 + i)));
  }
  const std::uint64_t published_before =
      obs::MetricRegistry::instance().counter("serve.requests").value();
  server.stop();
  for (auto& response : admitted) {
    EXPECT_TRUE(starts_with(response.get(), "ok eval "));
  }
  const std::string rejected = server.handle("eval alpha flops 4 32");
  EXPECT_TRUE(starts_with(rejected, "error shutdown")) << rejected;

  // stop() publishes this server's totals into the process-global registry
  // exactly once (the destructor's stop() must not double-count).
  auto& registry_metrics = obs::MetricRegistry::instance();
  EXPECT_EQ(registry_metrics.counter("serve.requests").value(),
            published_before + 16);
  server.stop();
  EXPECT_EQ(registry_metrics.counter("serve.requests").value(),
            published_before + 16);
  EXPECT_GE(registry_metrics.histogram("serve.latency_us").count(), 16u);
}

std::string unique_socket_path(const std::string& stem) {
  return "/tmp/exareq_serve_" + stem + "_" + std::to_string(::getpid()) +
         ".sock";
}

TEST(ServeSocketTest, RoundTripsRequestsOverUnixSocket) {
  ModelRegistry registry;
  preloaded_registry(registry);
  Server server(registry, {.workers = 2});
  SocketServer socket_server(server, unique_socket_path("roundtrip"));
  socket_server.start();

  const codesign::AppRequirements direct = make_test_requirements("alpha");
  EXPECT_EQ(
      query_over_socket(socket_server.path(), "eval alpha flops 64 1024"),
      "ok eval " + render_value(direct.flops.evaluate2(64.0, 1024.0)));
  EXPECT_TRUE(starts_with(query_over_socket(socket_server.path(), "garbage"),
                          "error bad-request"));
  socket_server.stop();
  EXPECT_THROW(query_over_socket(socket_server.path(), "status"),
               exareq::Error);
}

TEST(ServeSocketTest, ServesManyConcurrentClients) {
  ModelRegistry registry;
  preloaded_registry(registry);
  Server server(registry, {.workers = 4, .queue_capacity = 1024});
  SocketServer socket_server(server, unique_socket_path("concurrent"));
  socket_server.start();

  QueryEngine reference(registry);
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 16;
  std::vector<std::future<int>> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::async(std::launch::async, [&, c] {
      int mismatches = 0;
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const std::string line = "eval " + std::string(c % 2 ? "alpha" : "beta") +
                                 " flops " + std::to_string(4 << (c % 3)) + ' ' +
                                 std::to_string(32 + i);
        if (query_over_socket(socket_server.path(), line) !=
            reference.answer_line(line)) {
          ++mismatches;
        }
      }
      return mismatches;
    }));
  }
  for (auto& client : clients) {
    EXPECT_EQ(client.get(), 0);
  }
  EXPECT_EQ(server.metrics().responses_ok,
            static_cast<std::uint64_t>(kClients) * kRequestsPerClient);
  socket_server.stop();
}

// End-to-end: fit models through the one-shot CLI, persist them with
// --models-out, load the bundle into a registry, and check that served
// answers are bit-identical to evaluating the parsed models directly.
TEST(ServeCliIntegrationTest, ServedAnswersMatchOneShotCliModels) {
  const std::string path = "/tmp/exareq_serve_cli_models_" +
                           std::to_string(::getpid()) + ".models";
  std::ostringstream out, err;
  const int code = cli::run_cli(
      {"model", "LULESH", "--processes", "2,4,8,16,32", "--sizes",
       "16,32,64,128,256", "--models-out", path},
      out, err);
  ASSERT_EQ(code, 0) << err.str();

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream content;
  content << file.rdbuf();
  const model::ModelBundle bundle = model::parse_bundle(content.str());

  ModelRegistry registry;
  EXPECT_EQ(registry.load_file(path), bundle.name);
  Server server(registry, {.workers = 2});
  for (const auto& [label, model] : bundle.models) {
    for (const double p : {8.0, 1e6}) {
      for (const double n : {128.0, 1e9}) {
        const double direct = label == "stack_distance" ? model.evaluate1(n)
                                                        : model.evaluate2(p, n);
        EXPECT_EQ(server.handle("eval " + bundle.name + ' ' + label + ' ' +
                                render_value(p) + ' ' + render_value(n)),
                  "ok eval " + render_value(direct))
            << label;
      }
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace exareq::serve
