// Shared helpers for the serve test suite: deterministic synthetic
// requirement bundles that are cheap to build (no measuring, no fitting)
// yet exercise every query kind, including footprint inversion.
#pragma once

#include <string>

#include "codesign/requirements.hpp"
#include "model/basis.hpp"
#include "model/model.hpp"

namespace exareq::serve::testing {

/// footprint = 1024 + 8 n   (monotone in n, so inversion works)
/// flops     = 100 + 4 n^2
/// comm      = 64 n log2(p)
/// loads     = 50 + 10 n
/// stack     = 10 + 5 n
inline codesign::AppRequirements make_test_requirements(
    const std::string& name) {
  using model::Model;
  using model::Term;
  using model::pmnf_factor;
  codesign::AppRequirements app;
  app.name = name;
  app.footprint =
      Model({"p", "n"}, 1024.0, {Term{8.0, {pmnf_factor(1, 1.0, 0.0)}}});
  app.flops =
      Model({"p", "n"}, 100.0, {Term{4.0, {pmnf_factor(1, 2.0, 0.0)}}});
  app.comm_bytes = Model(
      {"p", "n"}, 0.0,
      {Term{64.0, {pmnf_factor(0, 0.0, 1.0), pmnf_factor(1, 1.0, 0.0)}}});
  app.loads_stores =
      Model({"p", "n"}, 50.0, {Term{10.0, {pmnf_factor(1, 1.0, 0.0)}}});
  app.stack_distance =
      Model({"n"}, 10.0, {Term{5.0, {pmnf_factor(0, 1.0, 0.0)}}});
  app.validate();
  return app;
}

}  // namespace exareq::serve::testing
