#include "serve/binary_protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "support/error.hpp"

namespace binary = exareq::serve::binary;
using exareq::InvalidArgument;
using exareq::serve::Request;
using exareq::serve::RequestKind;

namespace {

Request eval_request(const std::string& app, const std::string& metric,
                     double p, double n) {
  Request request;
  request.kind = RequestKind::kEval;
  request.app = app;
  request.metric = metric;
  request.p = p;
  request.n = n;
  return request;
}

Request invert_request(double processes, double memory) {
  Request request;
  request.kind = RequestKind::kInvert;
  request.app = "lulesh";
  request.processes = processes;
  request.memory_per_process = memory;
  return request;
}

std::vector<Request> sample_batch() {
  std::vector<Request> batch;
  batch.push_back(eval_request("lulesh", "flops", 64.0, 1.0e6));
  batch.push_back(eval_request("HPCG", "stack_distance", 1.0, 1048576.0));
  batch.push_back(invert_request(4096.0, 2.5e9));
  Request upgrade = invert_request(512.0, 0.125);
  upgrade.kind = RequestKind::kUpgrade;
  batch.push_back(upgrade);
  Request strawman;
  strawman.kind = RequestKind::kStrawman;
  strawman.app = "amg";
  batch.push_back(strawman);
  Request status;
  status.kind = RequestKind::kStatus;
  batch.push_back(status);
  Request ingest;
  ingest.kind = RequestKind::kIngest;
  ingest.app = "relearn";
  ingest.payload = "p,n,footprint;64,100,123.5;128,100,130.25";
  batch.push_back(ingest);
  return batch;
}

std::string message_of(const std::function<void()>& thrower) {
  try {
    thrower();
  } catch (const InvalidArgument& error) {
    return error.what();
  }
  ADD_FAILURE() << "expected InvalidArgument";
  return {};
}

}  // namespace

TEST(BinaryProtocolTest, MagicBytesDoNotCollideWithTextVerbs) {
  EXPECT_TRUE(binary::is_binary_frame_start(binary::kRequestMagic));
  EXPECT_TRUE(binary::is_binary_frame_start(binary::kResponseMagic));
  for (const char verb_start : {'e', 'i', 'u', 's', ' ', '\t'}) {
    EXPECT_FALSE(
        binary::is_binary_frame_start(static_cast<unsigned char>(verb_start)))
        << "text protocol byte " << verb_start;
  }
}

TEST(BinaryProtocolTest, RequestRoundTripPreservesEveryField) {
  const std::vector<Request> batch = sample_batch();
  const std::string frame = binary::encode_request_frame(batch);
  const std::vector<binary::RequestView> views =
      binary::decode_request_frame(frame);
  ASSERT_EQ(views.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Request back = views[i].materialize();
    EXPECT_EQ(back.kind, batch[i].kind) << "record " << i;
    EXPECT_EQ(back.app, batch[i].app) << "record " << i;
    EXPECT_EQ(back.payload, batch[i].payload) << "record " << i;
    EXPECT_EQ(back.metric, batch[i].metric) << "record " << i;
    // Doubles travel as their exact bit pattern, not a decimal rendering.
    EXPECT_EQ(back.p, batch[i].p) << "record " << i;
    EXPECT_EQ(back.n, batch[i].n) << "record " << i;
    EXPECT_EQ(back.processes, batch[i].processes) << "record " << i;
    EXPECT_EQ(back.memory_per_process, batch[i].memory_per_process)
        << "record " << i;
  }
}

TEST(BinaryProtocolTest, DoublesSurviveBitExactly) {
  const double awkward[] = {0.1, 1.0 / 3.0, 6.02214076e23,
                            std::nextafter(1.0, 2.0),
                            std::numeric_limits<double>::max()};
  for (const double value : awkward) {
    const std::string frame = binary::encode_request_frame(
        {eval_request("app", "footprint", value >= 1.0 ? value : 1.0, value >= 1.0 ? value : 1.0)});
    const auto views = binary::decode_request_frame(frame);
    ASSERT_EQ(views.size(), 1u);
    const double sent = value >= 1.0 ? value : 1.0;
    EXPECT_EQ(views[0].p, sent);
    EXPECT_EQ(views[0].n, sent);
  }
}

TEST(BinaryProtocolTest, DecodedViewsAliasTheFrameBuffer) {
  const std::string frame =
      binary::encode_request_frame({eval_request("lulesh", "flops", 2, 3)});
  const auto views = binary::decode_request_frame(frame);
  ASSERT_EQ(views.size(), 1u);
  const char* begin = frame.data();
  const char* end = frame.data() + frame.size();
  EXPECT_GE(views[0].app.data(), begin);
  EXPECT_LE(views[0].app.data() + views[0].app.size(), end);
}

TEST(BinaryProtocolTest, ResponseRoundTrip) {
  const std::vector<std::string> lines = {
      "ok eval 123.45000000000000284",
      "error numeric: requirement not reachable",
      "",  // empty line survives (length-prefixed, not newline-framed)
      std::string(100000, 'x'),
  };
  const std::string frame = binary::encode_response_frame(lines);
  EXPECT_EQ(binary::decode_response_frame(frame), lines);
}

TEST(BinaryProtocolTest, MaterializeMatchesTextParserValidationMessages) {
  // The binary decoder and the text parser must reject a bad request with
  // byte-identical messages, so clients see one protocol semantics.
  const struct {
    Request request;
    std::string line;
  } cases[] = {
      {eval_request("app", "flops", 0.5, 10.0), "eval app flops 0.5 10"},
      {invert_request(0.0, 1.0e9), "invert lulesh 0 1e9"},
      {invert_request(64.0, 0.0), "invert lulesh 64 0"},
  };
  for (const auto& test_case : cases) {
    const std::string binary_message = message_of([&] {
      const std::string frame =
          binary::encode_request_frame({test_case.request});
      binary::decode_request_frame(frame)[0].materialize();
    });
    const std::string text_message = message_of([&] {
      exareq::serve::parse_request(test_case.line);
    });
    EXPECT_EQ(binary_message, text_message) << test_case.line;
  }
}

TEST(BinaryProtocolTest, MaterializeRejectsUnknownMetricId) {
  std::string frame =
      binary::encode_request_frame({eval_request("app", "flops", 2, 3)});
  // The metric id sits after the header (8), count (4), opcode (1),
  // app length (2) and app bytes (3).
  const std::size_t metric_offset = 8 + 4 + 1 + 2 + 3;
  frame[metric_offset] = static_cast<char>(200);
  const auto views = binary::decode_request_frame(frame);
  EXPECT_THROW(views[0].materialize(), InvalidArgument);
}

TEST(BinaryProtocolTest, MaterializeRejectsEmptyAppAndPayload) {
  Request empty_app = eval_request("", "flops", 2, 3);
  const std::string app_frame = binary::encode_request_frame({empty_app});
  const auto views = binary::decode_request_frame(app_frame);
  EXPECT_THROW(views[0].materialize(), InvalidArgument);

  Request empty_ingest;
  empty_ingest.kind = RequestKind::kIngest;
  empty_ingest.app = "app";
  const std::string ingest_frame =
      binary::encode_request_frame({empty_ingest});
  const auto ingest_views = binary::decode_request_frame(ingest_frame);
  EXPECT_THROW(ingest_views[0].materialize(), InvalidArgument);
}

TEST(BinaryProtocolTest, EncodeRejectsUnknownMetricAndOversizedApp) {
  EXPECT_THROW(binary::encode_request_frame(
                   {eval_request("app", "watts", 2, 3)}),
               InvalidArgument);
  Request huge_app;
  huge_app.kind = RequestKind::kStrawman;
  huge_app.app.assign(70000, 'a');
  EXPECT_THROW(binary::encode_request_frame({huge_app}), InvalidArgument);
}

TEST(BinaryProtocolTest, DecodeRejectsCorruptHeaders) {
  const std::string good =
      binary::encode_request_frame({eval_request("app", "flops", 2, 3)});

  std::string bad_magic = good;
  bad_magic[0] = 'e';
  EXPECT_THROW(binary::decode_request_frame(bad_magic), InvalidArgument);

  // A response frame handed to the request decoder is a magic mismatch.
  EXPECT_THROW(
      binary::decode_request_frame(binary::encode_response_frame({"ok"})),
      InvalidArgument);

  std::string bad_version = good;
  bad_version[1] = 2;
  EXPECT_THROW(binary::decode_request_frame(bad_version), InvalidArgument);

  std::string bad_kind = good;
  bad_kind[2] = 9;
  EXPECT_THROW(binary::decode_request_frame(bad_kind), InvalidArgument);

  std::string bad_reserved = good;
  bad_reserved[3] = 1;
  EXPECT_THROW(binary::decode_request_frame(bad_reserved), InvalidArgument);

  std::string short_payload = good.substr(0, good.size() - 1);
  EXPECT_THROW(binary::decode_request_frame(short_payload), InvalidArgument);

  std::string trailing = good + "x";
  EXPECT_THROW(binary::decode_request_frame(trailing), InvalidArgument);

  EXPECT_THROW(binary::decode_request_frame("\xEB"), InvalidArgument);
}

TEST(BinaryProtocolTest, DecodeRejectsCorruptRecords) {
  const std::string good =
      binary::encode_request_frame({eval_request("app", "flops", 2, 3)});

  std::string bad_opcode = good;
  bad_opcode[12] = 99;  // opcode is the first payload byte after the count
  EXPECT_THROW(binary::decode_request_frame(bad_opcode), InvalidArgument);

  // Record count larger than the payload could ever hold.
  std::string bad_count = good;
  bad_count[8] = static_cast<char>(0xFF);
  bad_count[9] = static_cast<char>(0xFF);
  bad_count[10] = static_cast<char>(0xFF);
  bad_count[11] = static_cast<char>(0xFF);
  EXPECT_THROW(binary::decode_request_frame(bad_count), InvalidArgument);

  // A string length that runs past the end of the payload.
  std::string bad_strlen = good;
  bad_strlen[13] = static_cast<char>(0xFF);  // app length low byte
  bad_strlen[14] = static_cast<char>(0xFF);  // app length high byte
  EXPECT_THROW(binary::decode_request_frame(bad_strlen), InvalidArgument);
}

TEST(BinaryFrameDecoderTest, ReassemblesFramesFedByteByByte) {
  const std::string frame1 =
      binary::encode_request_frame({eval_request("a", "flops", 2, 3)});
  const std::string frame2 = binary::encode_request_frame(sample_batch());
  const std::string stream = frame1 + frame2;
  binary::BinaryFrameDecoder decoder;
  std::vector<std::string> frames;
  for (const char byte : stream) {
    for (std::string& frame : decoder.feed(std::string_view(&byte, 1))) {
      frames.push_back(std::move(frame));
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], frame1);
  EXPECT_EQ(frames[1], frame2);
  EXPECT_FALSE(decoder.has_partial_frame());
}

TEST(BinaryFrameDecoderTest, ReturnsMultipleFramesFromOneFeed) {
  const std::string frame =
      binary::encode_request_frame({eval_request("a", "flops", 2, 3)});
  binary::BinaryFrameDecoder decoder;
  const auto frames = decoder.feed(frame + frame + frame);
  EXPECT_EQ(frames.size(), 3u);
}

TEST(BinaryFrameDecoderTest, TracksPartialFrameState) {
  const std::string frame = binary::encode_request_frame(sample_batch());
  binary::BinaryFrameDecoder decoder;
  EXPECT_TRUE(decoder.feed(frame.substr(0, frame.size() / 2)).empty());
  EXPECT_TRUE(decoder.has_partial_frame());
  EXPECT_EQ(decoder.partial_bytes(), frame.size() / 2);
  const auto frames = decoder.feed(frame.substr(frame.size() / 2));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], frame);
  EXPECT_FALSE(decoder.has_partial_frame());
}

TEST(BinaryFrameDecoderTest, OversizedFrameThrowsAndDecoderRecovers) {
  binary::BinaryFrameDecoder decoder(64);
  // Header declaring a 1 MiB payload against a 64-byte limit.
  std::string header;
  header.push_back(static_cast<char>(binary::kRequestMagic));
  header.push_back(static_cast<char>(binary::kVersion));
  header.push_back(static_cast<char>(binary::kKindBatch));
  header.push_back(0);
  const std::uint32_t payload_len = 1 << 20;
  for (int shift = 0; shift < 32; shift += 8) {
    header.push_back(static_cast<char>((payload_len >> shift) & 0xFF));
  }
  EXPECT_THROW(decoder.feed(header), InvalidArgument);
  EXPECT_FALSE(decoder.has_partial_frame());
  // The decoder stays usable: a well-formed small frame still decodes.
  const std::string frame =
      binary::encode_request_frame({eval_request("a", "flops", 2, 3)});
  ASSERT_LE(frame.size(), 64u);
  EXPECT_EQ(decoder.feed(frame).size(), 1u);
}

TEST(BinaryFrameDecoderTest, RejectsNonBinaryStream) {
  binary::BinaryFrameDecoder decoder;
  EXPECT_THROW(decoder.feed("eval lulesh flops 64 100\n"), InvalidArgument);
  EXPECT_FALSE(decoder.has_partial_frame());
}

TEST(BinaryFrameDecoderTest, DefaultLimitIsRaisedForBatchFrames) {
  // Satellite: the binary path's default frame bound must comfortably
  // exceed the text protocol's 64 KiB line default.
  EXPECT_GE(binary::kDefaultBatchMaxFrameBytes,
            16 * exareq::serve::FrameDecoder::kDefaultMaxFrameBytes);
  binary::BinaryFrameDecoder decoder;
  EXPECT_EQ(decoder.max_frame_bytes(), binary::kDefaultBatchMaxFrameBytes);
}
