#include "serve/sharded_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/query_engine.hpp"
#include "serve/registry.hpp"
#include "serve_test_util.hpp"
#include "support/error.hpp"

using exareq::serve::ModelRegistry;
using exareq::serve::Request;
using exareq::serve::RequestKind;
using exareq::serve::ShardedServer;
using exareq::serve::ShardedServerOptions;
using exareq::serve::testing::make_test_requirements;

namespace {

const std::vector<std::string> kApps = {"lulesh", "hpcg",  "amg",
                                        "relearn", "milc", "kripke",
                                        "quicksilver", "laghos"};

ShardedServerOptions options_with(std::size_t shards) {
  ShardedServerOptions options;
  options.shards = shards;
  return options;
}

void load_apps(ShardedServer& server) {
  for (const std::string& app : kApps) {
    server.insert(make_test_requirements(app));
  }
}

Request eval_request(const std::string& app, double p, double n) {
  Request request;
  request.kind = RequestKind::kEval;
  request.app = app;
  request.metric = "flops";
  request.p = p;
  request.n = n;
  return request;
}

}  // namespace

TEST(ShardedServerTest, PartitionIsStableAndCaseInsensitive) {
  EXPECT_EQ(ShardedServer::shard_of("lulesh", 4),
            ShardedServer::shard_of("LULESH", 4));
  EXPECT_EQ(ShardedServer::shard_of("lulesh", 4),
            ShardedServer::shard_of("lulesh", 4));
  // With enough apps every shard of a small cluster owns at least one.
  std::set<std::size_t> hit;
  for (const std::string& app : kApps) {
    hit.insert(ShardedServer::shard_of(app, 2));
  }
  EXPECT_EQ(hit.size(), 2u);
}

TEST(ShardedServerTest, AnswersMatchSingleEngineAcrossShardCounts) {
  // Reference: one unsharded engine over all apps.
  ModelRegistry reference_registry;
  for (const std::string& app : kApps) {
    reference_registry.insert(make_test_requirements(app));
  }
  exareq::serve::QueryEngine reference(reference_registry);

  std::vector<std::string> lines;
  for (const std::string& app : kApps) {
    lines.push_back("eval " + app + " flops 64 100");
    lines.push_back("eval " + app + " stack_distance 1 4096");
    lines.push_back("invert " + app + " 1024 1e9");
    lines.push_back("upgrade " + app + " 512 2e9");
    lines.push_back("strawman " + app);
  }

  for (const std::size_t shards : {1u, 2u, 4u}) {
    ShardedServer server(options_with(shards));
    load_apps(server);
    for (const std::string& line : lines) {
      EXPECT_EQ(server.handle_line(line), reference.answer_line(line))
          << "shards=" << shards << " line=" << line;
    }
  }
}

TEST(ShardedServerTest, BatchPreservesRequestOrderAcrossShards) {
  ShardedServer server(options_with(4));
  load_apps(server);
  std::vector<Request> batch;
  std::vector<std::string> expected;
  for (int round = 0; round < 8; ++round) {
    for (const std::string& app : kApps) {
      const double n = 10.0 + round;
      batch.push_back(eval_request(app, 64.0, n));
      expected.push_back(server.handle(eval_request(app, 64.0, n)));
    }
  }
  const std::vector<std::string> responses = server.submit_batch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(responses[i], expected[i]) << "index " << i;
  }
}

TEST(ShardedServerTest, ModelsLandOnExactlyOneShard) {
  ShardedServer server(options_with(4));
  load_apps(server);
  std::size_t total = 0;
  for (const auto& status : server.shard_statuses()) {
    total += status.apps.size();
    for (const std::string& app : status.apps) {
      EXPECT_EQ(server.shard_of(app), status.shard) << app;
    }
  }
  EXPECT_EQ(total, kApps.size());
}

TEST(ShardedServerTest, UnknownAppAndBadRequestsAnswerErrors) {
  ShardedServer server(options_with(2));
  load_apps(server);
  EXPECT_EQ(server.handle_line("eval nosuch flops 64 100").rfind("error", 0),
            0u);
  EXPECT_EQ(server.handle_line("eval lulesh watts 64 100"),
            "error bad-request: unknown metric 'watts' (expected "
            "footprint|flops|comm_bytes|loads_stores|stack_distance|"
            "io_bytes|energy_proxy)");
  EXPECT_EQ(server.handle_line("bogus").rfind("error bad-request", 0), 0u);
}

TEST(ShardedServerTest, StatusAnsweredAtFrontEndWithShardCount) {
  ShardedServer server(options_with(3));
  load_apps(server);
  server.handle_line("eval lulesh flops 64 100");
  Request status;
  status.kind = RequestKind::kStatus;
  const std::string response = server.handle(status);
  EXPECT_EQ(response.rfind("ok status ", 0), 0u);
  EXPECT_NE(response.find("shards=3"), std::string::npos);
  EXPECT_NE(response.find("requests="), std::string::npos);
}

TEST(ShardedServerTest, StatusReportListsEveryShard) {
  ShardedServer server(options_with(4));
  load_apps(server);
  server.handle_line("eval lulesh flops 64 100");
  server.handle_line("eval lulesh flops 64 100");
  const std::string report = server.status_report();
  EXPECT_NE(report.find("Shard"), std::string::npos);
  EXPECT_NE(report.find("Queue"), std::string::npos);
  EXPECT_NE(report.find("p50 [us]"), std::string::npos);
  EXPECT_NE(report.find("lulesh v1"), std::string::npos);
}

TEST(ShardedServerTest, PerShardCachesCountHitsLocally) {
  ShardedServer server(options_with(4));
  load_apps(server);
  const Request request = eval_request("lulesh", 64.0, 100.0);
  server.handle(request);  // miss
  server.handle(request);  // hit, on lulesh's shard only
  const auto statuses = server.shard_statuses();
  const std::size_t owner = server.shard_of("lulesh");
  for (const auto& status : statuses) {
    if (status.shard == owner) {
      EXPECT_EQ(status.metrics.cache_hits, 1u);
      EXPECT_EQ(status.metrics.cache_misses, 1u);
    } else {
      EXPECT_EQ(status.metrics.cache_hits, 0u);
      EXPECT_EQ(status.metrics.cache_misses, 0u);
    }
  }
  EXPECT_EQ(server.metrics().cache_hits, 1u);
}

TEST(ShardedServerTest, MixedBatchAnswersEachRecordIndependently) {
  ShardedServer server(options_with(2));
  load_apps(server);
  std::vector<Request> batch;
  batch.push_back(eval_request("lulesh", 64.0, 100.0));
  Request bad = eval_request("hpcg", 0.5, 100.0);  // coordinates below 1
  batch.push_back(bad);
  Request status;
  status.kind = RequestKind::kStatus;
  batch.push_back(status);
  const auto responses = server.submit_batch(batch);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].rfind("ok eval ", 0), 0u);
  EXPECT_EQ(responses[1], "error bad-request: eval coordinates must be >= 1");
  EXPECT_EQ(responses[2].rfind("ok status ", 0), 0u);
}

TEST(ShardedServerTest, IngestWithoutHooksIsRejected) {
  ShardedServer server(options_with(2));
  load_apps(server);
  EXPECT_EQ(server.handle_line("ingest lulesh p,n,footprint;64,100,123"),
            "error bad-request: ingest is not enabled on this server");
}

TEST(ShardedServerTest, IngestRoutesToTheOwningShardHook) {
  ShardedServer server(options_with(4));
  load_apps(server);
  std::vector<std::atomic<int>> calls(4);
  for (std::size_t i = 0; i < 4; ++i) {
    exareq::serve::OnlineHooks hooks;
    hooks.ingest = [&calls, i](const Request& request) {
      calls[i].fetch_add(1);
      return exareq::serve::ok_response("ingest shard=" + std::to_string(i) +
                                        " app=" + request.app);
    };
    server.set_online_hooks(i, hooks);
  }
  const std::size_t owner = server.shard_of("lulesh");
  const std::string response =
      server.handle_line("ingest lulesh p,n,footprint;64,100,123");
  EXPECT_EQ(response,
            "ok ingest shard=" + std::to_string(owner) + " app=lulesh");
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(calls[i].load(), i == owner ? 1 : 0);
  }
}

TEST(ShardedServerTest, DeadlineExpiredBatchesAreDropped) {
  ShardedServerOptions options = options_with(1);
  options.deadline = std::chrono::milliseconds(1);
  ShardedServer server(options);
  load_apps(server);
  // Saturate the single shard with a slow-ish batch, then observe that a
  // batch enqueued behind it can expire. Deterministic alternative: the
  // deadline is checked against the front end's enqueue stamp, so a batch
  // that sat in the mailbox past the deadline answers `error deadline`.
  // Simplest deterministic probe: drive many batches from several threads
  // and require only that every response is one of the two legal outcomes.
  std::atomic<int> deadline_errors{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const std::string response =
            server.handle(eval_request("lulesh", 64.0, 100.0 + i % 7));
        if (response.rfind("error deadline", 0) == 0) {
          deadline_errors.fetch_add(1);
        } else {
          EXPECT_EQ(response.rfind("ok eval ", 0), 0u) << response;
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  // Whether any deadline fired is timing-dependent; the invariant under
  // test is that expired work is *counted* as dropped, never half-done.
  EXPECT_EQ(server.metrics().deadline_drops,
            static_cast<std::uint64_t>(deadline_errors.load()));
}

TEST(ShardedServerTest, ShedsWhenAShardQueueIsFull) {
  ShardedServerOptions options = options_with(1);
  options.queue_capacity = 1;
  ShardedServer server(options);
  load_apps(server);
  // Many concurrent clients against capacity 1: some must shed.
  std::atomic<int> sheds{0};
  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        const std::string response =
            server.handle(eval_request("lulesh", 64.0, 100.0 + i % 5));
        if (response.rfind("error shed", 0) == 0) {
          sheds.fetch_add(1);
        } else {
          answered.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(sheds.load() + answered.load(), 200);
  EXPECT_EQ(server.metrics().sheds, static_cast<std::uint64_t>(sheds.load()));
  EXPECT_EQ(server.metrics().requests, 200u);
}

TEST(ShardedServerTest, StopDrainsThenRejectsNewWork) {
  ShardedServer server(options_with(2));
  load_apps(server);
  EXPECT_EQ(server.handle_line("eval lulesh flops 64 100").rfind("ok", 0), 0u);
  server.stop();
  EXPECT_EQ(server.handle_line("eval lulesh flops 64 100"),
            "error shutdown: server is no longer accepting requests");
  server.stop();  // idempotent
}

TEST(ShardedServerTest, LoadFileRoutesToOwningShard) {
  ModelRegistry scratch;
  scratch.insert(make_test_requirements("lulesh"));
  // Round-trip through a bundle file via the registry's own serializer
  // path is covered in registry tests; here route a prebuilt bundle.
  ShardedServer server(options_with(4));
  server.insert(make_test_requirements("lulesh"));
  const std::size_t owner = server.shard_of("lulesh");
  EXPECT_EQ(server.registry(owner).app_names(),
            std::vector<std::string>{"lulesh"});
}

TEST(ShardedServerConcurrencyTest, ParallelClientsGetConsistentAnswers) {
  ShardedServer server(options_with(4));
  load_apps(server);
  // Precompute expected answers single-threaded.
  std::vector<Request> batch;
  for (const std::string& app : kApps) {
    for (int n = 10; n < 26; ++n) {
      batch.push_back(eval_request(app, 64.0, n));
    }
  }
  const std::vector<std::string> expected = server.submit_batch(batch);

  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        const std::vector<std::string> responses = server.submit_batch(batch);
        if (responses != expected) failed.store(true);
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(server.metrics().responses_ok,
            static_cast<std::uint64_t>(batch.size()) * (1 + 6 * 20));
}

TEST(ShardedServerConcurrencyTest, ConcurrentSubmitAndStopIsSafe) {
  for (int iteration = 0; iteration < 5; ++iteration) {
    ShardedServer server(options_with(2));
    load_apps(server);
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
      clients.emplace_back([&] {
        for (int i = 0; i < 30; ++i) {
          const std::string response =
              server.handle(eval_request("lulesh", 64.0, 100.0 + i));
          const bool ok = response.rfind("ok eval ", 0) == 0;
          const bool shutdown = response.rfind("error shutdown", 0) == 0;
          EXPECT_TRUE(ok || shutdown) << response;
        }
      });
    }
    server.stop();
    for (auto& client : clients) client.join();
  }
}
