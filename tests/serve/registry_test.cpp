#include "serve/registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include "model/serialize.hpp"
#include "serve_test_util.hpp"
#include "support/error.hpp"

namespace exareq::serve {
namespace {

using testing::make_test_requirements;

std::string temp_path(const std::string& stem) {
  return "/tmp/exareq_serve_registry_" + stem + "_" +
         std::to_string(::getpid()) + ".models";
}

model::ModelBundle to_bundle(const codesign::AppRequirements& app) {
  model::ModelBundle bundle;
  bundle.name = app.name;
  bundle.models = {{"footprint", app.footprint},
                   {"flops", app.flops},
                   {"comm_bytes", app.comm_bytes},
                   {"loads_stores", app.loads_stores},
                   {"stack_distance", app.stack_distance}};
  return bundle;
}

TEST(ServeRegistryTest, InsertAndCaseInsensitiveLookup) {
  ModelRegistry registry;
  registry.insert(make_test_requirements("TestApp"));
  const auto models = registry.get("testapp");
  ASSERT_NE(models, nullptr);
  EXPECT_EQ(models->name, "TestApp");
  EXPECT_EQ(registry.app_names(), std::vector<std::string>{"TestApp"});
  EXPECT_EQ(registry.get("TESTAPP"), models);
}

TEST(ServeRegistryTest, MissWithoutFitterThrows) {
  ModelRegistry registry;
  EXPECT_THROW(registry.get("nope"), exareq::InvalidArgument);
  EXPECT_EQ(registry.find("nope"), nullptr);
}

// Satellite: serialization round trip through the registry — write models
// with serialize.hpp, load via ModelRegistry, assert bit-identical
// evaluation at grid and extrapolation points.
TEST(ServeRegistryTest, SerializedBundleRoundTripsBitIdentical) {
  const codesign::AppRequirements original = make_test_requirements("RoundTrip");
  const std::string path = temp_path("roundtrip");
  {
    std::ofstream file(path);
    file << model::serialize_bundle(to_bundle(original));
  }

  ModelRegistry registry;
  EXPECT_EQ(registry.load_file(path), "RoundTrip");
  const auto loaded = registry.get("RoundTrip");
  ASSERT_NE(loaded, nullptr);

  const double grid_p[] = {4, 8, 16, 32, 64};
  const double grid_n[] = {64, 128, 256, 512, 1024};
  const double extrapolation_p[] = {1e6, 1e8};
  const double extrapolation_n[] = {1e9, 1e12};
  std::vector<std::pair<double, double>> points;
  for (double p : grid_p)
    for (double n : grid_n) points.emplace_back(p, n);
  for (double p : extrapolation_p)
    for (double n : extrapolation_n) points.emplace_back(p, n);

  for (const auto& [p, n] : points) {
    EXPECT_EQ(loaded->footprint.evaluate2(p, n),
              original.footprint.evaluate2(p, n));
    EXPECT_EQ(loaded->flops.evaluate2(p, n), original.flops.evaluate2(p, n));
    EXPECT_EQ(loaded->comm_bytes.evaluate2(p, n),
              original.comm_bytes.evaluate2(p, n));
    EXPECT_EQ(loaded->loads_stores.evaluate2(p, n),
              original.loads_stores.evaluate2(p, n));
    EXPECT_EQ(loaded->stack_distance.evaluate1(n),
              original.stack_distance.evaluate1(n));
  }
  EXPECT_EQ(registry.stats().files_loaded, 1u);
  std::remove(path.c_str());
}

TEST(ServeRegistryTest, LoadFileRejectsIncompleteBundles) {
  const codesign::AppRequirements app = make_test_requirements("Partial");
  model::ModelBundle bundle = to_bundle(app);
  bundle.models.pop_back();  // drop stack_distance
  const std::string path = temp_path("partial");
  {
    std::ofstream file(path);
    file << model::serialize_bundle(bundle);
  }
  ModelRegistry registry;
  EXPECT_THROW(registry.load_file(path), exareq::InvalidArgument);
  std::remove(path.c_str());
}

TEST(ServeRegistryTest, ConcurrentMissesTriggerExactlyOneFit) {
  std::atomic<int> calls{0};
  std::promise<void> gate;
  std::shared_future<void> released = gate.get_future().share();
  ModelRegistry registry([&](const std::string& name) {
    calls.fetch_add(1);
    released.wait();
    return make_test_requirements(name);
  });

  constexpr int kThreads = 8;
  std::vector<std::future<std::shared_ptr<const codesign::AppRequirements>>>
      lookups;
  lookups.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    lookups.push_back(std::async(std::launch::async,
                                 [&registry] { return registry.get("hot"); }));
  }
  // Wait until every thread has entered get() — one is fitting (blocked on
  // the gate), the rest can only be waiting on it.
  while (registry.stats().lookups < kThreads) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(registry.stats().in_flight_fits, 1u);
  gate.set_value();

  std::vector<std::shared_ptr<const codesign::AppRequirements>> results;
  results.reserve(kThreads);
  for (auto& lookup : lookups) results.push_back(lookup.get());
  for (const auto& result : results) {
    EXPECT_EQ(result, results.front());  // all share one fit result
  }
  EXPECT_EQ(calls.load(), 1);
  const RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.fits_started, 1u);
  EXPECT_EQ(stats.fits_completed, 1u);
  EXPECT_EQ(stats.in_flight_fits, 0u);
  EXPECT_GE(stats.singleflight_waits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(ServeRegistryTest, FailedFitIsRetriedNotCached) {
  std::atomic<int> calls{0};
  ModelRegistry registry([&](const std::string& name) {
    if (calls.fetch_add(1) == 0) {
      throw exareq::NumericError("transient failure");
    }
    return make_test_requirements(name);
  });
  EXPECT_THROW(registry.get("flaky"), exareq::NumericError);
  EXPECT_EQ(registry.stats().fit_failures, 1u);
  const auto models = registry.get("flaky");
  ASSERT_NE(models, nullptr);
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(registry.stats().fits_completed, 1u);
}

TEST(ServeRegistryTest, PublishHotSwapsAndTracksVersions) {
  ModelRegistry registry;
  registry.insert(make_test_requirements("App"));
  const auto v1 = registry.version_of("app");
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(v1->source, online::VersionSource::kInsert);
  EXPECT_EQ(registry.stats().hot_swaps, 0u);  // first publish, no swap

  const std::uint64_t v2 = registry.publish(
      make_test_requirements("App"), online::VersionSource::kOnlineRefit,
      /*rows=*/25, /*mean_abs_relative_error=*/0.02);
  EXPECT_EQ(v2, 2u);
  const auto current = registry.version_of("App");
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->version, 2u);
  EXPECT_EQ(current->rows, 25u);
  EXPECT_DOUBLE_EQ(current->mean_abs_relative_error, 0.02);
  EXPECT_EQ(registry.stats().hot_swaps, 1u);
  EXPECT_EQ(registry.stats().apps, 1u);  // still one app, two versions
}

TEST(ServeRegistryTest, RollbackRestoresTheDisplacedVersion) {
  ModelRegistry registry;
  EXPECT_FALSE(registry.rollback("ghost"));  // unknown app

  registry.insert(make_test_requirements("App"));
  EXPECT_FALSE(registry.rollback("app"));  // no displaced version yet

  const auto good = registry.get("app");
  registry.publish(make_test_requirements("App"),
                   online::VersionSource::kOnlineRefit, 10, 0.9);
  ASSERT_TRUE(registry.rollback("APP"));
  const auto restored = registry.version_of("app");
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->source, online::VersionSource::kRollback);
  EXPECT_EQ(restored->version, 3u);  // rollback is a forward publish
  EXPECT_EQ(registry.get("app"), good);  // same bundle object again
}

TEST(ServeRegistryTest, ModelInfosReportVersionProvenanceAndAge) {
  ModelRegistry registry;
  registry.insert(make_test_requirements("Beta"));
  registry.insert(make_test_requirements("Alpha"));
  registry.publish(make_test_requirements("Beta"),
                   online::VersionSource::kOnlineRefit, 12, 0.05);

  const auto infos = registry.model_infos();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].name, "Alpha");  // sorted by name
  EXPECT_EQ(infos[1].name, "Beta");
  EXPECT_EQ(infos[0].version, 1u);
  EXPECT_EQ(infos[1].version, 2u);
  EXPECT_EQ(infos[1].source, online::VersionSource::kOnlineRefit);
  EXPECT_EQ(infos[1].rows, 12u);
  EXPECT_GE(infos[0].age_seconds, 0.0);
}

TEST(ServeRegistryTest, FitGateIsExclusivePerApp) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.try_begin_fit("app"));
  EXPECT_FALSE(registry.try_begin_fit("APP"));  // same key, gate held
  EXPECT_TRUE(registry.try_begin_fit("other"));  // distinct apps don't block
  registry.end_fit("other", /*completed=*/false);
  registry.end_fit("app", /*completed=*/true);
  EXPECT_TRUE(registry.try_begin_fit("app"));  // released
  registry.end_fit("app", true);
  const RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.fits_started, 3u);
  EXPECT_EQ(stats.fits_completed, 2u);
  EXPECT_EQ(stats.fit_failures, 1u);
  EXPECT_EQ(stats.in_flight_fits, 0u);
}

}  // namespace
}  // namespace exareq::serve
