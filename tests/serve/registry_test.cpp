#include "serve/registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include "model/serialize.hpp"
#include "serve_test_util.hpp"
#include "support/error.hpp"

namespace exareq::serve {
namespace {

using testing::make_test_requirements;

std::string temp_path(const std::string& stem) {
  return "/tmp/exareq_serve_registry_" + stem + "_" +
         std::to_string(::getpid()) + ".models";
}

model::ModelBundle to_bundle(const codesign::AppRequirements& app) {
  model::ModelBundle bundle;
  bundle.name = app.name;
  bundle.models = {{"footprint", app.footprint},
                   {"flops", app.flops},
                   {"comm_bytes", app.comm_bytes},
                   {"loads_stores", app.loads_stores},
                   {"stack_distance", app.stack_distance}};
  return bundle;
}

TEST(ServeRegistryTest, InsertAndCaseInsensitiveLookup) {
  ModelRegistry registry;
  registry.insert(make_test_requirements("TestApp"));
  const auto models = registry.get("testapp");
  ASSERT_NE(models, nullptr);
  EXPECT_EQ(models->name, "TestApp");
  EXPECT_EQ(registry.app_names(), std::vector<std::string>{"TestApp"});
  EXPECT_EQ(registry.get("TESTAPP"), models);
}

TEST(ServeRegistryTest, MissWithoutFitterThrows) {
  ModelRegistry registry;
  EXPECT_THROW(registry.get("nope"), exareq::InvalidArgument);
  EXPECT_EQ(registry.find("nope"), nullptr);
}

// Satellite: serialization round trip through the registry — write models
// with serialize.hpp, load via ModelRegistry, assert bit-identical
// evaluation at grid and extrapolation points.
TEST(ServeRegistryTest, SerializedBundleRoundTripsBitIdentical) {
  const codesign::AppRequirements original = make_test_requirements("RoundTrip");
  const std::string path = temp_path("roundtrip");
  {
    std::ofstream file(path);
    file << model::serialize_bundle(to_bundle(original));
  }

  ModelRegistry registry;
  EXPECT_EQ(registry.load_file(path), "RoundTrip");
  const auto loaded = registry.get("RoundTrip");
  ASSERT_NE(loaded, nullptr);

  const double grid_p[] = {4, 8, 16, 32, 64};
  const double grid_n[] = {64, 128, 256, 512, 1024};
  const double extrapolation_p[] = {1e6, 1e8};
  const double extrapolation_n[] = {1e9, 1e12};
  std::vector<std::pair<double, double>> points;
  for (double p : grid_p)
    for (double n : grid_n) points.emplace_back(p, n);
  for (double p : extrapolation_p)
    for (double n : extrapolation_n) points.emplace_back(p, n);

  for (const auto& [p, n] : points) {
    EXPECT_EQ(loaded->footprint.evaluate2(p, n),
              original.footprint.evaluate2(p, n));
    EXPECT_EQ(loaded->flops.evaluate2(p, n), original.flops.evaluate2(p, n));
    EXPECT_EQ(loaded->comm_bytes.evaluate2(p, n),
              original.comm_bytes.evaluate2(p, n));
    EXPECT_EQ(loaded->loads_stores.evaluate2(p, n),
              original.loads_stores.evaluate2(p, n));
    EXPECT_EQ(loaded->stack_distance.evaluate1(n),
              original.stack_distance.evaluate1(n));
  }
  EXPECT_EQ(registry.stats().files_loaded, 1u);
  std::remove(path.c_str());
}

TEST(ServeRegistryTest, LoadFileRejectsIncompleteBundles) {
  const codesign::AppRequirements app = make_test_requirements("Partial");
  model::ModelBundle bundle = to_bundle(app);
  bundle.models.pop_back();  // drop stack_distance
  const std::string path = temp_path("partial");
  {
    std::ofstream file(path);
    file << model::serialize_bundle(bundle);
  }
  ModelRegistry registry;
  EXPECT_THROW(registry.load_file(path), exareq::InvalidArgument);
  std::remove(path.c_str());
}

TEST(ServeRegistryTest, ConcurrentMissesTriggerExactlyOneFit) {
  std::atomic<int> calls{0};
  std::promise<void> gate;
  std::shared_future<void> released = gate.get_future().share();
  ModelRegistry registry([&](const std::string& name) {
    calls.fetch_add(1);
    released.wait();
    return make_test_requirements(name);
  });

  constexpr int kThreads = 8;
  std::vector<std::future<std::shared_ptr<const codesign::AppRequirements>>>
      lookups;
  lookups.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    lookups.push_back(std::async(std::launch::async,
                                 [&registry] { return registry.get("hot"); }));
  }
  // Wait until every thread has entered get() — one is fitting (blocked on
  // the gate), the rest can only be waiting on it.
  while (registry.stats().lookups < kThreads) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(registry.stats().in_flight_fits, 1u);
  gate.set_value();

  std::vector<std::shared_ptr<const codesign::AppRequirements>> results;
  results.reserve(kThreads);
  for (auto& lookup : lookups) results.push_back(lookup.get());
  for (const auto& result : results) {
    EXPECT_EQ(result, results.front());  // all share one fit result
  }
  EXPECT_EQ(calls.load(), 1);
  const RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.fits_started, 1u);
  EXPECT_EQ(stats.fits_completed, 1u);
  EXPECT_EQ(stats.in_flight_fits, 0u);
  EXPECT_GE(stats.singleflight_waits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(ServeRegistryTest, FailedFitIsRetriedNotCached) {
  std::atomic<int> calls{0};
  ModelRegistry registry([&](const std::string& name) {
    if (calls.fetch_add(1) == 0) {
      throw exareq::NumericError("transient failure");
    }
    return make_test_requirements(name);
  });
  EXPECT_THROW(registry.get("flaky"), exareq::NumericError);
  EXPECT_EQ(registry.stats().fit_failures, 1u);
  const auto models = registry.get("flaky");
  ASSERT_NE(models, nullptr);
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(registry.stats().fits_completed, 1u);
}

}  // namespace
}  // namespace exareq::serve
