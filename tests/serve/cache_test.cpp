#include "serve/cache.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace exareq::serve {
namespace {

TEST(ServeCacheTest, PutGetAndMissCounters) {
  ShardedLruCache cache(16, 4);
  EXPECT_EQ(cache.get("a"), std::nullopt);
  cache.put("a", "1");
  const auto hit = cache.get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "1");
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ServeCacheTest, PutRefreshesValueAndRecency) {
  ShardedLruCache cache(8, 1);
  cache.put("k", "old");
  cache.put("k", "new");
  EXPECT_EQ(*cache.get("k"), "new");
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ServeCacheTest, EvictsLeastRecentlyUsed) {
  // One shard so the LRU order is global and assertable.
  ShardedLruCache cache(3, 1);
  cache.put("a", "1");
  cache.put("b", "2");
  cache.put("c", "3");
  ASSERT_TRUE(cache.get("a").has_value());  // refresh a; b is now LRU
  cache.put("d", "4");                      // evicts b
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_TRUE(cache.get("d").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(ServeCacheTest, ZeroCapacityDisablesCaching) {
  ShardedLruCache cache(0);
  cache.put("a", "1");
  EXPECT_EQ(cache.get("a"), std::nullopt);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ServeCacheTest, ShardCountNeverExceedsCapacity) {
  ShardedLruCache cache(2, 8);
  EXPECT_LE(cache.shard_count(), 2u);
  cache.put("a", "1");
  cache.put("b", "2");
  cache.put("c", "3");
  const CacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, 2u + cache.shard_count());  // per-shard rounding
}

// The TSan canary: many threads hammering a small cache with overlapping
// keys must neither race nor lose counter updates.
TEST(ServeCacheTest, ConcurrentMixedLoadIsCoherent) {
  ShardedLruCache cache(32, 8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "key" + std::to_string((t * 7 + i) % 100);
        if (i % 3 == 0) {
          cache.put(key, "value" + std::to_string(i));
        } else {
          const auto value = cache.get(key);
          if (value.has_value()) {
            ASSERT_EQ(value->rfind("value", 0), 0u);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const CacheStats stats = cache.stats();
  // Every non-put op is exactly one hit or one miss.
  const std::uint64_t gets = kThreads * (kOpsPerThread -
                                         (kOpsPerThread + 2) / 3);
  EXPECT_EQ(stats.hits + stats.misses, gets);
  EXPECT_LE(stats.entries, 32u + cache.shard_count());
}

}  // namespace
}  // namespace exareq::serve
