#include "serve/frontend.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "serve/binary_protocol.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/sharded_server.hpp"
#include "serve/socket_server.hpp"
#include "serve_test_util.hpp"
#include "support/error.hpp"

namespace binary = exareq::serve::binary;
using exareq::serve::Client;
using exareq::serve::FrontEnd;
using exareq::serve::FrontEndOptions;
using exareq::serve::Request;
using exareq::serve::RequestKind;
using exareq::serve::ShardedServer;
using exareq::serve::ShardedServerOptions;
using exareq::serve::testing::make_test_requirements;

namespace {

std::string unique_socket_path(const std::string& stem) {
  return "/tmp/exareq_front_" + stem + "_" + std::to_string(::getpid()) +
         ".sock";
}

void load_apps(ShardedServer& server) {
  for (const char* app : {"lulesh", "hpcg", "amg", "relearn", "milc",
                          "kripke"}) {
    server.insert(make_test_requirements(app));
  }
}

Request eval_request(const std::string& app, double p, double n) {
  Request request;
  request.kind = RequestKind::kEval;
  request.app = app;
  request.metric = "flops";
  request.p = p;
  request.n = n;
  return request;
}

}  // namespace

TEST(ShardedFrontEndTest, TextClientsWorkOverUnixSocket) {
  ShardedServer server(ShardedServerOptions{.shards = 2});
  load_apps(server);
  FrontEnd front(server, FrontEndOptions{
                             .unix_path = unique_socket_path("text")});
  front.start();
  // The legacy one-shot text client must work unchanged against the
  // binary-capable front end (satellite: mixed-client compatibility).
  EXPECT_EQ(exareq::serve::query_over_socket(front.options().unix_path,
                                             "eval lulesh flops 64 100"),
            server.handle_line("eval lulesh flops 64 100"));
  EXPECT_EQ(exareq::serve::query_over_socket(front.options().unix_path,
                                             "garbage")
                .rfind("error bad-request", 0),
            0u);
}

TEST(ShardedFrontEndTest, BinaryBatchOverUnixSocketMatchesInProcess) {
  ShardedServer server(ShardedServerOptions{.shards = 2});
  load_apps(server);
  FrontEnd front(server, FrontEndOptions{
                             .unix_path = unique_socket_path("binary")});
  front.start();
  std::vector<Request> batch;
  for (int n = 10; n < 20; ++n) {
    batch.push_back(eval_request("lulesh", 64.0, n));
    batch.push_back(eval_request("hpcg", 64.0, n));
  }
  const std::vector<std::string> over_wire =
      exareq::serve::query_batch_over_socket(front.options().unix_path, batch);
  const std::vector<std::string> in_process = server.submit_batch(batch);
  EXPECT_EQ(over_wire, in_process);
}

TEST(ShardedFrontEndTest, TcpServesBothProtocols) {
  ShardedServer server(ShardedServerOptions{.shards = 2});
  load_apps(server);
  FrontEndOptions options;
  options.tcp_port = 0;  // ephemeral
  FrontEnd front(server, options);
  front.start();
  ASSERT_GT(front.tcp_port(), 0);

  EXPECT_EQ(exareq::serve::query_over_tcp("127.0.0.1", front.tcp_port(),
                                          "eval amg flops 64 100"),
            server.handle_line("eval amg flops 64 100"));

  const std::vector<Request> batch = {eval_request("amg", 64.0, 100.0),
                                      eval_request("milc", 32.0, 50.0)};
  EXPECT_EQ(exareq::serve::query_batch_over_tcp("127.0.0.1", front.tcp_port(),
                                                batch),
            server.submit_batch(batch));
}

TEST(ShardedFrontEndTest, UnixAndTcpListenersRunTogether) {
  ShardedServer server(ShardedServerOptions{.shards = 2});
  load_apps(server);
  FrontEndOptions options;
  options.unix_path = unique_socket_path("both");
  options.tcp_port = 0;
  FrontEnd front(server, options);
  front.start();
  const std::string expected = server.handle_line("strawman kripke");
  EXPECT_EQ(exareq::serve::query_over_socket(options.unix_path,
                                             "strawman kripke"),
            expected);
  EXPECT_EQ(exareq::serve::query_over_tcp("127.0.0.1", front.tcp_port(),
                                          "strawman kripke"),
            expected);
}

TEST(ShardedFrontEndTest, MixedClientsShareOneListener) {
  // Satellite: text and binary clients concurrently against one listener;
  // protocol detection is per connection.
  ShardedServer server(ShardedServerOptions{.shards = 4});
  load_apps(server);
  FrontEnd front(server, FrontEndOptions{
                             .unix_path = unique_socket_path("mixed")});
  front.start();
  const std::string text_expected =
      server.handle_line("eval lulesh flops 64 100");
  const std::vector<Request> batch = {eval_request("hpcg", 64.0, 100.0),
                                      eval_request("amg", 64.0, 100.0)};
  const std::vector<std::string> batch_expected = server.submit_batch(batch);

  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        if (exareq::serve::query_over_socket(front.options().unix_path,
                                             "eval lulesh flops 64 100") !=
            text_expected) {
          failed.store(true);
        }
      }
    });
    clients.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        if (exareq::serve::query_batch_over_socket(front.options().unix_path,
                                                   batch) != batch_expected) {
          failed.store(true);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_FALSE(failed.load());
}

TEST(ShardedFrontEndTest, PersistentClientReusesOneConnection) {
  ShardedServer server(ShardedServerOptions{.shards = 2});
  load_apps(server);
  FrontEnd front(server, FrontEndOptions{
                             .unix_path = unique_socket_path("persist")});
  front.start();
  Client client = Client::connect_unix(front.options().unix_path);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client.query("eval lulesh flops 64 100").rfind("ok eval ", 0),
              0u);
  }
  // A text-pinned connection refuses binary batches (one protocol per
  // connection, mirroring the server's first-byte detection).
  EXPECT_THROW(client.query_batch({eval_request("lulesh", 64.0, 100.0)}),
               exareq::InvalidArgument);

  Client binary_client = Client::connect_unix(front.options().unix_path);
  for (int i = 0; i < 10; ++i) {
    const auto lines =
        binary_client.query_batch({eval_request("hpcg", 64.0, 100.0 + i)});
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].rfind("ok eval ", 0), 0u);
  }
  EXPECT_THROW(binary_client.query("status"), exareq::InvalidArgument);
}

TEST(ShardedFrontEndTest, BadRecordsInABinaryBatchFailIndependently) {
  ShardedServer server(ShardedServerOptions{.shards = 2});
  load_apps(server);
  FrontEnd front(server, FrontEndOptions{
                             .unix_path = unique_socket_path("badrec")});
  front.start();
  std::vector<Request> batch;
  batch.push_back(eval_request("lulesh", 64.0, 100.0));
  batch.push_back(eval_request("hpcg", 0.25, 100.0));  // invalid coordinates
  batch.push_back(eval_request("amg", 64.0, 100.0));
  const auto lines =
      exareq::serve::query_batch_over_socket(front.options().unix_path, batch);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].rfind("ok eval ", 0), 0u);
  EXPECT_EQ(lines[1], "error bad-request: eval coordinates must be >= 1");
  EXPECT_EQ(lines[2].rfind("ok eval ", 0), 0u);
}

TEST(ShardedFrontEndTest, OversizedTextLineRecoversPerConnection) {
  // Satellite: oversized-frame regression coverage on the text path. The
  // offending connection is told why and dropped; the listener and fresh
  // connections keep working.
  ShardedServer server(ShardedServerOptions{.shards = 1});
  load_apps(server);
  FrontEndOptions options;
  options.unix_path = unique_socket_path("overtext");
  options.max_frame_bytes = 128;
  FrontEnd front(server, options);
  front.start();
  Client client = Client::connect_unix(options.unix_path);
  const std::string oversized(512, 'x');
  EXPECT_EQ(client.query(oversized).rfind("error bad-request", 0), 0u);
  // The connection is gone; a new one still works.
  EXPECT_EQ(exareq::serve::query_over_socket(options.unix_path,
                                             "eval lulesh flops 64 100")
                .rfind("ok eval ", 0),
            0u);
}

TEST(ShardedFrontEndTest, OversizedBinaryFrameRecoversPerConnection) {
  // Satellite: oversized-frame regression coverage on the binary path.
  ShardedServer server(ShardedServerOptions{.shards = 1});
  load_apps(server);
  FrontEndOptions options;
  options.unix_path = unique_socket_path("overbin");
  options.max_binary_frame_bytes = 256;
  FrontEnd front(server, options);
  front.start();

  std::vector<Request> huge;
  for (int i = 0; i < 64; ++i) huge.push_back(eval_request("lulesh", 64, 100));
  Client client = Client::connect_unix(options.unix_path);
  const auto lines = client.query_batch(huge);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("error bad-request", 0), 0u);
  EXPECT_NE(lines[0].find("exceeds"), std::string::npos);

  // A fresh connection with a frame under the limit still works.
  const auto small = exareq::serve::query_batch_over_socket(
      options.unix_path, {eval_request("lulesh", 64.0, 100.0)});
  ASSERT_EQ(small.size(), 1u);
  EXPECT_EQ(small[0].rfind("ok eval ", 0), 0u);
}

TEST(ShardedFrontEndTest, LegacySocketServerHonorsMaxFrameOption) {
  // Satellite: the legacy text front end's limit is configurable too.
  exareq::serve::ModelRegistry registry;
  registry.insert(make_test_requirements("alpha"));
  exareq::serve::Server server(registry, {.workers = 1});
  exareq::serve::SocketServer socket_server(
      server, unique_socket_path("legacymax"), 64);
  EXPECT_EQ(socket_server.max_frame_bytes(), 64u);
  socket_server.start();
  const std::string oversized = "eval alpha flops 64 " + std::string(200, '1');
  EXPECT_EQ(exareq::serve::query_over_socket(socket_server.path(), oversized)
                .rfind("error bad-request", 0),
            0u);
  EXPECT_EQ(exareq::serve::query_over_socket(socket_server.path(),
                                             "eval alpha flops 64 1024")
                .rfind("ok eval ", 0),
            0u);
}

TEST(ShardedFrontEndTest, StatusOverTextAndBinaryAgreeOnShardCount) {
  ShardedServer server(ShardedServerOptions{.shards = 3});
  load_apps(server);
  FrontEnd front(server, FrontEndOptions{
                             .unix_path = unique_socket_path("status")});
  front.start();
  const std::string text = exareq::serve::query_over_socket(
      front.options().unix_path, "status");
  EXPECT_NE(text.find("shards=3"), std::string::npos);
  Request status;
  status.kind = RequestKind::kStatus;
  const auto lines = exareq::serve::query_batch_over_socket(
      front.options().unix_path, {status});
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("shards=3"), std::string::npos);
}
