#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace exareq::serve {
namespace {

TEST(ServeProtocolTest, ParsesEval) {
  const Request r = parse_request("eval LULESH flops 64 1024");
  EXPECT_EQ(r.kind, RequestKind::kEval);
  EXPECT_EQ(r.app, "LULESH");
  EXPECT_EQ(r.metric, "flops");
  EXPECT_EQ(r.p, 64.0);
  EXPECT_EQ(r.n, 1024.0);
}

TEST(ServeProtocolTest, ParsesInvertUpgradeStrawmanStatus) {
  const Request invert = parse_request("invert MILC 65536 2147483648");
  EXPECT_EQ(invert.kind, RequestKind::kInvert);
  EXPECT_EQ(invert.processes, 65536.0);
  EXPECT_EQ(invert.memory_per_process, 2147483648.0);

  const Request upgrade = parse_request("upgrade MILC 1024 1e9");
  EXPECT_EQ(upgrade.kind, RequestKind::kUpgrade);
  EXPECT_EQ(upgrade.memory_per_process, 1e9);

  const Request strawman = parse_request("strawman icoFoam");
  EXPECT_EQ(strawman.kind, RequestKind::kStrawman);
  EXPECT_EQ(strawman.app, "icoFoam");

  const Request status = parse_request("  status  ");
  EXPECT_EQ(status.kind, RequestKind::kStatus);
}

TEST(ServeProtocolTest, RejectsMalformedRequests) {
  EXPECT_THROW(parse_request(""), exareq::InvalidArgument);
  EXPECT_THROW(parse_request("frobnicate x"), exareq::InvalidArgument);
  EXPECT_THROW(parse_request("eval LULESH flops 64"), exareq::InvalidArgument);
  EXPECT_THROW(parse_request("eval LULESH watts 64 1024"),
               exareq::InvalidArgument);
  EXPECT_THROW(parse_request("eval LULESH flops sixty 1024"),
               exareq::InvalidArgument);
  EXPECT_THROW(parse_request("eval LULESH flops 0.5 1024"),
               exareq::InvalidArgument);
  EXPECT_THROW(parse_request("invert MILC 64 0"), exareq::InvalidArgument);
  EXPECT_THROW(parse_request("status extra"), exareq::InvalidArgument);
}

TEST(ServeProtocolTest, CanonicalKeyUnifiesSpellings) {
  const Request a = parse_request("eval LULESH flops 64 1024");
  const Request b = parse_request("eval lulesh flops 64.0 1.024e3");
  EXPECT_EQ(canonical_key(a), canonical_key(b));

  const Request c = parse_request("eval LULESH flops 64 1025");
  EXPECT_NE(canonical_key(a), canonical_key(c));

  const Request d = parse_request("eval LULESH footprint 64 1024");
  EXPECT_NE(canonical_key(a), canonical_key(d));

  // invert and upgrade share their numeric fields but not their kind.
  const Request e = parse_request("invert MILC 64 1e9");
  const Request f = parse_request("upgrade MILC 64 1e9");
  EXPECT_NE(canonical_key(e), canonical_key(f));
}

TEST(ServeProtocolTest, StatusIsNotCacheable) {
  EXPECT_FALSE(cacheable(parse_request("status")));
  EXPECT_TRUE(cacheable(parse_request("strawman MILC")));
}

TEST(ServeProtocolTest, ResponsesAreSingleLines) {
  EXPECT_EQ(ok_response("eval 42"), "ok eval 42");
  const std::string error =
      error_response("bad-request", "first line\nsecond line");
  EXPECT_EQ(error, "error bad-request: first line second line");
  EXPECT_EQ(error.find('\n'), std::string::npos);
}

TEST(ServeProtocolTest, RenderValueRoundTripsDoubles) {
  for (const double value : {1.0, 1.0 / 3.0, 2147483648.0, 6.02e23, 1e-12}) {
    EXPECT_EQ(std::stod(render_value(value)), value);
  }
}

TEST(ServeProtocolTest, RejectsUnknownCommandWithExpectedList) {
  try {
    parse_request("evaal lulesh flops 4 64");
    FAIL() << "unknown command accepted";
  } catch (const exareq::InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("unknown request 'evaal'"), std::string::npos) << what;
    EXPECT_NE(what.find("eval|invert|upgrade|strawman|status"),
              std::string::npos)
        << what;
  }
}

TEST(ServeProtocolTest, ParsesIngestWithRawCsvPayload) {
  const Request r = parse_request(
      "ingest LULESH p,n,bytes_used,flops,loads_stores,"
      "bytes_sent_received,stack_distance;4,64,1,2,3,4,5  ");
  EXPECT_EQ(r.kind, RequestKind::kIngest);
  EXPECT_EQ(r.app, "LULESH");
  // The payload is the raw rest-of-line (trailing whitespace trimmed);
  // validation happens in the online layer, not the protocol parser.
  EXPECT_EQ(r.payload,
            "p,n,bytes_used,flops,loads_stores,"
            "bytes_sent_received,stack_distance;4,64,1,2,3,4,5");
}

TEST(ServeProtocolTest, RejectsIngestWithoutAppOrPayload) {
  EXPECT_THROW(parse_request("ingest"), exareq::InvalidArgument);
  EXPECT_THROW(parse_request("ingest lulesh"), exareq::InvalidArgument);
  EXPECT_THROW(parse_request("ingest lulesh   "), exareq::InvalidArgument);
  try {
    parse_request("ingest lulesh ");
    FAIL() << "empty payload accepted";
  } catch (const exareq::InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("payload"), std::string::npos)
        << error.what();
  }
}

TEST(ServeProtocolTest, IngestIsNotCacheableAndKeysByApp) {
  const Request a = parse_request("ingest LULESH p,n;4,64");
  EXPECT_FALSE(cacheable(a));
  const Request b = parse_request("ingest lulesh p,n;8,128");
  // The cache key unifies app spellings; ingest bypasses the cache anyway.
  EXPECT_EQ(canonical_key(a), canonical_key(b));
}

TEST(ServeFrameDecoderTest, SplitsCompleteFramesAndBuffersTheTail) {
  FrameDecoder decoder;
  const auto frames = decoder.feed("status\neval a flops 1 2\npartial");
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], "status");
  EXPECT_EQ(frames[1], "eval a flops 1 2");
  // The truncated frame stays buffered until the terminator arrives.
  EXPECT_TRUE(decoder.has_partial_frame());
  EXPECT_EQ(decoder.partial_bytes(), 7u);
  const auto rest = decoder.feed(" frame\n");
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], "partial frame");
  EXPECT_FALSE(decoder.has_partial_frame());
}

TEST(ServeFrameDecoderTest, StripsCrAndSkipsEmptyFrames) {
  FrameDecoder decoder;
  const auto frames = decoder.feed("status\r\n\r\n\nstrawman milc\n");
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], "status");
  EXPECT_EQ(frames[1], "strawman milc");
}

TEST(ServeFrameDecoderTest, TruncatedFrameIsNeverDelivered) {
  // A connection closing mid-frame simply drops the partial line; the
  // decoder must not have handed it out as a request.
  FrameDecoder decoder;
  EXPECT_TRUE(decoder.feed("eval lulesh floo").empty());
  EXPECT_TRUE(decoder.has_partial_frame());
}

TEST(ServeFrameDecoderTest, OversizedFrameThrowsAndDropsPendingBytes) {
  FrameDecoder decoder(16);
  EXPECT_THROW(decoder.feed(std::string(17, 'x')), exareq::InvalidArgument);
  // The decoder stays usable after rejecting the hostile frame.
  EXPECT_FALSE(decoder.has_partial_frame());
  const auto frames = decoder.feed("status\n");
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], "status");
}

TEST(ServeFrameDecoderTest, OversizedFrameDetectedAcrossChunks) {
  FrameDecoder decoder(16);
  EXPECT_TRUE(decoder.feed(std::string(10, 'a')).empty());
  EXPECT_THROW(decoder.feed(std::string(10, 'b')), exareq::InvalidArgument);
  // Also when the terminator does arrive but the completed frame is too
  // large for the bound.
  FrameDecoder other(16);
  EXPECT_THROW(other.feed(std::string(17, 'c') + "\n"),
               exareq::InvalidArgument);
}

TEST(ServeFrameDecoderTest, OversizedIngestFrameIsRejectedStructurally) {
  // An ingest line carrying an unbounded CSV payload must hit the frame
  // bound before the payload is ever buffered whole.
  FrameDecoder decoder(64);
  std::string line = "ingest app p,n";
  while (line.size() <= 80) line += ";4,64";
  try {
    decoder.feed(line + "\n");
    FAIL() << "oversized ingest frame accepted";
  } catch (const exareq::InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("frame"), std::string::npos)
        << error.what();
  }
  // The decoder recovers: the next well-formed request still parses.
  EXPECT_FALSE(decoder.has_partial_frame());
  const auto frames = decoder.feed("status\n");
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], "status");
}

TEST(ServeFrameDecoderTest, FrameOfExactlyMaxBytesIsAccepted) {
  FrameDecoder decoder(8);
  const auto frames = decoder.feed("12345678\n");
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], "12345678");
}

}  // namespace
}  // namespace exareq::serve
