// Differential oracle (3): run_campaign on a random grid at a random
// thread count vs the strictly serial run, compared through the persisted
// CSV artifact — the byte-level reproducibility contract of the parallel
// campaign engine. Each case also round-trips the CSV through
// CampaignData::from_csv and re-serializes it, so the persistence layer is
// covered by the same 200 random grids.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/application.hpp"
#include "pipeline/campaign.hpp"
#include "support/csv.hpp"
#include "testkit/gen.hpp"
#include "testkit/oracle.hpp"
#include "testkit/property.hpp"
#include "testkit/shrink.hpp"

namespace exareq::testkit {
namespace {

// A randomly drawn campaign: application, small grid, locality and thread
// configuration. Grids stay tiny (2x2) because each case runs the full
// measurement twice; the randomness lives in which points are measured.
struct CampaignCase {
  apps::AppId app = apps::AppId::kMilc;
  std::vector<int> process_counts;
  std::vector<std::int64_t> problem_sizes;
  bool locality = true;
  std::size_t threads = 2;

  pipeline::CampaignConfig config(std::size_t thread_count) const {
    pipeline::CampaignConfig config;
    config.process_counts = process_counts;
    config.problem_sizes = problem_sizes;
    config.locality.enabled = locality;
    config.threads = thread_count;
    return config;
  }

  std::string describe() const {
    std::string text = "campaign{" + apps::app_name(app) + "; p";
    for (int p : process_counts) text += " " + std::to_string(p);
    text += "; n";
    for (std::int64_t n : problem_sizes) text += " " + std::to_string(n);
    text += locality ? "; locality on" : "; locality off";
    text += "; threads " + std::to_string(threads) + "}";
    return text;
  }
};

Gen<CampaignCase> campaign_case_gen() {
  return Gen<CampaignCase>([](Rng& rng) {
    CampaignCase campaign;
    const std::vector<apps::AppId> ids = apps::all_app_ids();
    campaign.app = ids[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1))];
    for (const std::int64_t p : distinct_sorted_ints(2, 9, 2)(rng)) {
      campaign.process_counts.push_back(static_cast<int>(p));
    }
    const std::int64_t min_n =
        apps::application(campaign.app).min_problem_size();
    for (const std::int64_t step : distinct_sorted_ints(1, 4, 2)(rng)) {
      campaign.problem_sizes.push_back(min_n * step);
    }
    campaign.locality = rng.next_double() < 0.7;
    campaign.threads = static_cast<std::size_t>(rng.uniform_int(2, 8));
    return campaign;
  });
}

Shrinker<CampaignCase> campaign_case_shrinker() {
  return [](const CampaignCase& campaign) {
    std::vector<CampaignCase> candidates;
    if (campaign.locality) {
      CampaignCase no_locality = campaign;
      no_locality.locality = false;
      candidates.push_back(std::move(no_locality));
    }
    if (campaign.threads > 2) {
      CampaignCase fewer = campaign;
      fewer.threads = 2;
      candidates.push_back(std::move(fewer));
    }
    if (campaign.process_counts.size() > 1) {
      CampaignCase narrower = campaign;
      narrower.process_counts.pop_back();
      candidates.push_back(std::move(narrower));
    }
    if (campaign.problem_sizes.size() > 1) {
      CampaignCase smaller = campaign;
      smaller.problem_sizes.pop_back();
      candidates.push_back(std::move(smaller));
    }
    return candidates;
  };
}

std::string campaign_csv(const CampaignCase& campaign, std::size_t threads) {
  return pipeline::run_campaign(apps::application(campaign.app),
                                campaign.config(threads))
      .to_csv()
      .to_string();
}

TEST(PropertyCampaignOracleTest, ThreadedCampaignCsvMatchesSerial) {
  const PropertyConfig config =
      property_config("campaign-threads-differential", 200);
  DiffOracle<CampaignCase, std::string> oracle;
  oracle.fast = [](const CampaignCase& campaign) {
    return campaign_csv(campaign, campaign.threads);
  };
  oracle.reference = [](const CampaignCase& campaign) {
    return campaign_csv(campaign, 1);
  };
  oracle.diff = text_diff;
  const auto result = check_differential(config, campaign_case_gen(),
                                         campaign_case_shrinker(), oracle);
  EXPECT_TRUE(result.passed()) << result.report(
      [](const CampaignCase& campaign) { return campaign.describe(); });
}

TEST(PropertyCampaignOracleTest, CsvRoundTripIsLossless) {
  // from_csv(to_csv(data)) must re-serialize to the identical bytes — the
  // persistence contract the serve registry and the CLI's --from-file
  // analysis path both rely on.
  const PropertyConfig config = property_config("campaign-csv-roundtrip", 200);
  const auto property = [](const CampaignCase& campaign) -> std::string {
    const pipeline::CampaignData data = pipeline::run_campaign(
        apps::application(campaign.app), campaign.config(campaign.threads));
    const std::string first = data.to_csv().to_string();
    const pipeline::CampaignData reparsed = pipeline::CampaignData::from_csv(
        exareq::CsvDocument::parse_string(first), data.app_name);
    const std::string second = reparsed.to_csv().to_string();
    return text_diff(second, first);
  };
  const auto result = check(config, campaign_case_gen(),
                            campaign_case_shrinker(),
                            Property<CampaignCase>(property));
  EXPECT_TRUE(result.passed()) << result.report(
      [](const CampaignCase& campaign) { return campaign.describe(); });
}

}  // namespace
}  // namespace exareq::testkit
