// Resume-determinism oracle: a campaign killed at a random completed-point
// count (via the checkpoint after_record hook), resumed — possibly killed
// and resumed again, possibly with its log tail truncated between runs —
// must produce a CSV byte-identical to a single uninterrupted run. This is
// the crash-safety contract of pipeline/checkpoint.{hpp,cpp}: corruption
// and kills may cost re-measured work, never bytes of the final artifact.
//
// The companion fuzz suite mutates the on-disk formats themselves: the
// manifest parser and the trace container must accept or throw
// exareq::Error, and the record scanner must never throw at all — damage
// only shortens its result.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "apps/application.hpp"
#include "memtrace/compressed_trace.hpp"
#include "pipeline/campaign.hpp"
#include "support/error.hpp"
#include "testkit/domain_gen.hpp"
#include "testkit/fuzz.hpp"
#include "testkit/gen.hpp"
#include "testkit/oracle.hpp"
#include "testkit/property.hpp"
#include "testkit/shrink.hpp"

namespace exareq::testkit {
namespace {

/// A randomly drawn kill/resume schedule over a small campaign grid.
struct ResumeCase {
  apps::AppId app = apps::AppId::kMilc;
  std::vector<int> process_counts;
  std::vector<std::int64_t> problem_sizes;
  bool locality = true;
  std::size_t threads = 1;
  /// Record counts at which successive runs are killed; a count beyond the
  /// grid size never fires, so that run completes (making the following
  /// resume a resume-with-zero-remaining). Empty = no kill at all.
  std::vector<std::size_t> kill_after;
  /// Bytes chopped off the record log before the final resume (tail
  /// truncation, as after a crash mid-append).
  std::size_t truncate_tail = 0;

  std::size_t slot_count() const {
    return process_counts.size() * problem_sizes.size();
  }

  pipeline::CampaignConfig config() const {
    pipeline::CampaignConfig config;
    config.process_counts = process_counts;
    config.problem_sizes = problem_sizes;
    config.locality.enabled = locality;
    config.threads = threads;
    return config;
  }

  std::string describe() const {
    std::string text = "resume{" + apps::app_name(app) + "; p";
    for (int p : process_counts) text += " " + std::to_string(p);
    text += "; n";
    for (std::int64_t n : problem_sizes) text += " " + std::to_string(n);
    text += locality ? "; locality on" : "; locality off";
    text += "; threads " + std::to_string(threads) + "; kills";
    if (kill_after.empty()) text += " none";
    for (std::size_t k : kill_after) text += " " + std::to_string(k);
    text += "; truncate " + std::to_string(truncate_tail) + "}";
    return text;
  }
};

Gen<ResumeCase> resume_case_gen() {
  return Gen<ResumeCase>([](Rng& rng) {
    ResumeCase c;
    const std::vector<apps::AppId> ids = apps::all_app_ids();
    c.app = ids[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1))];
    for (const std::int64_t p : distinct_sorted_ints(2, 9, 2)(rng)) {
      c.process_counts.push_back(static_cast<int>(p));
    }
    const std::int64_t min_n = apps::application(c.app).min_problem_size();
    for (const std::int64_t step : distinct_sorted_ints(1, 4, 2)(rng)) {
      c.problem_sizes.push_back(min_n * step);
    }
    c.locality = rng.next_double() < 0.7;
    c.threads = static_cast<std::size_t>(rng.uniform_int(1, 4));
    // 0, 1, or 2 kills; thresholds may exceed the grid so a "kill" run can
    // complete and the next resume starts with zero remaining points.
    const std::int64_t kills = rng.uniform_int(0, 2);
    for (std::int64_t i = 0; i < kills; ++i) {
      c.kill_after.push_back(static_cast<std::size_t>(rng.uniform_int(
          1, static_cast<std::int64_t>(c.slot_count()) + 1)));
    }
    if (rng.next_double() < 0.4) {
      c.truncate_tail = static_cast<std::size_t>(rng.uniform_int(1, 24));
    }
    return c;
  });
}

Shrinker<ResumeCase> resume_case_shrinker() {
  return [](const ResumeCase& c) {
    std::vector<ResumeCase> candidates;
    if (!c.kill_after.empty()) {
      ResumeCase fewer_kills = c;
      fewer_kills.kill_after.pop_back();
      candidates.push_back(std::move(fewer_kills));
    }
    if (c.truncate_tail > 0) {
      ResumeCase no_truncate = c;
      no_truncate.truncate_tail = 0;
      candidates.push_back(std::move(no_truncate));
    }
    if (c.locality) {
      ResumeCase no_locality = c;
      no_locality.locality = false;
      candidates.push_back(std::move(no_locality));
    }
    if (c.threads > 1) {
      ResumeCase serial = c;
      serial.threads = 1;
      candidates.push_back(std::move(serial));
    }
    if (c.process_counts.size() > 1) {
      ResumeCase narrower = c;
      narrower.process_counts.pop_back();
      candidates.push_back(std::move(narrower));
    }
    if (c.problem_sizes.size() > 1) {
      ResumeCase smaller = c;
      smaller.problem_sizes.pop_back();
      candidates.push_back(std::move(smaller));
    }
    return candidates;
  };
}

std::atomic<std::uint64_t> dir_counter{0};

/// Plays the kill/resume schedule and returns the final CSV.
std::string killed_and_resumed_csv(const ResumeCase& c) {
  const std::string dir = ::testing::TempDir() + "exareq_resume_oracle_" +
                          std::to_string(dir_counter.fetch_add(1));
  std::filesystem::remove_all(dir);
  pipeline::CampaignConfig config = c.config();
  config.checkpoint.directory = dir;

  const auto& app = apps::application(c.app);
  for (const std::size_t kill : c.kill_after) {
    config.checkpoint.after_record = [kill](std::size_t records) {
      if (records >= kill) throw exareq::Error("oracle kill");
    };
    try {
      pipeline::run_campaign(app, config);
    } catch (const exareq::Error&) {
      // The simulated crash; a threshold beyond the grid never fires and
      // the run completes instead.
    }
    config.checkpoint.resume = true;
  }

  if (c.truncate_tail > 0) {
    const std::string log = pipeline::checkpoint_log_path(dir);
    std::error_code ec;
    const auto size = std::filesystem::file_size(log, ec);
    if (!ec && size > 0) {
      std::filesystem::resize_file(
          log, size - std::min<std::uintmax_t>(size, c.truncate_tail));
    }
    config.checkpoint.resume = true;
  }

  config.checkpoint.after_record = nullptr;
  config.checkpoint.resume = true;
  const std::string csv =
      pipeline::run_campaign(app, config).to_csv().to_string();
  std::filesystem::remove_all(dir);
  return csv;
}

TEST(PropertyResumeOracleTest, KilledAndResumedCsvMatchesSingleShot) {
  const PropertyConfig config = property_config("resume-determinism", 100);
  DiffOracle<ResumeCase, std::string> oracle;
  oracle.fast = killed_and_resumed_csv;
  oracle.reference = [](const ResumeCase& c) {
    return pipeline::run_campaign(apps::application(c.app), c.config())
        .to_csv()
        .to_string();
  };
  oracle.diff = text_diff;
  const auto result = check_differential(config, resume_case_gen(),
                                         resume_case_shrinker(), oracle);
  EXPECT_TRUE(result.passed()) << result.report(
      [](const ResumeCase& c) { return c.describe(); });
}

// ---------------------------------------------------------------------------
// Mutation fuzzing of the on-disk formats.

FuzzConfig fuzz_config() {
  FuzzConfig config;
  config.seed = property_config("fuzz-checkpoint").seed;
  config.iterations = 5000;
  if (const char* seconds = std::getenv("EXAREQ_FUZZ_SECONDS")) {
    config.seconds = std::atof(seconds);
    if (config.seconds > 0.0) config.iterations = 0;
  }
  return config;
}

std::vector<std::string> manifest_corpus() {
  std::vector<std::string> corpus;
  pipeline::CheckpointManifest manifest;
  manifest.app_name = "Kripke";
  manifest.process_counts = {2, 4, 8, 16, 32};
  manifest.problem_sizes = {64, 128, 256};
  corpus.push_back(manifest.serialize());
  manifest.app_name = "MILC";
  manifest.locality_enabled = false;
  manifest.sampler = {64, 8192, 17};
  manifest.min_samples = 5;
  corpus.push_back(manifest.serialize());
  manifest.process_counts = {1};
  manifest.problem_sizes = {1};
  corpus.push_back(manifest.serialize());
  return corpus;
}

TEST(PropertyFuzzCheckpointTest, ManifestParseOrCleanError) {
  const auto outcome = fuzz_strings(
      fuzz_config(), mutated(manifest_corpus()), [](const std::string& input) {
        const pipeline::CheckpointManifest manifest =
            pipeline::CheckpointManifest::parse(input);
        (void)manifest.slot_count();
        (void)manifest.serialize();
      });
  EXPECT_TRUE(outcome.passed()) << outcome.summary();
  EXPECT_GT(outcome.rejected, 0u);
}

std::vector<std::string> record_corpus() {
  pipeline::AppMeasurement m;
  m.processes = 8;
  m.problem_size = 512;
  m.bytes_used = 1e9;
  m.flops = 2e12;
  m.loads_stores = 3e11;
  m.bytes_sent_received = 4e8;
  m.stack_distance = 1234.5;
  m.channels["cg_allreduce"] = {1e8, true, false, false};
  m.channels["halo"] = {2e8, false, false, false};
  std::vector<std::string> corpus;
  corpus.push_back(pipeline::encode_record(0, m));
  std::string log;
  for (std::uint32_t slot = 0; slot < 6; ++slot) {
    m.flops += 1.0;
    log += pipeline::encode_record(slot, m);
  }
  corpus.push_back(log);
  m.channels.clear();
  corpus.push_back(pipeline::encode_record(63, m) +
                   pipeline::encode_record(63, m));
  return corpus;
}

TEST(PropertyFuzzCheckpointTest, RecordScanNeverThrowsOrInventsPoints) {
  // scan_records must hold a stronger contract than parse-or-clean-error:
  // it never throws at all, and whatever it accepts must be a stable,
  // in-range prefix — re-scanning the validated prefix reproduces the same
  // result with nothing dropped (no record beyond the damage can sneak in).
  constexpr std::size_t kSlots = 64;
  const auto outcome = fuzz_strings(
      fuzz_config(), mutated(record_corpus()), [](const std::string& input) {
        const pipeline::CheckpointLoadResult load =
            pipeline::scan_records(input, kSlots);
        if (load.valid_bytes + load.dropped_tail_bytes != input.size()) {
          throw std::logic_error("prefix + tail != input size");
        }
        if (load.slots.size() > load.valid_records) {
          throw std::logic_error("more slots than validated records");
        }
        for (const auto& [slot, measurement] : load.slots) {
          (void)measurement;
          if (slot >= kSlots) throw std::logic_error("slot out of range");
        }
        const pipeline::CheckpointLoadResult again = pipeline::scan_records(
            std::string_view(input).substr(0, load.valid_bytes), kSlots);
        if (again.valid_records != load.valid_records ||
            again.dropped_tail_bytes != 0 ||
            again.slots.size() != load.slots.size()) {
          throw std::logic_error("validated prefix is not stable");
        }
      });
  EXPECT_TRUE(outcome.passed()) << outcome.summary();
  // Mutations must actually reach the damage paths (dropped tails).
  EXPECT_GT(outcome.accepted, 0u);
}

std::vector<std::string> trace_corpus() {
  std::vector<std::string> corpus;
  memtrace::CompressedTrace strided;
  const auto a = strided.register_group("A");
  const auto b = strided.register_group("B");
  for (std::uint64_t i = 0; i < 200; ++i) {
    strided.record(0x1000 + 8 * i, a);
    strided.record(0x90000 + 16 * (i % 13), b);
  }
  corpus.push_back(strided.serialize());
  memtrace::CompressedTrace empty;
  corpus.push_back(empty.serialize());
  memtrace::CompressedTrace wild;
  const auto g = wild.register_group("g");
  for (std::uint64_t i = 0; i < 50; ++i) {
    wild.record(i * 0x123456789ULL, g);
  }
  corpus.push_back(wild.serialize());
  return corpus;
}

TEST(PropertyFuzzCheckpointTest, CompressedTraceParseOrCleanError) {
  const auto outcome = fuzz_strings(
      fuzz_config(), mutated(trace_corpus()), [](const std::string& input) {
        const memtrace::CompressedTrace trace =
            memtrace::CompressedTrace::deserialize(input);
        // Everything that parses must replay without tripping the sink.
        memtrace::AccessTrace replayed;
        trace.replay(replayed);
        if (replayed.size() != trace.size()) {
          throw std::logic_error("replayed access count diverges");
        }
      });
  EXPECT_TRUE(outcome.passed()) << outcome.summary();
  EXPECT_GT(outcome.rejected, 0u);
}

}  // namespace
}  // namespace exareq::testkit
