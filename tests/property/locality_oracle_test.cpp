// Differential oracle (2): the streaming LocalityAnalyzer (production
// TraceSink path, O(distinct addresses) memory, burst-aware querying) vs
// materializing the same access stream into an AccessTrace and replaying it
// through analyze_locality. The two reports must agree field-for-field —
// bit-identical medians, MADs, sample counts, and the weighted median fed
// into requirement modeling — for random structured access patterns across
// random burst-sampler configurations (including exact sampling).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "memtrace/locality.hpp"
#include "memtrace/sampling.hpp"
#include "memtrace/trace.hpp"
#include "testkit/domain_gen.hpp"
#include "testkit/oracle.hpp"
#include "testkit/property.hpp"

namespace exareq::testkit {
namespace {

std::string render(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// Full-precision rendering of every report field, so any divergence
// (including in unreliable groups) shows up in the text diff.
std::string summarize(const memtrace::LocalityReport& report) {
  std::string text = "trace_length " + std::to_string(report.trace_length) +
                     "\ntotal_sampled " + std::to_string(report.total_sampled) +
                     "\nweighted_median " +
                     render(report.weighted_median_stack_distance) + "\n";
  for (const memtrace::GroupLocality& group : report.groups) {
    text += "group " + std::to_string(group.group) + " '" + group.name +
            "' samples " + std::to_string(group.samples) + " sampled " +
            std::to_string(group.sampled_accesses) + " stack " +
            render(group.median_stack_distance) + " reuse " +
            render(group.median_reuse_distance) + " mad " +
            render(group.stack_distance_mad) + " est " +
            render(group.estimated_accesses) +
            (group.reliable ? " reliable" : " unreliable") + "\n";
  }
  return text;
}

std::string streamed_report(const AccessPattern& pattern) {
  memtrace::LocalityAnalyzer analyzer(pattern.config);
  pattern.emit(analyzer);
  return summarize(
      analyzer.finish(static_cast<double>(analyzer.recorded())));
}

std::string materialized_report(const AccessPattern& pattern) {
  memtrace::AccessTrace trace;
  pattern.emit(trace);
  return summarize(analyze_locality(trace, pattern.config,
                                    static_cast<double>(trace.size())));
}

TEST(PropertyLocalityOracleTest, StreamingMatchesMaterializedReplay) {
  const PropertyConfig config =
      property_config("locality-streaming-differential", 200);
  DiffOracle<AccessPattern, std::string> oracle;
  oracle.fast = streamed_report;
  oracle.reference = materialized_report;
  oracle.diff = text_diff;
  const auto result = check_differential(config, access_pattern_gen(),
                                         access_pattern_shrinker(), oracle);
  EXPECT_TRUE(result.passed()) << result.report(
      [](const AccessPattern& pattern) { return pattern.describe(); });
}

TEST(PropertyLocalityOracleTest, ExactSamplerAgreesToo) {
  // SamplerConfig::exact() disables burst skipping entirely — the analyzer
  // queries at every position. The burst-aware skip logic must be a strict
  // no-op in this mode.
  const PropertyConfig config =
      property_config("locality-exact-sampler-differential", 200);
  const Gen<AccessPattern> gen =
      access_pattern_gen(8000).map([](AccessPattern pattern) {
        pattern.config.sampler = memtrace::SamplerConfig::exact();
        pattern.config.min_samples = 1;
        return pattern;
      });
  DiffOracle<AccessPattern, std::string> oracle;
  oracle.fast = streamed_report;
  oracle.reference = materialized_report;
  oracle.diff = text_diff;
  const auto result =
      check_differential(config, gen, access_pattern_shrinker(), oracle);
  EXPECT_TRUE(result.passed()) << result.report(
      [](const AccessPattern& pattern) { return pattern.describe(); });
}

TEST(PropertyLocalityOracleTest, ReplayedTraceEqualsDirectEmission) {
  // AccessTrace::replay must reproduce the recorded stream exactly:
  // replaying a materialized trace into a second trace yields the same
  // accesses and group table.
  const PropertyConfig config = property_config("trace-replay-roundtrip", 200);
  const auto property = [](const AccessPattern& pattern) -> std::string {
    memtrace::AccessTrace direct;
    pattern.emit(direct);
    memtrace::AccessTrace replayed;
    direct.replay(replayed);
    if (direct.size() != replayed.size()) {
      return "replay changed the trace length";
    }
    if (direct.group_count() != replayed.group_count()) {
      return "replay changed the group count";
    }
    for (std::size_t i = 0; i < direct.size(); ++i) {
      if (direct.accesses()[i].address != replayed.accesses()[i].address ||
          direct.accesses()[i].group != replayed.accesses()[i].group) {
        return "replay diverges at access " + std::to_string(i);
      }
    }
    return {};
  };
  const auto result = check(config, access_pattern_gen(4000),
                            access_pattern_shrinker(), Property<AccessPattern>(property));
  EXPECT_TRUE(result.passed()) << result.report(
      [](const AccessPattern& pattern) { return pattern.describe(); });
}

}  // namespace
}  // namespace exareq::testkit
