// Suite-v2 oracles, three contracts for the grown workload suite:
//
//  1. Recovery: for each new proxy, a campaign on a seed-varied grid fitted
//     through the production pipeline must recover the planted signature
//     its header documents — checked as growth ratios of the *fitted*
//     models at extrapolated (p, n) coordinates, the quantity co-design
//     actually consumes.
//  2. Locality: the streaming LocalityAnalyzer and the materialize-then-
//     analyze path must agree field-for-field on the real access pattern
//     of every one of the nine proxies, across random problem sizes and
//     burst-sampler configurations.
//  3. Bundle format: a fitted suite-v2 bundle carries the io_bytes and
//     energy_proxy channels through serialize -> parse -> ModelRegistry
//     bit-identically, declares format 2, and coexists with legacy
//     format-1 bundles (loadable, optional channels absent) while future
//     formats are rejected.
//
// Suites are prefixed "Suite" so the TSan preset's test filter picks them
// up; the CI property job replays all of them under the 1-5 seed matrix.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "apps/application.hpp"
#include "codesign/requirements.hpp"
#include "memtrace/locality.hpp"
#include "memtrace/trace.hpp"
#include "model/serialize.hpp"
#include "pipeline/campaign.hpp"
#include "pipeline/codesign_bridge.hpp"
#include "pipeline/serve_bridge.hpp"
#include "serve/registry.hpp"
#include "support/error.hpp"
#include "testkit/gen.hpp"
#include "testkit/property.hpp"

namespace exareq::testkit {
namespace {

// --- 1. planted-signature recovery on seed-varied grids ---------------------

// A randomly drawn measurement grid. Axes keep >= 5 distinct values (the
// fitter's grid rule) and geometric spacing, so log terms stay separable;
// the randomness lives in which processor ladder and size decade the fit
// sees — the fitted signature must not depend on that choice.
struct SuiteGrid {
  std::vector<int> processes;
  std::vector<std::int64_t> sizes;

  std::string describe() const {
    std::string text = "grid{p";
    for (int p : processes) text += " " + std::to_string(p);
    text += "; n";
    for (std::int64_t n : sizes) text += " " + std::to_string(n);
    return text + "}";
  }
};

Gen<SuiteGrid> suite_grid_gen() {
  return Gen<SuiteGrid>([](Rng& rng) {
    SuiteGrid grid;
    const std::vector<std::vector<int>> ladders = {
        {2, 4, 8, 16, 32}, {4, 8, 16, 32, 64}, {2, 4, 8, 16, 32, 64}};
    grid.processes = ladders[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ladders.size()) - 1))];
    const std::int64_t base = 32 * rng.uniform_int(1, 3);
    for (const std::int64_t step : {1, 2, 4, 8, 16}) {
      grid.sizes.push_back(base * step);
    }
    return grid;
  });
}

codesign::AppRequirements fit_on_grid(apps::AppId id, const SuiteGrid& grid) {
  pipeline::CampaignConfig config;
  config.process_counts = grid.processes;
  config.problem_sizes = grid.sizes;
  config.threads = 4;
  const pipeline::CampaignData data =
      pipeline::run_campaign(apps::application(id), config);
  return pipeline::to_requirements(pipeline::model_requirements(data));
}

// Growth ratios at extrapolated coordinates (well outside every generated
// grid): quadrupling n at fixed p, and quadrupling p at fixed n.
constexpr double kBaseP = 256.0;
constexpr double kBaseN = 4096.0;
double ratio_n(const model::Model& m) {
  return m.evaluate2(kBaseP, 4.0 * kBaseN) / m.evaluate2(kBaseP, kBaseN);
}
double ratio_p(const model::Model& m) {
  return m.evaluate2(4.0 * kBaseP, kBaseN) / m.evaluate2(kBaseP, kBaseN);
}

std::string check_ratio(const std::string& what, double actual,
                        double expected, double tolerance) {
  if (std::abs(actual - expected) <= tolerance * expected) return "";
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "%s = %.4g, want %.4g within %.0f%%", what.c_str(), actual,
                expected, tolerance * 100.0);
  return buffer;
}

using RecoveryProperty = std::string (*)(const codesign::AppRequirements&);

void run_recovery(apps::AppId id, const std::string& name,
                  RecoveryProperty property) {
  // Each case fits a full campaign, so the case count stays small; the CI
  // seed matrix (1-5) multiplies the grid coverage across jobs.
  const PropertyConfig config = property_config(name, 4);
  const auto result = check<SuiteGrid>(
      config, suite_grid_gen(), {},
      [&](const SuiteGrid& grid) { return property(fit_on_grid(id, grid)); });
  EXPECT_TRUE(result.passed()) << result.report(
      [](const SuiteGrid& grid) { return grid.describe(); });
}

TEST(SuiteRecoveryOracleTest, Stencil3DSignature) {
  run_recovery(
      apps::AppId::kStencil3D, "suite-recovery-stencil3d",
      +[](const codesign::AppRequirements& req) -> std::string {
        // flops ~ n, p-independent; footprint ~ n; stack ~ n^(2/3); no I/O.
        std::string failure = check_ratio("flops 4x n", ratio_n(req.flops),
                                          4.0, 0.15);
        if (failure.empty()) {
          failure = check_ratio("flops 4x p", ratio_p(req.flops), 1.0, 0.10);
        }
        if (failure.empty()) {
          failure = check_ratio("footprint 4x n", ratio_n(req.footprint), 4.0,
                                0.15);
        }
        if (failure.empty()) {
          const double stack_ratio =
              req.stack_distance.evaluate1(4.0 * kBaseN) /
              req.stack_distance.evaluate1(kBaseN);
          failure = check_ratio("stack 4x n", stack_ratio,
                                std::pow(4.0, 2.0 / 3.0), 0.30);
        }
        if (failure.empty() && req.io_bytes.has_value() &&
            std::abs(req.io_bytes->evaluate2(kBaseP, kBaseN)) >= 1.0) {
          failure = "io_bytes model of a no-I/O app is not ~0";
        }
        return failure;
      });
}

TEST(SuiteRecoveryOracleTest, GraphBfsSignature) {
  run_recovery(
      apps::AppId::kGraphBfs, "suite-recovery-graphbfs",
      +[](const codesign::AppRequirements& req) -> std::string {
        // flops ~ n log n log p; stack ~ n (the no-locality pathology).
        const double log_n_growth =
            4.0 * std::log2(4.0 * kBaseN) / std::log2(kBaseN);
        std::string failure = check_ratio("flops 4x n", ratio_n(req.flops),
                                          log_n_growth, 0.15);
        if (failure.empty()) {
          const double log_p_growth =
              std::log2(4.0 * kBaseP) / std::log2(kBaseP);
          failure = check_ratio("flops 4x p", ratio_p(req.flops),
                                log_p_growth, 0.10);
        }
        if (failure.empty()) {
          const double stack_ratio =
              req.stack_distance.evaluate1(4.0 * kBaseN) /
              req.stack_distance.evaluate1(kBaseN);
          failure = check_ratio("stack 4x n", stack_ratio, 4.0, 0.30);
        }
        return failure;
      });
}

TEST(SuiteRecoveryOracleTest, MiniDnnSignature) {
  run_recovery(
      apps::AppId::kMiniDnn, "suite-recovery-minidnn",
      +[](const codesign::AppRequirements& req) -> std::string {
        // flops ~ n^1.5; comm ~ sqrt(n) * Alltoall(p); stack constant.
        std::string failure =
            check_ratio("flops 4x n", ratio_n(req.flops), 8.0, 0.15);
        if (failure.empty()) {
          // Alltoall(p) = 2s(p-1): quadrupling p scales the dominant term
          // by (4p-1)/(p-1).
          const double alltoall_growth =
              (4.0 * kBaseP - 1.0) / (kBaseP - 1.0);
          failure = check_ratio("comm 4x p", ratio_p(req.comm_bytes),
                                alltoall_growth, 0.15);
        }
        if (failure.empty()) {
          const double stack_ratio =
              req.stack_distance.evaluate1(4.0 * kBaseN) /
              req.stack_distance.evaluate1(kBaseN);
          failure = check_ratio("stack 4x n (tile-bound)", stack_ratio, 1.0,
                                0.10);
        }
        return failure;
      });
}

TEST(SuiteRecoveryOracleTest, CheckpointIoSignature) {
  run_recovery(
      apps::AppId::kCheckpointIo, "suite-recovery-checkpointio",
      +[](const codesign::AppRequirements& req) -> std::string {
        if (!req.io_bytes.has_value()) return "io_bytes model missing";
        if (!req.energy_proxy.has_value()) return "energy_proxy model missing";
        // io ~ (8n + manifest) * sqrt(p): quadrupling p doubles it exactly;
        // quadrupling n scales it by (8*4n + m)/(8n + m) < 4.
        std::string failure =
            check_ratio("io 4x p", ratio_p(*req.io_bytes), 2.0, 0.10);
        if (failure.empty()) {
          const double manifest = 4096.0;
          const double n_growth = (8.0 * 4.0 * kBaseN + manifest) /
                                  (8.0 * kBaseN + manifest);
          failure = check_ratio("io 4x n", ratio_n(*req.io_bytes), n_growth,
                                0.15);
        }
        if (failure.empty()) {
          // The energy proxy inherits the I/O channel's sqrt(p) coupling —
          // at 1 nJ/byte the checkpoint traffic dominates the other terms.
          failure = check_ratio("energy 4x p", ratio_p(*req.energy_proxy),
                                2.0, 0.15);
        }
        return failure;
      });
}

// --- 2. streamed vs materialized locality on the real proxy traces ----------

struct AppTraceCase {
  apps::AppId app = apps::AppId::kStencil3D;
  std::int64_t n = 64;
  memtrace::LocalityConfig config;

  std::string describe() const {
    return "trace{" + apps::app_name(app) + "; n " + std::to_string(n) +
           "; burst " + std::to_string(config.sampler.burst_length) + "/" +
           std::to_string(config.sampler.period) + " offset " +
           std::to_string(config.sampler.offset) + "; min_samples " +
           std::to_string(config.min_samples) + "}";
  }
};

Gen<AppTraceCase> app_trace_case_gen() {
  return Gen<AppTraceCase>([](Rng& rng) {
    AppTraceCase item;
    const std::vector<apps::AppId> ids = apps::all_app_ids();
    item.app = ids[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1))];
    item.n = rng.uniform_int(32, 4096);
    if (rng.next_double() < 0.2) {
      item.config.sampler = memtrace::SamplerConfig::exact();
    } else {
      const auto burst =
          static_cast<std::uint64_t>(rng.uniform_int(1, 128));
      item.config.sampler.burst_length = burst;
      item.config.sampler.period =
          burst * static_cast<std::uint64_t>(rng.uniform_int(1, 16));
      item.config.sampler.offset =
          static_cast<std::uint64_t>(rng.uniform_int(0, 64));
    }
    item.config.min_samples =
        static_cast<std::size_t>(rng.uniform_int(1, 200));
    return item;
  });
}

std::string render(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// Full-precision rendering of every report field, so any divergence shows
// up in the comparison.
std::string summarize(const memtrace::LocalityReport& report) {
  std::string text = "trace_length " + std::to_string(report.trace_length) +
                     "\ntotal_sampled " + std::to_string(report.total_sampled) +
                     "\nweighted_median " +
                     render(report.weighted_median_stack_distance) + "\n";
  for (const memtrace::GroupLocality& group : report.groups) {
    text += "group " + std::to_string(group.group) + " '" + group.name +
            "' samples " + std::to_string(group.samples) + " sampled " +
            std::to_string(group.sampled_accesses) + " stack " +
            render(group.median_stack_distance) + " reuse " +
            render(group.median_reuse_distance) + " mad " +
            render(group.stack_distance_mad) + " est " +
            render(group.estimated_accesses) +
            (group.reliable ? " reliable" : " unreliable") + "\n";
  }
  return text;
}

TEST(SuiteLocalityOracleTest, StreamingMatchesMaterializedForAllNineApps) {
  const PropertyConfig config =
      property_config("suite-locality-differential", 120);
  const auto result = check<AppTraceCase>(
      config, app_trace_case_gen(), {},
      [](const AppTraceCase& item) -> std::string {
        const apps::Application& app = apps::application(item.app);

        memtrace::LocalityAnalyzer analyzer(item.config);
        app.trace_locality(item.n, analyzer);
        const std::string streamed = summarize(
            analyzer.finish(static_cast<double>(analyzer.recorded())));

        memtrace::AccessTrace trace;
        app.trace_locality(item.n, trace);
        const std::string materialized = summarize(analyze_locality(
            trace, item.config, static_cast<double>(trace.size())));

        if (streamed == materialized) return "";
        return "streamed report diverges:\n" + streamed + "vs materialized:\n" +
               materialized;
      });
  EXPECT_TRUE(result.passed()) << result.report(
      [](const AppTraceCase& item) { return item.describe(); });
}

// --- 3. bundle format: suite channels survive the serving path --------------

class SuiteBundleFormatTest : public ::testing::Test {
 protected:
  static std::string temp_path(const std::string& stem) {
    return "/tmp/exareq_suite_bundle_" + stem + "_" +
           std::to_string(::getpid()) + ".models";
  }

  // One fitted CheckpointIO bundle shared by the tests (fitting is the
  // expensive part; every test only reads it).
  static const model::ModelBundle& fitted_bundle() {
    static const model::ModelBundle bundle = [] {
      pipeline::CampaignConfig config;
      config.process_counts = {2, 4, 8, 16, 32};
      config.problem_sizes = {16, 32, 64, 128, 256};
      config.threads = 4;
      const pipeline::CampaignData data = pipeline::run_campaign(
          apps::application(apps::AppId::kCheckpointIo), config);
      return pipeline::to_model_bundle(pipeline::model_requirements(data));
    }();
    return bundle;
  }
};

TEST_F(SuiteBundleFormatTest, FittedBundleDeclaresFormatTwoWithSuiteChannels) {
  const model::ModelBundle& bundle = fitted_bundle();
  EXPECT_EQ(bundle.format_version, model::ModelBundle::kCurrentFormatVersion);
  const std::string text = model::serialize_bundle(bundle);
  EXPECT_NE(text.find("# format 2\n"), std::string::npos);
  EXPECT_NE(text.find("# io_bytes\n"), std::string::npos);
  EXPECT_NE(text.find("# energy_proxy\n"), std::string::npos);

  // Bit-exact round trip: parse and re-serialize.
  const model::ModelBundle reparsed = model::parse_bundle(text);
  EXPECT_EQ(reparsed.format_version, bundle.format_version);
  EXPECT_EQ(model::serialize_bundle(reparsed), text);
}

TEST_F(SuiteBundleFormatTest, RegistryLoadsSuiteChannelsBitIdentically) {
  const std::string path = temp_path("v2");
  {
    std::ofstream file(path);
    file << model::serialize_bundle(fitted_bundle());
  }
  serve::ModelRegistry registry;
  registry.load_file(path);
  const auto loaded = registry.get("CheckpointIO");
  ASSERT_NE(loaded, nullptr);
  ASSERT_TRUE(loaded->io_bytes.has_value());
  ASSERT_TRUE(loaded->energy_proxy.has_value());
  for (const auto& [label, m] : fitted_bundle().models) {
    if (label == "io_bytes") {
      EXPECT_EQ(loaded->io_bytes->evaluate2(256.0, 4096.0),
                m.evaluate2(256.0, 4096.0));
    } else if (label == "energy_proxy") {
      EXPECT_EQ(loaded->energy_proxy->evaluate2(256.0, 4096.0),
                m.evaluate2(256.0, 4096.0));
    }
  }
  std::remove(path.c_str());
}

TEST_F(SuiteBundleFormatTest, LegacyFormatOneBundleLoadsWithoutSuiteChannels) {
  // A bundle as written before the suite-v2 channels: core five labels,
  // format 1. It must still load, with the optional channels absent.
  model::ModelBundle legacy = fitted_bundle();
  legacy.format_version = 1;
  std::erase_if(legacy.models, [](const auto& entry) {
    return entry.first == "io_bytes" || entry.first == "energy_proxy";
  });
  const std::string path = temp_path("v1");
  {
    std::ofstream file(path);
    file << model::serialize_bundle(legacy);
  }
  serve::ModelRegistry registry;
  registry.load_file(path);
  const auto loaded = registry.get("CheckpointIO");
  ASSERT_NE(loaded, nullptr);
  EXPECT_FALSE(loaded->io_bytes.has_value());
  EXPECT_FALSE(loaded->energy_proxy.has_value());
  std::remove(path.c_str());
}

TEST_F(SuiteBundleFormatTest, FutureFormatIsRejected) {
  std::string text = model::serialize_bundle(fitted_bundle());
  const std::string current =
      "# format " +
      std::to_string(model::ModelBundle::kCurrentFormatVersion) + "\n";
  const std::string future =
      "# format " +
      std::to_string(model::ModelBundle::kCurrentFormatVersion + 1) + "\n";
  const auto at = text.find(current);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, current.size(), future);
  EXPECT_THROW(model::parse_bundle(text), exareq::InvalidArgument);
}

}  // namespace
}  // namespace exareq::testkit
