// Differential oracle (4): the serving stack — ModelRegistry + sharded LRU
// result cache + QueryEngine — vs the uncached one-shot path over the same
// planted requirement bundle. Every served response (eval, invert, upgrade,
// strawman, including `error ...` responses for infeasible queries) must be
// byte-identical to computing the answer fresh, and a cache hit must be
// byte-identical to the miss that populated it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "codesign/requirements.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/query_engine.hpp"
#include "serve/registry.hpp"
#include "testkit/domain_gen.hpp"
#include "testkit/gen.hpp"
#include "testkit/oracle.hpp"
#include "testkit/property.hpp"
#include "testkit/shrink.hpp"

namespace exareq::testkit {
namespace {

std::string render(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// One serve case: a planted application bundle plus a batch of request
// lines against it. A batch (not a single line) exercises the cache with
// repeats: the generator intentionally duplicates lines.
struct ServeCase {
  codesign::AppRequirements app;
  std::vector<std::string> lines;

  std::string describe() const {
    std::string text = "serve{" + app.name + ":";
    for (const std::string& line : lines) text += " [" + line + "]";
    return text + "}";
  }
};

Gen<ServeCase> serve_case_gen() {
  return Gen<ServeCase>([](Rng& rng) {
    ServeCase serve_case;
    serve_case.app = planted_requirements_gen("planted")(rng);
    static const std::vector<std::string> metrics = {
        "footprint", "flops", "comm_bytes", "loads_stores", "stack_distance"};
    const auto request_line = [&rng]() -> std::string {
      const double p = std::floor(std::exp(rng.uniform(0.0, std::log(1e4))));
      const double n = std::floor(std::exp(rng.uniform(0.0, std::log(1e6))));
      const double memory = std::exp(rng.uniform(std::log(1e3), std::log(1e13)));
      switch (rng.uniform_int(0, 3)) {
        case 0:
          return "eval planted " +
                 metrics[static_cast<std::size_t>(rng.uniform_int(0, 4))] +
                 " " + render(p) + " " + render(n);
        case 1:
          return "invert planted " + render(p) + " " + render(memory);
        case 2:
          return "upgrade planted " + render(p) + " " + render(memory);
        default:
          return "strawman planted";
      }
    };
    const std::int64_t count = rng.uniform_int(1, 6);
    for (std::int64_t i = 0; i < count; ++i) {
      serve_case.lines.push_back(request_line());
      // Duplicate some lines so cache hits answer part of the batch.
      if (rng.next_double() < 0.4) {
        serve_case.lines.push_back(serve_case.lines.back());
      }
    }
    return serve_case;
  });
}

Shrinker<ServeCase> serve_case_shrinker() {
  return [](const ServeCase& serve_case) {
    std::vector<ServeCase> candidates;
    if (serve_case.lines.size() > 1) {
      for (std::size_t i = 0; i < serve_case.lines.size(); ++i) {
        ServeCase fewer = serve_case;
        fewer.lines.erase(fewer.lines.begin() +
                          static_cast<std::ptrdiff_t>(i));
        candidates.push_back(std::move(fewer));
      }
    }
    return candidates;
  };
}

// The production path: registry + sharded cache, every line answered twice
// (miss then hit) — both answers must agree with each other and, through
// the oracle, with the uncached reference.
std::string served_responses(const ServeCase& serve_case) {
  serve::ModelRegistry registry;
  registry.insert(serve_case.app);
  serve::ShardedLruCache cache(256);
  serve::QueryEngine engine(registry, &cache);
  std::string transcript;
  for (const std::string& line : serve_case.lines) {
    const std::string first = engine.answer_line(line);
    const std::string second = engine.answer_line(line);  // cache hit
    if (second != first) {
      return "CACHE INCOHERENT for '" + line + "': miss '" + first +
             "' vs hit '" + second + "'";
    }
    transcript += first + "\n";
  }
  return transcript;
}

// The one-shot path: a fresh uncached engine per line, as the `exareq
// query` CLI bridge computes it.
std::string oneshot_responses(const ServeCase& serve_case) {
  std::string transcript;
  for (const std::string& line : serve_case.lines) {
    serve::ModelRegistry registry;
    registry.insert(serve_case.app);
    serve::QueryEngine engine(registry);
    transcript += engine.answer_line(line) + "\n";
  }
  return transcript;
}

TEST(PropertyServeOracleTest, CachedServingMatchesOneShotComputation) {
  const PropertyConfig config = property_config("serve-differential", 200);
  DiffOracle<ServeCase, std::string> oracle;
  oracle.fast = served_responses;
  oracle.reference = oneshot_responses;
  oracle.diff = text_diff;
  const auto result = check_differential(config, serve_case_gen(),
                                         serve_case_shrinker(), oracle);
  EXPECT_TRUE(result.passed()) << result.report(
      [](const ServeCase& serve_case) { return serve_case.describe(); });
}

TEST(PropertyServeOracleTest, ResponsesAreWellFormed) {
  // Every served line is a single-line `ok ...` or `error <category>: ...`
  // — the framing invariant the socket front end relies on.
  const PropertyConfig config = property_config("serve-response-shape", 200);
  const auto property = [](const ServeCase& serve_case) -> std::string {
    serve::ModelRegistry registry;
    registry.insert(serve_case.app);
    serve::QueryEngine engine(registry);
    for (const std::string& line : serve_case.lines) {
      const std::string response = engine.answer_line(line);
      if (response.find('\n') != std::string::npos) {
        return "multi-line response for '" + line + "'";
      }
      if (response.rfind("ok ", 0) != 0 && response.rfind("error ", 0) != 0) {
        return "unframed response '" + response + "' for '" + line + "'";
      }
    }
    return {};
  };
  const auto result = check(config, serve_case_gen(), serve_case_shrinker(),
                            Property<ServeCase>(property));
  EXPECT_TRUE(result.passed()) << result.report(
      [](const ServeCase& serve_case) { return serve_case.describe(); });
}

}  // namespace
}  // namespace exareq::testkit
