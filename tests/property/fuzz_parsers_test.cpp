// Structured-input fuzz drivers for the three text parsers exposed to
// external bytes: support/csv (campaign files), model/serialize (model
// bundles on disk), and serve/protocol (network request lines + framing).
//
// The contract is parse-or-clean-error: every input is either accepted or
// rejected with exareq::Error — no crash, no foreign exception, no UB. The
// sanitize CI preset runs these drivers under ASan+UBSan, where a memory
// error aborts the test; the `property` CI job additionally runs them as a
// timed smoke step (EXAREQ_FUZZ_SECONDS stretches the budget).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "model/model.hpp"
#include "model/serialize.hpp"
#include "serve/protocol.hpp"
#include "support/csv.hpp"
#include "support/error.hpp"
#include "testkit/fuzz.hpp"
#include "testkit/property.hpp"

namespace exareq::testkit {
namespace {

// Iteration budget for in-suite runs; EXAREQ_FUZZ_SECONDS switches the
// driver to a wall-clock budget (the CI smoke step sets it to 15 s per
// driver for the 60-second smoke).
FuzzConfig fuzz_config() {
  FuzzConfig config;
  config.seed = property_config("fuzz").seed;  // honors EXAREQ_PROPERTY_SEED
  config.iterations = 5000;
  if (const char* seconds = std::getenv("EXAREQ_FUZZ_SECONDS")) {
    config.seconds = std::atof(seconds);
    if (config.seconds > 0.0) config.iterations = 0;
  }
  return config;
}

TEST(PropertyFuzzCsvTest, ParseOrCleanError) {
  const std::vector<std::string> corpus = {
      "p,n,flops\n4,64,1024\n8,128,9000\n",
      "a,b\n\"quoted, cell\",2\n\"multi\nline\",4\n",
      "x\n1\n2\n3\n",
      "name,value\r\nalpha,1e9\r\nbeta,-2.5e-3\r\n",
      "h1,h2,h3\n\"he said \"\"hi\"\"\",2,3\n",
  };
  const auto outcome = fuzz_strings(
      fuzz_config(), mutated(corpus), [](const std::string& input) {
        const exareq::CsvDocument doc = exareq::CsvDocument::parse_string(input);
        // Exercise the numeric accessor on everything that parsed; it must
        // also reject dirty cells with a clean error.
        for (std::size_t row = 0; row < doc.rows().size(); ++row) {
          for (std::size_t column = 0; column < doc.column_count(); ++column) {
            try {
              (void)doc.number_at(row, column);
            } catch (const exareq::InvalidArgument&) {
              // Non-numeric cells are legitimate; only the error type matters.
            }
          }
        }
      });
  EXPECT_TRUE(outcome.passed()) << outcome.summary();
  EXPECT_GT(outcome.rejected, 0u);  // mutations do reach the error paths
}

TEST(PropertyFuzzModelSerializeTest, ParseOrCleanError) {
  // Corpus: genuine serialized bundles, so mutations explore deep branches
  // (factor descriptors, special functions, labels) rather than dying on
  // the first line.
  const model::Model single(
      {"n"}, 42.0,
      {model::Term{3.5, {model::pmnf_factor(0, 1.0, 0.5)}}});
  const model::Model multi(
      {"p", "n"}, 1e6,
      {model::Term{2.0,
                   {model::pmnf_factor(0, 2.0, 0.0),
                    model::pmnf_factor(1, 0.5, 1.0)}},
       model::Term{7.5, {model::special_factor(0, model::SpecialFn::kAllreduce)}}});
  const std::vector<std::string> corpus = {
      model::serialize_model(single),
      model::serialize_model(multi),
      model::serialize_bundle(model::ModelBundle{
          "planted", {{"footprint", multi}, {"stack_distance", single}}}),
  };
  const auto outcome = fuzz_strings(
      fuzz_config(), mutated(corpus), [](const std::string& input) {
        try {
          (void)model::parse_model(input);
        } catch (const exareq::InvalidArgument&) {
          // fall through: bundle parsing gets its own attempt below
        }
        (void)model::parse_bundle(input);
      });
  EXPECT_TRUE(outcome.passed()) << outcome.summary();
  EXPECT_GT(outcome.rejected, 0u);
}

TEST(PropertyFuzzServeProtocolTest, ParseOrCleanError) {
  const std::vector<std::string> corpus = {
      "eval lulesh footprint 64 1024",
      "invert milc 128 34359738368",
      "upgrade kripke 1024 1e9",
      "strawman relearn",
      "status",
  };
  const auto outcome =
      fuzz_strings(fuzz_config(), mutated(corpus),
                   [](const std::string& input) {
                     const serve::Request request = serve::parse_request(input);
                     // Round-trip the accepted request through the cache-key
                     // renderer; it must handle every parsed request.
                     (void)serve::canonical_key(request);
                     (void)serve::cacheable(request);
                   });
  EXPECT_TRUE(outcome.passed()) << outcome.summary();
  EXPECT_GT(outcome.rejected, 0u);
}

TEST(PropertyFuzzFrameDecoderTest, ArbitraryChunkingNeverBreaksFraming) {
  // The frame decoder sits in front of the parser on the socket path: feed
  // it mutated byte streams in random chunk sizes; it must either yield
  // frames or throw a clean oversize error, and the frames must equal
  // feeding the same bytes in one call.
  const std::vector<std::string> corpus = {
      "eval lulesh footprint 64 1024\nstatus\r\n\nstrawman milc\n",
      "invert milc 8 1e9\n" + std::string(300, 'x') + "\n",
      "\r\n\r\nupgrade kripke 16 1e10\n",
  };
  FuzzConfig config = fuzz_config();
  Rng chunker(config.seed + 1);
  const auto outcome = fuzz_strings(
      config, mutated(corpus), [&chunker](const std::string& input) {
        // Contract violations are reported as std::logic_error, NOT
        // exareq::Error — the fuzz driver counts the latter as a clean
        // rejection, which would mask a framing divergence.
        serve::FrameDecoder whole(512);
        std::vector<std::string> expected;
        try {
          expected = whole.feed(input);
        } catch (const exareq::Error&) {
          // Oversized somewhere: the chunked decoder must also reject the
          // stream by the time the whole input is in.
          serve::FrameDecoder chunked(512);
          std::size_t offset = 0;
          while (offset < input.size()) {
            const std::size_t step = static_cast<std::size_t>(
                chunker.uniform_int(1, 64));
            const std::size_t take = std::min(step, input.size() - offset);
            (void)chunked.feed(std::string_view(input).substr(offset, take));
            offset += take;
          }
          throw std::logic_error("chunked decoder accepted an oversized "
                                 "stream the whole-buffer decoder rejected");
        }
        serve::FrameDecoder chunked(512);
        std::vector<std::string> actual;
        std::size_t offset = 0;
        while (offset < input.size()) {
          const std::size_t step =
              static_cast<std::size_t>(chunker.uniform_int(1, 64));
          const std::size_t take = std::min(step, input.size() - offset);
          for (std::string& frame :
               chunked.feed(std::string_view(input).substr(offset, take))) {
            actual.push_back(std::move(frame));
          }
          offset += take;
        }
        if (actual != expected) {
          throw std::logic_error(
              "chunked framing diverges from whole-buffer framing");
        }
        if (chunked.partial_bytes() != whole.partial_bytes()) {
          throw std::logic_error("chunked partial-frame state diverges");
        }
      });
  EXPECT_TRUE(outcome.passed()) << outcome.summary();
}

}  // namespace
}  // namespace exareq::testkit
