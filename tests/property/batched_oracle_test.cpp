// Differential oracle (5): the batched fitter — one retained QR per
// hypothesis generation plus rank-one leave-one-out downdates — vs the
// scalar engine that refits every fold from scratch.
//
// The fast path is production's default (`batched_cv = true`, pool
// threads); the reference flips the engine back to the per-fold refit loop
// on a single thread. The batched engine's contract: both paths select the
// same model — same term set (order-canonicalized: two engines may walk
// different greedy paths to the same perfect model, which only permutes
// the design columns), coefficients to 1e-9 relative — and the CV/quality
// numbers agree to 1e-12 relative (the downdate reorders floating-point
// work, so last-ulp drift is expected and bounded).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "model/fitter.hpp"
#include "model/multiparam.hpp"
#include "model/search_space.hpp"
#include "testkit/domain_gen.hpp"
#include "testkit/oracle.hpp"
#include "testkit/property.hpp"

namespace exareq::testkit {
namespace {

// Selection (exact term set), coefficients, and quality are compared
// separately, so the summary keeps the numbers as doubles. Term order is
// canonicalized: the two engines may discover the same perfect model
// through different greedy paths, and the selection order only permutes
// the design columns (reordering last-ulp rounding, never the model).
struct SummaryTerm {
  std::string basis;
  double coefficient = 0.0;
};

struct FitSummary {
  std::string parameters;
  double constant = 0.0;
  std::vector<SummaryTerm> terms;
  double cv = 0.0;
  double smape = 0.0;
  double r_squared = 0.0;
};

std::string basis_signature(const model::Term& term) {
  std::vector<std::string> parts;
  for (const model::Factor& factor : term.factors) {
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer), "f %zu %.17g %.17g %d;",
                  factor.parameter, factor.poly_exponent, factor.log_exponent,
                  static_cast<int>(factor.special));
    parts.emplace_back(buffer);
  }
  std::sort(parts.begin(), parts.end());
  std::string signature;
  for (const std::string& part : parts) signature += part;
  return signature;
}

FitSummary summarize(const model::FitResult& result) {
  FitSummary summary;
  for (const std::string& name : result.model.parameter_names()) {
    summary.parameters += name + " ";
  }
  summary.constant = result.model.constant();
  for (const model::Term& term : result.model.terms()) {
    summary.terms.push_back({basis_signature(term), term.coefficient});
  }
  std::sort(summary.terms.begin(), summary.terms.end(),
            [](const SummaryTerm& a, const SummaryTerm& b) {
              return a.basis < b.basis;
            });
  summary.cv = result.quality.cv_score;
  summary.smape = result.quality.smape;
  summary.r_squared = result.quality.r_squared;
  return summary;
}

std::string render(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// "" when close enough, else a labelled report. Infinities must match
/// exactly (a verdict, not a number). Finite values carry a 1e-12 absolute
/// floor (sub-tolerance scores are collapsed to 0 by the engine) plus a
/// 1e-7 relative band. The band is set by conditioning, not sloppiness:
/// planted observations span up to ten decades, and on such weighted fold
/// systems any two arithmetic orderings — including two independent
/// scalar refit loops — drift by eps * kappa * leverage amplification.
/// Checked against a long-double reference, the true value sits between
/// the two paths with both equally close; 1e-7 is still five orders below
/// the smallest score difference that can influence selection
/// (tie_tolerance = 5e-2), so any real fold-handling bug lands far
/// outside it.
std::string diff_quality(const char* label, double fast, double reference) {
  if (std::isinf(fast) || std::isinf(reference)) {
    if (fast == reference) return {};
    return std::string(label) + " verdicts diverge: batched " + render(fast) +
           " vs scalar " + render(reference);
  }
  const double tolerance = std::max(1e-12, 1e-7 * std::fabs(reference));
  if (std::fabs(fast - reference) <= tolerance) return {};
  return std::string(label) + " diverges beyond tolerance: batched " +
         render(fast) + " vs scalar " + render(reference);
}

/// Coefficients of the same selected basis may differ by the rounding of a
/// permuted column order (~kappa ulps); 1e-9 relative is far above that
/// and far below any genuine model difference.
std::string diff_coefficient(const char* label, double fast, double reference) {
  const double tolerance = 1e-9 * std::max(1.0, std::fabs(reference));
  if (std::fabs(fast - reference) <= tolerance) return {};
  return std::string(label) + " coefficient diverges: batched " + render(fast) +
         " vs scalar " + render(reference);
}

std::string diff_summaries(const FitSummary& fast, const FitSummary& reference) {
  if (fast.parameters != reference.parameters) {
    return "parameter lists diverge: " + fast.parameters + " vs " +
           reference.parameters;
  }
  if (fast.terms.size() != reference.terms.size()) {
    return "term counts diverge: batched " +
           std::to_string(fast.terms.size()) + " vs scalar " +
           std::to_string(reference.terms.size());
  }
  for (std::size_t t = 0; t < fast.terms.size(); ++t) {
    if (fast.terms[t].basis != reference.terms[t].basis) {
      return "selected term sets diverge:\n" +
             text_diff(fast.terms[t].basis, reference.terms[t].basis);
    }
  }
  std::string diff = diff_coefficient("constant", fast.constant,
                                      reference.constant);
  for (std::size_t t = 0; t < fast.terms.size() && diff.empty(); ++t) {
    diff = diff_coefficient(fast.terms[t].basis.c_str(),
                            fast.terms[t].coefficient,
                            reference.terms[t].coefficient);
  }
  if (diff.empty()) diff = diff_quality("cv", fast.cv, reference.cv);
  if (diff.empty()) diff = diff_quality("smape", fast.smape, reference.smape);
  if (diff.empty()) {
    diff = diff_quality("r2", fast.r_squared, reference.r_squared);
  }
  return diff;
}

std::vector<model::Term> coarse_pool() {
  std::vector<model::Term> pool;
  for (const model::Factor& factor :
       model::SearchSpace::coarse().factors_for(0)) {
    model::Term term;
    term.coefficient = 1.0;
    term.factors = {factor};
    pool.push_back(std::move(term));
  }
  return pool;
}

model::FitResult fit_planted(const PlantedDataset& dataset, bool batched,
                             int threads) {
  const model::MeasurementSet data = dataset.build();
  if (data.parameter_count() == 1) {
    model::FitOptions options;
    options.batched_cv = batched;
    options.threads = threads;
    return model::fit_with_pool(data, coarse_pool(), options);
  }
  model::MultiParamOptions options;
  options.space = model::SearchSpace::coarse();
  options.top_factors_per_parameter = 2;
  options.fit.batched_cv = batched;
  options.fit.threads = threads;
  return model::fit_multi_parameter(data, options);
}

TEST(PropertyBatchedFitterOracleTest, BatchedEngineMatchesScalarRefits) {
  const PropertyConfig config =
      property_config("batched-fitter-differential", 120);
  DiffOracle<PlantedDataset, FitSummary> oracle;
  oracle.fast = [](const PlantedDataset& d) {
    return summarize(fit_planted(d, /*batched=*/true, d.threads));
  };
  oracle.reference = [](const PlantedDataset& d) {
    return summarize(fit_planted(d, /*batched=*/false, /*threads=*/1));
  };
  oracle.diff = diff_summaries;
  const auto result = check_differential(config, planted_dataset_gen(),
                                         planted_dataset_shrinker(), oracle);
  EXPECT_TRUE(result.passed()) << result.report(
      [](const PlantedDataset& d) { return d.describe(); });
}

TEST(PropertyBatchedFitterOracleTest, BatchedModeActuallySkipsPerFoldSolves) {
  // Guard against the oracle degenerating into scalar-vs-scalar: pin that
  // the fast path really runs on prefix extensions and downdates. Per
  // admissible candidate the scalar engine spends folds + 1 from-scratch
  // solves (inadmissible ones exit early); batched spends one single-column
  // prefix extension plus one downdate per fold, with one from-scratch
  // factorization per generation. The solve count must collapse by at
  // least 10x — the acceptance bar the bench enforces on the paper-app
  // campaign grids.
  model::MeasurementSet data({"n"});
  for (int e = 1; e <= 30; ++e) {
    const double x = std::pow(2.0, static_cast<double>(e));
    data.add({x}, 7.0 * x * std::log2(x) + 100.0);
  }

  model::FitOptions scalar;
  scalar.batched_cv = false;
  scalar.threads = 1;
  model::FitEngine scalar_engine(data, scalar);
  (void)model::fit_with_pool_engine(scalar_engine, coarse_pool());

  model::FitOptions batched;
  batched.threads = 1;
  model::FitEngine batched_engine(data, batched);
  (void)model::fit_with_pool_engine(batched_engine, coarse_pool());

  const model::EngineStats cold = scalar_engine.stats();
  const model::EngineStats fast = batched_engine.stats();
  EXPECT_EQ(cold.downdates, 0u);
  EXPECT_EQ(cold.qr_extensions, 0u);
  EXPECT_GT(fast.downdates, 0u);
  EXPECT_GT(fast.qr_extensions, 0u);
  EXPECT_GE(cold.cv_solves, 10 * fast.cv_solves);
}

}  // namespace
}  // namespace exareq::testkit
