// Differential oracle (1): the parallel, memoizing model-search engine vs
// a fresh single-thread fit on randomly planted PMNF datasets.
//
// The fast path is what production uses — an engine with basis-column and
// score caches, searching on `threads` pool workers, fitted twice so the
// second search runs almost entirely from the memo. The reference is a
// cold, strictly serial search. The engine's contract is that every one of
// these selects the bit-identical model; any divergence (term set,
// coefficients, CV score) is a counterexample.
//
// The suite also injects a deliberately broken fast path (a result cache
// that is never invalidated when the data changes) and demonstrates the
// oracle catches it — the acceptance test for the oracle's own power.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/fitter.hpp"
#include "model/multiparam.hpp"
#include "model/search_space.hpp"
#include "model/serialize.hpp"
#include "testkit/domain_gen.hpp"
#include "testkit/oracle.hpp"
#include "testkit/property.hpp"

namespace exareq::testkit {
namespace {

std::string render(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// Everything the search selects, in full precision: the model (terms and
// coefficients) and the quality numbers the pipeline reports.
std::string summarize(const model::FitResult& result) {
  return model::serialize_model(result.model) +
         "cv " + render(result.quality.cv_score) + "\nsmape " +
         render(result.quality.smape) + "\nr2 " +
         render(result.quality.r_squared);
}

std::vector<model::Term> coarse_pool() {
  std::vector<model::Term> pool;
  for (const model::Factor& factor :
       model::SearchSpace::coarse().factors_for(0)) {
    model::Term term;
    term.coefficient = 1.0;
    term.factors = {factor};
    pool.push_back(std::move(term));
  }
  return pool;
}

model::FitResult fast_fit(const PlantedDataset& dataset) {
  const model::MeasurementSet data = dataset.build();
  if (data.parameter_count() == 1) {
    model::FitOptions options;
    options.threads = dataset.threads;
    model::FitEngine engine(data, options);
    const std::vector<model::Term> pool = coarse_pool();
    // First search warms the caches; the second one — whose result we
    // compare — is served largely from the score memo. A stale or
    // mis-keyed memo diverges right here.
    (void)model::fit_with_pool_engine(engine, pool);
    return model::fit_with_pool_engine(engine, pool);
  }
  model::MultiParamOptions options;
  options.space = model::SearchSpace::coarse();
  options.top_factors_per_parameter = 2;
  options.fit.threads = dataset.threads;
  return model::fit_multi_parameter(data, options);
}

model::FitResult reference_fit(const PlantedDataset& dataset) {
  const model::MeasurementSet data = dataset.build();
  if (data.parameter_count() == 1) {
    model::FitOptions options;
    options.threads = 1;
    return model::fit_with_pool(data, coarse_pool(), options);
  }
  model::MultiParamOptions options;
  options.space = model::SearchSpace::coarse();
  options.top_factors_per_parameter = 2;
  options.fit.threads = 1;
  return model::fit_multi_parameter(data, options);
}

TEST(PropertySearchOracleTest, ParallelCachedSearchMatchesSerialColdSearch) {
  const PropertyConfig config =
      property_config("search-engine-differential", 200);
  DiffOracle<PlantedDataset, std::string> oracle;
  oracle.fast = [](const PlantedDataset& d) { return summarize(fast_fit(d)); };
  oracle.reference = [](const PlantedDataset& d) {
    return summarize(reference_fit(d));
  };
  oracle.diff = text_diff;
  const auto result = check_differential(config, planted_dataset_gen(),
                                         planted_dataset_shrinker(), oracle);
  EXPECT_TRUE(result.passed()) << result.report(
      [](const PlantedDataset& d) { return d.describe(); });
}

TEST(PropertySearchOracleTest, RepeatedEngineSearchActuallyHitsTheCache) {
  // Guard against the oracle silently degenerating: if a refactor stopped
  // the second search from using the memo, the "cached" fast path would be
  // testing nothing. Pin that the warm search is served from the caches.
  Rng rng(case_seed(1, 0));
  PlantedDataset dataset = planted_dataset_gen(0.0)(rng);
  const model::MeasurementSet data = dataset.build();
  model::FitOptions options;
  options.threads = 2;
  model::FitEngine engine(data, options);
  const std::vector<model::Term> pool = coarse_pool();
  (void)model::fit_with_pool_engine(engine, pool);
  const model::EngineStats cold = engine.stats();
  (void)model::fit_with_pool_engine(engine, pool);
  const model::EngineStats warm = engine.stats();
  EXPECT_GT(warm.score_cache_hits, cold.score_cache_hits);
  // The replay may re-run the handful of final full-data refits, but the
  // search itself (hundreds of CV solves when cold) answers from the memo.
  EXPECT_LT(warm.cv_solves - cold.cv_solves, cold.cv_solves / 10);
}

TEST(PropertySearchOracleTest, InjectedStaleCacheBugIsCaught) {
  // The injected bug: a fit-result cache keyed only on the dataset's shape
  // (parameter count, grid sizes, term count) that skips invalidation when
  // the underlying values change — the classic "forgot to invalidate"
  // engine bug. Two datasets with the same shape but different planted
  // coefficients must collide quickly, and the oracle must notice.
  const PropertyConfig config =
      property_config("search-engine-stale-cache-bug", 200);
  auto stale_cache =
      std::make_shared<std::unordered_map<std::string, std::string>>();
  DiffOracle<PlantedDataset, std::string> oracle;
  oracle.fast = [stale_cache](const PlantedDataset& d) {
    std::string key = std::to_string(d.parameter_names.size()) + "|" +
                      std::to_string(d.terms.size());
    for (const auto& axis : d.axes) key += "|" + std::to_string(axis.size());
    const auto hit = stale_cache->find(key);
    if (hit != stale_cache->end()) return hit->second;  // never invalidated
    std::string fresh = summarize(fast_fit(d));
    stale_cache->emplace(std::move(key), fresh);
    return fresh;
  };
  oracle.reference = [](const PlantedDataset& d) {
    return summarize(reference_fit(d));
  };
  oracle.diff = text_diff;
  const auto result = check_differential(config, planted_dataset_gen(),
                                         planted_dataset_shrinker(), oracle);
  ASSERT_FALSE(result.passed())
      << "the differential oracle failed to detect a fit cache that is "
         "never invalidated";
  // The bug cannot survive more than a handful of cases: single-parameter
  // shapes repeat almost immediately.
  EXPECT_LT(result.counterexample->case_index, 50u);
}

}  // namespace
}  // namespace exareq::testkit
