// Differential oracle (6): the online incremental refit loop — rows
// streamed in shuffled batches through the IncrementalRefitter, each batch
// triggering a full refit over the canonical dataset of record — vs one
// cold fit over the concatenated data.
//
// The contract `docs/ONLINE.md` states: when the stream quiesces, the
// served model equals the model a batch job would have fitted from the
// same rows, regardless of arrival order and batch boundaries. The refit
// path earns this by sorting the dataset of record into canonical row
// order before every fit, so both paths hand the fitter the same
// MeasurementSet and PMNF selection is deterministic from there. Same
// comparison discipline as the batched-fitter oracle: exact term sets
// (order-canonicalized), coefficients to 1e-9 relative, fit quality to a
// 1e-7 relative band.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "codesign/requirements.hpp"
#include "model/search_space.hpp"
#include "online/refitter.hpp"
#include "pipeline/measure.hpp"
#include "pipeline/serve_bridge.hpp"
#include "serve/registry.hpp"
#include "support/error.hpp"
#include "testkit/domain_gen.hpp"
#include "testkit/oracle.hpp"
#include "testkit/property.hpp"

namespace exareq::testkit {
namespace {

/// One generated stream: rows synthesized from a planted requirement
/// bundle over a power-of-two (p, n) grid, shuffled, and cut into batches.
struct StreamCase {
  std::vector<std::vector<pipeline::AppMeasurement>> batches;
  std::size_t total_rows = 0;

  std::string describe() const {
    std::string text = "stream{" + std::to_string(total_rows) + " rows in [";
    for (std::size_t b = 0; b < batches.size(); ++b) {
      if (b > 0) text += ", ";
      text += std::to_string(batches[b].size());
    }
    return text + "]}";
  }
};

Gen<StreamCase> stream_case_gen() {
  return Gen<StreamCase>([](Rng& rng) {
    const codesign::AppRequirements app =
        planted_requirements_gen("planted")(rng);

    // ≥5 distinct values per parameter (the paper's rule of thumb, and the
    // generator's min_distinct_values gate for the full dataset).
    std::vector<pipeline::AppMeasurement> rows;
    for (int pe = 1; pe <= 5; ++pe) {
      for (int ne = 6; ne <= 10; ++ne) {
        const double p = std::pow(2.0, pe);
        const double n = std::pow(2.0, ne);
        pipeline::AppMeasurement row;
        row.processes = static_cast<int>(p);
        row.problem_size = static_cast<std::int64_t>(n);
        row.bytes_used = app.footprint.evaluate2(p, n);
        row.flops = app.flops.evaluate2(p, n);
        row.loads_stores = app.loads_stores.evaluate2(p, n);
        row.bytes_sent_received = app.comm_bytes.evaluate2(p, n);
        row.stack_distance = app.stack_distance.evaluate1(n);
        rows.push_back(std::move(row));
      }
    }

    // Shuffle (Fisher-Yates over the deterministic Rng stream), then cut
    // into 1-4 batches at random boundaries.
    for (std::size_t i = rows.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i)));
      std::swap(rows[i], rows[j]);
    }
    StreamCase stream;
    stream.total_rows = rows.size();
    const std::size_t batch_count =
        static_cast<std::size_t>(rng.uniform_int(1, 4));
    std::vector<std::size_t> cuts = {0, rows.size()};
    for (std::size_t c = 1; c < batch_count; ++c) {
      cuts.push_back(static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(rows.size()) - 1)));
    }
    std::sort(cuts.begin(), cuts.end());
    for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
      stream.batches.emplace_back(rows.begin() + cuts[c],
                                  rows.begin() + cuts[c + 1]);
    }
    return stream;
  });
}

// --- summary + tolerance idiom, mirroring the batched-fitter oracle ---

struct SummaryTerm {
  std::string basis;
  double coefficient = 0.0;
};

struct ModelSummary {
  std::string parameters;
  double constant = 0.0;
  std::vector<SummaryTerm> terms;
};

struct BundleSummary {
  std::vector<std::pair<std::string, ModelSummary>> models;
  double mean_abs_relative_error = 0.0;
};

std::string basis_signature(const model::Term& term) {
  std::vector<std::string> parts;
  for (const model::Factor& factor : term.factors) {
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer), "f %zu %.17g %.17g %d;",
                  factor.parameter, factor.poly_exponent, factor.log_exponent,
                  static_cast<int>(factor.special));
    parts.emplace_back(buffer);
  }
  std::sort(parts.begin(), parts.end());
  std::string signature;
  for (const std::string& part : parts) signature += part;
  return signature;
}

ModelSummary summarize_model(const model::Model& model) {
  ModelSummary summary;
  for (const std::string& name : model.parameter_names()) {
    summary.parameters += name + " ";
  }
  summary.constant = model.constant();
  for (const model::Term& term : model.terms()) {
    summary.terms.push_back({basis_signature(term), term.coefficient});
  }
  std::sort(summary.terms.begin(), summary.terms.end(),
            [](const SummaryTerm& a, const SummaryTerm& b) {
              return a.basis < b.basis;
            });
  return summary;
}

BundleSummary summarize_bundle(const codesign::AppRequirements& app,
                               double quality) {
  BundleSummary summary;
  summary.models = {{"footprint", summarize_model(app.footprint)},
                    {"flops", summarize_model(app.flops)},
                    {"comm_bytes", summarize_model(app.comm_bytes)},
                    {"loads_stores", summarize_model(app.loads_stores)},
                    {"stack_distance", summarize_model(app.stack_distance)}};
  summary.mean_abs_relative_error = quality;
  return summary;
}

std::string render(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string diff_coefficient(const std::string& label, double fast,
                             double reference) {
  const double tolerance = 1e-9 * std::max(1.0, std::fabs(reference));
  if (std::fabs(fast - reference) <= tolerance) return {};
  return label + " coefficient diverges: incremental " + render(fast) +
         " vs cold " + render(reference);
}

std::string diff_models(const std::string& metric, const ModelSummary& fast,
                        const ModelSummary& reference) {
  if (fast.parameters != reference.parameters) {
    return metric + " parameter lists diverge: " + fast.parameters + " vs " +
           reference.parameters;
  }
  if (fast.terms.size() != reference.terms.size()) {
    return metric + " term counts diverge: incremental " +
           std::to_string(fast.terms.size()) + " vs cold " +
           std::to_string(reference.terms.size());
  }
  for (std::size_t t = 0; t < fast.terms.size(); ++t) {
    if (fast.terms[t].basis != reference.terms[t].basis) {
      return metric + " selected term sets diverge:\n" +
             text_diff(fast.terms[t].basis, reference.terms[t].basis);
    }
  }
  std::string diff =
      diff_coefficient(metric + " constant", fast.constant, reference.constant);
  for (std::size_t t = 0; t < fast.terms.size() && diff.empty(); ++t) {
    diff = diff_coefficient(metric + " " + fast.terms[t].basis,
                            fast.terms[t].coefficient,
                            reference.terms[t].coefficient);
  }
  return diff;
}

std::string diff_bundles(const BundleSummary& fast,
                         const BundleSummary& reference) {
  for (std::size_t m = 0; m < fast.models.size(); ++m) {
    const std::string diff = diff_models(fast.models[m].first,
                                         fast.models[m].second,
                                         reference.models[m].second);
    if (!diff.empty()) return diff;
  }
  const double tolerance =
      std::max(1e-12, 1e-7 * std::fabs(reference.mean_abs_relative_error));
  if (std::fabs(fast.mean_abs_relative_error -
                reference.mean_abs_relative_error) > tolerance) {
    return "fit quality diverges: incremental " +
           render(fast.mean_abs_relative_error) + " vs cold " +
           render(reference.mean_abs_relative_error);
  }
  return {};
}

/// Coarse space + 2 factors per parameter: the planted models come from
/// the same family, and the smaller hypothesis pool keeps 25-row refits
/// fast enough for the seed matrix (the full space is the batched-fitter
/// oracle's job).
online::RefitterOptions oracle_options() {
  online::RefitterOptions options;
  options.generator.space = model::SearchSpace::coarse();
  options.generator.top_factors_per_parameter = 2;
  return options;
}

BundleSummary run_incremental(const StreamCase& stream) {
  serve::ModelRegistry registry;
  online::IncrementalRefitter refitter(registry, oracle_options());
  online::RefitOutcome last;
  for (const auto& batch : stream.batches) {
    last = refitter.refit("planted", batch);
    // Intermediate refits may legitimately fail (e.g. a prefix with fewer
    // than five distinct parameter values); the previous version stays.
    // The final refit sees the full grid and must publish.
  }
  if (!last.published) {
    throw exareq::InvalidArgument("final refit did not publish: " +
                                  (last.error.empty() ? "gate busy"
                                                      : last.error));
  }
  const auto version = registry.version_of("planted");
  exareq::require(version != nullptr && version->models != nullptr,
                  "published version missing from registry");
  exareq::require(version->rows == stream.total_rows,
                  "published version does not cover the full stream");
  return summarize_bundle(*version->models, version->mean_abs_relative_error);
}

BundleSummary run_cold(const StreamCase& stream) {
  pipeline::CampaignData data;
  data.app_name = "planted";
  for (const auto& batch : stream.batches) {
    data.measurements.insert(data.measurements.end(), batch.begin(),
                             batch.end());
  }
  std::sort(data.measurements.begin(), data.measurements.end(),
            pipeline::measurement_row_less);
  const pipeline::FittedBundle bundle =
      pipeline::fit_requirement_bundle(data, oracle_options().generator);
  return summarize_bundle(bundle.requirements, bundle.mean_abs_relative_error);
}

TEST(PropertyOnlineOracleTest, IncrementalRefitMatchesColdFit) {
  const PropertyConfig config =
      property_config("online-incremental-vs-cold", 20);
  DiffOracle<StreamCase, BundleSummary> oracle;
  oracle.fast = run_incremental;
  oracle.reference = run_cold;
  oracle.diff = diff_bundles;
  const auto result = check_differential(config, stream_case_gen(),
                                         no_shrink<StreamCase>(), oracle);
  EXPECT_TRUE(result.passed()) << result.report(
      [](const StreamCase& stream) { return stream.describe(); });
}

}  // namespace
}  // namespace exareq::testkit
