// Self-tests of the exareq::testkit framework: generator determinism,
// shrinker convergence, the property runner's counterexample search, seed
// replay, and the fuzz driver's contract enforcement. All suites are named
// Property* so the sanitizer CI jobs can select them with
// `ctest -R '^Property'`.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "testkit/fuzz.hpp"
#include "testkit/gen.hpp"
#include "testkit/oracle.hpp"
#include "testkit/property.hpp"
#include "testkit/shrink.hpp"

namespace exareq::testkit {
namespace {

TEST(PropertyGenTest, SameSeedSameValues) {
  const Gen<std::int64_t> gen = int_range(-1000, 1000);
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen(a), gen(b));
}

TEST(PropertyGenTest, IntRangeStaysInBounds) {
  const Gen<std::int64_t> gen = int_range(-3, 7);
  Rng rng(1);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t value = gen(rng);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 7);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 11u);  // every value of a small range is hit
}

TEST(PropertyGenTest, RealAndLogRealStayInBounds) {
  Rng rng(7);
  const Gen<double> uniform = real_range(2.0, 3.0);
  const Gen<double> log_uniform = log_real_range(1e-3, 1e3);
  for (int i = 0; i < 500; ++i) {
    const double u = uniform(rng);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
    const double l = log_uniform(rng);
    EXPECT_GE(l, 1e-3);
    EXPECT_LT(l, 1e3);
  }
}

TEST(PropertyGenTest, DistinctSortedIntsAreDistinctAndSorted) {
  const auto gen = distinct_sorted_ints(1, 64, 5);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::vector<std::int64_t> values = gen(rng);
    ASSERT_EQ(values.size(), 5u);
    for (std::size_t j = 1; j < values.size(); ++j) {
      EXPECT_LT(values[j - 1], values[j]);
    }
  }
}

TEST(PropertyGenTest, VectorOfRespectsSizeBounds) {
  const auto gen = vector_of(int_range(0, 9), 2, 6);
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const auto values = gen(rng);
    EXPECT_GE(values.size(), 2u);
    EXPECT_LE(values.size(), 6u);
  }
}

TEST(PropertyGenTest, MapTransformsValues) {
  const auto gen = int_range(1, 5).map([](std::int64_t v) { return 2 * v; });
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const std::int64_t value = gen(rng);
    EXPECT_EQ(value % 2, 0);
    EXPECT_GE(value, 2);
    EXPECT_LE(value, 10);
  }
}

TEST(PropertyCaseSeedTest, DistinctInputsDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t run = 1; run <= 5; ++run) {
    for (std::uint64_t index = 0; index < 200; ++index) {
      seeds.insert(case_seed(run, index));
    }
  }
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions across the CI seed matrix
}

TEST(PropertyShrinkTest, IntShrinksTowardFloor) {
  const Shrinker<std::int64_t> shrink = shrink_int(0);
  const auto candidates = shrink(100);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates.front(), 0);  // most aggressive first
  for (const std::int64_t candidate : candidates) {
    EXPECT_GE(candidate, 0);
    EXPECT_LT(candidate, 100);
  }
  EXPECT_TRUE(shrink(0).empty());  // the floor is fully shrunk
}

TEST(PropertyShrinkTest, VectorShrinkRespectsMinSize) {
  const auto shrink = shrink_vector<std::int64_t>(shrink_int(0), 2);
  const std::vector<std::int64_t> value{5, 6, 7};
  for (const auto& candidate : shrink(value)) {
    EXPECT_GE(candidate.size(), 2u);
  }
  // A vector already at min_size only shrinks element-wise.
  const std::vector<std::int64_t> minimal{3, 4};
  for (const auto& candidate : shrink(minimal)) {
    EXPECT_EQ(candidate.size(), 2u);
  }
}

TEST(PropertyRunnerTest, PassingPropertyReportsAllCases) {
  const PropertyConfig config{"always-holds", 17, 50, 100};
  const auto result =
      check<std::int64_t>(config, int_range(0, 100), shrink_int(0),
                          [](const std::int64_t&) { return std::string{}; });
  EXPECT_TRUE(result.passed());
  EXPECT_EQ(result.cases_run, 50u);
  EXPECT_NE(result.report().find("passed 50 cases"), std::string::npos);
}

TEST(PropertyRunnerTest, FindsAndShrinksCounterexample) {
  // Fails for every value >= 10; the minimal counterexample is exactly 10.
  const PropertyConfig config{"ge-ten-fails", 1, 200, 400};
  const auto result = check<std::int64_t>(
      config, int_range(0, 1000), shrink_int(0),
      [](const std::int64_t& value) {
        return value >= 10 ? "value >= 10" : std::string{};
      });
  ASSERT_FALSE(result.passed());
  EXPECT_EQ(result.counterexample->input, 10);
  EXPECT_GT(result.counterexample->shrink_steps, 0u);
  const std::string report = result.report(
      [](const std::int64_t& v) { return std::to_string(v); });
  EXPECT_NE(report.find("counterexample: 10"), std::string::npos);
  EXPECT_NE(report.find("EXAREQ_PROPERTY_SEED=1"), std::string::npos);
}

TEST(PropertyRunnerTest, ExceptionIsACounterexample) {
  const PropertyConfig config{"throws", 1, 100, 50};
  const auto result = check<std::int64_t>(
      config, int_range(0, 100), no_shrink<std::int64_t>(),
      [](const std::int64_t& value) -> std::string {
        if (value > 50) throw exareq::InvalidArgument("boom");
        return {};
      });
  ASSERT_FALSE(result.passed());
  EXPECT_NE(result.counterexample->message.find("unexpected exception"),
            std::string::npos);
}

TEST(PropertyRunnerTest, ReplaySeedReproducesFailure) {
  // The failing case index depends only on the run seed; re-running under
  // the same seed must find the identical counterexample.
  const PropertyConfig config{"replay", 1234, 100, 200};
  const Property<std::int64_t> property = [](const std::int64_t& value) {
    return value % 7 == 3 ? "hit residue 3 (mod 7)" : std::string{};
  };
  const auto first =
      check<std::int64_t>(config, int_range(0, 10000), shrink_int(0), property);
  const auto second =
      check<std::int64_t>(config, int_range(0, 10000), shrink_int(0), property);
  ASSERT_FALSE(first.passed());
  ASSERT_FALSE(second.passed());
  EXPECT_EQ(first.counterexample->case_index, second.counterexample->case_index);
  EXPECT_EQ(first.counterexample->input, second.counterexample->input);
}

TEST(PropertyConfigTest, EnvironmentOverridesSeedAndCases) {
  ASSERT_EQ(setenv("EXAREQ_PROPERTY_SEED", "99", 1), 0);
  ASSERT_EQ(setenv("EXAREQ_PROPERTY_CASES", "12", 1), 0);
  const PropertyConfig config = property_config("env", 500);
  EXPECT_EQ(config.seed, 99u);
  EXPECT_EQ(config.cases, 12u);
  ASSERT_EQ(setenv("EXAREQ_PROPERTY_SEED", "not-a-number", 1), 0);
  EXPECT_THROW(property_config("env"), exareq::Error);
  unsetenv("EXAREQ_PROPERTY_SEED");
  unsetenv("EXAREQ_PROPERTY_CASES");
}

TEST(PropertyOracleTest, AgreementPasses) {
  const PropertyConfig config{"same-paths", 1, 100, 100};
  DiffOracle<std::int64_t, std::string> oracle;
  oracle.fast = [](const std::int64_t& v) { return std::to_string(v * 2); };
  oracle.reference = [](const std::int64_t& v) { return std::to_string(2 * v); };
  oracle.diff = text_diff;
  const auto result = check_differential(config, int_range(0, 1000),
                                         shrink_int(0), oracle);
  EXPECT_TRUE(result.passed()) << result.report();
}

TEST(PropertyOracleTest, DivergenceIsFoundAndShrunk) {
  const PropertyConfig config{"fast-path-bug", 1, 200, 400};
  DiffOracle<std::int64_t, std::string> oracle;
  // The "fast path" is wrong for every value >= 100.
  oracle.fast = [](const std::int64_t& v) {
    return std::to_string(v >= 100 ? v + 1 : v);
  };
  oracle.reference = [](const std::int64_t& v) { return std::to_string(v); };
  oracle.diff = text_diff;
  const auto result = check_differential(config, int_range(0, 10000),
                                         shrink_int(0), oracle);
  ASSERT_FALSE(result.passed());
  EXPECT_EQ(result.counterexample->input, 100);  // shrunk to the boundary
}

TEST(PropertyOracleTest, ErrorOnlyOnOnePathIsADivergence) {
  const PropertyConfig config{"one-sided-error", 1, 50, 100};
  DiffOracle<std::int64_t, std::string> oracle;
  oracle.fast = [](const std::int64_t& v) -> std::string {
    if (v > 10) throw exareq::InvalidArgument("too big");
    return "ok";
  };
  oracle.reference = [](const std::int64_t&) { return std::string("ok"); };
  oracle.diff = text_diff;
  const auto result = check_differential(config, int_range(0, 1000),
                                         shrink_int(0), oracle);
  ASSERT_FALSE(result.passed());
  EXPECT_NE(result.counterexample->message.find("fast path failed"),
            std::string::npos);
}

TEST(PropertyOracleTest, IdenticalErrorsAgree) {
  const PropertyConfig config{"both-fail", 1, 50, 100};
  DiffOracle<std::int64_t, std::string> oracle;
  const auto thrower = [](const std::int64_t& v) -> std::string {
    if (v > 10) throw exareq::InvalidArgument("too big");
    return "ok";
  };
  oracle.fast = thrower;
  oracle.reference = thrower;
  oracle.diff = text_diff;
  const auto result = check_differential(config, int_range(0, 1000),
                                         shrink_int(0), oracle);
  EXPECT_TRUE(result.passed()) << result.report();
}

TEST(PropertyTextDiffTest, PinpointsFirstDivergence) {
  EXPECT_TRUE(text_diff("same", "same").empty());
  const std::string message = text_diff("abcXdef", "abcYdef");
  EXPECT_NE(message.find("byte 3"), std::string::npos);
}

TEST(PropertyFuzzTest, CleanRejectionsAreCounted) {
  FuzzConfig config;
  config.iterations = 500;
  const Gen<std::string> gen =
      string_of("ab", 0, 4);  // tiny input space, both branches hit
  const auto outcome = fuzz_strings(config, gen, [](const std::string& text) {
    if (text.size() % 2 == 1) throw exareq::InvalidArgument("odd length");
  });
  EXPECT_TRUE(outcome.passed()) << outcome.summary();
  EXPECT_EQ(outcome.executed, 500u);
  EXPECT_GT(outcome.accepted, 0u);
  EXPECT_GT(outcome.rejected, 0u);
}

TEST(PropertyFuzzTest, ForeignExceptionBreaksTheContract) {
  FuzzConfig config;
  config.iterations = 2000;
  const auto outcome = fuzz_strings(
      config, string_of("abc", 0, 6), [](const std::string& text) {
        if (text.size() == 3) throw std::runtime_error("not an exareq error");
      });
  ASSERT_FALSE(outcome.passed());
  EXPECT_EQ(outcome.failing_input.size(), 3u);
  EXPECT_NE(outcome.summary().find("CONTRACT VIOLATION"), std::string::npos);
}

TEST(PropertyFuzzTest, MutatedGeneratorIsDeterministic) {
  const auto gen = mutated({"head,body\n1,2\n", "model v1\nend\n"});
  Rng a(9), b(9);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(gen(a), gen(b));
}

}  // namespace
}  // namespace exareq::testkit
