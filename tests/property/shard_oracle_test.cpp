// Differential oracle (7): the sharded serving tier end to end — requests
// encoded into one binary frame, sent over a Unix socket to a FrontEnd,
// bucketed across ShardedServer shards, and scattered back — vs answering
// each line one at a time on a plain unsharded QueryEngine. Every response
// must be byte-identical: the binary codec, the shard partition, the
// per-shard caches, and the batch scatter may not change a single byte of
// any answer.
//
// Plus the mutation-fuzz drivers for the binary codec: decode-or-clean-
// error over mutated genuine frames, and chunked/whole framing equivalence
// for BinaryFrameDecoder.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "codesign/requirements.hpp"
#include "serve/binary_protocol.hpp"
#include "serve/frontend.hpp"
#include "serve/protocol.hpp"
#include "serve/query_engine.hpp"
#include "serve/registry.hpp"
#include "serve/sharded_server.hpp"
#include "support/error.hpp"
#include "testkit/domain_gen.hpp"
#include "testkit/fuzz.hpp"
#include "testkit/gen.hpp"
#include "testkit/oracle.hpp"
#include "testkit/property.hpp"
#include "testkit/shrink.hpp"

namespace exareq::testkit {
namespace {

namespace binary = exareq::serve::binary;

std::string render(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// One sharded case: several planted application bundles (so the hash
// partition actually spreads work) plus a batch of request lines against
// them, with intentional duplicates so per-shard cache hits answer part of
// the batch.
struct ShardCase {
  std::vector<codesign::AppRequirements> apps;
  std::vector<std::string> lines;

  std::string describe() const {
    std::string text = "shard{";
    for (const auto& app : apps) text += app.name + " ";
    text += ":";
    for (const std::string& line : lines) text += " [" + line + "]";
    return text + "}";
  }
};

Gen<ShardCase> shard_case_gen() {
  return Gen<ShardCase>([](Rng& rng) {
    ShardCase shard_case;
    for (int i = 0; i < 3; ++i) {
      shard_case.apps.push_back(
          planted_requirements_gen("planted" + std::to_string(i))(rng));
    }
    static const std::vector<std::string> metrics = {
        "footprint", "flops", "comm_bytes", "loads_stores", "stack_distance"};
    const auto request_line = [&rng, &shard_case]() -> std::string {
      const std::string& app =
          shard_case.apps[static_cast<std::size_t>(rng.uniform_int(0, 2))]
              .name;
      const double p = std::floor(std::exp(rng.uniform(0.0, std::log(1e4))));
      const double n = std::floor(std::exp(rng.uniform(0.0, std::log(1e6))));
      const double memory =
          std::exp(rng.uniform(std::log(1e3), std::log(1e13)));
      switch (rng.uniform_int(0, 3)) {
        case 0:
          return "eval " + app + " " +
                 metrics[static_cast<std::size_t>(rng.uniform_int(0, 4))] +
                 " " + render(p) + " " + render(n);
        case 1:
          return "invert " + app + " " + render(p) + " " + render(memory);
        case 2:
          return "upgrade " + app + " " + render(p) + " " + render(memory);
        default:
          return "strawman " + app;
      }
    };
    const std::int64_t count = rng.uniform_int(1, 8);
    for (std::int64_t i = 0; i < count; ++i) {
      shard_case.lines.push_back(request_line());
      if (rng.next_double() < 0.4) {
        shard_case.lines.push_back(shard_case.lines.back());
      }
    }
    return shard_case;
  });
}

Shrinker<ShardCase> shard_case_shrinker() {
  return [](const ShardCase& shard_case) {
    std::vector<ShardCase> candidates;
    if (shard_case.lines.size() > 1) {
      for (std::size_t i = 0; i < shard_case.lines.size(); ++i) {
        ShardCase fewer = shard_case;
        fewer.lines.erase(fewer.lines.begin() +
                          static_cast<std::ptrdiff_t>(i));
        candidates.push_back(std::move(fewer));
      }
    }
    return candidates;
  };
}

// The production path: the whole batch as ONE binary frame over a real
// Unix socket into a 3-shard server, responses scattered back in request
// order.
std::string batched_binary_responses(const ShardCase& shard_case) {
  serve::ShardedServerOptions options;
  options.shards = 3;
  serve::ShardedServer server(options);
  for (const auto& app : shard_case.apps) server.insert(app);
  serve::FrontEndOptions front_options;
  front_options.unix_path =
      "/tmp/exareq_shard_oracle_" + std::to_string(::getpid()) + ".sock";
  serve::FrontEnd front(server, front_options);
  front.start();

  std::vector<serve::Request> batch;
  batch.reserve(shard_case.lines.size());
  for (const std::string& line : shard_case.lines) {
    batch.push_back(serve::parse_request(line));
  }
  const std::vector<std::string> responses =
      serve::query_batch_over_socket(front_options.unix_path, batch);
  std::string transcript;
  for (const std::string& response : responses) transcript += response + "\n";
  return transcript;
}

// The reference path: each line answered one at a time by a plain
// unsharded, uncached engine — the pre-sharding serving semantics.
std::string oneshot_text_responses(const ShardCase& shard_case) {
  std::string transcript;
  for (const std::string& line : shard_case.lines) {
    serve::ModelRegistry registry;
    for (const auto& app : shard_case.apps) registry.insert(app);
    serve::QueryEngine engine(registry);
    transcript += engine.answer_line(line) + "\n";
  }
  return transcript;
}

TEST(PropertyShardOracleTest, BatchedBinaryMatchesOneAtATimeText) {
  const PropertyConfig config = property_config("shard-differential", 100);
  DiffOracle<ShardCase, std::string> oracle;
  oracle.fast = batched_binary_responses;
  oracle.reference = oneshot_text_responses;
  oracle.diff = text_diff;
  const auto result = check_differential(config, shard_case_gen(),
                                         shard_case_shrinker(), oracle);
  EXPECT_TRUE(result.passed()) << result.report(
      [](const ShardCase& shard_case) { return shard_case.describe(); });
}

TEST(PropertyShardOracleTest, PartitionIsTotalAndPermutationInvariant) {
  // Every app name lands on exactly one shard regardless of request order,
  // and batch responses are a permutation-stable function of the requests:
  // reversing the batch reverses the responses and nothing else.
  const PropertyConfig config = property_config("shard-permutation", 100);
  const auto property = [](const ShardCase& shard_case) -> std::string {
    serve::ShardedServerOptions options;
    options.shards = 3;
    serve::ShardedServer server(options);
    for (const auto& app : shard_case.apps) server.insert(app);

    std::vector<serve::Request> batch;
    for (const std::string& line : shard_case.lines) {
      batch.push_back(serve::parse_request(line));
    }
    const std::vector<std::string> forward = server.submit_batch(batch);
    std::vector<serve::Request> reversed(batch.rbegin(), batch.rend());
    std::vector<std::string> backward = server.submit_batch(reversed);
    std::reverse(backward.begin(), backward.end());
    if (forward != backward) {
      return "batch responses depend on request order";
    }
    return {};
  };
  const auto result = check(config, shard_case_gen(), shard_case_shrinker(),
                            Property<ShardCase>(property));
  EXPECT_TRUE(result.passed()) << result.report(
      [](const ShardCase& shard_case) { return shard_case.describe(); });
}

// ---------------------------------------------------------------------------
// Binary codec fuzz drivers (see fuzz_parsers_test.cpp for the text-side
// counterparts and the EXAREQ_FUZZ_SECONDS smoke contract).

FuzzConfig fuzz_config() {
  FuzzConfig config;
  config.seed = property_config("fuzz-binary").seed;
  config.iterations = 5000;
  if (const char* seconds = std::getenv("EXAREQ_FUZZ_SECONDS")) {
    config.seconds = std::atof(seconds);
    if (config.seconds > 0.0) config.iterations = 0;
  }
  return config;
}

/// Genuine frames so mutations explore deep branches (string lengths,
/// metric ids, record counts) instead of dying on the magic byte.
std::vector<std::string> binary_corpus() {
  std::vector<serve::Request> requests;
  serve::Request eval;
  eval.kind = serve::RequestKind::kEval;
  eval.app = "lulesh";
  eval.metric = "flops";
  eval.p = 64.0;
  eval.n = 1024.0;
  requests.push_back(eval);
  serve::Request invert;
  invert.kind = serve::RequestKind::kInvert;
  invert.app = "milc";
  invert.processes = 128.0;
  invert.memory_per_process = 34359738368.0;
  requests.push_back(invert);
  serve::Request upgrade;
  upgrade.kind = serve::RequestKind::kUpgrade;
  upgrade.app = "kripke";
  upgrade.processes = 1024.0;
  upgrade.memory_per_process = 1e9;
  requests.push_back(upgrade);
  serve::Request strawman;
  strawman.kind = serve::RequestKind::kStrawman;
  strawman.app = "relearn";
  requests.push_back(strawman);
  serve::Request status;
  status.kind = serve::RequestKind::kStatus;
  requests.push_back(status);
  serve::Request ingest;
  ingest.kind = serve::RequestKind::kIngest;
  ingest.app = "lulesh";
  ingest.payload = "p,n,flops;4,64,1024;8,128,9000";
  requests.push_back(ingest);

  return {
      binary::encode_request_frame(requests),
      binary::encode_request_frame({eval}),
      binary::encode_response_frame(
          {"ok eval 1024", "error bad-request: application name is empty",
           "ok status requests=3 ok=3"}),
      binary::encode_response_frame({""}),
  };
}

TEST(PropertyFuzzBinaryCodecTest, DecodeOrCleanError) {
  const auto outcome = fuzz_strings(
      fuzz_config(), mutated(binary_corpus()), [](const std::string& input) {
        if (!input.empty() &&
            static_cast<unsigned char>(input[0]) == binary::kResponseMagic) {
          (void)binary::decode_response_frame(input);
          return;
        }
        // Materialize every decoded view: semantic validation (metric ids,
        // coordinate bounds) must also reject dirty records cleanly, and
        // the views must stay inside the frame's bytes under ASan.
        for (const binary::RequestView& view :
             binary::decode_request_frame(input)) {
          (void)view.materialize();
        }
      });
  EXPECT_TRUE(outcome.passed()) << outcome.summary();
  EXPECT_GT(outcome.rejected, 0u);  // mutations do reach the error paths
}

TEST(PropertyFuzzBinaryCodecTest, AcceptedFramesRoundTrip) {
  // Anything the decoder accepts must re-encode to the identical bytes —
  // the zero-copy views alias the input, so this pins offset arithmetic.
  const auto outcome = fuzz_strings(
      fuzz_config(), mutated(binary_corpus()), [](const std::string& input) {
        if (!input.empty() &&
            static_cast<unsigned char>(input[0]) == binary::kResponseMagic) {
          const std::vector<std::string> lines =
              binary::decode_response_frame(input);
          if (binary::encode_response_frame(lines) != input) {
            throw std::logic_error("accepted response frame fails to "
                                   "round-trip bit-exactly");
          }
          return;
        }
        std::vector<serve::Request> requests;
        for (const binary::RequestView& view :
             binary::decode_request_frame(input)) {
          serve::Request request;
          request.app = std::string(view.app);
          switch (view.opcode) {
            case binary::Opcode::kEval: {
              request.kind = serve::RequestKind::kEval;
              const auto& names = serve::metric_names();
              // The decoder is lazy about metric ids (materialize() checks
              // them); the name-keyed encoder cannot express an unknown id.
              if (view.metric_id >= names.size()) return;
              request.metric = names[view.metric_id];
              request.p = view.p;
              request.n = view.n;
              break;
            }
            case binary::Opcode::kInvert:
            case binary::Opcode::kUpgrade:
              request.kind = view.opcode == binary::Opcode::kInvert
                                 ? serve::RequestKind::kInvert
                                 : serve::RequestKind::kUpgrade;
              request.processes = view.processes;
              request.memory_per_process = view.memory_per_process;
              break;
            case binary::Opcode::kStrawman:
              request.kind = serve::RequestKind::kStrawman;
              break;
            case binary::Opcode::kStatus:
              request.kind = serve::RequestKind::kStatus;
              break;
            case binary::Opcode::kIngest:
              request.kind = serve::RequestKind::kIngest;
              request.payload = std::string(view.payload);
              break;
          }
          requests.push_back(std::move(request));
        }
        if (binary::encode_request_frame(requests) != input) {
          throw std::logic_error(
              "accepted request frame fails to round-trip bit-exactly");
        }
      });
  EXPECT_TRUE(outcome.passed()) << outcome.summary();
}

TEST(PropertyFuzzBinaryFrameDecoderTest, ChunkingNeverChangesFraming) {
  // Feed mutated frame streams byte-chunked and whole. When the whole
  // buffer is accepted, chunked feeding must yield identical frames and
  // partial state; when the whole buffer is rejected (bad magic or
  // oversize), chunked feeding must reject the stream too — it may first
  // return frames the whole-buffer call lost to the exception, but it must
  // not silently accept everything.
  const std::vector<std::string> base = binary_corpus();
  std::vector<std::string> corpus = {
      base[0] + base[1],
      base[2] + base[3] + base[2],
      base[1] + std::string("eval lulesh flops 64 1024\n") + base[1],
      base[0].substr(0, base[0].size() / 2),
  };
  FuzzConfig config = fuzz_config();
  Rng chunker(config.seed + 1);
  const auto outcome = fuzz_strings(
      config, mutated(corpus), [&chunker](const std::string& input) {
        constexpr std::size_t kLimit = 4096;
        binary::BinaryFrameDecoder whole(kLimit);
        bool whole_threw = false;
        std::vector<std::string> expected;
        try {
          expected = whole.feed(input);
        } catch (const exareq::Error&) {
          whole_threw = true;
        }

        binary::BinaryFrameDecoder chunked(kLimit);
        bool chunked_threw = false;
        std::vector<std::string> actual;
        std::size_t offset = 0;
        while (offset < input.size()) {
          const std::size_t step =
              static_cast<std::size_t>(chunker.uniform_int(1, 48));
          const std::size_t take = std::min(step, input.size() - offset);
          try {
            for (std::string& frame :
                 chunked.feed(std::string_view(input).substr(offset, take))) {
              actual.push_back(std::move(frame));
            }
          } catch (const exareq::Error&) {
            chunked_threw = true;
            break;
          }
          offset += take;
        }

        if (whole_threw != chunked_threw) {
          throw std::logic_error(
              whole_threw
                  ? "chunked decoder accepted a stream the whole-buffer "
                    "decoder rejected"
                  : "chunked decoder rejected a stream the whole-buffer "
                    "decoder accepted");
        }
        if (!whole_threw) {
          if (actual != expected) {
            throw std::logic_error(
                "chunked framing diverges from whole-buffer framing");
          }
          if (chunked.partial_bytes() != whole.partial_bytes()) {
            throw std::logic_error("chunked partial-frame state diverges");
          }
        }
      });
  EXPECT_TRUE(outcome.passed()) << outcome.summary();
}

}  // namespace
}  // namespace exareq::testkit
