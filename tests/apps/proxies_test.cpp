// Behavioural tests of the nine application proxies: every proxy must run,
// produce strictly positive requirements, be deterministic, and grow each
// requirement in the direction the paper's Table II prescribes.
#include <gtest/gtest.h>

#include "apps/application.hpp"
#include "memtrace/compressed_trace.hpp"
#include "pipeline/measure.hpp"
#include "support/error.hpp"

namespace exareq::apps {
namespace {

using pipeline::AppMeasurement;
using pipeline::measure_app;

class ProxyTest : public ::testing::TestWithParam<AppId> {};

std::string app_param_name(const ::testing::TestParamInfo<AppId>& info) {
  return app_name(info.param);
}

INSTANTIATE_TEST_SUITE_P(AllApps, ProxyTest,
                         ::testing::Values(AppId::kKripke, AppId::kLulesh,
                                           AppId::kMilc, AppId::kRelearn,
                                           AppId::kIcoFoam, AppId::kStencil3D,
                                           AppId::kGraphBfs, AppId::kMiniDnn,
                                           AppId::kCheckpointIo),
                         app_param_name);

TEST_P(ProxyTest, RunsAndProducesPositiveRequirements) {
  const Application& app = application(GetParam());
  const AppMeasurement m = measure_app(app, 4, 64);
  EXPECT_GT(m.bytes_used, 0.0);
  EXPECT_GT(m.flops, 0.0);
  EXPECT_GT(m.loads_stores, 0.0);
  EXPECT_GT(m.bytes_sent_received, 0.0);
  EXPECT_GT(m.stack_distance, 0.0);
  EXPECT_FALSE(m.channels.empty());
}

TEST_P(ProxyTest, MeasurementsAreDeterministic) {
  const Application& app = application(GetParam());
  const AppMeasurement a = measure_app(app, 4, 64);
  const AppMeasurement b = measure_app(app, 4, 64);
  EXPECT_DOUBLE_EQ(a.bytes_used, b.bytes_used);
  EXPECT_DOUBLE_EQ(a.flops, b.flops);
  EXPECT_DOUBLE_EQ(a.loads_stores, b.loads_stores);
  EXPECT_DOUBLE_EQ(a.bytes_sent_received, b.bytes_sent_received);
  EXPECT_DOUBLE_EQ(a.stack_distance, b.stack_distance);
}

TEST_P(ProxyTest, RequirementsGrowWithProblemSize) {
  const Application& app = application(GetParam());
  const AppMeasurement small = measure_app(app, 4, 64);
  const AppMeasurement large = measure_app(app, 4, 256);
  EXPECT_GT(large.bytes_used, small.bytes_used);
  EXPECT_GT(large.flops, small.flops);
  EXPECT_GT(large.loads_stores, small.loads_stores);
  EXPECT_GT(large.bytes_sent_received, small.bytes_sent_received);
}

TEST_P(ProxyTest, RejectsTooSmallProblem) {
  const Application& app = application(GetParam());
  EXPECT_THROW(measure_app(app, 2, 1), exareq::InvalidArgument);
}

TEST_P(ProxyTest, SingleProcessRunWorks) {
  const Application& app = application(GetParam());
  const AppMeasurement m = measure_app(app, 1, 64);
  EXPECT_GT(m.flops, 0.0);
  EXPECT_DOUBLE_EQ(m.bytes_sent_received, 0.0);  // nobody to talk to
}

TEST_P(ProxyTest, LocalityTraceHasRegisteredGroups) {
  const Application& app = application(GetParam());
  const memtrace::AccessTrace trace = app.locality_trace(128);
  EXPECT_GE(trace.group_count(), 2u);
  EXPECT_GT(trace.size(), 1000u);
}

TEST_P(ProxyTest, CompressedTraceRoundTripsLocalityTrace) {
  // The compact checkpoint storage path: tracing into a CompressedTrace and
  // replaying must reproduce the exact access stream the materializing
  // AccessTrace records, for every proxy's real access pattern.
  const Application& app = application(GetParam());
  memtrace::AccessTrace reference;
  app.trace_locality(128, reference);
  memtrace::CompressedTrace compressed;
  app.trace_locality(128, compressed);
  ASSERT_EQ(compressed.size(), reference.size());

  memtrace::AccessTrace replayed;
  compressed.replay(replayed);
  ASSERT_EQ(replayed.size(), reference.size());
  ASSERT_EQ(replayed.group_count(), reference.group_count());
  for (memtrace::GroupId g = 0; g < reference.group_count(); ++g) {
    EXPECT_EQ(replayed.group_name(g), reference.group_name(g));
  }
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(replayed.accesses()[i].address, reference.accesses()[i].address)
        << "access " << i;
    ASSERT_EQ(replayed.accesses()[i].group, reference.accesses()[i].group)
        << "access " << i;
  }
  // The encoding must actually compress real proxy traces (>= 2x is the
  // checkpointed-sweep acceptance bar; strides typically do much better).
  EXPECT_LT(compressed.compressed_bytes() * 2,
            reference.size() * sizeof(memtrace::Access));
}

TEST_P(ProxyTest, MetadataIsPresent) {
  const Application& app = application(GetParam());
  EXPECT_FALSE(app.name().empty());
  EXPECT_FALSE(app.description().empty());
  EXPECT_FALSE(app.problem_size_meaning().empty());
  EXPECT_GE(app.min_problem_size(), 1);
}

// --- per-application growth shapes (paper Table II) -------------------------

double ratio(double a, double b) { return a / b; }

TEST(KripkeShapeTest, ComputationAndCommAreProcessIndependent) {
  const Application& app = application(AppId::kKripke);
  const AppMeasurement p4 = measure_app(app, 4, 128);
  const AppMeasurement p16 = measure_app(app, 16, 128);
  EXPECT_DOUBLE_EQ(p4.flops, p16.flops);
  EXPECT_DOUBLE_EQ(p4.bytes_sent_received, p16.bytes_sent_received);
  EXPECT_DOUBLE_EQ(p4.bytes_used, p16.bytes_used);
}

TEST(KripkeShapeTest, LoadStoreCouplingWithProcessCount) {
  // loads/stores ~ n + n*p: quadrupling p at fixed n must raise the count,
  // but by less than 4x (the linear-in-n part does not scale).
  const Application& app = application(AppId::kKripke);
  const AppMeasurement p4 = measure_app(app, 4, 128);
  const AppMeasurement p16 = measure_app(app, 16, 128);
  EXPECT_GT(p16.loads_stores, p4.loads_stores);
  EXPECT_LT(ratio(p16.loads_stores, p4.loads_stores), 4.0);
}

TEST(LuleshShapeTest, FootprintGrowsSuperlinearly) {
  const Application& app = application(AppId::kLulesh);
  const AppMeasurement small = measure_app(app, 4, 128);
  const AppMeasurement large = measure_app(app, 4, 512);
  // n log n: 512*9 / (128*7) = 5.14 > 4 (linear would be exactly 4).
  EXPECT_GT(ratio(large.bytes_used, small.bytes_used), 4.2);
}

TEST(LuleshShapeTest, CommunicationGrowsWithProcessCount) {
  const Application& app = application(AppId::kLulesh);
  const AppMeasurement p4 = measure_app(app, 4, 128);
  const AppMeasurement p32 = measure_app(app, 32, 128);
  // p^0.25 log p: (32/4)^0.25 * (5/2) = 4.2x.
  EXPECT_NEAR(ratio(p32.bytes_sent_received, p4.bytes_sent_received), 4.2, 0.5);
}

TEST(MilcShapeTest, StackDistanceGrowsLinearlyWithN) {
  const Application& app = application(AppId::kMilc);
  const AppMeasurement small = measure_app(app, 2, 256);
  const AppMeasurement large = measure_app(app, 2, 1024);
  EXPECT_NEAR(ratio(large.stack_distance, small.stack_distance), 4.0, 0.2);
}

TEST(MilcShapeTest, CommunicationHasLogTermFromAllreduce) {
  const Application& app = application(AppId::kMilc);
  const AppMeasurement p4 = measure_app(app, 4, 128);
  const AppMeasurement p16 = measure_app(app, 16, 128);
  const double allreduce4 = p4.channels.at("cg_allreduce").bytes;
  const double allreduce16 = p16.channels.at("cg_allreduce").bytes;
  EXPECT_NEAR(ratio(allreduce16, allreduce4), 2.0, 1e-9);  // log2 16 / log2 4
  EXPECT_TRUE(p4.channels.at("cg_allreduce").uses_allreduce);
  EXPECT_TRUE(p4.channels.at("param_bcast").uses_bcast);
}

TEST(RelearnShapeTest, FootprintGrowsWithSqrtOfN) {
  const Application& app = application(AppId::kRelearn);
  const AppMeasurement small = measure_app(app, 4, 256);
  const AppMeasurement large = measure_app(app, 4, 1024);
  // sqrt growth: 4x n -> ~2x bytes (plus a constant offset).
  EXPECT_LT(ratio(large.bytes_used, small.bytes_used), 2.2);
  EXPECT_GT(ratio(large.bytes_used, small.bytes_used), 1.5);
}

TEST(RelearnShapeTest, AlltoallChannelScalesLinearlyWithP) {
  const Application& app = application(AppId::kRelearn);
  const AppMeasurement p4 = measure_app(app, 4, 128);
  const AppMeasurement p16 = measure_app(app, 16, 128);
  const double a2a4 = p4.channels.at("synapse_alltoall").bytes;
  const double a2a16 = p16.channels.at("synapse_alltoall").bytes;
  // Alltoall(p) = 2(p-1): ratio 30/6 = 5.
  EXPECT_NEAR(ratio(a2a16, a2a4), 5.0, 1e-9);
}

TEST(IcoFoamShapeTest, FootprintGrowsWithProcessCount) {
  const Application& app = application(AppId::kIcoFoam);
  const AppMeasurement p4 = measure_app(app, 4, 128);
  const AppMeasurement p64 = measure_app(app, 64, 128);
  EXPECT_GT(p64.bytes_used, p4.bytes_used);  // the flagged p log p term
}

TEST(IcoFoamShapeTest, ComputationCouplesNAndP) {
  const Application& app = application(AppId::kIcoFoam);
  const AppMeasurement base = measure_app(app, 4, 128);
  const AppMeasurement more_p = measure_app(app, 16, 128);
  const AppMeasurement more_n = measure_app(app, 4, 512);
  // flops ~ n^1.5 * p^0.5: 4x p -> 2x flops; 4x n -> 8x flops.
  EXPECT_NEAR(ratio(more_p.flops, base.flops), 2.0, 0.2);
  EXPECT_NEAR(ratio(more_n.flops, base.flops), 8.0, 0.8);
}

TEST(RegistryTest, AllAppsListedAndNamed) {
  const auto ids = all_app_ids();
  ASSERT_EQ(ids.size(), 9u);
  EXPECT_EQ(app_name(AppId::kKripke), "Kripke");
  EXPECT_EQ(app_name(AppId::kLulesh), "LULESH");
  EXPECT_EQ(app_name(AppId::kMilc), "MILC");
  EXPECT_EQ(app_name(AppId::kRelearn), "Relearn");
  EXPECT_EQ(app_name(AppId::kIcoFoam), "icoFoam");
  EXPECT_EQ(app_name(AppId::kStencil3D), "Stencil3D");
  EXPECT_EQ(app_name(AppId::kGraphBfs), "GraphBFS");
  EXPECT_EQ(app_name(AppId::kMiniDnn), "MiniDNN");
  EXPECT_EQ(app_name(AppId::kCheckpointIo), "CheckpointIO");
}

TEST(RegistryTest, LookupByNameIsCaseInsensitive) {
  EXPECT_EQ(app_id_from_name("kripke"), AppId::kKripke);
  EXPECT_EQ(app_id_from_name("ICOFOAM"), AppId::kIcoFoam);
  EXPECT_EQ(app_id_from_name("stencil3d"), AppId::kStencil3D);
  EXPECT_EQ(app_id_from_name("CHECKPOINTIO"), AppId::kCheckpointIo);
  EXPECT_THROW(app_id_from_name("nbody"), exareq::InvalidArgument);
}

TEST(RegistryTest, UnknownNameErrorListsAllValidNames) {
  try {
    app_id_from_name("nbody");
    FAIL() << "unknown name accepted";
  } catch (const exareq::InvalidArgument& error) {
    const std::string what = error.what();
    for (const AppId id : all_app_ids()) {
      EXPECT_NE(what.find(app_name(id)), std::string::npos) << what;
    }
  }
}

TEST(RegistryTest, OnlyCheckpointIoPerformsFileIo) {
  for (const AppId id : all_app_ids()) {
    EXPECT_EQ(application(id).performs_file_io(), id == AppId::kCheckpointIo)
        << app_name(id);
  }
}

}  // namespace
}  // namespace exareq::apps
