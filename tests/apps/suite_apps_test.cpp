// Shape tests for the suite-v2 proxies: each new application's measured
// requirements must follow the mechanism documented in its header (the
// Table-II-style comment block), checked as growth ratios between (p, n)
// configurations rather than absolute values. Suites are prefixed "Apps"
// so the TSan preset's test filter picks them up.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/application.hpp"
#include "pipeline/measure.hpp"

namespace exareq::apps {
namespace {

using pipeline::AppMeasurement;
using pipeline::derived_energy_proxy;
using pipeline::measure_app;

// Measured ratios carry sub-item rounding and additive lower-order terms
// (e.g. the constant allreduce riding on a halo exchange), so shape checks
// accept a relative band around the documented exponent's prediction.
void expect_ratio_near(double ratio, double expected, double tolerance) {
  EXPECT_GT(ratio, expected * (1.0 - tolerance));
  EXPECT_LT(ratio, expected * (1.0 + tolerance));
}

TEST(AppsStencil3DTest, FlopsLinearInNAndIndependentOfP) {
  const Application& app = application(AppId::kStencil3D);
  const AppMeasurement base = measure_app(app, 4, 512);
  const AppMeasurement big_n = measure_app(app, 4, 2048);
  const AppMeasurement big_p = measure_app(app, 16, 512);
  expect_ratio_near(big_n.flops / base.flops, 4.0, 0.15);
  expect_ratio_near(big_p.flops / base.flops, 1.0, 0.10);
}

TEST(AppsStencil3DTest, CommunicationFollowsSurfaceToVolumeLaw) {
  const Application& app = application(AppId::kStencil3D);
  // Surface of a cubic subdomain ~ n^(2/3): growing n by 8x grows the halo
  // 4x. The per-sweep convergence allreduce adds a small constant on top.
  const AppMeasurement base = measure_app(app, 4, 512);
  const AppMeasurement big = measure_app(app, 4, 4096);
  expect_ratio_near(big.bytes_sent_received / base.bytes_sent_received, 4.0,
                    0.25);
}

TEST(AppsStencil3DTest, StackDistanceFollowsPlaneSize) {
  const Application& app = application(AppId::kStencil3D);
  // The z-neighbour reuse window is one grid plane ~ n^(2/3).
  const AppMeasurement base = measure_app(app, 4, 512);
  const AppMeasurement big = measure_app(app, 4, 4096);
  expect_ratio_near(big.stack_distance / base.stack_distance, 4.0, 0.35);
}

TEST(AppsGraphBfsTest, FlopsGrowWithLogP) {
  const Application& app = application(AppId::kGraphBfs);
  // Owner-directory probes are log2(p) deep: 4 -> 16 ranks doubles them.
  const AppMeasurement base = measure_app(app, 4, 1024);
  const AppMeasurement big = measure_app(app, 16, 1024);
  expect_ratio_near(big.flops / base.flops, 2.0, 0.25);
  expect_ratio_near(big.loads_stores / base.loads_stores, 2.0, 0.25);
}

TEST(AppsGraphBfsTest, StackDistanceLinearInN) {
  const Application& app = application(AppId::kGraphBfs);
  // Uniform neighbour accesses across the vertex array: no locality, the
  // reuse distance tracks the array itself.
  const AppMeasurement base = measure_app(app, 4, 512);
  const AppMeasurement big = measure_app(app, 4, 2048);
  expect_ratio_near(big.stack_distance / base.stack_distance, 4.0, 0.35);
}

TEST(AppsGraphBfsTest, FrontierTrafficGrowsAsSqrtN) {
  const Application& app = application(AppId::kGraphBfs);
  const AppMeasurement base = measure_app(app, 4, 512);
  const AppMeasurement big = measure_app(app, 4, 8192);
  expect_ratio_near(big.bytes_sent_received / base.bytes_sent_received, 4.0,
                    0.30);
}

TEST(AppsMiniDnnTest, GemmFlopsGrowAsNPowerOneAndAHalf) {
  const Application& app = application(AppId::kMiniDnn);
  const AppMeasurement base = measure_app(app, 4, 512);
  const AppMeasurement big = measure_app(app, 4, 2048);
  expect_ratio_near(big.flops / base.flops, 8.0, 0.20);
  expect_ratio_near(big.loads_stores / base.loads_stores, 8.0, 0.20);
}

TEST(AppsMiniDnnTest, StackDistanceIsTileBoundConstant) {
  const Application& app = application(AppId::kMiniDnn);
  // GEMM tiles are cache-sized: the reuse window must not follow the model.
  const AppMeasurement base = measure_app(app, 4, 512);
  const AppMeasurement big = measure_app(app, 4, 8192);
  expect_ratio_near(big.stack_distance / base.stack_distance, 1.0, 0.30);
}

TEST(AppsMiniDnnTest, GradientExchangeIsAlltoallDominated) {
  const Application& app = application(AppId::kMiniDnn);
  const AppMeasurement m = measure_app(app, 8, 1024);
  double alltoall_bytes = 0.0;
  double other_bytes = 0.0;
  for (const auto& [name, channel] : m.channels) {
    if (channel.uses_alltoall) {
      alltoall_bytes += channel.bytes;
    } else {
      other_bytes += channel.bytes;
    }
  }
  EXPECT_GT(alltoall_bytes, 0.0);
  EXPECT_GT(alltoall_bytes, other_bytes);
}

TEST(AppsMiniDnnTest, AlltoallTrafficGrowsLinearlyInPeers) {
  const Application& app = application(AppId::kMiniDnn);
  // Bucket alltoall sends ~sqrt(n) doubles to each of the p-1 peers; the
  // constant-size loss allreduce only nudges the total.
  const AppMeasurement base = measure_app(app, 8, 1024);
  const AppMeasurement big = measure_app(app, 16, 1024);
  expect_ratio_near(big.bytes_sent_received / base.bytes_sent_received,
                    15.0 / 7.0, 0.25);
}

TEST(AppsCheckpointIoTest, IoVolumeFollowsStateTimesSqrtP) {
  const Application& app = application(AppId::kCheckpointIo);
  const AppMeasurement base = measure_app(app, 4, 4096);
  const AppMeasurement big_n = measure_app(app, 4, 16384);
  const AppMeasurement big_p = measure_app(app, 16, 4096);
  EXPECT_GT(base.io_bytes, 0.0);
  // Each epoch commits the full 8n-byte state (the constant manifest read
  // per epoch drags the measured ratio slightly under 4)...
  expect_ratio_near(big_n.io_bytes / base.io_bytes, 4.0, 0.15);
  // ...and Young/Daly epochs grow as sqrt(p): 4 -> 16 ranks doubles them.
  expect_ratio_near(big_p.io_bytes / base.io_bytes, 2.0, 0.10);
}

TEST(AppsCheckpointIoTest, OnlyIoAppReportsIoBytes) {
  for (const AppId id : all_app_ids()) {
    const Application& app = application(id);
    const AppMeasurement m = measure_app(app, 4, 64);
    if (app.performs_file_io()) {
      EXPECT_GT(m.io_bytes, 0.0) << app.name();
    } else {
      EXPECT_EQ(m.io_bytes, 0.0) << app.name();
    }
  }
}

TEST(AppsEnergyProxyTest, EveryMeasurementCarriesTheDerivedProxy) {
  for (const AppId id : all_app_ids()) {
    const Application& app = application(id);
    const AppMeasurement m = measure_app(app, 4, 64);
    EXPECT_GT(m.energy_proxy, 0.0) << app.name();
    // The channel is a pure function of the counted activity — the stored
    // value must equal a recomputation (the legacy-CSV recovery path).
    EXPECT_DOUBLE_EQ(m.energy_proxy,
                     derived_energy_proxy(m.flops, m.loads_stores,
                                          m.bytes_sent_received, m.io_bytes))
        << app.name();
  }
}

TEST(AppsEnergyProxyTest, IoDominatesTheCheckpointerEnergy) {
  const Application& app = application(AppId::kCheckpointIo);
  const AppMeasurement m = measure_app(app, 16, 4096);
  // At 1 nJ/byte the checkpoint traffic outweighs the serialization
  // sweep's flops and accesses — the signature that makes the app worth
  // adding to the suite.
  const double io_joules = m.io_bytes * 1e-9;
  EXPECT_GT(io_joules, 0.5 * m.energy_proxy);
}

}  // namespace
}  // namespace exareq::apps
