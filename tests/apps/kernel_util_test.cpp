#include "apps/kernel_util.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "simmpi/runtime.hpp"
#include "support/error.hpp"

namespace exareq::apps {
namespace {

TEST(KernelUtilTest, Ilog2KnownValues) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(4), 2);
  EXPECT_EQ(ilog2(1024), 10);
  EXPECT_EQ(ilog2(1025), 10);
  EXPECT_THROW(ilog2(0), exareq::InvalidArgument);
}

TEST(KernelUtilTest, IsqrtKnownValues) {
  EXPECT_EQ(isqrt(0), 0);
  EXPECT_EQ(isqrt(1), 1);
  EXPECT_EQ(isqrt(3), 1);
  EXPECT_EQ(isqrt(4), 2);
  EXPECT_EQ(isqrt(1023), 31);
  EXPECT_EQ(isqrt(1024), 32);
  EXPECT_EQ(isqrt(1LL << 40), 1LL << 20);
  EXPECT_THROW(isqrt(-1), exareq::InvalidArgument);
}

TEST(KernelUtilTest, QuarterPowerLogCycles) {
  EXPECT_EQ(quarter_power_log_cycles(1), 1);   // log2(1) = 0 -> clamped
  EXPECT_EQ(quarter_power_log_cycles(16), 8);  // 2 * 4
  EXPECT_GT(quarter_power_log_cycles(64), quarter_power_log_cycles(16));
}

TEST(KernelUtilTest, CountedLowerBoundFindsPosition) {
  instr::ProcessInstrumentation instr;
  const std::vector<double> sorted{1.0, 3.0, 5.0, 7.0, 9.0};
  EXPECT_EQ(counted_lower_bound(sorted, 5.0, instr), 2u);
  EXPECT_EQ(counted_lower_bound(sorted, 0.0, instr), 0u);
  EXPECT_EQ(counted_lower_bound(sorted, 10.0, instr), 5u);
  EXPECT_EQ(counted_lower_bound(sorted, 4.0, instr), 2u);
}

TEST(KernelUtilTest, CountedLowerBoundCountsLogProbes) {
  instr::ProcessInstrumentation instr;
  std::vector<double> sorted(1024);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    sorted[i] = static_cast<double>(i);
  }
  (void)counted_lower_bound(sorted, 512.0, instr);
  const auto report = instr.report();
  EXPECT_EQ(report.ops.loads, 10u);  // log2(1024) probes
  // Comparisons are not FP arithmetic (PAPI FP_OPS semantics).
  EXPECT_EQ(report.ops.flops, 0u);
}

TEST(KernelUtilTest, CountedSortSortsAndCounts) {
  instr::ProcessInstrumentation instr;
  std::vector<double> values{5.0, 1.0, 4.0, 2.0, 3.0, 9.0, 0.0, 7.0};
  counted_sort(values, instr);
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
  const auto report = instr.report();
  EXPECT_GT(report.ops.loads, 0u);
  EXPECT_GT(report.ops.stores, 0u);
}

TEST(KernelUtilTest, CountedSortOpsGrowAsNLogN) {
  const auto ops_for = [](std::size_t count) {
    instr::ProcessInstrumentation instr;
    std::vector<double> values(count);
    for (std::size_t i = 0; i < count; ++i) {
      values[i] = static_cast<double>((i * 7919) % count);
    }
    counted_sort(values, instr);
    return instr.report().ops.loads_stores();
  };
  const auto small = static_cast<double>(ops_for(256));
  const auto large = static_cast<double>(ops_for(1024));
  // n log n growth: 1024*10 / (256*8) = 5; allow generous slack but reject
  // quadratic (16x) and linear (4x) growth.
  EXPECT_GT(large / small, 4.2);
  EXPECT_LT(large / small, 8.0);
}

TEST(KernelUtilTest, CountedSortHandlesDegenerateSizes) {
  instr::ProcessInstrumentation instr;
  std::vector<double> empty;
  counted_sort(empty, instr);
  std::vector<double> one{1.0};
  counted_sort(one, instr);
  EXPECT_EQ(instr.report().ops.loads_stores(), 0u);
}

TEST(KernelUtilTest, RingHaloExchangeMovesBytesBothWays) {
  const auto result = simmpi::run(4, [](simmpi::Communicator& comm) {
    const std::vector<double> halo(10, static_cast<double>(comm.rank()));
    (void)ring_halo_exchange(comm, halo, 10);
  });
  for (const auto& stats : result.stats) {
    EXPECT_EQ(stats.bytes_sent, 160u);      // 2 sends x 80 bytes
    EXPECT_EQ(stats.bytes_received, 160u);
  }
}

TEST(KernelUtilTest, RingHaloExchangeSingleRankIsNoop) {
  const auto result = simmpi::run(1, [](simmpi::Communicator& comm) {
    const std::vector<double> halo(10, 1.0);
    EXPECT_DOUBLE_EQ(ring_halo_exchange(comm, halo, 10), 0.0);
  });
  EXPECT_EQ(result.stats[0].bytes_total(), 0u);
}

TEST(KernelUtilTest, RingHaloExchangeChecksumReflectsNeighbours) {
  simmpi::run(3, [](simmpi::Communicator& comm) {
    const std::vector<double> halo(2, static_cast<double>(comm.rank() + 1));
    const double checksum = ring_halo_exchange(comm, halo, 10);
    const int p = comm.size();
    const double prev = static_cast<double>((comm.rank() - 1 + p) % p + 1);
    const double next = static_cast<double>((comm.rank() + 1) % p + 1);
    EXPECT_DOUBLE_EQ(checksum, 2.0 * prev - 2.0 * next);
  });
}

}  // namespace
}  // namespace exareq::apps
