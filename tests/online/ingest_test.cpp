// Ingest payload validation (wire -> rows) and the bounded staging buffer.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "online/ingest.hpp"
#include "online/ingest_buffer.hpp"
#include "support/error.hpp"

namespace exareq::online {
namespace {

const char* kHeader =
    "p,n,bytes_used,flops,loads_stores,bytes_sent_received,stack_distance";

std::string payload(const std::vector<std::string>& records) {
  std::string text = kHeader;
  for (const std::string& record : records) text += ";" + record;
  return text;
}

TEST(OnlineIngestTest, ParsesValidBatch) {
  const auto rows = parse_ingest_payload(
      payload({"4,64,1e3,2e6,3e5,4e4,12.5", "8,128,2e3,4e6,6e5,8e4,25"}));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].processes, 4);
  EXPECT_EQ(rows[0].problem_size, 64);
  EXPECT_DOUBLE_EQ(rows[0].bytes_used, 1e3);
  EXPECT_DOUBLE_EQ(rows[1].stack_distance, 25.0);
  EXPECT_TRUE(rows[0].channels.empty());
}

TEST(OnlineIngestTest, ParsesChannelColumns) {
  const std::string text =
      std::string(kHeader) +
      ",chan:a:mpi_allreduce;16,256,1,2,3,4,5,9.5e2";
  const auto rows = parse_ingest_payload(text);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].channels.count("mpi_allreduce"), 1u);
  const auto& channel = rows[0].channels.at("mpi_allreduce");
  EXPECT_DOUBLE_EQ(channel.bytes, 9.5e2);
  EXPECT_TRUE(channel.uses_allreduce);
  EXPECT_FALSE(channel.uses_bcast);
}

TEST(OnlineIngestTest, RejectsHeaderOnlyPayload) {
  EXPECT_THROW(parse_ingest_payload(kHeader), exareq::InvalidArgument);
}

TEST(OnlineIngestTest, RejectsMissingColumns) {
  EXPECT_THROW(parse_ingest_payload("p,n,bytes_used;4,64,1"),
               exareq::InvalidArgument);
}

TEST(OnlineIngestTest, RejectsRaggedRows) {
  EXPECT_THROW(parse_ingest_payload(payload({"4,64,1,2,3,4"})),
               exareq::InvalidArgument);
}

TEST(OnlineIngestTest, RejectsNanAndInfCells) {
  EXPECT_THROW(parse_ingest_payload(payload({"4,64,nan,2,3,4,5"})),
               exareq::InvalidArgument);
  EXPECT_THROW(parse_ingest_payload(payload({"4,64,inf,2,3,4,5"})),
               exareq::InvalidArgument);
}

TEST(OnlineIngestTest, RejectsNonIntegralOrNonPositiveGridCoordinates) {
  EXPECT_THROW(parse_ingest_payload(payload({"4.5,64,1,2,3,4,5"})),
               exareq::InvalidArgument);
  EXPECT_THROW(parse_ingest_payload(payload({"0,64,1,2,3,4,5"})),
               exareq::InvalidArgument);
  EXPECT_THROW(parse_ingest_payload(payload({"4,-64,1,2,3,4,5"})),
               exareq::InvalidArgument);
}

TEST(OnlineIngestTest, RejectsNegativeMetrics) {
  EXPECT_THROW(parse_ingest_payload(payload({"4,64,-1,2,3,4,5"})),
               exareq::InvalidArgument);
}

TEST(OnlineIngestTest, ErrorsNameTheOffendingRow) {
  try {
    parse_ingest_payload(payload({"4,64,1,2,3,4,5", "3.5,64,1,2,3,4,5"}));
    FAIL() << "expected InvalidArgument";
  } catch (const exareq::InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("row 2"), std::string::npos)
        << error.what();
  }
}

pipeline::AppMeasurement row(int p, std::int64_t n) {
  pipeline::AppMeasurement m;
  m.processes = p;
  m.problem_size = n;
  return m;
}

TEST(OnlineIngestBufferTest, RowCountThresholdMakesKeyDue) {
  RefitPolicy policy;
  policy.refit_rows = 3;
  IngestBuffer buffer(policy);
  EXPECT_EQ(buffer.add("app", {row(4, 64), row(8, 64)}), 2u);
  EXPECT_TRUE(buffer.due_keys().empty());
  EXPECT_EQ(buffer.add("app", {row(16, 64)}), 3u);
  ASSERT_EQ(buffer.due_keys().size(), 1u);
  EXPECT_EQ(buffer.due_keys()[0], "app");
  EXPECT_EQ(buffer.total_pending(), 3u);

  const auto taken = buffer.take("app");
  EXPECT_EQ(taken.size(), 3u);
  EXPECT_EQ(buffer.total_pending(), 0u);
  EXPECT_TRUE(buffer.due_keys().empty());
}

TEST(OnlineIngestBufferTest, StalenessMakesKeyDueUnderInjectedClock) {
  RefitPolicy policy;
  policy.refit_rows = 0;  // only the staleness trigger
  policy.max_staleness = std::chrono::milliseconds(100);
  auto now = std::chrono::steady_clock::time_point{};
  IngestBuffer buffer(policy, [&now] { return now; });
  buffer.add("app", {row(4, 64)});
  EXPECT_TRUE(buffer.due_keys().empty());
  EXPECT_DOUBLE_EQ(buffer.staleness_seconds("app"), 0.0);

  now += std::chrono::milliseconds(250);
  ASSERT_EQ(buffer.due_keys().size(), 1u);
  EXPECT_DOUBLE_EQ(buffer.staleness_seconds("app"), 0.25);
  EXPECT_DOUBLE_EQ(buffer.max_staleness_seconds(), 0.25);
}

TEST(OnlineIngestBufferTest, BoundedMemoryRejectsOverflowingBatch) {
  RefitPolicy policy;
  policy.max_pending_rows = 3;
  IngestBuffer buffer(policy);
  buffer.add("app", {row(4, 64), row(8, 64)});
  EXPECT_THROW(buffer.add("app", {row(16, 64), row(32, 64)}),
               exareq::InvalidArgument);
  // The rejected batch left nothing behind.
  EXPECT_EQ(buffer.pending("app"), 2u);
  // A fitting batch still goes through.
  EXPECT_EQ(buffer.add("app", {row(16, 64)}), 3u);
}

TEST(OnlineIngestBufferTest, KeysAreIndependent) {
  RefitPolicy policy;
  policy.refit_rows = 2;
  IngestBuffer buffer(policy);
  buffer.add("a", {row(4, 64)});
  buffer.add("b", {row(4, 64), row(8, 64)});
  const auto due = buffer.due_keys();
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], "b");
  const auto pending = buffer.pending_keys();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(buffer.total_pending(), 3u);
}

}  // namespace
}  // namespace exareq::online
