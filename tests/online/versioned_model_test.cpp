// The hot-swap slot: publish flips atomically, versions are epoch-counted,
// rollback re-publishes the displaced snapshot.
#include "online/versioned_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "../serve/serve_test_util.hpp"

namespace exareq::online {
namespace {

std::shared_ptr<const codesign::AppRequirements> bundle(const char* name) {
  return std::make_shared<const codesign::AppRequirements>(
      serve::testing::make_test_requirements(name));
}

TEST(OnlineVersionedModelTest, StartsEmpty) {
  VersionedModel slot;
  EXPECT_EQ(slot.current(), nullptr);
  EXPECT_EQ(slot.previous(), nullptr);
  EXPECT_EQ(slot.epoch(), 0u);
  EXPECT_FALSE(slot.rollback());
}

TEST(OnlineVersionedModelTest, PublishFlipsCurrentAndBumpsEpoch) {
  VersionedModel slot;
  const auto models = bundle("app");
  const std::uint64_t v1 =
      slot.publish(models, VersionSource::kInsert, 7, 0.25);
  EXPECT_EQ(v1, 1u);
  EXPECT_EQ(slot.epoch(), 1u);
  const auto snapshot = slot.current();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->version, 1u);
  EXPECT_EQ(snapshot->models, models);  // pointer identity, no copy
  EXPECT_EQ(snapshot->source, VersionSource::kInsert);
  EXPECT_EQ(snapshot->rows, 7u);
  EXPECT_DOUBLE_EQ(snapshot->mean_abs_relative_error, 0.25);
  EXPECT_EQ(slot.previous(), nullptr);
}

TEST(OnlineVersionedModelTest, SecondPublishRetainsPreviousForRollback) {
  VersionedModel slot;
  const auto first = bundle("app");
  const auto second = bundle("app");
  slot.publish(first, VersionSource::kInsert);
  const std::uint64_t v2 =
      slot.publish(second, VersionSource::kOnlineRefit, 30, 0.5);
  EXPECT_EQ(v2, 2u);
  EXPECT_EQ(slot.current()->models, second);
  ASSERT_NE(slot.previous(), nullptr);
  EXPECT_EQ(slot.previous()->models, first);

  ASSERT_TRUE(slot.rollback());
  const auto restored = slot.current();
  EXPECT_EQ(restored->models, first);  // the displaced bundle, same object
  EXPECT_EQ(restored->source, VersionSource::kRollback);
  // A rollback is a publish: the epoch moves forward, never back.
  EXPECT_EQ(restored->version, 3u);
  EXPECT_EQ(slot.epoch(), 3u);
  // The rolled-back (bad) version is retained, so rollback can be undone.
  EXPECT_EQ(slot.previous()->models, second);
}

TEST(OnlineVersionedModelTest, SourceNamesAreStable) {
  EXPECT_EQ(version_source_name(VersionSource::kInsert), "insert");
  EXPECT_EQ(version_source_name(VersionSource::kFile), "file");
  EXPECT_EQ(version_source_name(VersionSource::kFitOnDemand), "fit-on-demand");
  EXPECT_EQ(version_source_name(VersionSource::kOnlineRefit), "online-refit");
  EXPECT_EQ(version_source_name(VersionSource::kRollback), "rollback");
}

TEST(OnlineVersionedModelTest, DefaultQualityIsUnknown) {
  VersionedModel slot;
  slot.publish(bundle("app"), VersionSource::kFile);
  EXPECT_TRUE(std::isnan(slot.current()->mean_abs_relative_error));
}

}  // namespace
}  // namespace exareq::online
