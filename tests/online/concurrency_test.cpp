// Race tests for the hot-swap path, designed for the TSan preset
// (`ctest -R 'Online'` under --preset tsan): queries must never observe a
// partially-swapped model, and version ids must stay coherent with the
// slot epoch while ingest, refit, and fit-on-demand contend on one key.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "../serve/serve_test_util.hpp"
#include "online/service.hpp"
#include "online/versioned_model.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"

namespace exareq::online {
namespace {

std::shared_ptr<const codesign::AppRequirements> bundle(
    const std::string& name) {
  return std::make_shared<const codesign::AppRequirements>(
      serve::testing::make_test_requirements(name));
}

TEST(OnlineConcurrencyTest, ReadersSeeOnlyCompleteSnapshotsDuringPublishRace) {
  VersionedModel slot;
  constexpr int kPublishes = 400;
  constexpr int kReaders = 4;

  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&slot, &done, &failed] {
      std::uint64_t last_seen = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto snapshot = slot.current();
        const std::uint64_t epoch = slot.epoch();
        if (snapshot == nullptr) continue;
        // A snapshot is all-or-nothing: its models pointer is set and its
        // version id never runs ahead of the slot epoch (current was
        // loaded first) or behind what this reader already saw.
        if (snapshot->models == nullptr || snapshot->version == 0 ||
            snapshot->version > epoch || snapshot->version < last_seen) {
          failed.store(true, std::memory_order_release);
          return;
        }
        last_seen = snapshot->version;
      }
    });
  }

  for (int i = 0; i < kPublishes; ++i) {
    slot.publish(bundle("app"), VersionSource::kOnlineRefit,
                 static_cast<std::uint64_t>(i + 1), 0.1);
    if (i % 16 == 15) slot.rollback();  // rollbacks are publishes too
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_FALSE(failed.load());
  ASSERT_NE(slot.current(), nullptr);
  EXPECT_EQ(slot.current()->version, slot.epoch());
}

TEST(OnlineConcurrencyTest, IngestRefitAndQueryRaceOnOneKey) {
  // Fit-on-demand and the online refitter share the registry's
  // single-flight gate; queries read through the atomic slot. Hammer all
  // three on the same key and check that every observation is coherent.
  serve::ModelRegistry registry(
      [](const std::string& app) {
        return serve::testing::make_test_requirements(app);
      });

  OnlineServiceOptions options;
  options.policy.refit_rows = 2;
  auto fit = [](const pipeline::CampaignData& data) {
    pipeline::FittedBundle fitted;
    fitted.requirements = serve::testing::make_test_requirements(data.app_name);
    fitted.mean_abs_relative_error = 0.05;
    return fitted;
  };
  OnlineService service(registry, options, fit);

  constexpr int kBatches = 30;
  const char* kHeader =
      "p,n,bytes_used,flops,loads_stores,bytes_sent_received,stack_distance";

  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};

  std::thread ingester([&service, &failed, kHeader] {
    for (int i = 0; i < kBatches; ++i) {
      const std::string line = std::string("ingest app ") + kHeader + ";" +
                               std::to_string(1 << (1 + i % 8)) + "," +
                               std::to_string(32 + i) + ",1e3,2e6,3e5,4e4,12.5";
      const serve::Request request = serve::parse_request(line);
      const std::string response = service.handle_ingest(request);
      if (response.rfind("ok ", 0) != 0) {
        failed.store(true, std::memory_order_release);
        return;
      }
    }
  });

  std::thread querier([&registry, &done, &failed] {
    while (!done.load(std::memory_order_acquire)) {
      // get() may fit on demand; either way the bundle must be complete.
      const auto models = registry.get("app");
      if (models == nullptr || models->name.empty()) {
        failed.store(true, std::memory_order_release);
        return;
      }
    }
  });

  std::thread inspector([&registry, &done, &failed] {
    std::uint64_t last_seen = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto version = registry.version_of("app");
      if (version == nullptr) continue;
      if (version->models == nullptr || version->version < last_seen) {
        failed.store(true, std::memory_order_release);
        return;
      }
      last_seen = version->version;
    }
  });

  ingester.join();
  service.drain();
  done.store(true, std::memory_order_release);
  querier.join();
  inspector.join();

  EXPECT_FALSE(failed.load());
  const OnlineStats stats = service.stats();
  EXPECT_EQ(stats.rows_ingested, static_cast<std::uint64_t>(kBatches));
  EXPECT_EQ(stats.rows_pending, 0u);
  EXPECT_GE(stats.refits, 1u);
  const auto version = registry.version_of("app");
  ASSERT_NE(version, nullptr);
  EXPECT_NE(version->models, nullptr);
  // The final refit (after drain) saw every ingested row.
  EXPECT_GE(version->version, stats.last_version);
}

}  // namespace
}  // namespace exareq::online
