// OnlineService end to end: ingest over the serve protocol, policy-driven
// refits, hot-swap, rollback, failure handling, and status reporting.
#include "online/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "../serve/serve_test_util.hpp"
#include "online/refitter.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/error.hpp"

namespace exareq::online {
namespace {

const char* kHeader =
    "p,n,bytes_used,flops,loads_stores,bytes_sent_received,stack_distance";

std::string ingest_line(const std::string& app, int rows, int p0 = 4) {
  std::string line = "ingest " + app + " " + kHeader;
  for (int i = 0; i < rows; ++i) {
    const int p = p0 << i;
    line += ";" + std::to_string(p) + ",64,1e3,2e6,3e5,4e4,12.5";
  }
  return line;
}

/// A fit seam that records how many rows each fit saw and returns a
/// synthetic bundle with a scripted quality sequence.
struct ScriptedFitter {
  std::vector<double> qualities{0.1};
  std::atomic<int> calls{0};
  std::mutex mutex;
  std::vector<std::size_t> rows_seen;

  IncrementalRefitter::FitFn fn() {
    return [this](const pipeline::CampaignData& data) {
      const int call = calls.fetch_add(1);
      {
        std::lock_guard<std::mutex> lock(mutex);
        rows_seen.push_back(data.measurements.size());
      }
      pipeline::FittedBundle bundle;
      bundle.requirements =
          serve::testing::make_test_requirements(data.app_name);
      bundle.mean_abs_relative_error =
          qualities[std::min<std::size_t>(static_cast<std::size_t>(call),
                                          qualities.size() - 1)];
      return bundle;
    };
  }
};

TEST(OnlineServiceTest, IngestThroughServerRefitsAndHotSwaps) {
  serve::ModelRegistry registry;
  OnlineServiceOptions options;
  options.policy.refit_rows = 3;
  ScriptedFitter fitter;
  OnlineService service(registry, options, fitter.fn());

  serve::ServerOptions server_options;
  server_options.workers = 2;
  server_options.online = service.hooks();
  serve::Server server(registry, server_options);

  const std::string response = server.handle(ingest_line("TestApp", 3));
  EXPECT_EQ(response.rfind("ok ingest accepted=3 pending=3", 0), 0u)
      << response;
  service.drain();

  const auto version = registry.version_of("TestApp");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->version, 1u);
  EXPECT_EQ(version->source, VersionSource::kOnlineRefit);
  EXPECT_EQ(version->rows, 3u);
  EXPECT_DOUBLE_EQ(version->mean_abs_relative_error, 0.1);
  ASSERT_EQ(fitter.rows_seen.size(), 1u);
  EXPECT_EQ(fitter.rows_seen[0], 3u);

  // The refitted model answers queries.
  const std::string eval = server.handle("eval TestApp footprint 4 64");
  EXPECT_EQ(eval.rfind("ok eval ", 0), 0u) << eval;

  // The status line carries the online fields.
  const std::string status = server.handle("status");
  EXPECT_NE(status.find("online_rows=3"), std::string::npos) << status;
  EXPECT_NE(status.find("online_refits=1"), std::string::npos) << status;
  // The --status report gains the per-model version/age table and the
  // online section.
  const std::string report = server.status_report();
  EXPECT_NE(report.find("online-refit"), std::string::npos) << report;
  EXPECT_NE(report.find("Age [s]"), std::string::npos) << report;
  EXPECT_NE(report.find("rows ingested"), std::string::npos) << report;
}

TEST(OnlineServiceTest, BelowThresholdRowsStayPendingUntilDrain) {
  serve::ModelRegistry registry;
  OnlineServiceOptions options;
  options.policy.refit_rows = 100;
  ScriptedFitter fitter;
  OnlineService service(registry, options, fitter.fn());

  serve::Request request = serve::parse_request(ingest_line("app", 2));
  const std::string response = service.handle_ingest(request);
  EXPECT_EQ(response.rfind("ok ingest accepted=2 pending=2", 0), 0u);
  EXPECT_EQ(service.stats().rows_pending, 2u);
  EXPECT_EQ(registry.version_of("app"), nullptr);

  service.drain();  // force-flushes below-threshold rows
  EXPECT_EQ(service.stats().rows_pending, 0u);
  ASSERT_NE(registry.version_of("app"), nullptr);
  EXPECT_EQ(registry.version_of("app")->rows, 2u);
}

TEST(OnlineServiceTest, MalformedPayloadIsStructuredBadRequest) {
  serve::ModelRegistry registry;
  ScriptedFitter fitter;
  OnlineService service(registry, {}, fitter.fn());
  serve::Request request =
      serve::parse_request("ingest app p,n;4,not-a-number");
  const std::string response = service.handle_ingest(request);
  EXPECT_EQ(response.rfind("error bad-request:", 0), 0u) << response;
  EXPECT_EQ(service.stats().batches_rejected, 1u);
  EXPECT_EQ(service.stats().rows_ingested, 0u);
}

TEST(OnlineServiceTest, FullBufferIsStructuredOverloadError) {
  serve::ModelRegistry registry;
  OnlineServiceOptions options;
  options.policy.refit_rows = 0;  // nothing drains the buffer
  options.policy.max_pending_rows = 3;
  ScriptedFitter fitter;
  OnlineService service(registry, options, fitter.fn());

  const serve::Request first =
      serve::parse_request(ingest_line("app", 2));
  EXPECT_EQ(service.handle_ingest(first).rfind("ok ", 0), 0u);
  const serve::Request second =
      serve::parse_request(ingest_line("app", 2, 16));
  const std::string response = service.handle_ingest(second);
  EXPECT_EQ(response.rfind("error overload:", 0), 0u) << response;
  EXPECT_NE(response.find("retry after a refit"), std::string::npos);
  EXPECT_EQ(service.stats().rows_pending, 2u);
}

TEST(OnlineServiceTest, StalenessTriggersRefitWithoutReachingRowThreshold) {
  serve::ModelRegistry registry;
  OnlineServiceOptions options;
  options.policy.refit_rows = 0;
  options.policy.max_staleness = std::chrono::milliseconds(50);
  ScriptedFitter fitter;
  auto now = std::chrono::steady_clock::time_point{};
  std::mutex clock_mutex;
  OnlineService service(registry, options, fitter.fn(),
                        [&now, &clock_mutex] {
                          std::lock_guard<std::mutex> lock(clock_mutex);
                          return now;
                        });

  const serve::Request request = serve::parse_request(ingest_line("app", 1));
  ASSERT_EQ(service.handle_ingest(request).rfind("ok ", 0), 0u);
  {
    std::lock_guard<std::mutex> lock(clock_mutex);
    now += std::chrono::milliseconds(200);
  }
  // The worker polls staleness every ~20ms of real time.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.stats().refits == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(service.stats().refits, 1u);
  ASSERT_NE(registry.version_of("app"), nullptr);
  EXPECT_EQ(registry.version_of("app")->source, VersionSource::kOnlineRefit);
}

TEST(OnlineServiceTest, QualityRegressionRollsBackToPreviousVersion) {
  serve::ModelRegistry registry;
  OnlineServiceOptions options;
  options.policy.refit_rows = 1;
  options.refit.max_quality_regression = 0.1;
  ScriptedFitter fitter;
  fitter.qualities = {0.1, 0.9};  // second refit is much worse
  OnlineService service(registry, options, fitter.fn());

  const serve::Request first = serve::parse_request(ingest_line("app", 1));
  service.handle_ingest(first);
  service.drain();
  const auto v1 = registry.version_of("app");
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version, 1u);

  const serve::Request second =
      serve::parse_request(ingest_line("app", 1, 16));
  service.handle_ingest(second);
  service.drain();

  const OnlineStats stats = service.stats();
  EXPECT_EQ(stats.refits, 2u);
  EXPECT_EQ(stats.rollbacks, 1u);
  const auto current = registry.version_of("app");
  ASSERT_NE(current, nullptr);
  // Rolled back: the good bundle is current again (same object), as a new
  // epoch with rollback provenance.
  EXPECT_EQ(current->models, v1->models);
  EXPECT_EQ(current->source, VersionSource::kRollback);
  EXPECT_EQ(current->version, 3u);
}

TEST(OnlineServiceTest, FitFailureKeepsServingThePreviousVersion) {
  serve::ModelRegistry registry;
  OnlineServiceOptions options;
  options.policy.refit_rows = 1;
  std::atomic<int> calls{0};
  auto fit = [&calls](const pipeline::CampaignData& data) {
    if (calls.fetch_add(1) >= 1) {
      throw exareq::InvalidArgument("synthetic fit failure");
    }
    pipeline::FittedBundle bundle;
    bundle.requirements = serve::testing::make_test_requirements(data.app_name);
    bundle.mean_abs_relative_error = 0.1;
    return bundle;
  };
  OnlineService service(registry, options, fit);

  service.handle_ingest(serve::parse_request(ingest_line("app", 1)));
  service.drain();
  const auto v1 = registry.version_of("app");
  ASSERT_NE(v1, nullptr);

  service.handle_ingest(serve::parse_request(ingest_line("app", 1, 16)));
  service.drain();
  const OnlineStats stats = service.stats();
  EXPECT_EQ(stats.refit_failures, 1u);
  EXPECT_EQ(stats.refits, 1u);
  // Still serving the last good version.
  EXPECT_EQ(registry.version_of("app")->models, v1->models);
}

TEST(OnlineServiceTest, IngestWithoutHooksIsRejectedByServer) {
  serve::ModelRegistry registry;
  registry.insert(serve::testing::make_test_requirements("app"));
  serve::ServerOptions options;
  options.workers = 1;
  serve::Server server(registry, options);
  const std::string response = server.handle(ingest_line("app", 1));
  EXPECT_EQ(response.rfind("error bad-request:", 0), 0u) << response;
  EXPECT_NE(response.find("not enabled"), std::string::npos) << response;
}

}  // namespace
}  // namespace exareq::online
