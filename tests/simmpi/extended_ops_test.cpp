// Tests of the extended communicator operations: wildcard receive,
// nonblocking requests, inclusive scan, and reduce-scatter.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "simmpi/runtime.hpp"
#include "support/error.hpp"

namespace exareq::simmpi {
namespace {

class ExtendedOpsTest : public ::testing::TestWithParam<int> {};

std::string rank_count_name(const ::testing::TestParamInfo<int>& info) {
  return "p" + std::to_string(info.param);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ExtendedOpsTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16),
                         rank_count_name);

TEST_P(ExtendedOpsTest, ScanComputesInclusivePrefix) {
  const int p = GetParam();
  run(p, [](Communicator& comm) {
    const std::vector<std::int64_t> mine{comm.rank() + 1, 1};
    const auto prefix = comm.scan<std::int64_t>(mine, ops::Sum{});
    const std::int64_t r = comm.rank();
    ASSERT_EQ(prefix.size(), 2u);
    EXPECT_EQ(prefix[0], (r + 1) * (r + 2) / 2);  // sum of 1..rank+1
    EXPECT_EQ(prefix[1], r + 1);
  });
}

TEST_P(ExtendedOpsTest, ScanWithMaxOperator) {
  const int p = GetParam();
  run(p, [p](Communicator& comm) {
    // Values decrease with rank; the running max is always rank 0's value.
    const std::vector<double> mine{static_cast<double>(p - comm.rank())};
    const auto prefix = comm.scan<double>(mine, ops::Max{});
    EXPECT_DOUBLE_EQ(prefix[0], static_cast<double>(p));
  });
}

TEST_P(ExtendedOpsTest, ReduceScatterDistributesReducedBlocks) {
  const int p = GetParam();
  run(p, [p](Communicator& comm) {
    // Block d of rank s carries value 100*d + s; rank r's reduced block is
    // sum over s of (100*r + s) = 100*r*p + p(p-1)/2.
    std::vector<std::int64_t> blocks(static_cast<std::size_t>(p) * 2);
    for (int d = 0; d < p; ++d) {
      blocks[2 * d] = 100 * d + comm.rank();
      blocks[2 * d + 1] = comm.rank();
    }
    const auto mine = comm.reduce_scatter<std::int64_t>(blocks, ops::Sum{});
    const std::int64_t rank_sum = static_cast<std::int64_t>(p) * (p - 1) / 2;
    ASSERT_EQ(mine.size(), 2u);
    EXPECT_EQ(mine[0], 100 * comm.rank() * p + rank_sum);
    EXPECT_EQ(mine[1], rank_sum);
  });
}

TEST_P(ExtendedOpsTest, IrecvWaitMatchesBlockingReceive) {
  const int p = GetParam();
  if (p < 2) return;
  run(p, [p](Communicator& comm) {
    // Ring shift implemented Irecv-first, like real MPI codes.
    const Rank next = (comm.rank() + 1) % p;
    const Rank prev = (comm.rank() - 1 + p) % p;
    auto request = comm.irecv(prev, 42);
    comm.isend<std::int64_t>(next, 42,
                             std::vector<std::int64_t>{comm.rank() * 10});
    const auto payload = comm.wait<std::int64_t>(request);
    ASSERT_EQ(payload.size(), 1u);
    EXPECT_EQ(payload[0], prev * 10);
    // A second wait on the same request is a no-op.
    EXPECT_TRUE(comm.wait<std::int64_t>(request).empty());
  });
}

TEST_P(ExtendedOpsTest, WaitAllCompletesInOrder) {
  const int p = GetParam();
  if (p < 3) return;
  run(p, [p](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<Communicator::Request> requests;
      for (Rank r = 1; r < p; ++r) requests.push_back(comm.irecv(r, 7));
      const auto results = comm.wait_all<std::int64_t>(requests);
      ASSERT_EQ(results.size(), static_cast<std::size_t>(p - 1));
      for (Rank r = 1; r < p; ++r) {
        EXPECT_EQ(results[static_cast<std::size_t>(r - 1)][0], r);
      }
    } else {
      comm.send<std::int64_t>(0, 7, std::vector<std::int64_t>{comm.rank()});
    }
  });
}

TEST_P(ExtendedOpsTest, RecvAnyCollectsFromAllSenders) {
  const int p = GetParam();
  if (p < 2) return;
  run(p, [p](Communicator& comm) {
    if (comm.rank() == 0) {
      std::set<Rank> seen;
      for (int i = 0; i < p - 1; ++i) {
        auto [source, payload] = comm.recv_any<std::int64_t>(9);
        EXPECT_EQ(payload[0], source * 3);
        seen.insert(source);
      }
      EXPECT_EQ(seen.size(), static_cast<std::size_t>(p - 1));
    } else {
      comm.send<std::int64_t>(0, 9, std::vector<std::int64_t>{comm.rank() * 3});
    }
  });
}

TEST(ExtendedOpsTest, IrecvValidatesSource) {
  run(2, [](Communicator& comm) {
    EXPECT_THROW(comm.irecv(5, 0), exareq::InvalidArgument);
    EXPECT_NO_THROW(comm.irecv(kAnySource, 0));
    if (comm.rank() == 0) {
      comm.send<double>(1, 0, std::vector<double>{1.0});
    } else {
      auto req = comm.irecv(kAnySource, 0);
      EXPECT_EQ(comm.wait<double>(req).size(), 1u);
    }
  });
}

TEST(ExtendedOpsTest, ReduceScatterRejectsRaggedInput) {
  EXPECT_THROW(run(3,
                   [](Communicator& comm) {
                     const std::vector<double> bad(4, 1.0);  // not multiple of 3
                     (void)comm.reduce_scatter<double>(bad, ops::Sum{});
                   }),
               exareq::InvalidArgument);
}

TEST(ExtendedOpsTest, ScanSingleRankIsIdentity) {
  run(1, [](Communicator& comm) {
    const std::vector<double> mine{4.5};
    EXPECT_DOUBLE_EQ(comm.scan<double>(mine, ops::Sum{})[0], 4.5);
  });
}

}  // namespace
}  // namespace exareq::simmpi
