#include "simmpi/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "support/error.hpp"

namespace exareq::simmpi {
namespace {

TEST(RuntimeTest, SingleRankRuns) {
  std::atomic<int> calls{0};
  run(1, [&calls](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(RuntimeTest, EveryRankGetsDistinctRank) {
  constexpr int p = 16;
  std::vector<std::atomic<int>> seen(p);
  run(p, [&seen](Communicator& comm) {
    ++seen[static_cast<std::size_t>(comm.rank())];
  });
  for (const auto& count : seen) EXPECT_EQ(count.load(), 1);
}

TEST(RuntimeTest, PointToPointRoundTrip) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> data{3.14, 2.71};
      comm.send<double>(1, 5, data);
      const auto back = comm.recv<double>(1, 6);
      EXPECT_DOUBLE_EQ(back[0], 6.28);
    } else {
      auto data = comm.recv<double>(0, 5);
      for (double& v : data) v *= 2.0;
      comm.send<double>(0, 6, std::vector<double>{data[0]});
    }
  });
}

TEST(RuntimeTest, SelfSendIsDelivered) {
  run(1, [](Communicator& comm) {
    comm.send<std::int64_t>(0, 1, std::vector<std::int64_t>{7});
    EXPECT_EQ(comm.recv<std::int64_t>(0, 1)[0], 7);
  });
}

TEST(RuntimeTest, ExceptionsPropagateToCaller) {
  EXPECT_THROW(run(4,
                   [](Communicator& comm) {
                     if (comm.rank() == 2) {
                       throw exareq::NumericError("rank 2 failed");
                     }
                   }),
               exareq::NumericError);
}

TEST(RuntimeTest, RejectsInvalidSizes) {
  EXPECT_THROW(run(0, [](Communicator&) {}), exareq::InvalidArgument);
  EXPECT_THROW(run(-3, [](Communicator&) {}), exareq::InvalidArgument);
  EXPECT_THROW(run(100000, [](Communicator&) {}), exareq::InvalidArgument);
}

TEST(RuntimeTest, RejectsNullFunction) {
  EXPECT_THROW(run(2, RankFunction{}), exareq::InvalidArgument);
}

TEST(RuntimeTest, SendValidatesDestination) {
  EXPECT_THROW(run(2,
                   [](Communicator& comm) {
                     if (comm.rank() == 0) {
                       comm.send<double>(5, 0, std::vector<double>{1.0});
                     }
                   }),
               exareq::InvalidArgument);
}

TEST(RuntimeTest, StatsCountPointToPointBytes) {
  const RunResult result = run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send<double>(1, 0, std::vector<double>(10));  // 80 bytes
    } else {
      (void)comm.recv<double>(0, 0);
    }
  });
  EXPECT_EQ(result.stats[0].bytes_sent, 80u);
  EXPECT_EQ(result.stats[0].bytes_received, 0u);
  EXPECT_EQ(result.stats[0].messages_sent, 1u);
  EXPECT_EQ(result.stats[1].bytes_received, 80u);
  EXPECT_EQ(result.stats[1].messages_received, 1u);
  EXPECT_EQ(result.max_bytes_per_rank(), 80u);
}

TEST(RuntimeTest, StatsAggregationHelpers) {
  std::vector<CommStats> stats(3);
  stats[0].bytes_sent = 10;
  stats[1].bytes_sent = 5;
  stats[1].bytes_received = 20;
  stats[2].bytes_received = 7;
  EXPECT_EQ(max_bytes_total(stats), 25u);
  EXPECT_NEAR(mean_bytes_total(stats), (10.0 + 25.0 + 7.0) / 3.0, 1e-12);
  EXPECT_THROW(max_bytes_total({}), exareq::InvalidArgument);
}

TEST(RuntimeTest, FromBytesRejectsMisalignedPayload) {
  const std::vector<std::byte> bytes(7);
  EXPECT_THROW(from_bytes<double>(bytes), exareq::InvalidArgument);
}

TEST(RuntimeTest, ToBytesFromBytesRoundTrip) {
  const std::vector<double> values{1.0, -2.5, 1e300};
  const auto bytes = to_bytes<double>(values);
  EXPECT_EQ(bytes.size(), 24u);
  EXPECT_EQ(from_bytes<double>(bytes), values);
}

}  // namespace
}  // namespace exareq::simmpi
