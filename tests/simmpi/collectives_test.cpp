// Correctness of every collective over a sweep of rank counts, including
// non-powers of two (exercising the allreduce fallback and the generic
// tree/ring paths).
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "simmpi/runtime.hpp"

namespace exareq::simmpi {
namespace {

class CollectiveTest : public ::testing::TestWithParam<int> {};

std::string rank_count_name(const ::testing::TestParamInfo<int>& info) {
  return "p" + std::to_string(info.param);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 32),
                         rank_count_name);

TEST_P(CollectiveTest, BcastDeliversRootData) {
  const int p = GetParam();
  for (const Rank root : {0, p - 1}) {
    run(p, [root](Communicator& comm) {
      std::vector<double> data;
      if (comm.rank() == root) data = {1.5, 2.5, 3.5};
      comm.bcast(data, root);
      ASSERT_EQ(data.size(), 3u);
      EXPECT_DOUBLE_EQ(data[0], 1.5);
      EXPECT_DOUBLE_EQ(data[1], 2.5);
      EXPECT_DOUBLE_EQ(data[2], 3.5);
    });
  }
}

TEST_P(CollectiveTest, AllreduceSumsOverRanks) {
  const int p = GetParam();
  run(p, [p](Communicator& comm) {
    const std::vector<std::int64_t> mine{comm.rank(), 2 * comm.rank(), 1};
    const auto result = comm.allreduce<std::int64_t>(mine, ops::Sum{});
    const std::int64_t rank_sum = static_cast<std::int64_t>(p) * (p - 1) / 2;
    ASSERT_EQ(result.size(), 3u);
    EXPECT_EQ(result[0], rank_sum);
    EXPECT_EQ(result[1], 2 * rank_sum);
    EXPECT_EQ(result[2], p);
  });
}

TEST_P(CollectiveTest, AllreduceMaxAndMin) {
  const int p = GetParam();
  run(p, [p](Communicator& comm) {
    const std::vector<double> mine{static_cast<double>(comm.rank())};
    EXPECT_DOUBLE_EQ(comm.allreduce<double>(mine, ops::Max{})[0], p - 1.0);
    EXPECT_DOUBLE_EQ(comm.allreduce<double>(mine, ops::Min{})[0], 0.0);
  });
}

TEST_P(CollectiveTest, ReduceAtRoot) {
  const int p = GetParam();
  const Rank root = p / 2;
  run(p, [p, root](Communicator& comm) {
    const std::vector<std::int64_t> mine{1, comm.rank()};
    const auto result = comm.reduce<std::int64_t>(mine, ops::Sum{}, root);
    if (comm.rank() == root) {
      EXPECT_EQ(result[0], p);
      EXPECT_EQ(result[1], static_cast<std::int64_t>(p) * (p - 1) / 2);
    }
  });
}

TEST_P(CollectiveTest, AllgatherOrdersBlocksByRank) {
  const int p = GetParam();
  run(p, [p](Communicator& comm) {
    const std::vector<std::int64_t> mine{10 * comm.rank(), 10 * comm.rank() + 1};
    const auto result = comm.allgather<std::int64_t>(mine);
    ASSERT_EQ(result.size(), static_cast<std::size_t>(2 * p));
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(result[2 * r], 10 * r);
      EXPECT_EQ(result[2 * r + 1], 10 * r + 1);
    }
  });
}

TEST_P(CollectiveTest, AlltoallTransposesBlocks) {
  const int p = GetParam();
  run(p, [p](Communicator& comm) {
    // Block for destination d carries value 100 * rank + d.
    std::vector<std::int64_t> mine(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) mine[d] = 100 * comm.rank() + d;
    const auto result = comm.alltoall<std::int64_t>(mine);
    ASSERT_EQ(result.size(), static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) {
      EXPECT_EQ(result[s], 100 * s + comm.rank());
    }
  });
}

TEST_P(CollectiveTest, GatherCollectsAtRoot) {
  const int p = GetParam();
  run(p, [p](Communicator& comm) {
    const std::vector<double> mine{static_cast<double>(comm.rank())};
    const auto result = comm.gather<double>(mine, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(result.size(), static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) EXPECT_DOUBLE_EQ(result[r], r);
    } else {
      EXPECT_TRUE(result.empty());
    }
  });
}

TEST_P(CollectiveTest, ScatterDistributesBlocks) {
  const int p = GetParam();
  run(p, [p](Communicator& comm) {
    std::vector<std::int64_t> all;
    if (comm.rank() == 0) {
      all.resize(static_cast<std::size_t>(2 * p));
      std::iota(all.begin(), all.end(), 0);
    }
    const auto mine = comm.scatter<std::int64_t>(all, 2, 0);
    ASSERT_EQ(mine.size(), 2u);
    EXPECT_EQ(mine[0], 2 * comm.rank());
    EXPECT_EQ(mine[1], 2 * comm.rank() + 1);
  });
}

TEST_P(CollectiveTest, BarrierCompletesRepeatedly) {
  const int p = GetParam();
  run(p, [](Communicator& comm) {
    for (int i = 0; i < 5; ++i) comm.barrier();
  });
}

TEST_P(CollectiveTest, BackToBackCollectivesDoNotCrossTalk) {
  const int p = GetParam();
  run(p, [p](Communicator& comm) {
    for (int round = 0; round < 10; ++round) {
      const std::vector<std::int64_t> mine{comm.rank() + round};
      const auto sum = comm.allreduce<std::int64_t>(mine, ops::Sum{});
      EXPECT_EQ(sum[0],
                static_cast<std::int64_t>(p) * (p - 1) / 2 +
                    static_cast<std::int64_t>(p) * round);
      std::vector<std::int64_t> broadcast;
      if (comm.rank() == round % p) broadcast = {round};
      comm.bcast(broadcast, round % p);
      EXPECT_EQ(broadcast[0], round);
    }
  });
}

}  // namespace
}  // namespace exareq::simmpi
