#include "simmpi/mailbox.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace exareq::simmpi {
namespace {

Envelope make_envelope(Rank source, Tag tag, std::size_t size) {
  Envelope e;
  e.source = source;
  e.tag = tag;
  e.payload.assign(size, std::byte{42});
  return e;
}

TEST(MailboxTest, PutThenGetMatches) {
  Mailbox box;
  box.put(make_envelope(3, 7, 16));
  const Envelope e = box.get(3, 7);
  EXPECT_EQ(e.source, 3);
  EXPECT_EQ(e.tag, 7);
  EXPECT_EQ(e.payload.size(), 16u);
}

TEST(MailboxTest, GetSkipsNonMatching) {
  Mailbox box;
  box.put(make_envelope(1, 1, 8));
  box.put(make_envelope(2, 2, 9));
  const Envelope e = box.get(2, 2);
  EXPECT_EQ(e.payload.size(), 9u);
  EXPECT_EQ(box.pending(), 1u);
}

TEST(MailboxTest, FifoPerSourceAndTag) {
  Mailbox box;
  box.put(make_envelope(1, 5, 1));
  box.put(make_envelope(1, 5, 2));
  box.put(make_envelope(1, 5, 3));
  EXPECT_EQ(box.get(1, 5).payload.size(), 1u);
  EXPECT_EQ(box.get(1, 5).payload.size(), 2u);
  EXPECT_EQ(box.get(1, 5).payload.size(), 3u);
}

TEST(MailboxTest, ProbeDoesNotConsume) {
  Mailbox box;
  EXPECT_FALSE(box.probe(0, 0));
  box.put(make_envelope(0, 0, 4));
  EXPECT_TRUE(box.probe(0, 0));
  EXPECT_FALSE(box.probe(0, 1));
  EXPECT_EQ(box.pending(), 1u);
}

TEST(MailboxTest, GetBlocksUntilPut) {
  Mailbox box;
  std::size_t received = 0;
  std::thread receiver([&box, &received] {
    received = box.get(9, 9).payload.size();
  });
  // The receiver is (very likely) blocked; deliver the message.
  box.put(make_envelope(9, 9, 21));
  receiver.join();
  EXPECT_EQ(received, 21u);
}

TEST(MailboxTest, ConcurrentProducersAllDelivered) {
  Mailbox box;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 100;
  std::vector<std::thread> producers;
  for (int producer = 0; producer < kProducers; ++producer) {
    producers.emplace_back([&box, producer] {
      for (int i = 0; i < kPerProducer; ++i) {
        box.put(make_envelope(producer, 0, static_cast<std::size_t>(i + 1)));
      }
    });
  }
  for (auto& t : producers) t.join();
  // Per-source FIFO must hold even under concurrency.
  for (int producer = 0; producer < kProducers; ++producer) {
    for (int i = 0; i < kPerProducer; ++i) {
      ASSERT_EQ(box.get(producer, 0).payload.size(),
                static_cast<std::size_t>(i + 1));
    }
  }
  EXPECT_EQ(box.pending(), 0u);
}

}  // namespace
}  // namespace exareq::simmpi
