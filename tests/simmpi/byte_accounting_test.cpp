// Byte-accounting closed forms. These tests pin the contract between the
// simulated collectives and the model library's collective basis functions
// (model/basis.hpp): a fitted coefficient of Allreduce(p)/Bcast(p)/
// Alltoall(p) must equal the per-call payload in bytes.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "simmpi/runtime.hpp"

namespace exareq::simmpi {
namespace {

constexpr std::size_t kElements = 32;
constexpr std::uint64_t kPayload = kElements * sizeof(double);  // s in bytes

RunResult run_collective(int p, const RankFunction& fn) { return run(p, fn); }

class ByteAccountingTest : public ::testing::TestWithParam<int> {};

std::string rank_count_name(const ::testing::TestParamInfo<int>& info) {
  return "p" + std::to_string(info.param);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, ByteAccountingTest,
                         ::testing::Values(2, 4, 8, 16, 32, 64),
                         rank_count_name);

TEST_P(ByteAccountingTest, AllreduceCostsTwoSLogPPerRank) {
  const int p = GetParam();
  const auto result = run_collective(p, [](Communicator& comm) {
    const std::vector<double> data(kElements, 1.0);
    (void)comm.allreduce<double>(data, ops::Sum{});
  });
  const auto log2p = static_cast<std::uint64_t>(std::log2(p));
  for (const CommStats& stats : result.stats) {
    EXPECT_EQ(stats.bytes_sent, kPayload * log2p);
    EXPECT_EQ(stats.bytes_received, kPayload * log2p);
    // bytes_total == payload * Allreduce(p) with Allreduce(p) = 2 log2 p.
    EXPECT_EQ(stats.bytes_total(), kPayload * 2 * log2p);
  }
}

TEST_P(ByteAccountingTest, BcastBusiestRankCostsSLogP) {
  const int p = GetParam();
  const auto result = run_collective(p, [](Communicator& comm) {
    std::vector<double> data(kElements, 2.0);
    comm.bcast(data, 0);
  });
  const auto log2p = static_cast<std::uint64_t>(std::log2(p));
  // Root sends one message per tree level and receives nothing.
  EXPECT_EQ(result.stats[0].bytes_sent, kPayload * log2p);
  EXPECT_EQ(result.stats[0].bytes_received, 0u);
  // The busiest rank's total equals payload * Bcast(p) = payload * log2(p).
  EXPECT_EQ(result.max_bytes_per_rank(), kPayload * log2p);
  // Conservation: total sent == total received == (p-1) messages.
  std::uint64_t sent = 0, received = 0;
  for (const CommStats& stats : result.stats) {
    sent += stats.bytes_sent;
    received += stats.bytes_received;
  }
  EXPECT_EQ(sent, kPayload * static_cast<std::uint64_t>(p - 1));
  EXPECT_EQ(received, sent);
}

TEST_P(ByteAccountingTest, AlltoallCostsTwoSTimesPMinusOnePerRank) {
  const int p = GetParam();
  const auto result = run_collective(p, [p](Communicator& comm) {
    const std::vector<double> data(kElements * static_cast<std::size_t>(p), 1.0);
    (void)comm.alltoall<double>(data);
  });
  for (const CommStats& stats : result.stats) {
    EXPECT_EQ(stats.bytes_sent, kPayload * static_cast<std::uint64_t>(p - 1));
    EXPECT_EQ(stats.bytes_total(),
              kPayload * 2 * static_cast<std::uint64_t>(p - 1));
  }
}

TEST_P(ByteAccountingTest, AllgatherCostsTwoSTimesPMinusOnePerRank) {
  const int p = GetParam();
  const auto result = run_collective(p, [](Communicator& comm) {
    const std::vector<double> data(kElements, 1.0);
    (void)comm.allgather<double>(data);
  });
  for (const CommStats& stats : result.stats) {
    EXPECT_EQ(stats.bytes_total(),
              kPayload * 2 * static_cast<std::uint64_t>(p - 1));
  }
}

TEST_P(ByteAccountingTest, CollectiveCallCountsAreRecorded) {
  const int p = GetParam();
  const auto result = run_collective(p, [](Communicator& comm) {
    const std::vector<double> data(4, 1.0);
    (void)comm.allreduce<double>(data, ops::Sum{});
    comm.barrier();
    std::vector<double> b(4, 0.0);
    if (comm.rank() == 0) b.assign(4, 1.0);
    comm.bcast(b, 0);
  });
  for (const CommStats& stats : result.stats) {
    EXPECT_EQ(stats.collective_calls, 3u);
  }
}

TEST(ByteAccountingTest, SingleRankCollectivesMoveNoBytes) {
  const auto result = run_collective(1, [](Communicator& comm) {
    const std::vector<double> data(kElements, 1.0);
    (void)comm.allreduce<double>(data, ops::Sum{});
    (void)comm.alltoall<double>(data);
    (void)comm.allgather<double>(data);
    std::vector<double> b(kElements, 1.0);
    comm.bcast(b, 0);
    comm.barrier();
  });
  EXPECT_EQ(result.stats[0].bytes_total(), 0u);
}

TEST(ByteAccountingTest, NonPowerOfTwoAllreduceStaysNearClosedForm) {
  // The binary-block fallback adds at most two extra payloads for the
  // folded ranks; the busiest rank stays within [2 s log2 p, 2 s (log2 p + 2)].
  for (const int p : {3, 5, 6, 7, 12, 24}) {
    const auto result = run_collective(p, [](Communicator& comm) {
      const std::vector<double> data(kElements, 1.0);
      (void)comm.allreduce<double>(data, ops::Sum{});
    });
    const double log2p = std::floor(std::log2(p));
    const auto busiest = static_cast<double>(result.max_bytes_per_rank());
    EXPECT_GE(busiest, 2.0 * static_cast<double>(kPayload) * log2p) << p;
    EXPECT_LE(busiest, 2.0 * static_cast<double>(kPayload) * (log2p + 2.0)) << p;
  }
}

}  // namespace
}  // namespace exareq::simmpi
