#include "cli/cli.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "../serve/serve_test_util.hpp"
#include "model/serialize.hpp"
#include "support/error.hpp"

namespace exareq::cli {
namespace {

struct CliRun {
  int exit_code;
  std::string out;
  std::string err;
};

CliRun run(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

/// Small grid so CLI tests stay fast.
const std::vector<std::string> kSmallGrid = {"--processes", "2,4,8", "--sizes",
                                             "32,64,128"};

std::vector<std::string> with_grid(std::vector<std::string> args) {
  args.insert(args.end(), kSmallGrid.begin(), kSmallGrid.end());
  return args;
}

TEST(CliTest, NoArgumentsPrintsUsageAndFails) {
  const CliRun result = run({});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.out.find("usage:"), std::string::npos);
}

TEST(CliTest, HelpSucceeds) {
  const CliRun result = run({"help"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("usage:"), std::string::npos);
}

TEST(CliTest, ListShowsAllApps) {
  const CliRun result = run({"list"});
  EXPECT_EQ(result.exit_code, 0);
  for (const char* name : {"Kripke", "LULESH", "MILC", "Relearn", "icoFoam"}) {
    EXPECT_NE(result.out.find(name), std::string::npos) << name;
  }
}

TEST(CliTest, UnknownCommandFailsWithMessage) {
  const CliRun result = run({"frobnicate"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, UnknownAppFails) {
  const CliRun result = run({"measure", "nbody"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("unknown application"), std::string::npos);
}

TEST(CliTest, FlagWithoutValueFails) {
  const CliRun result = run({"measure", "Kripke", "--out"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("needs a value"), std::string::npos);
}

TEST(CliTest, MeasureCheckpointAndResumeProduceIdenticalCsv) {
  const std::string dir = ::testing::TempDir() + "exareq_cli_ckpt";
  std::filesystem::remove_all(dir);
  const CliRun clean = run(with_grid({"measure", "Kripke"}));
  ASSERT_EQ(clean.exit_code, 0);

  const CliRun checkpointed =
      run(with_grid({"measure", "Kripke", "--checkpoint", dir}));
  EXPECT_EQ(checkpointed.exit_code, 0);
  EXPECT_EQ(checkpointed.out, clean.out);
  EXPECT_TRUE(std::filesystem::exists(dir + "/manifest"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/records.log"));

  const CliRun resumed =
      run(with_grid({"measure", "Kripke", "--checkpoint", dir, "--resume"}));
  EXPECT_EQ(resumed.exit_code, 0);
  EXPECT_EQ(resumed.out, clean.out);
  std::filesystem::remove_all(dir);
}

TEST(CliTest, ResumeWithoutCheckpointFails) {
  const CliRun result = run(with_grid({"measure", "Kripke", "--resume"}));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("--checkpoint"), std::string::npos);
}

TEST(CliTest, ResumeRejectsMismatchedGrid) {
  const std::string dir = ::testing::TempDir() + "exareq_cli_ckpt_mismatch";
  std::filesystem::remove_all(dir);
  const CliRun first =
      run(with_grid({"measure", "Kripke", "--checkpoint", dir}));
  ASSERT_EQ(first.exit_code, 0);
  const CliRun mismatched =
      run({"measure", "Kripke", "--checkpoint", dir, "--resume",
           "--processes", "2,4", "--sizes", "32,64"});
  EXPECT_EQ(mismatched.exit_code, 1);
  EXPECT_NE(mismatched.err.find("different campaign"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(CliTest, MeasureSamplingPresetChangesLocality) {
  // Sparser sampling thins the distance statistics, so the stack-distance
  // column may change — but the command must succeed for every preset and
  // reject unknown names.
  for (const char* preset : {"exact", "balanced", "sparse", "minimal"}) {
    const CliRun result =
        run(with_grid({"measure", "Kripke", "--sampling", preset}));
    EXPECT_EQ(result.exit_code, 0) << preset;
  }
  const CliRun bad =
      run(with_grid({"measure", "Kripke", "--sampling", "turbo"}));
  EXPECT_EQ(bad.exit_code, 1);
  EXPECT_NE(bad.err.find("--sampling"), std::string::npos);
}

TEST(CliTest, LocalityAcceptsSamplingPreset) {
  const CliRun result =
      run({"locality", "MILC", "--size", "128", "--sampling", "exact"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("Weighted median stack distance"),
            std::string::npos);
}

TEST(CliTest, MeasureWritesCsvToStdout) {
  const CliRun result = run(with_grid({"measure", "Kripke"}));
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("p,n,bytes_used"), std::string::npos);
  // 3 x 3 grid -> header + 9 rows.
  EXPECT_EQ(std::count(result.out.begin(), result.out.end(), '\n'), 10);
}

TEST(CliTest, MeasureThenAnalyzeFromFile) {
  const std::string path = "/tmp/exareq_cli_test_campaign.csv";
  // Five values per axis so the model generator accepts the campaign.
  const CliRun measured =
      run({"measure", "Kripke", "--processes", "2,4,8,16,32", "--sizes",
           "16,32,64,128,256", "--out", path});
  ASSERT_EQ(measured.exit_code, 0) << measured.err;

  const CliRun modeled = run({"model", "Kripke", "--in", path});
  EXPECT_EQ(modeled.exit_code, 0) << modeled.err;
  EXPECT_NE(modeled.out.find("#FLOP"), std::string::npos);
  EXPECT_NE(modeled.out.find("face_exchange"), std::string::npos);
  // Loading from a file must not re-measure.
  EXPECT_EQ(modeled.err.find("[measuring"), std::string::npos);

  // The engine observability block is part of the model report.
  EXPECT_NE(modeled.out.find("Engine stats:"), std::string::npos);
  EXPECT_NE(modeled.out.find("Hypotheses"), std::string::npos);
  EXPECT_NE(modeled.out.find("CV solves"), std::string::npos);
  EXPECT_NE(modeled.out.find("Total (threads="), std::string::npos);

  // --threads 1 selects the same models as the default pool.
  const CliRun serial =
      run({"model", "Kripke", "--in", path, "--threads", "1"});
  EXPECT_EQ(serial.exit_code, 0) << serial.err;
  const auto models_prefix = [](const std::string& text) {
    return text.substr(0, text.find("Engine stats:"));
  };
  EXPECT_EQ(models_prefix(serial.out), models_prefix(modeled.out));

  const CliRun upgraded = run({"upgrade", "Kripke", "--in", path});
  EXPECT_EQ(upgraded.exit_code, 0) << upgraded.err;
  EXPECT_NE(upgraded.out.find("Double the racks"), std::string::npos);

  const CliRun strawman = run({"strawman", "Kripke", "--in", path});
  EXPECT_EQ(strawman.exit_code, 0) << strawman.err;
  EXPECT_NE(strawman.out.find("Massively parallel"), std::string::npos);
  EXPECT_NE(strawman.out.find("yes"), std::string::npos);

  std::remove(path.c_str());
}

TEST(CliTest, ModelsOutWritesSerializedModels) {
  const std::string path = "/tmp/exareq_cli_test_models.txt";
  const CliRun result = run({"model", "Kripke", "--processes", "2,4,8,16,32",
                             "--sizes", "16,32,64,128,256", "--models-out",
                             path});
  ASSERT_EQ(result.exit_code, 0) << result.err;
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_NE(content.str().find("model v1"), std::string::npos);
  EXPECT_NE(content.str().find("# footprint"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, LocalityReportsGroups) {
  const CliRun result = run({"locality", "MILC", "--size", "256"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("lattice_sweep"), std::string::npos);
  EXPECT_NE(result.out.find("Weighted median stack distance"),
            std::string::npos);
}

TEST(CliTest, MissingInputFileFails) {
  const CliRun result = run({"model", "Kripke", "--in", "/nonexistent.csv"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("cannot open"), std::string::npos);
}

TEST(CliTest, ThreadsFlagRejectsBadValues) {
  for (const char* bad : {"-1", "1.5", "many"}) {
    const CliRun result = run({"model", "Kripke", "--in", "/nonexistent.csv",
                               "--threads", bad});
    EXPECT_EQ(result.exit_code, 1) << bad;
    EXPECT_NE(result.err.find("--threads"), std::string::npos) << bad;
  }
}

TEST(CliTest, TraceFlagRejectsUnwritablePath) {
  // The path is validated before the campaign runs, so a typo'd directory
  // fails fast instead of after minutes of measurement.
  const CliRun result = run(
      with_grid({"measure", "Kripke", "--trace", "/nonexistent-dir/out.json"}));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("cannot write trace file"), std::string::npos)
      << result.err;
  EXPECT_NE(result.err.find("/nonexistent-dir/out.json"), std::string::npos);
  // Fail-fast: no campaign output was produced.
  EXPECT_EQ(result.out.find("p,n,bytes_used"), std::string::npos);
}

TEST(CliTest, TraceFlagWritesChromeJson) {
  const std::string path = "/tmp/exareq_cli_test_trace.json";
  const CliRun result =
      run(with_grid({"measure", "Kripke", "--trace", path}));
  ASSERT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.err.find("trace spans"), std::string::npos) << result.err;
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream content;
  content << file.rdbuf();
  const std::string json = content.str();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"cat\":\"campaign\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"taskdag\""), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  std::remove(path.c_str());
}

TEST(CliTest, MetricsFlagDumpsRegistry) {
  const CliRun text = run(with_grid({"measure", "Kripke", "--metrics"}));
  ASSERT_EQ(text.exit_code, 0) << text.err;
  EXPECT_NE(text.out.find("campaign.grid_points"), std::string::npos)
      << text.out;
  EXPECT_NE(text.out.find("taskdag.tasks"), std::string::npos);

  const CliRun json = run(with_grid({"measure", "Kripke", "--metrics=json"}));
  ASSERT_EQ(json.exit_code, 0) << json.err;
  EXPECT_NE(json.out.find("\"campaign.grid_points\":"), std::string::npos)
      << json.out;
}

TEST(CliTest, ParseIntList) {
  EXPECT_EQ(parse_int_list("4,8,16"), (std::vector<std::int64_t>{4, 8, 16}));
  // Unordered and duplicated input is sorted and deduplicated.
  EXPECT_EQ(parse_int_list("16,8,4,8"), (std::vector<std::int64_t>{4, 8, 16}));
  EXPECT_THROW(parse_int_list(""), exareq::InvalidArgument);
  EXPECT_THROW(parse_int_list("4,x"), exareq::InvalidArgument);
  EXPECT_THROW(parse_int_list("4,-2"), exareq::InvalidArgument);
  EXPECT_THROW(parse_int_list("4,,8"), exareq::InvalidArgument);
  // Fewer than 2 distinct values is a degenerate fit grid.
  EXPECT_THROW(parse_int_list("7"), exareq::InvalidArgument);
  EXPECT_THROW(parse_int_list("7,7,7"), exareq::InvalidArgument);
}

TEST(CliTest, ParseIntListRejectsFuzzShapedInput) {
  // Values from_chars cannot fully consume must be rejected, not silently
  // truncated: embedded whitespace, trailing separators, sign noise,
  // overflow, and zero (a zero grid axis is never valid).
  for (const char* bad : {" 4,8", "4 ,8", "4,8,", ",4,8", "4,+8", "0,4",
                          "4,8.0", "99999999999999999999,4", "4,0x10",
                          "4,8 16", "\t4,8"}) {
    EXPECT_THROW(parse_int_list(bad), exareq::InvalidArgument) << bad;
  }
}

TEST(CliTest, ThreadsFlagRejectsOverflowAndJunkSuffixes) {
  // from_chars-based validation: partial parses ("4x"), overflow, and
  // empty values must all fail with a message naming the flag.
  for (const char* bad : {"4x", "99999999999999999999", "", "0.5", "+-2"}) {
    const CliRun result = run({"model", "Kripke", "--in", "/nonexistent.csv",
                               "--threads", bad});
    EXPECT_EQ(result.exit_code, 1) << "'" << bad << "'";
    EXPECT_NE(result.err.find("threads"), std::string::npos) << result.err;
  }
}

/// Writes a synthetic model bundle file the registry can load, so serve
/// tests never measure or fit.
std::string write_bundle_file(const std::string& name) {
  const codesign::AppRequirements app =
      serve::testing::make_test_requirements(name);
  model::ModelBundle bundle;
  bundle.name = name;
  bundle.models = {{"footprint", app.footprint},
                   {"flops", app.flops},
                   {"comm_bytes", app.comm_bytes},
                   {"loads_stores", app.loads_stores},
                   {"stack_distance", app.stack_distance}};
  const std::string path = "/tmp/exareq_cli_" + name + "_" +
                           std::to_string(::getpid()) + ".models";
  std::ofstream file(path);
  file << model::serialize_bundle(bundle);
  return path;
}

TEST(CliTest, ServeAnswersRequestsFileAsOneShardedBatch) {
  const std::string lulesh = write_bundle_file("lulesh");
  const std::string hpcg = write_bundle_file("hpcg");
  const std::string requests = "/tmp/exareq_cli_requests_" +
                               std::to_string(::getpid()) + ".txt";
  {
    std::ofstream file(requests);
    file << "# comment lines and blanks are skipped\n"
         << "\n"
         << "eval lulesh flops 64 100\n"
         << "eval hpcg footprint 64 100\n"
         << "definitely not a verb\n"
         << "invert lulesh 65536 2147483648\n"
         << "status\n";
  }
  const CliRun result = run({"serve", "--models", lulesh + "," + hpcg,
                             "--requests", requests, "--workers", "3",
                             "--status"});
  ASSERT_EQ(result.exit_code, 0) << result.err;
  std::vector<std::string> lines;
  std::stringstream stream(result.out);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  ASSERT_GE(lines.size(), 5u) << result.out;
  EXPECT_EQ(lines[0].rfind("ok eval ", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("ok eval ", 0), 0u) << lines[1];
  // The malformed line answers in place without failing the batch.
  EXPECT_EQ(lines[2].rfind("error bad-request", 0), 0u) << lines[2];
  EXPECT_EQ(lines[3].rfind("ok invert ", 0), 0u) << lines[3];
  EXPECT_NE(lines[4].find("shards=3"), std::string::npos) << lines[4];
  // --status appends the per-shard table after the responses.
  EXPECT_NE(result.out.find("Shard"), std::string::npos);
  EXPECT_NE(result.err.find("across 3 shards"), std::string::npos)
      << result.err;
  std::remove(lulesh.c_str());
  std::remove(hpcg.c_str());
  std::remove(requests.c_str());
}

TEST(CliTest, ServeWithoutSinkFailsWithMessage) {
  const CliRun result = run({"serve", "--workers", "2"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("--requests FILE, --socket PATH, and/or --tcp"),
            std::string::npos)
      << result.err;
}

TEST(CliTest, QueryValidatesItsFlagCombinations) {
  // No transport.
  CliRun result = run({"query", "--request", "status"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("--socket PATH or --tcp PORT"), std::string::npos)
      << result.err;
  // Both payload flags at once.
  result = run({"query", "--socket", "/tmp/nope.sock", "--request", "status",
                "--requests", "/tmp/nope.txt"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("--request 'LINE' or"), std::string::npos)
      << result.err;
  // --binary with a line the client cannot encode fails client-side.
  result = run({"query", "--socket", "/tmp/nope.sock", "--binary",
                "--request", "not a verb"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("error:"), std::string::npos) << result.err;
}

}  // namespace
}  // namespace exareq::cli
