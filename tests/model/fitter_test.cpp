#include "model/fitter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace exareq::model {
namespace {

const std::vector<double> kProcessCounts{4.0, 8.0, 16.0, 32.0, 64.0, 128.0};

MeasurementSet sample_1d(const std::vector<double>& xs,
                         const std::function<double(double)>& f,
                         double noise_fraction = 0.0, std::uint64_t seed = 1) {
  exareq::Rng rng(seed);
  MeasurementSet data({"p"});
  for (double x : xs) {
    const double clean = f(x);
    const double noisy = clean * (1.0 + noise_fraction * rng.normal());
    data.add({x}, noisy);
  }
  return data;
}

TEST(FitterTest, RecoversConstantModel) {
  const auto data = sample_1d(kProcessCounts, [](double) { return 42.0; });
  const FitResult result = fit_single_parameter(data);
  EXPECT_TRUE(result.model.is_constant());
  EXPECT_NEAR(result.model.constant(), 42.0, 1e-9);
}

TEST(FitterTest, RecoversLinearModel) {
  const auto data = sample_1d(kProcessCounts, [](double x) { return 3.0 * x; });
  const FitResult result = fit_single_parameter(data);
  ASSERT_EQ(result.model.terms().size(), 1u);
  const Term& term = result.model.terms()[0];
  EXPECT_DOUBLE_EQ(term.factors[0].poly_exponent, 1.0);
  EXPECT_DOUBLE_EQ(term.factors[0].log_exponent, 0.0);
  EXPECT_NEAR(term.coefficient, 3.0, 1e-6);
}

TEST(FitterTest, RecoversLogModel) {
  const auto data = sample_1d(kProcessCounts,
                              [](double x) { return 5.0 * std::log2(x) + 7.0; });
  const FitResult result = fit_single_parameter(data);
  ASSERT_EQ(result.model.terms().size(), 1u);
  const Term& term = result.model.terms()[0];
  EXPECT_DOUBLE_EQ(term.factors[0].poly_exponent, 0.0);
  EXPECT_DOUBLE_EQ(term.factors[0].log_exponent, 1.0);
  EXPECT_NEAR(term.coefficient, 5.0, 1e-6);
  EXPECT_NEAR(result.model.constant(), 7.0, 1e-6);
}

TEST(FitterTest, RecoversFractionalExponent) {
  const auto data =
      sample_1d(kProcessCounts, [](double x) { return 2.0 * std::pow(x, 1.5); });
  const FitResult result = fit_single_parameter(data);
  ASSERT_EQ(result.model.terms().size(), 1u);
  EXPECT_DOUBLE_EQ(result.model.terms()[0].factors[0].poly_exponent, 1.5);
}

TEST(FitterTest, RecoversTwoTermModel) {
  // 1e6 * x + 1e2 * x^2: both terms matter over this range.
  const auto data = sample_1d(kProcessCounts,
                              [](double x) { return 1e6 * x + 1e2 * x * x; });
  const FitResult result = fit_single_parameter(data);
  ASSERT_EQ(result.model.terms().size(), 2u);
  const double check = result.model.evaluate1(256.0);
  EXPECT_NEAR(check, 1e6 * 256.0 + 1e2 * 256.0 * 256.0, 1e-3 * check);
}

TEST(FitterTest, RecoversCollectiveBasisWhenEnabled) {
  // Payload 1e4 bytes per Allreduce: bytes = 1e4 * 2 * log2(p).
  const auto data = sample_1d(
      kProcessCounts, [](double x) { return 1e4 * 2.0 * std::log2(x); });
  SearchSpace space = SearchSpace::paper_default();
  space.include_collectives = true;
  FitOptions options;
  // Allreduce(p) and log2(p) are proportional; the collective must win the
  // complexity tie-break (0.5 == 0.5) deterministically, so widen the
  // search: what matters is that *a* log-shaped basis is chosen and the
  // prediction is exact.
  const FitResult result = fit_single_parameter(data, space, options);
  ASSERT_EQ(result.model.terms().size(), 1u);
  EXPECT_NEAR(result.model.evaluate1(256.0), 1e4 * 2.0 * 8.0, 1.0);
}

TEST(FitterTest, NoiseDoesNotInduceOverfitting) {
  // Counter-precision noise (0.5%, the regime the paper's "highly
  // reproducible hardware and software counters" statement refers to) on a
  // clean linear trend must still produce a single-term linear model with a
  // stable extrapolation. Exact exponent identification needs a wide
  // parameter range — neighbouring grid shapes like x^0.75 * sqrt(log2 x)
  // are nearly proportional to x over narrow ranges. (The NoiseRobustness
  // sweep below checks extrapolation stability on the narrow range up to
  // 5% noise, where exact structure recovery is no longer guaranteed.)
  const std::vector<double> wide{4.0,   8.0,   16.0,  32.0,  64.0,
                                 128.0, 256.0, 512.0, 1024.0};
  const auto data = sample_1d(wide, [](double x) { return 1e3 * x; }, 0.005, 99);
  const FitResult result = fit_single_parameter(data);
  ASSERT_EQ(result.model.terms().size(), 1u) << result.model.to_string();
  EXPECT_DOUBLE_EQ(result.model.terms()[0].factors[0].poly_exponent, 1.0);
  EXPECT_DOUBLE_EQ(result.model.terms()[0].factors[0].log_exponent, 0.0);
  EXPECT_NEAR(result.model.terms()[0].coefficient, 1e3, 20.0);
  EXPECT_NEAR(result.model.evaluate1(1e6), 1e9, 0.05e9);
}

TEST(FitterTest, QualityStatisticsReportCleanFit) {
  const auto data = sample_1d(kProcessCounts, [](double x) { return 2.0 * x; });
  const FitResult result = fit_single_parameter(data);
  EXPECT_LT(result.quality.cv_score, 1e-8);
  EXPECT_LT(result.quality.smape, 1e-8);
  EXPECT_NEAR(result.quality.r_squared, 1.0, 1e-12);
  ASSERT_EQ(result.quality.relative_errors.size(), data.size());
  for (double e : result.quality.relative_errors) EXPECT_LT(e, 1e-10);
}

TEST(FitterTest, NonnegativityRejectsDecreasingTerm) {
  // Strictly decreasing data: no non-negative PMNF term helps, so the fit
  // must fall back to a constant rather than produce a negative slope.
  MeasurementSet data({"p"});
  for (double x : kProcessCounts) data.add({x}, 1000.0 - x);
  FitOptions options;
  options.require_nonnegative = true;
  const FitResult result = fit_single_parameter(
      data, SearchSpace::paper_default(), options);
  EXPECT_TRUE(result.model.is_constant());
}

TEST(FitterTest, NegativeTermsAllowedWhenRelaxed) {
  MeasurementSet data({"p"});
  for (double x : kProcessCounts) data.add({x}, 1000.0 - x);
  FitOptions options;
  options.require_nonnegative = false;
  const FitResult result = fit_single_parameter(
      data, SearchSpace::paper_default(), options);
  ASSERT_EQ(result.model.terms().size(), 1u);
  EXPECT_NEAR(result.model.terms()[0].coefficient, -1.0, 1e-6);
}

TEST(FitterTest, RespectsMaxTerms) {
  const auto data = sample_1d(
      kProcessCounts,
      [](double x) { return x + 10.0 * x * x + 0.1 * std::pow(x, 3.0); });
  FitOptions options;
  options.max_terms = 1;
  const FitResult result =
      fit_single_parameter(data, SearchSpace::paper_default(), options);
  EXPECT_LE(result.model.terms().size(), 1u);
}

TEST(FitterTest, ThrowsOnEmptyData) {
  const MeasurementSet data({"p"});
  EXPECT_THROW(fit_single_parameter(data), exareq::InvalidArgument);
}

TEST(FitterTest, RefitHypothesisReturnsCoefficients) {
  const auto data =
      sample_1d(kProcessCounts, [](double x) { return 4.0 * x + 100.0; });
  Term linear;
  linear.coefficient = 1.0;
  linear.factors = {pmnf_factor(0, 1.0, 0.0)};
  const FitResult result = refit_hypothesis(data, {linear});
  EXPECT_NEAR(result.model.terms()[0].coefficient, 4.0, 1e-9);
  EXPECT_NEAR(result.model.constant(), 100.0, 1e-6);
}

TEST(FitterTest, RefitRejectsUnderdeterminedHypothesis) {
  MeasurementSet data({"p"});
  data.add({2.0}, 1.0);
  data.add({4.0}, 2.0);
  std::vector<Term> basis;
  for (double e : {1.0, 2.0, 3.0}) {
    Term t;
    t.coefficient = 1.0;
    t.factors = {pmnf_factor(0, e, 0.0)};
    basis.push_back(t);
  }
  EXPECT_THROW(refit_hypothesis(data, basis), exareq::NumericError);
}

TEST(FitterTest, CrossValidationScoreOrdersHypothesesCorrectly) {
  const auto data =
      sample_1d(kProcessCounts, [](double x) { return 7.0 * x * x; });
  Term quadratic;
  quadratic.coefficient = 1.0;
  quadratic.factors = {pmnf_factor(0, 2.0, 0.0)};
  Term logarithmic;
  logarithmic.coefficient = 1.0;
  logarithmic.factors = {pmnf_factor(0, 0.0, 1.0)};
  EXPECT_LT(cross_validation_score(data, {quadratic}),
            cross_validation_score(data, {logarithmic}));
}

TEST(FitterTest, CollinearPoolTermsDoNotCrash) {
  const auto data = sample_1d(kProcessCounts, [](double x) { return x; });
  Term a;
  a.coefficient = 1.0;
  a.factors = {pmnf_factor(0, 1.0, 0.0)};
  const std::vector<Term> pool{a, a, a};
  const FitResult result = fit_with_pool(data, pool);
  EXPECT_EQ(result.model.terms().size(), 1u);
}

TEST(FitterTest, PruningNeverTradesAFiniteScoreForInf) {
  // Regression: y = 1000 x + 2 sqrt(x) + 1e-4 x^2. The sqrt term's share
  // never reaches min_term_contribution, so the contribution pruning tries
  // to drop it — but its concavity is what keeps the tiny x^2 coefficient
  // non-negative, so the pruned basis {x, x^2} is CV-inadmissible. The
  // engine must keep the term and the finite pre-prune score instead of
  // reporting cv_score = +inf and collapsing the model to a constant.
  MeasurementSet data({"x"});
  double x = 4.0;
  for (int i = 0; i < 6; ++i) {
    data.add({x}, 1e3 * x + 2.0 * std::sqrt(x) + 1e-4 * x * x);
    x *= 2.0;
  }
  const auto term = [](double poly) {
    Term t;
    t.coefficient = 1.0;
    t.factors = {pmnf_factor(0, poly, 0.0)};
    return t;
  };
  FitOptions options;
  options.score_tolerance = 0.0;
  options.improvement_threshold = 0.05;
  const FitResult result =
      fit_with_pool(data, {term(1.0), term(0.5), term(2.0)}, options);
  EXPECT_TRUE(std::isfinite(result.quality.cv_score))
      << result.model.to_string();
  ASSERT_FALSE(result.model.is_constant()) << result.model.to_string();
  // The dominant linear trend must survive.
  EXPECT_NEAR(result.model.evaluate1(128.0), 1e3 * 128.0, 0.01 * 1e3 * 128.0);
}

TEST(FitterTest, ThreadCountDoesNotChangeTheModel) {
  // The reproducibility contract: any thread count selects bit-identical
  // models — parallel tasks are pure and reduced serially in index order.
  const std::vector<double> wide{4.0,   8.0,   16.0,  32.0,  64.0,
                                 128.0, 256.0, 512.0, 1024.0};
  const auto data =
      sample_1d(wide, [](double v) { return 2e4 * v * std::log2(v) + 700.0 * v; },
                0.004, 17);
  FitOptions serial;
  serial.threads = 1;
  const FitResult reference = fit_single_parameter(
      data, SearchSpace::paper_default(), serial);
  for (std::size_t threads : {2u, 8u}) {
    FitOptions options;
    options.threads = threads;
    const FitResult result = fit_single_parameter(
        data, SearchSpace::paper_default(), options);
    EXPECT_EQ(result.model.to_string(), reference.model.to_string())
        << threads << " threads";
    EXPECT_EQ(result.quality.cv_score, reference.quality.cv_score)
        << threads << " threads";
    ASSERT_EQ(result.model.terms().size(), reference.model.terms().size());
    for (std::size_t i = 0; i < result.model.terms().size(); ++i) {
      EXPECT_EQ(result.model.terms()[i].coefficient,
                reference.model.terms()[i].coefficient)
          << threads << " threads, term " << i;
    }
  }
}

TEST(FitterTest, EngineStatsCountTheSearch) {
  const auto data = sample_1d(kProcessCounts,
                              [](double v) { return 3e3 * v * std::log2(v); });
  const FitResult result = fit_single_parameter(data);
  EXPECT_GT(result.stats.hypotheses_scored, 0u);
  EXPECT_GT(result.stats.cv_solves, 0u);
  // The beam branches rescore shared prefixes, so the memo must hit.
  EXPECT_GT(result.stats.score_cache_hits + result.stats.basis_column_hits, 0u);
  EXPECT_GT(result.stats.wall_seconds, 0.0);
  EXPECT_EQ(result.stats.threads, 1u);
  const double rate = result.stats.cache_hit_rate();
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
}

TEST(FitterTest, EngineRefitSolvesOncePerFoldPlusFull) {
  // Scalar mode pins the historical cost model: refit shares the full-fit
  // admissibility check with the CV scoring — one full solve plus one per
  // leave-one-out fold, never a double-solve.
  const auto data =
      sample_1d(kProcessCounts, [](double v) { return 4.0 * v + 100.0; });
  Term linear;
  linear.coefficient = 1.0;
  linear.factors = {pmnf_factor(0, 1.0, 0.0)};
  FitOptions scalar;
  scalar.batched_cv = false;
  FitEngine engine(data, scalar);
  const FitResult result = engine.refit({linear});
  EXPECT_NEAR(result.model.terms()[0].coefficient, 4.0, 1e-9);
  EXPECT_EQ(engine.stats().cv_solves, data.size() + 1);
  EXPECT_EQ(engine.stats().downdates, 0u);
}

TEST(FitterTest, BatchedRefitSolvesOncePlusDowndates) {
  // Batched mode replaces the per-fold refits with rank-one downdates: one
  // scalar coefficient solve, one retained-QR factorization, m downdates.
  const auto data =
      sample_1d(kProcessCounts, [](double v) { return 4.0 * v + 100.0; });
  Term linear;
  linear.coefficient = 1.0;
  linear.factors = {pmnf_factor(0, 1.0, 0.0)};
  FitEngine engine(data, FitOptions{});
  const FitResult result = engine.refit({linear});
  EXPECT_NEAR(result.model.terms()[0].coefficient, 4.0, 1e-9);
  EXPECT_EQ(engine.stats().cv_solves, 2u);
  EXPECT_EQ(engine.stats().qr_extensions, 0u);  // refit never extends a prefix
  EXPECT_EQ(engine.stats().downdates, data.size());
  EXPECT_GT(result.stats.wall_seconds, 0.0);
}

TEST(FitterTest, BatchedAndScalarScoringAgree) {
  // The two CV engines solve the same least-squares problems along
  // different algebraic routes; scores agree to ~1e-12 relative and the
  // admissibility verdict (finite vs +inf) is identical.
  const std::vector<double> wide{4.0,   8.0,   16.0,  32.0,  64.0,
                                 128.0, 256.0, 512.0, 1024.0};
  const auto data = sample_1d(
      wide, [](double v) { return 2e4 * v * std::log2(v) + 700.0 * v; }, 0.004,
      17);
  const auto term = [](double poly, double log) {
    Term t;
    t.coefficient = 1.0;
    t.factors = {pmnf_factor(0, poly, log)};
    return t;
  };
  FitOptions scalar;
  scalar.batched_cv = false;
  for (const std::vector<Term>& basis :
       {std::vector<Term>{}, std::vector<Term>{term(1.0, 1.0)},
        std::vector<Term>{term(1.0, 0.0)},
        std::vector<Term>{term(1.0, 1.0), term(1.0, 0.0)},
        std::vector<Term>{term(0.0, 2.0), term(3.0, 0.0)}}) {
    const double batched = cross_validation_score(data, basis);
    const double reference = cross_validation_score(data, basis, scalar);
    if (!std::isfinite(reference)) {
      EXPECT_FALSE(std::isfinite(batched));
      continue;
    }
    EXPECT_NEAR(batched, reference, 1e-12 * std::max(1.0, reference));
  }
}

TEST(FitterTest, SearchPathPopulatesWallSeconds) {
  // Regression: refit_hypothesis used to be the only entry point filling
  // stats.wall_seconds; the engine/search path must report it too.
  const auto data = sample_1d(kProcessCounts,
                              [](double v) { return 3e3 * v * std::log2(v); });
  FitOptions options;
  FitEngine engine(data, options);
  std::vector<Term> pool;
  for (double e : {0.5, 1.0, 2.0}) {
    Term t;
    t.coefficient = 1.0;
    t.factors = {pmnf_factor(0, e, 1.0)};
    pool.push_back(t);
  }
  const FitResult via_engine = fit_with_pool_engine(engine, pool);
  EXPECT_GT(via_engine.stats.wall_seconds, 0.0);
  const FitResult via_refit = refit_hypothesis(data, {pool[1]});
  EXPECT_GT(via_refit.stats.wall_seconds, 0.0);
}

TEST(FitterTest, DegenerateDomainEdgePointsFitFinite) {
  // Regression for the log2_clamped fix: points at the domain edge x = 1
  // make every log column exactly zero there, and a point below the edge
  // (clamped) must not poison the basis with NaN/-inf. The batched and
  // scalar engines must agree on such degenerate data too.
  MeasurementSet data({"p"});
  for (double x : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    data.add({x}, 5.0 * x * std::log2(std::max(x, 1.0)) + 3.0);
  }
  const FitResult result = fit_single_parameter(data);
  EXPECT_TRUE(std::isfinite(result.quality.cv_score));
  for (const Term& t : result.model.terms()) {
    EXPECT_TRUE(std::isfinite(t.coefficient));
  }
  // Model evaluation below the PMNF domain clamps to the edge value.
  EXPECT_TRUE(std::isfinite(result.model.evaluate1(0.5)));
  EXPECT_DOUBLE_EQ(result.model.evaluate1(0.5), result.model.evaluate1(1.0));

  FitOptions scalar;
  scalar.batched_cv = false;
  const FitResult reference =
      fit_single_parameter(data, SearchSpace::paper_default(), scalar);
  EXPECT_EQ(result.model.to_string(), reference.model.to_string());
}

// ---------------------------------------------------------------------------
// Property sweep: the fitter must recover every planted exponent pair from
// the paper's Table II over clean synthetic data.
// ---------------------------------------------------------------------------

using ExponentPair = std::tuple<double, double>;

std::string exponent_pair_name(
    const ::testing::TestParamInfo<ExponentPair>& info) {
  const auto fmt = [](double v) {
    std::string s = std::to_string(v);
    for (char& c : s) {
      if (c == '.' || c == '-') c = '_';
    }
    return s;
  };
  return "poly" + fmt(std::get<0>(info.param)) + "_log" +
         fmt(std::get<1>(info.param));
}

std::string noise_level_name(const ::testing::TestParamInfo<double>& info) {
  return "noise_" + std::to_string(static_cast<int>(info.param * 1000.0));
}

class ExponentRecoveryTest : public ::testing::TestWithParam<ExponentPair> {};

TEST_P(ExponentRecoveryTest, RecoversPlantedExponents) {
  const auto [poly, log] = GetParam();
  const auto data = sample_1d(kProcessCounts, [poly, log](double x) {
    return 1e4 * std::pow(x, poly) * std::pow(std::log2(x), log);
  });
  const FitResult result = fit_single_parameter(data);
  ASSERT_EQ(result.model.terms().size(), 1u)
      << "model: " << result.model.to_string();
  const Factor& f = result.model.terms()[0].factors[0];
  EXPECT_NEAR(f.poly_exponent, poly, 1e-9) << result.model.to_string();
  EXPECT_NEAR(f.log_exponent, log, 1e-9) << result.model.to_string();
  EXPECT_NEAR(result.model.terms()[0].coefficient, 1e4, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    PaperExponents, ExponentRecoveryTest,
    ::testing::Values(ExponentPair{1.0, 0.0},    // Kripke metrics
                      ExponentPair{1.0, 1.0},    // LULESH n log n
                      ExponentPair{0.25, 1.0},   // LULESH p^0.25 log p
                      ExponentPair{0.5, 0.0},    // Relearn footprint
                      ExponentPair{1.5, 0.0},    // MILC p^1.5
                      ExponentPair{0.375, 0.0},  // icoFoam p^0.375
                      ExponentPair{0.5, 1.0},    // icoFoam p^0.5 log p
                      ExponentPair{2.0, 0.0},    // quadratic sanity
                      ExponentPair{0.0, 2.0}),   // log^2
    exponent_pair_name);

// Robustness sweep: recovery of a linear model under increasing noise.
class NoiseRobustnessTest : public ::testing::TestWithParam<double> {};

TEST_P(NoiseRobustnessTest, LeadingExponentSurvivesNoise) {
  const double noise = GetParam();
  const auto data = sample_1d(
      kProcessCounts, [](double x) { return 5e3 * x; }, noise, 4242);
  const FitResult result = fit_single_parameter(data);
  ASSERT_GE(result.model.terms().size(), 1u);
  // The dominant term at large scale must stay ~linear.
  const double big = 1e6;
  const double value = result.model.evaluate1(big);
  const double expected = 5e3 * big;
  EXPECT_GT(value, expected * 0.3);
  EXPECT_LT(value, expected * 3.0);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, NoiseRobustnessTest,
                         ::testing::Values(0.0, 0.01, 0.02, 0.05),
                         noise_level_name);

}  // namespace
}  // namespace exareq::model
