#include "model/basis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace exareq::model {
namespace {

TEST(BasisTest, PmnfFactorEvaluatesPowerTimesLog) {
  const Factor f = pmnf_factor(0, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(f.evaluate(8.0), 64.0 * 3.0);  // 8^2 * log2(8)
}

TEST(BasisTest, FractionalExponents) {
  const Factor f = pmnf_factor(0, 0.5, 0.0);
  EXPECT_DOUBLE_EQ(f.evaluate(16.0), 4.0);
  const Factor g = pmnf_factor(0, 0.0, 0.5);
  EXPECT_DOUBLE_EQ(g.evaluate(16.0), 2.0);  // sqrt(log2(16)) = 2
}

TEST(BasisTest, IdentityFactor) {
  const Factor f = pmnf_factor(0, 0.0, 0.0);
  EXPECT_TRUE(f.is_identity());
  EXPECT_DOUBLE_EQ(f.evaluate(123.0), 1.0);
}

TEST(BasisTest, EvaluationAtOneIsWellDefined) {
  EXPECT_DOUBLE_EQ(pmnf_factor(0, 1.0, 0.0).evaluate(1.0), 1.0);
  EXPECT_DOUBLE_EQ(pmnf_factor(0, 0.0, 1.0).evaluate(1.0), 0.0);
  EXPECT_DOUBLE_EQ(pmnf_factor(0, 0.0, 0.5).evaluate(1.0), 0.0);
}

TEST(BasisTest, Log2ClampedClampsToTheDomainEdge) {
  // Regression: log2_clamped must actually clamp — CSV-fed values below 1
  // used to produce negative logs, and x <= 0 NaN/-inf.
  EXPECT_DOUBLE_EQ(log2_clamped(8.0), 3.0);
  EXPECT_DOUBLE_EQ(log2_clamped(1.0), 0.0);
  EXPECT_DOUBLE_EQ(log2_clamped(0.5), 0.0);
  EXPECT_DOUBLE_EQ(log2_clamped(0.0), 0.0);
  EXPECT_DOUBLE_EQ(log2_clamped(-4.0), 0.0);
  EXPECT_DOUBLE_EQ(log2_clamped(std::numeric_limits<double>::quiet_NaN()), 0.0);
}

TEST(BasisTest, ClampsParameterBelowDomainEdge) {
  // Values below the PMNF domain evaluate at the edge x = 1 instead of
  // poisoning term products: x^e -> 1, log2(x)^e -> 0.
  EXPECT_DOUBLE_EQ(pmnf_factor(0, 1.0, 0.0).evaluate(0.5), 1.0);
  EXPECT_DOUBLE_EQ(pmnf_factor(0, 1.5, 0.0).evaluate(-3.0), 1.0);
  EXPECT_DOUBLE_EQ(pmnf_factor(0, 0.0, 1.0).evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(pmnf_factor(0, 2.0, 1.0).evaluate(0.0), 0.0);
  EXPECT_DOUBLE_EQ(special_factor(0, SpecialFn::kAllreduce).evaluate(0.25), 0.0);
  EXPECT_DOUBLE_EQ(special_factor(0, SpecialFn::kAlltoall).evaluate(0.25), 0.0);
  EXPECT_DOUBLE_EQ(eval_special_fn(SpecialFn::kBcast, -1.0), 0.0);
}

TEST(BasisTest, EvaluateWithLog2MatchesEvaluate) {
  for (double x : {1.0, 2.0, 5.0, 16.0, 1000.0}) {
    for (const Factor& f :
         {pmnf_factor(0, 1.5, 1.0), pmnf_factor(0, 0.0, 2.0),
          pmnf_factor(0, 0.25, 0.0), special_factor(0, SpecialFn::kAllreduce)}) {
      EXPECT_DOUBLE_EQ(f.evaluate_with_log2(x, log2_clamped(x)), f.evaluate(x));
    }
  }
}

TEST(BasisTest, AllreduceMatchesRecursiveDoublingCost) {
  const Factor f = special_factor(0, SpecialFn::kAllreduce);
  EXPECT_DOUBLE_EQ(f.evaluate(16.0), 8.0);  // 2 * log2(16)
  EXPECT_DOUBLE_EQ(f.evaluate(1.0), 0.0);   // no communication alone
}

TEST(BasisTest, BcastMatchesBinomialTreeCost) {
  const Factor f = special_factor(0, SpecialFn::kBcast);
  EXPECT_DOUBLE_EQ(f.evaluate(8.0), 3.0);
}

TEST(BasisTest, AlltoallMatchesPairwiseCost) {
  const Factor f = special_factor(0, SpecialFn::kAlltoall);
  EXPECT_DOUBLE_EQ(f.evaluate(5.0), 8.0);  // 2 * (5 - 1)
}

TEST(BasisTest, SpecialFactorRejectsNone) {
  EXPECT_THROW(special_factor(0, SpecialFn::kNone), exareq::InvalidArgument);
}

TEST(BasisTest, ToStringFormats) {
  EXPECT_EQ(pmnf_factor(0, 1.0, 0.0).to_string("n"), "n");
  EXPECT_EQ(pmnf_factor(0, 2.0, 0.0).to_string("n"), "n^2");
  EXPECT_EQ(pmnf_factor(0, 1.5, 0.0).to_string("p"), "p^1.5");
  EXPECT_EQ(pmnf_factor(0, 0.25, 1.0).to_string("p"), "p^0.25 * log2(p)");
  EXPECT_EQ(pmnf_factor(0, 0.0, 2.0).to_string("n"), "log2(n)^2");
  EXPECT_EQ(pmnf_factor(0, 0.375, 0.0).to_string("p"), "p^0.375");
  EXPECT_EQ(pmnf_factor(0, 0.0, 0.0).to_string("n"), "1");
  EXPECT_EQ(special_factor(0, SpecialFn::kAllreduce).to_string("p"),
            "Allreduce(p)");
}

TEST(BasisTest, ComplexityOrdersSimplerFirst) {
  EXPECT_LT(pmnf_factor(0, 0.0, 1.0).complexity(),
            pmnf_factor(0, 1.0, 0.0).complexity());
  EXPECT_LT(pmnf_factor(0, 1.0, 0.0).complexity(),
            pmnf_factor(0, 1.0, 1.0).complexity());
  EXPECT_LT(pmnf_factor(0, 1.0, 1.0).complexity(),
            pmnf_factor(0, 2.0, 0.0).complexity());
}

TEST(BasisTest, SpecialFnNames) {
  EXPECT_EQ(special_fn_name(SpecialFn::kAllreduce), "Allreduce");
  EXPECT_EQ(special_fn_name(SpecialFn::kBcast), "Bcast");
  EXPECT_EQ(special_fn_name(SpecialFn::kAlltoall), "Alltoall");
  EXPECT_EQ(special_fn_name(SpecialFn::kNone), "");
}

}  // namespace
}  // namespace exareq::model
