#include "model/measurement.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace exareq::model {
namespace {

MeasurementSet grid_2d() {
  MeasurementSet data({"p", "n"});
  for (double p : {2.0, 4.0, 8.0}) {
    for (double n : {10.0, 20.0}) {
      data.add2(p, n, p * n);
    }
  }
  return data;
}

TEST(MeasurementTest, AddAndAccess) {
  MeasurementSet data({"p"});
  data.add({4.0}, 42.0);
  EXPECT_EQ(data.size(), 1u);
  EXPECT_DOUBLE_EQ(data.coordinate(0)[0], 4.0);
  EXPECT_DOUBLE_EQ(data.value(0), 42.0);
}

TEST(MeasurementTest, RejectsCoordinateWidthMismatch) {
  MeasurementSet data({"p", "n"});
  EXPECT_THROW(data.add({1.0}, 0.0), exareq::InvalidArgument);
}

TEST(MeasurementTest, RejectsParametersBelowOne) {
  MeasurementSet data({"p"});
  EXPECT_THROW(data.add({0.5}, 1.0), exareq::InvalidArgument);
}

TEST(MeasurementTest, DistinctValuesAreSortedUnique) {
  const MeasurementSet data = grid_2d();
  EXPECT_EQ(data.distinct_values(0), (std::vector<double>{2.0, 4.0, 8.0}));
  EXPECT_EQ(data.distinct_values(1), (std::vector<double>{10.0, 20.0}));
}

TEST(MeasurementTest, SliceHoldsOtherParametersFixed) {
  const MeasurementSet data = grid_2d();
  const MeasurementSet slice = data.slice(0, {999.0, 10.0});
  EXPECT_EQ(slice.parameter_count(), 1u);
  ASSERT_EQ(slice.size(), 3u);
  for (std::size_t k = 0; k < slice.size(); ++k) {
    EXPECT_DOUBLE_EQ(slice.value(k), slice.coordinate(k)[0] * 10.0);
  }
}

TEST(MeasurementTest, SliceIgnoresAnchorValueOfSlicedParameter) {
  const MeasurementSet data = grid_2d();
  const MeasurementSet a = data.slice(1, {2.0, 10.0});
  const MeasurementSet b = data.slice(1, {2.0, 20.0});
  EXPECT_EQ(a.size(), b.size());
}

TEST(MeasurementTest, ParameterIndexByName) {
  const MeasurementSet data = grid_2d();
  EXPECT_EQ(data.parameter_index("n"), 1u);
  EXPECT_THROW(data.parameter_index("q"), exareq::InvalidArgument);
}

TEST(MeasurementTest, ValidationEnforcesFiveValuesRule) {
  const MeasurementSet data = grid_2d();
  EXPECT_THROW(data.validate_for_modeling(5), exareq::InvalidArgument);
  EXPECT_NO_THROW(data.validate_for_modeling(2));
}

TEST(MeasurementTest, IndexOutOfRangeThrows) {
  const MeasurementSet data = grid_2d();
  EXPECT_THROW(data.coordinate(99), exareq::InvalidArgument);
  EXPECT_THROW(data.value(99), exareq::InvalidArgument);
  EXPECT_THROW(data.distinct_values(7), exareq::InvalidArgument);
}

}  // namespace
}  // namespace exareq::model
