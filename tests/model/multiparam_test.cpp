#include "model/multiparam.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "support/error.hpp"

namespace exareq::model {
namespace {

const std::vector<double> kP{4.0, 8.0, 16.0, 32.0, 64.0};
const std::vector<double> kN{64.0, 128.0, 256.0, 512.0, 1024.0};

MeasurementSet grid(const std::function<double(double, double)>& f) {
  MeasurementSet data({"p", "n"});
  for (double p : kP) {
    for (double n : kN) {
      data.add2(p, n, f(p, n));
    }
  }
  return data;
}

double relative_prediction_error(const Model& m, double p, double n,
                                 double truth) {
  return std::fabs(m.evaluate2(p, n) - truth) / std::fabs(truth);
}

TEST(MultiParamTest, RecoversMultiplicativeCombination) {
  // LULESH-like FLOP: c * n log n * p^0.25 log p.
  const auto data = grid([](double p, double n) {
    return 1e5 * n * std::log2(n) * std::pow(p, 0.25) * std::log2(p);
  });
  const FitResult result = fit_multi_parameter(data);
  // Extrapolate an order of magnitude beyond the grid.
  const double truth =
      1e5 * 8192.0 * 13.0 * std::pow(1024.0, 0.25) * 10.0;
  EXPECT_LT(relative_prediction_error(result.model, 1024.0, 8192.0, truth), 0.05)
      << result.model.to_string();
}

TEST(MultiParamTest, RecoversAdditiveCombination) {
  // MILC-like loads/stores: c0 + c1 * n log n + c2 * p^1.5.
  const auto data = grid([](double p, double n) {
    return 1e11 + 1e8 * n * std::log2(n) + 1e5 * std::pow(p, 1.5);
  });
  const FitResult result = fit_multi_parameter(data);
  const double truth =
      1e11 + 1e8 * 4096.0 * 12.0 + 1e5 * std::pow(4096.0, 1.5);
  EXPECT_LT(relative_prediction_error(result.model, 4096.0, 4096.0, truth), 0.05)
      << result.model.to_string();
}

TEST(MultiParamTest, RecoversMixedCombination) {
  // Kripke-like loads/stores: c1 * n + c2 * n * p.
  const auto data =
      grid([](double p, double n) { return 1e8 * n + 1e5 * n * p; });
  const FitResult result = fit_multi_parameter(data);
  ASSERT_FALSE(result.model.is_constant());
  const double truth = 1e8 * 4096.0 + 1e5 * 4096.0 * 512.0;
  EXPECT_LT(relative_prediction_error(result.model, 512.0, 4096.0, truth), 0.05)
      << result.model.to_string();
  // The interaction term n*p must be present for correct extrapolation.
  bool has_interaction = false;
  for (const Term& term : result.model.terms()) {
    if (term.depends_on(0) && term.depends_on(1)) has_interaction = true;
  }
  EXPECT_TRUE(has_interaction) << result.model.to_string();
}

TEST(MultiParamTest, SingleParameterDependenceLeavesOtherOut) {
  // Relearn-like footprint: c * n^0.5, independent of p.
  const auto data = grid([](double, double n) { return 1e6 * std::sqrt(n); });
  const FitResult result = fit_multi_parameter(data);
  ASSERT_EQ(result.model.terms().size(), 1u) << result.model.to_string();
  EXPECT_FALSE(result.model.depends_on(0)) << result.model.to_string();
  EXPECT_TRUE(result.model.depends_on(1));
  const Factor& f = result.model.terms()[0].factors[0];
  EXPECT_DOUBLE_EQ(f.poly_exponent, 0.5);
}

TEST(MultiParamTest, ConstantDataYieldsConstantModel) {
  const auto data = grid([](double, double) { return 1234.0; });
  const FitResult result = fit_multi_parameter(data);
  EXPECT_TRUE(result.model.is_constant());
  EXPECT_NEAR(result.model.constant(), 1234.0, 1e-9);
}

TEST(MultiParamTest, CollectiveTermRecoveredForCommunicationMetric) {
  // Relearn-like communication: s1 * Allreduce(p) + s2 * n.
  const auto data = grid([](double p, double n) {
    return 1e5 * 2.0 * std::log2(p) + 10.0 * n;
  });
  MultiParamOptions options;
  options.collective_parameters = {0};
  const FitResult result = fit_multi_parameter(data, options);
  const double truth = 1e5 * 2.0 * std::log2(4096.0) + 10.0 * 65536.0;
  EXPECT_LT(relative_prediction_error(result.model, 4096.0, 65536.0, truth), 0.05)
      << result.model.to_string();
}

TEST(MultiParamTest, RankCandidateFactorsPutsTrueShapeFirst) {
  MeasurementSet slice({"p"});
  for (double p : {4.0, 8.0, 16.0, 32.0, 64.0, 128.0}) {
    slice.add({p}, 7.0 * std::pow(p, 1.5));
  }
  MultiParamOptions options;
  const auto ranked = rank_candidate_factors(slice, 0, options);
  ASSERT_FALSE(ranked.empty());
  EXPECT_DOUBLE_EQ(ranked.front().poly_exponent, 1.5);
  EXPECT_DOUBLE_EQ(ranked.front().log_exponent, 0.0);
  EXPECT_EQ(ranked.front().parameter, 0u);
}

TEST(MultiParamTest, RankCandidateFactorsRejectsMultiParamSlice) {
  MeasurementSet notSlice({"p", "n"});
  notSlice.add2(2.0, 2.0, 1.0);
  MultiParamOptions options;
  EXPECT_THROW(rank_candidate_factors(notSlice, 0, options),
               exareq::InvalidArgument);
}

TEST(MultiParamTest, JointPoolContainsSinglesAndProducts) {
  std::vector<std::vector<Factor>> factors(2);
  factors[0] = {pmnf_factor(0, 1.0, 0.0), pmnf_factor(0, 2.0, 0.0)};
  factors[1] = {pmnf_factor(1, 0.0, 1.0)};
  const auto pool = build_joint_pool(factors);
  // 2 singles for p, 1 single for n, 2x1 products = 5 terms.
  EXPECT_EQ(pool.size(), 5u);
  std::size_t products = 0;
  for (const Term& term : pool) {
    if (term.factors.size() == 2) ++products;
  }
  EXPECT_EQ(products, 2u);
}

TEST(MultiParamTest, JointPoolDeduplicates) {
  std::vector<std::vector<Factor>> factors(1);
  factors[0] = {pmnf_factor(0, 1.0, 0.0), pmnf_factor(0, 1.0, 0.0)};
  const auto pool = build_joint_pool(factors);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(MultiParamTest, ThreeParameterProductTerm) {
  MeasurementSet data({"a", "b", "c"});
  for (double a : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    for (double b : {2.0, 4.0, 8.0, 16.0, 32.0}) {
      for (double c : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        data.add({a, b, c}, 3.0 * a * b * c);
      }
    }
  }
  const FitResult result = fit_multi_parameter(data);
  const double point[] = {64.0, 64.0, 64.0};
  const double truth = 3.0 * 64.0 * 64.0 * 64.0;
  EXPECT_NEAR(result.model.evaluate(point), truth, 0.05 * truth)
      << result.model.to_string();
}

TEST(MultiParamTest, EmptyDataThrows) {
  const MeasurementSet data({"p", "n"});
  EXPECT_THROW(fit_multi_parameter(data), exareq::InvalidArgument);
}

}  // namespace
}  // namespace exareq::model
