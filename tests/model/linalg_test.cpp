#include "model/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace exareq::model {
namespace {

TEST(LinalgTest, MatrixAccessAndMultiply) {
  Matrix a(2, 3);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(0, 2) = 3.0;
  a(1, 0) = 4.0;
  a(1, 1) = 5.0;
  a(1, 2) = 6.0;
  const std::vector<double> x{1.0, 1.0, 1.0};
  const auto y = a.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(LinalgTest, MatrixRejectsOutOfRange) {
  Matrix a(2, 2);
  EXPECT_THROW(a(2, 0), exareq::InvalidArgument);
  EXPECT_THROW(a(0, 2), exareq::InvalidArgument);
}

TEST(LinalgTest, SolvesExactSquareSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const std::vector<double> b{5.0, 10.0};
  const auto result = least_squares(a, b);
  EXPECT_FALSE(result.rank_deficient);
  EXPECT_NEAR(result.solution[0], 1.0, 1e-12);
  EXPECT_NEAR(result.solution[1], 3.0, 1e-12);
  EXPECT_NEAR(result.residual_norm, 0.0, 1e-10);
}

TEST(LinalgTest, OverdeterminedRecoversPlantedCoefficients) {
  Rng rng(123);
  const std::vector<double> truth{3.5, -2.0, 0.75};
  Matrix a(20, 3);
  std::vector<double> b(20);
  for (std::size_t r = 0; r < 20; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < 3; ++c) {
      a(r, c) = rng.uniform(-5.0, 5.0);
      acc += a(r, c) * truth[c];
    }
    b[r] = acc;
  }
  const auto result = least_squares(a, b);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(result.solution[c], truth[c], 1e-10);
  }
}

TEST(LinalgTest, HandlesWildlyScaledColumns) {
  // Columns differing by 12 orders of magnitude (constant vs n^3 basis).
  Rng rng(7);
  Matrix a(10, 2);
  std::vector<double> b(10);
  for (std::size_t r = 0; r < 10; ++r) {
    const double x = 10.0 + static_cast<double>(r);
    a(r, 0) = 1.0;
    a(r, 1) = x * x * x * 1e9;
    b[r] = 4.0 + 2.5e-9 * a(r, 1);
  }
  (void)rng;
  const auto result = least_squares(a, b);
  EXPECT_NEAR(result.solution[0], 4.0, 1e-6);
  EXPECT_NEAR(result.solution[1], 2.5e-9, 1e-15);
}

TEST(LinalgTest, DetectsCollinearColumns) {
  Matrix a(5, 2);
  for (std::size_t r = 0; r < 5; ++r) {
    a(r, 0) = static_cast<double>(r + 1);
    a(r, 1) = 2.0 * static_cast<double>(r + 1);  // exactly collinear
  }
  const std::vector<double> b{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto result = least_squares(a, b);
  EXPECT_TRUE(result.rank_deficient);
}

TEST(LinalgTest, DetectsZeroColumn) {
  Matrix a(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    a(r, 0) = static_cast<double>(r + 1);
    a(r, 1) = 0.0;
  }
  const std::vector<double> b{2.0, 4.0, 6.0, 8.0};
  const auto result = least_squares(a, b);
  EXPECT_TRUE(result.rank_deficient);
  EXPECT_NEAR(result.solution[0], 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(result.solution[1], 0.0);
}

TEST(LinalgTest, RequiresEnoughRows) {
  Matrix a(2, 3);
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(least_squares(a, b), exareq::InvalidArgument);
}

TEST(LinalgTest, ResidualNormOfInconsistentSystem) {
  // Fit a constant to {0, 2}: best value 1, residual sqrt(2).
  Matrix a(2, 1);
  a(0, 0) = 1.0;
  a(1, 0) = 1.0;
  const std::vector<double> b{0.0, 2.0};
  const auto result = least_squares(a, b);
  EXPECT_NEAR(result.solution[0], 1.0, 1e-12);
  EXPECT_NEAR(result.residual_norm, std::sqrt(2.0), 1e-12);
}

TEST(LinalgTest, WeightedLeastSquaresFavorsHeavyRows) {
  // Two incompatible observations of a constant; all weight on the second.
  Matrix a(2, 1);
  a(0, 0) = 1.0;
  a(1, 0) = 1.0;
  const std::vector<double> b{0.0, 2.0};
  const std::vector<double> w{0.0, 1.0};
  const auto result = weighted_least_squares(a, b, w);
  EXPECT_NEAR(result.solution[0], 2.0, 1e-12);
}

TEST(LinalgTest, WeightedLeastSquaresRejectsNegativeWeights) {
  Matrix a(2, 1);
  a(0, 0) = 1.0;
  a(1, 0) = 1.0;
  const std::vector<double> b{1.0, 1.0};
  const std::vector<double> w{1.0, -1.0};
  EXPECT_THROW(weighted_least_squares(a, b, w), exareq::InvalidArgument);
}

// --- RetainedQr: the batched fitter's incremental factorization --------

std::vector<double> matrix_column(const Matrix& a, std::size_t c) {
  std::vector<double> column(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) column[r] = a(r, c);
  return column;
}

TEST(RetainedQrTest, MatchesLeastSquaresOnOverdeterminedSystem) {
  Rng rng(42);
  const std::vector<double> truth{1.25, -0.5, 6.0};
  Matrix a(12, 3);
  std::vector<double> b(12);
  for (std::size_t r = 0; r < 12; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < 3; ++c) {
      a(r, c) = rng.uniform(-4.0, 4.0);
      acc += a(r, c) * truth[c];
    }
    b[r] = acc + rng.uniform(-0.01, 0.01);  // keep it inconsistent
  }
  const auto reference = least_squares(a, b);
  RetainedQr qr(12, b);
  for (std::size_t c = 0; c < 3; ++c) qr.append_column(matrix_column(a, c));
  EXPECT_FALSE(qr.rank_deficient());
  qr.solve();
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(qr.solution()[c], reference.solution[c], 1e-12);
  }
}

TEST(RetainedQrTest, ExtensionFromCopiedPrefixMatchesStandaloneBuild) {
  // The batched scorer factors the selected prefix once and extends a copy
  // per candidate; the copy-then-append path must be bit-identical to
  // appending every column into a fresh factorization.
  Rng rng(9);
  Matrix a(10, 3);
  std::vector<double> b(10);
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.uniform(0.5, 8.0);
    b[r] = rng.uniform(1.0, 100.0);
  }
  RetainedQr fresh(10, b);
  for (std::size_t c = 0; c < 3; ++c) fresh.append_column(matrix_column(a, c));
  fresh.solve();

  RetainedQr prefix(10, b);
  prefix.append_column(matrix_column(a, 0));
  prefix.append_column(matrix_column(a, 1));
  RetainedQr extended = prefix;
  extended.append_column(matrix_column(a, 2));
  extended.solve();

  ASSERT_EQ(extended.cols(), fresh.cols());
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(extended.solution()[c], fresh.solution()[c]);
  }
}

TEST(RetainedQrTest, LeaveOneOutMatchesExplicitSubsetRefit) {
  Rng rng(77);
  const std::size_t m = 9;
  Matrix a(m, 2);
  std::vector<double> b(m);
  for (std::size_t r = 0; r < m; ++r) {
    a(r, 0) = 1.0;
    a(r, 1) = rng.uniform(1.0, 50.0);
    b[r] = 3.0 + 0.5 * a(r, 1) + rng.uniform(-1.0, 1.0);
  }
  RetainedQr qr(m, b);
  qr.append_column(matrix_column(a, 0));
  qr.append_column(matrix_column(a, 1));
  qr.solve();
  for (std::size_t left_out = 0; left_out < m; ++left_out) {
    std::vector<double> loo(2);
    double press = 0.0;
    ASSERT_TRUE(qr.leave_one_out(left_out, loo, &press));
    // Explicit refit over the other m - 1 rows.
    Matrix sub(m - 1, 2);
    std::vector<double> sub_b(m - 1);
    std::size_t i = 0;
    for (std::size_t r = 0; r < m; ++r) {
      if (r == left_out) continue;
      sub(i, 0) = a(r, 0);
      sub(i, 1) = a(r, 1);
      sub_b[i] = b[r];
      ++i;
    }
    const auto reference = least_squares(sub, sub_b);
    EXPECT_NEAR(loo[0], reference.solution[0], 1e-9);
    EXPECT_NEAR(loo[1], reference.solution[1], 1e-9);
    // The PRESS residual is the left-out row's prediction error under the
    // subset fit.
    const double predicted = reference.solution[0] * a(left_out, 0) +
                             reference.solution[1] * a(left_out, 1);
    EXPECT_NEAR(press, b[left_out] - predicted, 1e-9);
  }
}

TEST(RetainedQrTest, DetectsCollinearAppendedColumn) {
  std::vector<double> b{1.0, 2.0, 3.0, 4.0, 5.0};
  RetainedQr qr(5, b);
  std::vector<double> first{1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> collinear{2.0, 4.0, 6.0, 8.0, 10.0};
  qr.append_column(first);
  EXPECT_FALSE(qr.rank_deficient());
  qr.append_column(collinear);
  EXPECT_TRUE(qr.rank_deficient());
  EXPECT_THROW(qr.solve(), exareq::InvalidArgument);
}

TEST(RetainedQrTest, DetectsZeroColumn) {
  std::vector<double> b{2.0, 4.0, 6.0, 8.0};
  RetainedQr qr(4, b);
  qr.append_column(std::vector<double>{0.0, 0.0, 0.0, 0.0});
  EXPECT_TRUE(qr.rank_deficient());
}

TEST(RetainedQrTest, LeverageOneRowReportsSingularDowndate) {
  // Row 3 is the only row with a nonzero second coordinate: removing it
  // collapses the rank, so its leverage is 1 and the downdate must refuse.
  std::vector<double> b{1.0, 1.1, 0.9, 7.0};
  Matrix a(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    a(r, 0) = 1.0;
    a(r, 1) = (r == 3) ? 1.0 : 0.0;
  }
  RetainedQr qr(4, b);
  qr.append_column(matrix_column(a, 0));
  qr.append_column(matrix_column(a, 1));
  ASSERT_FALSE(qr.rank_deficient());
  qr.solve();
  std::vector<double> loo(2);
  EXPECT_FALSE(qr.leave_one_out(3, loo));
  EXPECT_TRUE(qr.leave_one_out(0, loo));
}

TEST(RetainedQrTest, ValidatesArguments) {
  std::vector<double> b{1.0, 2.0, 3.0};
  RetainedQr qr(3, b);
  EXPECT_THROW(qr.append_column(std::vector<double>{1.0, 2.0}),
               exareq::InvalidArgument);
  EXPECT_THROW(qr.solve(), exareq::InvalidArgument);  // no columns yet
  qr.append_column(std::vector<double>{1.0, 1.0, 1.0});
  std::vector<double> out(1);
  EXPECT_THROW(qr.leave_one_out(0, out), exareq::InvalidArgument);  // unsolved
  qr.solve();
  EXPECT_THROW(qr.leave_one_out(3, out), exareq::InvalidArgument);  // row range
  EXPECT_THROW(qr.append_column(std::vector<double>{1.0, 2.0, 3.0}),
               exareq::InvalidArgument);  // append after solve
}

}  // namespace
}  // namespace exareq::model
