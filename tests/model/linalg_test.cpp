#include "model/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace exareq::model {
namespace {

TEST(LinalgTest, MatrixAccessAndMultiply) {
  Matrix a(2, 3);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(0, 2) = 3.0;
  a(1, 0) = 4.0;
  a(1, 1) = 5.0;
  a(1, 2) = 6.0;
  const std::vector<double> x{1.0, 1.0, 1.0};
  const auto y = a.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(LinalgTest, MatrixRejectsOutOfRange) {
  Matrix a(2, 2);
  EXPECT_THROW(a(2, 0), exareq::InvalidArgument);
  EXPECT_THROW(a(0, 2), exareq::InvalidArgument);
}

TEST(LinalgTest, SolvesExactSquareSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const std::vector<double> b{5.0, 10.0};
  const auto result = least_squares(a, b);
  EXPECT_FALSE(result.rank_deficient);
  EXPECT_NEAR(result.solution[0], 1.0, 1e-12);
  EXPECT_NEAR(result.solution[1], 3.0, 1e-12);
  EXPECT_NEAR(result.residual_norm, 0.0, 1e-10);
}

TEST(LinalgTest, OverdeterminedRecoversPlantedCoefficients) {
  Rng rng(123);
  const std::vector<double> truth{3.5, -2.0, 0.75};
  Matrix a(20, 3);
  std::vector<double> b(20);
  for (std::size_t r = 0; r < 20; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < 3; ++c) {
      a(r, c) = rng.uniform(-5.0, 5.0);
      acc += a(r, c) * truth[c];
    }
    b[r] = acc;
  }
  const auto result = least_squares(a, b);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(result.solution[c], truth[c], 1e-10);
  }
}

TEST(LinalgTest, HandlesWildlyScaledColumns) {
  // Columns differing by 12 orders of magnitude (constant vs n^3 basis).
  Rng rng(7);
  Matrix a(10, 2);
  std::vector<double> b(10);
  for (std::size_t r = 0; r < 10; ++r) {
    const double x = 10.0 + static_cast<double>(r);
    a(r, 0) = 1.0;
    a(r, 1) = x * x * x * 1e9;
    b[r] = 4.0 + 2.5e-9 * a(r, 1);
  }
  (void)rng;
  const auto result = least_squares(a, b);
  EXPECT_NEAR(result.solution[0], 4.0, 1e-6);
  EXPECT_NEAR(result.solution[1], 2.5e-9, 1e-15);
}

TEST(LinalgTest, DetectsCollinearColumns) {
  Matrix a(5, 2);
  for (std::size_t r = 0; r < 5; ++r) {
    a(r, 0) = static_cast<double>(r + 1);
    a(r, 1) = 2.0 * static_cast<double>(r + 1);  // exactly collinear
  }
  const std::vector<double> b{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto result = least_squares(a, b);
  EXPECT_TRUE(result.rank_deficient);
}

TEST(LinalgTest, DetectsZeroColumn) {
  Matrix a(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    a(r, 0) = static_cast<double>(r + 1);
    a(r, 1) = 0.0;
  }
  const std::vector<double> b{2.0, 4.0, 6.0, 8.0};
  const auto result = least_squares(a, b);
  EXPECT_TRUE(result.rank_deficient);
  EXPECT_NEAR(result.solution[0], 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(result.solution[1], 0.0);
}

TEST(LinalgTest, RequiresEnoughRows) {
  Matrix a(2, 3);
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(least_squares(a, b), exareq::InvalidArgument);
}

TEST(LinalgTest, ResidualNormOfInconsistentSystem) {
  // Fit a constant to {0, 2}: best value 1, residual sqrt(2).
  Matrix a(2, 1);
  a(0, 0) = 1.0;
  a(1, 0) = 1.0;
  const std::vector<double> b{0.0, 2.0};
  const auto result = least_squares(a, b);
  EXPECT_NEAR(result.solution[0], 1.0, 1e-12);
  EXPECT_NEAR(result.residual_norm, std::sqrt(2.0), 1e-12);
}

TEST(LinalgTest, WeightedLeastSquaresFavorsHeavyRows) {
  // Two incompatible observations of a constant; all weight on the second.
  Matrix a(2, 1);
  a(0, 0) = 1.0;
  a(1, 0) = 1.0;
  const std::vector<double> b{0.0, 2.0};
  const std::vector<double> w{0.0, 1.0};
  const auto result = weighted_least_squares(a, b, w);
  EXPECT_NEAR(result.solution[0], 2.0, 1e-12);
}

TEST(LinalgTest, WeightedLeastSquaresRejectsNegativeWeights) {
  Matrix a(2, 1);
  a(0, 0) = 1.0;
  a(1, 0) = 1.0;
  const std::vector<double> b{1.0, 1.0};
  const std::vector<double> w{1.0, -1.0};
  EXPECT_THROW(weighted_least_squares(a, b, w), exareq::InvalidArgument);
}

}  // namespace
}  // namespace exareq::model
