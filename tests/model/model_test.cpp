#include "model/model.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace exareq::model {
namespace {

Model lulesh_flop_like() {
  // 1e5 * n * log2(n) * p^0.25 * log2(p), parameters {p, n}.
  Term term;
  term.coefficient = 1e5;
  term.factors = {pmnf_factor(0, 0.25, 1.0), pmnf_factor(1, 1.0, 1.0)};
  return Model({"p", "n"}, 0.0, {term});
}

TEST(ModelTest, EvaluateTwoParameterTerm) {
  const Model m = lulesh_flop_like();
  // p = 16 -> p^0.25 log2 p = 2 * 4 = 8; n = 8 -> n log2 n = 24.
  EXPECT_DOUBLE_EQ(m.evaluate2(16.0, 8.0), 1e5 * 8.0 * 24.0);
}

TEST(ModelTest, ConstantModel) {
  const Model m = Model::constant_model({"p", "n"}, 7.0);
  EXPECT_TRUE(m.is_constant());
  EXPECT_DOUBLE_EQ(m.evaluate2(100.0, 100.0), 7.0);
  EXPECT_EQ(m.to_string_rounded(), "Constant");
}

TEST(ModelTest, ConstantPlusTerms) {
  Term linear;
  linear.coefficient = 2.0;
  linear.factors = {pmnf_factor(0, 1.0, 0.0)};
  const Model m({"n"}, 5.0, {linear});
  EXPECT_DOUBLE_EQ(m.evaluate1(10.0), 25.0);
}

TEST(ModelTest, EvaluateRejectsWidthMismatch) {
  const Model m = lulesh_flop_like();
  const double coordinate[] = {4.0};
  EXPECT_THROW(m.evaluate(coordinate), exareq::InvalidArgument);
}

TEST(ModelTest, DependsOnReportsParameters) {
  const Model m = lulesh_flop_like();
  EXPECT_TRUE(m.depends_on(0));
  EXPECT_TRUE(m.depends_on(1));

  Term n_only;
  n_only.coefficient = 1.0;
  n_only.factors = {pmnf_factor(1, 1.0, 0.0)};
  const Model m2({"p", "n"}, 0.0, {n_only});
  EXPECT_FALSE(m2.depends_on(0));
  EXPECT_TRUE(m2.depends_on(1));
}

TEST(ModelTest, DominantTermPicksLargestContribution) {
  Term small;
  small.coefficient = 1.0;
  small.factors = {pmnf_factor(0, 1.0, 0.0)};  // x
  Term large;
  large.coefficient = 1.0;
  large.factors = {pmnf_factor(0, 2.0, 0.0)};  // x^2
  const Model m({"x"}, 0.0, {small, large});
  const double at_ten[] = {10.0};
  EXPECT_EQ(m.dominant_term(at_ten), 1u);
}

TEST(ModelTest, DominantTermRejectsConstantModel) {
  const Model m = Model::constant_model({"x"}, 1.0);
  const double at[] = {2.0};
  EXPECT_THROW(m.dominant_term(at), exareq::InvalidArgument);
}

TEST(ModelTest, ToStringRoundedUsesPowersOfTen) {
  Term term;
  term.coefficient = 9.4e4;  // rounds to 10^5
  term.factors = {pmnf_factor(0, 1.0, 1.0)};
  const Model m({"n"}, 0.0, {term});
  EXPECT_EQ(m.to_string_rounded(), "10^5 * n * log2(n)");
}

TEST(ModelTest, ToStringRoundedOmitsUnitCoefficient) {
  Term term;
  term.coefficient = 1.2;  // rounds to 10^0
  term.factors = {pmnf_factor(0, 0.5, 0.0)};
  const Model m({"n"}, 0.0, {term});
  EXPECT_EQ(m.to_string_rounded(), "n^0.5");
}

TEST(ModelTest, ToStringListsAllTerms) {
  Term a;
  a.coefficient = 2.0;
  a.factors = {pmnf_factor(0, 1.0, 0.0)};
  Term b;
  b.coefficient = 3.0;
  b.factors = {pmnf_factor(1, 0.0, 1.0)};
  const Model m({"n", "p"}, 1.0, {a, b});
  const std::string text = m.to_string();
  EXPECT_NE(text.find("2 * n"), std::string::npos);
  EXPECT_NE(text.find("3 * log2(p)"), std::string::npos);
}

TEST(ModelTest, SameBasisComparesStructureOnly) {
  Term a;
  a.coefficient = 1.0;
  a.factors = {pmnf_factor(0, 1.0, 0.0)};
  Term b = a;
  b.coefficient = 99.0;
  EXPECT_TRUE(a.same_basis(b));
  b.factors[0].poly_exponent = 2.0;
  EXPECT_FALSE(a.same_basis(b));
}

TEST(ModelTest, RemapParametersReordersFactors) {
  const Model m = lulesh_flop_like();  // parameters {p, n}
  const std::size_t mapping[] = {1, 0};  // new order {n, p}
  const Model remapped = m.remap_parameters({"n", "p"}, mapping);
  EXPECT_DOUBLE_EQ(remapped.evaluate2(8.0, 16.0), m.evaluate2(16.0, 8.0));
}

TEST(ModelTest, RemapRejectsUnmappedParameter) {
  const Model m = lulesh_flop_like();
  const std::size_t mapping[] = {0};  // drops parameter n, which is used
  EXPECT_THROW(m.remap_parameters({"p"}, mapping), exareq::InvalidArgument);
}

TEST(ModelTest, TermRejectsUnknownParameter) {
  Term bad;
  bad.coefficient = 1.0;
  bad.factors = {pmnf_factor(3, 1.0, 0.0)};
  EXPECT_THROW(Model({"p"}, 0.0, {bad}), exareq::InvalidArgument);
}

TEST(ModelTest, PredictEvaluatesAllCoordinates) {
  Term linear;
  linear.coefficient = 3.0;
  linear.factors = {pmnf_factor(0, 1.0, 0.0)};
  const Model m({"n"}, 0.0, {linear});
  MeasurementSet data({"n"});
  data.add({2.0}, 0.0);
  data.add({5.0}, 0.0);
  const auto predicted = m.predict(data);
  ASSERT_EQ(predicted.size(), 2u);
  EXPECT_DOUBLE_EQ(predicted[0], 6.0);
  EXPECT_DOUBLE_EQ(predicted[1], 15.0);
}


TEST(ModelTest, SumMergesConstantsAndFoldsSharedBases) {
  Term linear;
  linear.coefficient = 2.0;
  linear.factors = {pmnf_factor(0, 1.0, 0.0)};
  const Model a({"n"}, 1.0, {linear});
  Term linear_b = linear;
  linear_b.coefficient = 5.0;
  Term log_term;
  log_term.coefficient = 3.0;
  log_term.factors = {pmnf_factor(0, 0.0, 1.0)};
  const Model b({"n"}, 2.0, {linear_b, log_term});

  const Model models[] = {a, b};
  const Model sum = Model::sum(models);
  EXPECT_DOUBLE_EQ(sum.constant(), 3.0);
  ASSERT_EQ(sum.terms().size(), 2u);  // linear folded, log kept
  EXPECT_DOUBLE_EQ(sum.evaluate1(8.0), 1.0 + 2.0 * 8.0 + 2.0 + 5.0 * 8.0 + 9.0);
}

TEST(ModelTest, SumRejectsMismatchedParameters) {
  const Model a = Model::constant_model({"n"}, 1.0);
  const Model b = Model::constant_model({"p"}, 1.0);
  const Model models[] = {a, b};
  EXPECT_THROW(Model::sum(models), exareq::InvalidArgument);
  EXPECT_THROW(Model::sum({}), exareq::InvalidArgument);
}

TEST(ModelTest, SumOfOneModelIsIdentity) {
  Term t;
  t.coefficient = 7.0;
  t.factors = {pmnf_factor(0, 2.0, 0.0)};
  const Model a({"n"}, 0.5, {t});
  const Model models[] = {a};
  const Model sum = Model::sum(models);
  EXPECT_DOUBLE_EQ(sum.evaluate1(3.0), a.evaluate1(3.0));
}

}  // namespace
}  // namespace exareq::model
