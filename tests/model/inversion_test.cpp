#include "model/inversion.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

namespace exareq::model {
namespace {

Model linear_model(double coefficient, double constant = 0.0) {
  Term term;
  term.coefficient = coefficient;
  term.factors = {pmnf_factor(0, 1.0, 0.0)};
  return Model({"n"}, constant, {term});
}

Model nlogn_model(double coefficient) {
  Term term;
  term.coefficient = coefficient;
  term.factors = {pmnf_factor(0, 1.0, 1.0)};
  return Model({"n"}, 0.0, {term});
}

TEST(InversionTest, InvertsLinearModelExactly) {
  const Model m = linear_model(2.0, 10.0);
  const double n = invert_model(m, 410.0);
  EXPECT_NEAR(n, 200.0, 1e-6);
}

TEST(InversionTest, InvertsNLogNModel) {
  const Model m = nlogn_model(1e5);
  const double target = 1e5 * 4096.0 * 12.0;
  const double n = invert_model(m, target);
  EXPECT_NEAR(n, 4096.0, 1e-3);
}

TEST(InversionTest, LowerBoundHit) {
  const Model m = linear_model(1.0);
  EXPECT_NEAR(invert_model(m, 1.0), 1.0, 1e-9);
}

TEST(InversionTest, TargetBelowRangeThrows) {
  const Model m = linear_model(1.0, 100.0);
  EXPECT_THROW(invert_model(m, 50.0), exareq::NumericError);
}

TEST(InversionTest, UnreachableTargetThrows) {
  const Model m = Model::constant_model({"n"}, 5.0);
  InversionOptions options;
  options.upper_limit = 1e12;
  EXPECT_THROW(invert_model(m, 10.0, options), exareq::NumericError);
}

TEST(InversionTest, CallableOverload) {
  const double x = invert_monotone([](double v) { return v * v; }, 1e6);
  EXPECT_NEAR(x, 1000.0, 1e-6);
}

TEST(InversionTest, InvertInParameterWithOthersFixed) {
  // f(p, n) = n + p log2(p); invert in n at p = 8 for target 100:
  // n = 100 - 8*3 = 76.
  Term n_term;
  n_term.coefficient = 1.0;
  n_term.factors = {pmnf_factor(1, 1.0, 0.0)};
  Term p_term;
  p_term.coefficient = 1.0;
  p_term.factors = {pmnf_factor(0, 1.0, 1.0)};
  const Model m({"p", "n"}, 0.0, {n_term, p_term});
  const double coordinate[] = {8.0, 1.0};
  const double n = invert_model_in_parameter(m, 1, coordinate, 100.0);
  EXPECT_NEAR(n, 76.0, 1e-6);
}

TEST(InversionTest, MonotonicityProbeDetectsIncrease) {
  const Model m = linear_model(3.0);
  const double coordinate[] = {1.0};
  EXPECT_TRUE(is_monotone_in_parameter(m, 0, coordinate, 1.0, 1e6));
}

TEST(InversionTest, MonotonicityProbeDetectsDecrease) {
  Term term;
  term.coefficient = -2.0;
  term.factors = {pmnf_factor(0, 1.0, 0.0)};
  const Model m({"n"}, 1e9, {term});
  const double coordinate[] = {1.0};
  EXPECT_FALSE(is_monotone_in_parameter(m, 0, coordinate, 1.0, 1e6));
}

TEST(InversionTest, MonotonicityProbeValidatesItsArguments) {
  // Regression: the geometric probe ratio divides by probes - 1, so
  // probes <= 1 (UB/inf) and hi == lo (degenerate spacing) must be
  // rejected with a clear message instead of probing garbage.
  const Model m = linear_model(3.0);
  const double coordinate[] = {1.0};
  EXPECT_THROW(is_monotone_in_parameter(m, 0, coordinate, 1.0, 1e6, 1),
               exareq::InvalidArgument);
  EXPECT_THROW(is_monotone_in_parameter(m, 0, coordinate, 1.0, 1e6, 0),
               exareq::InvalidArgument);
  EXPECT_THROW(is_monotone_in_parameter(m, 0, coordinate, 4.0, 4.0),
               exareq::InvalidArgument);
  EXPECT_THROW(is_monotone_in_parameter(m, 0, coordinate, 8.0, 4.0),
               exareq::InvalidArgument);
  EXPECT_THROW(is_monotone_in_parameter(m, 0, coordinate, 0.5, 4.0),
               exareq::InvalidArgument);
  // Out-of-range parameter index / wrong coordinate width would write past
  // the probe point; both must throw up front.
  EXPECT_THROW(is_monotone_in_parameter(m, 1, coordinate, 1.0, 1e6),
               exareq::InvalidArgument);
  const double wide[] = {1.0, 2.0};
  EXPECT_THROW(is_monotone_in_parameter(m, 0, wide, 1.0, 1e6),
               exareq::InvalidArgument);
  // The smallest valid probe count still works.
  EXPECT_TRUE(is_monotone_in_parameter(m, 0, coordinate, 1.0, 1e6, 2));
}

TEST(InversionTest, ConstantModelIsMonotone) {
  const Model m = Model::constant_model({"n"}, 4.0);
  const double coordinate[] = {1.0};
  EXPECT_TRUE(is_monotone_in_parameter(m, 0, coordinate, 1.0, 100.0));
}

TEST(InversionTest, PrecisionIsTight) {
  const Model m = linear_model(7.0);
  const double n = invert_model(m, 7.0 * 123456.789);
  EXPECT_NEAR(n, 123456.789, 1e-4);
}

// Edge cases exercised by the upgrade study (paper Sec. III-A): the
// inversion step IV of Table IV runs on fitted footprint models, which can
// come out non-monotone, carry zero/negative coefficients, or be handed a
// memory budget outside the model's range.

Model sqrt_model(double coefficient) {
  Term term;
  term.coefficient = coefficient;
  term.factors = {pmnf_factor(0, 0.5, 0.0)};
  return Model({"n"}, 0.0, {term});
}

TEST(InversionEdgeTest, DecreasingModelIsFlaggedAndRefusedCleanly) {
  // A fit with a dominant negative coefficient is decreasing: the probe
  // must flag it, and inversion must refuse (f(lower_bound) already
  // overshoots every smaller target) instead of bisecting garbage.
  Term term;
  term.coefficient = -3.0;
  term.factors = {pmnf_factor(0, 1.0, 0.0)};
  const Model m({"n"}, 1e6, {term});
  const double coordinate[] = {1.0};
  EXPECT_FALSE(is_monotone_in_parameter(m, 0, coordinate, 1.0, 1e5));
  EXPECT_THROW(invert_model(m, 5e5), exareq::NumericError);
}

TEST(InversionEdgeTest, LocallyDecreasingMixedSignModelNeedsShiftedBound) {
  // f(n) = 2n - 10 sqrt(n) dips until n ~ 6.25, then grows. The probe over
  // a range containing the dip says "not monotone"; restarting above the
  // dip makes both the probe and the inversion well-defined.
  Term grow;
  grow.coefficient = 2.0;
  grow.factors = {pmnf_factor(0, 1.0, 0.0)};
  Term dip;
  dip.coefficient = -10.0;
  dip.factors = {pmnf_factor(0, 0.5, 0.0)};
  const Model m({"n"}, 0.0, {grow, dip});
  const double coordinate[] = {1.0};
  EXPECT_FALSE(is_monotone_in_parameter(m, 0, coordinate, 1.0, 1e6));
  EXPECT_TRUE(is_monotone_in_parameter(m, 0, coordinate, 10.0, 1e6));
  InversionOptions options;
  options.lower_bound = 10.0;
  // f(100) = 200 - 100 = 100.
  EXPECT_NEAR(invert_model(m, 100.0, options), 100.0, 1e-6);
}

TEST(InversionEdgeTest, ZeroCoefficientTermsBehaveAsConstantModel) {
  Term term;
  term.coefficient = 0.0;
  term.factors = {pmnf_factor(0, 2.0, 1.0)};
  const Model m({"n"}, 5.0, {term});
  const double coordinate[] = {1.0};
  EXPECT_TRUE(is_monotone_in_parameter(m, 0, coordinate, 1.0, 1e6));
  // The flat model meets its own constant at the lower bound...
  EXPECT_NEAR(invert_model(m, 5.0), 1.0, 1e-9);
  // ...and can never reach anything above it.
  InversionOptions options;
  options.upper_limit = 1e12;
  EXPECT_THROW(invert_model(m, 6.0, options), exareq::NumericError);
}

TEST(InversionEdgeTest, OutOfRangeTargetsThrowInEitherDirection) {
  const Model m = linear_model(2.0, 100.0);  // f(n) = 2n + 100, f(1) = 102
  EXPECT_THROW(invert_model(m, 101.9), exareq::NumericError);
  InversionOptions tight;
  tight.upper_limit = 1e6;
  EXPECT_THROW(invert_model(m, 1e9, tight), exareq::NumericError);
  // The boundary itself is in range.
  EXPECT_NEAR(invert_model(m, 102.0), 1.0, 1e-9);
}

TEST(InversionEdgeTest, MultiParamBudgetBelowMinimumProblemThrows) {
  // Step IV of Table IV inverts the footprint model in n at fixed p; a
  // budget below the minimum-problem footprint must throw, not return the
  // lower bound as if it fit.
  Term n_term;
  n_term.coefficient = 4.0;
  n_term.factors = {pmnf_factor(1, 1.0, 0.0)};
  Term p_term;
  p_term.coefficient = 1.0;
  p_term.factors = {pmnf_factor(0, 1.0, 1.0)};
  const Model m({"p", "n"}, 0.0, {n_term, p_term});
  const double coordinate[] = {1024.0, 1.0};  // p log2 p = 10240
  EXPECT_THROW(invert_model_in_parameter(m, 1, coordinate, 10000.0),
               exareq::NumericError);
  EXPECT_NEAR(invert_model_in_parameter(m, 1, coordinate, 10244.0), 1.0,
              1e-9);
}

TEST(InversionEdgeTest, LinearFootprintRatiosMatchTableVKripke) {
  // Paper Table V, Kripke (linear footprint): upgrade B halves the memory
  // per process -> n ratio 0.5; upgrade C doubles it -> n ratio 2.
  const Model m = linear_model(384.0);  // bytes = 384 n
  const double budget = 3.2e10;
  const double n = invert_model(m, budget);
  EXPECT_NEAR(invert_model(m, budget / 2.0) / n, 0.5, 1e-9);
  EXPECT_NEAR(invert_model(m, budget * 2.0) / n, 2.0, 1e-9);
}

TEST(InversionEdgeTest, SqrtFootprintRatioMatchesTableVRelearn) {
  // Paper Table V, Relearn under C: footprint grows with sqrt(n), so a
  // doubled memory budget quadruples the solvable problem size.
  const Model m = sqrt_model(1.7e5);
  const double budget = 1e9;
  const double n = invert_model(m, budget);
  EXPECT_NEAR(invert_model(m, 2.0 * budget) / n, 4.0, 1e-6);
}

TEST(InversionEdgeTest, NLogNFootprintUnderDoubledRacksMatchesTableIV) {
  // Paper Table IV: doubling the racks (2p, same memory per process)
  // leaves the per-process budget unchanged, so the inverted n is
  // unchanged (n'/n = 1) and the overall problem doubles with p alone.
  const Model m = nlogn_model(640.0);  // bytes = 640 n log2 n
  const double budget_per_process = 2.4e9;
  const double n_old = invert_model(m, budget_per_process);
  const double n_new = invert_model(m, budget_per_process);
  EXPECT_NEAR(n_new / n_old, 1.0, 1e-12);
  const double p_ratio = 2.0;
  EXPECT_NEAR(p_ratio * n_new / n_old, 2.0, 1e-12);
}

}  // namespace
}  // namespace exareq::model
