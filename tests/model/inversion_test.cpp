#include "model/inversion.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

namespace exareq::model {
namespace {

Model linear_model(double coefficient, double constant = 0.0) {
  Term term;
  term.coefficient = coefficient;
  term.factors = {pmnf_factor(0, 1.0, 0.0)};
  return Model({"n"}, constant, {term});
}

Model nlogn_model(double coefficient) {
  Term term;
  term.coefficient = coefficient;
  term.factors = {pmnf_factor(0, 1.0, 1.0)};
  return Model({"n"}, 0.0, {term});
}

TEST(InversionTest, InvertsLinearModelExactly) {
  const Model m = linear_model(2.0, 10.0);
  const double n = invert_model(m, 410.0);
  EXPECT_NEAR(n, 200.0, 1e-6);
}

TEST(InversionTest, InvertsNLogNModel) {
  const Model m = nlogn_model(1e5);
  const double target = 1e5 * 4096.0 * 12.0;
  const double n = invert_model(m, target);
  EXPECT_NEAR(n, 4096.0, 1e-3);
}

TEST(InversionTest, LowerBoundHit) {
  const Model m = linear_model(1.0);
  EXPECT_NEAR(invert_model(m, 1.0), 1.0, 1e-9);
}

TEST(InversionTest, TargetBelowRangeThrows) {
  const Model m = linear_model(1.0, 100.0);
  EXPECT_THROW(invert_model(m, 50.0), exareq::NumericError);
}

TEST(InversionTest, UnreachableTargetThrows) {
  const Model m = Model::constant_model({"n"}, 5.0);
  InversionOptions options;
  options.upper_limit = 1e12;
  EXPECT_THROW(invert_model(m, 10.0, options), exareq::NumericError);
}

TEST(InversionTest, CallableOverload) {
  const double x = invert_monotone([](double v) { return v * v; }, 1e6);
  EXPECT_NEAR(x, 1000.0, 1e-6);
}

TEST(InversionTest, InvertInParameterWithOthersFixed) {
  // f(p, n) = n + p log2(p); invert in n at p = 8 for target 100:
  // n = 100 - 8*3 = 76.
  Term n_term;
  n_term.coefficient = 1.0;
  n_term.factors = {pmnf_factor(1, 1.0, 0.0)};
  Term p_term;
  p_term.coefficient = 1.0;
  p_term.factors = {pmnf_factor(0, 1.0, 1.0)};
  const Model m({"p", "n"}, 0.0, {n_term, p_term});
  const double coordinate[] = {8.0, 1.0};
  const double n = invert_model_in_parameter(m, 1, coordinate, 100.0);
  EXPECT_NEAR(n, 76.0, 1e-6);
}

TEST(InversionTest, MonotonicityProbeDetectsIncrease) {
  const Model m = linear_model(3.0);
  const double coordinate[] = {1.0};
  EXPECT_TRUE(is_monotone_in_parameter(m, 0, coordinate, 1.0, 1e6));
}

TEST(InversionTest, MonotonicityProbeDetectsDecrease) {
  Term term;
  term.coefficient = -2.0;
  term.factors = {pmnf_factor(0, 1.0, 0.0)};
  const Model m({"n"}, 1e9, {term});
  const double coordinate[] = {1.0};
  EXPECT_FALSE(is_monotone_in_parameter(m, 0, coordinate, 1.0, 1e6));
}

TEST(InversionTest, ConstantModelIsMonotone) {
  const Model m = Model::constant_model({"n"}, 4.0);
  const double coordinate[] = {1.0};
  EXPECT_TRUE(is_monotone_in_parameter(m, 0, coordinate, 1.0, 100.0));
}

TEST(InversionTest, PrecisionIsTight) {
  const Model m = linear_model(7.0);
  const double n = invert_model(m, 7.0 * 123456.789);
  EXPECT_NEAR(n, 123456.789, 1e-4);
}

}  // namespace
}  // namespace exareq::model
