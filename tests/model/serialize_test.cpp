#include "model/serialize.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace exareq::model {
namespace {

Model lulesh_like() {
  Term a;
  a.coefficient = 10.764329837465321;
  a.factors = {pmnf_factor(0, 0.25, 1.0), pmnf_factor(1, 1.0, 1.0)};
  Term b;
  b.coefficient = 1424.0;
  b.factors = {special_factor(0, SpecialFn::kAllreduce)};
  return Model({"p", "n"}, 22.51, {a, b});
}

void expect_models_equal(const Model& x, const Model& y) {
  ASSERT_EQ(x.parameter_names(), y.parameter_names());
  EXPECT_DOUBLE_EQ(x.constant(), y.constant());
  ASSERT_EQ(x.terms().size(), y.terms().size());
  for (std::size_t t = 0; t < x.terms().size(); ++t) {
    EXPECT_DOUBLE_EQ(x.terms()[t].coefficient, y.terms()[t].coefficient);
    ASSERT_TRUE(x.terms()[t].same_basis(y.terms()[t]));
  }
}

TEST(SerializeTest, RoundTripPreservesModel) {
  const Model original = lulesh_like();
  const Model restored = parse_model(serialize_model(original));
  expect_models_equal(original, restored);
  // Functional equality at an awkward point.
  EXPECT_DOUBLE_EQ(restored.evaluate2(48.0, 391.0),
                   original.evaluate2(48.0, 391.0));
}

TEST(SerializeTest, RoundTripConstantModel) {
  const Model original = Model::constant_model({"n"}, 3.141592653589793);
  const Model restored = parse_model(serialize_model(original));
  expect_models_equal(original, restored);
}

TEST(SerializeTest, RoundTripExtremeCoefficients) {
  Term tiny;
  tiny.coefficient = 2.2250738585072014e-308;
  tiny.factors = {pmnf_factor(0, 3.0, 2.0)};
  Term huge;
  huge.coefficient = 1.7976931348623157e+308;
  huge.factors = {pmnf_factor(0, 1.0 / 3.0, 0.0)};
  const Model original({"x"}, -1e-300, {tiny, huge});
  const Model restored = parse_model(serialize_model(original));
  expect_models_equal(original, restored);
}

TEST(SerializeTest, SerializedFormIsHumanReadable) {
  const std::string text = serialize_model(lulesh_like());
  EXPECT_NE(text.find("model v1"), std::string::npos);
  EXPECT_NE(text.find("params p n"), std::string::npos);
  EXPECT_NE(text.find("special 0 allreduce"), std::string::npos);
  EXPECT_NE(text.find("end"), std::string::npos);
}

TEST(SerializeTest, ParsesWithBlankLines) {
  const std::string text =
      "model v1\n\nparams n\n\nconstant 2\n\nterm 3 pmnf 0 1 0\n\nend\n";
  const Model m = parse_model(text);
  EXPECT_DOUBLE_EQ(m.evaluate1(5.0), 17.0);
}

TEST(SerializeTest, RejectsMalformedInput) {
  EXPECT_THROW(parse_model(""), exareq::InvalidArgument);
  EXPECT_THROW(parse_model("model v2\nparams n\nconstant 0\nend\n"),
               exareq::InvalidArgument);
  EXPECT_THROW(parse_model("model v1\nparams\nconstant 0\nend\n"),
               exareq::InvalidArgument);
  EXPECT_THROW(parse_model("model v1\nparams n\nconstant x\nend\n"),
               exareq::InvalidArgument);
  EXPECT_THROW(
      parse_model("model v1\nparams n\nconstant 0\nterm 1 pmnf 5 1 0\nend\n"),
      exareq::InvalidArgument);  // parameter index out of range
  EXPECT_THROW(
      parse_model("model v1\nparams n\nconstant 0\nterm 1 special 0 scan\nend\n"),
      exareq::InvalidArgument);  // unknown special
  EXPECT_THROW(parse_model("model v1\nparams n\nconstant 0\nterm 1 pmnf 0 1\nend\n"),
               exareq::InvalidArgument);  // truncated factor
  EXPECT_THROW(parse_model("model v1\nparams n\nconstant 0\n"),
               exareq::InvalidArgument);  // missing end
}

TEST(SerializeTest, BundleRoundTripPreservesNamesAndLabels) {
  ModelBundle original;
  original.name = "LULESH";
  original.models = {{"footprint", lulesh_like()},
                     {"stack_distance", Model::constant_model({"n"}, 42.0)}};
  const std::string text = serialize_bundle(original);
  EXPECT_NE(text.find("exareq requirement models: LULESH"), std::string::npos);
  EXPECT_NE(text.find("# footprint"), std::string::npos);

  const ModelBundle restored = parse_bundle(text);
  EXPECT_EQ(restored.name, "LULESH");
  ASSERT_EQ(restored.models.size(), 2u);
  EXPECT_EQ(restored.models[0].first, "footprint");
  EXPECT_EQ(restored.models[1].first, "stack_distance");
  expect_models_equal(restored.models[0].second, original.models[0].second);
  expect_models_equal(restored.models[1].second, original.models[1].second);
}

TEST(SerializeTest, BundleParserLabelsUnlabeledModels) {
  const std::string text =
      "# exareq requirement models: X\n" + serialize_model(lulesh_like());
  const ModelBundle bundle = parse_bundle(text);
  ASSERT_EQ(bundle.models.size(), 1u);
  EXPECT_EQ(bundle.models[0].first, "model0");
}

TEST(SerializeTest, BundleRejectsEmptyInput) {
  EXPECT_THROW(parse_bundle(""), exareq::InvalidArgument);
  EXPECT_THROW(parse_bundle("# exareq requirement models: X\n"),
               exareq::InvalidArgument);
}

TEST(SerializeTest, BundleFormatVersionRoundTrips) {
  ModelBundle original;
  original.name = "Versioned";
  original.models = {{"footprint", lulesh_like()}};
  const std::string text = serialize_bundle(original);
  EXPECT_NE(text.find("# format " +
                      std::to_string(ModelBundle::kCurrentFormatVersion)),
            std::string::npos)
      << text;

  const ModelBundle restored = parse_bundle(text);
  EXPECT_EQ(restored.format_version, ModelBundle::kCurrentFormatVersion);
  EXPECT_EQ(restored.name, "Versioned");
  ASSERT_EQ(restored.models.size(), 1u);
}

TEST(SerializeTest, BundleWithoutFormatLineDefaultsToOriginal) {
  // Files written before the format field existed carry no `# format`
  // line; they must keep loading as format 1.
  const std::string text = "# exareq requirement models: Legacy\n"
                           "# footprint\n" +
                           serialize_model(lulesh_like());
  const ModelBundle bundle = parse_bundle(text);
  EXPECT_EQ(bundle.format_version, 1);
  ASSERT_EQ(bundle.models.size(), 1u);
}

TEST(SerializeTest, BundleRejectsUnknownFutureFormat) {
  const int future = ModelBundle::kCurrentFormatVersion + 1;
  const std::string text = "# exareq requirement models: Future\n"
                           "# format " +
                           std::to_string(future) +
                           "\n"
                           "# footprint\n" +
                           serialize_model(lulesh_like());
  try {
    parse_bundle(text);
    FAIL() << "future format accepted";
  } catch (const exareq::InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("format " + std::to_string(future)),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("max format " +
                        std::to_string(ModelBundle::kCurrentFormatVersion)),
              std::string::npos)
        << what;
  }
}

TEST(SerializeTest, LegacyFormatOneBundleStillLoads) {
  // A v1 file (the original five-label layout, explicit format line) must
  // keep loading under the v2 reader, with the optional channels absent.
  const std::string text = "# exareq requirement models: Legacy\n"
                           "# format 1\n"
                           "# footprint\n" +
                           serialize_model(lulesh_like());
  const ModelBundle bundle = parse_bundle(text);
  EXPECT_EQ(bundle.format_version, 1);
  ASSERT_EQ(bundle.models.size(), 1u);
  EXPECT_EQ(bundle.models[0].first, "footprint");
}

TEST(SerializeTest, BundleRejectsMalformedFormatLine) {
  const std::string body = "# footprint\n" + serialize_model(lulesh_like());
  EXPECT_THROW(parse_bundle("# exareq requirement models: X\n# format x\n" +
                            body),
               exareq::InvalidArgument);
  EXPECT_THROW(parse_bundle("# exareq requirement models: X\n# format 1.5\n" +
                            body),
               exareq::InvalidArgument);
  EXPECT_THROW(parse_bundle("# exareq requirement models: X\n# format 0\n" +
                            body),
               exareq::InvalidArgument);
}

}  // namespace
}  // namespace exareq::model
