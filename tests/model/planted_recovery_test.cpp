// Property sweep over planted two-parameter models: the generator must
// recover (to within a few percent at a 10x-extrapolated point) every
// combination shape the paper's Table II exhibits — multiplicative,
// additive, collective-based, and single-parameter-only.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>

#include "model/inversion.hpp"
#include "model/modelgen.hpp"
#include "support/rng.hpp"

namespace exareq::model {
namespace {

struct PlantedCase {
  const char* name;
  std::function<double(double, double)> truth;  // (p, n)
  bool communication;
};

// The paper's Table II shapes, expressed as closed forms.
const PlantedCase kCases[] = {
    {"linear_n", [](double, double n) { return 1e4 * n; }, false},
    {"nlogn", [](double, double n) { return 50.0 * n * std::log2(n); }, false},
    {"sqrt_n", [](double, double n) { return 3e3 * std::sqrt(n); }, false},
    {"n_plus_np",
     [](double p, double n) { return 1e5 * n + 1e2 * n * p; }, false},
    {"lulesh_flop",
     [](double p, double n) {
       return 20.0 * n * std::log2(n) * std::pow(p, 0.25) * std::log2(p);
     },
     false},
    {"milc_flop",
     [](double p, double n) { return 3e5 + 125.0 * n + 60.0 * n * std::log2(p); },
     false},
    {"milc_loads",
     [](double p, double n) {
       return 2e5 + 40.0 * n * std::log2(n) + 80.0 * std::pow(p, 1.5);
     },
     false},
    {"icofoam_flop",
     [](double p, double n) { return 24.0 * std::pow(n, 1.5) * std::sqrt(p); },
     false},
    {"icofoam_mem",
     [](double p, double n) { return 40.0 * n + 256.0 * p * std::log2(p); },
     false},
    {"allreduce_comm",
     [](double p, double) { return 400.0 * 2.0 * std::log2(p); }, true},
    {"scaled_allreduce",
     [](double p, double n) { return 32.0 * std::sqrt(n) * 2.0 * std::log2(p); },
     true},
    {"alltoall_plus_halo",
     [](double p, double n) { return 64.0 * 2.0 * (p - 1.0) + 128.0 * n; }, true},
};

class PlantedRecoveryTest
    : public ::testing::TestWithParam<std::size_t> {};

std::string case_name(const ::testing::TestParamInfo<std::size_t>& info) {
  return kCases[info.param].name;
}

INSTANTIATE_TEST_SUITE_P(TableIIShapes, PlantedRecoveryTest,
                         ::testing::Range<std::size_t>(0, std::size(kCases)),
                         case_name);

TEST_P(PlantedRecoveryTest, ExtrapolatesTenfoldWithinFivePercent) {
  const PlantedCase& planted = kCases[GetParam()];
  MeasurementSet data({"p", "n"});
  for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) {
    for (double n : {64.0, 128.0, 256.0, 512.0, 1024.0}) {
      data.add2(p, n, planted.truth(p, n));
    }
  }
  ModelGenerator generator;
  MetricTraits traits;
  traits.is_communication = planted.communication;
  const FitResult fit = generator.generate(data, traits);

  for (const auto& [p, n] : {std::pair{512.0, 8192.0}, {1024.0, 16384.0}}) {
    const double truth = planted.truth(p, n);
    const double predicted = fit.model.evaluate2(p, n);
    EXPECT_NEAR(predicted, truth, 0.05 * truth)
        << "at (p=" << p << ", n=" << n << "), model " << fit.model.to_string();
  }
}

TEST_P(PlantedRecoveryTest, SurvivesCounterNoise) {
  // 0.3% multiplicative noise (generous for hardware counters): the model
  // must still extrapolate tenfold within 15%.
  const PlantedCase& planted = kCases[GetParam()];
  exareq::Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  MeasurementSet data({"p", "n"});
  for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) {
    for (double n : {64.0, 128.0, 256.0, 512.0, 1024.0}) {
      data.add2(p, n, planted.truth(p, n) * (1.0 + 0.003 * rng.normal()));
    }
  }
  ModelGenerator generator;
  MetricTraits traits;
  traits.is_communication = planted.communication;
  const FitResult fit = generator.generate(data, traits);
  const double truth = planted.truth(512.0, 8192.0);
  EXPECT_NEAR(fit.model.evaluate2(512.0, 8192.0), truth, 0.15 * truth)
      << fit.model.to_string();
}

TEST_P(PlantedRecoveryTest, InversionRoundTripsInN) {
  // Fit, then invert the fitted model in n at fixed p; the footprint of the
  // recovered problem size must equal the requested budget.
  const PlantedCase& planted = kCases[GetParam()];
  if (planted.name == std::string("allreduce_comm")) {
    return;  // constant in n: not invertible
  }
  MeasurementSet data({"p", "n"});
  for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) {
    for (double n : {64.0, 128.0, 256.0, 512.0, 1024.0}) {
      data.add2(p, n, planted.truth(p, n));
    }
  }
  ModelGenerator generator;
  MetricTraits traits;
  traits.is_communication = planted.communication;
  const FitResult fit = generator.generate(data, traits);

  const double p = 128.0;
  const double budget = fit.model.evaluate2(p, 4096.0);
  const double coordinate[] = {p, 1.0};
  const double n = invert_model_in_parameter(fit.model, 1, coordinate, budget);
  EXPECT_NEAR(fit.model.evaluate2(p, n), budget, 1e-6 * budget);
  EXPECT_NEAR(n, 4096.0, 1.0);
}

}  // namespace
}  // namespace exareq::model
