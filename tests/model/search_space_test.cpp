#include "model/search_space.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace exareq::model {
namespace {

TEST(SearchSpaceTest, PaperGridContainsEighthsAndThirds) {
  const SearchSpace space = SearchSpace::paper_default();
  const auto contains = [&space](double value) {
    return std::any_of(space.poly_exponents.begin(), space.poly_exponents.end(),
                       [value](double e) { return std::fabs(e - value) < 1e-9; });
  };
  EXPECT_TRUE(contains(0.0));
  EXPECT_TRUE(contains(0.125));
  EXPECT_TRUE(contains(0.25));
  EXPECT_TRUE(contains(0.375));  // icoFoam communication exponent
  EXPECT_TRUE(contains(1.0 / 3.0));
  EXPECT_TRUE(contains(2.0 / 3.0));
  EXPECT_TRUE(contains(1.5));
  EXPECT_TRUE(contains(3.0));
  EXPECT_FALSE(contains(3.125));  // capped at 3
}

TEST(SearchSpaceTest, PaperGridLogExponents) {
  const SearchSpace space = SearchSpace::paper_default();
  EXPECT_EQ(space.log_exponents,
            (std::vector<double>{0.0, 0.5, 1.0, 1.5, 2.0}));
}

TEST(SearchSpaceTest, PolyGridIsSortedAndUnique) {
  const SearchSpace space = SearchSpace::paper_default();
  for (std::size_t i = 1; i < space.poly_exponents.size(); ++i) {
    EXPECT_GT(space.poly_exponents[i], space.poly_exponents[i - 1]);
  }
  // 25 eighths + 10 thirds - 4 shared (0, 1, 2, 3) = 31 distinct values.
  EXPECT_EQ(space.poly_exponents.size(), 31u);
}

TEST(SearchSpaceTest, FactorsExcludeIdentity) {
  const SearchSpace space = SearchSpace::paper_default();
  for (const Factor& f : space.factors_for(0)) {
    EXPECT_FALSE(f.is_identity());
  }
}

TEST(SearchSpaceTest, FactorCountMatchesEnumeration) {
  SearchSpace space = SearchSpace::paper_default();
  EXPECT_EQ(space.factors_for(0).size(), space.factor_count());
  EXPECT_EQ(space.factor_count(), 31u * 5u - 1u);
  space.include_collectives = true;
  EXPECT_EQ(space.factors_for(0).size(), space.factor_count());
  EXPECT_EQ(space.factor_count(), 31u * 5u - 1u + 3u);
}

TEST(SearchSpaceTest, FactorsCarryParameterIndex) {
  const SearchSpace space = SearchSpace::coarse();
  for (const Factor& f : space.factors_for(3)) {
    EXPECT_EQ(f.parameter, 3u);
  }
}

TEST(SearchSpaceTest, FactorsSortedByComplexity) {
  const SearchSpace space = SearchSpace::paper_default();
  const auto factors = space.factors_for(0);
  for (std::size_t i = 1; i < factors.size(); ++i) {
    EXPECT_LE(factors[i - 1].complexity(), factors[i].complexity());
  }
}

TEST(SearchSpaceTest, CollectivesAppendedWhenEnabled) {
  SearchSpace space = SearchSpace::coarse();
  space.include_collectives = true;
  const auto factors = space.factors_for(0);
  const auto count_special = std::count_if(
      factors.begin(), factors.end(),
      [](const Factor& f) { return f.special != SpecialFn::kNone; });
  EXPECT_EQ(count_special, 3);
}

TEST(SearchSpaceTest, CoarseGridIsSubsetSized) {
  const SearchSpace coarse = SearchSpace::coarse();
  const SearchSpace paper = SearchSpace::paper_default();
  EXPECT_LT(coarse.factor_count(), paper.factor_count());
}

}  // namespace
}  // namespace exareq::model
