// Failure injection and noise robustness of the measurement pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "pipeline/campaign.hpp"
#include "pipeline/codesign_bridge.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace exareq::pipeline {
namespace {

/// An application whose ranks fail at a chosen process count.
class FaultyApp final : public apps::Application {
 public:
  explicit FaultyApp(int failing_p) : failing_p_(failing_p) {}
  std::string name() const override { return "Faulty"; }
  std::string description() const override { return "fails at one p"; }
  std::string problem_size_meaning() const override { return "units"; }

  void run_rank(simmpi::Communicator& comm, instr::ProcessInstrumentation& instr,
                std::int64_t n) const override {
    instr.count_flops(static_cast<std::uint64_t>(n));
    if (comm.size() == failing_p_ && comm.rank() == comm.size() - 1) {
      throw exareq::NumericError("injected failure");
    }
    // Deliberately no communication after the failure point: a rank that
    // throws leaves its peers permanently blocked if they wait on it (the
    // runtime documents that failures are not fault-tolerant), so a
    // well-formed failure test must not make survivors depend on the dead
    // rank.
  }

  void trace_locality(std::int64_t, memtrace::TraceSink& sink) const override {
    const auto g = sink.register_group("g");
    for (int i = 0; i < 2000; ++i) sink.record(0x10 + (i % 4), g);
  }

 private:
  int failing_p_;
};

TEST(RobustnessTest, RankFailurePropagatesOutOfCampaign) {
  // A rank failure must surface as the original exception, not hang the
  // thread-per-rank runtime or corrupt other configurations.
  const FaultyApp app(4);
  CampaignConfig config;
  config.process_counts = {2, 4};
  config.problem_sizes = {32};
  EXPECT_THROW(run_campaign(app, config), exareq::NumericError);
}

TEST(RobustnessTest, NonFailingConfigurationsStillMeasure) {
  const FaultyApp app(64);  // never triggered below
  CampaignConfig config;
  config.process_counts = {2, 4};
  config.problem_sizes = {32, 64};
  const CampaignData data = run_campaign(app, config);
  EXPECT_EQ(data.measurements.size(), 4u);
  for (const AppMeasurement& m : data.measurements) {
    EXPECT_DOUBLE_EQ(m.flops, static_cast<double>(m.problem_size));
  }
}

TEST(RobustnessTest, LocalityCanBeDisabled) {
  const auto& app = apps::application(apps::AppId::kKripke);
  LocalityOptions disabled;
  disabled.enabled = false;
  const AppMeasurement m = measure_app(app, 2, 64, disabled);
  EXPECT_DOUBLE_EQ(m.stack_distance, 0.0);
  EXPECT_GT(m.flops, 0.0);
}

TEST(RobustnessTest, CounterNoiseDoesNotChangeKripkeConclusions) {
  // Perturb a real Kripke campaign by +/-0.5% multiplicative noise (the
  // PAPI non-determinism the paper works around, Sec. II-B) and verify the
  // co-design-relevant behaviour of the refitted models.
  const auto& app = apps::application(apps::AppId::kKripke);
  CampaignData data = run_campaign(app);
  exareq::Rng rng(2026);
  for (AppMeasurement& m : data.measurements) {
    m.flops *= 1.0 + 0.005 * rng.normal();
    m.loads_stores *= 1.0 + 0.005 * rng.normal();
    m.bytes_used *= 1.0 + 0.005 * rng.normal();
    for (auto& [name, channel] : m.channels) {
      channel.bytes *= 1.0 + 0.005 * rng.normal();
    }
  }
  const RequirementModels models = model_requirements(data);
  const codesign::AppRequirements req = to_requirements(models);

  const auto n_ratio = [](const model::Model& m) {
    return m.evaluate2(1048576.0, 2097152.0) / m.evaluate2(1048576.0, 1048576.0);
  };
  const auto p_ratio = [](const model::Model& m) {
    return m.evaluate2(2097152.0, 1048576.0) / m.evaluate2(1048576.0, 1048576.0);
  };
  // Linear in n, p-independent computation and communication.
  EXPECT_NEAR(n_ratio(req.flops), 2.0, 0.15);
  EXPECT_NEAR(p_ratio(req.flops), 1.0, 0.1);
  EXPECT_NEAR(p_ratio(req.comm_bytes), 1.0, 0.1);
  EXPECT_NEAR(n_ratio(req.footprint), 2.0, 0.15);
  // The flagged n*p load/store coupling survives.
  EXPECT_GT(p_ratio(req.loads_stores), 1.5);
}

TEST(RobustnessTest, DegenerateGridRejectedEarly) {
  const auto& app = apps::application(apps::AppId::kKripke);
  CampaignConfig config;
  config.process_counts = {};
  EXPECT_THROW(run_campaign(app, config), exareq::InvalidArgument);
}

}  // namespace
}  // namespace exareq::pipeline
