#include "pipeline/report.hpp"

#include <gtest/gtest.h>

namespace exareq::pipeline {
namespace {

model::FitResult fit_of(model::Model m) {
  model::FitResult fit;
  fit.model = std::move(m);
  fit.quality.cv_score = 1.5e-3;
  return fit;
}

model::Model coupled_model() {
  model::Term term;
  term.coefficient = 3.2e4;
  term.factors = {model::pmnf_factor(0, 0.25, 1.0),
                  model::pmnf_factor(1, 1.0, 0.0)};
  return model::Model({"p", "n"}, 0.0, {term});
}

model::Model n_only_model() {
  model::Term term;
  term.coefficient = 144.0;
  term.factors = {model::pmnf_factor(1, 1.0, 0.0)};
  return model::Model({"p", "n"}, 4096.0, {term});
}

RequirementModels sample_models(bool coupled, bool sd_constant) {
  RequirementModels models;
  models.app_name = "Sample";
  models.bytes_used = fit_of(n_only_model());
  models.flops = fit_of(coupled ? coupled_model() : n_only_model());
  models.bytes_sent_received = fit_of(n_only_model());
  models.loads_stores = fit_of(n_only_model());
  models.stack_distance =
      fit_of(sd_constant
                 ? model::Model::constant_model({"n"}, 8.0)
                 : model::Model({"n"}, 0.0,
                                {[] {
                                  model::Term t;
                                  t.coefficient = 1.0;
                                  t.factors = {model::pmnf_factor(0, 1.0, 0.0)};
                                  return t;
                                }()}));
  return models;
}

TEST(ReportTest, RendersAllMetricRows) {
  const std::string text = render_models(sample_models(false, true));
  for (const char* label :
       {"#Bytes used", "#FLOP", "#Bytes sent & received", "#Loads & stores",
        "Stack distance"}) {
    EXPECT_NE(text.find(label), std::string::npos) << label;
  }
  EXPECT_NE(text.find("CV error"), std::string::npos);
}

TEST(ReportTest, MarksCoupledMetricsWithWarning) {
  const std::string text = render_models(sample_models(true, true));
  EXPECT_NE(text.find("#FLOP (!)"), std::string::npos);
  EXPECT_EQ(text.find("#Bytes used (!)"), std::string::npos);
}

TEST(ReportTest, RoundedVsFullPrecision) {
  ReportOptions rounded;
  ReportOptions full;
  full.rounded = false;
  const auto models = sample_models(false, true);
  EXPECT_NE(render_models(models, rounded).find("10^2 * n"), std::string::npos);
  EXPECT_NE(render_models(models, full).find("144 * n"), std::string::npos);
}

TEST(ReportTest, CvColumnCanBeHidden) {
  ReportOptions options;
  options.show_cv = false;
  const std::string text = render_models(sample_models(false, true), options);
  EXPECT_EQ(text.find("CV error"), std::string::npos);
}

TEST(ReportTest, ChannelsReplaceTotalWhenPresent) {
  RequirementModels models = sample_models(false, true);
  ChannelModel channel;
  channel.name = "cg_allreduce";
  channel.fit = fit_of(coupled_model());
  models.comm_channels.push_back(channel);
  const std::string with_channels = render_models(models);
  EXPECT_NE(with_channels.find("cg_allreduce"), std::string::npos);

  ReportOptions totals_only;
  totals_only.per_channel_communication = false;
  const std::string without = render_models(models, totals_only);
  EXPECT_EQ(without.find("cg_allreduce"), std::string::npos);
  EXPECT_NE(without.find("#Bytes sent & received"), std::string::npos);
}

TEST(ReportTest, AssessmentCallsOutCoupling) {
  const std::string clean = render_assessment(sample_models(false, true));
  EXPECT_NE(clean.find("no requirement couples"), std::string::npos);
  const std::string coupled = render_assessment(sample_models(true, true));
  EXPECT_NE(coupled.find("#FLOP"), std::string::npos);
  EXPECT_NE(coupled.find("warning-sign"), std::string::npos);
}

TEST(ReportTest, AssessmentFlagsGrowingStackDistance) {
  const std::string text = render_assessment(sample_models(false, false));
  EXPECT_NE(text.find("stack distance grows"), std::string::npos);
}

TEST(ReportTest, EngineStatsTableListsEveryFitAndATotal) {
  RequirementModels models = sample_models(false, true);
  models.flops.stats.hypotheses_scored = 1234;
  models.flops.stats.cv_solves = 567;
  models.flops.stats.qr_extensions = 7654;
  models.flops.stats.wall_seconds = 0.25;
  models.flops.stats.threads = 4;
  ChannelModel channel;
  channel.name = "cg_allreduce";
  channel.fit = fit_of(coupled_model());
  channel.fit.stats.hypotheses_scored = 10;
  models.comm_channels.push_back(channel);

  const std::string text = render_engine_stats(models);
  EXPECT_NE(text.find("Hypotheses"), std::string::npos);
  EXPECT_NE(text.find("CV solves"), std::string::npos);
  EXPECT_NE(text.find("Extensions"), std::string::npos);
  EXPECT_NE(text.find("1,234"), std::string::npos);
  EXPECT_NE(text.find("7,654"), std::string::npos);
  EXPECT_NE(text.find("cg_allreduce"), std::string::npos);
  // The totals row carries the resolved thread count (max across fits).
  EXPECT_NE(text.find("Total (threads=4)"), std::string::npos);
}

}  // namespace
}  // namespace exareq::pipeline
