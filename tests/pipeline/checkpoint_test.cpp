// Checkpoint format and crash/resume behaviour of run_campaign. Suites are
// named Checkpoint*/Resume* so the ThreadSanitizer CI job can select them
// (see CMakePresets.json) alongside the Campaign* concurrency suites.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "pipeline/campaign.hpp"
#include "support/error.hpp"

namespace exareq::pipeline {
namespace {

/// Fresh checkpoint directory under the gtest temp root.
std::string fresh_dir(const std::string& name) {
  const std::string path = ::testing::TempDir() + "exareq_ckpt_" + name;
  std::filesystem::remove_all(path);
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

AppMeasurement sample_measurement() {
  AppMeasurement m;
  m.processes = 8;
  m.problem_size = 256;
  m.bytes_used = 1.5e9;
  m.flops = 3.25e12;
  m.loads_stores = 7.125e11;
  m.bytes_sent_received = 2.5e8;
  m.stack_distance = 12345.678;
  m.channels["cg_allreduce"] = ChannelMeasurement{1.0e8, true, false, false};
  m.channels["halo"] = ChannelMeasurement{1.5e8, false, false, false};
  m.channels["setup_bcast"] = ChannelMeasurement{2.0e6, false, true, true};
  return m;
}

void expect_same_measurement(const AppMeasurement& a, const AppMeasurement& b) {
  EXPECT_EQ(a.processes, b.processes);
  EXPECT_EQ(a.problem_size, b.problem_size);
  // Bit-exact double equality is the whole point of the binary encoding.
  EXPECT_EQ(a.bytes_used, b.bytes_used);
  EXPECT_EQ(a.flops, b.flops);
  EXPECT_EQ(a.loads_stores, b.loads_stores);
  EXPECT_EQ(a.bytes_sent_received, b.bytes_sent_received);
  EXPECT_EQ(a.stack_distance, b.stack_distance);
  ASSERT_EQ(a.channels.size(), b.channels.size());
  for (const auto& [name, channel] : a.channels) {
    ASSERT_TRUE(b.channels.count(name)) << name;
    const ChannelMeasurement& other = b.channels.at(name);
    EXPECT_EQ(channel.bytes, other.bytes);
    EXPECT_EQ(channel.uses_allreduce, other.uses_allreduce);
    EXPECT_EQ(channel.uses_bcast, other.uses_bcast);
    EXPECT_EQ(channel.uses_alltoall, other.uses_alltoall);
  }
}

CheckpointManifest sample_manifest() {
  CheckpointManifest manifest;
  manifest.app_name = "Kripke";
  manifest.process_counts = {2, 4, 8};
  manifest.problem_sizes = {32, 64};
  manifest.locality_enabled = true;
  manifest.sampler = {64, 512, 0};
  manifest.min_samples = 100;
  return manifest;
}

TEST(CheckpointTest, ManifestRoundTrip) {
  const CheckpointManifest manifest = sample_manifest();
  const CheckpointManifest parsed =
      CheckpointManifest::parse(manifest.serialize());
  EXPECT_TRUE(parsed.compatible_with(manifest));
  EXPECT_TRUE(manifest.compatible_with(parsed));
  EXPECT_EQ(parsed.slot_count(), 6u);
  EXPECT_EQ(parsed.serialize(), manifest.serialize());
}

TEST(CheckpointTest, ManifestRejectsTamperedBytes) {
  const std::string clean = sample_manifest().serialize();
  // Flip one byte at a time; the self-checksum must catch every position.
  for (std::size_t i = 0; i < clean.size(); i += 7) {
    std::string damaged = clean;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x20);
    if (damaged == clean) continue;
    EXPECT_THROW(CheckpointManifest::parse(damaged), CheckpointError)
        << "byte " << i;
  }
  EXPECT_THROW(CheckpointManifest::parse(""), CheckpointError);
  EXPECT_THROW(CheckpointManifest::parse("not a manifest"), CheckpointError);
}

TEST(CheckpointTest, ManifestCompatibilityNamesTheDifferingField) {
  const CheckpointManifest base = sample_manifest();
  const auto expect_mismatch = [&](CheckpointManifest changed,
                                   const std::string& field) {
    std::string why;
    EXPECT_FALSE(base.compatible_with(changed, &why));
    EXPECT_NE(why.find(field), std::string::npos) << why;
  };
  CheckpointManifest app = base;
  app.app_name = "LULESH";
  expect_mismatch(app, "app");
  CheckpointManifest processes = base;
  processes.process_counts = {2, 4};
  expect_mismatch(processes, "process");
  CheckpointManifest sizes = base;
  sizes.problem_sizes = {32, 64, 128};
  expect_mismatch(sizes, "problem-size");
  CheckpointManifest locality = base;
  locality.locality_enabled = false;
  expect_mismatch(locality, "locality");
  CheckpointManifest sampler = base;
  sampler.sampler = {64, 2048, 0};
  expect_mismatch(sampler, "sampler");
  CheckpointManifest samples = base;
  samples.min_samples = 200;
  expect_mismatch(samples, "min_samples");
}

TEST(CheckpointTest, RecordRoundTripIsBitExact) {
  const AppMeasurement m = sample_measurement();
  const std::string record = encode_record(7, m);
  const CheckpointLoadResult load = scan_records(record, 16);
  EXPECT_EQ(load.valid_records, 1u);
  EXPECT_EQ(load.valid_bytes, record.size());
  EXPECT_EQ(load.dropped_tail_bytes, 0u);
  ASSERT_EQ(load.slots.size(), 1u);
  ASSERT_TRUE(load.slots.count(7));
  expect_same_measurement(m, load.slots.at(7));
}

TEST(CheckpointTest, ScanStopsAtFirstDamagedRecord) {
  const AppMeasurement m = sample_measurement();
  const std::string first = encode_record(0, m);
  const std::string second = encode_record(1, m);
  const std::string third = encode_record(2, m);
  std::string log = first + second + third;
  // Damage a payload byte of the middle record.
  log[first.size() + second.size() / 2] ^= 0x01;
  const CheckpointLoadResult load = scan_records(log, 16);
  EXPECT_EQ(load.valid_records, 1u);
  EXPECT_EQ(load.valid_bytes, first.size());
  EXPECT_EQ(load.dropped_tail_bytes, second.size() + third.size());
  EXPECT_TRUE(load.slots.count(0));
  EXPECT_FALSE(load.slots.count(1));
  EXPECT_FALSE(load.slots.count(2));
}

TEST(CheckpointTest, ScanHandlesTruncatedTail) {
  const AppMeasurement m = sample_measurement();
  const std::string first = encode_record(0, m);
  const std::string second = encode_record(1, m);
  const std::string log = first + second;
  for (std::size_t cut = first.size(); cut < log.size(); cut += 5) {
    const CheckpointLoadResult load =
        scan_records(std::string_view(log).substr(0, cut), 16);
    EXPECT_EQ(load.valid_records, 1u) << "cut " << cut;
    EXPECT_EQ(load.valid_bytes, first.size());
    EXPECT_EQ(load.dropped_tail_bytes, cut - first.size());
  }
}

TEST(CheckpointTest, ScanLastDuplicateWins) {
  AppMeasurement m = sample_measurement();
  const std::string first = encode_record(3, m);
  m.flops = 999.0;
  const std::string second = encode_record(3, m);
  const CheckpointLoadResult load = scan_records(first + second, 16);
  EXPECT_EQ(load.valid_records, 2u);
  EXPECT_EQ(load.duplicate_records, 1u);
  ASSERT_EQ(load.slots.size(), 1u);
  EXPECT_EQ(load.slots.at(3).flops, 999.0);
}

TEST(CheckpointTest, ScanRejectsOutOfRangeSlot) {
  // A record whose slot is outside the campaign grid would silently claim a
  // grid point that does not exist; the scanner must stop there.
  const std::string record = encode_record(12, sample_measurement());
  const CheckpointLoadResult load = scan_records(record, 4);
  EXPECT_EQ(load.valid_records, 0u);
  EXPECT_TRUE(load.slots.empty());
  EXPECT_EQ(load.dropped_tail_bytes, record.size());
}

TEST(CheckpointTest, WriterDiesAfterHookThrow) {
  const std::string dir = fresh_dir("writer_dies");
  std::filesystem::create_directories(dir);
  CheckpointOptions options;
  options.directory = dir;
  options.after_record = [](std::size_t) {
    throw exareq::Error("simulated crash");
  };
  CheckpointWriter writer(options, 0);
  EXPECT_THROW(writer.append(0, sample_measurement()), exareq::Error);
  // The first record is durable, but the writer is dead: nothing further
  // may reach the log after the simulated crash.
  EXPECT_THROW(writer.append(1, sample_measurement()), CheckpointError);
  const CheckpointLoadResult load =
      scan_records(read_file(checkpoint_log_path(dir)), 4);
  EXPECT_EQ(load.valid_records, 1u);
  EXPECT_TRUE(load.slots.count(0));
}

TEST(CheckpointTest, FreshCampaignPersistsEveryGridPoint) {
  const std::string dir = fresh_dir("fresh");
  const auto& app = apps::application(apps::AppId::kKripke);
  CampaignConfig config;
  config.process_counts = {2, 4};
  config.problem_sizes = {32, 64};
  config.threads = 1;
  config.checkpoint.directory = dir;

  auto& counter = obs::MetricRegistry::instance().counter(
      "campaign.checkpoint.records_written");
  const std::uint64_t before = counter.value();
  const CampaignData data = run_campaign(app, config);
  EXPECT_EQ(counter.value() - before, 4u);

  const auto manifest = read_manifest(dir);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->app_name, "Kripke");
  EXPECT_EQ(manifest->slot_count(), 4u);

  const CheckpointLoadResult load = load_records(dir, manifest->slot_count());
  EXPECT_EQ(load.valid_records, 4u);
  EXPECT_EQ(load.dropped_tail_bytes, 0u);
  ASSERT_EQ(load.slots.size(), 4u);
  for (const auto& [slot, m] : load.slots) {
    expect_same_measurement(data.measurements[slot], m);
  }
}

std::string clean_csv(const apps::Application& app, CampaignConfig config) {
  config.checkpoint = CheckpointOptions{};
  return run_campaign(app, config).to_csv().to_string();
}

TEST(ResumeTest, ZeroRemainingResumeIsByteIdentical) {
  const std::string dir = fresh_dir("zero_remaining");
  const auto& app = apps::application(apps::AppId::kLulesh);
  CampaignConfig config;
  config.process_counts = {2, 4};
  config.problem_sizes = {32, 64};
  config.threads = 1;
  config.checkpoint.directory = dir;
  const std::string full = run_campaign(app, config).to_csv().to_string();

  config.checkpoint.resume = true;
  const std::string resumed = run_campaign(app, config).to_csv().to_string();
  EXPECT_EQ(resumed, full);
  EXPECT_EQ(full, clean_csv(app, config));
}

TEST(ResumeTest, KillAndResumeIsByteIdentical) {
  const std::string dir = fresh_dir("kill_resume");
  const auto& app = apps::application(apps::AppId::kMilc);
  CampaignConfig config;
  config.process_counts = {2, 4};
  config.problem_sizes = {32, 64};
  config.threads = 1;
  config.checkpoint.directory = dir;
  const std::string reference = clean_csv(app, config);

  config.checkpoint.after_record = [](std::size_t records) {
    if (records >= 2) throw exareq::Error("simulated kill");
  };
  EXPECT_THROW(run_campaign(app, config), exareq::Error);

  config.checkpoint.after_record = nullptr;
  config.checkpoint.resume = true;
  const std::string resumed = run_campaign(app, config).to_csv().to_string();
  EXPECT_EQ(resumed, reference);
}

TEST(ResumeTest, ResumeTwiceIsByteIdentical) {
  const std::string dir = fresh_dir("resume_twice");
  const auto& app = apps::application(apps::AppId::kIcoFoam);
  CampaignConfig config;
  config.process_counts = {2, 4};
  config.problem_sizes = {32, 64};
  config.threads = 1;
  config.checkpoint.directory = dir;
  const std::string reference = clean_csv(app, config);

  config.checkpoint.after_record = [](std::size_t records) {
    if (records >= 1) throw exareq::Error("first kill");
  };
  EXPECT_THROW(run_campaign(app, config), exareq::Error);

  config.checkpoint.resume = true;
  config.checkpoint.after_record = [](std::size_t records) {
    if (records >= 2) throw exareq::Error("second kill");
  };
  EXPECT_THROW(run_campaign(app, config), exareq::Error);

  config.checkpoint.after_record = nullptr;
  const std::string resumed = run_campaign(app, config).to_csv().to_string();
  EXPECT_EQ(resumed, reference);
}

TEST(ResumeTest, ResumeAfterTailCorruptionRemeasuresDamagedPoints) {
  const std::string dir = fresh_dir("tail_corruption");
  const auto& app = apps::application(apps::AppId::kRelearn);
  CampaignConfig config;
  config.process_counts = {2, 4};
  config.problem_sizes = {32, 64};
  config.threads = 1;
  config.checkpoint.directory = dir;
  const std::string full = run_campaign(app, config).to_csv().to_string();

  const std::string log_path = checkpoint_log_path(dir);
  std::string log = read_file(log_path);
  ASSERT_GT(log.size(), 10u);
  log[log.size() - 10] = static_cast<char>(log[log.size() - 10] ^ 0xFF);
  write_file(log_path, log);

  config.checkpoint.resume = true;
  const std::string resumed = run_campaign(app, config).to_csv().to_string();
  EXPECT_EQ(resumed, full);
  // The damaged tail was truncated and the re-measured record appended, so
  // a second resume sees a fully clean log again.
  const CheckpointLoadResult load = load_records(dir, 4);
  EXPECT_EQ(load.dropped_tail_bytes, 0u);
  EXPECT_EQ(load.slots.size(), 4u);
}

TEST(ResumeTest, ResumeRejectsMismatchedCampaign) {
  const std::string dir = fresh_dir("mismatch");
  const auto& app = apps::application(apps::AppId::kKripke);
  CampaignConfig config;
  config.process_counts = {2, 4};
  config.problem_sizes = {32, 64};
  config.threads = 1;
  config.checkpoint.directory = dir;
  run_campaign(app, config);

  config.checkpoint.resume = true;
  config.problem_sizes = {32, 64, 128};
  try {
    run_campaign(app, config);
    FAIL() << "mismatched resume must throw";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("problem-size"), std::string::npos)
        << e.what();
  }
}

TEST(ResumeTest, ThreadedCheckpointCampaignIsByteIdentical) {
  const std::string dir = fresh_dir("threaded");
  const auto& app = apps::application(apps::AppId::kMilc);
  CampaignConfig config;
  config.process_counts = {2, 4};
  config.problem_sizes = {32, 64};
  config.threads = 1;
  const std::string reference = clean_csv(app, config);

  config.threads = 4;
  config.checkpoint.directory = dir;
  const std::string threaded = run_campaign(app, config).to_csv().to_string();
  EXPECT_EQ(threaded, reference);

  config.checkpoint.resume = true;
  const std::string resumed = run_campaign(app, config).to_csv().to_string();
  EXPECT_EQ(resumed, reference);
}

TEST(ResumeTest, ThreadedKillAndResumeIsByteIdentical) {
  // Under threads the kill lands at a nondeterministic point in the grid;
  // whatever prefix survived, the resume must complete it byte-identically.
  const std::string dir = fresh_dir("threaded_kill");
  const auto& app = apps::application(apps::AppId::kLulesh);
  CampaignConfig config;
  config.process_counts = {2, 4};
  config.problem_sizes = {32, 64};
  config.threads = 1;
  const std::string reference = clean_csv(app, config);

  config.threads = 4;
  config.checkpoint.directory = dir;
  config.checkpoint.after_record = [](std::size_t records) {
    if (records >= 2) throw exareq::Error("threaded kill");
  };
  EXPECT_THROW(run_campaign(app, config), exareq::Error);

  config.checkpoint.after_record = nullptr;
  config.checkpoint.resume = true;
  const std::string resumed = run_campaign(app, config).to_csv().to_string();
  EXPECT_EQ(resumed, reference);
}

/// An application whose ranks fail at a chosen process count (0 disables).
class FaultyApp final : public apps::Application {
 public:
  explicit FaultyApp(int failing_p) : failing_p_(failing_p) {}
  std::string name() const override { return "Faulty"; }
  std::string description() const override { return "fails at one p"; }
  std::string problem_size_meaning() const override { return "units"; }

  void run_rank(simmpi::Communicator& comm,
                instr::ProcessInstrumentation& instr,
                std::int64_t n) const override {
    instr.count_flops(static_cast<std::uint64_t>(n));
    if (comm.size() == failing_p_ && comm.rank() == comm.size() - 1) {
      throw exareq::NumericError("injected failure");
    }
  }

  void trace_locality(std::int64_t, memtrace::TraceSink& sink) const override {
    const auto g = sink.register_group("g");
    for (int i = 0; i < 2000; ++i) sink.record(0x10 + (i % 4), g);
  }

 private:
  int failing_p_;
};

TEST(ResumeTest, FailingGridPointIsNamedAndCompletedPointsPersist) {
  // Regression for the partial-results gap: when one grid point throws, the
  // error must name the grid point, and every point that completed must
  // already be in the checkpoint — a resume with the failure fixed finishes
  // the campaign instead of starting over.
  const std::string dir = fresh_dir("faulty");
  CampaignConfig config;
  config.process_counts = {2, 4};
  config.problem_sizes = {32, 64};
  config.threads = 1;
  config.checkpoint.directory = dir;

  try {
    run_campaign(FaultyApp(4), config);
    FAIL() << "faulty campaign must throw";
  } catch (const exareq::NumericError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("measure p=4 n=32"), std::string::npos) << what;
    EXPECT_NE(what.find("injected failure"), std::string::npos) << what;
  }

  // The p=2 points (slots 0 and 2) completed and must be on disk.
  const CheckpointLoadResult load = load_records(dir, 4);
  EXPECT_EQ(load.slots.size(), 2u);
  EXPECT_TRUE(load.slots.count(0));
  EXPECT_TRUE(load.slots.count(2));

  // "Fix the app" and resume: only the failed points are re-measured and
  // the final CSV matches a clean run of the fixed app.
  config.checkpoint.resume = true;
  const FaultyApp fixed(0);
  const std::string resumed =
      run_campaign(fixed, config).to_csv().to_string();
  EXPECT_EQ(resumed, clean_csv(fixed, config));
}

}  // namespace
}  // namespace exareq::pipeline
