// Concurrency tests of the parallel measurement campaign. All suites are
// named Campaign* so the ThreadSanitizer CI job can select them with
// `ctest -R '^Campaign'` (alongside the Serve* suites).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "apps/application.hpp"
#include "memtrace/locality.hpp"
#include "pipeline/campaign.hpp"
#include "pipeline/measure.hpp"
#include "support/error.hpp"

namespace exareq::pipeline {
namespace {

CampaignConfig grid_with_threads(std::size_t threads) {
  CampaignConfig config;
  config.process_counts = {2, 4, 8};
  config.problem_sizes = {32, 64, 128};
  config.threads = threads;
  return config;
}

void expect_measurements_equal(const std::vector<AppMeasurement>& a,
                               const std::vector<AppMeasurement>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].processes, b[i].processes);
    EXPECT_EQ(a[i].problem_size, b[i].problem_size);
    EXPECT_EQ(a[i].bytes_used, b[i].bytes_used);
    EXPECT_EQ(a[i].flops, b[i].flops);
    EXPECT_EQ(a[i].loads_stores, b[i].loads_stores);
    EXPECT_EQ(a[i].bytes_sent_received, b[i].bytes_sent_received);
    EXPECT_EQ(a[i].stack_distance, b[i].stack_distance);
    ASSERT_EQ(a[i].channels.size(), b[i].channels.size());
    for (const auto& [name, channel] : a[i].channels) {
      const auto it = b[i].channels.find(name);
      ASSERT_NE(it, b[i].channels.end()) << name;
      EXPECT_EQ(channel.bytes, it->second.bytes);
    }
  }
}

TEST(CampaignParallelTest, CsvBytesIdenticalAcrossThreadCounts) {
  // The reproducibility contract: the persisted campaign is byte-identical
  // no matter how many threads measured it — including channel columns and
  // the stack-distance values replicated across process counts.
  const auto& app = apps::application(apps::AppId::kMilc);
  const std::string serial =
      run_campaign(app, grid_with_threads(1)).to_csv().to_string();
  const std::string threaded =
      run_campaign(app, grid_with_threads(8)).to_csv().to_string();
  EXPECT_EQ(serial, threaded);
}

TEST(CampaignParallelTest, MeasurementsMatchSerialReference) {
  const auto& app = apps::application(apps::AppId::kKripke);
  const CampaignData serial = run_campaign(app, grid_with_threads(1));
  const CampaignData threaded = run_campaign(app, grid_with_threads(8));
  EXPECT_EQ(serial.app_name, threaded.app_name);
  expect_measurements_equal(serial.measurements, threaded.measurements);
}

TEST(CampaignParallelTest, StackDistanceSharedPerProblemSize) {
  const auto& app = apps::application(apps::AppId::kLulesh);
  const CampaignData data = run_campaign(app, grid_with_threads(4));
  for (const AppMeasurement& m : data.measurements) {
    EXPECT_GT(m.stack_distance, 0.0);
    for (const AppMeasurement& other : data.measurements) {
      if (m.problem_size == other.problem_size) {
        EXPECT_EQ(m.stack_distance, other.stack_distance);
      }
    }
  }
}

// An application that fails on one specific process count but measures
// normally everywhere else.
class FlakyApp final : public apps::Application {
 public:
  explicit FlakyApp(int failing_p) : failing_p_(failing_p) {}

  std::string name() const override { return "Flaky"; }
  std::string description() const override { return "fails at one p"; }
  std::string problem_size_meaning() const override { return "elements"; }
  std::int64_t min_problem_size() const override { return 1; }

  void run_rank(simmpi::Communicator& comm,
                instr::ProcessInstrumentation& instr,
                std::int64_t n) const override {
    if (comm.size() == failing_p_) {
      throw exareq::NumericError("Flaky: refusing p = " +
                                 std::to_string(failing_p_));
    }
    instr.count_flops(static_cast<std::uint64_t>(n));
    ran_.fetch_add(1);
  }

  void trace_locality(std::int64_t,
                      memtrace::TraceSink& sink) const override {
    const auto g = sink.register_group("g");
    for (int i = 0; i < 2000; ++i) sink.record(0x10 + (i % 4), g);
  }

  int completed_ranks() const { return ran_.load(); }

 private:
  int failing_p_;
  mutable std::atomic<int> ran_{0};
};

TEST(CampaignParallelTest, FailurePropagatesAndSparesIndependentWork) {
  // A failing grid point aborts the campaign with the first (serial-order)
  // error; grid points that do not depend on it still ran to completion.
  FlakyApp app(4);
  const CampaignConfig config = grid_with_threads(8);
  EXPECT_THROW(run_campaign(app, config), exareq::Error);
  // p = 2 and p = 8 measure fine at every n: 3 sizes x (2 + 8) ranks.
  EXPECT_EQ(app.completed_ranks(), 30);
}

TEST(CampaignParallelTest, SerialFailureMatchesParallelFailure) {
  FlakyApp serial_app(4);
  FlakyApp parallel_app(4);
  std::string serial_error;
  std::string parallel_error;
  try {
    run_campaign(serial_app, grid_with_threads(1));
  } catch (const exareq::Error& e) {
    serial_error = e.what();
  }
  try {
    run_campaign(parallel_app, grid_with_threads(8));
  } catch (const exareq::Error& e) {
    parallel_error = e.what();
  }
  EXPECT_FALSE(serial_error.empty());
  EXPECT_EQ(serial_error, parallel_error);
}

TEST(CampaignStreamTest, StreamedLocalityEqualsMaterializedForEveryApp) {
  // The streaming TraceSink path and the materialized-trace path must agree
  // bit for bit on the locality report of every bundled application.
  const memtrace::LocalityConfig config = LocalityOptions{}.config;
  for (const apps::AppId id : apps::all_app_ids()) {
    const apps::Application& app = apps::application(id);
    constexpr std::int64_t n = 96;

    memtrace::LocalityAnalyzer streamed(config);
    app.trace_locality(n, streamed);
    const memtrace::LocalityReport from_stream =
        streamed.finish(static_cast<double>(streamed.recorded()));

    const memtrace::AccessTrace trace = app.locality_trace(n);
    const memtrace::LocalityReport from_trace = memtrace::analyze_locality(
        trace, config, static_cast<double>(trace.size()));

    EXPECT_EQ(from_stream.trace_length, from_trace.trace_length) << app.name();
    EXPECT_EQ(from_stream.total_sampled, from_trace.total_sampled);
    EXPECT_EQ(from_stream.weighted_median_stack_distance,
              from_trace.weighted_median_stack_distance)
        << app.name();
    ASSERT_EQ(from_stream.groups.size(), from_trace.groups.size());
    for (std::size_t g = 0; g < from_stream.groups.size(); ++g) {
      EXPECT_EQ(from_stream.groups[g].name, from_trace.groups[g].name);
      EXPECT_EQ(from_stream.groups[g].samples, from_trace.groups[g].samples);
      EXPECT_EQ(from_stream.groups[g].median_stack_distance,
                from_trace.groups[g].median_stack_distance);
      EXPECT_EQ(from_stream.groups[g].median_reuse_distance,
                from_trace.groups[g].median_reuse_distance);
      EXPECT_EQ(from_stream.groups[g].estimated_accesses,
                from_trace.groups[g].estimated_accesses);
      EXPECT_EQ(from_stream.groups[g].reliable, from_trace.groups[g].reliable);
    }
  }
}

TEST(CampaignStreamTest, DisabledLocalityLeavesStackDistanceZero) {
  const auto& app = apps::application(apps::AppId::kKripke);
  CampaignConfig config = grid_with_threads(4);
  config.locality.enabled = false;
  const CampaignData data = run_campaign(app, config);
  for (const AppMeasurement& m : data.measurements) {
    EXPECT_EQ(m.stack_distance, 0.0);
  }
}

}  // namespace
}  // namespace exareq::pipeline
