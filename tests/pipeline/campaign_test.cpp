#include "pipeline/campaign.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace exareq::pipeline {
namespace {

CampaignConfig small_grid() {
  CampaignConfig config;
  config.process_counts = {2, 4, 8};
  config.problem_sizes = {32, 64, 128};
  return config;
}

TEST(CampaignTest, RunsFullGrid) {
  const auto& app = apps::application(apps::AppId::kKripke);
  const CampaignData data = run_campaign(app, small_grid());
  EXPECT_EQ(data.app_name, "Kripke");
  EXPECT_EQ(data.measurements.size(), 9u);
}

TEST(CampaignTest, RejectsEmptyGrid) {
  const auto& app = apps::application(apps::AppId::kKripke);
  CampaignConfig config;
  config.process_counts = {};
  EXPECT_THROW(run_campaign(app, config), exareq::InvalidArgument);
}

TEST(CampaignTest, MetricDataHasPAndNParameters) {
  const auto& app = apps::application(apps::AppId::kKripke);
  const CampaignData data = run_campaign(app, small_grid());
  const auto flops = data.metric_data(Metric::kFlops);
  EXPECT_EQ(flops.parameter_names(), (std::vector<std::string>{"p", "n"}));
  EXPECT_EQ(flops.size(), 9u);
}

TEST(CampaignTest, StackDistanceDataDependsOnNOnly) {
  const auto& app = apps::application(apps::AppId::kKripke);
  const CampaignData data = run_campaign(app, small_grid());
  const auto sd = data.metric_data(Metric::kStackDistance);
  EXPECT_EQ(sd.parameter_names(), (std::vector<std::string>{"n"}));
  EXPECT_EQ(sd.size(), 3u);  // one point per problem size
}

TEST(CampaignTest, LocalityReusedAcrossProcessCounts) {
  // Stack distance is measured once per n and replicated; all p-values at
  // the same n must share it.
  const auto& app = apps::application(apps::AppId::kMilc);
  const CampaignData data = run_campaign(app, small_grid());
  for (const AppMeasurement& m : data.measurements) {
    for (const AppMeasurement& other : data.measurements) {
      if (m.problem_size == other.problem_size) {
        EXPECT_DOUBLE_EQ(m.stack_distance, other.stack_distance);
      }
    }
  }
}

TEST(CampaignTest, ChannelNamesSortedAndComplete) {
  const auto& app = apps::application(apps::AppId::kMilc);
  const CampaignData data = run_campaign(app, small_grid());
  const auto names = data.channel_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "cg_allreduce");
  EXPECT_EQ(names[1], "lattice_halo");
  EXPECT_EQ(names[2], "param_bcast");
}

TEST(CampaignTest, ChannelTraitsReflectCollectiveUse) {
  const auto& app = apps::application(apps::AppId::kMilc);
  const CampaignData data = run_campaign(app, small_grid());
  EXPECT_TRUE(data.channel_traits("cg_allreduce").uses_allreduce);
  EXPECT_FALSE(data.channel_traits("cg_allreduce").uses_bcast);
  EXPECT_TRUE(data.channel_traits("param_bcast").uses_bcast);
  EXPECT_FALSE(data.channel_traits("lattice_halo").uses_allreduce);
}

TEST(CampaignTest, CsvRoundTripPreservesEverything) {
  const auto& app = apps::application(apps::AppId::kMilc);
  const CampaignData data = run_campaign(app, small_grid());
  const CampaignData restored =
      CampaignData::from_csv(data.to_csv(), data.app_name);
  ASSERT_EQ(restored.measurements.size(), data.measurements.size());
  for (std::size_t i = 0; i < data.measurements.size(); ++i) {
    const AppMeasurement& a = data.measurements[i];
    const AppMeasurement& b = restored.measurements[i];
    EXPECT_EQ(a.processes, b.processes);
    EXPECT_EQ(a.problem_size, b.problem_size);
    EXPECT_DOUBLE_EQ(a.bytes_used, b.bytes_used);
    EXPECT_DOUBLE_EQ(a.flops, b.flops);
    EXPECT_DOUBLE_EQ(a.loads_stores, b.loads_stores);
    EXPECT_DOUBLE_EQ(a.bytes_sent_received, b.bytes_sent_received);
    EXPECT_DOUBLE_EQ(a.stack_distance, b.stack_distance);
    ASSERT_EQ(a.channels.size(), b.channels.size());
    for (const auto& [name, channel] : a.channels) {
      const auto& restored_channel = b.channels.at(name);
      EXPECT_DOUBLE_EQ(channel.bytes, restored_channel.bytes);
      EXPECT_EQ(channel.uses_allreduce, restored_channel.uses_allreduce);
      EXPECT_EQ(channel.uses_bcast, restored_channel.uses_bcast);
      EXPECT_EQ(channel.uses_alltoall, restored_channel.uses_alltoall);
    }
  }
}

TEST(CampaignTest, CsvRoundTripDoesNotMaterializePhantomChannels) {
  // A call path absent from one configuration is written as a 0-byte cell
  // by to_csv; from_csv must not materialize it as a channel entry, or
  // every round trip grows phantom channels on such configurations.
  CampaignData data;
  data.app_name = "Synthetic";
  AppMeasurement with_halo;
  with_halo.processes = 4;
  with_halo.problem_size = 64;
  with_halo.bytes_sent_received = 3e6;
  with_halo.channels["halo"] = ChannelMeasurement{3e6, false, false, false};
  AppMeasurement without_halo;  // p = 1: no halo traffic occurred
  without_halo.processes = 1;
  without_halo.problem_size = 64;
  data.measurements = {with_halo, without_halo};

  const CampaignData restored =
      CampaignData::from_csv(data.to_csv(), data.app_name);
  ASSERT_EQ(restored.measurements.size(), 2u);
  EXPECT_EQ(restored.measurements[0].channels.size(), 1u);
  EXPECT_TRUE(restored.measurements[1].channels.empty());
  // And again: the round trip must be a fixed point.
  const CampaignData twice =
      CampaignData::from_csv(restored.to_csv(), restored.app_name);
  EXPECT_TRUE(twice.measurements[1].channels.empty());
  EXPECT_DOUBLE_EQ(twice.measurements[0].channels.at("halo").bytes, 3e6);
}

TEST(CampaignTest, FromCsvParsesResumedThenAppendedFile) {
  // The checkpointed workflow leaves files that grow across restarts: a
  // partial campaign's CSV with the rows of the resumed remainder appended
  // under the same header. from_csv must parse the appended form exactly as
  // it parses a single-shot export.
  const auto& app = apps::application(apps::AppId::kMilc);
  const CampaignData full = run_campaign(app, small_grid());
  const std::string whole = full.to_csv().to_string();

  // Split the document at a row boundary: header + first rows, then the
  // "appended after resume" remainder.
  std::vector<std::string> lines;
  std::string line;
  for (char c : whole) {
    line += c;
    if (c == '\n') {
      lines.push_back(line);
      line.clear();
    }
  }
  if (!line.empty()) lines.push_back(line);
  ASSERT_GT(lines.size(), 4u);
  std::string appended;
  for (std::size_t i = 0; i < lines.size(); ++i) appended += lines[i];
  ASSERT_EQ(appended, whole);
  std::string partial = lines[0];
  for (std::size_t i = 1; i < lines.size() - 2; ++i) partial += lines[i];
  std::string resumed_file = partial;
  for (std::size_t i = lines.size() - 2; i < lines.size(); ++i) {
    resumed_file += lines[i];
  }

  const CampaignData restored = CampaignData::from_csv(
      exareq::CsvDocument::parse_string(resumed_file), full.app_name);
  ASSERT_EQ(restored.measurements.size(), full.measurements.size());
  EXPECT_EQ(restored.to_csv().to_string(), whole);
}

TEST(CampaignTest, ChannelDataBackfillsChannelAppearingPostResume) {
  // A call path that first shows up in a grid point measured after a resume
  // is absent from every earlier configuration; channel_data must cover the
  // full grid anyway, backfilling the earlier points with 0 bytes.
  CampaignData data;
  data.app_name = "Synthetic";
  for (int p : {2, 4}) {
    for (std::int64_t n : {32, 64}) {
      AppMeasurement m;
      m.processes = p;
      m.problem_size = n;
      m.bytes_sent_received = 1e6;
      m.channels["always"] = ChannelMeasurement{1e6, false, false, false};
      // "late" only exists in the final (post-resume) grid point.
      if (p == 4 && n == 64) {
        m.channels["late"] = ChannelMeasurement{5e5, true, false, false};
      }
      data.measurements.push_back(m);
    }
  }

  const auto names = data.channel_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "always");
  EXPECT_EQ(names[1], "late");

  const auto late = data.channel_data("late");
  ASSERT_EQ(late.size(), 4u);  // full grid, not just where it appeared
  double total = 0.0;
  for (std::size_t i = 0; i < late.size(); ++i) {
    const auto& coord = late.coordinate(i);
    const bool is_late_point = coord[0] == 4.0 && coord[1] == 64.0;
    EXPECT_EQ(late.value(i), is_late_point ? 5e5 : 0.0);
    total += late.value(i);
  }
  EXPECT_EQ(total, 5e5);
  EXPECT_TRUE(data.channel_traits("late").uses_allreduce);

  // And the round trip keeps the late channel anchored to its grid point.
  const CampaignData restored =
      CampaignData::from_csv(data.to_csv(), data.app_name);
  EXPECT_EQ(restored.to_csv().to_string(), data.to_csv().to_string());
  EXPECT_EQ(restored.measurements[3].channels.count("late"), 1u);
  EXPECT_TRUE(restored.measurements[0].channels.count("late") == 0);
}

TEST(CampaignTest, MetricLabelsMatchTableI) {
  EXPECT_EQ(metric_label(Metric::kBytesUsed), "#Bytes used");
  EXPECT_EQ(metric_label(Metric::kFlops), "#FLOP");
  EXPECT_EQ(metric_label(Metric::kBytesSentReceived),
            "#Bytes sent & received");
  EXPECT_EQ(metric_label(Metric::kLoadsStores), "#Loads & stores");
  EXPECT_EQ(metric_label(Metric::kStackDistance), "Stack distance");
  EXPECT_EQ(metric_label(Metric::kIoBytes), "#Bytes file I/O");
  EXPECT_EQ(metric_label(Metric::kEnergyProxy), "Energy proxy [J]");
  EXPECT_EQ(all_metrics().size(), 7u);
}

TEST(CampaignTest, ModelingRejectsTooSmallGrid) {
  const auto& app = apps::application(apps::AppId::kKripke);
  const CampaignData data = run_campaign(app, small_grid());
  // 3 values per parameter < paper's rule of 5.
  EXPECT_THROW(model_requirements(data), exareq::InvalidArgument);
}

}  // namespace
}  // namespace exareq::pipeline
