// End-to-end integration: full default campaigns for all five application
// proxies, model generation, and the paper's co-design conclusions. The
// campaigns are expensive (25 configurations x 5 apps), so they run once
// and are cached for all tests in this binary.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "codesign/strawman.hpp"
#include "codesign/upgrade.hpp"
#include "pipeline/campaign.hpp"
#include "pipeline/codesign_bridge.hpp"
#include "support/histogram.hpp"

namespace exareq::pipeline {
namespace {

struct AppArtifacts {
  CampaignData data{"", {}};
  RequirementModels models;
  codesign::AppRequirements requirements;
};

const AppArtifacts& artifacts(apps::AppId id) {
  static std::map<apps::AppId, AppArtifacts> cache;
  auto it = cache.find(id);
  if (it == cache.end()) {
    AppArtifacts entry;
    entry.data = run_campaign(apps::application(id));
    entry.models = model_requirements(entry.data);
    entry.requirements = to_requirements(entry.models);
    it = cache.emplace(id, std::move(entry)).first;
  }
  return it->second;
}

double p_ratio(const model::Model& m, double p, double n) {
  return m.evaluate2(2.0 * p, n) / m.evaluate2(p, n);
}

double n_ratio(const model::Model& m, double p, double n) {
  return m.evaluate2(p, 2.0 * n) / m.evaluate2(p, n);
}

constexpr double kBigP = 1048576.0;  // 2^20
constexpr double kBigN = 1048576.0;

// --- engine observability ----------------------------------------------------

TEST(IntegrationTest, EngineStatsAccumulateAcrossAllFits) {
  const model::EngineStats stats = artifacts(apps::AppId::kMilc).models.engine_stats();
  EXPECT_GT(stats.hypotheses_scored, 0u);
  EXPECT_GT(stats.cv_solves, 0u);
  EXPECT_GT(stats.score_cache_hits + stats.basis_column_hits, 0u);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GE(stats.threads, 1u);
  EXPECT_GE(stats.cache_hit_rate(), 0.0);
  EXPECT_LE(stats.cache_hit_rate(), 1.0);
}

// --- model quality (paper Fig. 3) -------------------------------------------

TEST(IntegrationTest, ModelErrorsMatchFigureThree) {
  std::vector<double> errors;
  for (apps::AppId id : apps::all_app_ids()) {
    const auto app_errors = all_relative_errors(artifacts(id).models);
    errors.insert(errors.end(), app_errors.begin(), app_errors.end());
  }
  ASSERT_GT(errors.size(), 100u);
  std::size_t below_5_percent = 0;
  std::size_t below_20_percent = 0;
  for (double e : errors) {
    if (e < 0.05) ++below_5_percent;
    if (e < 0.20) ++below_20_percent;
  }
  // Paper: 88% of measurements below 5% relative error, 96% below 20%.
  EXPECT_GE(static_cast<double>(below_5_percent) /
                static_cast<double>(errors.size()),
            0.85);
  EXPECT_GE(static_cast<double>(below_20_percent) /
                static_cast<double>(errors.size()),
            0.95);
}

// --- Kripke (paper Table II row block) ---------------------------------------

TEST(IntegrationTest, KripkeModelsMatchTableII) {
  const auto& a = artifacts(apps::AppId::kKripke);
  // FLOP, comm and footprint linear in n, independent of p.
  EXPECT_NEAR(n_ratio(a.models.flops.model, kBigP, kBigN), 2.0, 0.05);
  EXPECT_NEAR(p_ratio(a.models.flops.model, kBigP, kBigN), 1.0, 0.02);
  EXPECT_NEAR(p_ratio(a.requirements.comm_bytes, kBigP, kBigN), 1.0, 0.02);
  EXPECT_NEAR(n_ratio(a.models.bytes_used.model, kBigP, kBigN), 2.0, 0.05);
  // Loads/stores has the flagged n*p coupling: at scale the ratio under
  // p-doubling approaches 2.
  EXPECT_GT(p_ratio(a.models.loads_stores.model, kBigP, kBigN), 1.8);
  // Constant stack distance.
  EXPECT_TRUE(a.models.stack_distance.model.is_constant());
}

// --- LULESH ------------------------------------------------------------------

TEST(IntegrationTest, LuleshModelsMatchTableII) {
  const auto& a = artifacts(apps::AppId::kLulesh);
  // Footprint n log n: doubling n scales by 2 * (log 2n / log n) ~ 2.1.
  EXPECT_NEAR(n_ratio(a.models.bytes_used.model, kBigP, kBigN), 2.1, 0.05);
  // Communication: p-doubling ratio ~ 2^0.25 * 21/20 = 1.25 at p = 2^20.
  EXPECT_NEAR(p_ratio(a.requirements.comm_bytes, kBigP, kBigN), 1.25, 0.08);
  // Computation carries the same flagged multiplicative p-dependence.
  EXPECT_NEAR(p_ratio(a.models.flops.model, kBigP, kBigN), 1.25, 0.08);
  EXPECT_TRUE(a.models.stack_distance.model.is_constant());
}

// --- MILC --------------------------------------------------------------------

TEST(IntegrationTest, MilcModelsMatchTableII) {
  const auto& a = artifacts(apps::AppId::kMilc);
  // Communication channels: Allreduce + Bcast + linear halo.
  ASSERT_EQ(a.models.comm_channels.size(), 3u);
  bool has_allreduce = false;
  bool has_bcast = false;
  bool has_linear_halo = false;
  for (const ChannelModel& channel : a.models.comm_channels) {
    const std::string text = channel.fit.model.to_string();
    if (text.find("Allreduce(p)") != std::string::npos) has_allreduce = true;
    if (text.find("Bcast(p)") != std::string::npos) has_bcast = true;
    if (channel.name == "lattice_halo") {
      has_linear_halo =
          std::fabs(n_ratio(channel.fit.model, kBigP, kBigN) - 2.0) < 0.02;
    }
  }
  EXPECT_TRUE(has_allreduce);
  EXPECT_TRUE(has_bcast);
  EXPECT_TRUE(has_linear_halo);
  // Stack distance grows linearly with n — the paper's flagged MILC issue.
  EXPECT_NEAR(a.models.stack_distance.model.evaluate1(2.0 * kBigN) /
                  a.models.stack_distance.model.evaluate1(kBigN),
              2.0, 0.05);
  // FLOP: n plus n log p — p-doubling adds one more log level.
  const double flop_p_ratio = p_ratio(a.models.flops.model, kBigP, kBigN);
  EXPECT_GT(flop_p_ratio, 1.01);
  EXPECT_LT(flop_p_ratio, 1.2);
}

// --- Relearn -----------------------------------------------------------------

TEST(IntegrationTest, RelearnModelsMatchTableII) {
  const auto& a = artifacts(apps::AppId::kRelearn);
  // Footprint sqrt(n): doubling n scales bytes by sqrt(2).
  EXPECT_NEAR(n_ratio(a.models.bytes_used.model, kBigP, kBigN), std::sqrt(2.0),
              0.05);
  ASSERT_EQ(a.models.comm_channels.size(), 3u);
  bool has_alltoall = false;
  for (const ChannelModel& channel : a.models.comm_channels) {
    if (channel.fit.model.to_string().find("Alltoall(p)") != std::string::npos) {
      has_alltoall = true;
    }
  }
  EXPECT_TRUE(has_alltoall);
  EXPECT_TRUE(a.models.stack_distance.model.is_constant());
}

// --- icoFoam -----------------------------------------------------------------

TEST(IntegrationTest, IcoFoamModelsMatchTableII) {
  const auto& a = artifacts(apps::AppId::kIcoFoam);
  // The pathological footprint term: bytes grow with p at fixed n.
  EXPECT_GT(p_ratio(a.models.bytes_used.model, kBigP, kBigN), 1.5);
  // FLOP ~ n^1.5 * p^0.5.
  EXPECT_NEAR(p_ratio(a.models.flops.model, kBigP, kBigN), std::sqrt(2.0), 0.1);
  EXPECT_NEAR(n_ratio(a.models.flops.model, kBigP, kBigN), std::pow(2.0, 1.5),
              0.3);
  EXPECT_TRUE(a.models.stack_distance.model.is_constant());
}

// --- co-design: system upgrades (paper Table V) ------------------------------

TEST(IntegrationTest, UpgradeStudyReproducesTableVConclusions) {
  // 2^16 sockets so that icoFoam's p log p footprint also fits the base.
  const codesign::SystemSkeleton base{65536.0, 1u << 30};
  const auto upgrades = codesign::paper_upgrades();

  // "MILC and Relearn profit most from doubling the memory": their overall
  // problem ratio under C is at least as large as under A and B.
  for (apps::AppId id : {apps::AppId::kMilc, apps::AppId::kRelearn}) {
    const auto& req = artifacts(id).requirements;
    const double a =
        codesign::evaluate_upgrade(req, base, upgrades[0]).outcome.overall_problem_ratio;
    const double b =
        codesign::evaluate_upgrade(req, base, upgrades[1]).outcome.overall_problem_ratio;
    const double c =
        codesign::evaluate_upgrade(req, base, upgrades[2]).outcome.overall_problem_ratio;
    EXPECT_GE(c + 1e-9, a) << req.name;
    EXPECT_GE(c + 1e-9, b) << req.name;
  }

  // Relearn's sqrt footprint: memory doubling quadruples the problem size.
  {
    const auto& req = artifacts(apps::AppId::kRelearn).requirements;
    const auto outcome =
        codesign::evaluate_upgrade(req, base, upgrades[2]).outcome;
    EXPECT_NEAR(outcome.problem_size_ratio, 4.0, 0.4);
  }

  // Kripke under A: problem per process constant, overall doubles,
  // computation and communication stay flat (paper Table V column 1).
  {
    const auto& req = artifacts(apps::AppId::kKripke).requirements;
    const auto outcome =
        codesign::evaluate_upgrade(req, base, upgrades[0]).outcome;
    EXPECT_NEAR(outcome.problem_size_ratio, 1.0, 0.02);
    EXPECT_NEAR(outcome.overall_problem_ratio, 2.0, 0.05);
    EXPECT_NEAR(outcome.computation_ratio, 1.0, 0.02);
    EXPECT_NEAR(outcome.communication_ratio, 1.0, 0.02);
    EXPECT_GT(outcome.memory_access_ratio, 1.7);  // the flagged n*p term
  }

  // LULESH under A: ~1.2x computation and communication (paper Table IV).
  {
    const auto& req = artifacts(apps::AppId::kLulesh).requirements;
    const auto outcome =
        codesign::evaluate_upgrade(req, base, upgrades[0]).outcome;
    EXPECT_NEAR(outcome.problem_size_ratio, 1.0, 0.05);
    EXPECT_NEAR(outcome.computation_ratio, 1.25, 0.1);
    EXPECT_NEAR(outcome.communication_ratio, 1.25, 0.1);
  }
}

// --- co-design: exascale straw-men (paper Table VII) --------------------------

TEST(IntegrationTest, StrawmanStudyReproducesTableVIIConclusions) {
  const auto systems = codesign::paper_strawmen();

  // icoFoam "cannot fully utilize any of the three systems".
  {
    const auto& req = artifacts(apps::AppId::kIcoFoam).requirements;
    for (const auto& system : systems) {
      EXPECT_FALSE(codesign::evaluate_strawman(req, system).feasible)
          << system.name;
    }
  }

  // The other four applications can use all three systems.
  for (apps::AppId id : {apps::AppId::kKripke, apps::AppId::kLulesh,
                         apps::AppId::kMilc, apps::AppId::kRelearn}) {
    const auto& req = artifacts(id).requirements;
    for (const auto& system : systems) {
      EXPECT_TRUE(codesign::evaluate_strawman(req, system).feasible)
          << req.name << " on " << system.name;
    }
  }

  // Relearn solves the largest overall problem on the vector system
  // (fewer, fatter processors + sqrt footprint).
  {
    const auto& req = artifacts(apps::AppId::kRelearn).requirements;
    const double massive =
        codesign::evaluate_strawman(req, systems[0]).max_overall_problem;
    const double vector =
        codesign::evaluate_strawman(req, systems[1]).max_overall_problem;
    EXPECT_GT(vector, massive);
  }

  // LULESH prefers the massively parallel system for problem size.
  {
    const auto& req = artifacts(apps::AppId::kLulesh).requirements;
    const double massive =
        codesign::evaluate_strawman(req, systems[0]).max_overall_problem;
    const double vector =
        codesign::evaluate_strawman(req, systems[1]).max_overall_problem;
    EXPECT_GT(massive, vector);
  }

  // Wall time: LULESH and Relearn solve the common benchmark faster on the
  // vector system than on the massively parallel one.
  for (apps::AppId id : {apps::AppId::kLulesh, apps::AppId::kRelearn}) {
    const auto& req = artifacts(id).requirements;
    const double benchmark = codesign::common_benchmark_problem(req, systems);
    const auto massive = codesign::wall_time_lower_bound(req, systems[0], benchmark);
    const auto vector = codesign::wall_time_lower_bound(req, systems[1], benchmark);
    ASSERT_TRUE(massive.has_value()) << req.name;
    ASSERT_TRUE(vector.has_value()) << req.name;
    EXPECT_LT(*vector, *massive) << req.name;
  }

  // Kripke: linear in n and p-independent — identical wall time everywhere.
  {
    const auto& req = artifacts(apps::AppId::kKripke).requirements;
    const double benchmark = codesign::common_benchmark_problem(req, systems);
    const auto massive = codesign::wall_time_lower_bound(req, systems[0], benchmark);
    const auto vector = codesign::wall_time_lower_bound(req, systems[1], benchmark);
    ASSERT_TRUE(massive.has_value());
    ASSERT_TRUE(vector.has_value());
    EXPECT_NEAR(*massive / *vector, 1.0, 0.1);
  }
}

// --- LULESH additive-model optimization (paper Sec. III-B) --------------------

TEST(IntegrationTest, AdditiveLuleshVariantImprovesWallTime) {
  const auto systems = codesign::paper_strawmen();
  codesign::AppRequirements req = artifacts(apps::AppId::kLulesh).requirements;
  const double benchmark = codesign::common_benchmark_problem(req, systems);
  const auto original = codesign::wall_time_lower_bound(req, systems[1], benchmark);
  req.flops = codesign::make_additive(req.flops);
  const auto optimized = codesign::wall_time_lower_bound(req, systems[1], benchmark);
  ASSERT_TRUE(original.has_value());
  ASSERT_TRUE(optimized.has_value());
  // The paper reports roughly three orders of magnitude; require at least one.
  EXPECT_LT(*optimized, *original / 10.0);
}

// --- bridge ------------------------------------------------------------------

TEST(IntegrationTest, BridgeSumsChannelModels) {
  const auto& a = artifacts(apps::AppId::kMilc);
  // The summed comm model must agree with the per-channel sum at a grid
  // point.
  const double p = 16.0;
  const double n = 256.0;
  double expected = 0.0;
  for (const ChannelModel& channel : a.models.comm_channels) {
    expected += channel.fit.model.evaluate2(p, n);
  }
  EXPECT_NEAR(a.requirements.comm_bytes.evaluate2(p, n), expected,
              1e-9 * expected);
}

}  // namespace
}  // namespace exareq::pipeline
