// Human-readable reporting of fitted requirement models — the Table-II
// presentation layer shared by the CLI driver and the bench harnesses.
#pragma once

#include <string>

#include "pipeline/campaign.hpp"

namespace exareq::pipeline {

/// Rendering options.
struct ReportOptions {
  /// Round coefficients to powers of ten (the paper's Table II style);
  /// false prints full precision.
  bool rounded = true;
  /// Include the leave-one-out cross-validation error column.
  bool show_cv = true;
  /// Report communication per call path (when channels were measured)
  /// instead of the whole-program total.
  bool per_channel_communication = true;
};

/// One application's models as a text table (Table II row block).
std::string render_models(const RequirementModels& models,
                          const ReportOptions& options = {});

/// One-paragraph textual assessment of an application's scalability: which
/// requirements carry multiplicative p-n coupling (the paper's warning
/// signs) and which parameter dominates each metric at scale.
std::string render_assessment(const RequirementModels& models);

/// Engine observability table: hypotheses scored, least-squares solves,
/// cache hit rate, and wall time per metric and call-path fit, plus a
/// totals row.
std::string render_engine_stats(const RequirementModels& models);

}  // namespace exareq::pipeline
