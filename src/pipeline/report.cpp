#include "pipeline/report.hpp"

#include <sstream>

#include "support/format.hpp"
#include "support/table.hpp"

namespace exareq::pipeline {
namespace {

std::string model_text(const model::FitResult& fit, const ReportOptions& options) {
  return options.rounded ? fit.model.to_string_rounded() : fit.model.to_string();
}

/// True when any term couples both parameters multiplicatively — the
/// pattern the paper marks with warning signs in Table II.
bool has_pn_coupling(const model::Model& m) {
  if (m.parameter_names().size() < 2) return false;
  for (const model::Term& term : m.terms()) {
    if (term.depends_on(0) && term.depends_on(1)) return true;
  }
  return false;
}

}  // namespace

std::string render_models(const RequirementModels& models,
                          const ReportOptions& options) {
  std::vector<std::string> header{"Metric", "Model"};
  if (options.show_cv) header.push_back("CV error");
  TextTable table(header);
  std::vector<Align> alignment{Align::kLeft, Align::kLeft};
  if (options.show_cv) alignment.push_back(Align::kRight);
  table.set_alignment(alignment);

  const auto add = [&](const std::string& label, const model::FitResult& fit,
                       bool coupled) {
    std::vector<std::string> row{label + (coupled ? " (!)" : ""),
                                 model_text(fit, options)};
    if (options.show_cv) row.push_back(format_sci(fit.quality.cv_score, 1));
    table.add_row(std::move(row));
  };

  for (Metric metric : all_metrics()) {
    if (metric == Metric::kBytesSentReceived &&
        options.per_channel_communication && !models.comm_channels.empty()) {
      for (const ChannelModel& channel : models.comm_channels) {
        add("#Bytes sent & recv [" + channel.name + "]", channel.fit,
            has_pn_coupling(channel.fit.model));
      }
      continue;
    }
    const model::FitResult& fit = models.result(metric);
    const bool coupled =
        metric != Metric::kStackDistance && has_pn_coupling(fit.model);
    add(metric_label(metric), fit, coupled);
  }
  return table.render();
}

std::string render_assessment(const RequirementModels& models) {
  std::ostringstream os;
  std::vector<std::string> coupled;
  for (Metric metric : all_metrics()) {
    if (metric == Metric::kStackDistance) continue;
    if (has_pn_coupling(models.result(metric).model)) {
      coupled.push_back(metric_label(metric));
    }
  }
  if (coupled.empty()) {
    os << models.app_name
       << ": no requirement couples the process count and the problem size "
          "multiplicatively; the code can be retargeted across system "
          "shapes by adjusting the problem size per process.";
  } else {
    os << models.app_name << ": ";
    for (std::size_t i = 0; i < coupled.size(); ++i) {
      if (i != 0) os << (i + 1 == coupled.size() ? " and " : ", ");
      os << coupled[i];
    }
    os << (coupled.size() == 1 ? " couples" : " couple")
       << " the process count and the problem size per process "
          "multiplicatively — scaling the machine raises the per-process "
          "cost even at constant n (the paper's warning-sign pattern).";
  }
  if (!models.stack_distance.model.is_constant()) {
    os << " The stack distance grows with the problem size: memory "
          "pressure will increase as the problem is scaled up unless the "
          "algorithm's locality is improved.";
  }
  return os.str();
}

std::string render_engine_stats(const RequirementModels& models) {
  TextTable table({"Fit", "Hypotheses", "CV solves", "Extensions", "Downdates",
                   "Cache hit %", "Wall [ms]"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight});
  const auto add = [&](const std::string& label, const model::EngineStats& s) {
    table.add_row({label, format_count(s.hypotheses_scored),
                   format_count(s.cv_solves), format_count(s.qr_extensions),
                   format_count(s.downdates),
                   format_fixed(100.0 * s.cache_hit_rate(), 1),
                   format_fixed(1e3 * s.wall_seconds, 1)});
  };
  for (Metric metric : all_metrics()) {
    add(metric_label(metric), models.result(metric).stats);
  }
  for (const ChannelModel& channel : models.comm_channels) {
    add("#Bytes sent & recv [" + channel.name + "]", channel.fit.stats);
  }
  const model::EngineStats total = models.engine_stats();
  add("Total (threads=" + std::to_string(total.threads) + ")", total);
  return table.render();
}

}  // namespace exareq::pipeline
