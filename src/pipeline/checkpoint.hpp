// Crash-safe persistence of measurement campaigns.
//
// A production sweep is thousands of grid points across restarts; a crash
// at point 900/1000 must not lose the first 899. The checkpoint layout is
// one directory holding two files:
//
//   manifest     — versioned, self-checksummed text file describing the
//                  campaign (app, grid axes, locality configuration). It is
//                  written via temp-file + fsync + atomic rename, so readers
//                  only ever observe a complete manifest.
//   records.log  — append-only binary log; one record per completed grid
//                  point, each carrying its own FNV-1a-64 checksum. Records
//                  are appended (and optionally fsync'd) as points finish,
//                  in completion order — the slot index inside the record,
//                  not the log position, identifies the grid point.
//
// Recovery semantics: the loader validates records front to back and stops
// at the first damaged one (bad magic, short header, truncated payload,
// checksum mismatch, out-of-range slot). Everything before the damage loads;
// the damaged tail is dropped and those points are simply re-measured — a
// grid point is never treated as completed unless its record checksums
// clean, so corruption can cost work but never correctness. A resumed
// campaign truncates the log back to the valid prefix before appending.
//
// Doubles ride in the records as IEEE-754 bit patterns, so a resumed
// campaign's CSV is byte-identical to an uninterrupted run regardless of
// where or how often the campaign was killed (see
// tests/property/resume_oracle_test.cpp for the differential oracle).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "memtrace/sampling.hpp"
#include "pipeline/measure.hpp"
#include "support/error.hpp"

namespace exareq::pipeline {

/// Thrown on checkpoint-format violations (corrupt manifest, campaign
/// mismatch on resume) and on checkpoint I/O failures.
class CheckpointError : public exareq::Error {
 public:
  explicit CheckpointError(const std::string& what) : Error(what) {}
};

/// Campaign checkpointing knobs (CampaignConfig::checkpoint).
struct CheckpointOptions {
  /// Checkpoint directory; empty disables checkpointing entirely.
  std::string directory;
  /// Load an existing checkpoint and measure only the missing grid points.
  /// Without `resume`, an existing log is truncated and the campaign starts
  /// over. Resuming an empty or absent directory is a fresh start.
  bool resume = false;
  /// fsync the log after every appended record (and the manifest on every
  /// write). Off trades durability of the last few points for speed.
  bool fsync = true;
  /// Failure-injection hook for tests: called after each record append with
  /// the number of records this run has written. A throwing hook aborts the
  /// campaign mid-flight exactly like a crash between two appends.
  std::function<void(std::size_t)> after_record;

  bool enabled() const { return !directory.empty(); }
};

/// The campaign identity a checkpoint belongs to. Every field influences
/// measurement results, so a resume with any mismatch is rejected instead of
/// silently mixing incompatible measurements.
struct CheckpointManifest {
  // v2: record payloads gained the io_bytes and energy_proxy fields. The
  // version lives in the manifest, so a v1 checkpoint directory is rejected
  // as a whole on resume instead of tripping over reshaped records.
  static constexpr int kVersion = 2;

  int version = kVersion;
  std::string app_name;
  std::vector<int> process_counts;
  std::vector<std::int64_t> problem_sizes;
  bool locality_enabled = true;
  memtrace::SamplerConfig sampler{};
  std::size_t min_samples = 100;

  std::size_t slot_count() const {
    return process_counts.size() * problem_sizes.size();
  }

  /// Text serialization, ending in a checksum line over everything above it.
  std::string serialize() const;

  /// Parses and verifies a serialized manifest; throws CheckpointError on
  /// any structural or checksum problem (never crashes on arbitrary bytes).
  static CheckpointManifest parse(const std::string& text);

  /// True when `other` describes the same campaign. On mismatch, `why`
  /// (if non-null) receives the first differing field.
  bool compatible_with(const CheckpointManifest& other,
                       std::string* why = nullptr) const;
};

std::string checkpoint_manifest_path(const std::string& directory);
std::string checkpoint_log_path(const std::string& directory);

/// Writes the manifest durably: temp file, fsync, rename, directory fsync.
/// Creates the directory first if needed. Throws CheckpointError on I/O
/// failure.
void write_manifest_atomic(const std::string& directory,
                           const CheckpointManifest& manifest,
                           bool fsync = true);

/// Reads and verifies the manifest; nullopt when the directory or file does
/// not exist, CheckpointError when the file exists but is damaged.
std::optional<CheckpointManifest> read_manifest(const std::string& directory);

/// One grid point's record as appended to the log (header + checksummed
/// payload). Exposed for tests and the fuzz driver.
std::string encode_record(std::uint32_t slot, const AppMeasurement& m);

/// Result of scanning a record log.
struct CheckpointLoadResult {
  /// Validated measurements by slot index (duplicates: the last one wins;
  /// records are deterministic, so duplicates carry identical payloads).
  std::map<std::uint32_t, AppMeasurement> slots;
  std::size_t valid_records = 0;
  std::size_t duplicate_records = 0;
  /// Bytes of the validated prefix; a resumed writer truncates to this.
  std::uint64_t valid_bytes = 0;
  /// Bytes dropped behind the first damaged record (0 for a clean log).
  std::uint64_t dropped_tail_bytes = 0;
};

/// Validates `bytes` front to back, stopping at the first damaged record.
/// Never throws on arbitrary input — damage only shortens the result.
CheckpointLoadResult scan_records(std::string_view bytes,
                                  std::size_t slot_count);

/// Loads and scans the record log; a missing log is an empty result.
CheckpointLoadResult load_records(const std::string& directory,
                                  std::size_t slot_count);

/// Thread-safe append-only writer over the record log. Opens (creating if
/// necessary) the log and truncates it to `keep_bytes` — the validated
/// prefix of a resumed run, or 0 for a fresh campaign.
class CheckpointWriter {
 public:
  CheckpointWriter(const CheckpointOptions& options, std::uint64_t keep_bytes);
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Appends one record (serialize, write, optionally fsync) under the
  /// writer lock, then invokes the after_record hook, whose exceptions
  /// propagate (the record itself is already durable). Once a hook has
  /// thrown the writer is dead: every later append throws without writing,
  /// so a simulated crash truncates the log exactly at the kill point.
  void append(std::uint32_t slot, const AppMeasurement& m);

  std::size_t records_written() const;
  std::uint64_t bytes_written() const;

 private:
  mutable std::mutex mutex_;
  CheckpointOptions options_;
  int fd_ = -1;
  bool dead_ = false;
  std::size_t records_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace exareq::pipeline
