// Campaign → registry bridge: packages the measurement/fit pipeline as the
// serving registry's fit-on-demand callback, and fitted models as the
// serialized bundles the registry loads from disk.
#pragma once

#include <functional>

#include "codesign/requirements.hpp"
#include "model/serialize.hpp"
#include "pipeline/campaign.hpp"

namespace exareq::pipeline {

/// Returns a fit-on-demand callback for serve::ModelRegistry: resolves the
/// application by name, measures it over `config`'s grid, fits all metrics
/// with `options`, and converts to the co-design bundle. The fit engine is
/// forced serial (threads = 1): registry fits for distinct apps may run
/// concurrently on server workers, and the engine's process-wide shared
/// pool must not be resized from concurrent fits — model selection is
/// bit-identical at any thread count, so only latency is traded.
std::function<codesign::AppRequirements(const std::string&)>
make_registry_fitter(CampaignConfig config = {},
                     model::GeneratorOptions options = {});

/// A fitted co-design bundle plus the fit's own quality number — what the
/// online refit loop publishes into a registry slot and what its quality
/// regression guard compares across versions.
struct FittedBundle {
  codesign::AppRequirements requirements;
  /// Mean absolute relative error of every measurement under its fitted
  /// model, across all five metrics.
  double mean_abs_relative_error = 0.0;
};

/// Fits all requirement models over an in-memory campaign (the online
/// ingest path, where rows arrive over the wire instead of from
/// run_campaign). Serial like make_registry_fitter, and for the same
/// reason: callers may fit concurrently with server-worker fits, and the
/// process-wide shared pool admits one top-level client.
FittedBundle fit_requirement_bundle(const CampaignData& data,
                                    model::GeneratorOptions options = {});

/// The fitted models as a serializable bundle (labels footprint, flops,
/// comm_bytes, loads_stores, stack_distance — what ModelRegistry::load_file
/// expects, and what `exareq model --models-out` writes).
model::ModelBundle to_model_bundle(const RequirementModels& models);

}  // namespace exareq::pipeline
