// Campaign → registry bridge: packages the measurement/fit pipeline as the
// serving registry's fit-on-demand callback, and fitted models as the
// serialized bundles the registry loads from disk.
#pragma once

#include <functional>

#include "codesign/requirements.hpp"
#include "model/serialize.hpp"
#include "pipeline/campaign.hpp"

namespace exareq::pipeline {

/// Returns a fit-on-demand callback for serve::ModelRegistry: resolves the
/// application by name, measures it over `config`'s grid, fits all metrics
/// with `options`, and converts to the co-design bundle. The fit engine is
/// forced serial (threads = 1): registry fits for distinct apps may run
/// concurrently on server workers, and the engine's process-wide shared
/// pool must not be resized from concurrent fits — model selection is
/// bit-identical at any thread count, so only latency is traded.
std::function<codesign::AppRequirements(const std::string&)>
make_registry_fitter(CampaignConfig config = {},
                     model::GeneratorOptions options = {});

/// The fitted models as a serializable bundle (labels footprint, flops,
/// comm_bytes, loads_stores, stack_distance — what ModelRegistry::load_file
/// expects, and what `exareq model --models-out` writes).
model::ModelBundle to_model_bundle(const RequirementModels& models);

}  // namespace exareq::pipeline
