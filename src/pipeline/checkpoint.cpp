#include "pipeline/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"

namespace exareq::pipeline {
namespace {

constexpr std::uint32_t kRecordMagic = 0x43525845;  // "EXRC" little-endian
constexpr std::size_t kHeaderBytes = 20;            // magic, slot, len, checksum
// A record payload is a handful of doubles plus channel names; anything
// beyond this is damage, not data (and must not drive a huge allocation).
constexpr std::uint32_t kMaxPayloadBytes = 1u << 26;

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

void put_u32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void put_f64(std::string& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

/// Bounds-checked little-endian reader over a payload; overruns throw
/// CheckpointError, which the scanner converts into a dropped tail.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::uint32_t u32() { return static_cast<std::uint32_t>(raw(4)); }
  std::uint64_t u64() { return raw(8); }
  double f64() { return std::bit_cast<double>(raw(8)); }

  std::string str(std::size_t length) {
    require_remaining(length);
    std::string value(bytes_.substr(pos_, length));
    pos_ += length;
    return value;
  }

  bool done() const { return pos_ == bytes_.size(); }

 private:
  std::uint64_t raw(std::size_t width) {
    require_remaining(width);
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < width; ++i) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(bytes_[pos_ + i]))
               << (8 * i);
    }
    pos_ += width;
    return value;
  }

  void require_remaining(std::size_t count) {
    if (bytes_.size() - pos_ < count) {
      throw CheckpointError("checkpoint record payload truncated");
    }
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

std::string encode_payload(const AppMeasurement& m) {
  std::string payload;
  put_u32(payload, static_cast<std::uint32_t>(m.processes));
  put_u64(payload, static_cast<std::uint64_t>(m.problem_size));
  put_f64(payload, m.bytes_used);
  put_f64(payload, m.flops);
  put_f64(payload, m.loads_stores);
  put_f64(payload, m.bytes_sent_received);
  put_f64(payload, m.stack_distance);
  put_f64(payload, m.io_bytes);
  put_f64(payload, m.energy_proxy);
  put_u32(payload, static_cast<std::uint32_t>(m.channels.size()));
  for (const auto& [name, channel] : m.channels) {
    put_u32(payload, static_cast<std::uint32_t>(name.size()));
    payload += name;
    put_f64(payload, channel.bytes);
    const unsigned flags = (channel.uses_allreduce ? 1u : 0u) |
                           (channel.uses_bcast ? 2u : 0u) |
                           (channel.uses_alltoall ? 4u : 0u);
    payload.push_back(static_cast<char>(flags));
  }
  return payload;
}

AppMeasurement decode_payload(std::string_view payload) {
  Reader reader(payload);
  AppMeasurement m;
  m.processes = static_cast<int>(reader.u32());
  m.problem_size = static_cast<std::int64_t>(reader.u64());
  m.bytes_used = reader.f64();
  m.flops = reader.f64();
  m.loads_stores = reader.f64();
  m.bytes_sent_received = reader.f64();
  m.stack_distance = reader.f64();
  m.io_bytes = reader.f64();
  m.energy_proxy = reader.f64();
  const std::uint32_t channels = reader.u32();
  for (std::uint32_t i = 0; i < channels; ++i) {
    const std::uint32_t name_length = reader.u32();
    if (name_length > payload.size()) {
      throw CheckpointError("checkpoint record channel name overruns payload");
    }
    std::string name = reader.str(name_length);
    ChannelMeasurement channel;
    channel.bytes = reader.f64();
    const auto flags = static_cast<unsigned char>(reader.str(1)[0]);
    if (flags > 7) {
      throw CheckpointError("checkpoint record has unknown channel flags");
    }
    channel.uses_allreduce = (flags & 1u) != 0;
    channel.uses_bcast = (flags & 2u) != 0;
    channel.uses_alltoall = (flags & 4u) != 0;
    m.channels.insert_or_assign(std::move(name), channel);
  }
  if (!reader.done()) {
    throw CheckpointError("checkpoint record has trailing payload bytes");
  }
  return m;
}

std::string errno_message(const std::string& action, const std::string& path) {
  return "checkpoint: " + action + " '" + path +
         "' failed: " + std::strerror(errno);
}

void fsync_or_throw(int fd, const std::string& path) {
  if (::fsync(fd) != 0) throw CheckpointError(errno_message("fsync", path));
}

/// Durability of a rename needs the *directory* flushed, not just the file.
void fsync_directory(const std::string& directory) {
  const int fd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw CheckpointError(errno_message("open dir", directory));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw CheckpointError(errno_message("fsync dir", directory));
}

// --- manifest text helpers -------------------------------------------------

template <typename T>
T parse_number(std::string_view text, const std::string& field) {
  T value{};
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw CheckpointError("checkpoint manifest: field '" + field +
                          "' is not a valid number: '" + std::string(text) +
                          "'");
  }
  return value;
}

/// The value of the "key value" line `prefix`; structural mismatch throws.
std::string_view expect_field(std::string_view line, const std::string& key) {
  if (line.size() <= key.size() + 1 || line.substr(0, key.size()) != key ||
      line[key.size()] != ' ') {
    throw CheckpointError("checkpoint manifest: expected '" + key +
                          " ...', got '" + std::string(line) + "'");
  }
  return line.substr(key.size() + 1);
}

template <typename T>
std::vector<T> parse_number_list(std::string_view text,
                                 const std::string& field) {
  std::vector<T> values;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string_view::npos) comma = text.size();
    values.push_back(
        parse_number<T>(text.substr(start, comma - start), field));
    start = comma + 1;
  }
  if (values.empty()) {
    throw CheckpointError("checkpoint manifest: field '" + field +
                          "' is empty");
  }
  return values;
}

template <typename T>
std::string join_numbers(const std::vector<T>& values) {
  std::string text;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) text += ',';
    text += std::to_string(values[i]);
  }
  return text;
}

std::string hex64(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string text(16, '0');
  for (int i = 15; i >= 0; --i) {
    text[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return text;
}

}  // namespace

std::string checkpoint_manifest_path(const std::string& directory) {
  return directory + "/manifest";
}

std::string checkpoint_log_path(const std::string& directory) {
  return directory + "/records.log";
}

std::string CheckpointManifest::serialize() const {
  std::ostringstream body;
  body << "exareq-checkpoint v" << version << "\n"
       << "app " << app_name << "\n"
       << "processes " << join_numbers(process_counts) << "\n"
       << "sizes " << join_numbers(problem_sizes) << "\n"
       << "locality " << (locality_enabled ? 1 : 0) << "\n"
       << "sampler " << sampler.burst_length << " " << sampler.period << " "
       << sampler.offset << "\n"
       << "min_samples " << min_samples << "\n";
  const std::string text = body.str();
  return text + "checksum " + hex64(fnv1a64(text)) + "\n";
}

CheckpointManifest CheckpointManifest::parse(const std::string& text) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  const std::string_view view(text);
  while (start < view.size()) {
    std::size_t newline = view.find('\n', start);
    if (newline == std::string_view::npos) {
      throw CheckpointError(
          "checkpoint manifest: missing trailing newline (truncated?)");
    }
    lines.push_back(view.substr(start, newline - start));
    start = newline + 1;
  }
  if (lines.size() != 8) {
    throw CheckpointError("checkpoint manifest: expected 8 lines, got " +
                          std::to_string(lines.size()));
  }

  // Verify the self-checksum first: any bit flip above it is caught here,
  // before field parsing can be confused by it.
  const std::string_view checksum_text = expect_field(lines[7], "checksum");
  const std::size_t checksum_line_start = text.size() - lines[7].size() - 1;
  const std::uint64_t expected =
      fnv1a64(std::string_view(text).substr(0, checksum_line_start));
  if (checksum_text.size() != 16 ||
      hex64(expected) != std::string(checksum_text)) {
    throw CheckpointError("checkpoint manifest: checksum mismatch");
  }

  const std::string_view header = lines[0];
  const std::string_view version_prefix = "exareq-checkpoint v";
  if (header.substr(0, version_prefix.size()) != version_prefix) {
    throw CheckpointError("checkpoint manifest: bad header line '" +
                          std::string(header) + "'");
  }
  CheckpointManifest manifest;
  manifest.version =
      parse_number<int>(header.substr(version_prefix.size()), "version");
  if (manifest.version != kVersion) {
    throw CheckpointError("checkpoint manifest: unsupported format version " +
                          std::to_string(manifest.version) + " (this build " +
                          "reads v" + std::to_string(kVersion) + ")");
  }
  manifest.app_name = std::string(expect_field(lines[1], "app"));
  manifest.process_counts =
      parse_number_list<int>(expect_field(lines[2], "processes"), "processes");
  manifest.problem_sizes = parse_number_list<std::int64_t>(
      expect_field(lines[3], "sizes"), "sizes");
  manifest.locality_enabled =
      parse_number<int>(expect_field(lines[4], "locality"), "locality") != 0;
  const std::string_view sampler_text = expect_field(lines[5], "sampler");
  const std::vector<std::uint64_t> sampler_fields = [&] {
    std::vector<std::uint64_t> fields;
    std::size_t field_start = 0;
    while (field_start <= sampler_text.size()) {
      std::size_t space = sampler_text.find(' ', field_start);
      if (space == std::string_view::npos) space = sampler_text.size();
      fields.push_back(parse_number<std::uint64_t>(
          sampler_text.substr(field_start, space - field_start), "sampler"));
      field_start = space + 1;
    }
    return fields;
  }();
  if (sampler_fields.size() != 3) {
    throw CheckpointError("checkpoint manifest: sampler needs 3 fields");
  }
  manifest.sampler = {sampler_fields[0], sampler_fields[1], sampler_fields[2]};
  if (manifest.sampler.burst_length < 1 ||
      manifest.sampler.period < manifest.sampler.burst_length) {
    throw CheckpointError("checkpoint manifest: invalid sampler configuration");
  }
  manifest.min_samples = parse_number<std::size_t>(
      expect_field(lines[6], "min_samples"), "min_samples");
  return manifest;
}

bool CheckpointManifest::compatible_with(const CheckpointManifest& other,
                                         std::string* why) const {
  const auto mismatch = [why](const std::string& field) {
    if (why != nullptr) *why = field;
    return false;
  };
  if (version != other.version) return mismatch("format version");
  if (app_name != other.app_name) return mismatch("application");
  if (process_counts != other.process_counts) return mismatch("process grid");
  if (problem_sizes != other.problem_sizes) {
    return mismatch("problem-size grid");
  }
  if (locality_enabled != other.locality_enabled) {
    return mismatch("locality enabled");
  }
  if (sampler.burst_length != other.sampler.burst_length ||
      sampler.period != other.sampler.period ||
      sampler.offset != other.sampler.offset) {
    return mismatch("locality sampler");
  }
  if (min_samples != other.min_samples) return mismatch("min_samples");
  return true;
}

void write_manifest_atomic(const std::string& directory,
                           const CheckpointManifest& manifest, bool fsync) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    throw CheckpointError("checkpoint: cannot create directory '" + directory +
                          "': " + ec.message());
  }
  const std::string path = checkpoint_manifest_path(directory);
  const std::string temp = path + ".tmp";
  const std::string text = manifest.serialize();

  const int fd = ::open(temp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) throw CheckpointError(errno_message("open", temp));
  std::size_t written = 0;
  while (written < text.size()) {
    const ssize_t count =
        ::write(fd, text.data() + written, text.size() - written);
    if (count < 0) {
      ::close(fd);
      throw CheckpointError(errno_message("write", temp));
    }
    written += static_cast<std::size_t>(count);
  }
  if (fsync) {
    try {
      fsync_or_throw(fd, temp);
    } catch (...) {
      ::close(fd);
      throw;
    }
  }
  ::close(fd);
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    throw CheckpointError(errno_message("rename", path));
  }
  if (fsync) fsync_directory(directory);
  obs::MetricRegistry::instance()
      .counter("campaign.checkpoint.manifest_writes")
      .add(1);
}

std::optional<CheckpointManifest> read_manifest(const std::string& directory) {
  std::ifstream file(checkpoint_manifest_path(directory), std::ios::binary);
  if (!file.good()) return std::nullopt;
  std::ostringstream content;
  content << file.rdbuf();
  return CheckpointManifest::parse(content.str());
}

std::string encode_record(std::uint32_t slot, const AppMeasurement& m) {
  const std::string payload = encode_payload(m);
  std::string record;
  record.reserve(kHeaderBytes + payload.size());
  put_u32(record, kRecordMagic);
  put_u32(record, slot);
  put_u32(record, static_cast<std::uint32_t>(payload.size()));
  // The checksum covers slot + length + payload, so a record can neither be
  // re-addressed nor re-sized without being detected.
  std::string checked;
  checked.reserve(8 + payload.size());
  put_u32(checked, slot);
  put_u32(checked, static_cast<std::uint32_t>(payload.size()));
  checked += payload;
  put_u64(record, fnv1a64(checked));
  record += payload;
  return record;
}

CheckpointLoadResult scan_records(std::string_view bytes,
                                  std::size_t slot_count) {
  CheckpointLoadResult result;
  std::size_t pos = 0;
  while (bytes.size() - pos >= kHeaderBytes) {
    Reader header(bytes.substr(pos, kHeaderBytes));
    const std::uint32_t magic = header.u32();
    const std::uint32_t slot = header.u32();
    const std::uint32_t payload_length = header.u32();
    const std::uint64_t checksum = header.u64();
    if (magic != kRecordMagic) break;
    if (payload_length > kMaxPayloadBytes ||
        payload_length > bytes.size() - pos - kHeaderBytes) {
      break;
    }
    const std::string_view payload =
        bytes.substr(pos + kHeaderBytes, payload_length);
    std::string checked;
    checked.reserve(8 + payload.size());
    put_u32(checked, slot);
    put_u32(checked, payload_length);
    checked += payload;
    if (fnv1a64(checked) != checksum) break;
    if (slot >= slot_count) break;
    AppMeasurement measurement;
    try {
      measurement = decode_payload(payload);
    } catch (const CheckpointError&) {
      break;
    }
    if (!result.slots.insert_or_assign(slot, std::move(measurement)).second) {
      ++result.duplicate_records;
    }
    ++result.valid_records;
    pos += kHeaderBytes + payload_length;
  }
  result.valid_bytes = pos;
  result.dropped_tail_bytes = bytes.size() - pos;
  return result;
}

CheckpointLoadResult load_records(const std::string& directory,
                                  std::size_t slot_count) {
  std::ifstream file(checkpoint_log_path(directory), std::ios::binary);
  if (!file.good()) return CheckpointLoadResult{};
  std::ostringstream content;
  content << file.rdbuf();
  return scan_records(content.str(), slot_count);
}

CheckpointWriter::CheckpointWriter(const CheckpointOptions& options,
                                   std::uint64_t keep_bytes)
    : options_(options) {
  const std::string path = checkpoint_log_path(options_.directory);
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY, 0644);
  if (fd_ < 0) throw CheckpointError(errno_message("open", path));
  // A damaged tail (or a fresh start: keep_bytes == 0) is cut off before
  // the first append — records written after unreachable garbage would be
  // unreachable themselves, since the loader stops at the damage.
  if (::ftruncate(fd_, static_cast<off_t>(keep_bytes)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw CheckpointError(errno_message("truncate", path));
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw CheckpointError(errno_message("seek", path));
  }
}

CheckpointWriter::~CheckpointWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void CheckpointWriter::append(std::uint32_t slot, const AppMeasurement& m) {
  const std::string record = encode_record(slot, m);
  std::size_t records_so_far = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (dead_) {
      throw CheckpointError(
          "checkpoint writer aborted by a failed after_record hook");
    }
    const std::string path = checkpoint_log_path(options_.directory);
    std::size_t written = 0;
    while (written < record.size()) {
      const ssize_t count =
          ::write(fd_, record.data() + written, record.size() - written);
      if (count < 0) throw CheckpointError(errno_message("append", path));
      written += static_cast<std::size_t>(count);
    }
    if (options_.fsync) fsync_or_throw(fd_, path);
    ++records_;
    bytes_ += record.size();
    records_so_far = records_;
  }
  auto& registry = obs::MetricRegistry::instance();
  registry.counter("campaign.checkpoint.records_written").add(1);
  registry.counter("campaign.checkpoint.bytes_written").add(record.size());
  // The hook runs outside the lock: it may throw (failure injection) or
  // take arbitrarily long without serializing other appends. A throwing
  // hook kills the writer — later appends fail instead of writing, so the
  // log ends exactly at the simulated crash point even though independent
  // DAG tasks keep draining.
  if (options_.after_record) {
    try {
      options_.after_record(records_so_far);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      dead_ = true;
      throw;
    }
  }
}

std::size_t CheckpointWriter::records_written() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::uint64_t CheckpointWriter::bytes_written() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

}  // namespace exareq::pipeline
