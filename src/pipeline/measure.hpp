// Single-configuration measurement of an application proxy — the paper's
// data-acquisition step (Sec. II-B) over the simulated substrate:
//   Score-P/PAPI  -> instr::ProcessInstrumentation (flops, loads/stores)
//   getrusage     -> instr::MemoryTracker peak (bytes used)
//   Score-P (MPI) -> simmpi::CommStats (bytes sent+received)
//   Threadspotter -> memtrace locality analysis (median stack distance)
//
// All metrics are reported per process; following the paper we take the
// busiest rank as the per-process requirement (symmetric applications make
// max and mean nearly identical).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "apps/application.hpp"
#include "memtrace/locality.hpp"

namespace exareq::pipeline {

/// Per-communication-call-path measurement (paper: communication
/// requirements are obtained at the granularity of function calls).
struct ChannelMeasurement {
  double bytes = 0.0;          ///< sent+received, busiest rank
  bool uses_allreduce = false;
  bool uses_bcast = false;
  bool uses_alltoall = false;
};

/// Requirements of one (p, n) configuration.
struct AppMeasurement {
  int processes = 0;
  std::int64_t problem_size = 0;
  double bytes_used = 0.0;            ///< peak tracked bytes, busiest rank
  double flops = 0.0;                 ///< busiest rank
  double loads_stores = 0.0;          ///< busiest rank
  double bytes_sent_received = 0.0;   ///< busiest rank
  double stack_distance = 0.0;        ///< weighted median (0 if not measured)
  double io_bytes = 0.0;              ///< file-system bytes, busiest rank
  double energy_proxy = 0.0;          ///< derived energy estimate [J]
  /// Per-call-path communication (channel name -> bytes + collective use).
  std::map<std::string, ChannelMeasurement> channels;
};

/// Deterministic first-order energy model over the counted activity of the
/// busiest rank. The per-unit costs are order-of-magnitude figures for a
/// contemporary HPC node (double-precision FLOP ~10 pJ, cache/memory access
/// of a double ~0.2 nJ, network byte ~0.5 nJ, file-system byte ~1 nJ); the
/// absolute scale is a fiction, but the *growth* of the combination in
/// (p, n) is exactly what requirement modeling needs — and because the
/// proxy is a pure function of the other metrics it can be recomputed for
/// legacy measurement rows that predate the channel.
double derived_energy_proxy(double flops, double loads_stores,
                            double bytes_sent_received, double io_bytes);

/// Strict-weak ordering over the full measurement tuple — (p, n), every
/// metric, then the channel map. Sorting a batch of rows with it yields one
/// canonical order for any arrival permutation, which is how the online
/// refit path (src/online) makes an incremental fit bit-identical to a cold
/// fit on the concatenated data regardless of ingest order.
bool measurement_row_less(const AppMeasurement& a, const AppMeasurement& b);

/// Duty-cycled sampling presets for the locality tracer (Threadspotter's
/// burst strategy, paper Sec. II-B). Sparser presets trade stack-distance
/// sample density for trace-time and checkpoint-footprint reduction on the
/// big grids; distances stay exact, sampling only thins which accesses
/// contribute to the reported statistics.
enum class SamplingPreset {
  kExact,     ///< every access documented ({1, 1, 0})
  kBalanced,  ///< the long-standing default ({64, 512, 0}, 12.5% duty)
  kSparse,    ///< {64, 2048, 0}, ~3% duty — large production sweeps
  kMinimal,   ///< {64, 8192, 0}, <1% duty — footprint-bound sweeps
};

/// Options for the locality part of a measurement.
struct LocalityOptions {
  bool enabled = true;
  memtrace::LocalityConfig config = {memtrace::SamplerConfig{64, 512, 0}, 100};
};

/// LocalityOptions preconfigured with a preset's sampler.
LocalityOptions locality_preset(SamplingPreset preset);

/// CLI name of a preset ("exact", "balanced", "sparse", "minimal").
std::string_view sampling_preset_name(SamplingPreset preset);

/// Inverse of sampling_preset_name; nullopt for unknown names.
std::optional<SamplingPreset> sampling_preset_from_name(std::string_view name);

/// Runs the application on `p` simulated ranks with per-process problem
/// size `n` and collects all requirement metrics. Throws on invalid
/// configurations (p < 1, n below the app's minimum).
AppMeasurement measure_app(const apps::Application& app, int p, std::int64_t n,
                           const LocalityOptions& locality = {});

}  // namespace exareq::pipeline
