// Bridges fitted requirement models into the co-design library's
// application bundle (the hand-off between the paper's modeling step and
// its co-design studies).
#pragma once

#include "codesign/requirements.hpp"
#include "pipeline/campaign.hpp"

namespace exareq::pipeline {

/// Converts a full set of fitted models into the co-design bundle. The
/// communication requirement is the sum of the per-call-path models (or
/// the whole-program fit when no channels were measured).
codesign::AppRequirements to_requirements(const RequirementModels& models);

}  // namespace exareq::pipeline
