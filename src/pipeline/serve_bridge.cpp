#include "pipeline/serve_bridge.hpp"

#include <cmath>
#include <vector>

#include "apps/application.hpp"
#include "pipeline/codesign_bridge.hpp"

namespace exareq::pipeline {

std::function<codesign::AppRequirements(const std::string&)>
make_registry_fitter(CampaignConfig config, model::GeneratorOptions options) {
  // Fit-on-demand can run for several apps at once on the server's workers,
  // and the shared pool supports only one top-level client at a time — keep
  // both the fit and the campaign strictly serial per request.
  options.fit.threads = 1;
  config.threads = 1;
  return [config, options](const std::string& name) {
    const apps::Application& app =
        apps::application(apps::app_id_from_name(name));
    const CampaignData data = run_campaign(app, config);
    return to_requirements(model_requirements(data, options));
  };
}

FittedBundle fit_requirement_bundle(const CampaignData& data,
                                    model::GeneratorOptions options) {
  options.fit.threads = 1;
  const RequirementModels models = model_requirements(data, options);
  FittedBundle bundle;
  bundle.requirements = to_requirements(models);
  const std::vector<double> errors = all_relative_errors(models);
  double sum = 0.0;
  for (const double e : errors) sum += std::abs(e);
  bundle.mean_abs_relative_error =
      errors.empty() ? 0.0 : sum / static_cast<double>(errors.size());
  return bundle;
}

model::ModelBundle to_model_bundle(const RequirementModels& models) {
  const codesign::AppRequirements requirements = to_requirements(models);
  model::ModelBundle bundle;
  bundle.name = models.app_name;
  bundle.models = {{"footprint", requirements.footprint},
                   {"flops", requirements.flops},
                   {"comm_bytes", requirements.comm_bytes},
                   {"loads_stores", requirements.loads_stores},
                   {"stack_distance", requirements.stack_distance}};
  if (requirements.io_bytes.has_value()) {
    bundle.models.emplace_back("io_bytes", *requirements.io_bytes);
  }
  if (requirements.energy_proxy.has_value()) {
    bundle.models.emplace_back("energy_proxy", *requirements.energy_proxy);
  }
  return bundle;
}

}  // namespace exareq::pipeline
