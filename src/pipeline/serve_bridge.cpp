#include "pipeline/serve_bridge.hpp"

#include "apps/application.hpp"
#include "pipeline/codesign_bridge.hpp"

namespace exareq::pipeline {

std::function<codesign::AppRequirements(const std::string&)>
make_registry_fitter(CampaignConfig config, model::GeneratorOptions options) {
  // Fit-on-demand can run for several apps at once on the server's workers,
  // and the shared pool supports only one top-level client at a time — keep
  // both the fit and the campaign strictly serial per request.
  options.fit.threads = 1;
  config.threads = 1;
  return [config, options](const std::string& name) {
    const apps::Application& app =
        apps::application(apps::app_id_from_name(name));
    const CampaignData data = run_campaign(app, config);
    return to_requirements(model_requirements(data, options));
  };
}

model::ModelBundle to_model_bundle(const RequirementModels& models) {
  const codesign::AppRequirements requirements = to_requirements(models);
  model::ModelBundle bundle;
  bundle.name = models.app_name;
  bundle.models = {{"footprint", requirements.footprint},
                   {"flops", requirements.flops},
                   {"comm_bytes", requirements.comm_bytes},
                   {"loads_stores", requirements.loads_stores},
                   {"stack_distance", requirements.stack_distance}};
  return bundle;
}

}  // namespace exareq::pipeline
