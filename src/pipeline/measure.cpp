#include "pipeline/measure.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "simmpi/runtime.hpp"
#include "support/error.hpp"

namespace exareq::pipeline {

bool measurement_row_less(const AppMeasurement& a, const AppMeasurement& b) {
  if (a.processes != b.processes) return a.processes < b.processes;
  if (a.problem_size != b.problem_size) return a.problem_size < b.problem_size;
  if (a.bytes_used != b.bytes_used) return a.bytes_used < b.bytes_used;
  if (a.flops != b.flops) return a.flops < b.flops;
  if (a.loads_stores != b.loads_stores) return a.loads_stores < b.loads_stores;
  if (a.bytes_sent_received != b.bytes_sent_received) {
    return a.bytes_sent_received < b.bytes_sent_received;
  }
  if (a.stack_distance != b.stack_distance) {
    return a.stack_distance < b.stack_distance;
  }
  if (a.io_bytes != b.io_bytes) return a.io_bytes < b.io_bytes;
  if (a.energy_proxy != b.energy_proxy) {
    return a.energy_proxy < b.energy_proxy;
  }
  auto it_a = a.channels.begin();
  auto it_b = b.channels.begin();
  for (; it_a != a.channels.end() && it_b != b.channels.end();
       ++it_a, ++it_b) {
    if (it_a->first != it_b->first) return it_a->first < it_b->first;
    const ChannelMeasurement& ca = it_a->second;
    const ChannelMeasurement& cb = it_b->second;
    if (ca.bytes != cb.bytes) return ca.bytes < cb.bytes;
    if (ca.uses_allreduce != cb.uses_allreduce) return cb.uses_allreduce;
    if (ca.uses_bcast != cb.uses_bcast) return cb.uses_bcast;
    if (ca.uses_alltoall != cb.uses_alltoall) return cb.uses_alltoall;
  }
  return it_a == a.channels.end() && it_b != b.channels.end();
}

double derived_energy_proxy(double flops, double loads_stores,
                            double bytes_sent_received, double io_bytes) {
  constexpr double kJoulesPerFlop = 1e-11;
  constexpr double kJoulesPerAccess = 2e-10;
  constexpr double kJoulesPerCommByte = 5e-10;
  constexpr double kJoulesPerIoByte = 1e-9;
  return kJoulesPerFlop * flops + kJoulesPerAccess * loads_stores +
         kJoulesPerCommByte * bytes_sent_received + kJoulesPerIoByte * io_bytes;
}

LocalityOptions locality_preset(SamplingPreset preset) {
  LocalityOptions options;
  switch (preset) {
    case SamplingPreset::kExact:
      options.config.sampler = memtrace::SamplerConfig::exact();
      break;
    case SamplingPreset::kBalanced:
      options.config.sampler = {64, 512, 0};
      break;
    case SamplingPreset::kSparse:
      options.config.sampler = {64, 2048, 0};
      break;
    case SamplingPreset::kMinimal:
      options.config.sampler = {64, 8192, 0};
      break;
  }
  return options;
}

std::string_view sampling_preset_name(SamplingPreset preset) {
  switch (preset) {
    case SamplingPreset::kExact:
      return "exact";
    case SamplingPreset::kBalanced:
      return "balanced";
    case SamplingPreset::kSparse:
      return "sparse";
    case SamplingPreset::kMinimal:
      return "minimal";
  }
  return "?";
}

std::optional<SamplingPreset> sampling_preset_from_name(
    std::string_view name) {
  for (const SamplingPreset preset :
       {SamplingPreset::kExact, SamplingPreset::kBalanced,
        SamplingPreset::kSparse, SamplingPreset::kMinimal}) {
    if (name == sampling_preset_name(preset)) return preset;
  }
  return std::nullopt;
}

AppMeasurement measure_app(const apps::Application& app, int p, std::int64_t n,
                           const LocalityOptions& locality) {
  exareq::require(p >= 1, "measure_app: need at least one process");
  exareq::require(n >= app.min_problem_size(),
                  "measure_app: problem size below the application minimum");

  // One instrumentation context per rank, owned here so the rank threads
  // only ever touch their own slot.
  std::vector<std::unique_ptr<instr::ProcessInstrumentation>> contexts;
  contexts.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    contexts.push_back(std::make_unique<instr::ProcessInstrumentation>());
  }

  const simmpi::RunResult run_result =
      simmpi::run(p, [&app, &contexts, n](simmpi::Communicator& comm) {
        app.run_rank(comm, *contexts[static_cast<std::size_t>(comm.rank())], n);
      });

  AppMeasurement measurement;
  measurement.processes = p;
  measurement.problem_size = n;
  for (int r = 0; r < p; ++r) {
    const instr::ProcessReport report = contexts[static_cast<std::size_t>(r)]->report();
    measurement.bytes_used = std::max(
        measurement.bytes_used, static_cast<double>(report.peak_bytes));
    measurement.flops =
        std::max(measurement.flops, static_cast<double>(report.ops.flops));
    measurement.loads_stores =
        std::max(measurement.loads_stores,
                 static_cast<double>(report.ops.loads_stores()));
    measurement.io_bytes = std::max(
        measurement.io_bytes, static_cast<double>(report.io.bytes_total()));
  }
  measurement.bytes_sent_received =
      static_cast<double>(run_result.max_bytes_per_rank());
  measurement.energy_proxy = derived_energy_proxy(
      measurement.flops, measurement.loads_stores,
      measurement.bytes_sent_received, measurement.io_bytes);
  for (const simmpi::CommStats& stats : run_result.stats) {
    for (const auto& [name, channel] : stats.channels) {
      ChannelMeasurement& entry = measurement.channels[name];
      entry.bytes = std::max(entry.bytes,
                             static_cast<double>(channel.bytes_total()));
      entry.uses_allreduce |= channel.allreduce_calls > 0;
      entry.uses_bcast |= channel.bcast_calls > 0;
      entry.uses_alltoall |= channel.alltoall_calls > 0;
    }
  }

  if (locality.enabled) {
    // Streamed: the kernel writes straight into the analyzer, so no trace is
    // ever materialized and memory stays O(distinct addresses).
    memtrace::LocalityAnalyzer analyzer(locality.config);
    app.trace_locality(n, analyzer);
    measurement.stack_distance =
        analyzer.finish(measurement.loads_stores).weighted_median_stack_distance;
  }
  return measurement;
}

}  // namespace exareq::pipeline
