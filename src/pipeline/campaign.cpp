#include "pipeline/campaign.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/format.hpp"
#include "support/task_dag.hpp"
#include "support/thread_pool.hpp"

namespace exareq::pipeline {

std::vector<Metric> all_metrics() {
  return {Metric::kBytesUsed,    Metric::kFlops,   Metric::kBytesSentReceived,
          Metric::kLoadsStores,  Metric::kStackDistance,
          Metric::kIoBytes,      Metric::kEnergyProxy};
}

std::string metric_label(Metric metric) {
  switch (metric) {
    case Metric::kBytesUsed:
      return "#Bytes used";
    case Metric::kFlops:
      return "#FLOP";
    case Metric::kBytesSentReceived:
      return "#Bytes sent & received";
    case Metric::kLoadsStores:
      return "#Loads & stores";
    case Metric::kStackDistance:
      return "Stack distance";
    case Metric::kIoBytes:
      return "#Bytes file I/O";
    case Metric::kEnergyProxy:
      return "Energy proxy [J]";
  }
  return "?";
}

namespace {

double metric_value(const AppMeasurement& m, Metric metric) {
  switch (metric) {
    case Metric::kBytesUsed:
      return m.bytes_used;
    case Metric::kFlops:
      return m.flops;
    case Metric::kBytesSentReceived:
      return m.bytes_sent_received;
    case Metric::kLoadsStores:
      return m.loads_stores;
    case Metric::kStackDistance:
      return m.stack_distance;
    case Metric::kIoBytes:
      return m.io_bytes;
    case Metric::kEnergyProxy:
      return m.energy_proxy;
  }
  return 0.0;
}

/// Header lookup that tolerates absence — pre-suite-v2 campaign CSVs have
/// no io_bytes/energy_proxy columns and must keep loading.
std::optional<std::size_t> optional_column(const exareq::CsvDocument& doc,
                                           const std::string& title) {
  for (std::size_t c = 0; c < doc.header().size(); ++c) {
    if (doc.header()[c] == title) return c;
  }
  return std::nullopt;
}

}  // namespace

model::MeasurementSet CampaignData::metric_data(Metric metric) const {
  if (metric == Metric::kStackDistance) {
    // Locality depends on the problem size only; deduplicate over p,
    // keeping the first occurrence of each problem size.
    model::MeasurementSet data({"n"});
    std::unordered_set<std::int64_t> seen;
    for (const AppMeasurement& m : measurements) {
      if (!seen.insert(m.problem_size).second) continue;
      data.add({static_cast<double>(m.problem_size)}, metric_value(m, metric));
    }
    return data;
  }
  model::MeasurementSet data({"p", "n"});
  for (const AppMeasurement& m : measurements) {
    data.add2(static_cast<double>(m.processes),
              static_cast<double>(m.problem_size), metric_value(m, metric));
  }
  return data;
}

std::vector<std::string> CampaignData::channel_names() const {
  std::vector<std::string> names;
  std::unordered_set<std::string> seen;
  for (const AppMeasurement& m : measurements) {
    for (const auto& [name, channel] : m.channels) {
      if (seen.insert(name).second) names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

model::MeasurementSet CampaignData::channel_data(const std::string& name) const {
  model::MeasurementSet data({"p", "n"});
  for (const AppMeasurement& m : measurements) {
    const auto it = m.channels.find(name);
    const double bytes = it == m.channels.end() ? 0.0 : it->second.bytes;
    data.add2(static_cast<double>(m.processes),
              static_cast<double>(m.problem_size), bytes);
  }
  return data;
}

ChannelMeasurement CampaignData::channel_traits(const std::string& name) const {
  ChannelMeasurement traits;
  for (const AppMeasurement& m : measurements) {
    const auto it = m.channels.find(name);
    if (it == m.channels.end()) continue;
    traits.uses_allreduce |= it->second.uses_allreduce;
    traits.uses_bcast |= it->second.uses_bcast;
    traits.uses_alltoall |= it->second.uses_alltoall;
  }
  return traits;
}

exareq::CsvDocument CampaignData::to_csv() const {
  // Channel columns are named "chan:<flags>:<name>" where flags encode
  // which collectives the call path uses (a/b/t).
  std::vector<std::string> header{"p",
                                  "n",
                                  "bytes_used",
                                  "flops",
                                  "loads_stores",
                                  "bytes_sent_received",
                                  "stack_distance",
                                  "io_bytes",
                                  "energy_proxy"};
  const std::vector<std::string> channels = channel_names();
  for (const std::string& name : channels) {
    const ChannelMeasurement traits = channel_traits(name);
    std::string flags;
    if (traits.uses_allreduce) flags += 'a';
    if (traits.uses_bcast) flags += 'b';
    if (traits.uses_alltoall) flags += 't';
    header.push_back("chan:" + flags + ":" + name);
  }
  exareq::CsvDocument doc(header);
  for (const AppMeasurement& m : measurements) {
    std::vector<std::string> row{std::to_string(m.processes),
                                 std::to_string(m.problem_size),
                                 exareq::format_sci(m.bytes_used, 17),
                                 exareq::format_sci(m.flops, 17),
                                 exareq::format_sci(m.loads_stores, 17),
                                 exareq::format_sci(m.bytes_sent_received, 17),
                                 exareq::format_sci(m.stack_distance, 17),
                                 exareq::format_sci(m.io_bytes, 17),
                                 exareq::format_sci(m.energy_proxy, 17)};
    for (const std::string& name : channels) {
      const auto it = m.channels.find(name);
      row.push_back(
          exareq::format_sci(it == m.channels.end() ? 0.0 : it->second.bytes, 17));
    }
    doc.add_row(std::move(row));
  }
  return doc;
}

CampaignData CampaignData::from_csv(const exareq::CsvDocument& doc,
                                    std::string app_name) {
  CampaignData data;
  data.app_name = std::move(app_name);
  const std::size_t p_col = doc.column_index("p");
  const std::size_t n_col = doc.column_index("n");
  const std::size_t bytes_col = doc.column_index("bytes_used");
  const std::size_t flops_col = doc.column_index("flops");
  const std::size_t ls_col = doc.column_index("loads_stores");
  const std::size_t comm_col = doc.column_index("bytes_sent_received");
  const std::size_t sd_col = doc.column_index("stack_distance");
  const std::optional<std::size_t> io_col = optional_column(doc, "io_bytes");
  const std::optional<std::size_t> energy_col =
      optional_column(doc, "energy_proxy");
  struct ChannelColumn {
    std::size_t column;
    std::string name;
    ChannelMeasurement traits;
  };
  std::vector<ChannelColumn> channel_columns;
  for (std::size_t c = 0; c < doc.header().size(); ++c) {
    const std::string& title = doc.header()[c];
    if (title.rfind("chan:", 0) != 0) continue;
    const std::size_t second_colon = title.find(':', 5);
    exareq::require(second_colon != std::string::npos,
                    "CampaignData::from_csv: malformed channel column '" +
                        title + "'");
    ChannelColumn column;
    column.column = c;
    column.name = title.substr(second_colon + 1);
    const std::string flags = title.substr(5, second_colon - 5);
    column.traits.uses_allreduce = flags.find('a') != std::string::npos;
    column.traits.uses_bcast = flags.find('b') != std::string::npos;
    column.traits.uses_alltoall = flags.find('t') != std::string::npos;
    channel_columns.push_back(std::move(column));
  }
  for (std::size_t row = 0; row < doc.rows().size(); ++row) {
    AppMeasurement m;
    m.processes = static_cast<int>(doc.number_at(row, p_col));
    m.problem_size = static_cast<std::int64_t>(doc.number_at(row, n_col));
    m.bytes_used = doc.number_at(row, bytes_col);
    m.flops = doc.number_at(row, flops_col);
    m.loads_stores = doc.number_at(row, ls_col);
    m.bytes_sent_received = doc.number_at(row, comm_col);
    m.stack_distance = doc.number_at(row, sd_col);
    // Legacy rows (pre-suite-v2) carry no I/O column — none of the original
    // apps perform file I/O, so 0 is the measurement those rows would have
    // recorded — and the energy proxy, a pure function of the other
    // metrics, is recomputed rather than defaulted.
    m.io_bytes = io_col.has_value() ? doc.number_at(row, *io_col) : 0.0;
    m.energy_proxy = energy_col.has_value()
                         ? doc.number_at(row, *energy_col)
                         : derived_energy_proxy(m.flops, m.loads_stores,
                                                m.bytes_sent_received,
                                                m.io_bytes);
    for (const ChannelColumn& column : channel_columns) {
      const double bytes = doc.number_at(row, column.column);
      // Zero-byte cells are fill-ins `to_csv` writes for configurations
      // where the call path never occurred. Materializing them would grow
      // phantom channel entries on every round trip; `channel_data` already
      // treats missing channels as 0 bytes.
      if (bytes == 0.0) continue;
      ChannelMeasurement entry = column.traits;
      entry.bytes = bytes;
      m.channels.emplace(column.name, entry);
    }
    data.measurements.push_back(m);
  }
  return data;
}

CampaignData run_campaign(const apps::Application& app,
                          const CampaignConfig& config) {
  exareq::require(!config.process_counts.empty() && !config.problem_sizes.empty(),
                  "run_campaign: empty campaign grid");
  const std::size_t p_count = config.process_counts.size();
  const std::size_t n_count = config.problem_sizes.size();
  const std::size_t slot_count = n_count * p_count;

  obs::ScopedSpan campaign_span("run_campaign", "campaign");
  campaign_span.arg("grid_points", static_cast<double>(slot_count));
  auto& registry = obs::MetricRegistry::instance();
  registry.counter("campaign.grid_points").add(slot_count);

  CampaignData data;
  data.app_name = app.name();
  // Every grid point writes its own preallocated slot (row-major: n outer,
  // p inner — the serial iteration order), so the campaign can run on any
  // number of threads and still produce bit-identical measurements.
  data.measurements.resize(slot_count);

  // Checkpointing: a resumed campaign loads the validated log prefix into
  // the preallocated slots and only schedules the remainder; the writer
  // appends each newly completed point as its checkpoint task runs.
  std::vector<std::uint8_t> loaded(slot_count, 0);
  std::unique_ptr<CheckpointWriter> writer;
  if (config.checkpoint.enabled()) {
    CheckpointManifest manifest;
    manifest.app_name = data.app_name;
    manifest.process_counts = config.process_counts;
    manifest.problem_sizes = config.problem_sizes;
    manifest.locality_enabled = config.locality.enabled;
    manifest.sampler = config.locality.config.sampler;
    manifest.min_samples = config.locality.config.min_samples;

    std::uint64_t keep_bytes = 0;
    std::optional<CheckpointManifest> on_disk;
    if (config.checkpoint.resume) {
      on_disk = read_manifest(config.checkpoint.directory);
    }
    if (on_disk.has_value()) {
      std::string why;
      if (!manifest.compatible_with(*on_disk, &why)) {
        throw CheckpointError(
            "checkpoint '" + config.checkpoint.directory +
            "' belongs to a different campaign (mismatch: " + why + ")");
      }
      CheckpointLoadResult load =
          load_records(config.checkpoint.directory, slot_count);
      for (auto& [slot, measurement] : load.slots) {
        data.measurements[slot] = std::move(measurement);
        loaded[slot] = 1;
      }
      keep_bytes = load.valid_bytes;
      registry.counter("campaign.checkpoint.points_resumed")
          .add(load.slots.size());
      registry.counter("campaign.checkpoint.dropped_tail_bytes")
          .add(load.dropped_tail_bytes);
      campaign_span.arg("resumed_points",
                        static_cast<double>(load.slots.size()));
    } else {
      // Fresh start (or resume of an empty directory): persist the campaign
      // identity before any record can reference it.
      write_manifest_atomic(config.checkpoint.directory, manifest,
                            config.checkpoint.fsync);
    }
    writer = std::make_unique<CheckpointWriter>(config.checkpoint, keep_bytes);

    std::size_t remaining = 0;
    for (const std::uint8_t done : loaded) remaining += done == 0 ? 1u : 0u;
    registry.gauge("campaign.checkpoint.points_remaining")
        .set(static_cast<double>(remaining));
  }

  // Grid measurements never compute locality themselves; locality traces
  // depend on n only and run as one dedicated task per problem size.
  LocalityOptions no_locality = config.locality;
  no_locality.enabled = false;

  // Task ids double as the scheduling priority (both run_serial and the
  // pooled min-heap prefer smaller ids), so tasks are created in per-n
  // blocks — measurements, then the locality trace, then the checkpoint
  // appends of that n. A killed checkpointed campaign therefore leaves the
  // finished problem sizes on disk instead of batching every append behind
  // the whole grid's measurements.
  constexpr std::size_t kNoTask = static_cast<std::size_t>(-1);
  TaskDag dag;
  std::vector<std::size_t> measure_task(slot_count, kNoTask);
  std::vector<double> stack_distances(n_count, 0.0);
  std::vector<std::size_t> locality_task(n_count, kNoTask);
  for (std::size_t n_idx = 0; n_idx < n_count; ++n_idx) {
    bool any_missing = false;
    for (std::size_t p_idx = 0; p_idx < p_count; ++p_idx) {
      const std::size_t slot = n_idx * p_count + p_idx;
      if (loaded[slot] != 0) continue;
      any_missing = true;
      measure_task[slot] =
          dag.add("measure p=" + std::to_string(config.process_counts[p_idx]) +
                      " n=" + std::to_string(config.problem_sizes[n_idx]),
                  [&app, &config, &data, &no_locality, slot, n_idx, p_idx] {
                    data.measurements[slot] =
                        measure_app(app, config.process_counts[p_idx],
                                    config.problem_sizes[n_idx], no_locality);
                  });
    }
    // A problem size whose grid points were all resumed already carries
    // its stack distance inside the loaded records; re-tracing it would
    // only recompute the same value.
    if (config.locality.enabled && any_missing) {
      const std::size_t task = dag.add(
          "locality n=" + std::to_string(config.problem_sizes[n_idx]),
          [&app, &config, &data, &stack_distances, n_idx, p_count] {
        memtrace::LocalityAnalyzer analyzer(config.locality.config);
        app.trace_locality(config.problem_sizes[n_idx], analyzer);
        // Access-count scaling uses the loads/stores of the first grid point
        // at this n — exactly the measurement locality used to piggyback on
        // in the serial campaign.
        const double loads_stores =
            data.measurements[n_idx * p_count].loads_stores;
        stack_distances[n_idx] =
            analyzer.finish(loads_stores).weighted_median_stack_distance;
      });
      locality_task[n_idx] = task;
      // A resumed first grid point is already in its slot; otherwise the
      // locality trace must wait for its measurement.
      if (measure_task[n_idx * p_count] != kNoTask) {
        dag.depend(task, measure_task[n_idx * p_count]);
      }
    }
    if (writer == nullptr) continue;
    // One checkpoint task per newly measured point: it stamps the final
    // stack distance into the slot (the record must hold the value the CSV
    // will show) and appends the record. Points completed while another
    // grid point fails are still persisted — the DAG only skips dependents
    // of the failing task, and the append happens before run_campaign
    // rethrows.
    for (std::size_t p_idx = 0; p_idx < p_count; ++p_idx) {
      const std::size_t slot = n_idx * p_count + p_idx;
      if (measure_task[slot] == kNoTask) continue;
      const std::size_t task = dag.add(
          "checkpoint p=" + std::to_string(config.process_counts[p_idx]) +
              " n=" + std::to_string(config.problem_sizes[n_idx]),
          [&config, &data, &stack_distances, &writer, slot, n_idx] {
            if (config.locality.enabled) {
              data.measurements[slot].stack_distance = stack_distances[n_idx];
            }
            writer->append(static_cast<std::uint32_t>(slot),
                           data.measurements[slot]);
          });
      dag.depend(task, measure_task[slot]);
      if (locality_task[n_idx] != kNoTask) {
        dag.depend(task, locality_task[n_idx]);
      }
    }
  }

  std::size_t threads = config.threads;
  if (threads == 0) threads = exareq::ThreadPool::hardware_threads();
  if (threads <= 1) {
    dag.run_serial();
  } else {
    dag.run(exareq::shared_pool(threads));
  }

  if (config.locality.enabled) {
    for (std::size_t n_idx = 0; n_idx < n_count; ++n_idx) {
      for (std::size_t p_idx = 0; p_idx < p_count; ++p_idx) {
        const std::size_t slot = n_idx * p_count + p_idx;
        // Resumed slots keep the stack distance their record carried; for a
        // fully resumed n no locality task ran and stack_distances[n] is 0.
        if (loaded[slot] != 0) continue;
        data.measurements[slot].stack_distance = stack_distances[n_idx];
      }
    }
  }
  return data;
}

const model::FitResult& RequirementModels::result(Metric metric) const {
  switch (metric) {
    case Metric::kBytesUsed:
      return bytes_used;
    case Metric::kFlops:
      return flops;
    case Metric::kBytesSentReceived:
      return bytes_sent_received;
    case Metric::kLoadsStores:
      return loads_stores;
    case Metric::kStackDistance:
      return stack_distance;
    case Metric::kIoBytes:
      return io_bytes;
    case Metric::kEnergyProxy:
      return energy_proxy;
  }
  throw exareq::InvalidArgument("RequirementModels::result: unknown metric");
}

RequirementModels model_requirements(const CampaignData& data,
                                     const model::GeneratorOptions& options) {
  exareq::require(!data.measurements.empty(),
                  "model_requirements: empty campaign");
  const model::ModelGenerator generator(options);
  RequirementModels models;
  models.app_name = data.app_name;

  model::MetricTraits plain;
  model::MetricTraits communication;
  communication.is_communication = true;

  // Every fit writes into its own slot, so the per-metric and per-channel
  // fits can run concurrently; nested engine parallelism runs inline on the
  // same shared pool (the depth guard in ThreadPool prevents deadlock and
  // oversubscription). Results are identical at any thread count.
  const std::vector<std::string> channel_names = data.channel_names();
  models.comm_channels.resize(channel_names.size());

  std::vector<std::function<void()>> fits;
  fits.push_back([&] {
    models.bytes_used =
        generator.generate(data.metric_data(Metric::kBytesUsed), plain);
  });
  fits.push_back([&] {
    models.flops = generator.generate(data.metric_data(Metric::kFlops), plain);
  });
  fits.push_back([&] {
    models.bytes_sent_received = generator.generate(
        data.metric_data(Metric::kBytesSentReceived), communication);
  });
  fits.push_back([&] {
    models.loads_stores =
        generator.generate(data.metric_data(Metric::kLoadsStores), plain);
  });
  fits.push_back([&] {
    models.stack_distance =
        generator.generate(data.metric_data(Metric::kStackDistance), plain);
  });
  fits.push_back([&] {
    models.io_bytes =
        generator.generate(data.metric_data(Metric::kIoBytes), plain);
  });
  fits.push_back([&] {
    models.energy_proxy =
        generator.generate(data.metric_data(Metric::kEnergyProxy), plain);
  });
  for (std::size_t i = 0; i < channel_names.size(); ++i) {
    fits.push_back([&, i] {
      const std::string& name = channel_names[i];
      ChannelModel channel;
      channel.name = name;
      channel.traits = data.channel_traits(name);
      model::MetricTraits traits;
      traits.is_communication = true;
      traits.collectives.clear();
      if (channel.traits.uses_allreduce) {
        traits.collectives.push_back(model::SpecialFn::kAllreduce);
      }
      if (channel.traits.uses_bcast) {
        traits.collectives.push_back(model::SpecialFn::kBcast);
      }
      if (channel.traits.uses_alltoall) {
        traits.collectives.push_back(model::SpecialFn::kAlltoall);
      }
      channel.fit = generator.generate(data.channel_data(name), traits);
      models.comm_channels[i] = std::move(channel);
    });
  }

  std::size_t threads = options.fit.threads;
  if (threads == 0) threads = exareq::ThreadPool::hardware_threads();
  if (threads <= 1) {
    for (const auto& fit : fits) fit();
  } else {
    exareq::shared_pool(threads).parallel_for(
        fits.size(), [&](std::size_t i) { fits[i](); });
  }
  return models;
}

model::EngineStats RequirementModels::engine_stats() const {
  model::EngineStats total;
  for (Metric metric : all_metrics()) total += result(metric).stats;
  for (const ChannelModel& channel : comm_channels) total += channel.fit.stats;
  return total;
}

double RequirementModels::comm_bytes_at(double p, double n) const {
  if (comm_channels.empty()) {
    return bytes_sent_received.model.evaluate2(p, n);
  }
  double total = 0.0;
  for (const ChannelModel& channel : comm_channels) {
    total += channel.fit.model.evaluate2(p, n);
  }
  return total;
}

std::vector<double> all_relative_errors(const RequirementModels& models) {
  std::vector<double> errors;
  for (Metric metric : all_metrics()) {
    if (metric == Metric::kBytesSentReceived && !models.comm_channels.empty()) {
      // Communication is modeled per call path (paper Sec. III); the
      // histogram population uses those models, not the program total.
      continue;
    }
    const auto& fit = models.result(metric);
    errors.insert(errors.end(), fit.quality.relative_errors.begin(),
                  fit.quality.relative_errors.end());
  }
  for (const ChannelModel& channel : models.comm_channels) {
    errors.insert(errors.end(), channel.fit.quality.relative_errors.begin(),
                  channel.fit.quality.relative_errors.end());
  }
  return errors;
}

}  // namespace exareq::pipeline
