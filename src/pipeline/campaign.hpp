// Measurement campaigns and requirement-model generation — the paper's
// workflow (Sec. II): run the application over a grid of at least five
// process counts and five problem sizes (25 configurations), then fit one
// requirement model per metric with the Extra-P substitute.
#pragma once

#include <string>
#include <vector>

#include "apps/application.hpp"
#include "model/modelgen.hpp"
#include "pipeline/checkpoint.hpp"
#include "pipeline/measure.hpp"
#include "support/csv.hpp"

namespace exareq::pipeline {

/// The requirement metrics of the paper's Table I, plus the suite-v2
/// channels: file-system traffic (the paper's I/O remark — "I/O would be
/// handled analogously to the network communication requirement") and a
/// derived energy proxy.
enum class Metric {
  kBytesUsed,
  kFlops,
  kBytesSentReceived,
  kLoadsStores,
  kStackDistance,
  kIoBytes,
  kEnergyProxy,
};

/// All metrics, in Table II row order.
std::vector<Metric> all_metrics();

/// Table-I style label ("#Bytes used", ...).
std::string metric_label(Metric metric);

/// Campaign grid. Defaults follow the paper's rule of thumb: five values
/// per parameter. Powers of two keep the discrete log2-based iteration
/// counts of the proxies aligned with the continuous model functions.
struct CampaignConfig {
  std::vector<int> process_counts{4, 8, 16, 32, 64};
  std::vector<std::int64_t> problem_sizes{64, 128, 256, 512, 1024};
  LocalityOptions locality;
  /// Worker threads for the campaign itself: grid points run concurrently,
  /// each writing its own preallocated slot, so the resulting CampaignData
  /// is bit-identical at any thread count. 0 means hardware concurrency,
  /// 1 runs strictly serial on the calling thread.
  std::size_t threads = 0;
  /// Crash-safe persistence: with a directory set, every completed grid
  /// point is appended to the checkpoint log as it finishes, and with
  /// `resume` a restarted campaign loads the log, skips completed points,
  /// and schedules only the remainder — the resulting CSV is byte-identical
  /// to an uninterrupted run (see pipeline/checkpoint.hpp).
  CheckpointOptions checkpoint;
};

/// All measurements of one application over the campaign grid.
struct CampaignData {
  std::string app_name;
  std::vector<AppMeasurement> measurements;

  /// Measurement set for one metric: parameters (p, n) for the four
  /// process-level metrics; parameter (n) for the stack distance, whose
  /// model depends on the problem size only (paper Table II).
  model::MeasurementSet metric_data(Metric metric) const;

  /// Names of all communication call paths observed, sorted.
  std::vector<std::string> channel_names() const;

  /// Measurement set of one communication call path over (p, n); missing
  /// configurations (e.g. p = 1 where no traffic occurs) count as 0 bytes.
  model::MeasurementSet channel_data(const std::string& name) const;

  /// Union of the collective-use flags of one call path over all
  /// configurations.
  ChannelMeasurement channel_traits(const std::string& name) const;

  /// CSV round trip for persisting campaigns (one row per configuration).
  exareq::CsvDocument to_csv() const;
  static CampaignData from_csv(const exareq::CsvDocument& doc,
                               std::string app_name);
};

/// Runs the full grid. Throws if the grid is degenerate (empty axes).
CampaignData run_campaign(const apps::Application& app,
                          const CampaignConfig& config = {});

/// Fitted model of one communication call path.
struct ChannelModel {
  std::string name;
  ChannelMeasurement traits;  ///< which collectives the call path uses
  model::FitResult fit;
};

/// One fitted model per metric, plus one per communication call path —
/// Table II lists the communication requirement as separate per-call-path
/// models ("10^4 * Allreduce(p)", "10^4 * Bcast(p)", "10^9 * n" for MILC).
struct RequirementModels {
  std::string app_name;
  model::FitResult bytes_used;
  model::FitResult flops;
  model::FitResult bytes_sent_received;  ///< whole-program total
  model::FitResult loads_stores;
  model::FitResult stack_distance;
  model::FitResult io_bytes;      ///< file-system traffic (0 for no-I/O apps)
  model::FitResult energy_proxy;  ///< derived energy estimate
  std::vector<ChannelModel> comm_channels;

  const model::FitResult& result(Metric metric) const;

  /// Sum of the per-call-path communication models at (p, n) — the
  /// communication requirement used by the co-design studies.
  double comm_bytes_at(double p, double n) const;

  /// Aggregated engine-stats counters over all metric and call-path fits
  /// (wall_seconds is the sum of the per-fit wall times).
  model::EngineStats engine_stats() const;
};

/// Fits all seven metrics. Communication models search over the collective
/// basis functions (Allreduce/Bcast/Alltoall of p).
RequirementModels model_requirements(
    const CampaignData& data,
    const model::GeneratorOptions& options = model::GeneratorOptions{});

/// Relative errors of every measurement under its fitted model, across all
/// metrics — the population of the paper's Fig. 3 histogram.
std::vector<double> all_relative_errors(const RequirementModels& models);

}  // namespace exareq::pipeline
