#include "pipeline/codesign_bridge.hpp"

#include <vector>

namespace exareq::pipeline {

codesign::AppRequirements to_requirements(const RequirementModels& models) {
  codesign::AppRequirements requirements;
  requirements.name = models.app_name;
  requirements.footprint = models.bytes_used.model;
  requirements.flops = models.flops.model;
  requirements.loads_stores = models.loads_stores.model;
  requirements.stack_distance = models.stack_distance.model;
  requirements.io_bytes = models.io_bytes.model;
  requirements.energy_proxy = models.energy_proxy.model;
  if (models.comm_channels.empty()) {
    requirements.comm_bytes = models.bytes_sent_received.model;
  } else {
    std::vector<model::Model> channels;
    channels.reserve(models.comm_channels.size());
    for (const ChannelModel& channel : models.comm_channels) {
      channels.push_back(channel.fit.model);
    }
    requirements.comm_bytes = model::Model::sum(channels);
  }
  requirements.validate();
  return requirements;
}

}  // namespace exareq::pipeline
