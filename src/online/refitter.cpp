#include "online/refitter.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/trace.hpp"

namespace exareq::online {

IncrementalRefitter::IncrementalRefitter(serve::ModelRegistry& registry,
                                         RefitterOptions options, FitFn fit)
    : registry_(registry), options_(std::move(options)), fit_(std::move(fit)) {
  if (!fit_) {
    fit_ = [generator = options_.generator](const pipeline::CampaignData& data) {
      return pipeline::fit_requirement_bundle(data, generator);
    };
  }
}

RefitOutcome IncrementalRefitter::refit(
    const std::string& app, std::vector<pipeline::AppMeasurement> new_rows) {
  RefitOutcome outcome;
  pipeline::CampaignData snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pipeline::CampaignData& dataset = datasets_[app];
    dataset.app_name = app;
    dataset.measurements.insert(dataset.measurements.end(),
                                std::make_move_iterator(new_rows.begin()),
                                std::make_move_iterator(new_rows.end()));
    // Canonical order: any arrival permutation of the same rows yields the
    // same dataset, hence the same fit as a cold run over that dataset.
    std::sort(dataset.measurements.begin(), dataset.measurements.end(),
              pipeline::measurement_row_less);
    snapshot = dataset;
  }
  outcome.rows_total = snapshot.measurements.size();
  if (outcome.rows_total == 0) return outcome;

  if (!registry_.try_begin_fit(app)) {
    // A query-triggered fit (or another refit) holds the single-flight
    // gate; the rows stay accumulated and the caller retries.
    return outcome;
  }
  outcome.attempted = true;

  obs::ScopedSpan span("online_refit", "online");
  span.arg("rows", static_cast<double>(outcome.rows_total));

  pipeline::FittedBundle bundle;
  try {
    bundle = fit_(snapshot);
  } catch (const std::exception& error) {
    outcome.error = error.what();
    registry_.end_fit(app, false);
    return outcome;
  }
  outcome.mean_abs_relative_error = bundle.mean_abs_relative_error;

  const auto displaced = registry_.version_of(app);
  outcome.version =
      registry_.publish(std::move(bundle.requirements),
                        VersionSource::kOnlineRefit, outcome.rows_total,
                        bundle.mean_abs_relative_error);
  outcome.published = true;
  registry_.end_fit(app, true);

  if (options_.max_quality_regression > 0.0 && displaced &&
      !std::isnan(displaced->mean_abs_relative_error) &&
      !std::isnan(outcome.mean_abs_relative_error) &&
      outcome.mean_abs_relative_error >
          displaced->mean_abs_relative_error + options_.max_quality_regression) {
    outcome.rolled_back = registry_.rollback(app);
  }
  return outcome;
}

std::uint64_t IncrementalRefitter::accumulated_rows(
    const std::string& app) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = datasets_.find(app);
  return it == datasets_.end() ? 0 : it->second.measurements.size();
}

pipeline::CampaignData IncrementalRefitter::dataset(
    const std::string& app) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = datasets_.find(app);
  return it == datasets_.end() ? pipeline::CampaignData{} : it->second;
}

}  // namespace exareq::online
