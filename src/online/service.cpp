#include "online/service.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "online/ingest.hpp"
#include "serve/protocol.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

namespace exareq::online {
namespace {

std::string lowercase(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return text;
}

}  // namespace

OnlineService::OnlineService(serve::ModelRegistry& registry,
                             OnlineServiceOptions options,
                             IncrementalRefitter::FitFn fit,
                             IngestBuffer::Clock clock)
    : registry_(registry),
      options_(std::move(options)),
      buffer_(options_.policy, std::move(clock)),
      refitter_(registry, options_.refit, std::move(fit)) {
  worker_ = std::thread([this] { worker_loop(); });
}

OnlineService::~OnlineService() { stop(); }

void OnlineService::enqueue_key(const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    if (!queued_.insert(key).second) return;  // already queued
    queue_.push_back(key);
  }
  work_ready_.notify_one();
}

std::string OnlineService::handle_ingest(const serve::Request& request) {
  obs::ScopedSpan span("online_ingest", "online");
  const std::string key = lowercase(request.app);

  std::vector<pipeline::AppMeasurement> rows;
  try {
    rows = parse_ingest_payload(request.payload);
  } catch (const std::exception& error) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.batches_rejected;
    return serve::error_response("bad-request", error.what());
  }
  const std::size_t accepted = rows.size();
  span.arg("rows", static_cast<double>(accepted));

  std::size_t pending = 0;
  try {
    pending = buffer_.add(key, std::move(rows));
  } catch (const std::exception& error) {
    // Bounded memory: the buffer refused the batch; the client retries
    // after the refitter catches up.
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.batches_rejected;
    return serve::error_response("overload", error.what());
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.batches_accepted;
    stats_.rows_ingested += accepted;
  }
  obs::MetricRegistry::instance().counter("online.rows_ingested").add(accepted);

  if (options_.policy.refit_rows > 0 && pending >= options_.policy.refit_rows) {
    enqueue_key(key);
  }
  publish_gauges();

  const auto version = registry_.version_of(key);
  std::ostringstream os;
  os << "ingest accepted=" << accepted << " pending=" << pending
     << " version=" << (version ? version->version : 0);
  return serve::ok_response(os.str());
}

void OnlineService::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (queue_.empty()) {
      busy_ = false;
      idle_.notify_all();
      if (stopping_) return;
      if (options_.policy.max_staleness.count() > 0) {
        // Staleness triggers are time-driven: poll for keys that aged past
        // the threshold without reaching the row-count trigger.
        work_ready_.wait_for(lock, std::chrono::milliseconds(20));
        if (queue_.empty() && !stopping_) {
          lock.unlock();
          for (const std::string& key : buffer_.due_keys()) enqueue_key(key);
          publish_gauges();
          lock.lock();
        }
      } else {
        work_ready_.wait(lock);
      }
      continue;
    }

    const std::string key = queue_.front();
    queue_.pop_front();
    queued_.erase(key);
    busy_ = true;
    lock.unlock();

    std::vector<pipeline::AppMeasurement> rows = buffer_.take(key);
    const RefitOutcome outcome = refitter_.refit(key, std::move(rows));

    auto& metrics = obs::MetricRegistry::instance();
    lock.lock();
    if (!outcome.attempted && outcome.rows_total > 0) {
      // The registry's single-flight gate was busy (a query-triggered fit
      // of the same app is running); the rows are already accumulated in
      // the refitter, so retry shortly with an empty batch.
      if (queued_.insert(key).second) queue_.push_back(key);
      work_ready_.wait_for(lock, std::chrono::milliseconds(5));
      continue;
    }
    if (!outcome.error.empty()) {
      ++stats_.refit_failures;
      metrics.counter("online.refit_failures").add(1);
    }
    if (outcome.published) {
      ++stats_.refits;
      stats_.last_version = outcome.version;
      metrics.counter("online.refits").add(1);
    }
    if (outcome.rolled_back) {
      ++stats_.rollbacks;
      metrics.counter("online.rollbacks").add(1);
    }
    lock.unlock();
    publish_gauges();
    lock.lock();
  }
}

void OnlineService::drain() {
  for (;;) {
    for (const std::string& key : buffer_.pending_keys()) enqueue_key(key);
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] {
      return stopping_ || (queue_.empty() && !busy_);
    });
    if (stopping_ || buffer_.total_pending() == 0) return;
    // New rows arrived (or a flush raced the worker); flush again.
  }
}

void OnlineService::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && !worker_.joinable()) return;
  }
  drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void OnlineService::publish_gauges() {
  auto& metrics = obs::MetricRegistry::instance();
  metrics.gauge("online.rows_pending")
      .set(static_cast<double>(buffer_.total_pending()));
  metrics.gauge("online.staleness_seconds")
      .set(buffer_.max_staleness_seconds());
  std::lock_guard<std::mutex> lock(mutex_);
  metrics.gauge("online.model_version")
      .set(static_cast<double>(stats_.last_version));
}

OnlineStats OnlineService::stats() const {
  OnlineStats snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = stats_;
  }
  snapshot.rows_pending = buffer_.total_pending();
  snapshot.staleness_seconds = buffer_.max_staleness_seconds();
  return snapshot;
}

std::string OnlineService::status_fields() const {
  const OnlineStats snapshot = stats();
  std::ostringstream os;
  os << "online_rows=" << snapshot.rows_ingested
     << " online_pending=" << snapshot.rows_pending
     << " online_refits=" << snapshot.refits
     << " online_refit_failures=" << snapshot.refit_failures
     << " online_rollbacks=" << snapshot.rollbacks
     << " online_staleness_s=" << format_fixed(snapshot.staleness_seconds, 3)
     << " online_version=" << snapshot.last_version;
  return os.str();
}

std::string OnlineService::status_section() const {
  const OnlineStats snapshot = stats();
  TextTable table({"Layer", "Counter", "Value"});
  table.set_alignment({Align::kLeft, Align::kLeft, Align::kRight});
  const auto count = [](std::uint64_t value) { return format_count(value); };
  table.add_row({"online", "batches accepted", count(snapshot.batches_accepted)});
  table.add_row({"online", "batches rejected", count(snapshot.batches_rejected)});
  table.add_row({"online", "rows ingested", count(snapshot.rows_ingested)});
  table.add_row({"online", "rows pending", count(snapshot.rows_pending)});
  table.add_row({"online", "refits", count(snapshot.refits)});
  table.add_row({"online", "refit failures", count(snapshot.refit_failures)});
  table.add_row({"online", "rollbacks", count(snapshot.rollbacks)});
  table.add_row({"online", "staleness [s]",
                 format_fixed(snapshot.staleness_seconds, 3)});
  table.add_row({"online", "last version", count(snapshot.last_version)});
  return table.render();
}

serve::OnlineHooks OnlineService::hooks() {
  serve::OnlineHooks hooks;
  hooks.ingest = [this](const serve::Request& request) {
    return handle_ingest(request);
  };
  hooks.status_fields = [this] { return status_fields(); };
  hooks.status_section = [this] { return status_section(); };
  return hooks;
}

}  // namespace exareq::online
