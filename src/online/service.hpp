// OnlineService: the always-on half of `exareq serve`.
//
// One service owns the whole streaming loop: ingest requests (parsed and
// validated by online/ingest.hpp) are staged in an IngestBuffer, a single
// background worker picks up due keys per the refit policy and runs the
// IncrementalRefitter, and every successful refit hot-swaps the registry's
// VersionedModel slot while queries keep being answered. The server stays
// decoupled: it only sees the serve::OnlineHooks bundle (`hooks()`), which
// routes `ingest` requests here and lets `status` report the online
// counters and per-model staleness.
//
// One worker, not a pool: refits are serialized so at most one model fit
// runs off the query path at a time (the fit engine itself is serial — the
// process-wide shared pool admits one top-level client, which the server's
// fit-on-demand may already be), and a second concurrent refit would only
// compete for the same cores the query workers need. Keys queue and are
// deduplicated, so a burst of ingests costs one refit, not one per batch.
//
// Observability: counters online.rows_ingested / online.refits /
// online.refit_failures / online.rollbacks, gauges online.rows_pending /
// online.staleness_seconds / online.model_version, spans in category
// "online" (see docs/OBSERVABILITY.md).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "online/ingest_buffer.hpp"
#include "online/refitter.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"

namespace exareq::online {

struct OnlineServiceOptions {
  RefitPolicy policy;
  RefitterOptions refit;
};

/// Plain-value snapshot of the service's counters.
struct OnlineStats {
  std::uint64_t batches_accepted = 0;
  std::uint64_t batches_rejected = 0;  ///< validation or buffer-bound errors
  std::uint64_t rows_ingested = 0;
  std::uint64_t refits = 0;          ///< published new versions
  std::uint64_t refit_failures = 0;  ///< fit threw; previous version kept
  std::uint64_t rollbacks = 0;       ///< quality guard restored previous
  std::uint64_t rows_pending = 0;    ///< staged, not yet refitted
  double staleness_seconds = 0.0;    ///< oldest pending row, worst key
  std::uint64_t last_version = 0;    ///< most recently published version id
};

class OnlineService {
 public:
  /// `registry` must outlive the service. `fit`/`clock` are test seams
  /// (empty = real fitter / steady_clock).
  explicit OnlineService(serve::ModelRegistry& registry,
                         OnlineServiceOptions options = {},
                         IncrementalRefitter::FitFn fit = {},
                         IngestBuffer::Clock clock = {});
  ~OnlineService();

  OnlineService(const OnlineService&) = delete;
  OnlineService& operator=(const OnlineService&) = delete;

  /// Handles one parsed ingest request; returns the full response line
  /// (`ok ingest accepted=<rows> pending=<rows> ...` or `error ...`).
  /// Never throws — this runs on server workers.
  std::string handle_ingest(const serve::Request& request);

  /// The callback bundle to place in ServerOptions::online. The service
  /// must outlive the server using them.
  serve::OnlineHooks hooks();

  /// Blocks until every staged row has been through a refit attempt and
  /// the worker is idle — the shutdown barrier, also used by tests and the
  /// differential oracle to observe a quiescent state.
  void drain();

  /// Drains, then stops and joins the worker. Idempotent.
  void stop();

  OnlineStats stats() const;

  /// `key=value` fields appended to the protocol status line.
  std::string status_fields() const;

  /// Multi-line table appended to the `--status` report.
  std::string status_section() const;

  const OnlineServiceOptions& options() const { return options_; }

 private:
  void worker_loop();
  void enqueue_key(const std::string& key);
  void publish_gauges();

  serve::ModelRegistry& registry_;
  OnlineServiceOptions options_;
  IngestBuffer buffer_;
  IncrementalRefitter refitter_;

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::string> queue_;
  std::set<std::string> queued_;  ///< dedupe: a key is queued at most once
  bool busy_ = false;             ///< worker is mid-refit
  bool stopping_ = false;
  OnlineStats stats_;

  std::thread worker_;
};

}  // namespace exareq::online
