// IngestBuffer: bounded per-model staging area between the wire and the
// refitter.
//
// Ingested rows land here, keyed by (lower-cased) application name, until
// the refit policy declares the key due — either enough rows accumulated
// (`refit_rows`) or the oldest pending row aged past `max_staleness`. The
// buffer is strictly bounded: a key whose pending rows would exceed
// `max_pending_rows` rejects the batch with InvalidArgument (the server
// turns that into a structured `error` response) instead of growing —
// an unresponsive refitter must surface as backpressure, not as unbounded
// server memory.
//
// Time is injectable so staleness-driven refits can be tested
// deterministically (the default clock is steady_clock).
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "pipeline/measure.hpp"

namespace exareq::online {

/// When the refitter should pick a key up, and how much a key may stage.
struct RefitPolicy {
  /// Pending rows that make a key due; 0 disables the row-count trigger.
  std::size_t refit_rows = 25;
  /// Age of the oldest pending row that makes a key due; 0 disables.
  std::chrono::milliseconds max_staleness{0};
  /// Hard per-key bound; a batch that would exceed it is rejected.
  std::size_t max_pending_rows = 4096;
};

class IngestBuffer {
 public:
  using Clock = std::function<std::chrono::steady_clock::time_point()>;

  /// A default-constructed (empty) clock means steady_clock::now.
  explicit IngestBuffer(RefitPolicy policy = {}, Clock clock = {});

  IngestBuffer(const IngestBuffer&) = delete;
  IngestBuffer& operator=(const IngestBuffer&) = delete;

  /// Stages a batch under `key`; returns the key's pending row count.
  /// Throws InvalidArgument when the batch is empty or would exceed
  /// `max_pending_rows` (nothing is staged in that case).
  std::size_t add(const std::string& key,
                  std::vector<pipeline::AppMeasurement> rows);

  /// Removes and returns everything pending for `key` (empty if nothing).
  std::vector<pipeline::AppMeasurement> take(const std::string& key);

  /// Keys the policy declares due right now, sorted.
  std::vector<std::string> due_keys() const;

  /// Keys with any pending rows, due or not (drain force-flush), sorted.
  std::vector<std::string> pending_keys() const;

  std::size_t pending(const std::string& key) const;
  std::size_t total_pending() const;

  /// Age in seconds of the oldest pending row of `key` (0 when none).
  double staleness_seconds(const std::string& key) const;

  /// Largest staleness over all keys (0 when nothing is pending) — the
  /// value behind the `online.staleness_seconds` gauge.
  double max_staleness_seconds() const;

  const RefitPolicy& policy() const { return policy_; }

 private:
  struct Slot {
    std::vector<pipeline::AppMeasurement> rows;
    std::chrono::steady_clock::time_point oldest{};
  };

  bool slot_due(const Slot& slot,
                std::chrono::steady_clock::time_point now) const;

  RefitPolicy policy_;
  Clock clock_;
  mutable std::mutex mutex_;
  std::map<std::string, Slot> slots_;
};

}  // namespace exareq::online
