#include "online/ingest_buffer.hpp"

#include <algorithm>
#include <utility>

#include "support/error.hpp"

namespace exareq::online {

IngestBuffer::IngestBuffer(RefitPolicy policy, Clock clock)
    : policy_(policy),
      clock_(clock ? std::move(clock)
                   : [] { return std::chrono::steady_clock::now(); }) {
  exareq::require(policy_.max_pending_rows >= 1,
                  "IngestBuffer: max_pending_rows must be >= 1");
}

std::size_t IngestBuffer::add(const std::string& key,
                              std::vector<pipeline::AppMeasurement> rows) {
  exareq::require(!rows.empty(), "IngestBuffer: empty batch");
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[key];
  if (slot.rows.size() + rows.size() > policy_.max_pending_rows) {
    const std::size_t pending = slot.rows.size();
    if (pending == 0) slots_.erase(key);
    throw exareq::InvalidArgument(
        "ingest buffer for '" + key + "' is full (" +
        std::to_string(pending) + " rows pending, batch of " +
        std::to_string(rows.size()) + " exceeds the bound of " +
        std::to_string(policy_.max_pending_rows) + "); retry after a refit");
  }
  if (slot.rows.empty()) slot.oldest = clock_();
  slot.rows.insert(slot.rows.end(), std::make_move_iterator(rows.begin()),
                   std::make_move_iterator(rows.end()));
  return slot.rows.size();
}

std::vector<pipeline::AppMeasurement> IngestBuffer::take(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(key);
  if (it == slots_.end()) return {};
  std::vector<pipeline::AppMeasurement> rows = std::move(it->second.rows);
  slots_.erase(it);
  return rows;
}

bool IngestBuffer::slot_due(const Slot& slot,
                            std::chrono::steady_clock::time_point now) const {
  if (slot.rows.empty()) return false;
  if (policy_.refit_rows > 0 && slot.rows.size() >= policy_.refit_rows) {
    return true;
  }
  if (policy_.max_staleness.count() > 0 &&
      now - slot.oldest >= policy_.max_staleness) {
    return true;
  }
  return false;
}

std::vector<std::string> IngestBuffer::due_keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto now = clock_();
  std::vector<std::string> keys;
  for (const auto& [key, slot] : slots_) {
    if (slot_due(slot, now)) keys.push_back(key);
  }
  return keys;  // map iteration order is already sorted
}

std::vector<std::string> IngestBuffer::pending_keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  for (const auto& [key, slot] : slots_) {
    if (!slot.rows.empty()) keys.push_back(key);
  }
  return keys;
}

std::size_t IngestBuffer::pending(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(key);
  return it == slots_.end() ? 0 : it->second.rows.size();
}

std::size_t IngestBuffer::total_pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, slot] : slots_) total += slot.rows.size();
  return total;
}

double IngestBuffer::staleness_seconds(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(key);
  if (it == slots_.end() || it->second.rows.empty()) return 0.0;
  return std::chrono::duration<double>(clock_() - it->second.oldest).count();
}

double IngestBuffer::max_staleness_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto now = clock_();
  double worst = 0.0;
  for (const auto& [key, slot] : slots_) {
    if (slot.rows.empty()) continue;
    worst = std::max(worst,
                     std::chrono::duration<double>(now - slot.oldest).count());
  }
  return worst;
}

}  // namespace exareq::online
