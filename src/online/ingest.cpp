#include "online/ingest.hpp"

#include <cmath>
#include <string>

#include "pipeline/campaign.hpp"
#include "support/csv.hpp"
#include "support/error.hpp"

namespace exareq::online {
namespace {

void require_positive_integer(const exareq::CsvDocument& doc, std::size_t row,
                              std::size_t column, const char* what) {
  const double value = doc.number_at(row, column);
  exareq::require(value >= 1.0 && value == std::floor(value),
                  std::string("ingest row ") + std::to_string(row + 1) + ": " +
                      what + " must be a positive integer, got '" +
                      doc.rows()[row][column] + "'");
}

void require_non_negative(double value, std::size_t row, const char* what) {
  exareq::require(value >= 0.0, std::string("ingest row ") +
                                    std::to_string(row + 1) + ": " + what +
                                    " must be non-negative");
}

}  // namespace

std::vector<pipeline::AppMeasurement> parse_ingest_payload(
    const std::string& payload) {
  std::string csv = payload;
  for (char& c : csv) {
    if (c == ';') c = '\n';
  }
  const exareq::CsvDocument doc = exareq::CsvDocument::parse_string(csv);
  exareq::require(!doc.rows().empty(),
                  "ingest payload has a header but no measurement rows");
  // from_csv truncates fractional p/n silently; the wire path re-checks
  // them first so a malformed batch is rejected, not quietly rounded.
  const std::size_t p_col = doc.column_index("p");
  const std::size_t n_col = doc.column_index("n");
  for (std::size_t row = 0; row < doc.rows().size(); ++row) {
    require_positive_integer(doc, row, p_col, "process count p");
    require_positive_integer(doc, row, n_col, "problem size n");
  }
  pipeline::CampaignData data = pipeline::CampaignData::from_csv(doc, "ingest");
  for (std::size_t row = 0; row < data.measurements.size(); ++row) {
    const pipeline::AppMeasurement& m = data.measurements[row];
    require_non_negative(m.bytes_used, row, "bytes_used");
    require_non_negative(m.flops, row, "flops");
    require_non_negative(m.loads_stores, row, "loads_stores");
    require_non_negative(m.bytes_sent_received, row, "bytes_sent_received");
    require_non_negative(m.stack_distance, row, "stack_distance");
    require_non_negative(m.io_bytes, row, "io_bytes");
    require_non_negative(m.energy_proxy, row, "energy_proxy");
    for (const auto& [name, channel] : m.channels) {
      require_non_negative(channel.bytes, row,
                           ("channel '" + name + "' bytes").c_str());
    }
  }
  return std::move(data.measurements);
}

}  // namespace exareq::online
