// IncrementalRefitter: turns staged ingest rows into a hot-swapped model
// version, off the query path.
//
// The refitter keeps the dataset of record per application — every row ever
// accepted — and a refit is always a full fit over that dataset in
// canonical (sorted) row order. "Incremental" refers to when fits happen
// (as rows stream in, per the refit policy), not to an approximate update:
// PMNF model selection is a discrete hypothesis search, so the only way the
// served model is guaranteed to equal a cold fit on the concatenated data —
// the differential-oracle contract — is to refit from the full canonical
// dataset. Row counts are campaign-sized (tens), so a full refit is the
// same seconds-scale cost the registry's fit-on-demand already pays.
//
// A refit competes with query-triggered fit-on-demand through the
// registry's single-flight gate; when the gate is busy the refit returns
// without fitting (rows stay accumulated) and the caller retries. On fit
// failure the previous version simply stays current; on a quality
// regression beyond the configured tolerance the freshly published version
// is explicitly rolled back to the previous one.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "pipeline/serve_bridge.hpp"
#include "serve/registry.hpp"

namespace exareq::online {

struct RefitterOptions {
  /// Search space and fit configuration (threads forced to 1 by the fit).
  model::GeneratorOptions generator;
  /// Allowed increase of mean absolute relative error over the previous
  /// version before the new one is rolled back; 0 disables the guard
  /// (required for bit-exact cold-fit equivalence, hence the default).
  double max_quality_regression = 0.0;
};

/// What one refit attempt did (all fields valid regardless of outcome).
struct RefitOutcome {
  bool attempted = false;    ///< false: single-flight gate was busy, retry
  bool published = false;    ///< a new version went live (maybe rolled back)
  bool rolled_back = false;  ///< quality guard restored the previous version
  std::uint64_t version = 0;           ///< published version id (0 if none)
  std::uint64_t rows_total = 0;        ///< dataset-of-record size after append
  double mean_abs_relative_error =
      std::numeric_limits<double>::quiet_NaN();  ///< quality of the new fit
  std::string error;  ///< non-empty when the fit itself threw
};

class IncrementalRefitter {
 public:
  /// Fits a bundle from an in-memory campaign; injectable so failure and
  /// regression paths are testable without a pathological dataset. Empty =
  /// pipeline::fit_requirement_bundle with `options.generator`.
  using FitFn =
      std::function<pipeline::FittedBundle(const pipeline::CampaignData&)>;

  explicit IncrementalRefitter(serve::ModelRegistry& registry,
                               RefitterOptions options = {}, FitFn fit = {});

  IncrementalRefitter(const IncrementalRefitter&) = delete;
  IncrementalRefitter& operator=(const IncrementalRefitter&) = delete;

  /// Appends `new_rows` (possibly empty, e.g. a retry after a busy gate) to
  /// the application's dataset of record and attempts one refit over it.
  /// Never throws: fit errors are reported in the outcome.
  RefitOutcome refit(const std::string& app,
                     std::vector<pipeline::AppMeasurement> new_rows);

  /// Rows in the dataset of record (accepted, whether or not fitted yet).
  std::uint64_t accumulated_rows(const std::string& app) const;

  /// Copy of the dataset of record, in canonical order (tests/oracle).
  pipeline::CampaignData dataset(const std::string& app) const;

 private:
  serve::ModelRegistry& registry_;
  RefitterOptions options_;
  FitFn fit_;
  mutable std::mutex mutex_;
  std::map<std::string, pipeline::CampaignData> datasets_;
};

}  // namespace exareq::online
