// VersionedModel: the atomic hot-swap slot behind every registry entry.
//
// The online-requirements loop (src/online) refits models while queries are
// being answered, so the handoff between "the model a refit just produced"
// and "the model a query evaluates" must be a single atomic flip — a query
// must never observe half of an old bundle and half of a new one. The slot
// therefore stores one immutable ModelVersion snapshot behind one
// std::atomic<std::shared_ptr>: readers pay a single atomic load (no lock,
// no waiting on a writer mid-refit), writers serialize among themselves on
// a small mutex that readers never touch.
//
// Versions are epoch-counted: every publish (and every rollback, which is a
// publish of the retained previous snapshot) bumps the epoch, and the
// version id inside a snapshot equals the epoch that produced it. A reader
// holding a snapshot can therefore tell exactly which publish it observed,
// which is what the Online* concurrency suites pin: any snapshot read
// during a refit race is internally consistent and its version never
// exceeds the slot's epoch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>

#include "codesign/requirements.hpp"

namespace exareq::online {

/// How a model version entered the slot (rendered in `serve --status`).
enum class VersionSource {
  kInsert,       ///< preloaded in process (ModelRegistry::insert)
  kFile,         ///< loaded from a serialized bundle file
  kFitOnDemand,  ///< registry fit-on-demand (query-triggered)
  kOnlineRefit,  ///< incremental refit over streamed ingest rows
  kRollback,     ///< re-published previous version after a bad refit
};

std::string version_source_name(VersionSource source);

/// One immutable published version. Everything a query needs — the model
/// bundle plus its provenance — travels in one snapshot so a reader never
/// has to correlate separately-updated fields.
struct ModelVersion {
  std::uint64_t version = 0;  ///< epoch that published this snapshot
  std::shared_ptr<const codesign::AppRequirements> models;
  VersionSource source = VersionSource::kInsert;
  /// Measurement rows behind the fit (0 when unknown, e.g. loaded bundles).
  std::uint64_t rows = 0;
  /// Mean absolute relative error of the fit over its own measurements
  /// (NaN when unknown) — the quality the refit regression guard compares.
  double mean_abs_relative_error = std::numeric_limits<double>::quiet_NaN();
  std::chrono::steady_clock::time_point published_at{};
};

class VersionedModel {
 public:
  VersionedModel() = default;
  VersionedModel(const VersionedModel&) = delete;
  VersionedModel& operator=(const VersionedModel&) = delete;

  /// The current snapshot: one atomic load, lock-free with respect to
  /// concurrent publishes. Null until the first publish.
  std::shared_ptr<const ModelVersion> current() const {
    return current_.load(std::memory_order_acquire);
  }

  /// The snapshot displaced by the latest publish (for rollback); null
  /// until a second version exists.
  std::shared_ptr<const ModelVersion> previous() const;

  /// Number of publishes (including rollbacks) so far.
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Publishes a new version and retains the displaced one for rollback.
  /// Returns the new version id (== the new epoch). The models pointer must
  /// be a validated bundle; `rows`/`quality` are provenance for --status and
  /// the regression guard.
  std::uint64_t publish(std::shared_ptr<const codesign::AppRequirements> models,
                        VersionSource source, std::uint64_t rows = 0,
                        double mean_abs_relative_error =
                            std::numeric_limits<double>::quiet_NaN());

  /// Re-publishes the previous version (as a new epoch, source kRollback),
  /// so a bad hot-swap can be undone without refitting. Returns false when
  /// no previous version exists.
  bool rollback();

 private:
  std::atomic<std::shared_ptr<const ModelVersion>> current_{};
  std::atomic<std::uint64_t> epoch_{0};
  mutable std::mutex writer_mutex_;
  std::shared_ptr<const ModelVersion> previous_;
};

}  // namespace exareq::online
