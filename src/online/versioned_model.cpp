#include "online/versioned_model.hpp"

#include "support/error.hpp"

namespace exareq::online {

std::string version_source_name(VersionSource source) {
  switch (source) {
    case VersionSource::kInsert:
      return "insert";
    case VersionSource::kFile:
      return "file";
    case VersionSource::kFitOnDemand:
      return "fit-on-demand";
    case VersionSource::kOnlineRefit:
      return "online-refit";
    case VersionSource::kRollback:
      return "rollback";
  }
  return "?";
}

std::shared_ptr<const ModelVersion> VersionedModel::previous() const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return previous_;
}

std::uint64_t VersionedModel::publish(
    std::shared_ptr<const codesign::AppRequirements> models,
    VersionSource source, std::uint64_t rows, double mean_abs_relative_error) {
  exareq::require(models != nullptr,
                  "VersionedModel::publish: null model bundle");
  std::lock_guard<std::mutex> lock(writer_mutex_);
  auto snapshot = std::make_shared<ModelVersion>();
  snapshot->version = epoch_.load(std::memory_order_relaxed) + 1;
  snapshot->models = std::move(models);
  snapshot->source = source;
  snapshot->rows = rows;
  snapshot->mean_abs_relative_error = mean_abs_relative_error;
  snapshot->published_at = std::chrono::steady_clock::now();
  previous_ = current_.load(std::memory_order_relaxed);
  // The epoch is bumped before the snapshot becomes visible, so a reader
  // that loads current() and then epoch() always finds version <= epoch —
  // the consistency invariant the Online* concurrency suites assert.
  epoch_.store(snapshot->version, std::memory_order_release);
  current_.store(snapshot, std::memory_order_release);
  return snapshot->version;
}

bool VersionedModel::rollback() {
  std::shared_ptr<const ModelVersion> restore;
  {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    restore = previous_;
  }
  if (!restore) return false;
  publish(restore->models, VersionSource::kRollback, restore->rows,
          restore->mean_abs_relative_error);
  return true;
}

}  // namespace exareq::online
