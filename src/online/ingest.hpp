// Ingest payload parsing and validation: the wire side of the online
// requirements loop.
//
// An `ingest <app> <payload>` request carries a batch of measurement rows
// as a campaign CSV — the exact schema `exareq campaign --csv-out` writes
// (p, n, the five metrics, then `chan:<flags>:<name>` columns) — with
// records joined by ';' instead of newlines so a whole batch travels in one
// newline-framed protocol line. Parsing reuses the hardened CSV layer
// (duplicate headers, ragged rows, and NaN/inf cells are rejected with
// row/column positions) plus CampaignData::from_csv, then re-validates what
// from_csv is lenient about: p and n must be positive integers and every
// metric must be non-negative. Cells must not themselves contain ';'
// (channel names never do; the separator is part of the wire format, not
// of CSV).
#pragma once

#include <string>
#include <vector>

#include "pipeline/measure.hpp"

namespace exareq::online {

/// Parses and validates one ingest payload into measurement rows. Throws
/// InvalidArgument with a position-carrying message on malformed input
/// (header-only payloads, unknown/missing columns, ragged rows, NaN/inf
/// cells, non-integral or non-positive p/n, negative metrics).
std::vector<pipeline::AppMeasurement> parse_ingest_payload(
    const std::string& payload);

}  // namespace exareq::online
