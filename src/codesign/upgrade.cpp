#include "codesign/upgrade.hpp"

#include "support/error.hpp"

namespace exareq::codesign {

std::vector<UpgradeScenario> paper_upgrades() {
  return {
      {"A: Double the racks", 2.0, 1.0},
      {"B: Double the sockets", 2.0, 0.5},
      {"C: Double the memory", 1.0, 2.0},
  };
}

UpgradeWalkthrough evaluate_upgrade(const AppRequirements& app,
                                    const SystemSkeleton& baseline,
                                    const UpgradeScenario& upgrade) {
  app.validate();
  exareq::require(upgrade.process_factor > 0.0 && upgrade.memory_factor > 0.0,
                  "evaluate_upgrade: factors must be positive");

  UpgradeWalkthrough walk;
  walk.baseline = fill_memory(app, baseline);

  SystemSkeleton upgraded = baseline;
  upgraded.processes *= upgrade.process_factor;
  upgraded.memory_per_process *= upgrade.memory_factor;
  walk.upgraded = fill_memory(app, upgraded);

  const double p0 = walk.baseline.skeleton.processes;
  const double n0 = walk.baseline.problem_size_per_process;
  const double p1 = walk.upgraded.skeleton.processes;
  const double n1 = walk.upgraded.problem_size_per_process;

  walk.footprint_old = app.footprint.evaluate2(p0, n0);
  walk.footprint_new = app.footprint.evaluate2(p1, n1);

  UpgradeOutcome& outcome = walk.outcome;
  outcome.upgrade_label = upgrade.label;
  outcome.problem_size_ratio = n1 / n0;
  outcome.overall_problem_ratio = (p1 * n1) / (p0 * n0);
  outcome.computation_ratio =
      app.flops.evaluate2(p1, n1) / app.flops.evaluate2(p0, n0);
  outcome.communication_ratio =
      app.comm_bytes.evaluate2(p1, n1) / app.comm_bytes.evaluate2(p0, n0);
  outcome.memory_access_ratio =
      app.loads_stores.evaluate2(p1, n1) / app.loads_stores.evaluate2(p0, n0);
  return walk;
}

UpgradeOutcome baseline_expectation(const UpgradeScenario& upgrade) {
  // The paper's baseline column assumes requirements scale linearly with
  // the problem size per process: doubling memory doubles n and every
  // requirement; doubling sockets halves n and every requirement; doubling
  // racks keeps n and the requirements constant while doubling the overall
  // problem.
  UpgradeOutcome outcome;
  outcome.upgrade_label = upgrade.label;
  outcome.problem_size_ratio = upgrade.memory_factor;
  outcome.overall_problem_ratio = upgrade.memory_factor * upgrade.process_factor;
  outcome.computation_ratio = upgrade.memory_factor;
  outcome.communication_ratio = upgrade.memory_factor;
  outcome.memory_access_ratio = upgrade.memory_factor;
  return outcome;
}

}  // namespace exareq::codesign
