#include "codesign/sharing.hpp"

#include <cmath>

#include "support/error.hpp"

namespace exareq::codesign {

std::vector<ShareOutcome> space_share(std::span<const ShareRequest> requests,
                                      const SystemSkeleton& system) {
  exareq::require(!requests.empty(), "space_share: no applications");
  exareq::require(system.processes >= 1.0 && system.memory_per_process > 0.0,
                  "space_share: invalid system skeleton");
  double total_fraction = 0.0;
  for (const ShareRequest& request : requests) {
    exareq::require(request.app != nullptr, "space_share: null application");
    exareq::require(request.fraction > 0.0, "space_share: fraction must be > 0");
    total_fraction += request.fraction;
  }
  exareq::require(total_fraction <= 1.0 + 1e-9,
                  "space_share: fractions exceed the whole machine");

  std::vector<ShareOutcome> outcomes;
  outcomes.reserve(requests.size());
  for (const ShareRequest& request : requests) {
    request.app->validate();
    ShareOutcome outcome;
    outcome.app_name = request.app->name;
    outcome.partition.processes =
        std::max(std::floor(system.processes * request.fraction), 1.0);
    outcome.partition.memory_per_process = system.memory_per_process;
    if (fits_in_memory(*request.app, outcome.partition)) {
      const FilledSystem filled = fill_memory(*request.app, outcome.partition);
      outcome.feasible = true;
      outcome.problem_size_per_process = filled.problem_size_per_process;
      outcome.overall_problem_size = filled.overall_problem_size;
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

std::vector<ShareOutcome> space_share_pair(const AppRequirements& first,
                                           const AppRequirements& second,
                                           double first_fraction,
                                           const SystemSkeleton& system) {
  exareq::require(first_fraction > 0.0 && first_fraction < 1.0,
                  "space_share_pair: fraction must be in (0, 1)");
  const ShareRequest requests[] = {
      {&first, first_fraction},
      {&second, 1.0 - first_fraction},
  };
  return space_share(requests, system);
}

}  // namespace exareq::codesign
