// System-upgrade study (paper Sec. III-A, Tables III-V): given a baseline
// system that an application exactly exhausts, how do the largest solvable
// problem and the per-process requirements change under relative upgrades?
//
// Re-entrancy: every function here is safe to call from concurrent serve
// workers — inputs are taken by const reference, paper_upgrades() builds a
// fresh vector per call, and no mutable shared state exists in this layer.
#pragma once

#include <string>
#include <vector>

#include "codesign/requirements.hpp"

namespace exareq::codesign {

/// A relative upgrade (paper Table III).
struct UpgradeScenario {
  std::string label;       ///< "A: Double the racks"
  double process_factor;   ///< p' = factor * p
  double memory_factor;    ///< m' = factor * m
};

/// The paper's three scenarios: A doubles the racks (2p, m), B doubles the
/// sockets per node (2p, m/2), C doubles the memory (p, 2m).
std::vector<UpgradeScenario> paper_upgrades();

/// Requirement ratios new/old after an upgrade (one column block of
/// Table V).
struct UpgradeOutcome {
  std::string upgrade_label;
  double problem_size_ratio = 0.0;     ///< n'/n
  double overall_problem_ratio = 0.0;  ///< (p'n')/(pn)
  double computation_ratio = 0.0;      ///< flops ratio per process
  double communication_ratio = 0.0;    ///< comm bytes ratio per process
  double memory_access_ratio = 0.0;    ///< loads/stores ratio per process
};

/// The step-by-step walkthrough of Table IV, exposed so the bench harness
/// can print the same five steps the paper shows.
struct UpgradeWalkthrough {
  FilledSystem baseline;
  FilledSystem upgraded;
  UpgradeOutcome outcome;
  double footprint_old = 0.0;  ///< bytes at baseline (== old memory)
  double footprint_new = 0.0;  ///< bytes at upgraded (== new memory)
};

/// Evaluates one upgrade: fills the baseline memory, applies the upgrade,
/// refills, and forms the requirement ratios. Throws NumericError when the
/// application cannot fill either system (footprint exceeds memory at the
/// minimum problem size).
UpgradeWalkthrough evaluate_upgrade(const AppRequirements& app,
                                    const SystemSkeleton& baseline,
                                    const UpgradeScenario& upgrade);

/// Baseline-relative expectation (rightmost column of Table V): a linear
/// relation between requirements and problem size per process.
UpgradeOutcome baseline_expectation(const UpgradeScenario& upgrade);

}  // namespace exareq::codesign
