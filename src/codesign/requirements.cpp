#include "codesign/requirements.hpp"

#include "support/error.hpp"

namespace exareq::codesign {
namespace {

/// "(p, n)" / "(n)" / "()" — the layout a model actually has, for error
/// messages that name the offender instead of just the expectation.
std::string layout_of(const model::Model& m) {
  std::string layout = "(";
  for (std::size_t i = 0; i < m.parameter_names().size(); ++i) {
    if (i > 0) layout += ", ";
    layout += m.parameter_names()[i];
  }
  return layout + ")";
}

void check_two_parameter(const model::Model& m, const char* what) {
  exareq::require(m.parameter_names().size() == 2 &&
                      m.parameter_names()[0] == "p" && m.parameter_names()[1] == "n",
                  std::string("AppRequirements: ") + what +
                      " must be a model over (p, n), but this model is over " +
                      layout_of(m));
}

}  // namespace

void AppRequirements::validate() const {
  exareq::require(!name.empty(), "AppRequirements: name must not be empty");
  check_two_parameter(footprint, "footprint");
  check_two_parameter(flops, "flops");
  check_two_parameter(comm_bytes, "comm_bytes");
  check_two_parameter(loads_stores, "loads_stores");
  exareq::require(stack_distance.parameter_names().size() == 1,
                  "AppRequirements: stack_distance must be a model over (n), "
                  "but this model is over " +
                      layout_of(stack_distance));
  if (io_bytes.has_value()) check_two_parameter(*io_bytes, "io_bytes");
  if (energy_proxy.has_value()) {
    check_two_parameter(*energy_proxy, "energy_proxy");
  }
}

FilledSystem fill_memory(const AppRequirements& app, const SystemSkeleton& system,
                         const model::InversionOptions& options) {
  exareq::require(system.processes >= 1.0,
                  "fill_memory: system needs at least one process");
  exareq::require(system.memory_per_process > 0.0,
                  "fill_memory: memory per process must be positive");
  const double coordinate[] = {system.processes, 1.0};
  const double n = model::invert_model_in_parameter(
      app.footprint, 1, coordinate, system.memory_per_process, options);
  FilledSystem filled;
  filled.skeleton = system;
  filled.problem_size_per_process = n;
  filled.overall_problem_size = system.processes * n;
  return filled;
}

bool fits_in_memory(const AppRequirements& app, const SystemSkeleton& system) {
  const double minimum[] = {system.processes, 1.0};
  return app.footprint.evaluate(minimum) <= system.memory_per_process;
}

}  // namespace exareq::codesign
