// Space-sharing co-design (paper Sec. II-E): "our approach can map more
// than one application on a given system simultaneously... shared between
// two applications in space according to a certain ratio as long as we can
// derive our model parameters p and n for each of them."
//
// A share splits the machine's processes among applications; each partition
// keeps the full per-process memory and is filled independently.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "codesign/requirements.hpp"

namespace exareq::codesign {

/// One application's slice of the machine.
struct ShareRequest {
  const AppRequirements* app = nullptr;
  double fraction = 0.0;  ///< fraction of the machine's processes, (0, 1]
};

/// Outcome for one application under space sharing.
struct ShareOutcome {
  std::string app_name;
  SystemSkeleton partition;   ///< the processes this application received
  bool feasible = false;      ///< the minimum problem fits the partition
  double problem_size_per_process = 0.0;
  double overall_problem_size = 0.0;
};

/// Splits `system` among the requested applications and fills each
/// partition's memory. Fractions must be positive and sum to at most 1
/// (within rounding); every partition must retain at least one process.
/// Applications whose minimum problem does not fit are reported infeasible
/// rather than throwing — sharing studies compare many configurations.
std::vector<ShareOutcome> space_share(std::span<const ShareRequest> requests,
                                      const SystemSkeleton& system);

/// Convenience for the paper's two-application scenario: returns the ratio
/// split {fraction, 1 - fraction}.
std::vector<ShareOutcome> space_share_pair(const AppRequirements& first,
                                           const AppRequirements& second,
                                           double first_fraction,
                                           const SystemSkeleton& system);

}  // namespace exareq::codesign
