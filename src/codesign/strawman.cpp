#include "codesign/strawman.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace exareq::codesign {

std::vector<StrawmanSystem> paper_strawmen() {
  // Paper Table VI; memory per processor converted from the paper's
  // element counts to bytes (10 PB total / processors).
  std::vector<StrawmanSystem> systems(3);
  systems[0] = {"Massively parallel", 2e4, 2e9, 1e5, 5e6, 5e8};
  systems[1] = {"Vector", 5e4, 5e7, 1e3, 2e8, 2e10};
  systems[2] = {"Hybrid", 1e4, 1e8, 1e4, 1e8, 1e10};
  return systems;
}

std::vector<StrawmanSystem> accelerator_strawmen() {
  // GPU-style exaflop candidates: one MPI process per device, so each
  // process sees enormous flop/s but only its device's HBM.
  std::vector<StrawmanSystem> systems(2);
  systems[0] = {"Accelerated fat", 5e3, 2e4, 4.0, 8e10, 5e13};
  systems[1] = {"Accelerated lean", 1.25e4, 1e5, 8.0, 1.6e10, 1e13};
  return systems;
}

SatisfactionRates derived_rates(const StrawmanSystem& system,
                                double total_io_bytes_per_second) {
  SatisfactionRates rates;
  rates.flops_per_second = system.flops_per_processor;
  rates.network_bytes_per_second = system.flops_per_processor * 0.001;
  rates.memory_bytes_per_second = system.flops_per_processor * 0.5;
  rates.io_bytes_per_second =
      total_io_bytes_per_second > 0.0
          ? total_io_bytes_per_second / system.processors
          : 0.0;
  return rates;
}

StrawmanOutcome evaluate_strawman(const AppRequirements& app,
                                  const StrawmanSystem& system) {
  app.validate();
  StrawmanOutcome outcome;
  outcome.system_name = system.name;
  const SystemSkeleton skeleton = system.skeleton();
  if (!fits_in_memory(app, skeleton)) {
    outcome.feasible = false;
    return outcome;
  }
  const FilledSystem filled = fill_memory(app, skeleton);
  outcome.feasible = true;
  outcome.problem_size_per_process = filled.problem_size_per_process;
  outcome.max_overall_problem = filled.overall_problem_size;
  return outcome;
}

std::optional<double> wall_time_lower_bound(const AppRequirements& app,
                                            const StrawmanSystem& system,
                                            double overall_problem) {
  exareq::require(overall_problem > 0.0,
                  "wall_time_lower_bound: problem size must be positive");
  const double p = system.processors;
  const double n = std::max(overall_problem / p, 1.0);
  const double footprint = app.footprint.evaluate2(p, n);
  // Small relative slack: the common benchmark problem sits exactly on the
  // memory boundary of the tightest system, where the bisection-derived
  // maximum can overshoot by rounding.
  if (footprint > system.memory_per_processor * (1.0 + 1e-6)) {
    return std::nullopt;
  }
  const double flops = app.flops.evaluate2(p, n);
  return flops / system.flops_per_processor;
}

double common_benchmark_problem(const AppRequirements& app,
                                std::span<const StrawmanSystem> systems) {
  double smallest_max = std::numeric_limits<double>::infinity();
  bool any_feasible = false;
  for (const StrawmanSystem& system : systems) {
    const StrawmanOutcome outcome = evaluate_strawman(app, system);
    if (!outcome.feasible) continue;
    any_feasible = true;
    smallest_max = std::min(smallest_max, outcome.max_overall_problem);
  }
  if (!any_feasible) {
    throw exareq::NumericError("common_benchmark_problem: application '" +
                               app.name + "' fits none of the systems");
  }
  return smallest_max;
}

std::optional<RefinedTimeBound> refined_wall_time_bound(
    const AppRequirements& app, const StrawmanSystem& system,
    const SatisfactionRates& rates, double overall_problem) {
  exareq::require(rates.flops_per_second > 0.0 &&
                      rates.network_bytes_per_second > 0.0 &&
                      rates.memory_bytes_per_second > 0.0 &&
                      rates.bytes_per_access > 0.0,
                  "refined_wall_time_bound: rates must be positive");
  exareq::require(overall_problem > 0.0,
                  "refined_wall_time_bound: problem size must be positive");
  const double p = system.processors;
  const double n = std::max(overall_problem / p, 1.0);
  if (app.footprint.evaluate2(p, n) >
      system.memory_per_processor * (1.0 + 1e-6)) {
    return std::nullopt;
  }
  RefinedTimeBound bound;
  bound.compute_seconds = app.flops.evaluate2(p, n) / rates.flops_per_second;
  bound.network_seconds =
      app.comm_bytes.evaluate2(p, n) / rates.network_bytes_per_second;
  bound.memory_seconds = app.loads_stores.evaluate2(p, n) *
                         rates.bytes_per_access / rates.memory_bytes_per_second;
  if (rates.io_bytes_per_second > 0.0 && app.io_bytes.has_value()) {
    // A no-I/O app's model is fitted to all-zero data and can evaluate to
    // a (negative) rounding residue; time components are never negative.
    bound.io_seconds = std::max(
        0.0, app.io_bytes->evaluate2(p, n) / rates.io_bytes_per_second);
  }
  bound.bound_seconds = bound.compute_seconds;
  bound.bottleneck = "computation";
  if (bound.network_seconds > bound.bound_seconds) {
    bound.bound_seconds = bound.network_seconds;
    bound.bottleneck = "communication";
  }
  if (bound.memory_seconds > bound.bound_seconds) {
    bound.bound_seconds = bound.memory_seconds;
    bound.bottleneck = "memory access";
  }
  if (bound.io_seconds > bound.bound_seconds) {
    bound.bound_seconds = bound.io_seconds;
    bound.bottleneck = "file I/O";
  }
  return bound;
}

model::Model make_additive(const model::Model& m) {
  exareq::require(m.parameter_names().size() == 2,
                  "make_additive: need a two-parameter model");
  std::vector<model::Term> terms;
  for (const model::Term& term : m.terms()) {
    const bool couples = term.depends_on(0) && term.depends_on(1);
    if (!couples) {
      terms.push_back(term);
      continue;
    }
    // Split c * f(x0) * g(x1) into c * g(x1) + f(x0), following the paper's
    // LULESH example where the n-part keeps the coefficient and the p-part
    // gets coefficient one.
    model::Term n_part;
    model::Term p_part;
    n_part.coefficient = term.coefficient;
    p_part.coefficient = 1.0;
    for (const model::Factor& factor : term.factors) {
      if (factor.parameter == 0) {
        p_part.factors.push_back(factor);
      } else {
        n_part.factors.push_back(factor);
      }
    }
    terms.push_back(std::move(n_part));
    terms.push_back(std::move(p_part));
  }
  return model::Model(m.parameter_names(), m.constant(), std::move(terms));
}

}  // namespace exareq::codesign
