// Exascale system-design study (paper Sec. III-B, Tables VI-VII): map each
// application onto three straw-man exaflop systems, determine the maximum
// overall problem each can solve, and lower-bound the wall time of a common
// benchmark problem by FLOP-requirement / FLOP-rate.
//
// Re-entrancy: every function here is safe to call from concurrent serve
// workers — inputs are taken by const reference, paper_strawmen() builds a
// fresh vector per call, and no mutable shared state exists in this layer.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "codesign/requirements.hpp"

namespace exareq::codesign {

/// One straw-man system (paper Table VI). All systems reach 1 exaflop/s:
/// processors * flops_per_processor == 1e18.
struct StrawmanSystem {
  std::string name;
  double nodes = 0.0;
  double processors = 0.0;            ///< total (one MPI process each)
  double processors_per_node = 0.0;
  double memory_per_processor = 0.0;  ///< bytes
  double flops_per_processor = 0.0;   ///< flop/s

  double total_flops() const { return processors * flops_per_processor; }
  SystemSkeleton skeleton() const { return {processors, memory_per_processor}; }
};

/// The paper's three candidates (massively parallel / vector / hybrid),
/// 10 PB of total memory divided equally among the processors.
std::vector<StrawmanSystem> paper_strawmen();

/// Accelerator straw-men for the suite-v2 design study: GPU-style systems
/// whose processors are few, fat devices instead of many thin cores. Both
/// reach 1 exaflop/s like the paper's candidates, but with orders of
/// magnitude more flop/s — and less memory — per process:
///   Accelerated fat:  2e4 devices * 5e13 flop/s, 8e10 B each (HBM-sized;
///                     ~0.4% the byte:flop ratio of the Vector machine)
///   Accelerated lean: 1e5 devices * 1e13 flop/s, 1.6e10 B each (a leaner
///                     device with one eighth the fat system's memory:
///                     footprint-heavy apps stop fitting first here)
std::vector<StrawmanSystem> accelerator_strawmen();

/// Outcome of mapping one application onto one straw-man system.
struct StrawmanOutcome {
  std::string system_name;
  /// False when the application cannot use the full machine because even
  /// the smallest problem exceeds the per-processor memory (icoFoam in the
  /// paper).
  bool feasible = false;
  double problem_size_per_process = 0.0;
  double max_overall_problem = 0.0;
};

/// Fills the system's memory with the application (Table VII upper rows).
StrawmanOutcome evaluate_strawman(const AppRequirements& app,
                                  const StrawmanSystem& system);

/// Lower-bound wall time for solving an overall problem of size N on the
/// system using all processors: FLOP(p, N/p) / flops_per_processor
/// (perfect parallelization, no communication — paper Sec. III-B). Returns
/// nullopt when the problem does not fit in memory.
std::optional<double> wall_time_lower_bound(const AppRequirements& app,
                                            const StrawmanSystem& system,
                                            double overall_problem);

/// The largest overall problem solvable on *all* feasible systems — the
/// paper's common benchmark problem for the wall-time comparison. Throws
/// NumericError when no system can run the application.
double common_benchmark_problem(const AppRequirements& app,
                                std::span<const StrawmanSystem> systems);

/// Hardware satisfaction rates for the refined time bound (the paper's
/// suggested extension in Sec. III-B: "take other requirements such as
/// communication into account, which is feasible as long as the system
/// designer can specify the rates at which the hardware can satisfy
/// them"). Rates are per processor.
struct SatisfactionRates {
  double flops_per_second = 0.0;
  double network_bytes_per_second = 0.0;
  double memory_bytes_per_second = 0.0;
  /// Bytes moved per load/store the memory system must serve (word size).
  double bytes_per_access = 8.0;
  /// Parallel-file-system bandwidth per processor; 0 (the default) leaves
  /// I/O out of the bound, matching bundles without an io_bytes model.
  double io_bytes_per_second = 0.0;
};

/// Rates for a processor of `system` derived from byte-to-flop ratios:
/// network 0.001 B:F, memory 0.5 B:F — the figures the design-study
/// benches have always used — plus a per-processor share of an aggregate
/// file-system bandwidth (`total_io_bytes_per_second`, 0 to disable).
/// Unlike compute and memory, I/O bandwidth does not scale with the
/// processor count: the file system is a fixed shared resource, which is
/// exactly what makes checkpoint-style apps I/O-bound on big machines.
SatisfactionRates derived_rates(const StrawmanSystem& system,
                                double total_io_bytes_per_second = 0.0);

/// Per-requirement time components of the refined bound.
struct RefinedTimeBound {
  double compute_seconds = 0.0;
  double network_seconds = 0.0;
  double memory_seconds = 0.0;
  /// 0 unless the app has an io_bytes model and the rates enable I/O.
  double io_seconds = 0.0;
  /// max of the components — requirements are served concurrently at best
  /// (a roofline-style bound).
  double bound_seconds = 0.0;
  /// Which requirement dominates: "computation", "communication",
  /// "memory access", or "file I/O".
  std::string bottleneck;
};

/// Refined lower bound on the time to solve an overall problem of size N
/// using all of the system's processors: each requirement divided by its
/// satisfaction rate, combined by max. Returns nullopt when the problem
/// does not fit in memory. Rates must be positive.
std::optional<RefinedTimeBound> refined_wall_time_bound(
    const AppRequirements& app, const StrawmanSystem& system,
    const SatisfactionRates& rates, double overall_problem);

/// The paper's Sec. III-B optimization what-if: rewrite every term that
/// couples p and n multiplicatively as an additive pair (f(n)*g(p) becomes
/// c*f(n) + g(p)), as in the LULESH example
/// "#FLOP = 10^5 * n log n + p^0.25 log p".
model::Model make_additive(const model::Model& m);

}  // namespace exareq::codesign
