// Application requirement bundles — the co-design methodology's view of an
// application (paper Sec. II-E): a set of requirement models r_i(p, n) that
// can be evaluated for any system skeleton (process count + memory per
// process).
//
// Re-entrancy: a const AppRequirements may be shared across threads —
// model evaluation, fill_memory, and both co-design studies only read it.
// The serving registry (src/serve/registry.hpp) hands out shared_ptr<const
// AppRequirements> on exactly this contract.
#pragma once

#include <optional>
#include <string>

#include "model/inversion.hpp"
#include "model/model.hpp"

namespace exareq::codesign {

/// Requirement models of one application. All two-parameter models use the
/// parameter order (p, n); the stack-distance model is a function of n.
/// The io_bytes and energy_proxy channels are optional: bundles fitted
/// before suite v2 (model bundle format v1) simply do not carry them.
struct AppRequirements {
  std::string name;
  model::Model footprint;       ///< bytes used per process, r(p, n)
  model::Model flops;           ///< floating-point operations, r(p, n)
  model::Model comm_bytes;      ///< bytes sent + received, r(p, n)
  model::Model loads_stores;    ///< memory accesses, r(p, n)
  model::Model stack_distance;  ///< locality, r(n)
  std::optional<model::Model> io_bytes;      ///< file-system bytes, r(p, n)
  std::optional<model::Model> energy_proxy;  ///< derived energy [J], r(p, n)

  /// Throws InvalidArgument unless the parameter layouts are as documented
  /// (absent optional channels are valid).
  void validate() const;
};

/// The "system skeleton" of Sec. II-E: a system characterized initially
/// only by the process count it runs and the memory available per process.
struct SystemSkeleton {
  double processes = 0.0;
  double memory_per_process = 0.0;  ///< bytes

  friend bool operator==(const SystemSkeleton&, const SystemSkeleton&) = default;
};

/// Result of filling the memory of a skeleton ("inflating the input
/// problem until it completely occupies the available memory", Sec. II-E).
struct FilledSystem {
  SystemSkeleton skeleton;
  double problem_size_per_process = 0.0;  ///< n
  double overall_problem_size = 0.0;      ///< p * n
};

/// Inverts the footprint model at fixed p to find the largest per-process
/// problem size that fits in memory (paper Table IV, step IV). Throws
/// NumericError when even the smallest problem does not fit (the icoFoam
/// situation in Table VII) or the footprint never reaches the memory bound.
FilledSystem fill_memory(const AppRequirements& app, const SystemSkeleton& system,
                         const model::InversionOptions& options = {});

/// True if the application can run on the skeleton at all, i.e. the
/// minimum-size problem fits into the per-process memory.
bool fits_in_memory(const AppRequirements& app, const SystemSkeleton& system);

}  // namespace exareq::codesign
