// Binary indexed tree (Fenwick tree) over 0/1 marks, used by the Olken
// stack-distance algorithm to count "most recent accesses" between two
// trace positions in O(log T).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace exareq::memtrace {

/// Fenwick tree over boolean marks indexed by trace position. Grows
/// automatically: each doubling rebuilds in O(capacity), so growth costs
/// amortized O(1) per set() while queries and updates stay O(log n).
class FenwickTree {
 public:
  explicit FenwickTree(std::size_t initial_capacity = 1024);

  /// Sets the mark at `position` (must currently be unset).
  void set(std::size_t position);

  /// Clears the mark at `position` (must currently be set).
  void clear(std::size_t position);

  bool is_set(std::size_t position) const;

  /// Number of set marks in [0, position] (inclusive). Positions beyond the
  /// current capacity count as unset.
  std::size_t prefix_count(std::size_t position) const;

  /// Number of set marks in [first, last] (inclusive); 0 if first > last.
  std::size_t range_count(std::size_t first, std::size_t last) const;

  /// Total number of set marks.
  std::size_t total() const { return total_; }

  /// Current position capacity (marks at or beyond it require growth).
  std::size_t capacity() const { return marks_.size(); }

  /// Replaces the whole mark set and rebuilds the tree in O(capacity).
  /// Used by the streaming distance analyzer to renumber live marks.
  void assign(std::vector<std::uint8_t> marks);

  /// Bytes held by the tree and mark arrays (capacity accounting).
  std::size_t memory_bytes() const {
    return tree_.capacity() * sizeof(std::int32_t) +
           marks_.capacity() * sizeof(std::uint8_t);
  }

 private:
  void ensure_capacity(std::size_t position);
  void rebuild_tree();
  void add(std::size_t position, int delta);

  std::vector<std::int32_t> tree_;    // 1-based Fenwick array
  std::vector<std::uint8_t> marks_;   // current mark per position
  std::size_t total_ = 0;
};

}  // namespace exareq::memtrace
