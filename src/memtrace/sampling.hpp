// Burst sampling of access traces (Threadspotter's measurement strategy,
// paper Sec. II-B): the execution is sampled "in short bursts where all
// memory accesses are documented, followed by periods during which no
// measurements are gathered", keeping runtime dilation near a factor of
// eight. Distances are exact (computed over the full stream); sampling
// selects which accesses contribute to the reported statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace exareq::memtrace {

/// Deterministic duty-cycled sampler over trace positions.
struct SamplerConfig {
  /// Accesses documented per burst.
  std::uint64_t burst_length = 64;
  /// Distance from one burst start to the next; burst_length == period
  /// means "sample everything".
  std::uint64_t period = 512;
  /// Position of the first burst start.
  std::uint64_t offset = 0;

  /// True if the access at `position` falls inside a burst.
  bool sampled(std::uint64_t position) const {
    exareq::require(burst_length >= 1 && period >= burst_length,
                    "SamplerConfig: need 1 <= burst_length <= period");
    if (position < offset) return false;
    return (position - offset) % period < burst_length;
  }

  /// Fraction of accesses documented (burst_length / period).
  double duty_cycle() const {
    return static_cast<double>(burst_length) / static_cast<double>(period);
  }

  /// A configuration that samples every access (exact mode).
  static SamplerConfig exact() { return {1, 1, 0}; }
};

/// All sampled positions below trace_length, in increasing order.
std::vector<std::uint64_t> sampled_positions(const SamplerConfig& config,
                                             std::uint64_t trace_length);

}  // namespace exareq::memtrace
