#include "memtrace/compressed_trace.hpp"

#include <cstddef>

#include "support/error.hpp"

namespace exareq::memtrace {

namespace {

// "EXCT" little-endian — compressed-trace container magic.
constexpr std::uint32_t kMagic = 0x54435845u;
constexpr std::uint32_t kFormatVersion = 1;

// Run headers pack the group id into their low 3 bits; this code means the
// real group id follows as its own varint.
constexpr std::uint64_t kGroupEscape = 7;

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t zigzag_encode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t zigzag_decode(std::uint64_t value) {
  return static_cast<std::int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::size_t varint_size(std::uint64_t value) {
  std::size_t size = 1;
  while (value >= 0x80) {
    ++size;
    value >>= 7;
  }
  return size;
}

// Encodes one completed run. The header varint packs
// (length << 4) | (rle ? 8 : 0) | group code; the payload is either one
// zigzag varint per delta or (count, zigzag delta) pairs over the maximal
// constant-delta segments, whichever is smaller.
void encode_run(std::vector<std::uint8_t>& out, GroupId group,
                const std::vector<std::int64_t>& deltas) {
  std::size_t raw_size = 0;
  std::size_t rle_size = 0;
  for (std::size_t i = 0; i < deltas.size();) {
    std::size_t j = i + 1;
    while (j < deltas.size() && deltas[j] == deltas[i]) ++j;
    raw_size += (j - i) * varint_size(zigzag_encode(deltas[i]));
    rle_size += varint_size(j - i) + varint_size(zigzag_encode(deltas[i]));
    i = j;
  }
  const bool rle = rle_size < raw_size;
  const std::uint64_t code = group < kGroupEscape ? group : kGroupEscape;
  put_varint(out, (static_cast<std::uint64_t>(deltas.size()) << 4) |
                      (rle ? 8u : 0u) | code);
  if (code == kGroupEscape) put_varint(out, group);
  for (std::size_t i = 0; i < deltas.size();) {
    std::size_t j = i + 1;
    while (j < deltas.size() && deltas[j] == deltas[i]) ++j;
    if (rle) {
      put_varint(out, j - i);
      put_varint(out, zigzag_encode(deltas[i]));
    } else {
      for (std::size_t k = i; k < j; ++k) {
        put_varint(out, zigzag_encode(deltas[i]));
      }
    }
    i = j;
  }
}

void put_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

// Bounds-checked little-endian reader over serialized bytes.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(bytes_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 4;
    return value;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(bytes_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 8;
    return value;
  }

  std::uint64_t varint() {
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      need(1);
      const std::uint8_t byte = static_cast<unsigned char>(bytes_[pos_++]);
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return value;
    }
    throw exareq::Error("compressed trace: varint longer than 64 bits");
  }

  std::string_view view(std::size_t count) {
    need(count);
    std::string_view result = bytes_.substr(pos_, count);
    pos_ += count;
    return result;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  void need(std::size_t count) const {
    if (bytes_.size() - pos_ < count) {
      throw exareq::Error("compressed trace: truncated input");
    }
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// Decodes `access_count` accesses worth of runs, applying each delta to the
// per-group cursor in `last` and handing every reconstructed access to
// `emit(group, address)`. Throws exareq::Error on any structural damage.
template <typename Emit>
void walk_runs(Reader& reader, std::uint64_t access_count,
               std::size_t group_count, std::vector<std::uint64_t>& last,
               Emit&& emit) {
  std::uint64_t decoded = 0;
  while (decoded < access_count) {
    const std::uint64_t header = reader.varint();
    std::uint64_t group = header & 7;
    const bool rle = (header & 8) != 0;
    const std::uint64_t length = header >> 4;
    if (group == kGroupEscape) group = reader.varint();
    if (group >= group_count) {
      throw exareq::Error("compressed trace: run references group " +
                          std::to_string(group) + " of " +
                          std::to_string(group_count));
    }
    if (length == 0 || length > access_count - decoded) {
      throw exareq::Error("compressed trace: run length " +
                          std::to_string(length) + " outside the " +
                          std::to_string(access_count - decoded) +
                          " accesses remaining");
    }
    const GroupId id = static_cast<GroupId>(group);
    if (rle) {
      std::uint64_t seen = 0;
      while (seen < length) {
        const std::uint64_t count = reader.varint();
        if (count == 0 || count > length - seen) {
          throw exareq::Error("compressed trace: constant-delta segment of " +
                              std::to_string(count) + " overruns its run");
        }
        const std::int64_t delta = zigzag_decode(reader.varint());
        for (std::uint64_t i = 0; i < count; ++i) {
          last[group] += static_cast<std::uint64_t>(delta);
          emit(id, last[group]);
        }
        seen += count;
      }
    } else {
      for (std::uint64_t i = 0; i < length; ++i) {
        last[group] += static_cast<std::uint64_t>(zigzag_decode(reader.varint()));
        emit(id, last[group]);
      }
    }
    decoded += length;
  }
}

}  // namespace

GroupId CompressedTrace::register_group(const std::string& name) {
  for (std::size_t i = 0; i < group_names_.size(); ++i) {
    if (group_names_[i] == name) return static_cast<GroupId>(i);
  }
  group_names_.push_back(name);
  last_address_.push_back(0);
  return static_cast<GroupId>(group_names_.size() - 1);
}

const std::string& CompressedTrace::group_name(GroupId group) const {
  exareq::require(group < group_names_.size(),
                  "CompressedTrace: unknown group id");
  return group_names_[group];
}

void CompressedTrace::flush_run() {
  if (run_deltas_.empty()) return;
  encode_run(bytes_, run_group_, run_deltas_);
  run_deltas_.clear();
}

void CompressedTrace::record(std::uint64_t address, GroupId group) {
  exareq::require(group < group_names_.size(),
                  "CompressedTrace: record() with unregistered group");
  if (!run_deltas_.empty() &&
      (group != run_group_ || run_deltas_.size() >= kMaxRunLength)) {
    flush_run();
  }
  run_group_ = group;
  run_deltas_.push_back(
      static_cast<std::int64_t>(address - last_address_[group]));
  last_address_[group] = address;
  ++access_count_;
}

std::size_t CompressedTrace::compressed_bytes() const {
  std::size_t total = bytes_.size();
  if (!run_deltas_.empty()) {
    std::vector<std::uint8_t> tail;
    encode_run(tail, run_group_, run_deltas_);
    total += tail.size();
  }
  return total;
}

void CompressedTrace::replay(TraceSink& sink) const {
  for (const std::string& name : group_names_) {
    sink.register_group(name);
  }
  std::vector<std::uint64_t> last(group_names_.size(), 0);
  Reader reader(std::string_view(
      reinterpret_cast<const char*>(bytes_.data()), bytes_.size()));
  walk_runs(reader, access_count_ - run_deltas_.size(), group_names_.size(),
            last, [&](GroupId group, std::uint64_t address) {
              sink.record(address, group);
            });
  for (const std::int64_t delta : run_deltas_) {
    last[run_group_] += static_cast<std::uint64_t>(delta);
    sink.record(last[run_group_], run_group_);
  }
}

std::string CompressedTrace::serialize() const {
  std::vector<std::uint8_t> tail;
  if (!run_deltas_.empty()) encode_run(tail, run_group_, run_deltas_);
  std::string out;
  out.reserve(32 + bytes_.size() + tail.size());
  put_u32(out, kMagic);
  put_u32(out, kFormatVersion);
  put_u32(out, static_cast<std::uint32_t>(group_names_.size()));
  for (const std::string& name : group_names_) {
    put_u32(out, static_cast<std::uint32_t>(name.size()));
    out.append(name);
  }
  put_u64(out, access_count_);
  put_u64(out, bytes_.size() + tail.size());
  out.append(reinterpret_cast<const char*>(bytes_.data()), bytes_.size());
  out.append(reinterpret_cast<const char*>(tail.data()), tail.size());
  put_u64(out, fnv1a64(out));
  return out;
}

CompressedTrace CompressedTrace::deserialize(std::string_view bytes) {
  if (bytes.size() < 8) {
    throw exareq::Error("compressed trace: input shorter than its checksum");
  }
  const std::string_view body = bytes.substr(0, bytes.size() - 8);
  Reader checksum_reader(bytes.substr(bytes.size() - 8));
  if (checksum_reader.u64() != fnv1a64(body)) {
    throw exareq::Error("compressed trace: checksum mismatch");
  }

  Reader reader(body);
  if (reader.u32() != kMagic) {
    throw exareq::Error("compressed trace: bad magic");
  }
  const std::uint32_t version = reader.u32();
  if (version != kFormatVersion) {
    throw exareq::Error("compressed trace: unsupported version " +
                        std::to_string(version));
  }
  CompressedTrace trace;
  const std::uint32_t groups = reader.u32();
  for (std::uint32_t i = 0; i < groups; ++i) {
    const std::uint32_t len = reader.u32();
    if (len > reader.remaining()) {
      throw exareq::Error("compressed trace: truncated group name");
    }
    trace.register_group(std::string(reader.view(len)));
  }
  if (trace.group_names_.size() != groups) {
    throw exareq::Error("compressed trace: duplicate group names");
  }
  trace.access_count_ = reader.u64();
  const std::uint64_t payload_bytes = reader.u64();
  if (payload_bytes != reader.remaining()) {
    throw exareq::Error("compressed trace: payload length mismatch");
  }
  const std::string_view payload = reader.view(payload_bytes);
  trace.bytes_.assign(payload.begin(), payload.end());

  // Walk the payload once: every run must name a registered group, run
  // lengths must sum to the access count, and the stream must end exactly
  // at the payload boundary, so a successfully deserialized trace can
  // always replay.
  Reader stream(payload);
  std::vector<std::uint64_t> last(trace.group_names_.size(), 0);
  walk_runs(stream, trace.access_count_, trace.group_names_.size(), last,
            [&](GroupId group, std::uint64_t address) {
              trace.last_address_[group] = address;
            });
  if (stream.remaining() != 0) {
    throw exareq::Error("compressed trace: trailing bytes after last access");
  }
  return trace;
}

}  // namespace exareq::memtrace
