#include "memtrace/fenwick.hpp"

#include <utility>

#include "support/error.hpp"

namespace exareq::memtrace {

FenwickTree::FenwickTree(std::size_t initial_capacity) {
  std::size_t capacity = 16;
  while (capacity < initial_capacity) capacity *= 2;
  tree_.assign(capacity + 1, 0);
  marks_.assign(capacity, 0);
}

void FenwickTree::rebuild_tree() {
  // Linear-time Fenwick construction: seed each node with its own mark,
  // then push every node's partial sum into its parent once.
  const std::size_t capacity = marks_.size();
  tree_.assign(capacity + 1, 0);
  for (std::size_t i = 1; i <= capacity; ++i) {
    tree_[i] += marks_[i - 1];
    const std::size_t parent = i + (i & (~i + 1));
    if (parent <= capacity) tree_[parent] += tree_[i];
  }
}

void FenwickTree::ensure_capacity(std::size_t position) {
  if (position < marks_.size()) return;
  std::size_t capacity = marks_.size();
  while (capacity <= position) capacity *= 2;
  // Rebuild the tree over the widened mark array in O(capacity); with
  // doubling this costs amortized O(1) per appended position.
  marks_.resize(capacity, 0);
  rebuild_tree();
}

void FenwickTree::assign(std::vector<std::uint8_t> marks) {
  marks_ = std::move(marks);
  if (marks_.size() < 16) marks_.resize(16, 0);
  total_ = 0;
  for (const std::uint8_t mark : marks_) total_ += mark != 0 ? 1 : 0;
  rebuild_tree();
}

void FenwickTree::add(std::size_t position, int delta) {
  for (std::size_t i = position + 1; i <= marks_.size(); i += i & (~i + 1)) {
    tree_[i] += delta;
  }
}

void FenwickTree::set(std::size_t position) {
  ensure_capacity(position);
  exareq::require(!marks_[position], "FenwickTree::set: mark already set");
  marks_[position] = 1;
  add(position, +1);
  ++total_;
}

void FenwickTree::clear(std::size_t position) {
  exareq::require(position < marks_.size() && marks_[position],
                  "FenwickTree::clear: mark not set");
  marks_[position] = 0;
  add(position, -1);
  --total_;
}

bool FenwickTree::is_set(std::size_t position) const {
  return position < marks_.size() && marks_[position] != 0;
}

std::size_t FenwickTree::prefix_count(std::size_t position) const {
  std::size_t limit = position + 1;
  if (limit > marks_.size()) limit = marks_.size();
  std::int64_t count = 0;
  for (std::size_t i = limit; i > 0; i -= i & (~i + 1)) {
    count += tree_[i];
  }
  return static_cast<std::size_t>(count);
}

std::size_t FenwickTree::range_count(std::size_t first, std::size_t last) const {
  if (first > last) return 0;
  const std::size_t upto_last = prefix_count(last);
  const std::size_t before_first = first == 0 ? 0 : prefix_count(first - 1);
  return upto_last - before_first;
}

}  // namespace exareq::memtrace
