// Exact reuse- and stack-distance computation (paper Sec. II-A, Fig. 1).
//
// Definitions used throughout this library, matching the paper:
//  * reuse distance of an access = number of accesses that occur strictly
//    between this access and the previous access to the same address;
//  * stack distance = number of accesses to *unique other* locations that
//    occur strictly between the two accesses (i.e. the count of distinct
//    addresses touched in between).
// The first access to an address has neither distance (cold access).
//
// Stack distances are computed with Olken's algorithm: a Fenwick tree marks
// the trace position of the most recent access to each live address, so the
// number of distinct addresses between two positions is a range count —
// O(log n) per access instead of the naive O(T).
//
// The analyzer's memory is O(distinct addresses), not O(trace length):
// every access consumes one mark slot, and when the slot space fills up
// while at most half of it is live, the live marks are renumbered onto a
// dense prefix (order-preserving, so all subsequent range counts — and
// therefore all stack distances — are unchanged). Reuse distances are
// computed from a separate monotone stream position that compaction never
// touches. Each compaction frees at least half the slots, so its O(capacity)
// cost is amortized O(1) per access.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "memtrace/fenwick.hpp"
#include "memtrace/trace.hpp"

namespace exareq::memtrace {

/// Distances of one access; both unset for the first (cold) access to an
/// address.
struct AccessDistances {
  bool cold = true;
  std::uint64_t reuse_distance = 0;
  std::uint64_t stack_distance = 0;
};

/// Streaming exact distance analyzer (Olken with mark compaction).
class DistanceAnalyzer {
 public:
  explicit DistanceAnalyzer(std::size_t expected_distinct_addresses = 1024);

  /// Processes the next access of the stream and returns its distances.
  AccessDistances observe(std::uint64_t address) {
    return observe(address, true);
  }

  /// Burst-aware variant: with `compute_stack_distance == false` the marks
  /// and last-access bookkeeping are maintained exactly but the O(log n)
  /// Fenwick range query — the dominant per-access cost — is skipped and
  /// the returned stack_distance is 0. Cold flags and reuse distances are
  /// always exact. Distances reported with `true` are identical whether or
  /// not other positions were queried.
  AccessDistances observe(std::uint64_t address, bool compute_stack_distance);

  /// Number of accesses observed so far.
  std::size_t position() const { return position_; }

  /// Number of distinct addresses observed so far.
  std::size_t distinct_addresses() const { return last_access_.size(); }

  /// Bytes held by the analyzer's mark and last-access structures;
  /// proportional to the distinct-address count, not the stream length.
  std::size_t memory_bytes() const;

 private:
  struct Slot {
    std::size_t position = 0;  ///< stream position of the last access
    std::size_t mark = 0;      ///< mark slot of the last access
  };

  std::size_t allocate_mark();
  void compact();

  FenwickTree marks_;
  std::unordered_map<std::uint64_t, Slot> last_access_;
  std::size_t position_ = 0;   ///< monotone stream position (never compacted)
  std::size_t next_mark_ = 0;  ///< next free mark slot
};

/// Distances of every access of a trace (Olken, O(T log n) time).
std::vector<AccessDistances> compute_distances(const AccessTrace& trace);

/// Reference implementation, O(T^2); used to validate compute_distances in
/// tests and the ablation bench.
std::vector<AccessDistances> compute_distances_reference(const AccessTrace& trace);

}  // namespace exareq::memtrace
