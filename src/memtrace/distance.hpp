// Exact reuse- and stack-distance computation (paper Sec. II-A, Fig. 1).
//
// Definitions used throughout this library, matching the paper:
//  * reuse distance of an access = number of accesses that occur strictly
//    between this access and the previous access to the same address;
//  * stack distance = number of accesses to *unique other* locations that
//    occur strictly between the two accesses (i.e. the count of distinct
//    addresses touched in between).
// The first access to an address has neither distance (cold access).
//
// Stack distances are computed with Olken's algorithm: a Fenwick tree marks
// the trace position of the most recent access to each live address, so the
// number of distinct addresses between two positions is a range count —
// O(log T) per access instead of the naive O(T).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "memtrace/fenwick.hpp"
#include "memtrace/trace.hpp"

namespace exareq::memtrace {

/// Distances of one access; both unset for the first (cold) access to an
/// address.
struct AccessDistances {
  bool cold = true;
  std::uint64_t reuse_distance = 0;
  std::uint64_t stack_distance = 0;
};

/// Streaming exact distance analyzer (Olken).
class DistanceAnalyzer {
 public:
  explicit DistanceAnalyzer(std::size_t expected_trace_length = 1024);

  /// Processes the next access of the stream and returns its distances.
  AccessDistances observe(std::uint64_t address);

  /// Number of accesses observed so far.
  std::size_t position() const { return position_; }

  /// Number of distinct addresses observed so far.
  std::size_t distinct_addresses() const { return last_access_.size(); }

 private:
  FenwickTree marks_;
  std::unordered_map<std::uint64_t, std::size_t> last_access_;
  std::size_t position_ = 0;
};

/// Distances of every access of a trace (Olken, O(T log T)).
std::vector<AccessDistances> compute_distances(const AccessTrace& trace);

/// Reference implementation, O(T^2); used to validate compute_distances in
/// tests and the ablation bench.
std::vector<AccessDistances> compute_distances_reference(const AccessTrace& trace);

}  // namespace exareq::memtrace
