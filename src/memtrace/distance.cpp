#include "memtrace/distance.hpp"

#include <limits>
#include <unordered_set>

namespace exareq::memtrace {

namespace {
constexpr std::size_t kUnmapped = std::numeric_limits<std::size_t>::max();
}  // namespace

DistanceAnalyzer::DistanceAnalyzer(std::size_t expected_distinct_addresses)
    : marks_(expected_distinct_addresses) {
  last_access_.reserve(expected_distinct_addresses / 4 + 16);
}

std::size_t DistanceAnalyzer::allocate_mark() {
  if (next_mark_ == marks_.capacity() &&
      marks_.total() * 2 <= marks_.capacity()) {
    compact();
  }
  // Otherwise the Fenwick tree grows (doubling, O(capacity) rebuild) when
  // the returned slot is set — which only happens while more than half the
  // slots are live, so capacity stays within 4x the live-address peak.
  return next_mark_++;
}

void DistanceAnalyzer::compact() {
  // Renumber the live marks onto a dense prefix, preserving their order.
  const std::size_t capacity = marks_.capacity();
  std::vector<std::size_t> renumbered(capacity, kUnmapped);
  std::size_t next = 0;
  for (std::size_t mark = 0; mark < capacity; ++mark) {
    if (marks_.is_set(mark)) renumbered[mark] = next++;
  }
  for (auto& [address, slot] : last_access_) {
    // An entry whose mark was already cleared this step (the in-flight
    // access) keeps its stale value; the caller overwrites it immediately.
    if (slot.mark < capacity && renumbered[slot.mark] != kUnmapped) {
      slot.mark = renumbered[slot.mark];
    }
  }
  std::vector<std::uint8_t> compacted(capacity, 0);
  std::fill(compacted.begin(), compacted.begin() + static_cast<std::ptrdiff_t>(next), 1);
  marks_.assign(std::move(compacted));
  next_mark_ = next;
}

AccessDistances DistanceAnalyzer::observe(std::uint64_t address,
                                          bool compute_stack_distance) {
  AccessDistances distances;
  const std::size_t now = position_++;
  const auto it = last_access_.find(address);
  if (it != last_access_.end()) {
    const Slot previous = it->second;
    distances.cold = false;
    distances.reuse_distance = now - previous.position - 1;
    if (compute_stack_distance) {
      // Every distinct address accessed strictly between the previous
      // access and now has its most-recent-access mark strictly between
      // the previous mark and the next free slot; the mark at
      // previous.mark is this address itself and is excluded.
      distances.stack_distance =
          next_mark_ > previous.mark + 1
              ? marks_.range_count(previous.mark + 1, next_mark_ - 1)
              : 0;
    }
    marks_.clear(previous.mark);
    it->second.position = now;
    it->second.mark = allocate_mark();
    marks_.set(it->second.mark);
  } else {
    const std::size_t mark = allocate_mark();
    last_access_.emplace(address, Slot{now, mark});
    marks_.set(mark);
  }
  return distances;
}

std::size_t DistanceAnalyzer::memory_bytes() const {
  return marks_.memory_bytes() +
         last_access_.bucket_count() * sizeof(void*) +
         last_access_.size() * (sizeof(std::uint64_t) + sizeof(Slot) +
                                2 * sizeof(void*));
}

std::vector<AccessDistances> compute_distances(const AccessTrace& trace) {
  DistanceAnalyzer analyzer(trace.size());
  std::vector<AccessDistances> result;
  result.reserve(trace.size());
  for (const Access& access : trace.accesses()) {
    result.push_back(analyzer.observe(access.address));
  }
  return result;
}

std::vector<AccessDistances> compute_distances_reference(const AccessTrace& trace) {
  const auto accesses = trace.accesses();
  std::vector<AccessDistances> result(accesses.size());
  std::unordered_map<std::uint64_t, std::size_t> last_access;
  for (std::size_t now = 0; now < accesses.size(); ++now) {
    const auto it = last_access.find(accesses[now].address);
    if (it != last_access.end()) {
      const std::size_t previous = it->second;
      result[now].cold = false;
      result[now].reuse_distance = now - previous - 1;
      std::unordered_set<std::uint64_t> unique;
      for (std::size_t k = previous + 1; k < now; ++k) {
        unique.insert(accesses[k].address);
      }
      result[now].stack_distance = unique.size();
      it->second = now;
    } else {
      last_access.emplace(accesses[now].address, now);
    }
  }
  return result;
}

}  // namespace exareq::memtrace
