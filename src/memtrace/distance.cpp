#include "memtrace/distance.hpp"

#include <unordered_set>

namespace exareq::memtrace {

DistanceAnalyzer::DistanceAnalyzer(std::size_t expected_trace_length)
    : marks_(expected_trace_length) {
  last_access_.reserve(expected_trace_length / 4 + 16);
}

AccessDistances DistanceAnalyzer::observe(std::uint64_t address) {
  AccessDistances distances;
  const std::size_t now = position_++;
  const auto it = last_access_.find(address);
  if (it != last_access_.end()) {
    const std::size_t previous = it->second;
    distances.cold = false;
    distances.reuse_distance = now - previous - 1;
    // Every distinct address accessed strictly between `previous` and `now`
    // has its most-recent-access mark inside (previous, now); the mark at
    // `previous` is this address itself and is excluded.
    distances.stack_distance =
        now > previous + 1 ? marks_.range_count(previous + 1, now - 1) : 0;
    marks_.clear(previous);
    it->second = now;
  } else {
    last_access_.emplace(address, now);
  }
  marks_.set(now);
  return distances;
}

std::vector<AccessDistances> compute_distances(const AccessTrace& trace) {
  DistanceAnalyzer analyzer(trace.size());
  std::vector<AccessDistances> result;
  result.reserve(trace.size());
  for (const Access& access : trace.accesses()) {
    result.push_back(analyzer.observe(access.address));
  }
  return result;
}

std::vector<AccessDistances> compute_distances_reference(const AccessTrace& trace) {
  const auto accesses = trace.accesses();
  std::vector<AccessDistances> result(accesses.size());
  std::unordered_map<std::uint64_t, std::size_t> last_access;
  for (std::size_t now = 0; now < accesses.size(); ++now) {
    const auto it = last_access.find(accesses[now].address);
    if (it != last_access.end()) {
      const std::size_t previous = it->second;
      result[now].cold = false;
      result[now].reuse_distance = now - previous - 1;
      std::unordered_set<std::uint64_t> unique;
      for (std::size_t k = previous + 1; k < now; ++k) {
        unique.insert(accesses[k].address);
      }
      result[now].stack_distance = unique.size();
      it->second = now;
    } else {
      last_access.emplace(accesses[now].address, now);
    }
  }
  return result;
}

}  // namespace exareq::memtrace
