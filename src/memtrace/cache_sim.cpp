#include "memtrace/cache_sim.hpp"

#include "support/error.hpp"

namespace exareq::memtrace {

CacheSim::CacheSim(const CacheConfig& config) : config_(config) {
  exareq::require(config.sets >= 1 && config.ways >= 1 && config.line_size >= 1,
                  "CacheSim: sets, ways and line_size must be >= 1");
  ways_.resize(config.sets * config.ways);
}

bool CacheSim::access(std::uint64_t address) {
  ++clock_;
  const std::uint64_t line = address / config_.line_size;
  const std::uint64_t set = line % config_.sets;
  const std::uint64_t tag = line / config_.sets;
  Way* begin = ways_.data() + set * config_.ways;
  Way* end = begin + config_.ways;

  Way* victim = begin;
  for (Way* way = begin; way != end; ++way) {
    if (way->valid && way->tag == tag) {
      way->last_use = clock_;
      return true;
    }
    // Track the LRU (or first invalid) way as the replacement victim.
    if (!way->valid) {
      if (victim->valid) victim = way;
    } else if (victim->valid && way->last_use < victim->last_use) {
      victim = way;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = clock_;
  return false;
}

std::uint64_t CacheSim::resident_lines() const {
  std::uint64_t count = 0;
  for (const Way& way : ways_) {
    if (way.valid) ++count;
  }
  return count;
}

CacheSimResult simulate_cache(const AccessTrace& trace,
                              const CacheConfig& config) {
  CacheSim cache(config);
  CacheSimResult result;
  result.groups.resize(trace.group_count());
  for (GroupId g = 0; g < trace.group_count(); ++g) {
    result.groups[g].group = g;
    result.groups[g].name = trace.group_name(g);
  }
  for (const Access& access : trace.accesses()) {
    const bool hit = cache.access(access.address);
    auto& group = result.groups[access.group];
    if (hit) {
      ++group.hits;
      ++result.hits;
    } else {
      ++group.misses;
      ++result.misses;
    }
  }
  return result;
}

}  // namespace exareq::memtrace
