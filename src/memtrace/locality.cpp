#include "memtrace/locality.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/stats.hpp"

namespace exareq::memtrace {

LocalityReport analyze_locality(const AccessTrace& trace,
                                const LocalityConfig& config,
                                double total_memory_accesses) {
  exareq::require(total_memory_accesses >= 0.0,
                  "analyze_locality: negative access count");
  LocalityReport report;
  report.trace_length = trace.size();

  const std::size_t group_count = trace.group_count();
  std::vector<std::vector<double>> stack_samples(group_count);
  std::vector<std::vector<double>> reuse_samples(group_count);
  std::vector<std::size_t> sampled_accesses(group_count, 0);

  // Exact distances over the full stream; the sampler only selects which
  // accesses are *reported*, mirroring Threadspotter's burst strategy.
  DistanceAnalyzer analyzer(trace.size());
  std::size_t position = 0;
  for (const Access& access : trace.accesses()) {
    const AccessDistances distances = analyzer.observe(access.address);
    if (config.sampler.sampled(position)) {
      ++sampled_accesses[access.group];
      ++report.total_sampled;
      if (!distances.cold) {
        stack_samples[access.group].push_back(
            static_cast<double>(distances.stack_distance));
        reuse_samples[access.group].push_back(
            static_cast<double>(distances.reuse_distance));
      }
    }
    ++position;
  }

  report.groups.resize(group_count);
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (GroupId g = 0; g < group_count; ++g) {
    GroupLocality& stats = report.groups[g];
    stats.group = g;
    stats.name = trace.group_name(g);
    stats.samples = stack_samples[g].size();
    stats.sampled_accesses = sampled_accesses[g];
    stats.estimated_accesses =
        report.total_sampled == 0
            ? 0.0
            : total_memory_accesses * static_cast<double>(sampled_accesses[g]) /
                  static_cast<double>(report.total_sampled);
    stats.reliable = stats.samples >= config.min_samples;
    if (stats.samples > 0) {
      stats.median_stack_distance = exareq::median(stack_samples[g]);
      stats.median_reuse_distance = exareq::median(reuse_samples[g]);
      stats.stack_distance_mad = exareq::median_abs_deviation(stack_samples[g]);
    }
    if (stats.reliable) {
      weighted_sum += stats.median_stack_distance * stats.estimated_accesses;
      weight_total += stats.estimated_accesses;
    }
  }
  report.weighted_median_stack_distance =
      weight_total > 0.0 ? weighted_sum / weight_total : 0.0;
  return report;
}

}  // namespace exareq::memtrace
