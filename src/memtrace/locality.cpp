#include "memtrace/locality.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"

namespace exareq::memtrace {

LocalityAnalyzer::LocalityAnalyzer(const LocalityConfig& config)
    : config_(config) {}

GroupId LocalityAnalyzer::register_group(const std::string& name) {
  for (GroupId id = 0; id < group_names_.size(); ++id) {
    if (group_names_[id] == name) return id;
  }
  group_names_.push_back(name);
  stack_samples_.emplace_back();
  reuse_samples_.emplace_back();
  sampled_accesses_.push_back(0);
  return static_cast<GroupId>(group_names_.size() - 1);
}

void LocalityAnalyzer::record(std::uint64_t address, GroupId group) {
  exareq::require(group < group_names_.size(),
                  "LocalityAnalyzer::record: group not registered");
  // Exact distances over the full stream; the sampler selects which
  // accesses are *reported*, mirroring Threadspotter's burst strategy. Off
  // burst, the stack-distance query is skipped entirely (burst-aware mode) —
  // the marks stay exact, so on-burst distances equal exact-mode values.
  const bool sampled = config_.sampler.sampled(analyzer_.position());
  const AccessDistances distances = analyzer_.observe(address, sampled);
  if (sampled) {
    ++sampled_accesses_[group];
    ++total_sampled_;
    if (!distances.cold) {
      stack_samples_[group].push_back(
          static_cast<double>(distances.stack_distance));
      reuse_samples_[group].push_back(
          static_cast<double>(distances.reuse_distance));
    }
  }
}

LocalityReport LocalityAnalyzer::finish(double total_memory_accesses) const {
  exareq::require(total_memory_accesses >= 0.0,
                  "LocalityAnalyzer::finish: negative access count");
  obs::ScopedSpan span("locality_finish", "memtrace");
  span.arg("trace_length", static_cast<double>(analyzer_.position()));
  span.arg("sampled", static_cast<double>(total_sampled_));
  obs::MetricRegistry::instance()
      .counter("memtrace.sampled_accesses")
      .add(total_sampled_);
  LocalityReport report;
  report.trace_length = analyzer_.position();
  report.total_sampled = total_sampled_;

  const std::size_t group_count = group_names_.size();
  report.groups.resize(group_count);
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (GroupId g = 0; g < group_count; ++g) {
    GroupLocality& stats = report.groups[g];
    stats.group = g;
    stats.name = group_names_[g];
    stats.samples = stack_samples_[g].size();
    stats.sampled_accesses = sampled_accesses_[g];
    stats.estimated_accesses =
        total_sampled_ == 0
            ? 0.0
            : total_memory_accesses * static_cast<double>(sampled_accesses_[g]) /
                  static_cast<double>(total_sampled_);
    stats.reliable = stats.samples >= config_.min_samples;
    if (stats.samples > 0) {
      stats.median_stack_distance = exareq::median(stack_samples_[g]);
      stats.median_reuse_distance = exareq::median(reuse_samples_[g]);
      stats.stack_distance_mad = exareq::median_abs_deviation(stack_samples_[g]);
    }
    if (stats.reliable) {
      weighted_sum += stats.median_stack_distance * stats.estimated_accesses;
      weight_total += stats.estimated_accesses;
    }
  }
  report.weighted_median_stack_distance =
      weight_total > 0.0 ? weighted_sum / weight_total : 0.0;
  return report;
}

std::size_t LocalityAnalyzer::memory_bytes() const {
  std::size_t samples = 0;
  for (const auto& v : stack_samples_) samples += v.capacity() * sizeof(double);
  for (const auto& v : reuse_samples_) samples += v.capacity() * sizeof(double);
  return analyzer_.memory_bytes() + samples +
         sampled_accesses_.capacity() * sizeof(std::size_t);
}

LocalityReport analyze_locality(const AccessTrace& trace,
                                const LocalityConfig& config,
                                double total_memory_accesses) {
  LocalityAnalyzer analyzer(config);
  trace.replay(analyzer);
  return analyzer.finish(total_memory_accesses);
}

}  // namespace exareq::memtrace
