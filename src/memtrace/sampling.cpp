#include "memtrace/sampling.hpp"

#include <algorithm>
#include <vector>

namespace exareq::memtrace {

std::vector<std::uint64_t> sampled_positions(const SamplerConfig& config,
                                             std::uint64_t trace_length) {
  std::vector<std::uint64_t> positions;
  positions.reserve(static_cast<std::size_t>(
      static_cast<double>(trace_length) * config.duty_cycle() + 16.0));
  for (std::uint64_t burst = config.offset; burst < trace_length;
       burst += config.period) {
    const std::uint64_t end = std::min(burst + config.burst_length, trace_length);
    for (std::uint64_t position = burst; position < end; ++position) {
      positions.push_back(position);
    }
  }
  return positions;
}

}  // namespace exareq::memtrace
