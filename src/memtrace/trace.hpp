// Memory access traces tagged with instruction groups.
//
// Threadspotter (the paper's locality tool) attributes distance metrics to
// "instruction groups": the instructions inside a loop that access the same
// data structure. Our substitute asks the traced kernel to tag each access
// with a group id obtained from register_group(); the MMM examples of the
// paper's Sec. II-D use groups "A", "B", "C" for the three matrices.
//
// Kernels emit accesses through the TraceSink interface, so a consumer can
// either materialize the stream (AccessTrace, used by tests and the
// distance reference implementations) or analyze it on the fly without ever
// storing it (memtrace::LocalityAnalyzer, the production path — memory
// proportional to the number of distinct addresses, not the trace length).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace exareq::memtrace {

/// Group id type; dense small integers.
using GroupId = std::uint32_t;

/// One recorded memory access.
struct Access {
  std::uint64_t address = 0;
  GroupId group = 0;
};

/// Consumer of a streamed access trace. Kernels first register their
/// instruction groups, then emit accesses in program order.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Registers an instruction group and returns its id. Re-registering the
  /// same name returns the existing id; ids are dense and assigned in
  /// first-registration order.
  virtual GroupId register_group(const std::string& name) = 0;

  /// Consumes one access; the group must have been registered.
  virtual void record(std::uint64_t address, GroupId group) = 0;
};

/// An in-memory access trace — the materializing TraceSink. Addresses are
/// abstract locations (byte addresses or element indices — distance metrics
/// only compare equality).
class AccessTrace final : public TraceSink {
 public:
  GroupId register_group(const std::string& name) override;

  /// Name of a registered group; throws InvalidArgument for unknown ids.
  const std::string& group_name(GroupId group) const;

  std::size_t group_count() const { return group_names_.size(); }

  /// Appends one access; the group must have been registered.
  void record(std::uint64_t address, GroupId group) override;

  std::span<const Access> accesses() const { return accesses_; }
  std::size_t size() const { return accesses_.size(); }
  bool empty() const { return accesses_.empty(); }

  /// Number of distinct addresses touched by the trace.
  std::size_t distinct_addresses() const;

  /// Bytes held by the materialized access array (capacity accounting).
  std::size_t memory_bytes() const {
    return accesses_.capacity() * sizeof(Access);
  }

  /// Replays the trace into another sink: group registrations in id order
  /// followed by every access in program order.
  void replay(TraceSink& sink) const;

  void reserve(std::size_t expected) { accesses_.reserve(expected); }
  void clear() { accesses_.clear(); }

 private:
  std::vector<std::string> group_names_;
  std::vector<Access> accesses_;
};

}  // namespace exareq::memtrace
