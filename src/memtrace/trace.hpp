// Memory access traces tagged with instruction groups.
//
// Threadspotter (the paper's locality tool) attributes distance metrics to
// "instruction groups": the instructions inside a loop that access the same
// data structure. Our substitute asks the traced kernel to tag each access
// with a group id obtained from register_group(); the MMM examples of the
// paper's Sec. II-D use groups "A", "B", "C" for the three matrices.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace exareq::memtrace {

/// Group id type; dense small integers.
using GroupId = std::uint32_t;

/// One recorded memory access.
struct Access {
  std::uint64_t address = 0;
  GroupId group = 0;
};

/// An in-memory access trace. Addresses are abstract locations (byte
/// addresses or element indices — distance metrics only compare equality).
class AccessTrace {
 public:
  /// Registers an instruction group and returns its id. Re-registering the
  /// same name returns the existing id.
  GroupId register_group(const std::string& name);

  /// Name of a registered group; throws InvalidArgument for unknown ids.
  const std::string& group_name(GroupId group) const;

  std::size_t group_count() const { return group_names_.size(); }

  /// Appends one access; the group must have been registered.
  void record(std::uint64_t address, GroupId group);

  std::span<const Access> accesses() const { return accesses_; }
  std::size_t size() const { return accesses_.size(); }
  bool empty() const { return accesses_.empty(); }

  /// Number of distinct addresses touched by the trace.
  std::size_t distinct_addresses() const;

  void reserve(std::size_t expected) { accesses_.reserve(expected); }
  void clear() { accesses_.clear(); }

 private:
  std::vector<std::string> group_names_;
  std::vector<Access> accesses_;
};

}  // namespace exareq::memtrace
