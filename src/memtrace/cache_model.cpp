#include "memtrace/cache_model.hpp"

#include <algorithm>

#include "memtrace/distance.hpp"
#include "support/error.hpp"

namespace exareq::memtrace {

MissProfile predict_miss_ratios(const AccessTrace& trace,
                                const LocalityConfig& config,
                                std::span<const std::uint64_t> capacities) {
  exareq::require(!capacities.empty(),
                  "predict_miss_ratios: need at least one capacity");
  for (std::size_t i = 1; i < capacities.size(); ++i) {
    exareq::require(capacities[i] > capacities[i - 1],
                    "predict_miss_ratios: capacities must strictly increase");
  }

  MissProfile profile;
  profile.capacities.assign(capacities.begin(), capacities.end());

  const std::size_t group_count = trace.group_count();
  // misses[g][c]: sampled accesses of group g with SD >= capacities[c]
  // (cold accesses miss every capacity).
  std::vector<std::vector<std::uint64_t>> misses(
      group_count, std::vector<std::uint64_t>(capacities.size(), 0));
  std::vector<std::uint64_t> sampled(group_count, 0);

  DistanceAnalyzer analyzer(trace.size());
  std::size_t position = 0;
  for (const Access& access : trace.accesses()) {
    const AccessDistances distances = analyzer.observe(access.address);
    if (config.sampler.sampled(position)) {
      ++sampled[access.group];
      for (std::size_t c = 0; c < capacities.size(); ++c) {
        if (distances.cold || distances.stack_distance >= capacities[c]) {
          ++misses[access.group][c];
        }
      }
    }
    ++position;
  }

  profile.groups.resize(group_count);
  std::vector<std::uint64_t> total_misses(capacities.size(), 0);
  std::uint64_t total_sampled = 0;
  for (GroupId g = 0; g < group_count; ++g) {
    GroupMissProfile& group = profile.groups[g];
    group.group = g;
    group.name = trace.group_name(g);
    group.samples = sampled[g];
    group.miss_ratio.resize(capacities.size(), 0.0);
    total_sampled += sampled[g];
    for (std::size_t c = 0; c < capacities.size(); ++c) {
      total_misses[c] += misses[g][c];
      if (sampled[g] > 0) {
        group.miss_ratio[c] = static_cast<double>(misses[g][c]) /
                              static_cast<double>(sampled[g]);
      }
    }
  }
  profile.total_miss_ratio.resize(capacities.size(), 0.0);
  for (std::size_t c = 0; c < capacities.size(); ++c) {
    if (total_sampled > 0) {
      profile.total_miss_ratio[c] = static_cast<double>(total_misses[c]) /
                                    static_cast<double>(total_sampled);
    }
  }
  return profile;
}

std::uint64_t capacity_for_miss_ratio(const MissProfile& profile, double target) {
  exareq::require(target >= 0.0 && target <= 1.0,
                  "capacity_for_miss_ratio: target outside [0, 1]");
  for (std::size_t c = 0; c < profile.capacities.size(); ++c) {
    if (profile.total_miss_ratio[c] <= target) return profile.capacities[c];
  }
  return UINT64_MAX;
}

}  // namespace exareq::memtrace
