// Traced matrix-matrix multiplication kernels from the paper's Listings 1
// and 2 (Sec. II-D). Both kernels really compute C = A * B while recording
// every logical element access into an AccessTrace with instruction groups
// "A", "B" and "C" — exactly the granularity Threadspotter reports.
//
// The paper's analytical expectations, which the locality analysis must
// reproduce empirically:
//   naive:   SD(A) ~ 2n,        SD(B) ~ n^2 + 2n - 1,  C never reused;
//   blocked: SD(A) ~ 2b + 1,    SD(B) ~ 2b^2 + b,      SD(C) ~ 2
// i.e. naive locality degrades with the matrix size n while blocked
// locality depends only on the block size b.
#pragma once

#include <cstddef>
#include <vector>

#include "memtrace/trace.hpp"

namespace exareq::memtrace {

/// Result of a traced multiplication.
struct TracedMmm {
  std::vector<float> c;     ///< the computed product, row-major n x n
  AccessTrace trace;        ///< element-granularity access trace
  GroupId group_a = 0;
  GroupId group_b = 0;
  GroupId group_c = 0;
};

/// Row-major helpers for building inputs.
std::vector<float> make_matrix(std::size_t n, float seed);

/// Naive triple loop (paper Listing 1).
TracedMmm traced_mmm_naive(const std::vector<float>& a,
                           const std::vector<float>& b, std::size_t n);

/// Blocked multiplication with block size `block` (paper Listing 2);
/// `block` must divide n.
TracedMmm traced_mmm_blocked(const std::vector<float>& a,
                             const std::vector<float>& b, std::size_t n,
                             std::size_t block);

/// Untraced reference product for correctness checks.
std::vector<float> mmm_reference(const std::vector<float>& a,
                                 const std::vector<float>& b, std::size_t n);

}  // namespace exareq::memtrace
