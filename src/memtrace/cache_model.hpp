// Cache-behaviour prediction from stack-distance distributions.
//
// Sec. II-D of the paper argues that stack-distance models predict *when*
// an application's memory pressure will grow as the problem scales: an
// access misses a fully-associative LRU cache of capacity C exactly when
// its stack distance is >= C (Mattson's classic stack-algorithm result).
// This module turns the sampled distance distributions of a trace into
// predicted miss ratios for arbitrary capacities — making the paper's
// "accesses to B will be the first to fail to find the data in the cache"
// statement quantitative.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "memtrace/locality.hpp"

namespace exareq::memtrace {

/// Predicted miss behaviour of one instruction group.
struct GroupMissProfile {
  GroupId group = 0;
  std::string name;
  /// Sampled accesses considered (cold accesses count as misses).
  std::size_t samples = 0;
  /// Predicted miss ratio per requested capacity (same order as the
  /// capacities passed in).
  std::vector<double> miss_ratio;
};

/// Predicted miss behaviour of a whole trace.
struct MissProfile {
  std::vector<std::uint64_t> capacities;   ///< cache sizes in *locations*
  std::vector<GroupMissProfile> groups;    ///< indexed by group id
  /// Trace-wide miss ratio per capacity (all sampled accesses pooled).
  std::vector<double> total_miss_ratio;
};

/// Computes LRU miss ratios for the given capacities from the (sampled)
/// stack distances of `trace`. Capacities must be non-empty and strictly
/// increasing. Sampling follows `config.sampler`; cold accesses are always
/// misses.
MissProfile predict_miss_ratios(const AccessTrace& trace,
                                const LocalityConfig& config,
                                std::span<const std::uint64_t> capacities);

/// The smallest of the given capacities for which the predicted total miss
/// ratio drops below `target` (e.g. 0.05); returns nullopt-like UINT64_MAX
/// when none qualifies. Useful for "how much cache does this working set
/// need" questions.
std::uint64_t capacity_for_miss_ratio(const MissProfile& profile, double target);

}  // namespace exareq::memtrace
