// Per-instruction-group locality analysis (the Threadspotter substitute's
// reporting layer), implementing the paper's methodology (Sec. II-B):
//  * exact distances, burst-sampled reporting;
//  * per group: the MEDIAN over gathered samples (robust against the
//    high-distance outliers of loop re-entry);
//  * groups with fewer than `min_samples` (default 100) samples per
//    configuration are dropped as unreliable;
//  * access counts per group estimated from an externally measured total
//    (PAPI loads+stores) scaled by each group's sample share.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memtrace/distance.hpp"
#include "memtrace/sampling.hpp"
#include "memtrace/trace.hpp"

namespace exareq::memtrace {

/// Locality statistics of one instruction group.
struct GroupLocality {
  GroupId group = 0;
  std::string name;
  /// Sampled non-cold accesses contributing distance statistics.
  std::size_t samples = 0;
  /// Sampled accesses including cold ones (basis of access estimation).
  std::size_t sampled_accesses = 0;
  double median_stack_distance = 0.0;
  double median_reuse_distance = 0.0;
  /// Median absolute deviation of the stack distance (spread indicator).
  double stack_distance_mad = 0.0;
  /// total_memory_accesses * sampled_accesses / total_sampled.
  double estimated_accesses = 0.0;
  /// samples >= config.min_samples (paper's reliability rule).
  bool reliable = false;
};

/// Analysis configuration.
struct LocalityConfig {
  SamplerConfig sampler;
  /// Paper: "any instruction group with less than 100 samples ... is
  /// ignored, because the risk of outliers ... is too high".
  std::size_t min_samples = 100;
};

/// Result of analyzing one trace.
struct LocalityReport {
  std::vector<GroupLocality> groups;   ///< indexed by group id
  std::size_t trace_length = 0;
  std::size_t total_sampled = 0;       ///< sampled accesses over all groups
  /// Median stack distance over the reliable groups, weighted by their
  /// estimated access counts; the scalar fed into requirement modeling.
  double weighted_median_stack_distance = 0.0;
};

/// Analyzes a trace. `total_memory_accesses` is the program-wide load/store
/// count measured externally (PAPI substitute); pass trace.size() when the
/// trace is complete.
LocalityReport analyze_locality(const AccessTrace& trace,
                                const LocalityConfig& config,
                                double total_memory_accesses);

}  // namespace exareq::memtrace
