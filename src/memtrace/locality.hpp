// Per-instruction-group locality analysis (the Threadspotter substitute's
// reporting layer), implementing the paper's methodology (Sec. II-B):
//  * exact distances, burst-sampled reporting;
//  * per group: the MEDIAN over gathered samples (robust against the
//    high-distance outliers of loop re-entry);
//  * groups with fewer than `min_samples` (default 100) samples per
//    configuration are dropped as unreliable;
//  * access counts per group estimated from an externally measured total
//    (PAPI loads+stores) scaled by each group's sample share.
//
// The production entry point is the streaming LocalityAnalyzer: a TraceSink
// the traced kernel writes into directly, so the trace is never materialized
// and memory stays O(distinct addresses) + O(sampled positions). It is also
// burst-aware: marks and last-access state are maintained exactly over the
// full stream, but the O(log n) stack-distance query is only issued at
// sampled positions, where its result equals the exact-mode value.
// analyze_locality() is the materialized-trace wrapper kept for tests and
// ad-hoc analysis; both produce bit-identical reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memtrace/distance.hpp"
#include "memtrace/sampling.hpp"
#include "memtrace/trace.hpp"

namespace exareq::memtrace {

/// Locality statistics of one instruction group.
struct GroupLocality {
  GroupId group = 0;
  std::string name;
  /// Sampled non-cold accesses contributing distance statistics.
  std::size_t samples = 0;
  /// Sampled accesses including cold ones (basis of access estimation).
  std::size_t sampled_accesses = 0;
  double median_stack_distance = 0.0;
  double median_reuse_distance = 0.0;
  /// Median absolute deviation of the stack distance (spread indicator).
  double stack_distance_mad = 0.0;
  /// total_memory_accesses * sampled_accesses / total_sampled.
  double estimated_accesses = 0.0;
  /// samples >= config.min_samples (paper's reliability rule).
  bool reliable = false;
};

/// Analysis configuration.
struct LocalityConfig {
  SamplerConfig sampler;
  /// Paper: "any instruction group with less than 100 samples ... is
  /// ignored, because the risk of outliers ... is too high".
  std::size_t min_samples = 100;
};

/// Result of analyzing one trace.
struct LocalityReport {
  std::vector<GroupLocality> groups;   ///< indexed by group id
  std::size_t trace_length = 0;
  std::size_t total_sampled = 0;       ///< sampled accesses over all groups
  /// Median stack distance over the reliable groups, weighted by their
  /// estimated access counts; the scalar fed into requirement modeling.
  double weighted_median_stack_distance = 0.0;
};

/// Streaming locality analysis: feed a kernel's access stream in directly
/// (apps::Application::trace_locality), then call finish() once.
class LocalityAnalyzer final : public TraceSink {
 public:
  explicit LocalityAnalyzer(const LocalityConfig& config);

  GroupId register_group(const std::string& name) override;
  void record(std::uint64_t address, GroupId group) override;

  /// Number of accesses recorded so far (the stream length).
  std::size_t recorded() const { return analyzer_.position(); }

  /// Finalizes the report. `total_memory_accesses` is the program-wide
  /// load/store count measured externally (PAPI substitute); pass
  /// recorded() when the stream is complete.
  LocalityReport finish(double total_memory_accesses) const;

  /// Bytes held by the analyzer (distance state + gathered samples);
  /// independent of the stream length.
  std::size_t memory_bytes() const;

 private:
  LocalityConfig config_;
  DistanceAnalyzer analyzer_;
  std::vector<std::string> group_names_;
  std::vector<std::vector<double>> stack_samples_;
  std::vector<std::vector<double>> reuse_samples_;
  std::vector<std::size_t> sampled_accesses_;
  std::size_t total_sampled_ = 0;
};

/// Analyzes a materialized trace (replays it through a LocalityAnalyzer).
/// `total_memory_accesses` is the program-wide load/store count measured
/// externally (PAPI substitute); pass trace.size() when the trace is
/// complete.
LocalityReport analyze_locality(const AccessTrace& trace,
                                const LocalityConfig& config,
                                double total_memory_accesses);

}  // namespace exareq::memtrace
