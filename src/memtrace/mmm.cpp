#include "memtrace/mmm.hpp"

#include "support/error.hpp"

namespace exareq::memtrace {
namespace {

// Distinct address ranges per matrix so traces never alias.
constexpr std::uint64_t kBaseA = 0x1000000000ULL;
constexpr std::uint64_t kBaseB = 0x2000000000ULL;
constexpr std::uint64_t kBaseC = 0x3000000000ULL;

}  // namespace

std::vector<float> make_matrix(std::size_t n, float seed) {
  std::vector<float> m(n * n);
  for (std::size_t i = 0; i < m.size(); ++i) {
    // Small deterministic values keep float error negligible in tests.
    m[i] = seed + static_cast<float>((i * 7 + 3) % 13) * 0.125f;
  }
  return m;
}

TracedMmm traced_mmm_naive(const std::vector<float>& a,
                           const std::vector<float>& b, std::size_t n) {
  exareq::require(a.size() == n * n && b.size() == n * n,
                  "traced_mmm_naive: input size mismatch");
  TracedMmm result;
  result.c.assign(n * n, 0.0f);
  result.group_a = result.trace.register_group("A");
  result.group_b = result.trace.register_group("B");
  result.group_c = result.trace.register_group("C");
  result.trace.reserve(2 * n * n * n + n * n);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float v = 0.0f;
      for (std::size_t k = 0; k < n; ++k) {
        result.trace.record(kBaseA + i * n + k, result.group_a);
        result.trace.record(kBaseB + k * n + j, result.group_b);
        v += a[i * n + k] * b[k * n + j];
      }
      result.trace.record(kBaseC + i * n + j, result.group_c);
      result.c[i * n + j] = v;
    }
  }
  return result;
}

TracedMmm traced_mmm_blocked(const std::vector<float>& a,
                             const std::vector<float>& b, std::size_t n,
                             std::size_t block) {
  exareq::require(a.size() == n * n && b.size() == n * n,
                  "traced_mmm_blocked: input size mismatch");
  exareq::require(block >= 1 && n % block == 0,
                  "traced_mmm_blocked: block size must divide n");
  TracedMmm result;
  result.c.assign(n * n, 0.0f);
  result.group_a = result.trace.register_group("A");
  result.group_b = result.trace.register_group("B");
  result.group_c = result.trace.register_group("C");
  result.trace.reserve(3 * n * n * n / block);

  // Paper Listing 2: block loops (ii, jj, kk) around micro loops (i, j, k).
  // C is accumulated *inside* the innermost loop (C[i*n+j] += A... * B...),
  // which is what gives C its constant stack distance of 2 in the paper's
  // analysis — A and B are the only accesses between two C touches.
  for (std::size_t ii = 0; ii < n; ii += block) {
    for (std::size_t jj = 0; jj < n; jj += block) {
      for (std::size_t kk = 0; kk < n; kk += block) {
        for (std::size_t i = ii; i < ii + block; ++i) {
          for (std::size_t j = jj; j < jj + block; ++j) {
            for (std::size_t k = kk; k < kk + block; ++k) {
              result.trace.record(kBaseA + i * n + k, result.group_a);
              result.trace.record(kBaseB + k * n + j, result.group_b);
              result.trace.record(kBaseC + i * n + j, result.group_c);
              result.c[i * n + j] += a[i * n + k] * b[k * n + j];
            }
          }
        }
      }
    }
  }
  return result;
}

std::vector<float> mmm_reference(const std::vector<float>& a,
                                 const std::vector<float>& b, std::size_t n) {
  std::vector<float> c(n * n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      const float aik = a[i * n + k];
      for (std::size_t j = 0; j < n; ++j) {
        c[i * n + j] += aik * b[k * n + j];
      }
    }
  }
  return c;
}

}  // namespace exareq::memtrace
