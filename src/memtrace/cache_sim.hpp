// Set-associative LRU cache simulation.
//
// The stack-distance cache model (cache_model.hpp) is exact for a
// fully-associative LRU cache — Mattson's classic result. Real caches are
// set-associative; this simulator executes a trace against a configurable
// set-associative LRU cache so the stack-distance prediction can be
// validated (full associativity) and its error quantified (limited
// associativity) — closing the loop on the paper's Sec. II-D claim that
// the exact miss point "depends on the size of the cache and the protocol
// used" while the stack-distance *trend* is hardware-independent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memtrace/trace.hpp"

namespace exareq::memtrace {

/// Cache geometry. Addresses are cached at `line_size`-location
/// granularity; capacity (in locations) = sets * ways * line_size.
struct CacheConfig {
  std::uint64_t sets = 64;
  std::uint64_t ways = 4;
  std::uint64_t line_size = 1;  ///< locations per line (1 = word-granular)

  std::uint64_t capacity() const { return sets * ways * line_size; }

  /// Fully-associative cache of the given capacity (in lines).
  static CacheConfig fully_associative(std::uint64_t lines) {
    return {1, lines, 1};
  }
};

/// Per-group and total hit/miss counts of one simulation.
struct CacheSimResult {
  struct GroupCounts {
    GroupId group = 0;
    std::string name;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    double miss_ratio() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(misses) /
                                    static_cast<double>(total);
    }
  };
  std::vector<GroupCounts> groups;  ///< indexed by group id
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  double miss_ratio() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(misses) /
                                  static_cast<double>(total);
  }
};

/// A set-associative LRU cache over abstract addresses.
class CacheSim {
 public:
  explicit CacheSim(const CacheConfig& config);

  /// Accesses one address; returns true on a hit and updates LRU state.
  bool access(std::uint64_t address);

  const CacheConfig& config() const { return config_; }

  /// Number of lines currently resident.
  std::uint64_t resident_lines() const;

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  CacheConfig config_;
  std::vector<Way> ways_;  // sets * ways, row-major by set
  std::uint64_t clock_ = 0;
};

/// Runs a whole trace through a cache; counts per instruction group.
CacheSimResult simulate_cache(const AccessTrace& trace, const CacheConfig& config);

}  // namespace exareq::memtrace
