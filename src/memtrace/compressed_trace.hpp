// Delta+varint-compressed access traces.
//
// A materialized AccessTrace costs 16 bytes per access; a million-access
// locality trace from a checkpointed sweep is 16 MB per grid point. Most
// kernels walk arrays with small, regular strides and touch one array for
// many consecutive accesses, so the stream is encoded as group runs. Each
// run starts with a single header varint packing
//
//   (run length << 4) | (rle flag << 3) | group code
//
// (group code 7 escapes to a following group-id varint, for sinks with
// more than six groups). The payload holds the per-group address deltas in
// zigzag-varint form, either one varint per access or — when the rle flag
// is set — (count, delta) pairs over the maximal constant-delta segments,
// whichever is smaller per run. Strided kernels land near one byte per
// access, an order of magnitude below the materialized trace, while the
// encoder remains a drop-in TraceSink. Decoding replays the exact access
// stream (addresses,
// groups, program order), so every analysis that accepts a TraceSink — the
// streaming LocalityAnalyzer in particular — sees identical input
// (tests/memtrace/compressed_trace_test.cpp and the five-proxy round trip in
// tests/apps/proxies_test.cpp check this against AccessTrace::replay()).
//
// serialize()/deserialize() add a checksummed container (magic, group
// table, payload) so compressed traces can ride inside files; damage is
// reported as exareq::Error, never undefined behavior.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "memtrace/trace.hpp"

namespace exareq::memtrace {

/// Compressing TraceSink: stores the access stream as per-group address
/// deltas in zigzag-varint form.
class CompressedTrace final : public TraceSink {
 public:
  GroupId register_group(const std::string& name) override;

  /// Name of a registered group; throws InvalidArgument for unknown ids.
  const std::string& group_name(GroupId group) const;

  std::size_t group_count() const { return group_names_.size(); }

  /// Appends one access to the compressed stream; the group must have been
  /// registered.
  void record(std::uint64_t address, GroupId group) override;

  std::size_t size() const { return access_count_; }
  bool empty() const { return access_count_ == 0; }

  /// Bytes of the encoded access stream (excluding group names), counting
  /// the not-yet-flushed tail run at its on-the-wire size.
  std::size_t compressed_bytes() const;

  /// Bytes held by the encoded buffers (capacity accounting; the compressed
  /// analogue of AccessTrace::memory_bytes()).
  std::size_t memory_bytes() const {
    return bytes_.capacity() + run_deltas_.capacity() * sizeof(std::int64_t);
  }

  /// Replays the stream into another sink: group registrations in id order,
  /// then every access in program order with its original address.
  void replay(TraceSink& sink) const;

  /// Self-contained serialization: magic + version, group table, access
  /// count, encoded payload, FNV-1a-64 checksum.
  std::string serialize() const;

  /// Parses a serialized trace; throws exareq::Error on any structural or
  /// checksum damage (never crashes on arbitrary bytes).
  static CompressedTrace deserialize(std::string_view bytes);

 private:
  // Open runs buffer raw delta values so the flush can pick the cheaper of
  // the two payload encodings; the cap bounds that buffer for single-group
  // streams (runs split transparently — adjacent same-group runs are valid).
  static constexpr std::size_t kMaxRunLength = 65536;

  // Encodes the open run into bytes_; no-op when empty.
  void flush_run();

  std::vector<std::string> group_names_;
  std::vector<std::uint64_t> last_address_;  // per group, for delta coding
  std::vector<std::uint8_t> bytes_;          // completed, encoded runs
  GroupId run_group_ = 0;                    // group of the open run
  std::vector<std::int64_t> run_deltas_;     // raw deltas of the open run
  std::size_t access_count_ = 0;
};

}  // namespace exareq::memtrace
