#include "memtrace/trace.hpp"

#include <unordered_set>

#include "support/error.hpp"

namespace exareq::memtrace {

GroupId AccessTrace::register_group(const std::string& name) {
  for (GroupId id = 0; id < group_names_.size(); ++id) {
    if (group_names_[id] == name) return id;
  }
  group_names_.push_back(name);
  return static_cast<GroupId>(group_names_.size() - 1);
}

const std::string& AccessTrace::group_name(GroupId group) const {
  exareq::require(group < group_names_.size(),
                  "AccessTrace::group_name: unknown group id");
  return group_names_[group];
}

void AccessTrace::record(std::uint64_t address, GroupId group) {
  exareq::require(group < group_names_.size(),
                  "AccessTrace::record: group not registered");
  accesses_.push_back({address, group});
}

std::size_t AccessTrace::distinct_addresses() const {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(accesses_.size());
  for (const Access& a : accesses_) seen.insert(a.address);
  return seen.size();
}

void AccessTrace::replay(TraceSink& sink) const {
  std::vector<GroupId> ids;
  ids.reserve(group_names_.size());
  for (const std::string& name : group_names_) {
    ids.push_back(sink.register_group(name));
  }
  for (const Access& a : accesses_) {
    sink.record(a.address, ids[a.group]);
  }
}

}  // namespace exareq::memtrace
