// The batched binary wire format, v1 — negotiated alongside the text
// protocol by the first byte of a connection (is_binary_frame_start).
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       1     magic: 0xEB request frame, 0xEC response frame. Neither
//                 byte can open a text-protocol line (verbs are ASCII), so
//                 the front end auto-detects the protocol per connection.
//   1       1     version (currently 1; other values are rejected)
//   2       1     kind (currently 1 = batch; other values are rejected)
//   3       1     reserved (must be 0)
//   4       4     payload length in bytes (u32 LE, header excluded)
//   8       ...   payload
//
// Request payload: u32 record count, then one record per request:
//
//   opcode u8, then per opcode:
//     kEval     app:str16  metric_id:u8  p:f64  n:f64
//     kInvert   app:str16  processes:f64 memory_per_process:f64
//     kUpgrade  app:str16  processes:f64 memory_per_process:f64
//     kStrawman app:str16
//     kStatus   (no fields)
//     kIngest   app:str16  payload:str32
//
//   str16 = u16 length + bytes; str32 = u32 length + bytes. metric_id is
//   the index into protocol.hpp's metric_names(). f64 is an IEEE-754
//   double serialized as its u64 bit pattern, little-endian.
//
// Response payload: u32 record count, then per request (in order) one
// str32 holding the exact text-protocol response line ("ok ..." or
// "error <category>: ..."). Batched-binary results are therefore
// bit-identical to one-at-a-time text results by construction, which the
// property-test differential oracle checks directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serve/protocol.hpp"

namespace exareq::serve::binary {

inline constexpr std::uint8_t kRequestMagic = 0xEB;
inline constexpr std::uint8_t kResponseMagic = 0xEC;
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::uint8_t kKindBatch = 1;
inline constexpr std::size_t kHeaderBytes = 8;

/// Default frame bound for the binary path. Batch frames carry hundreds of
/// requests (and ingest frames whole campaign CSVs), so the bound is far
/// above the text protocol's per-line 64 KiB default.
inline constexpr std::size_t kDefaultBatchMaxFrameBytes = 4 * 1024 * 1024;

enum class Opcode : std::uint8_t {
  kEval = 1,
  kInvert = 2,
  kUpgrade = 3,
  kStrawman = 4,
  kStatus = 5,
  kIngest = 6,
};

/// True when `byte` opens a binary frame rather than a text request line.
inline bool is_binary_frame_start(unsigned char byte) {
  return byte == kRequestMagic || byte == kResponseMagic;
}

/// One decoded request record. The string_views alias the frame buffer the
/// record was decoded from — zero-copy, valid only while that buffer lives.
struct RequestView {
  Opcode opcode = Opcode::kStatus;
  std::string_view app;
  std::string_view payload;     ///< kIngest only
  std::uint8_t metric_id = 0;   ///< kEval only: index into metric_names()
  double p = 0.0;
  double n = 0.0;
  double processes = 0.0;
  double memory_per_process = 0.0;

  /// Copies into a protocol Request and applies the same semantic
  /// validation the text parser does (validate_request), so malformed
  /// binary requests produce the same error messages as malformed text.
  /// Throws InvalidArgument on an out-of-range metric id or any
  /// validate_request failure.
  Request materialize() const;
};

/// Encodes a batch into one request frame (header included). Throws
/// InvalidArgument when a request is not encodable: unknown metric name,
/// app longer than a str16, or ingest payload longer than a str32.
std::string encode_request_frame(const std::vector<Request>& requests);

/// Encodes response lines into one response frame (header included).
std::string encode_response_frame(const std::vector<std::string>& lines);

/// Decodes a complete request frame (header included) into views aliasing
/// `frame`. Throws InvalidArgument on bad magic/version/kind, a length
/// mismatch, a truncated record, an unknown opcode, or trailing bytes.
std::vector<RequestView> decode_request_frame(std::string_view frame);

/// Decodes a complete response frame (header included) into the response
/// lines. Same error behaviour as decode_request_frame.
std::vector<std::string> decode_response_frame(std::string_view frame);

/// Splits a byte stream into complete binary frames — the binary
/// counterpart of FrameDecoder. Returned strings are whole frames (header
/// included), ready for decode_request_frame / decode_response_frame.
/// A declared frame larger than `max_frame_bytes`, or a first byte that is
/// not a frame magic, throws InvalidArgument; the pending bytes are
/// dropped so the decoder stays usable (callers normally close the
/// connection, matching FrameDecoder's contract).
class BinaryFrameDecoder {
 public:
  explicit BinaryFrameDecoder(
      std::size_t max_frame_bytes = kDefaultBatchMaxFrameBytes);

  /// Appends bytes; returns every completed frame.
  std::vector<std::string> feed(std::string_view bytes);

  /// True while a partially-received frame is buffered.
  bool has_partial_frame() const { return !buffer_.empty(); }
  std::size_t partial_bytes() const { return buffer_.size(); }
  std::size_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
};

}  // namespace exareq::serve::binary
