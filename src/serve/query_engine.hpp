// QueryEngine: answers parsed requests against the ModelRegistry, through
// the sharded LRU result cache.
//
// Each request kind reuses the exact library calls its one-shot CLI
// counterpart makes, so a served answer is bit-identical to running the
// corresponding `exareq` command on the same models:
//   eval     -> model::Model::evaluate2 / evaluate1 (stack distance)
//   invert   -> codesign::fill_memory (footprint inversion)
//   upgrade  -> codesign::evaluate_upgrade over codesign::paper_upgrades()
//   strawman -> codesign::evaluate_strawman + wall_time_lower_bound over
//               codesign::paper_strawmen()
#pragma once

#include <string>

#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"

namespace exareq::serve {

class QueryEngine {
 public:
  /// `cache` may be null (every request computes). Both must outlive the
  /// engine.
  explicit QueryEngine(ModelRegistry& registry, ShardedLruCache* cache = nullptr);

  /// Answers one request: cache lookup, compute on miss, insert. Library
  /// errors become `error ...` response lines; never throws. Status
  /// requests are not handled here (the server owns the counters).
  std::string answer(const Request& request);

  /// Parse + answer, for in-process callers without a server.
  std::string answer_line(const std::string& line);

  /// The uncached, throwing compute path: returns the `ok ...` response.
  std::string compute(const Request& request);

 private:
  ModelRegistry& registry_;
  ShardedLruCache* cache_;
};

}  // namespace exareq::serve
