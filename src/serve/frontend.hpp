// FrontEnd: the socket tier in front of a ShardedServer, speaking both the
// line-delimited text protocol (serve/protocol.hpp) and the batched binary
// wire format (serve/binary_protocol.hpp) on Unix-domain and/or TCP
// listeners.
//
// Protocol negotiation is per connection, by the first byte: 0xEB opens a
// binary request frame and no text verb starts with it, so a connection
// whose first byte is a frame magic is served in binary mode and anything
// else falls back to the text protocol. Existing text clients therefore
// keep working unchanged against a binary-capable front end, and one
// listener serves a mixed client population. A connection speaks one
// protocol for its lifetime.
//
// Text connections answer one response line per request line. Binary
// connections answer one response frame per request frame: the frame is
// decoded once, each record is validated (a bad record answers its own
// `error bad-request:` line without failing the batch), and the valid
// requests go through ShardedServer::submit_batch — bucketed by shard and
// executed in parallel. Framing errors (oversized or malformed frames) are
// answered in the connection's own protocol, then the connection closes,
// matching the legacy SocketServer's recovery contract.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/binary_protocol.hpp"
#include "serve/protocol.hpp"

namespace exareq::serve {

class ShardedServer;

struct FrontEndOptions {
  /// Unix-domain listener path; empty disables the Unix listener.
  std::string unix_path;
  /// TCP listener port on tcp_host; negative disables, 0 binds an
  /// ephemeral port (read it back with tcp_port() after start()).
  int tcp_port = -1;
  std::string tcp_host = "127.0.0.1";
  /// Text-protocol per-line bound (the CLI's --max-frame).
  std::size_t max_frame_bytes = FrameDecoder::kDefaultMaxFrameBytes;
  /// Binary-protocol per-frame bound; defaults far higher because one
  /// frame carries a whole batch.
  std::size_t max_binary_frame_bytes = binary::kDefaultBatchMaxFrameBytes;
};

class FrontEnd {
 public:
  /// `server` must outlive the front end. At least one listener (Unix path
  /// or TCP port >= 0) must be configured.
  FrontEnd(ShardedServer& server, FrontEndOptions options);
  ~FrontEnd();

  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  /// Binds and starts every configured listener. Throws Error on system
  /// errors (port in use, bad path, ...).
  void start();

  /// Shuts listeners and open connections down, joins all threads, and
  /// unlinks the Unix socket file. Idempotent; called by the destructor.
  void stop();

  const FrontEndOptions& options() const { return options_; }

  /// The bound TCP port (resolves an ephemeral port 0 request); -1 when no
  /// TCP listener is configured.
  int tcp_port() const { return bound_tcp_port_; }

 private:
  void accept_loop(int listen_fd);
  void serve_connection(int fd);
  std::string handle_binary_frame(const std::string& frame);

  ShardedServer& server_;
  FrontEndOptions options_;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;
  std::atomic<bool> running_{false};
  std::vector<std::thread> acceptors_;
  std::mutex mutex_;
  std::vector<std::thread> connections_;
  std::vector<int> connection_fds_;
};

/// A persistent client connection to a FrontEnd (or the legacy
/// SocketServer, for text). The first call pins the connection's protocol
/// — text for query(), binary for query_batch() — matching the server's
/// per-connection auto-detect; mixing both on one client throws.
class Client {
 public:
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(const std::string& host, int port);
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Text protocol: sends one request line, returns the response line.
  std::string query(const std::string& line);

  /// Binary protocol: sends the batch as one request frame, returns the
  /// per-request response lines in request order.
  std::vector<std::string> query_batch(const std::vector<Request>& requests);

 private:
  explicit Client(int fd);

  int fd_ = -1;
  int mode_ = 0;  ///< 0 unpinned, 1 text, 2 binary
  std::string text_buffer_;
  binary::BinaryFrameDecoder reply_decoder_;
};

/// One-shot batched query over a Unix socket / TCP: connect, send one
/// binary request frame, return the response lines.
std::vector<std::string> query_batch_over_socket(
    const std::string& socket_path, const std::vector<Request>& requests);
std::vector<std::string> query_batch_over_tcp(
    const std::string& host, int port, const std::vector<Request>& requests);

/// One-shot text query over TCP (the Unix-socket variant lives in
/// socket_server.hpp).
std::string query_over_tcp(const std::string& host, int port,
                           const std::string& line);

}  // namespace exareq::serve
