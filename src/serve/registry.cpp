#include "serve/registry.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "model/serialize.hpp"
#include "support/error.hpp"

namespace exareq::serve {

ModelRegistry::ModelRegistry(Fitter fit_on_demand)
    : fitter_(std::move(fit_on_demand)) {}

std::string ModelRegistry::key_of(const std::string& app) {
  std::string key = app;
  std::transform(key.begin(), key.end(), key.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return key;
}

void ModelRegistry::insert(codesign::AppRequirements models) {
  models.validate();
  exareq::require(!models.name.empty(), "ModelRegistry: bundle has no name");
  auto shared =
      std::make_shared<const codesign::AppRequirements>(std::move(models));
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[key_of(shared->name)];
  exareq::require(!entry.fitting,
                  "ModelRegistry: cannot replace '" + shared->name +
                      "' while a fit for it is in flight");
  if (!entry.models) ++stats_.apps;
  entry.models = std::move(shared);
}

std::string ModelRegistry::load_file(const std::string& path) {
  std::ifstream file(path);
  exareq::require(file.good(), "cannot open model file '" + path + "'");
  std::stringstream content;
  content << file.rdbuf();
  const model::ModelBundle bundle = model::parse_bundle(content.str());
  exareq::require(!bundle.name.empty(),
                  "model file '" + path + "' has no application name header");

  codesign::AppRequirements requirements;
  requirements.name = bundle.name;
  bool have_footprint = false, have_flops = false, have_comm = false,
       have_loads = false, have_stack = false;
  for (const auto& [label, m] : bundle.models) {
    if (label == "footprint") {
      requirements.footprint = m;
      have_footprint = true;
    } else if (label == "flops") {
      requirements.flops = m;
      have_flops = true;
    } else if (label == "comm_bytes") {
      requirements.comm_bytes = m;
      have_comm = true;
    } else if (label == "loads_stores") {
      requirements.loads_stores = m;
      have_loads = true;
    } else if (label == "stack_distance") {
      requirements.stack_distance = m;
      have_stack = true;
    } else {
      throw exareq::InvalidArgument("model file '" + path +
                                    "' has unknown model label '" + label + "'");
    }
  }
  exareq::require(
      have_footprint && have_flops && have_comm && have_loads && have_stack,
      "model file '" + path +
          "' must contain footprint, flops, comm_bytes, loads_stores and "
          "stack_distance models");
  insert(std::move(requirements));
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.files_loaded;
  return bundle.name;
}

std::shared_ptr<const codesign::AppRequirements> ModelRegistry::find(
    const std::string& app) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key_of(app));
  if (it == entries_.end()) return nullptr;
  return it->second.models;
}

std::shared_ptr<const codesign::AppRequirements> ModelRegistry::get(
    const std::string& app) {
  const std::string key = key_of(app);
  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.lookups;
  for (;;) {
    const auto it = entries_.find(key);
    if (it != entries_.end() && it->second.models) {
      ++stats_.hits;
      return it->second.models;
    }
    if (it == entries_.end() || !it->second.fitting) break;
    // Another thread is fitting this app: wait for it instead of starting
    // a duplicate fit (single-flight).
    ++stats_.singleflight_waits;
    fit_done_.wait(lock);
  }
  exareq::require(static_cast<bool>(fitter_),
                  "no models loaded for '" + app +
                      "' and the registry has no fit-on-demand callback");
  entries_[key].fitting = true;
  ++stats_.fits_started;
  ++stats_.in_flight_fits;
  lock.unlock();

  std::shared_ptr<const codesign::AppRequirements> fitted;
  std::exception_ptr failure;
  try {
    codesign::AppRequirements models = fitter_(app);
    models.validate();
    if (models.name.empty()) models.name = app;
    fitted =
        std::make_shared<const codesign::AppRequirements>(std::move(models));
  } catch (...) {
    failure = std::current_exception();
  }

  lock.lock();
  --stats_.in_flight_fits;
  Entry& entry = entries_[key];
  entry.fitting = false;
  if (failure) {
    // A failed fit is not cached: drop the placeholder so the next lookup
    // retries, and wake the waiters so one of them can.
    ++stats_.fit_failures;
    if (!entry.models) entries_.erase(key);
    fit_done_.notify_all();
    std::rethrow_exception(failure);
  }
  ++stats_.fits_completed;
  if (!entry.models) ++stats_.apps;
  entry.models = fitted;
  fit_done_.notify_all();
  return fitted;
}

std::vector<std::string> ModelRegistry::app_names() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mutex_);
  names.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    if (entry.models) names.push_back(entry.models->name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

RegistryStats ModelRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace exareq::serve
