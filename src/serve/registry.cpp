#include "serve/registry.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <fstream>
#include <sstream>

#include "model/serialize.hpp"
#include "support/error.hpp"

namespace exareq::serve {

ModelRegistry::ModelRegistry(Fitter fit_on_demand)
    : fitter_(std::move(fit_on_demand)) {}

std::string ModelRegistry::key_of(const std::string& app) {
  std::string key = app;
  std::transform(key.begin(), key.end(), key.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return key;
}

void ModelRegistry::insert(codesign::AppRequirements models) {
  publish(std::move(models), online::VersionSource::kInsert);
}

std::uint64_t ModelRegistry::publish(codesign::AppRequirements models,
                                     online::VersionSource source,
                                     std::uint64_t rows,
                                     double mean_abs_relative_error) {
  models.validate();
  exareq::require(!models.name.empty(), "ModelRegistry: bundle has no name");
  auto shared =
      std::make_shared<const codesign::AppRequirements>(std::move(models));
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[key_of(shared->name)];
  const bool first = entry.slot->current() == nullptr;
  const std::uint64_t version = entry.slot->publish(
      std::move(shared), source, rows, mean_abs_relative_error);
  if (first) {
    ++stats_.apps;
  } else {
    ++stats_.hot_swaps;
  }
  // A publish can satisfy lookups waiting on an in-flight fit of this app.
  fit_done_.notify_all();
  return version;
}

bool ModelRegistry::rollback(const std::string& app) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key_of(app));
  if (it == entries_.end()) return false;
  if (!it->second.slot->rollback()) return false;
  ++stats_.hot_swaps;
  return true;
}

bool ModelRegistry::try_begin_fit(const std::string& app) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[key_of(app)];
  if (entry.fitting) return false;
  entry.fitting = true;
  ++stats_.fits_started;
  ++stats_.in_flight_fits;
  return true;
}

void ModelRegistry::end_fit(const std::string& app, bool completed) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[key_of(app)];
  entry.fitting = false;
  --stats_.in_flight_fits;
  if (completed) {
    ++stats_.fits_completed;
  } else {
    ++stats_.fit_failures;
  }
  fit_done_.notify_all();
}

std::string ModelRegistry::load_file(const std::string& path) {
  std::ifstream file(path);
  exareq::require(file.good(), "cannot open model file '" + path + "'");
  std::stringstream content;
  content << file.rdbuf();
  const model::ModelBundle bundle = model::parse_bundle(content.str());
  exareq::require(!bundle.name.empty(),
                  "model file '" + path + "' has no application name header");

  codesign::AppRequirements requirements;
  requirements.name = bundle.name;
  bool have_footprint = false, have_flops = false, have_comm = false,
       have_loads = false, have_stack = false;
  for (const auto& [label, m] : bundle.models) {
    if (label == "footprint") {
      requirements.footprint = m;
      have_footprint = true;
    } else if (label == "flops") {
      requirements.flops = m;
      have_flops = true;
    } else if (label == "comm_bytes") {
      requirements.comm_bytes = m;
      have_comm = true;
    } else if (label == "loads_stores") {
      requirements.loads_stores = m;
      have_loads = true;
    } else if (label == "stack_distance") {
      requirements.stack_distance = m;
      have_stack = true;
    } else if (label == "io_bytes") {
      requirements.io_bytes = m;
    } else if (label == "energy_proxy") {
      requirements.energy_proxy = m;
    } else {
      throw exareq::InvalidArgument("model file '" + path +
                                    "' has unknown model label '" + label + "'");
    }
  }
  exareq::require(
      have_footprint && have_flops && have_comm && have_loads && have_stack,
      "model file '" + path +
          "' must contain footprint, flops, comm_bytes, loads_stores and "
          "stack_distance models");
  publish(std::move(requirements), online::VersionSource::kFile);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.files_loaded;
  return bundle.name;
}

std::shared_ptr<const codesign::AppRequirements> ModelRegistry::find(
    const std::string& app) const {
  const auto snapshot = version_of(app);
  return snapshot ? snapshot->models : nullptr;
}

std::shared_ptr<const online::ModelVersion> ModelRegistry::version_of(
    const std::string& app) const {
  std::shared_ptr<online::VersionedModel> slot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key_of(app));
    if (it == entries_.end()) return nullptr;
    slot = it->second.slot;
  }
  return slot->current();
}

std::shared_ptr<const codesign::AppRequirements> ModelRegistry::get(
    const std::string& app) {
  const std::string key = key_of(app);
  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.lookups;
  for (;;) {
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (const auto snapshot = it->second.slot->current()) {
        ++stats_.hits;
        return snapshot->models;
      }
      if (it->second.fitting) {
        // Another thread — a query-triggered fit or an online refit — is
        // fitting this app: wait for it instead of starting a duplicate
        // fit (single-flight).
        ++stats_.singleflight_waits;
        fit_done_.wait(lock);
        continue;
      }
    }
    break;
  }
  exareq::require(static_cast<bool>(fitter_),
                  "no models loaded for '" + app +
                      "' and the registry has no fit-on-demand callback");
  entries_[key].fitting = true;
  ++stats_.fits_started;
  ++stats_.in_flight_fits;
  lock.unlock();

  std::shared_ptr<const codesign::AppRequirements> fitted;
  std::exception_ptr failure;
  try {
    codesign::AppRequirements models = fitter_(app);
    models.validate();
    if (models.name.empty()) models.name = app;
    fitted =
        std::make_shared<const codesign::AppRequirements>(std::move(models));
  } catch (...) {
    failure = std::current_exception();
  }

  lock.lock();
  --stats_.in_flight_fits;
  Entry& entry = entries_[key];
  entry.fitting = false;
  if (failure) {
    // A failed fit is not cached: the entry keeps no version, so the next
    // lookup retries; wake the waiters so one of them can.
    ++stats_.fit_failures;
    fit_done_.notify_all();
    std::rethrow_exception(failure);
  }
  ++stats_.fits_completed;
  const bool first = entry.slot->current() == nullptr;
  entry.slot->publish(fitted, online::VersionSource::kFitOnDemand);
  if (first) {
    ++stats_.apps;
  } else {
    ++stats_.hot_swaps;
  }
  fit_done_.notify_all();
  return fitted;
}

std::vector<std::string> ModelRegistry::app_names() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mutex_);
  names.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    if (const auto snapshot = entry.slot->current()) {
      names.push_back(snapshot->models->name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<ModelInfo> ModelRegistry::model_infos() const {
  const auto now = std::chrono::steady_clock::now();
  std::vector<ModelInfo> infos;
  std::lock_guard<std::mutex> lock(mutex_);
  infos.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    const auto snapshot = entry.slot->current();
    if (!snapshot) continue;
    ModelInfo info;
    info.name = snapshot->models->name;
    info.version = snapshot->version;
    info.epoch = entry.slot->epoch();
    info.source = snapshot->source;
    info.rows = snapshot->rows;
    info.mean_abs_relative_error = snapshot->mean_abs_relative_error;
    info.age_seconds =
        std::chrono::duration<double>(now - snapshot->published_at).count();
    infos.push_back(std::move(info));
  }
  std::sort(infos.begin(), infos.end(),
            [](const ModelInfo& a, const ModelInfo& b) {
              return a.name < b.name;
            });
  return infos;
}

RegistryStats ModelRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace exareq::serve
