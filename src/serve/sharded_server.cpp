#include "serve/sharded_server.hpp"

#include <algorithm>
#include <cctype>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

namespace exareq::serve {
namespace {

/// Work envelopes travel on this tag; replies use per-batch ticket tags
/// in [1, simmpi::kUserTagLimit).
constexpr simmpi::Tag kTagWork = 0;

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void put_u32_le(std::vector<std::byte>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::byte>((value >> shift) & 0xFF));
  }
}

void put_i64_le(std::vector<std::byte>& out, std::int64_t value) {
  const auto bits = static_cast<std::uint64_t>(value);
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::byte>((bits >> shift) & 0xFF));
  }
}

std::uint32_t read_u32_le(const std::byte* p) {
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | std::to_integer<std::uint32_t>(p[i]);
  }
  return value;
}

std::int64_t read_i64_le(const std::byte* p) {
  std::uint64_t bits = 0;
  for (int i = 7; i >= 0; --i) {
    bits = (bits << 8) | std::to_integer<std::uint64_t>(p[i]);
  }
  return static_cast<std::int64_t>(bits);
}

/// [reply_tag u32][enqueue_ns i64][request frame]
constexpr std::size_t kWorkHeaderBytes = 12;

std::vector<std::byte> pack_work(std::uint32_t reply_tag,
                                 std::int64_t enqueue_ns,
                                 std::string_view frame) {
  std::vector<std::byte> payload;
  payload.reserve(kWorkHeaderBytes + frame.size());
  put_u32_le(payload, reply_tag);
  put_i64_le(payload, enqueue_ns);
  for (const char byte : frame) {
    payload.push_back(static_cast<std::byte>(byte));
  }
  return payload;
}

std::string bytes_to_string(const std::vector<std::byte>& bytes,
                            std::size_t offset) {
  return std::string(reinterpret_cast<const char*>(bytes.data()) + offset,
                     bytes.size() - offset);
}

std::vector<std::byte> string_to_bytes(std::string_view text) {
  const auto* data = reinterpret_cast<const std::byte*>(text.data());
  return std::vector<std::byte>(data, data + text.size());
}

}  // namespace

ShardedServer::ShardedServer(ShardedServerOptions options,
                             RegistryFactory factory)
    : options_(options) {
  exareq::require(options_.shards >= 1, "ShardedServer: shards must be >= 1");
  exareq::require(options_.queue_capacity >= 1,
                  "ShardedServer: queue capacity must be >= 1");
  front_rank_ = static_cast<int>(options_.shards);
  runtime_ = std::make_unique<simmpi::Runtime>(front_rank_ + 1);
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->registry =
        factory ? factory() : std::make_unique<ModelRegistry>();
    exareq::require(shard->registry != nullptr,
                    "ShardedServer: registry factory returned null");
    shard->cache = std::make_unique<ShardedLruCache>(options_.cache_capacity,
                                                     options_.cache_shards);
    shard->engine = std::make_unique<QueryEngine>(
        *shard->registry,
        options_.cache_capacity > 0 ? shard->cache.get() : nullptr);
    shards_.push_back(std::move(shard));
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->thread = std::thread([this, i] { shard_loop(i); });
  }
}

ShardedServer::~ShardedServer() { stop(); }

std::size_t ShardedServer::shard_of(std::string_view app,
                                    std::size_t shard_count) {
  // FNV-1a over the lower-cased name, matching the registry's
  // case-insensitive keys so "LULESH" and "lulesh" land on one shard.
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : app) {
    hash ^= static_cast<unsigned char>(
        std::tolower(static_cast<unsigned char>(c)));
    hash *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(hash % shard_count);
}

std::size_t ShardedServer::shard_of(std::string_view app) const {
  return shard_of(app, shards_.size());
}

ModelRegistry& ShardedServer::registry(std::size_t shard) {
  exareq::require(shard < shards_.size(),
                  "ShardedServer: shard index out of range");
  return *shards_[shard]->registry;
}

void ShardedServer::set_online_hooks(std::size_t shard, OnlineHooks hooks) {
  exareq::require(shard < shards_.size(),
                  "ShardedServer: shard index out of range");
  shards_[shard]->online = std::move(hooks);
}

void ShardedServer::insert(codesign::AppRequirements models) {
  exareq::require(!models.name.empty(),
                  "ShardedServer: bundle has no name to route by");
  registry(shard_of(models.name)).insert(std::move(models));
}

std::string ShardedServer::load_file(const std::string& path) {
  // Load into a scratch registry first to learn the application name, then
  // route the validated bundle to its owning shard. Bundle files are a
  // startup-time path, so the extra parse-copy is irrelevant.
  ModelRegistry scratch;
  const std::string name = scratch.load_file(path);
  const auto models = scratch.find(name);
  exareq::require(models != nullptr,
                  "model file '" + path + "' loaded no usable bundle");
  registry(shard_of(name))
      .publish(*models, online::VersionSource::kFile);
  return name;
}

std::vector<std::string> ShardedServer::submit_batch(
    const std::vector<Request>& requests) {
  std::vector<std::string> responses(requests.size());
  if (requests.empty()) return responses;
  obs::ScopedSpan span("serve_batch", "serve");

  std::shared_lock<std::shared_mutex> lock(lifecycle_);
  if (stopping_.load(std::memory_order_acquire)) {
    front_metrics_.requests.fetch_add(requests.size(),
                                      std::memory_order_relaxed);
    front_metrics_.responses_error.fetch_add(requests.size(),
                                             std::memory_order_relaxed);
    const std::string line =
        error_response("shutdown", "server is no longer accepting requests");
    std::fill(responses.begin(), responses.end(), line);
    return responses;
  }

  // Bucket by owning shard; status requests are answered here, at the
  // front end, because only it sees the cross-shard aggregate.
  std::vector<std::vector<std::size_t>> buckets(shards_.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].kind == RequestKind::kStatus) {
      front_metrics_.requests.fetch_add(1, std::memory_order_relaxed);
      front_metrics_.responses_ok.fetch_add(1, std::memory_order_relaxed);
      responses[i] = ok_response("status " + front_status_line());
      continue;
    }
    buckets[shard_of(requests[i].app)].push_back(i);
  }

  struct Pending {
    std::size_t shard;
    simmpi::Tag ticket;
    const std::vector<std::size_t>* indices;
  };
  std::vector<Pending> pending;
  const std::int64_t enqueue_ns = steady_now_ns();
  for (std::size_t shard = 0; shard < buckets.size(); ++shard) {
    const std::vector<std::size_t>& indices = buckets[shard];
    if (indices.empty()) continue;
    Metrics& counters = shards_[shard]->metrics;
    counters.requests.fetch_add(indices.size(), std::memory_order_relaxed);
    if (runtime_->mailbox(static_cast<simmpi::Rank>(shard)).pending() >=
        options_.queue_capacity) {
      counters.sheds.fetch_add(indices.size(), std::memory_order_relaxed);
      counters.responses_error.fetch_add(indices.size(),
                                         std::memory_order_relaxed);
      const std::string line = error_response(
          "shed", "admission queue full (capacity " +
                      std::to_string(options_.queue_capacity) + ")");
      for (const std::size_t index : indices) responses[index] = line;
      continue;
    }
    std::vector<Request> sub;
    sub.reserve(indices.size());
    for (const std::size_t index : indices) sub.push_back(requests[index]);
    const std::string frame = binary::encode_request_frame(sub);
    const simmpi::Tag ticket =
        1 + static_cast<simmpi::Tag>(
                next_ticket_.fetch_add(1, std::memory_order_relaxed) %
                static_cast<std::uint32_t>(simmpi::kUserTagLimit - 1));
    runtime_->mailbox(static_cast<simmpi::Rank>(shard))
        .put(simmpi::Envelope{front_rank_, kTagWork,
                              pack_work(static_cast<std::uint32_t>(ticket),
                                        enqueue_ns, frame)});
    batches_.fetch_add(1, std::memory_order_relaxed);
    pending.push_back(Pending{shard, ticket, &indices});
  }

  // Collect replies; the buckets execute on their shards in parallel while
  // this thread blocks on the first one's ticket.
  for (const Pending& wait : pending) {
    const simmpi::Envelope reply =
        runtime_->mailbox(front_rank_)
            .get(static_cast<simmpi::Rank>(wait.shard), wait.ticket);
    const std::vector<std::string> lines =
        binary::decode_response_frame(bytes_to_string(reply.payload, 0));
    const std::vector<std::size_t>& indices = *wait.indices;
    for (std::size_t i = 0; i < indices.size(); ++i) {
      responses[indices[i]] =
          i < lines.size()
              ? lines[i]
              : error_response("internal", "shard reply missing a record");
    }
  }
  return responses;
}

std::string ShardedServer::handle(const Request& request) {
  return submit_batch({request})[0];
}

std::string ShardedServer::handle_line(const std::string& line) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const std::exception& error) {
    front_metrics_.requests.fetch_add(1, std::memory_order_relaxed);
    front_metrics_.responses_error.fetch_add(1, std::memory_order_relaxed);
    return error_response("bad-request", error.what());
  }
  return handle(request);
}

void ShardedServer::shard_loop(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  simmpi::Mailbox& inbox =
      runtime_->mailbox(static_cast<simmpi::Rank>(shard_index));
  const std::int64_t deadline_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(options_.deadline)
          .count();
  for (;;) {
    simmpi::Envelope work = inbox.get(simmpi::kAnySource, kTagWork);
    if (work.payload.empty()) return;  // poison: stop this shard
    obs::ScopedSpan span("serve_shard_batch", "serve");
    const std::uint32_t reply_tag = read_u32_le(work.payload.data());
    const std::int64_t enqueue_ns = read_i64_le(work.payload.data() + 4);

    std::vector<std::string> lines;
    try {
      const std::string frame = bytes_to_string(work.payload, kWorkHeaderBytes);
      const std::vector<binary::RequestView> views =
          binary::decode_request_frame(frame);
      lines.reserve(views.size());
      const bool expired =
          deadline_ns > 0 && steady_now_ns() - enqueue_ns > deadline_ns;
      for (const binary::RequestView& view : views) {
        std::string line;
        if (expired) {
          shard.metrics.deadline_drops.fetch_add(1, std::memory_order_relaxed);
          line = error_response(
              "deadline", "request waited longer than " +
                              std::to_string(options_.deadline.count()) +
                              " ms for a worker");
        } else {
          line = process_one(shard, view);
        }
        shard.metrics.latency.record(
            static_cast<double>(steady_now_ns() - enqueue_ns) / 1000.0);
        if (line.rfind("ok", 0) == 0) {
          shard.metrics.responses_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          shard.metrics.responses_error.fetch_add(1,
                                                  std::memory_order_relaxed);
        }
        lines.push_back(std::move(line));
      }
    } catch (const std::exception& error) {
      // A frame the front end built should never fail to decode; answering
      // instead of rethrowing keeps the shard alive for the next batch
      // (the front end fills unanswered records with an internal error).
      lines.assign(1, error_response("internal", error.what()));
    }
    const std::string reply = binary::encode_response_frame(lines);
    runtime_->mailbox(front_rank_)
        .put(simmpi::Envelope{static_cast<simmpi::Rank>(shard_index),
                              static_cast<simmpi::Tag>(reply_tag),
                              string_to_bytes(reply)});
  }
}

std::string ShardedServer::process_one(Shard& shard,
                                       const binary::RequestView& view) {
  Request request;
  try {
    request = view.materialize();
  } catch (const std::exception& error) {
    return error_response("bad-request", error.what());
  }
  if (request.kind == RequestKind::kStatus) {
    // Normally intercepted at the front end; answered shard-locally when a
    // caller routes one here directly.
    MetricsSnapshot snapshot;
    shard.metrics.merge_into(snapshot);
    return ok_response("status " + status_line(snapshot));
  }
  if (request.kind == RequestKind::kIngest) {
    if (!shard.online.ingest) {
      return error_response("bad-request",
                            "ingest is not enabled on this server");
    }
    return shard.online.ingest(request);
  }
  return shard.engine->answer(request);
}

std::string ShardedServer::front_status_line() {
  std::string line = status_line(metrics());
  line += " shards=" + std::to_string(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i]->online.status_fields) continue;
    const std::string extra = shards_[i]->online.status_fields();
    if (!extra.empty()) line += " " + extra;
  }
  return line;
}

MetricsSnapshot ShardedServer::metrics() const {
  MetricsSnapshot total;
  front_metrics_.merge_into(total);
  LatencyHistogram merged;
  for (const auto& shard : shards_) {
    MetricsSnapshot s;
    shard->metrics.merge_into(s);
    total.requests += s.requests;
    total.responses_ok += s.responses_ok;
    total.responses_error += s.responses_error;
    total.sheds += s.sheds;
    total.deadline_drops += s.deadline_drops;
    merged.merge_from(shard->metrics.latency);

    const CacheStats cache = shard->cache->stats();
    total.cache_hits += cache.hits;
    total.cache_misses += cache.misses;
    total.cache_evictions += cache.evictions;
    total.cache_entries += cache.entries;
    const RegistryStats registry = shard->registry->stats();
    total.registry_lookups += registry.lookups;
    total.registry_hits += registry.hits;
    total.fits_started += registry.fits_started;
    total.fits_completed += registry.fits_completed;
    total.fit_failures += registry.fit_failures;
    total.singleflight_waits += registry.singleflight_waits;
    total.in_flight_fits += registry.in_flight_fits;
    total.files_loaded += registry.files_loaded;
    total.apps_loaded += registry.apps;
    total.hot_swaps += registry.hot_swaps;
  }
  merged.merge_from(front_metrics_.latency);
  total.p50_latency_us = merged.quantile_us(0.50);
  total.p99_latency_us = merged.quantile_us(0.99);
  total.mean_latency_us = merged.mean_us();
  return total;
}

std::vector<ShardStatus> ShardedServer::shard_statuses() const {
  std::vector<ShardStatus> statuses;
  statuses.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    ShardStatus status;
    status.shard = i;
    status.apps = shard.registry->app_names();
    status.queue_depth =
        runtime_->mailbox(static_cast<simmpi::Rank>(i)).pending();
    shard.metrics.merge_into(status.metrics);
    const CacheStats cache = shard.cache->stats();
    status.metrics.cache_hits = cache.hits;
    status.metrics.cache_misses = cache.misses;
    status.metrics.cache_evictions = cache.evictions;
    status.metrics.cache_entries = cache.entries;
    const RegistryStats registry = shard.registry->stats();
    status.metrics.registry_lookups = registry.lookups;
    status.metrics.registry_hits = registry.hits;
    status.metrics.fits_started = registry.fits_started;
    status.metrics.fits_completed = registry.fits_completed;
    status.metrics.fit_failures = registry.fit_failures;
    status.metrics.singleflight_waits = registry.singleflight_waits;
    status.metrics.in_flight_fits = registry.in_flight_fits;
    status.metrics.files_loaded = registry.files_loaded;
    status.metrics.apps_loaded = registry.apps;
    status.metrics.hot_swaps = registry.hot_swaps;
    statuses.push_back(std::move(status));
  }
  return statuses;
}

std::string ShardedServer::status_report() const {
  std::string report = render_status_report(metrics());

  TextTable table({"Shard", "Models", "Requests", "Cache hits", "Hit rate",
                   "Queue", "p50 [us]"});
  table.set_alignment({Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight});
  for (const ShardStatus& status : shard_statuses()) {
    table.add_row(
        {std::to_string(status.shard), std::to_string(status.apps.size()),
         format_count(status.metrics.requests),
         format_count(status.metrics.cache_hits),
         format_fixed(100.0 * status.metrics.cache_hit_rate(), 1) + " %",
         std::to_string(status.queue_depth),
         format_compact(status.metrics.p50_latency_us)});
  }
  report += "\n" + table.render();

  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::vector<ModelInfo> infos = shards_[i]->registry->model_infos();
    if (infos.empty()) continue;
    report += "\nshard " + std::to_string(i) + " models: ";
    for (std::size_t j = 0; j < infos.size(); ++j) {
      if (j > 0) report += ", ";
      report += infos[j].name + " v" + std::to_string(infos[j].version);
    }
  }
  for (const auto& shard : shards_) {
    if (!shard->online.status_section) continue;
    const std::string section = shard->online.status_section();
    if (!section.empty()) report += "\n" + section;
  }
  return report;
}

void ShardedServer::stop() {
  stopping_.store(true, std::memory_order_release);
  std::unique_lock<std::shared_mutex> lock(lifecycle_);
  if (joined_) return;
  joined_ = true;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    // Poison after every in-flight batch (shared holders) has finished;
    // mailbox FIFO guarantees queued work is answered before the poison.
    runtime_->mailbox(static_cast<simmpi::Rank>(i))
        .put(simmpi::Envelope{front_rank_, kTagWork, {}});
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  publish_metrics();
}

void ShardedServer::publish_metrics() {
  const MetricsSnapshot snapshot = metrics();
  auto& registry = obs::MetricRegistry::instance();
  registry.counter("serve.shard.requests").add(snapshot.requests);
  registry.counter("serve.shard.batches")
      .add(batches_.load(std::memory_order_relaxed));
  registry.counter("serve.shard.errors").add(snapshot.responses_error);
  registry.counter("serve.shard.sheds").add(snapshot.sheds);
  registry.counter("serve.shard.deadline_drops").add(snapshot.deadline_drops);
  registry.counter("serve.shard.cache_hits").add(snapshot.cache_hits);
  registry.gauge("serve.shard.count").set(static_cast<double>(shards_.size()));
  auto& histogram = registry.histogram("serve.shard.latency_us");
  for (const auto& shard : shards_) {
    histogram.merge_from(shard->metrics.latency);
  }
}

}  // namespace exareq::serve
