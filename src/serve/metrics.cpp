#include "serve/metrics.hpp"

#include <sstream>

#include "support/format.hpp"
#include "support/table.hpp"

namespace exareq::serve {

double MetricsSnapshot::cache_hit_rate() const {
  const std::uint64_t lookups = cache_hits + cache_misses;
  return lookups == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(lookups);
}

void Metrics::merge_into(MetricsSnapshot& snapshot) const {
  snapshot.requests = requests.load(std::memory_order_relaxed);
  snapshot.responses_ok = responses_ok.load(std::memory_order_relaxed);
  snapshot.responses_error = responses_error.load(std::memory_order_relaxed);
  snapshot.sheds = sheds.load(std::memory_order_relaxed);
  snapshot.deadline_drops = deadline_drops.load(std::memory_order_relaxed);
  snapshot.p50_latency_us = latency.quantile_us(0.50);
  snapshot.p99_latency_us = latency.quantile_us(0.99);
  snapshot.mean_latency_us = latency.mean_us();
}

std::string render_status_report(const MetricsSnapshot& snapshot) {
  TextTable table({"Layer", "Counter", "Value"});
  table.set_alignment({Align::kLeft, Align::kLeft, Align::kRight});
  const auto count = [](std::uint64_t value) { return format_count(value); };
  table.add_row({"requests", "submitted", count(snapshot.requests)});
  table.add_row({"requests", "ok", count(snapshot.responses_ok)});
  table.add_row({"requests", "errors", count(snapshot.responses_error)});
  table.add_row({"requests", "shed (queue full)", count(snapshot.sheds)});
  table.add_row({"requests", "deadline drops", count(snapshot.deadline_drops)});
  table.add_row({"requests", "p50 latency [us]",
                 format_compact(snapshot.p50_latency_us)});
  table.add_row({"requests", "p99 latency [us]",
                 format_compact(snapshot.p99_latency_us)});
  table.add_row({"requests", "mean latency [us]",
                 format_compact(snapshot.mean_latency_us)});
  table.add_row({"cache", "hits", count(snapshot.cache_hits)});
  table.add_row({"cache", "misses", count(snapshot.cache_misses)});
  table.add_row({"cache", "evictions", count(snapshot.cache_evictions)});
  table.add_row({"cache", "entries", count(snapshot.cache_entries)});
  table.add_row({"cache", "hit rate",
                 format_fixed(100.0 * snapshot.cache_hit_rate(), 1) + " %"});
  table.add_row({"registry", "lookups", count(snapshot.registry_lookups)});
  table.add_row({"registry", "hits", count(snapshot.registry_hits)});
  table.add_row({"registry", "fits started", count(snapshot.fits_started)});
  table.add_row({"registry", "fits completed", count(snapshot.fits_completed)});
  table.add_row({"registry", "fit failures", count(snapshot.fit_failures)});
  table.add_row({"registry", "single-flight waits",
                 count(snapshot.singleflight_waits)});
  table.add_row({"registry", "in-flight fits", count(snapshot.in_flight_fits)});
  table.add_row({"registry", "files loaded", count(snapshot.files_loaded)});
  table.add_row({"registry", "apps loaded", count(snapshot.apps_loaded)});
  table.add_row({"registry", "hot swaps", count(snapshot.hot_swaps)});
  return table.render();
}

std::string status_line(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "requests=" << snapshot.requests << " ok=" << snapshot.responses_ok
     << " errors=" << snapshot.responses_error << " sheds=" << snapshot.sheds
     << " deadline_drops=" << snapshot.deadline_drops
     << " cache_hits=" << snapshot.cache_hits
     << " cache_misses=" << snapshot.cache_misses
     << " cache_entries=" << snapshot.cache_entries
     << " registry_hits=" << snapshot.registry_hits
     << " fits_started=" << snapshot.fits_started
     << " fits_completed=" << snapshot.fits_completed
     << " in_flight_fits=" << snapshot.in_flight_fits
     << " singleflight_waits=" << snapshot.singleflight_waits
     << " apps=" << snapshot.apps_loaded
     << " hot_swaps=" << snapshot.hot_swaps
     << " p50_us=" << snapshot.p50_latency_us
     << " p99_us=" << snapshot.p99_latency_us
     << " mean_us=" << snapshot.mean_latency_us;
  return os.str();
}

}  // namespace exareq::serve
