// The serving wire protocol: line-delimited requests and responses.
//
// One request per line, one response line per request, always in order:
//   eval <app> <metric> <p> <n>      -> ok eval <value>
//   invert <app> <processes> <mem>   -> ok invert <n> <overall>
//   upgrade <app> <processes> <mem>  -> ok upgrade A:<5 ratios>;B:...;C:...
//   strawman <app>                   -> ok strawman <system>:<fields>;...
//   status                           -> ok status <key=value ...>
//   ingest <app> <csv-payload>       -> ok ingest accepted=<rows> ...
// The ingest payload is a campaign CSV (header first) with records joined
// by ';' instead of newlines, so a whole measurement batch fits one frame.
// Failures answer `error <category>: <message>` on a single line; the
// connection stays usable. Values are full-precision (%.17g) so results are
// bit-identical to the in-process library calls the CLI commands make.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace exareq::serve {

/// Splits a byte stream into newline-framed request lines with a bounded
/// frame length — the protocol's framing layer, shared by the socket front
/// end and the fuzz drivers. CR before the terminator is stripped and empty
/// frames are skipped (telnet-style clients). A frame that grows beyond
/// `max_frame_bytes` without a terminator throws InvalidArgument: an
/// unbounded pending frame is how a misbehaving client pins server memory.
/// Bytes after the last terminator stay buffered as a truncated frame until
/// more input arrives (`partial_bytes` exposes them; a connection that
/// closes mid-frame simply drops it).
class FrameDecoder {
 public:
  static constexpr std::size_t kDefaultMaxFrameBytes = 64 * 1024;

  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Appends bytes; returns every newline-completed request line. Throws
  /// InvalidArgument on an oversized frame (the pending bytes are dropped,
  /// so the decoder stays usable — callers normally close the connection).
  std::vector<std::string> feed(std::string_view bytes);

  /// True while an unterminated (truncated) frame is buffered.
  bool has_partial_frame() const { return !buffer_.empty(); }
  std::size_t partial_bytes() const { return buffer_.size(); }
  std::size_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
};

enum class RequestKind { kEval, kInvert, kUpgrade, kStrawman, kStatus, kIngest };

/// One parsed request. Unused fields stay at their defaults.
struct Request {
  RequestKind kind = RequestKind::kStatus;
  std::string app;      ///< all kinds except status
  std::string payload;  ///< ingest: ';'-joined campaign CSV records
  std::string metric;  ///< eval: one of metric_names() (footprint, flops, ...)
  double p = 0.0;      ///< eval: process count
  double n = 0.0;      ///< eval: problem size per process
  double processes = 0.0;           ///< invert/upgrade: system skeleton
  double memory_per_process = 0.0;  ///< invert/upgrade: bytes per process
};

/// Parses one request line; throws InvalidArgument on malformed input.
Request parse_request(const std::string& line);

/// The eval metric names, in canonical order. The index of a name in this
/// list is its metric id on the binary wire (serve/binary_protocol.hpp).
const std::vector<std::string>& metric_names();

/// Semantic validation shared by the text parser and the binary decoder:
/// throws InvalidArgument (with the same messages parse_request produces)
/// when a request violates a protocol invariant — unknown metric,
/// coordinates below 1, non-positive memory, empty app or ingest payload.
void validate_request(const Request& request);

/// Canonical cache key: kind, lower-cased app, and full-precision numbers,
/// so "eval LULESH flops 64 1024" and "eval lulesh flops 64.0 1e3+24" -- any
/// spelling of the same request -- map to the same entry.
std::string canonical_key(const Request& request);

/// Status requests are never cached (they must observe live counters), and
/// ingest requests are writes, not queries.
bool cacheable(const Request& request);

/// "ok <payload>".
std::string ok_response(const std::string& payload);

/// "error <category>: <message>" with newlines flattened to spaces.
std::string error_response(const std::string& category,
                           const std::string& message);

/// Full-precision number rendering shared by every response payload.
std::string render_value(double value);

}  // namespace exareq::serve
